package fastba

// One benchmark family per table/figure of the paper and per lemma
// experiment of DESIGN.md §3. Besides wall-clock ns/op, every bench reports
// the metric the corresponding paper artifact is about via b.ReportMetric
// (bits/node, rounds, coverage, expansion ratios, ...), so
// `go test -bench=. -benchmem` regenerates the quantitative story and
// cmd/benchtab renders the full tables.

import (
	"fmt"
	"testing"

	"github.com/fastba/fastba/internal/adversary"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/sampler"
	"github.com/fastba/fastba/internal/simnet"
)

var benchNs = []int{64, 128, 256}

// benchAER runs one AER configuration per iteration and reports the
// Figure 1(a) metrics.
func benchAER(b *testing.B, n int, opts ...Option) {
	b.Helper()
	cfg := NewConfig(n, append([]Option{
		WithSeed(7), WithCorruptFrac(0.05), WithKnowFrac(0.92),
	}, opts...)...)
	var last *AERResult
	for i := 0; i < b.N; i++ {
		res, err := RunAER(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatalf("agreement lost: %+v", res)
		}
		last = res
	}
	b.ReportMetric(last.MeanBitsPerNode, "bits/node")
	b.ReportMetric(float64(last.MaxBitsPerNode)/last.MeanBitsPerNode, "max/mean")
	b.ReportMetric(float64(last.Time), "rounds")
}

// BenchmarkFig1aAERSync measures the AER column of Figure 1(a) under the
// synchronous non-rushing model: O(1) time, polylog bits.
func BenchmarkFig1aAERSync(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchAER(b, n) })
	}
}

// BenchmarkFig1aAERAsync measures the asynchronous AER column of
// Figure 1(a): causal depth O(log n / log log n), same bits.
func BenchmarkFig1aAERAsync(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchAER(b, n, WithModel(Async)) })
	}
}

// BenchmarkFig1aKLST11 measures the [KLST11] baseline column: Õ(√n) bits,
// load-balanced.
func BenchmarkFig1aKLST11(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := NewConfig(n, WithSeed(7), WithCorruptFrac(0.05), WithKnowFrac(0.92))
			var last *BaselineResult
			for i := 0; i < b.N; i++ {
				res, err := RunBaseline(cfg, BaselineKLST11)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MeanBitsPerNode, "bits/node")
			b.ReportMetric(float64(last.MaxBitsPerNode)/last.MeanBitsPerNode, "max/mean")
			b.ReportMetric(float64(last.Time), "rounds")
		})
	}
}

// BenchmarkFig1bBA measures the composed protocol of Figure 1(b): both
// phases' bits and time.
func BenchmarkFig1bBA(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := NewConfig(n, WithSeed(7), WithCorruptFrac(0.05))
			var last *BAResult
			for i := 0; i < b.N; i++ {
				res, err := RunBA(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.AER.Agreement {
					b.Fatalf("BA failed: %+v", res.AER)
				}
				last = res
			}
			b.ReportMetric(last.TotalMeanBitsPerNode, "bits/node")
			b.ReportMetric(float64(last.TotalTime), "rounds")
			b.ReportMetric(last.AE.KnowFrac, "ae-know")
		})
	}
}

// benchBaseline runs one Figure 1(b) comparison protocol.
func benchBaseline(b *testing.B, n int, which Baseline) {
	b.Helper()
	cfg := NewConfig(n, WithSeed(7), WithCorruptFrac(0.05), WithKnowFrac(0.92))
	var last *BaselineResult
	for i := 0; i < b.N; i++ {
		res, err := RunBaseline(cfg, which)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatalf("%v failed", which)
		}
		last = res
	}
	b.ReportMetric(last.MeanBitsPerNode, "bits/node")
	b.ReportMetric(float64(last.Time), "rounds")
}

// BenchmarkFig1bFlood is the Θ(n²)-total yardstick row.
func BenchmarkFig1bFlood(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchBaseline(b, n, BaselineFlood) })
	}
}

// BenchmarkFig1bRabin is the PR10-class quadratic randomized BA row.
func BenchmarkFig1bRabin(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchBaseline(b, n, BaselineRabin) })
	}
}

// BenchmarkLemma3Push measures push-phase sends per correct node under the
// flooding adversary — Lemma 3's O(log n) messages.
func BenchmarkLemma3Push(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var pushesPerNode float64
			for i := 0; i < b.N; i++ {
				sc, err := core.NewScenario(core.DefaultParams(n), 7, core.DefaultScenarioConfig())
				if err != nil {
					b.Fatal(err)
				}
				mk := adversary.Maker(adversary.Flood{Strings: 8}, adversary.FromScenario(sc))
				nodes, correct := sc.Build(mk)
				simnet.NewSync(nodes, sc.Corrupt).Run(60)
				var pushes, count float64
				for _, node := range correct {
					if node != nil {
						pushes += float64(node.Stats().PushesSent)
						count++
					}
				}
				pushesPerNode = pushes / count
			}
			b.ReportMetric(pushesPerNode, "push-msgs/node")
			b.ReportMetric(float64(core.DefaultParams(n).QuorumSize), "bound-d")
		})
	}
}

// BenchmarkLemma4Lists measures Σ|L_x|/n under flooding — Lemma 4's O(n)
// candidate mass.
func BenchmarkLemma4Lists(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var perNode float64
			for i := 0; i < b.N; i++ {
				sc, err := core.NewScenario(core.DefaultParams(n), 7, core.DefaultScenarioConfig())
				if err != nil {
					b.Fatal(err)
				}
				mk := adversary.Maker(adversary.Flood{Strings: 10}, adversary.FromScenario(sc))
				nodes, correct := sc.Build(mk)
				simnet.NewSync(nodes, sc.Corrupt).Run(60)
				o := core.Evaluate(correct, sc.GString)
				perNode = float64(o.SumCandidates) / float64(o.Correct)
			}
			b.ReportMetric(perNode, "candidates/node")
		})
	}
}

// BenchmarkLemma5Coverage measures the fraction of correct nodes that end
// the push phase holding gstring — Lemma 5.
func BenchmarkLemma5Coverage(b *testing.B) {
	const n = 128
	var coverage float64
	for i := 0; i < b.N; i++ {
		sc, err := core.NewScenario(core.DefaultParams(n), uint64(i)+1, core.DefaultScenarioConfig())
		if err != nil {
			b.Fatal(err)
		}
		nodes, correct := sc.Build(nil)
		simnet.NewSync(nodes, sc.Corrupt).Run(60)
		have, count := 0, 0
		for _, node := range correct {
			if node == nil {
				continue
			}
			count++
			if node.HasCandidate(sc.GString) {
				have++
			}
		}
		coverage = float64(have) / float64(count)
	}
	b.ReportMetric(coverage, "coverage")
}

// BenchmarkLemma6Overload measures decision times under the rushing
// cornering adversary with the budget in the attack regime — the
// stretched tail of Lemma 6.
func BenchmarkLemma6Overload(b *testing.B) {
	const n = 128
	var last *AERResult
	for i := 0; i < b.N; i++ {
		res, err := RunAER(NewConfig(n,
			WithSeed(11), WithModel(SyncRushing), WithAdversary(AdversaryCornerRushing),
			WithCorruptFrac(0.10), WithKnowFrac(0.90), WithAnswerBudget(33)))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.LastDecision), "last-decision")
	b.ReportMetric(float64(last.AnswersDeferred), "deferred")
}

// BenchmarkLemma8NonRushing measures the same population without the
// attack — Lemma 8's constant time.
func BenchmarkLemma8NonRushing(b *testing.B) {
	const n = 128
	var last *AERResult
	for i := 0; i < b.N; i++ {
		res, err := RunAER(NewConfig(n,
			WithSeed(11), WithCorruptFrac(0.10), WithKnowFrac(0.90), WithAnswerBudget(33)))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.LastDecision), "last-decision")
	b.ReportMetric(float64(last.AnswersDeferred), "deferred")
}

// BenchmarkLemma7Agreement measures the fraction of correct nodes deciding
// gstring on the default (tight) population — the w.h.p. of Lemma 7, with
// the equivocating adversary trying to split the system.
func BenchmarkLemma7Agreement(b *testing.B) {
	const n = 256
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := RunAER(NewConfig(n, WithSeed(uint64(i)+1), WithAdversary(AdversaryEquivocate)))
		if err != nil {
			b.Fatal(err)
		}
		if res.DecidedOther > 0 {
			b.Fatal("validity violated: a correct node decided the adversary's string")
		}
		frac = float64(res.DecidedGString) / float64(res.Correct)
	}
	b.ReportMetric(frac, "decided-frac")
}

// BenchmarkNoFault measures the t = 0 guarantee (§1): success on every
// iteration, not w.h.p.
func BenchmarkNoFault(b *testing.B) {
	const n = 128
	for i := 0; i < b.N; i++ {
		res, err := RunAER(NewConfig(n,
			WithSeed(uint64(i)+1), WithAdversary(AdversaryNone), WithKnowFrac(0.9)))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatal("fault-free run failed: the no-fault guarantee is broken")
		}
	}
	b.ReportMetric(1, "success")
}

// BenchmarkProperty2 measures the border expansion a greedy cornering
// adversary can force on J — Lemma 2 Property 2 requires > 2/3.
func BenchmarkProperty2(b *testing.B) {
	const n = 256
	p := core.DefaultParams(n)
	poll := sampler.NewPoll(n, p.PollSize, p.Labels, p.SamplerSeed)
	var ratio float64
	for i := 0; i < b.N; i++ {
		src := prng.New(uint64(i) + 1)
		res := sampler.GreedyCorner(poll, n/8, 24, 4, src)
		ratio = res.Ratio
		if ratio <= 2.0/3 {
			b.Fatalf("Property 2 violated: expansion %.3f", ratio)
		}
	}
	b.ReportMetric(ratio, "expansion")
}

// BenchmarkAblationLoadBalance compares the answer budget against the
// unlimited variant under attack — the §5 load-balance/communication
// trade-off (E12).
func BenchmarkAblationLoadBalance(b *testing.B) {
	const n = 128
	for _, budget := range []int{0, 33} {
		name := "budget=unlimited"
		if budget > 0 {
			name = fmt.Sprintf("budget=%d", budget)
		}
		b.Run(name, func(b *testing.B) {
			var last *AERResult
			for i := 0; i < b.N; i++ {
				res, err := RunAER(NewConfig(n,
					WithSeed(11), WithModel(SyncRushing), WithAdversary(AdversaryCornerRushing),
					WithCorruptFrac(0.10), WithKnowFrac(0.90), WithAnswerBudget(budget)))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.MaxBitsPerNode)/last.MeanBitsPerNode, "max/mean")
			b.ReportMetric(float64(last.AnswersDeferred), "deferred")
			b.ReportMetric(float64(last.LastDecision), "last-decision")
		})
	}
}

// BenchmarkAblationDeferredRelay compares the deferred-relay extension on
// the tight default population (E13).
func BenchmarkAblationDeferredRelay(b *testing.B) {
	const n = 128
	for _, relay := range []bool{false, true} {
		b.Run(fmt.Sprintf("relay=%v", relay), func(b *testing.B) {
			agree := 0
			for i := 0; i < b.N; i++ {
				opts := []Option{WithSeed(uint64(i) + 1)}
				if relay {
					opts = append(opts, WithDeferredRelay())
				}
				res, err := RunAER(NewConfig(n, opts...))
				if err != nil {
					b.Fatal(err)
				}
				if res.Agreement {
					agree++
				}
			}
			b.ReportMetric(float64(agree)/float64(b.N), "agree-rate")
		})
	}
}

// BenchmarkRunnerGoroutines cross-checks the goroutine runtime at fixed n.
func BenchmarkRunnerGoroutines(b *testing.B) {
	const n = 64
	for i := 0; i < b.N; i++ {
		res, err := RunAER(NewConfig(n,
			WithSeed(3), WithModel(Goroutines), WithCorruptFrac(0.05), WithKnowFrac(0.92)))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatal("goroutine run failed")
		}
	}
}
