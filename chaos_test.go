package fastba

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// chaosSupervision is the aggressive self-healing shape the chaos tests
// run under: redial fast and never give up, detect silent links quickly.
func chaosSupervision() []Option {
	return []Option{
		WithLogRuntime(RuntimeTCP),
		WithReconnect(ReconnectPolicy{Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, MaxAttempts: -1}),
		WithHeartbeat(HeartbeatPolicy{Every: 20 * time.Millisecond, SuspectAfter: 80 * time.Millisecond}),
		WithLogCommitFraction(0.7),
	}
}

// TestChaosSweepZeroCommittedLoss is the issue's acceptance artifact: a
// TCP decision log under a sweep chaos plan stays available while every
// inter-node connection is severed at least once, and no entry the log
// acknowledged is ever corrupted or lost — every committed entry is
// byte-identical to the batch that was appended, and the safety oracles
// hold. Liveness is the lossy dimension chaos is allowed to destroy
// (frames buffered in a severed socket die with it), so append errors end
// the load phase instead of failing the test; safety must survive any
// strike placement.
func TestChaosSweepZeroCommittedLoss(t *testing.T) {
	const n = 8
	const appenders = 4
	ctx := context.Background()
	opts := append(chaosSupervision(),
		WithSeed(11),
		WithCorruptFrac(0),
		WithLogDepth(4),
		// A stalled head instance (its frames died in a severed socket) is
		// lost liveness, not lost safety; bound it tightly so the lossy
		// outcome surfaces quickly instead of wedging the test for the
		// default 30s.
		WithLogInstanceTimeout(8*time.Second),
		WithChaos(ChaosPlan{Seed: 3, Sweep: true, Interval: 20 * time.Millisecond}),
	)
	log, err := OpenLog(ctx, NewConfig(n, opts...))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	// Concurrent appenders keep the mesh busy — data frames are what
	// trigger redials, so sustained load is part of the self-healing loop.
	// They run until the sweep has severed every link in the full mesh.
	var (
		mu    sync.Mutex
		acked = map[uint64][][]byte{}
	)
	covered := make(chan struct{})
	want := int64(n * (n - 1))
	go func() {
		defer close(covered)
		deadline := time.Now().Add(120 * time.Second)
		for log.NetStats().LinksSevered < want {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-covered:
					return
				default:
				}
				batch := [][]byte{
					[]byte(fmt.Sprintf("chaos-%d-%05d-a", a, i)),
					[]byte(fmt.Sprintf("chaos-%d-%05d-b", a, i)),
				}
				seq, err := log.Append(ctx, batch)
				if err != nil {
					return // liveness lost — the safety checks below still apply
				}
				mu.Lock()
				acked[seq] = batch
				mu.Unlock()
			}
		}(a)
	}
	wg.Wait()
	st := log.NetStats()
	if st.LinksSevered < want {
		t.Fatalf("sweep incomplete: %d of %d links severed (stats %+v)", st.LinksSevered, want, st)
	}

	// The draining close may time out on instances whose frames died in a
	// severed socket — that is lost liveness, not lost safety.
	if err := log.Close(); err != nil {
		t.Logf("close under chaos reported (tolerated, lossy): %v", err)
	}

	// Zero lost committed entries: every committed entry must be exactly
	// the batch whose Append was acknowledged with that sequence number.
	entries := log.Committed()
	if len(entries) == 0 {
		t.Fatal("nothing committed under the sweep — the log was never available")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, e := range entries {
		batch, ok := acked[e.Seq]
		if !ok {
			t.Fatalf("committed seq %d was never acknowledged to an appender", e.Seq)
		}
		if len(e.Payloads) != len(batch) {
			t.Fatalf("seq %d committed %d payloads, appended %d", e.Seq, len(e.Payloads), len(batch))
		}
		for j := range batch {
			if !bytes.Equal(e.Payloads[j], batch[j]) {
				t.Fatalf("seq %d payload %d diverged: %q vs %q", e.Seq, j, e.Payloads[j], batch[j])
			}
		}
	}
	if rep := CheckLogInvariants(entries, 1); !rep.OK() {
		t.Fatalf("oracle violations after full-mesh severing: %s", rep)
	}
	st = log.NetStats()
	if st.Redials == 0 {
		t.Fatalf("every link severed yet none redialed — the run cannot have self-healed: %+v", st)
	}
	t.Logf("sweep: %d entries, %d strikes, %d links severed, %d redials, %d suspects, %d recoveries",
		len(entries), st.ChaosStrikes, st.LinksSevered, st.Redials, st.Suspects, st.Recoveries)
}

// goldenStrike is the human-readable golden form of one scheduled strike.
type goldenStrike struct {
	Kind string `json:"kind"`
	From int    `json:"from"`
	To   int    `json:"to"`
}

// TestChaosScheduleGolden locks the seeded strike schedule byte-for-byte:
// ChaosSchedule is a pure function of (plan, n), and the chaos replay
// digests (fuzzer, corpus) are built on exactly this sequence. It also
// pins the round shape: every directed link exactly once.
//
// Regenerate (only after an intentional schedule change) with:
//
//	go test -run TestChaosScheduleGolden -update .
func TestChaosScheduleGolden(t *testing.T) {
	const n = 5
	sched := ChaosSchedule(ChaosPlan{Seed: 7}, n)
	if len(sched) != n*(n-1) {
		t.Fatalf("schedule has %d strikes, want every directed link once (%d)", len(sched), n*(n-1))
	}
	seen := map[[2]int]bool{}
	for _, s := range sched {
		k := [2]int{s.From, s.To}
		if s.From == s.To || s.From < 0 || s.From >= n || s.To < 0 || s.To >= n {
			t.Fatalf("strike targets invalid link %d→%d", s.From, s.To)
		}
		if seen[k] {
			t.Fatalf("link %d→%d struck twice in one round", s.From, s.To)
		}
		seen[k] = true
	}
	golden := make([]goldenStrike, len(sched))
	for i, s := range sched {
		golden[i] = goldenStrike{Kind: s.Kind.String(), From: s.From, To: s.To}
	}
	got, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "chaos_schedule_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("seeded strike schedule diverged from %s (run with -update after an intentional change)", path)
	}
}

// TestFuzzChaosCaseDeterministic: a chaos case replays to an identical
// digest — the digest basis is the strike schedule plus the oracle
// verdicts, never committed entry counts (which real sockets under chaos
// legitimately do not reproduce). Termination must be marked skipped:
// chaos runs are lossy by construction.
func TestFuzzChaosCaseDeterministic(t *testing.T) {
	c := FuzzCase{
		N: 8, Seed: 21, CorruptFrac: 0.1, KnowFrac: 1,
		Log:   &LogFuzz{Entries: 3, Depth: 2, Batch: 2, PayloadBytes: 16},
		Chaos: &ChaosFuzz{Seed: 5, Strikes: 6, IntervalMs: 10},
	}
	a, err := ReplayCase(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("chaos digests diverge: %s vs %s", a.Digest, b.Digest)
	}
	if !a.Report.OK() {
		t.Fatalf("chaos case violates safety: %s", a.Report)
	}
	if _, skipped := a.Report.Skipped[OracleTermination]; !skipped {
		t.Fatalf("chaos case did not skip termination: %+v", a.Report)
	}
}

// TestFuzzChaosCampaign: a chaos-heavy campaign samples the family, every
// sampled case carries a bounded strike budget (the sampler must not draw
// unbounded sweeps), and chaos never co-occurs with a restart — one
// hostile dimension per case.
func TestFuzzChaosCampaign(t *testing.T) {
	chaosCases := 0
	res, err := SimFuzz(context.Background(), FuzzConfig{
		Seed:      19,
		Runs:      4,
		Ns:        []int{8},
		LogFrac:   1,
		ChaosFrac: 1,
		OnRun: func(r FuzzRun) {
			if r.Case.Chaos == nil {
				return
			}
			chaosCases++
			if r.Case.Chaos.Strikes <= 0 || r.Case.Chaos.Sweep {
				t.Errorf("sampled chaos case is unbounded: %+v", r.Case.Chaos)
			}
			if r.Case.Log != nil && r.Case.Log.RestartAfter > 0 {
				t.Errorf("chaos sampled together with a restart: %s", r.Case)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if chaosCases == 0 {
		t.Fatalf("ChaosFrac 1 sampled no chaos cases in %d runs", res.Executed)
	}
	for _, f := range res.Failures {
		t.Errorf("chaos campaign failure: %s: %v", f.Case, f.Violations)
	}
}

// TestChaosConfigRejected pins the misuse errors: chaos severs real
// sockets, so it needs the TCP runtime, a long-lived log, and no
// competing restart dimension.
func TestChaosConfigRejected(t *testing.T) {
	plan := ChaosPlan{Seed: 1, Strikes: 2}
	if _, err := OpenLog(context.Background(), NewConfig(8, WithChaos(plan))); err == nil {
		t.Error("chaos on the fabric runtime accepted")
	}
	if _, err := ReplayCase(FuzzCase{N: 8, Seed: 1, KnowFrac: 1, Chaos: &ChaosFuzz{Seed: 1, Strikes: 2}}); err == nil {
		t.Error("chaos without a log shape accepted (single-shot runs have no long-lived connections)")
	}
	if _, err := ReplayCase(FuzzCase{
		N: 8, Seed: 1, KnowFrac: 1,
		Log:   &LogFuzz{Entries: 2, Depth: 1, Batch: 1, PayloadBytes: 8, RestartAfter: 1},
		Chaos: &ChaosFuzz{Seed: 1, Strikes: 2},
	}); err == nil {
		t.Error("chaos combined with a restart accepted (one hostile dimension per case)")
	}
}
