package fastba

// The balogd client SDK. A LogClient speaks the client/admin frame
// protocol of internal/server over one TCP connection to the cluster
// leader: Append submits payloads and blocks for the committed sequence
// number, Status probes a daemon's progress, and the session self-heals —
// a lost connection is redialled with jittered exponential backoff on the
// next call.
//
// Retry semantics are deliberately conservative: the SDK retries
// *connecting* as long as the caller's context allows, but it never
// silently retries an Append whose request frame may already have reached
// the daemon — the daemon could have committed it, and a blind resend
// would duplicate the entry. That case surfaces as ErrSessionLost and the
// caller decides (idempotent payloads can resend; others must reconcile
// by reading the log).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/server"
)

// Errors surfaced by the client SDK.
var (
	// ErrOverload reports that admission control shed the append: the
	// daemon's bounded per-client queue was full. The request was never
	// admitted, so resending after backoff is safe.
	ErrOverload = errors.New("fastba: append shed by admission control")
	// ErrSessionLost reports a connection failure after the request frame
	// was (possibly partially) written: the daemon may or may not have
	// committed the payload, so the SDK does not resend it.
	ErrSessionLost = errors.New("fastba: client session lost mid-request")
	// ErrClientClosed reports an operation on a closed LogClient.
	ErrClientClosed = errors.New("fastba: log client closed")
	// ErrNotLeader reports an append that reached a follower daemon and
	// could not be redirected (no leader address known).
	ErrNotLeader = errors.New("fastba: daemon is not the leader")
	// ErrDaemonShutdown reports an append rejected because the daemon is
	// draining. Like ErrOverload the request was not admitted.
	ErrDaemonShutdown = errors.New("fastba: daemon shutting down")
)

// ClientConfig configures DialLog.
type ClientConfig struct {
	// Addr is any daemon's client address; the hello handshake redirects
	// to the leader when the daemon is a follower.
	Addr string
	// DialTimeout bounds one TCP connect attempt (default 2s).
	DialTimeout time.Duration
	// BackoffBase/BackoffCap shape the reconnect backoff: attempt i waits
	// Base·2^i, capped at Cap, with ±25% jitter (defaults 20ms / 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// MaxRedirects bounds leader-redirect hops in one connect (default 4).
	MaxRedirects int
}

func (c *ClientConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 20 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Second
	}
	if c.MaxRedirects <= 0 {
		c.MaxRedirects = 4
	}
}

// LogStatus is a daemon's progress snapshot, as returned by Status.
type LogStatus struct {
	Daemon     int
	Epoch      uint64
	Leader     bool
	Frontier   uint64
	Recovered  uint64
	Repaired   uint64
	PeersAlive int
	Sessions   int
}

// LogClient is a client session to a balogd cluster. It is safe for
// concurrent use: appends pipeline over one connection and resolve by
// request id.
type LogClient struct {
	cfg ClientConfig

	mu     sync.Mutex // guards sess lifecycle and dialing
	sess   *clientSession
	nextID uint64
	closed bool
}

// DialLog connects to a balogd cluster and completes the hello handshake
// (following leader redirects). The context bounds only this initial
// connect; later reconnects are bounded by the calling method's context.
func DialLog(ctx context.Context, cfg ClientConfig) (*LogClient, error) {
	cfg.fill()
	if cfg.Addr == "" {
		return nil, fmt.Errorf("fastba: client config: empty address")
	}
	c := &LogClient{cfg: cfg}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.sessionLocked(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// Append submits one payload and blocks until the cluster commits it,
// returning the committed sequence number. The context cancels the wait
// (the session stays healthy; a late ack for the abandoned request is
// dropped). Connection establishment retries with backoff while the
// context allows; a connection that dies after the request frame was
// written returns ErrSessionLost (see the package comment on retries).
func (c *LogClient) Append(ctx context.Context, payload []byte) (uint64, error) {
	sess, req, err := c.prepare(ctx)
	if err != nil {
		return 0, err
	}
	ack := make(chan server.AppendAck, 1)
	sess.addWaiter(req, ack)
	if err := sess.write(server.Append{Req: req, Payload: payload}); err != nil {
		sess.dropWaiter(req)
		c.retire(sess)
		return 0, fmt.Errorf("%w: %v", ErrSessionLost, err)
	}
	select {
	case a := <-ack:
		return decodeAck(a)
	case <-sess.done:
		return 0, fmt.Errorf("%w: %v", ErrSessionLost, sess.err)
	case <-ctx.Done():
		sess.dropWaiter(req)
		return 0, ctx.Err()
	}
}

// Status probes the connected daemon for a progress snapshot.
func (c *LogClient) Status(ctx context.Context) (LogStatus, error) {
	sess, _, err := c.prepare(ctx)
	if err != nil {
		return LogStatus{}, err
	}
	ch := make(chan server.StatusAck, 1)
	sess.addStatusWaiter(ch)
	if err := sess.write(server.Status{}); err != nil {
		c.retire(sess)
		return LogStatus{}, fmt.Errorf("%w: %v", ErrSessionLost, err)
	}
	select {
	case s := <-ch:
		return LogStatus{
			Daemon: int(s.Node), Epoch: s.Epoch, Leader: s.Leader,
			Frontier: s.Frontier, Recovered: s.Recovered, Repaired: s.Repaired,
			PeersAlive: int(s.PeersAlive), Sessions: int(s.Sessions),
		}, nil
	case <-sess.done:
		return LogStatus{}, fmt.Errorf("%w: %v", ErrSessionLost, sess.err)
	case <-ctx.Done():
		return LogStatus{}, ctx.Err()
	}
}

// Close tears down the session. In-flight appends resolve with
// ErrSessionLost.
func (c *LogClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.sess != nil {
		c.sess.fail(ErrClientClosed)
		c.sess = nil
	}
	return nil
}

// prepare returns a live session (dialing with backoff if needed) and a
// fresh request id.
func (c *LogClient) prepare(ctx context.Context) (*clientSession, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sess, err := c.sessionLocked(ctx)
	if err != nil {
		return nil, 0, err
	}
	c.nextID++
	return sess, c.nextID, nil
}

// sessionLocked returns the live session, redialling with jittered
// exponential backoff while ctx allows.
func (c *LogClient) sessionLocked(ctx context.Context) (*clientSession, error) {
	for attempt := 0; ; attempt++ {
		if c.closed {
			return nil, ErrClientClosed
		}
		if c.sess != nil {
			select {
			case <-c.sess.done:
				c.sess = nil
			default:
				return c.sess, nil
			}
		}
		sess, err := c.connect(ctx)
		if err == nil {
			c.sess = sess
			return sess, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("fastba: connect %s: %w (last error: %v)", c.cfg.Addr, ctx.Err(), err)
		}
		wait := c.cfg.BackoffBase << min(attempt, 20)
		if wait > c.cfg.BackoffCap || wait <= 0 {
			wait = c.cfg.BackoffCap
		}
		wait += time.Duration(rand.Int63n(int64(wait)/2+1)) - wait/4
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("fastba: connect %s: %w (last error: %v)", c.cfg.Addr, ctx.Err(), err)
		}
	}
}

// connect dials one address chain: the configured daemon, then leader
// redirects from hello acks, bounded by MaxRedirects.
func (c *LogClient) connect(ctx context.Context) (*clientSession, error) {
	addr := c.cfg.Addr
	seen := ""
	for hop := 0; hop <= c.cfg.MaxRedirects; hop++ {
		conn, hello, err := dialHello(ctx, addr, c.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		if hello.Leader || hello.LeaderAddr == "" || hello.LeaderAddr == addr || hello.LeaderAddr == seen {
			sess := newClientSession(conn, hello)
			return sess, nil
		}
		_ = conn.Close()
		seen = addr
		addr = hello.LeaderAddr
	}
	return nil, fmt.Errorf("fastba: connect: leader redirect chain exceeded %d hops", c.cfg.MaxRedirects)
}

// retire discards a dead session so the next call redials.
func (c *LogClient) retire(sess *clientSession) {
	sess.fail(ErrSessionLost)
	c.mu.Lock()
	if c.sess == sess {
		c.sess = nil
	}
	c.mu.Unlock()
}

func dialHello(ctx context.Context, addr string, timeout time.Duration) (net.Conn, server.HelloAck, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, server.HelloAck{}, err
	}
	deadline := time.Now().Add(timeout)
	_ = conn.SetDeadline(deadline)
	if err := server.WriteClientMsg(conn, server.Hello{}); err != nil {
		_ = conn.Close()
		return nil, server.HelloAck{}, err
	}
	msg, err := server.ReadClientMsg(conn)
	if err != nil {
		_ = conn.Close()
		return nil, server.HelloAck{}, err
	}
	hello, ok := msg.(server.HelloAck)
	if !ok {
		_ = conn.Close()
		return nil, server.HelloAck{}, fmt.Errorf("fastba: hello handshake: unexpected %T", msg)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, hello, nil
}

func decodeAck(a server.AppendAck) (uint64, error) {
	switch a.Code {
	case server.CodeOK:
		return a.Seq, nil
	case server.CodeOverload:
		return 0, ErrOverload
	case server.CodeNotLeader:
		return 0, ErrNotLeader
	case server.CodeShutdown:
		return 0, ErrDaemonShutdown
	case server.CodeFailed:
		return 0, fmt.Errorf("fastba: append failed on daemon")
	default:
		return 0, fmt.Errorf("fastba: append rejected: %s", server.CodeString(a.Code))
	}
}

// clientSession is one live connection: a writer (serialized by wmu) and
// a reader goroutine dispatching acks to registered waiters.
type clientSession struct {
	conn  net.Conn
	hello server.HelloAck

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	waiters map[uint64]chan server.AppendAck
	status  []chan server.StatusAck

	done chan struct{}
	once sync.Once
	err  error
}

func newClientSession(conn net.Conn, hello server.HelloAck) *clientSession {
	s := &clientSession{
		conn:    conn,
		hello:   hello,
		waiters: make(map[uint64]chan server.AppendAck),
		done:    make(chan struct{}),
	}
	go s.readLoop()
	return s
}

func (s *clientSession) write(msg any) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	select {
	case <-s.done:
		return s.err
	default:
	}
	return server.WriteClientMsg(s.conn, msg)
}

func (s *clientSession) addWaiter(req uint64, ch chan server.AppendAck) {
	s.mu.Lock()
	s.waiters[req] = ch
	s.mu.Unlock()
}

func (s *clientSession) dropWaiter(req uint64) {
	s.mu.Lock()
	delete(s.waiters, req)
	s.mu.Unlock()
}

func (s *clientSession) addStatusWaiter(ch chan server.StatusAck) {
	s.mu.Lock()
	s.status = append(s.status, ch)
	s.mu.Unlock()
}

func (s *clientSession) readLoop() {
	for {
		msg, err := server.ReadClientMsg(s.conn)
		if err != nil {
			s.fail(err)
			return
		}
		switch m := msg.(type) {
		case server.AppendAck:
			s.mu.Lock()
			ch := s.waiters[m.Req]
			delete(s.waiters, m.Req)
			s.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case server.StatusAck:
			s.mu.Lock()
			var ch chan server.StatusAck
			if len(s.status) > 0 {
				ch = s.status[0]
				s.status = s.status[1:]
			}
			s.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		}
	}
}

// fail closes the session exactly once; done observers read err after.
func (s *clientSession) fail(err error) {
	s.once.Do(func() {
		s.err = err
		close(s.done)
		_ = s.conn.Close()
	})
}
