package fastba

// Client SDK churn tests: the LogClient against in-process balogd
// daemons (internal/server.Daemon), covering the three failure surfaces
// the SDK promises to handle — a daemon that dies and comes back
// (reconnect with backoff), admission control shedding (typed
// ErrOverload), and a caller abandoning an append mid-flight (context
// cancellation leaves the session healthy). The cluster runs over real
// loopback sockets; only the process boundary is folded in.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/server"
)

// testDaemonConfig mirrors the internal server test tuning: fast join
// and repair cadences, impatient link supervision.
func testDaemonConfig(bases, dirs []string, i, k, queueMax int) server.Config {
	return server.Config{
		ClusterAddrs:    bases,
		Daemon:          i,
		PerDaemon:       k,
		Seed:            42,
		Epoch:           1,
		StoreDir:        dirs[i],
		Depth:           2,
		BatchMax:        4,
		QueueMax:        queueMax,
		SyncWindow:      time.Millisecond,
		JoinEvery:       100 * time.Millisecond,
		InstanceTimeout: 30 * time.Second,
		ReproposeAfter:  300 * time.Millisecond,
		Reconnect:       netrun.ReconnectPolicy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, MaxAttempts: 2},
		RepairEvery:     50 * time.Millisecond,
		StallAfter:      200 * time.Millisecond,
	}
}

// startDaemons boots an in-process daemons×k cluster (daemon 0 leads)
// and returns the daemon set plus the pieces needed to restart one.
func startDaemons(t *testing.T, daemons, k, queueMax int) ([]*server.Daemon, []string, []string) {
	t.Helper()
	bases, err := allocPortBases(daemons, k+3)
	if err != nil {
		t.Fatal(err)
	}
	baseAddrs := make([]string, daemons)
	for i, b := range bases {
		baseAddrs[i] = fmt.Sprintf("127.0.0.1:%d", b)
	}
	dirs := make([]string, daemons)
	ds := make([]*server.Daemon, daemons)
	for i := range ds {
		dirs[i] = t.TempDir()
		d, err := server.New(testDaemonConfig(baseAddrs, dirs, i, k, queueMax))
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		ds[i] = d
	}
	for _, d := range ds {
		d.Start()
	}
	t.Cleanup(func() {
		for _, d := range ds {
			d.Kill()
		}
	})
	return ds, baseAddrs, dirs
}

// TestClientReconnectBackoff: a LogClient dialled at a follower (the
// hello handshake redirects it to the leader) keeps working across the
// leader dying and coming back — the SDK redials with backoff on the
// next call instead of surfacing a dead session forever. The same
// LogClient object spans the outage.
func TestClientReconnectBackoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon TCP cluster")
	}
	ds, baseAddrs, dirs := startDaemons(t, 4, 2, 32)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	// Dial a follower on purpose: the redirect chain must land on the
	// leader before the first append.
	lc, err := DialLog(ctx, ClientConfig{Addr: ds[1].ClientAddr()})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if _, err := lc.Append(ctx, []byte("before-outage")); err != nil {
		t.Fatalf("append before outage: %v", err)
	}

	ds[0].Kill()

	// While the leader is down every append fails; the SDK's job is to
	// keep the session retryable, not to mask the outage.
	if _, err := lc.Append(withTimeout(ctx, 2*time.Second), []byte("during-outage")); err == nil {
		t.Fatal("append succeeded with the leader dead")
	}

	re, err := server.New(testDaemonConfig(baseAddrs, dirs, 0, 2, 32))
	if err != nil {
		t.Fatalf("leader restart: %v", err)
	}
	re.Start()
	ds[0] = re
	t.Cleanup(re.Kill)

	// The same client object must recover: redial with backoff, complete
	// the handshake, and commit. Give the restarted leader time to rejoin
	// the mesh and resume sequencing.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, err = lc.Append(withTimeout(ctx, 5*time.Second), []byte("after-restart"))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after leader restart: %v", err)
		}
	}
}

func withTimeout(ctx context.Context, d time.Duration) context.Context {
	c, cancel := context.WithTimeout(ctx, d)
	_ = cancel // bounded by the parent context; leaked timers are test-lifetime
	return c
}

// TestClientOverloadPropagation: appends pipelined past the daemon's
// per-session admission bound come back as the typed ErrOverload (via
// errors.Is), and a paced retry on the same session succeeds — shedding
// is backpressure, not session damage.
func TestClientOverloadPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon TCP cluster")
	}
	ds, _, _ := startDaemons(t, 4, 2, 1) // QueueMax 1: the second in-flight append sheds

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	lc, err := DialLog(ctx, ClientConfig{Addr: ds[0].ClientAddr()})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	const burst = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var overloads, oks int
	var unexpected []error
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := lc.Append(ctx, []byte(fmt.Sprintf("burst-%d", i)))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				oks++
			case errors.Is(err, ErrOverload):
				overloads++
			default:
				unexpected = append(unexpected, err)
			}
		}(i)
	}
	wg.Wait()
	if len(unexpected) > 0 {
		t.Fatalf("burst surfaced non-overload errors: %v", unexpected)
	}
	if overloads == 0 {
		t.Fatalf("no ErrOverload from %d concurrent appends against QueueMax 1 (%d ok)", burst, oks)
	}
	if oks == 0 {
		t.Fatal("every append shed — admission control admitted nothing")
	}
	// Shedding must not poison the session: a lone retry commits.
	if _, err := lc.Append(ctx, []byte("after-shed")); err != nil {
		t.Fatalf("append after shedding: %v", err)
	}
}

// TestClientCancelMidAppendNoLeak: cancelling an append's context
// abandons the wait without killing the session — the late ack is
// dropped, the next append works — and the whole client+cluster
// lifecycle leaves no goroutines behind.
func TestClientCancelMidAppendNoLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon TCP cluster")
	}
	before := countGoroutines()

	func() {
		ds, _, _ := startDaemons(t, 4, 2, 32)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		lc, err := DialLog(ctx, ClientConfig{Addr: ds[0].ClientAddr()})
		if err != nil {
			t.Fatal(err)
		}
		defer lc.Close()
		if _, err := lc.Append(ctx, []byte("warm")); err != nil {
			t.Fatal(err)
		}

		// Cancel a batch of appends mid-flight: each must return the
		// context's error promptly, well before commit latency.
		for i := 0; i < 8; i++ {
			cctx, ccancel := context.WithCancel(ctx)
			errc := make(chan error, 1)
			go func(i int) {
				_, err := lc.Append(cctx, []byte(fmt.Sprintf("cancelled-%d", i)))
				errc <- err
			}(i)
			time.Sleep(2 * time.Millisecond)
			ccancel()
			select {
			case err := <-errc:
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled append %d: %v", i, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("cancelled append %d never returned", i)
			}
		}

		// The session survived every abandoned wait.
		if _, err := lc.Append(ctx, []byte("after-cancels")); err != nil {
			t.Fatalf("append after cancellations: %v", err)
		}
		st, err := lc.Status(ctx)
		if err != nil {
			t.Fatalf("status after cancellations: %v", err)
		}
		if !st.Leader {
			t.Errorf("status reports daemon %d as non-leader", st.Daemon)
		}

		lc.Close()
		for _, d := range ds {
			sctx, scancel := context.WithTimeout(context.Background(), 20*time.Second)
			if err := d.Shutdown(sctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			scancel()
		}
	}()

	after := countGoroutines()
	if after > before+3 {
		t.Fatalf("goroutines grew from %d to %d across the client churn lifecycle", before, after)
	}
}
