// Command aer-sim runs a single AER (almost-everywhere to everywhere)
// simulation and prints its outcome and communication metrics.
//
// Example:
//
//	aer-sim -n 256 -model async -adversary flood -corrupt 0.1 -know 0.85
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aer-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aer-sim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 256, "system size")
		seed      = fs.Uint64("seed", 1, "master seed")
		model     = fs.String("model", "sync", "model: sync | sync-rushing | async | async-adversarial | goroutines")
		adv       = fs.String("adversary", "silent", "adversary: none | silent | flood | equivocate | corner | corner-rushing")
		corrupt   = fs.Float64("corrupt", 0.10, "fraction of Byzantine nodes (t/n)")
		know      = fs.Float64("know", 0.85, "fraction of correct nodes that know gstring")
		budget    = fs.Int("budget", -1, "answer budget override (-1 = log² n default, 0 = unlimited)")
		deferred  = fs.Bool("deferred-relay", false, "enable the deferred-relay extension")
		quorum    = fs.Int("quorum", 0, "quorum size override (0 = default)")
		junkIndep = fs.Bool("independent-junk", false, "unknowing nodes hold individual junk strings")
		showTrace = fs.Bool("trace", false, "print the message-flow timeline and hotspot nodes (sync model only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []fastba.Option{
		fastba.WithSeed(*seed),
		fastba.WithCorruptFrac(*corrupt),
		fastba.WithKnowFrac(*know),
	}
	m, err := parseModel(*model)
	if err != nil {
		return err
	}
	opts = append(opts, fastba.WithModel(m))
	a, err := parseAdversary(*adv)
	if err != nil {
		return err
	}
	opts = append(opts, fastba.WithAdversary(a))
	if *budget >= 0 {
		opts = append(opts, fastba.WithAnswerBudget(*budget))
	}
	if *deferred {
		opts = append(opts, fastba.WithDeferredRelay())
	}
	if *quorum > 0 {
		opts = append(opts, fastba.WithQuorumSize(*quorum))
	}
	if *junkIndep {
		opts = append(opts, fastba.WithIndependentJunk())
	}

	res, err := fastba.RunAER(fastba.NewConfig(*n, opts...))
	if err != nil {
		return err
	}
	if *showTrace {
		if err := printTrace(*n, *seed, *corrupt, *know); err != nil {
			return err
		}
	}

	fmt.Printf("AER n=%d model=%v adversary=%v seed=%d\n", *n, m, a, *seed)
	fmt.Printf("  gstring          %s\n", res.GString)
	fmt.Printf("  agreement        %v (%d/%d decided, %d on gstring, %d other)\n",
		res.Agreement, res.Decided, res.Correct, res.DecidedGString, res.DecidedOther)
	fmt.Printf("  time             %d (last decision at %d)\n", res.Time, res.LastDecision)
	fmt.Printf("  bits/node        mean %.0f, max %d\n", res.MeanBitsPerNode, res.MaxBitsPerNode)
	fmt.Printf("  messages         %d delivered\n", res.TotalMessages)
	fmt.Printf("  Σ|L_x|           %d over %d correct nodes\n", res.SumCandidates, res.Correct)
	fmt.Printf("  deferred answers %d\n", res.AnswersDeferred)
	var kinds []string
	for k := range res.MessagesByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  msg[%s] %d\n", k, res.MessagesByKind[k])
	}
	return nil
}

func parseModel(s string) (fastba.Model, error) {
	switch s {
	case "sync", "sync-nonrushing":
		return fastba.SyncNonRushing, nil
	case "sync-rushing":
		return fastba.SyncRushing, nil
	case "async":
		return fastba.Async, nil
	case "async-adversarial":
		return fastba.AsyncAdversarial, nil
	case "goroutines":
		return fastba.Goroutines, nil
	default:
		return 0, fmt.Errorf("unknown model %q", s)
	}
}

func parseAdversary(s string) (fastba.Adversary, error) {
	switch s {
	case "none":
		return fastba.AdversaryNone, nil
	case "silent":
		return fastba.AdversarySilent, nil
	case "flood":
		return fastba.AdversaryFlood, nil
	case "equivocate":
		return fastba.AdversaryEquivocate, nil
	case "corner":
		return fastba.AdversaryCorner, nil
	case "corner-rushing":
		return fastba.AdversaryCornerRushing, nil
	default:
		return 0, fmt.Errorf("unknown adversary %q", s)
	}
}

// printTrace re-runs the scenario synchronously with a trace attached and
// renders the message-flow timeline (the temporal Figure 2) plus the five
// most-loaded nodes.
func printTrace(n int, seed uint64, corrupt, know float64) error {
	sc, err := core.NewScenario(core.DefaultParams(n), seed, core.ScenarioConfig{
		CorruptFrac: corrupt,
		KnowFrac:    know,
		SharedJunk:  true,
		AdvBits:     1.0 / 3,
	})
	if err != nil {
		return err
	}
	nodes, _ := sc.Build(nil)
	tr := trace.New(n)
	runner := simnet.NewSync(nodes, sc.Corrupt)
	runner.Observe(tr.Observer())
	runner.Run(64)
	fmt.Println("message-flow timeline:")
	tr.Timeline(os.Stdout)
	fmt.Println("hotspots:")
	tr.Hotspots(os.Stdout, 5)
	return nil
}
