// Command aer-sim runs AER (almost-everywhere to everywhere) simulations
// and prints outcome and communication metrics. A single seed prints the
// detailed per-run view; multiple seeds run as a parallel experiment suite
// and print the aggregated per-cell report.
//
// Examples:
//
//	aer-sim -n 256 -model async -adversary flood -corrupt 0.1 -know 0.85
//	aer-sim -n 512 -seeds 10 -json        # aggregated sweep, JSON report
//	aer-sim -n 64 -tcp                    # same nodes over loopback TCP
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/fastba/fastba"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aer-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aer-sim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 256, "system size")
		seed      = fs.Uint64("seed", 1, "master seed (single-run mode)")
		seeds     = fs.Int("seeds", 1, "number of seeds: > 1 runs a parallel suite and prints the aggregate report")
		model     = fs.String("model", "sync-nonrushing", "model: sync-nonrushing | sync-rushing | async | async-adversarial | goroutines")
		adv       = fs.String("adversary", "silent", "adversary registry name: "+strings.Join(fastba.RegisteredAdversaries(), " | "))
		corrupt   = fs.Float64("corrupt", 0.10, "fraction of Byzantine nodes (t/n)")
		know      = fs.Float64("know", 0.85, "fraction of correct nodes that know gstring")
		budget    = fs.Int("budget", -1, "answer budget override (-1 = log² n default, 0 = unlimited)")
		deferred  = fs.Bool("deferred-relay", false, "enable the deferred-relay extension")
		quorum    = fs.Int("quorum", 0, "quorum size override (0 = default)")
		junkIndep = fs.Bool("independent-junk", false, "unknowing nodes hold individual junk strings")
		showTrace = fs.Bool("trace", false, "print the message-flow timeline and hotspot nodes of the run")
		tcp       = fs.Bool("tcp", false, "execute over real loopback TCP sockets instead of the simulator")
		jsonOut   = fs.Bool("json", false, "print the suite report as JSON (implies suite mode)")
		workers   = fs.Int("workers", 0, "suite worker-pool size (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := parseModel(*model)
	if err != nil {
		return err
	}
	opts := []fastba.Option{
		fastba.WithModel(m),
		fastba.WithAdversaryName(*adv),
		fastba.WithCorruptFrac(*corrupt),
		fastba.WithKnowFrac(*know),
	}
	if *budget >= 0 {
		opts = append(opts, fastba.WithAnswerBudget(*budget))
	}
	if *deferred {
		opts = append(opts, fastba.WithDeferredRelay())
	}
	if *quorum > 0 {
		opts = append(opts, fastba.WithQuorumSize(*quorum))
	}
	if *junkIndep {
		opts = append(opts, fastba.WithIndependentJunk())
	}

	ctx := context.Background()
	if *seeds > 1 || *jsonOut {
		if *showTrace {
			return fmt.Errorf("-trace captures one run; it cannot be combined with -seeds/-json suite mode")
		}
		// -seeds k sweeps seeds 1..k; a plain -json run honours -seed.
		seedList := fastba.Seeds(*seeds)
		if *seeds <= 1 {
			seedList = []uint64{*seed}
		}
		return runSuite(ctx, *n, seedList, opts, *tcp, *jsonOut, *workers)
	}
	if *tcp {
		return runTCP(ctx, *n, *seed, opts, *showTrace)
	}
	return runSingle(ctx, *n, *seed, m, *adv, opts, *showTrace)
}

// runSuite is the sweep path: every execution mode of this tool funnels
// through the library's suite driver — no hand-rolled loops.
func runSuite(ctx context.Context, n int, seeds []uint64, opts []fastba.Option, tcp, jsonOut bool, workers int) error {
	suite := fastba.Suite{
		Name:    "aer-sim",
		Workers: workers,
		Sweep: fastba.Sweep{
			Ns:      []int{n},
			Seeds:   seeds,
			Options: opts,
		},
	}
	if tcp {
		suite.Kind = fastba.KindTCP
	}
	rep, err := fastba.RunSuite(ctx, suite)
	if err != nil {
		return err
	}
	if jsonOut {
		return rep.WriteJSON(os.Stdout)
	}
	rep.Render(os.Stdout)
	return nil
}

func runTCP(ctx context.Context, n int, seed uint64, opts []fastba.Option, showTrace bool) error {
	var tr *fastba.Trace
	if showTrace {
		tr = fastba.NewTrace(n)
		opts = append(opts, fastba.WithObserver(tr.Observer()))
	}
	res, err := fastba.RunTCP(ctx, fastba.NewConfig(n, append(opts, fastba.WithSeed(seed))...), 60*time.Second)
	if err != nil {
		return err
	}
	if tr != nil {
		// TCP runs have no logical clock, so there is no timeline — the
		// per-node delivery hotspots are the meaningful view.
		fmt.Println("hotspots (no timeline over TCP — deliveries carry no logical time):")
		tr.Hotspots(os.Stdout, 5)
	}
	fmt.Printf("AER over TCP n=%d seed=%d\n", n, seed)
	fmt.Printf("  gstring      %s\n", res.GString)
	fmt.Printf("  agreement    %v (%d/%d decided, %d on gstring, %d other, timed out %v)\n",
		res.Agreement, res.Decided, res.Correct, res.DecidedGString, res.DecidedOther, res.TimedOut)
	fmt.Printf("  wall time    %v\n", res.Wall.Round(time.Millisecond))
	fmt.Printf("  bits/node    mean %.0f, max %d\n", res.MeanBitsPerNode, res.MaxBitsPerNode)
	return nil
}

func runSingle(ctx context.Context, n int, seed uint64, m fastba.Model, adv string, opts []fastba.Option, showTrace bool) error {
	var tr *fastba.Trace
	if showTrace {
		tr = fastba.NewTrace(n)
		opts = append(opts, fastba.WithObserver(tr.Observer()))
	}
	res, err := fastba.RunAERContext(ctx, fastba.NewConfig(n, append(opts, fastba.WithSeed(seed))...))
	if err != nil {
		return err
	}
	if tr != nil {
		fmt.Println("message-flow timeline:")
		tr.Timeline(os.Stdout)
		fmt.Println("hotspots:")
		tr.Hotspots(os.Stdout, 5)
	}

	fmt.Printf("AER n=%d model=%v adversary=%s seed=%d\n", n, m, adv, seed)
	fmt.Printf("  gstring          %s\n", res.GString)
	fmt.Printf("  agreement        %v (%d/%d decided, %d on gstring, %d other)\n",
		res.Agreement, res.Decided, res.Correct, res.DecidedGString, res.DecidedOther)
	fmt.Printf("  time             %d (last decision at %d)\n", res.Time, res.LastDecision)
	fmt.Printf("  bits/node        mean %.0f, max %d\n", res.MeanBitsPerNode, res.MaxBitsPerNode)
	fmt.Printf("  messages         %d delivered\n", res.TotalMessages)
	fmt.Printf("  Σ|L_x|           %d over %d correct nodes\n", res.SumCandidates, res.Correct)
	fmt.Printf("  deferred answers %d\n", res.AnswersDeferred)
	var kinds []string
	for k := range res.MessagesByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  msg[%s] %d\n", k, res.MessagesByKind[k])
	}
	return nil
}

func parseModel(s string) (fastba.Model, error) {
	if s == "sync" { // legacy shorthand
		return fastba.SyncNonRushing, nil
	}
	return fastba.ParseModel(s)
}
