// Command ba-sim runs the full Byzantine Agreement pipeline — the
// KSSV06-style almost-everywhere committee phase followed by AER — and
// prints per-phase metrics.
//
// Example:
//
//	ba-sim -n 512 -corrupt 0.1 -adversary equivocate
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fastba/fastba"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ba-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ba-sim", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 256, "system size")
		seed    = fs.Uint64("seed", 1, "master seed")
		model   = fs.String("model", "sync", "AER phase model: sync | async | async-adversarial | goroutines")
		adv     = fs.String("adversary", "silent", "adversary: none | silent | flood | equivocate | corner | corner-rushing")
		corrupt = fs.Float64("corrupt", 0.10, "fraction of Byzantine nodes (t/n)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := fastba.SyncNonRushing
	switch *model {
	case "sync":
	case "async":
		m = fastba.Async
	case "async-adversarial":
		m = fastba.AsyncAdversarial
	case "goroutines":
		m = fastba.Goroutines
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	var a fastba.Adversary
	switch *adv {
	case "none":
		a = fastba.AdversaryNone
	case "silent":
		a = fastba.AdversarySilent
	case "flood":
		a = fastba.AdversaryFlood
	case "equivocate":
		a = fastba.AdversaryEquivocate
	case "corner":
		a = fastba.AdversaryCorner
	case "corner-rushing":
		a = fastba.AdversaryCornerRushing
	default:
		return fmt.Errorf("unknown adversary %q", *adv)
	}

	res, err := fastba.RunBA(fastba.NewConfig(*n,
		fastba.WithSeed(*seed),
		fastba.WithModel(m),
		fastba.WithAdversary(a),
		fastba.WithCorruptFrac(*corrupt),
	))
	if err != nil {
		return err
	}

	fmt.Printf("BA n=%d model=%v adversary=%v seed=%d\n", *n, m, a, *seed)
	fmt.Printf("  gstring            %s\n", res.GString)
	fmt.Printf("  AE phase           know=%.3f bits/node=%.0f rounds=%d\n",
		res.AE.KnowFrac, res.AE.MeanBitsPerNode, res.AE.Time)
	fmt.Printf("  AER phase          agreement=%v (%d/%d) time=%d bits/node=%.0f\n",
		res.AER.Agreement, res.AER.Decided, res.AER.Correct, res.AER.Time, res.AER.MeanBitsPerNode)
	fmt.Printf("  total              bits/node=%.0f time=%d\n", res.TotalMeanBitsPerNode, res.TotalTime)
	return nil
}
