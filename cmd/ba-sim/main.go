// Command ba-sim runs the full Byzantine Agreement pipeline — the
// KSSV06-style almost-everywhere committee phase followed by AER — and
// prints per-phase metrics. A single seed prints the detailed view;
// multiple seeds run through the parallel suite driver and print the
// aggregated report.
//
// Examples:
//
//	ba-sim -n 512 -corrupt 0.1 -adversary equivocate
//	ba-sim -n 256 -seeds 10 -json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/fastba/fastba"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ba-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ba-sim", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 256, "system size")
		seed    = fs.Uint64("seed", 1, "master seed (single-run mode)")
		seeds   = fs.Int("seeds", 1, "number of seeds: > 1 runs a parallel suite and prints the aggregate report")
		model   = fs.String("model", "sync-nonrushing", "AER phase model: sync-nonrushing | sync-rushing | async | async-adversarial | goroutines")
		adv     = fs.String("adversary", "silent", "adversary registry name: "+strings.Join(fastba.RegisteredAdversaries(), " | "))
		corrupt = fs.Float64("corrupt", 0.10, "fraction of Byzantine nodes (t/n)")
		jsonOut = fs.Bool("json", false, "print the suite report as JSON (implies suite mode)")
		workers = fs.Int("workers", 0, "suite worker-pool size (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *model == "sync" { // legacy shorthand
		*model = fastba.SyncNonRushing.String()
	}
	m, err := fastba.ParseModel(*model)
	if err != nil {
		return err
	}
	opts := []fastba.Option{
		fastba.WithModel(m),
		fastba.WithAdversaryName(*adv),
		fastba.WithCorruptFrac(*corrupt),
	}
	ctx := context.Background()

	if *seeds > 1 || *jsonOut {
		// -seeds k sweeps seeds 1..k; a plain -json run honours -seed.
		seedList := fastba.Seeds(*seeds)
		if *seeds <= 1 {
			seedList = []uint64{*seed}
		}
		rep, err := fastba.RunSuite(ctx, fastba.Suite{
			Name:    "ba-sim",
			Kind:    fastba.KindBA,
			Workers: *workers,
			Sweep: fastba.Sweep{
				Ns:      []int{*n},
				Seeds:   seedList,
				Options: opts,
			},
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			return rep.WriteJSON(os.Stdout)
		}
		rep.Render(os.Stdout)
		return nil
	}

	res, err := fastba.RunBAContext(ctx, fastba.NewConfig(*n, append(opts, fastba.WithSeed(*seed))...))
	if err != nil {
		return err
	}

	fmt.Printf("BA n=%d model=%v adversary=%s seed=%d\n", *n, m, *adv, *seed)
	fmt.Printf("  gstring            %s\n", res.GString)
	fmt.Printf("  AE phase           know=%.3f bits/node=%.0f rounds=%d\n",
		res.AE.KnowFrac, res.AE.MeanBitsPerNode, res.AE.Time)
	fmt.Printf("  AER phase          agreement=%v (%d/%d) time=%d bits/node=%.0f\n",
		res.AER.Agreement, res.AER.Decided, res.AER.Correct, res.AER.Time, res.AER.MeanBitsPerNode)
	fmt.Printf("  total              bits/node=%.0f time=%d\n", res.TotalMeanBitsPerNode, res.TotalTime)
	return nil
}
