// Command balogd is the standalone fast-BA log daemon: one OS process
// hosting k protocol nodes of a D-daemon cluster (population n = D·k),
// a durable WAL, a catch-up listener, the client/admin listener and a
// Prometheus /metrics endpoint. A cluster is D copies of this process
// with identical -cluster/-k/-seed/-epoch flags and distinct -node
// indices; daemon 0 leads (sequences client appends).
//
// Example — a 4-daemon local cluster (run each in its own shell):
//
//	balogd -node 0 -cluster 127.0.0.1:7000,127.0.0.1:7100,127.0.0.1:7200,127.0.0.1:7300 -store /tmp/balog/d0
//	balogd -node 1 -cluster 127.0.0.1:7000,127.0.0.1:7100,127.0.0.1:7200,127.0.0.1:7300 -store /tmp/balog/d1
//	balogd -node 2 -cluster 127.0.0.1:7000,127.0.0.1:7100,127.0.0.1:7200,127.0.0.1:7300 -store /tmp/balog/d2
//	balogd -node 3 -cluster 127.0.0.1:7000,127.0.0.1:7100,127.0.0.1:7200,127.0.0.1:7300 -store /tmp/balog/d3
//
// Each daemon owns the port block [port, port+k+2] of its base address:
// k node-mesh listeners, then catch-up, client/admin, and metrics HTTP.
// SIGTERM/SIGINT shut down gracefully: parked group-commit waiters
// flush, client connections drain their acks, then the WAL closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/fastba/fastba/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "balogd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("balogd", flag.ContinueOnError)
	var (
		node      = fs.Int("node", 0, "this daemon's index into -cluster")
		cluster   = fs.String("cluster", "", "comma-separated daemon base addresses (host:port), identical on every daemon")
		perDaemon = fs.Int("k", 2, "protocol nodes hosted per daemon (population = daemons × k, must be ≥ 8)")
		seed      = fs.Uint64("seed", 1, "cluster-wide master seed (identical on every daemon)")
		epoch     = fs.Uint64("epoch", 1, "configuration epoch (bump when the peer set changes)")
		storeDir  = fs.String("store", "", "WAL directory (required)")
		depth     = fs.Int("depth", 4, "concurrently open instances")
		batchMax  = fs.Int("batch", 16, "payloads folded into one instance")
		queueMax  = fs.Int("queue", 64, "per-client admission queue bound")
		syncWin   = fs.Duration("syncwindow", 2*time.Millisecond, "WAL group-commit window")
		timeout   = fs.Duration("timeout", 30*time.Second, "head-instance failure timeout (leader)")
		repropose = fs.Duration("repropose", 2*time.Second, "stalled-instance reproposal interval (leader)")
		quiet     = fs.Bool("quiet", false, "suppress the status ticker and lifecycle log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cluster == "" {
		return fmt.Errorf("-cluster is required")
	}
	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	addrs := strings.Split(*cluster, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	cfg := server.Config{
		ClusterAddrs:    addrs,
		Daemon:          *node,
		PerDaemon:       *perDaemon,
		Seed:            *seed,
		Epoch:           *epoch,
		StoreDir:        *storeDir,
		Depth:           *depth,
		BatchMax:        *batchMax,
		QueueMax:        *queueMax,
		SyncWindow:      *syncWin,
		InstanceTimeout: *timeout,
		ReproposeAfter:  *repropose,
	}
	logf := func(string, ...any) {}
	if !*quiet {
		logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
		cfg.Logf = logger.Printf
		logf = logger.Printf
	}

	d, err := server.New(cfg)
	if err != nil {
		return err
	}
	d.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		logf("balogd[%d]: %v: shutting down", *node, s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return d.Shutdown(ctx)
	case <-d.Failed():
		// The replica failed (instance timeout, store error): exit nonzero
		// so a supervisor restarts the process.
		return d.Err()
	}
}
