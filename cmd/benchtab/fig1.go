package main

import (
	"fmt"
	"os"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/metrics"
)

// fig1a regenerates Figure 1(a): the almost-everywhere-to-everywhere
// comparison — [KLST11-style] vs AER under sync-non-rushing and async —
// over time, bits per node and load balance.
func fig1a(sw sweep) error {
	tb := metrics.NewTable(
		"Figure 1(a) — almost-everywhere to everywhere (measured; paper rows: KLST11 O(log²n)/Õ(√n)/LB, AER-SNR O(1)/O(log²n)/unbalanced, AER-async O(logn/loglogn))",
		"protocol", "model", "n", "time", "bits/node", "max bits/node", "max/mean", "agree")

	type series struct{ xs, bits []float64 }
	collected := map[string]*series{}
	record := func(proto string, n int, time int, mean float64, max int64, agree bool) {
		ratio := float64(max) / mean
		tb.Add(proto, protoModel(proto), fmt.Sprint(n), fmt.Sprint(time),
			metrics.Bits(mean), metrics.Bits(float64(max)), fmt.Sprintf("%.1f", ratio), fmt.Sprint(agree))
		s := collected[proto]
		if s == nil {
			s = &series{}
			collected[proto] = s
		}
		s.xs = append(s.xs, float64(n))
		s.bits = append(s.bits, mean)
	}

	for _, n := range sw.ns {
		cfg := func(opts ...fastba.Option) fastba.Config {
			base := []fastba.Option{fastba.WithSeed(7), fastba.WithCorruptFrac(0.05), fastba.WithKnowFrac(0.92)}
			return fastba.NewConfig(n, append(base, opts...)...)
		}

		sync, err := fastba.RunAER(cfg())
		if err != nil {
			return err
		}
		record("AER", n, sync.Time, sync.MeanBitsPerNode, sync.MaxBitsPerNode, sync.Agreement)

		async, err := fastba.RunAER(cfg(fastba.WithModel(fastba.Async)))
		if err != nil {
			return err
		}
		record("AER-async", n, async.Time, async.MeanBitsPerNode, async.MaxBitsPerNode, async.Agreement)

		klst, err := fastba.RunBaseline(cfg(), fastba.BaselineKLST11)
		if err != nil {
			return err
		}
		record("KLST11", n, klst.Time, klst.MeanBitsPerNode, klst.MaxBitsPerNode, klst.Agreement)
	}
	tb.Render(os.Stdout)

	fmt.Println("growth fits (bits/node):")
	for _, proto := range []string{"AER", "AER-async", "KLST11"} {
		s := collected[proto]
		fmt.Printf("  %-10s ~ n^%.2f  ~ log(n)^%.1f\n", proto,
			metrics.PowerFit(s.xs, s.bits), metrics.PolylogFit(s.xs, s.bits))
	}
	fmt.Println("shape check: AER time is flat (O(1) sync) and its bits grow polylog —")
	fmt.Println("n-exponent → 0 as n grows — while KLST11 stays ≈ n^0.5 and load-balanced.")
	return nil
}

func protoModel(proto string) string {
	switch proto {
	case "AER":
		return "sync-NR"
	case "AER-async":
		return "async"
	default:
		return "sync"
	}
}

// fig1b regenerates Figure 1(b): end-to-end Byzantine Agreement — measured
// rows for BA (AE + AER), the flood yardstick and the Rabin/PR10-class
// baseline, plus the paper-reported analytical rows that cannot reasonably
// be run (BOPV06's n^O(log n) bits; KS13's Õ(n^2.5) expected time).
func fig1b(sw sweep) error {
	tb := metrics.NewTable(
		"Figure 1(b) — Byzantine Agreement",
		"protocol", "source", "n", "resilience", "time", "total bits", "bits/node", "agree")

	for _, n := range sw.ns {
		ba, err := fastba.RunBA(fastba.NewConfig(n, fastba.WithSeed(7), fastba.WithCorruptFrac(0.05)))
		if err != nil {
			return err
		}
		totalBits := ba.TotalMeanBitsPerNode * float64(n)
		tb.Add("BA (AE+AER)", "measured", fmt.Sprint(n), "3t+1",
			fmt.Sprint(ba.TotalTime), metrics.Bits(totalBits),
			metrics.Bits(ba.TotalMeanBitsPerNode), fmt.Sprint(ba.AER.Agreement))

		cfg := fastba.NewConfig(n, fastba.WithSeed(7), fastba.WithCorruptFrac(0.05), fastba.WithKnowFrac(0.92))
		flood, err := fastba.RunBaseline(cfg, fastba.BaselineFlood)
		if err != nil {
			return err
		}
		tb.Add("flood", "measured", fmt.Sprint(n), "2t+1",
			fmt.Sprint(flood.Time), metrics.Bits(flood.MeanBitsPerNode*float64(n)),
			metrics.Bits(flood.MeanBitsPerNode), fmt.Sprint(flood.Agreement))

		rabin, err := fastba.RunBaseline(cfg, fastba.BaselineRabin)
		if err != nil {
			return err
		}
		tb.Add("Rabin/PR10-class", "measured", fmt.Sprint(n), "4t+1",
			fmt.Sprint(rabin.Time), metrics.Bits(rabin.MeanBitsPerNode*float64(n)),
			metrics.Bits(rabin.MeanBitsPerNode), fmt.Sprint(rabin.Agreement))
	}

	// Paper-reported rows for protocols outside simulatable reach.
	tb.Add("BOPV06", "analytical", "-", "4t+1", "O(log n)", "n^O(log n)", "n^O(log n)", "-")
	tb.Add("KLST11-BA", "analytical", "-", "3t+1", "polylog", "Õ(n^1.5)", "Õ(√n)", "-")
	tb.Add("KS13", "analytical", "-", "500t", "Õ(n^2.5)", "?", "?", "-")
	tb.Render(os.Stdout)
	fmt.Println("who wins: BA's bits/node grows polylog (the paper's headline);")
	fmt.Println("flood and Rabin-class grow Θ(n) per node (Θ(n²) total). At laptop n the")
	fmt.Println("absolute constants still favour flood — see EXPERIMENTS.md for the")
	fmt.Println("measured exponents and the extrapolated crossover.")
	return nil
}
