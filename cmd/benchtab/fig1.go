package main

import (
	"fmt"
	"os"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/metrics"
)

// fig1a regenerates Figure 1(a): the almost-everywhere-to-everywhere
// comparison — [KLST11-style] vs AER under sync-non-rushing and async —
// over time, bits per node and load balance. Both protocol families run
// through the suite driver; this function only arranges cells into the
// paper's row order.
func fig1a(sw sweep) error {
	base := []fastba.Option{fastba.WithCorruptFrac(0.05), fastba.WithKnowFrac(0.92)}

	aer, err := mustSuite(fastba.Suite{
		Name: "fig1a-aer",
		Sweep: fastba.Sweep{
			Ns:      sw.ns,
			Seeds:   []uint64{7},
			Models:  []fastba.Model{fastba.SyncNonRushing, fastba.Async},
			Options: base,
		},
	})
	if err != nil {
		return err
	}
	klst, err := mustSuite(fastba.Suite{
		Name:     "fig1a-klst11",
		Kind:     fastba.KindBaseline,
		Baseline: fastba.BaselineKLST11,
		Sweep:    fastba.Sweep{Ns: sw.ns, Seeds: []uint64{7}, Options: base},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"Figure 1(a) — almost-everywhere to everywhere (measured; paper rows: KLST11 O(log²n)/Õ(√n)/LB, AER-SNR O(1)/O(log²n)/unbalanced, AER-async O(logn/loglogn))",
		"protocol", "model", "n", "time", "bits/node", "max bits/node", "max/mean", "agree")

	type series struct{ xs, bits []float64 }
	collected := map[string]*series{}
	record := func(proto, model string, cr *fastba.CellReport) {
		rec := cr.Records[0]
		tb.Add(proto, model, fmt.Sprint(cr.Cell.N), fmt.Sprint(rec.Time),
			metrics.Bits(rec.MeanBitsPerNode), metrics.Bits(float64(rec.MaxBitsPerNode)),
			fmt.Sprintf("%.1f", float64(rec.MaxBitsPerNode)/rec.MeanBitsPerNode),
			fmt.Sprint(rec.Agreement))
		s := collected[proto]
		if s == nil {
			s = &series{}
			collected[proto] = s
		}
		s.xs = append(s.xs, float64(cr.Cell.N))
		s.bits = append(s.bits, rec.MeanBitsPerNode)
	}

	for _, n := range sw.ns {
		forN := func(c fastba.Cell) bool { return c.N == n }
		for _, cr := range aer.Find(forN) {
			proto, model := "AER", "sync-NR"
			if cr.Cell.Model == fastba.Async.String() {
				proto, model = "AER-async", "async"
			}
			record(proto, model, cr)
		}
		for _, cr := range klst.Find(forN) {
			record("KLST11", "sync", cr)
		}
	}
	tb.Render(os.Stdout)

	fmt.Println("growth fits (bits/node):")
	for _, proto := range []string{"AER", "AER-async", "KLST11"} {
		s := collected[proto]
		if len(s.xs) < 2 { // a fit needs ≥ 2 population sizes
			fmt.Printf("  %-10s (need ≥ 2 values of n, got %d)\n", proto, len(s.xs))
			continue
		}
		fmt.Printf("  %-10s ~ n^%.2f  ~ log(n)^%.1f\n", proto,
			metrics.PowerFit(s.xs, s.bits), metrics.PolylogFit(s.xs, s.bits))
	}
	fmt.Println("shape check: AER time is flat (O(1) sync) and its bits grow polylog —")
	fmt.Println("n-exponent → 0 as n grows — while KLST11 stays ≈ n^0.5 and load-balanced.")
	return nil
}

// fig1b regenerates Figure 1(b): end-to-end Byzantine Agreement — measured
// rows for BA (AE + AER), the flood yardstick and the Rabin/PR10-class
// baseline, plus the paper-reported analytical rows that cannot reasonably
// be run (BOPV06's n^O(log n) bits; KS13's Õ(n^2.5) expected time).
func fig1b(sw sweep) error {

	ba, err := mustSuite(fastba.Suite{
		Name: "fig1b-ba",
		Kind: fastba.KindBA,
		Sweep: fastba.Sweep{
			Ns:      sw.ns,
			Seeds:   []uint64{7},
			Options: []fastba.Option{fastba.WithCorruptFrac(0.05)},
		},
	})
	if err != nil {
		return err
	}
	baseSweep := fastba.Sweep{
		Ns:      sw.ns,
		Seeds:   []uint64{7},
		Options: []fastba.Option{fastba.WithCorruptFrac(0.05), fastba.WithKnowFrac(0.92)},
	}
	flood, err := mustSuite(fastba.Suite{
		Name: "fig1b-flood", Kind: fastba.KindBaseline, Baseline: fastba.BaselineFlood, Sweep: baseSweep,
	})
	if err != nil {
		return err
	}
	rabin, err := mustSuite(fastba.Suite{
		Name: "fig1b-rabin", Kind: fastba.KindBaseline, Baseline: fastba.BaselineRabin, Sweep: baseSweep,
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"Figure 1(b) — Byzantine Agreement",
		"protocol", "source", "n", "resilience", "time", "total bits", "bits/node", "agree")

	for i, n := range sw.ns {
		baRec := ba.Cells[i].Records[0]
		tb.Add("BA (AE+AER)", "measured", fmt.Sprint(n), "3t+1",
			fmt.Sprint(baRec.TotalTime), metrics.Bits(baRec.TotalMeanBitsPerNode*float64(n)),
			metrics.Bits(baRec.TotalMeanBitsPerNode), fmt.Sprint(baRec.Agreement))

		floodRec := flood.Cells[i].Records[0]
		tb.Add("flood", "measured", fmt.Sprint(n), "2t+1",
			fmt.Sprint(floodRec.Time), metrics.Bits(floodRec.MeanBitsPerNode*float64(n)),
			metrics.Bits(floodRec.MeanBitsPerNode), fmt.Sprint(floodRec.Agreement))

		rabinRec := rabin.Cells[i].Records[0]
		tb.Add("Rabin/PR10-class", "measured", fmt.Sprint(n), "4t+1",
			fmt.Sprint(rabinRec.Time), metrics.Bits(rabinRec.MeanBitsPerNode*float64(n)),
			metrics.Bits(rabinRec.MeanBitsPerNode), fmt.Sprint(rabinRec.Agreement))
	}

	// Paper-reported rows for protocols outside simulatable reach.
	tb.Add("BOPV06", "analytical", "-", "4t+1", "O(log n)", "n^O(log n)", "n^O(log n)", "-")
	tb.Add("KLST11-BA", "analytical", "-", "3t+1", "polylog", "Õ(n^1.5)", "Õ(√n)", "-")
	tb.Add("KS13", "analytical", "-", "500t", "Õ(n^2.5)", "?", "?", "-")
	tb.Render(os.Stdout)
	fmt.Println("who wins: BA's bits/node grows polylog (the paper's headline);")
	fmt.Println("flood and Rabin-class grow Θ(n) per node (Θ(n²) total). At laptop n the")
	fmt.Println("absolute constants still favour flood — see EXPERIMENTS.md for the")
	fmt.Println("measured exponents and the extrapolated crossover.")
	return nil
}
