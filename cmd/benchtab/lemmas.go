package main

import (
	"fmt"
	"os"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/adversary"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/metrics"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/sampler"
	"github.com/fastba/fastba/internal/simnet"
)

// probeConfig is the population used by the lemma probes: the default
// (tight) fault model under a flooding adversary.
func probeScenario(n int, seed uint64) (*core.Scenario, error) {
	return core.NewScenario(core.DefaultParams(n), seed, core.DefaultScenarioConfig())
}

// runProbe executes one synchronous AER run with the given strategy.
func runProbe(sc *core.Scenario, st adversary.Strategy) ([]*core.Node, *simnet.Metrics) {
	var mk func(int) simnet.Node
	if st != nil {
		mk = adversary.Maker(st, adversary.FromScenario(sc))
	}
	nodes, correct := sc.Build(mk)
	m := simnet.NewSync(nodes, sc.Corrupt).Run(60)
	return correct, m
}

// lemma3 measures the push phase: messages and bits sent per correct node
// must be O(log n) messages of O(log n) bits — flat against flooding.
func lemma3(sw sweep) error {
	tb := metrics.NewTable(
		"Lemma 3 — push-phase communication per correct node is O(s·log n), adversary-independent",
		"n", "d=|I|", "push msgs/node (silent)", "push msgs/node (flood)", "push bits/node", "bound d")
	for _, n := range sw.ns {
		p := core.DefaultParams(n)
		var perAdv [2]float64
		for i, st := range []adversary.Strategy{adversary.Silent{}, adversary.Flood{Strings: 10}} {
			sc, err := probeScenario(n, 7)
			if err != nil {
				return err
			}
			correct, _ := runProbe(sc, st)
			var pushes, count float64
			for _, node := range correct {
				if node != nil {
					pushes += float64(node.Stats().PushesSent)
					count++
				}
			}
			perAdv[i] = pushes / count
		}
		pushBits := perAdv[0] * float64(p.StringBits+11*8) // payload + envelope
		tb.Add(fmt.Sprint(n), fmt.Sprint(p.QuorumSize),
			fmt.Sprintf("%.1f", perAdv[0]), fmt.Sprintf("%.1f", perAdv[1]),
			metrics.Bits(pushBits), fmt.Sprint(p.QuorumSize))
	}
	tb.Render(os.Stdout)
	fmt.Println("push sends are bounded by d = O(log n) and unchanged by flooding.")
	return nil
}

// lemma4 measures Σ|L_x|: the sum of candidate-list sizes stays O(n) under
// the flooding adversary.
func lemma4(sw sweep) error {
	tb := metrics.NewTable(
		"Lemma 4 — Σ|L_x| = O(n) under push flooding",
		"n", "adversary", "Σ|L_x|", "Σ|L_x| / correct", "agree")
	for _, n := range sw.ns {
		for _, st := range []adversary.Strategy{adversary.Silent{}, adversary.Flood{Strings: 10}} {
			sc, err := probeScenario(n, 7)
			if err != nil {
				return err
			}
			correct, _ := runProbe(sc, st)
			o := core.Evaluate(correct, sc.GString)
			tb.Add(fmt.Sprint(n), st.Name(), fmt.Sprint(o.SumCandidates),
				fmt.Sprintf("%.2f", float64(o.SumCandidates)/float64(o.Correct)),
				fmt.Sprint(o.Agreement()))
		}
	}
	tb.Render(os.Stdout)
	fmt.Println("candidate lists stay ≈ 1 entry per node regardless of flooding.")
	return nil
}

// lemma5 measures push-phase coverage: the fraction of runs in which every
// correct node ends the push phase with gstring in its candidate list.
func lemma5(sw sweep) error {
	tb := metrics.NewTable(
		"Lemma 5 — w.h.p. every node has gstring in its candidate list after the push",
		"n", "runs", "full-coverage runs", "worst node coverage")
	for _, n := range sw.ns {
		fullRuns := 0
		worst := 1.0
		for seed := uint64(1); seed <= uint64(sw.seeds); seed++ {
			sc, err := probeScenario(n, seed)
			if err != nil {
				return err
			}
			correct, _ := runProbe(sc, adversary.Flood{Strings: 6})
			have, count := 0, 0
			for _, node := range correct {
				if node == nil {
					continue
				}
				count++
				if node.HasCandidate(sc.GString) {
					have++
				}
			}
			frac := float64(have) / float64(count)
			if frac == 1 {
				fullRuns++
			}
			if frac < worst {
				worst = frac
			}
		}
		tb.Add(fmt.Sprint(n), fmt.Sprint(sw.seeds), fmt.Sprint(fullRuns), fmt.Sprintf("%.4f", worst))
	}
	tb.Render(os.Stdout)
	return nil
}

// lemma6 measures decision times under overload: the answer budget is
// swept from below honest demand (where deferral cascades stretch and can
// stall decisions — the regime the adversary aims for) through the paper's
// safe log² n zone, with and without the rushing cornering attack
// (Lemmas 6 and 8). Honest per-node demand at n=128 measures ≈ p50 19 /
// max 32 answers, so budgets are expressed relative to the quorum size d.
func lemma6(sw sweep) error {
	tb := metrics.NewTable(
		"Lemmas 6+8 — decision time vs answer budget (n fixed; rushing corner vs quiet)",
		"n", "budget", "adversary", "p50", "p95", "max", "deferred", "decided frac")
	n := sw.ns[len(sw.ns)-1]
	d := core.DefaultParams(n).QuorumSize
	budgets := []int{d / 2, 3 * d / 4, d, 21 * d / 13, 0} // deep overload … log²n-like … unlimited
	for _, budget := range budgets {
		for _, s := range []struct {
			name  string
			model fastba.Model
			adv   fastba.Adversary
		}{
			{"silent", fastba.SyncNonRushing, fastba.AdversarySilent},
			{"corner-rushing", fastba.SyncRushing, fastba.AdversaryCornerRushing},
			{"async corner", fastba.AsyncAdversarial, fastba.AdversaryCorner},
		} {
			res, err := fastba.RunAER(fastba.NewConfig(n,
				fastba.WithSeed(11), fastba.WithModel(s.model), fastba.WithAdversary(s.adv),
				fastba.WithCorruptFrac(0.10), fastba.WithKnowFrac(0.90),
				fastba.WithAnswerBudget(budget)))
			if err != nil {
				return err
			}
			times := make([]float64, len(res.DecisionTimes))
			for i, v := range res.DecisionTimes {
				times[i] = float64(v)
			}
			if len(times) == 0 {
				times = []float64{-1}
			}
			label := fmt.Sprint(budget)
			if budget == 0 {
				label = "unlimited"
			}
			tb.Add(fmt.Sprint(n), label, s.name,
				fmt.Sprintf("%.0f", metrics.Quantile(times, 0.5)),
				fmt.Sprintf("%.0f", metrics.Quantile(times, 0.95)),
				fmt.Sprintf("%.0f", metrics.Quantile(times, 1)),
				fmt.Sprint(res.AnswersDeferred),
				fmt.Sprintf("%.3f", float64(res.Decided)/float64(res.Correct)))
		}
	}
	tb.Render(os.Stdout)
	fmt.Println("the paper's log² n budget sits above honest demand by design: decisions")
	fmt.Println("stay constant-time. Below demand, answers defer until budget holders decide")
	fmt.Println("— the dependency chains of Lemma 6 — stretching the tail and, far below")
	fmt.Println("demand, stalling the cascade. The attack adds deferrals at its targets.")
	return nil
}

// lemma7 measures the agreement rate (Lemmas 7, 9, 10) across seeds,
// models and adversaries, on the default (tight) population.
func lemma7(sw sweep) error {
	tb := metrics.NewTable(
		"Lemmas 7/9/10 — agreement w.h.p. across models and adversaries (default population)",
		"n", "model", "adversary", "runs", "agreement runs", "worst decided frac")
	type cell struct {
		model fastba.Model
		adv   fastba.Adversary
		relay bool
	}
	cells := []cell{
		{fastba.SyncNonRushing, fastba.AdversarySilent, false},
		{fastba.SyncNonRushing, fastba.AdversaryFlood, false},
		{fastba.SyncNonRushing, fastba.AdversaryEquivocate, false},
		{fastba.Async, fastba.AdversarySilent, false},
		{fastba.Async, fastba.AdversaryEquivocate, false},
		{fastba.SyncNonRushing, fastba.AdversarySilent, true},
		{fastba.Async, fastba.AdversaryEquivocate, true},
	}
	n := sw.ns[len(sw.ns)-1]
	for _, c := range cells {
		agreeRuns := 0
		worst := 1.0
		for seed := uint64(1); seed <= uint64(sw.seeds); seed++ {
			opts := []fastba.Option{
				fastba.WithSeed(seed), fastba.WithModel(c.model), fastba.WithAdversary(c.adv),
			}
			if c.relay {
				opts = append(opts, fastba.WithDeferredRelay())
			}
			res, err := fastba.RunAER(fastba.NewConfig(n, opts...))
			if err != nil {
				return err
			}
			if res.Agreement {
				agreeRuns++
			}
			if frac := float64(res.DecidedGString) / float64(res.Correct); frac < worst {
				worst = frac
			}
			if res.DecidedOther > 0 {
				worst = 0 // validity violation would be fatal
			}
		}
		name := c.adv.String()
		if c.relay {
			name += "+relay"
		}
		tb.Add(fmt.Sprint(n), c.model.String(), name,
			fmt.Sprint(sw.seeds), fmt.Sprint(agreeRuns), fmt.Sprintf("%.4f", worst))
	}
	tb.Render(os.Stdout)
	fmt.Println("w.h.p. at small n and d = 3·log₂n: isolated nodes can miss strict quorum")
	fmt.Println("majorities (never validity — no run decides a non-gstring value); the")
	fmt.Println("deferred-relay extension closes exactly that tail (see E13).")
	return nil
}

// nofault verifies the §1 claim: with no Byzantine fault, success is
// guaranteed, not just probable.
func nofault(sw sweep) error {
	tb := metrics.NewTable(
		"§1 — success guaranteed without Byzantine faults (t = 0)",
		"n", "runs", "agreement runs")
	for _, n := range sw.ns {
		agree := 0
		runs := sw.seeds * 4
		for seed := uint64(1); seed <= uint64(runs); seed++ {
			res, err := fastba.RunAER(fastba.NewConfig(n,
				fastba.WithSeed(seed), fastba.WithAdversary(fastba.AdversaryNone),
				fastba.WithKnowFrac(0.9)))
			if err != nil {
				return err
			}
			if res.Agreement {
				agree++
			}
		}
		tb.Add(fmt.Sprint(n), fmt.Sprint(runs), fmt.Sprint(agree))
	}
	tb.Render(os.Stdout)
	return nil
}

// property2 checks Lemma 2 Property 2 empirically: random and greedy
// corner-seeking pair sets L must keep border expansion above 2/3·d·|L|,
// and the keyed construction must track the §4.1 uniform-digraph model the
// proof actually analyzes.
func property2(sw sweep) error {
	tb := metrics.NewTable(
		"Lemma 2 Property 2 — border expansion of J (must stay > 2/3)",
		"n", "d", "|L|", "random-L min (20 trials)", "greedy-L", "§4.1 model min", "holds")
	for _, n := range sw.ns {
		p := core.DefaultParams(n)
		poll := sampler.NewPoll(n, p.PollSize, p.Labels, p.SamplerSeed)
		src := prng.New(99)
		size := n / 8

		minRandom := 3.0
		for trial := 0; trial < 20; trial++ {
			used := map[int]bool{}
			var L []sampler.Pair
			for len(L) < size {
				x := src.Intn(n)
				if used[x] {
					continue
				}
				used[x] = true
				L = append(L, sampler.Pair{X: x, R: src.Uint64()})
			}
			if r := sampler.BorderExpansion(poll, L).Ratio; r < minRandom {
				minRandom = r
			}
		}
		greedy := sampler.GreedyCorner(poll, size, 24, 8, src)
		model := sampler.DigraphBorderStats(n, p.PollSize, size, 200, src)
		holds := minRandom > 2.0/3 && greedy.Ratio > 2.0/3 && model.Violations == 0
		tb.Add(fmt.Sprint(n), fmt.Sprint(p.PollSize), fmt.Sprint(size),
			fmt.Sprintf("%.3f", minRandom), fmt.Sprintf("%.3f", greedy.Ratio),
			fmt.Sprintf("%.3f", model.MinRatio), fmt.Sprint(holds))
	}
	tb.Render(os.Stdout)
	return nil
}

// ablation covers E12/E13: the answer budget (load-balance trade-off of
// §5), the deferred-relay extension, and the sampler construction.
func ablation(sw sweep) error {
	n := sw.ns[len(sw.ns)-1]

	tb := metrics.NewTable(
		"E12 — answer budget ablation under the rushing corner attack (n="+fmt.Sprint(n)+"): time vs protection trade-off (§5)",
		"budget", "deferred", "max bits/node", "max/mean", "last decision", "agree")
	d := core.DefaultParams(n).QuorumSize
	for _, b := range []int{0, d / 2, 21 * d / 13} {
		res, err := fastba.RunAER(fastba.NewConfig(n,
			fastba.WithSeed(11), fastba.WithModel(fastba.SyncRushing),
			fastba.WithAdversary(fastba.AdversaryCornerRushing),
			fastba.WithCorruptFrac(0.10), fastba.WithKnowFrac(0.90),
			fastba.WithAnswerBudget(b)))
		if err != nil {
			return err
		}
		label := fmt.Sprint(b)
		if b == 0 {
			label = "unlimited"
		}
		tb.Add(label, fmt.Sprint(res.AnswersDeferred), metrics.Bits(float64(res.MaxBitsPerNode)),
			fmt.Sprintf("%.1f", float64(res.MaxBitsPerNode)/res.MeanBitsPerNode),
			fmt.Sprint(res.LastDecision), fmt.Sprint(res.Agreement))
	}
	tb.Render(os.Stdout)

	tb2 := metrics.NewTable(
		"E13 — deferred-relay extension: agreement rate on the tight default population (n="+fmt.Sprint(n)+")",
		"deferred relay", "runs", "agreement runs")
	for _, relay := range []bool{false, true} {
		agree := 0
		for seed := uint64(1); seed <= uint64(sw.seeds*2); seed++ {
			opts := []fastba.Option{fastba.WithSeed(seed)}
			if relay {
				opts = append(opts, fastba.WithDeferredRelay())
			}
			res, err := fastba.RunAER(fastba.NewConfig(n, opts...))
			if err != nil {
				return err
			}
			if res.Agreement {
				agree++
			}
		}
		tb2.Add(fmt.Sprint(relay), fmt.Sprint(sw.seeds*2), fmt.Sprint(agree))
	}
	tb2.Render(os.Stdout)

	tb3 := metrics.NewTable(
		"E12b — sampler construction: permutation (Lemma 1, no overload) vs naive hashing",
		"n", "d", "perm MaxLoad", "hash MaxLoad")
	for _, n := range sw.ns {
		p := core.DefaultParams(n)
		perm := sampler.NewPermQuorum(n, p.QuorumSize, p.SamplerSeed, "I")
		hash := sampler.NewHashQuorum(n, p.QuorumSize, p.SamplerSeed, "I")
		src := prng.New(5)
		worstPerm, worstHash := 0, 0
		for k := 0; k < 5; k++ {
			s := randomString(src, p.StringBits)
			if l := sampler.MaxLoad(perm, s); l > worstPerm {
				worstPerm = l
			}
			if l := sampler.MaxLoad(hash, s); l > worstHash {
				worstHash = l
			}
		}
		tb3.Add(fmt.Sprint(n), fmt.Sprint(p.QuorumSize), fmt.Sprint(worstPerm), fmt.Sprint(worstHash))
	}
	tb3.Render(os.Stdout)
	return nil
}
