package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/metrics"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/sampler"
)

// The lemma probes sweep the default (tight) population — 10% corruption,
// 85% knowledge — which is exactly NewConfig's default, so the suites
// below only list the dimensions under study. Flooding-intensity variants
// of the built-in adversary register through the public registry once.

func registerFloodVariants() error {
	for name, count := range map[string]int{"flood10": 10, "flood6": 6} {
		if err := fastba.RegisterAdversary(name, fastba.FloodStrategy(count, 0)); err != nil {
			return err
		}
	}
	return nil
}

// lemma3 measures the push phase: messages and bits sent per correct node
// must be O(s·log n) — flat against flooding.
func lemma3(sw sweep) error {
	rep, err := mustSuite(fastba.Suite{
		Name: "lemma3",
		Sweep: fastba.Sweep{
			Ns:          sw.ns,
			Seeds:       []uint64{7},
			Adversaries: []string{"silent", "flood10"},
		},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"Lemma 3 — push-phase communication per correct node is O(s·log n), adversary-independent",
		"n", "d=|I|", "push msgs/node (silent)", "push msgs/node (flood)", "push bits/node", "bound d")
	for _, n := range sw.ns {
		cells := rep.Find(func(c fastba.Cell) bool { return c.N == n })
		silent, flood := cells[0].Records[0], cells[1].Records[0]
		p := core.DefaultParams(n)
		pushBits := silent.PushesPerCorrect * float64(p.StringBits+11*8) // payload + envelope
		tb.Add(fmt.Sprint(n), fmt.Sprint(p.QuorumSize),
			fmt.Sprintf("%.1f", silent.PushesPerCorrect), fmt.Sprintf("%.1f", flood.PushesPerCorrect),
			metrics.Bits(pushBits), fmt.Sprint(p.QuorumSize))
	}
	tb.Render(os.Stdout)
	fmt.Println("push sends are bounded by d = O(log n) and unchanged by flooding.")
	return nil
}

// lemma4 measures Σ|L_x|: the sum of candidate-list sizes stays O(n) under
// the flooding adversary.
func lemma4(sw sweep) error {
	rep, err := mustSuite(fastba.Suite{
		Name: "lemma4",
		Sweep: fastba.Sweep{
			Ns:          sw.ns,
			Seeds:       []uint64{7},
			Adversaries: []string{"silent", "flood10"},
		},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"Lemma 4 — Σ|L_x| = O(n) under push flooding",
		"n", "adversary", "Σ|L_x|", "Σ|L_x| / correct", "agree")
	for _, cr := range rep.Cells {
		rec := cr.Records[0]
		tb.Add(fmt.Sprint(cr.Cell.N), cr.Cell.Adversary, fmt.Sprint(rec.SumCandidates),
			fmt.Sprintf("%.2f", float64(rec.SumCandidates)/float64(rec.Correct)),
			fmt.Sprint(rec.Agreement))
	}
	tb.Render(os.Stdout)
	fmt.Println("candidate lists stay ≈ 1 entry per node regardless of flooding.")
	return nil
}

// lemma5 measures push-phase coverage: the fraction of runs in which every
// correct node ends the push phase with gstring in its candidate list.
func lemma5(sw sweep) error {
	rep, err := mustSuite(fastba.Suite{
		Name: "lemma5",
		Sweep: fastba.Sweep{
			Ns:          sw.ns,
			Seeds:       fastba.Seeds(sw.seeds),
			Adversaries: []string{"flood6"},
		},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"Lemma 5 — w.h.p. every node has gstring in its candidate list after the push",
		"n", "runs", "full-coverage runs", "worst node coverage")
	for _, cr := range rep.Cells {
		fullRuns := 0
		worst := 1.0
		for _, rec := range cr.Records {
			if rec.CandidateCoverage == 1 {
				fullRuns++
			}
			if rec.CandidateCoverage < worst {
				worst = rec.CandidateCoverage
			}
		}
		tb.Add(fmt.Sprint(cr.Cell.N), fmt.Sprint(cr.Runs), fmt.Sprint(fullRuns), fmt.Sprintf("%.4f", worst))
	}
	tb.Render(os.Stdout)
	return nil
}

// lemma6Settings are the (model, adversary) pairs probed by the overload
// experiments: quiet baseline, the rushing cornering attack, and the
// cornering attack under an adversarial asynchronous schedule.
var lemma6Settings = []struct {
	name  string
	model fastba.Model
	adv   string
}{
	{"silent", fastba.SyncNonRushing, "silent"},
	{"corner-rushing", fastba.SyncRushing, "corner-rushing"},
	{"async corner", fastba.AsyncAdversarial, "corner"},
}

// lemma6 measures decision times under overload: the answer budget is
// swept from below honest demand (where deferral cascades stretch and can
// stall decisions — the regime the adversary aims for) through the paper's
// safe log² n zone, with and without the rushing cornering attack
// (Lemmas 6 and 8). Honest per-node demand at n=128 measures ≈ p50 19 /
// max 32 answers, so budgets are expressed relative to the quorum size d.
func lemma6(sw sweep) error {
	n := sw.ns[len(sw.ns)-1]
	d := core.DefaultParams(n).QuorumSize
	budgets := []int{d / 2, 3 * d / 4, d, 21 * d / 13, 0} // deep overload … log²n-like … unlimited

	var variants []fastba.Variant
	for _, budget := range budgets {
		label := fmt.Sprint(budget)
		if budget == 0 {
			label = "unlimited"
		}
		for _, s := range lemma6Settings {
			variants = append(variants, fastba.Variant{
				Name: label + "/" + s.name,
				Options: []fastba.Option{
					fastba.WithModel(s.model),
					fastba.WithAdversaryName(s.adv),
					fastba.WithAnswerBudget(budget),
				},
			})
		}
	}
	rep, err := mustSuite(fastba.Suite{
		Name: "lemma6",
		Sweep: fastba.Sweep{
			Ns:       []int{n},
			Seeds:    []uint64{11},
			Variants: variants,
			Options:  []fastba.Option{fastba.WithCorruptFrac(0.10), fastba.WithKnowFrac(0.90)},
		},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"Lemmas 6+8 — decision time vs answer budget (n fixed; rushing corner vs quiet)",
		"n", "budget", "adversary", "p50", "p95", "max", "deferred", "decided frac")
	for _, cr := range rep.Cells {
		rec := cr.Records[0]
		times := make([]float64, len(rec.DecisionTimes))
		for j, v := range rec.DecisionTimes {
			times[j] = float64(v)
		}
		if len(times) == 0 {
			times = []float64{-1}
		}
		// The variant name is "budget/setting" — the cell self-describes.
		label, setting, _ := strings.Cut(cr.Cell.Variant, "/")
		tb.Add(fmt.Sprint(n), label, setting,
			fmt.Sprintf("%.0f", metrics.Quantile(times, 0.5)),
			fmt.Sprintf("%.0f", metrics.Quantile(times, 0.95)),
			fmt.Sprintf("%.0f", metrics.Quantile(times, 1)),
			fmt.Sprint(rec.AnswersDeferred),
			fmt.Sprintf("%.3f", float64(rec.Decided)/float64(rec.Correct)))
	}
	tb.Render(os.Stdout)
	fmt.Println("the paper's log² n budget sits above honest demand by design: decisions")
	fmt.Println("stay constant-time. Below demand, answers defer until budget holders decide")
	fmt.Println("— the dependency chains of Lemma 6 — stretching the tail and, far below")
	fmt.Println("demand, stalling the cascade. The attack adds deferrals at its targets.")
	return nil
}

// lemma7 measures the agreement rate (Lemmas 7, 9, 10) across seeds,
// models and adversaries, on the default (tight) population.
func lemma7(sw sweep) error {
	type cell struct {
		model fastba.Model
		adv   string
		relay bool
	}
	cells := []cell{
		{fastba.SyncNonRushing, "silent", false},
		{fastba.SyncNonRushing, "flood", false},
		{fastba.SyncNonRushing, "equivocate", false},
		{fastba.Async, "silent", false},
		{fastba.Async, "equivocate", false},
		{fastba.SyncNonRushing, "silent", true},
		{fastba.Async, "equivocate", true},
	}
	var variants []fastba.Variant
	for _, c := range cells {
		name := c.adv
		opts := []fastba.Option{fastba.WithModel(c.model), fastba.WithAdversaryName(c.adv)}
		if c.relay {
			name += "+relay"
			opts = append(opts, fastba.WithDeferredRelay())
		}
		variants = append(variants, fastba.Variant{Name: name, Options: opts})
	}

	n := sw.ns[len(sw.ns)-1]
	rep, err := mustSuite(fastba.Suite{
		Name:  "lemma7",
		Sweep: fastba.Sweep{Ns: []int{n}, Seeds: fastba.Seeds(sw.seeds), Variants: variants},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"Lemmas 7/9/10 — agreement w.h.p. across models and adversaries (default population)",
		"n", "model", "adversary", "runs", "agreement runs", "worst decided frac")
	for _, cr := range rep.Cells {
		tb.Add(fmt.Sprint(n), cr.Cell.Model, cr.Cell.Variant,
			fmt.Sprint(cr.Runs), fmt.Sprint(cr.AgreeRuns), fmt.Sprintf("%.4f", cr.WorstDecidedFrac))
	}
	tb.Render(os.Stdout)
	fmt.Println("w.h.p. at small n and d = 3·log₂n: isolated nodes can miss strict quorum")
	fmt.Println("majorities (never validity — no run decides a non-gstring value); the")
	fmt.Println("deferred-relay extension closes exactly that tail (see E13).")
	return nil
}

// nofault verifies the §1 claim: with no Byzantine fault, success is
// guaranteed, not just probable.
func nofault(sw sweep) error {
	rep, err := mustSuite(fastba.Suite{
		Name: "nofault",
		Sweep: fastba.Sweep{
			Ns:          sw.ns,
			Seeds:       fastba.Seeds(sw.seeds * 4),
			Adversaries: []string{"none"},
			Options:     []fastba.Option{fastba.WithKnowFrac(0.9)},
		},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"§1 — success guaranteed without Byzantine faults (t = 0)",
		"n", "runs", "agreement runs")
	for _, cr := range rep.Cells {
		tb.Add(fmt.Sprint(cr.Cell.N), fmt.Sprint(cr.Runs), fmt.Sprint(cr.AgreeRuns))
	}
	tb.Render(os.Stdout)
	return nil
}

// property2 checks Lemma 2 Property 2 empirically: random and greedy
// corner-seeking pair sets L must keep border expansion above 2/3·d·|L|,
// and the keyed construction must track the §4.1 uniform-digraph model the
// proof actually analyzes. This probe exercises the sampler combinatorics
// directly — no protocol execution, hence no suite.
func property2(sw sweep) error {
	tb := metrics.NewTable(
		"Lemma 2 Property 2 — border expansion of J (must stay > 2/3)",
		"n", "d", "|L|", "random-L min (20 trials)", "greedy-L", "§4.1 model min", "holds")
	for _, n := range sw.ns {
		p := core.DefaultParams(n)
		poll := sampler.NewPoll(n, p.PollSize, p.Labels, p.SamplerSeed)
		src := prng.New(99)
		size := n / 8

		minRandom := 3.0
		for trial := 0; trial < 20; trial++ {
			used := map[int]bool{}
			var L []sampler.Pair
			for len(L) < size {
				x := src.Intn(n)
				if used[x] {
					continue
				}
				used[x] = true
				L = append(L, sampler.Pair{X: x, R: src.Uint64()})
			}
			if r := sampler.BorderExpansion(poll, L).Ratio; r < minRandom {
				minRandom = r
			}
		}
		greedy := sampler.GreedyCorner(poll, size, 24, 8, src)
		model := sampler.DigraphBorderStats(n, p.PollSize, size, 200, src)
		holds := minRandom > 2.0/3 && greedy.Ratio > 2.0/3 && model.Violations == 0
		tb.Add(fmt.Sprint(n), fmt.Sprint(p.PollSize), fmt.Sprint(size),
			fmt.Sprintf("%.3f", minRandom), fmt.Sprintf("%.3f", greedy.Ratio),
			fmt.Sprintf("%.3f", model.MinRatio), fmt.Sprint(holds))
	}
	tb.Render(os.Stdout)
	return nil
}

// ablation covers E12/E13: the answer budget (load-balance trade-off of
// §5), the deferred-relay extension, and the sampler construction.
func ablation(sw sweep) error {
	n := sw.ns[len(sw.ns)-1]
	d := core.DefaultParams(n).QuorumSize

	budgets := []int{0, d / 2, 21 * d / 13}
	var budgetVariants []fastba.Variant
	for _, b := range budgets {
		label := fmt.Sprint(b)
		if b == 0 {
			label = "unlimited"
		}
		budgetVariants = append(budgetVariants, fastba.Variant{
			Name:    label,
			Options: []fastba.Option{fastba.WithAnswerBudget(b)},
		})
	}
	e12, err := mustSuite(fastba.Suite{
		Name: "e12",
		Sweep: fastba.Sweep{
			Ns:       []int{n},
			Seeds:    []uint64{11},
			Variants: budgetVariants,
			Options: []fastba.Option{
				fastba.WithModel(fastba.SyncRushing),
				fastba.WithAdversary(fastba.AdversaryCornerRushing),
				fastba.WithCorruptFrac(0.10), fastba.WithKnowFrac(0.90),
			},
		},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		"E12 — answer budget ablation under the rushing corner attack (n="+fmt.Sprint(n)+"): time vs protection trade-off (§5)",
		"budget", "deferred", "max bits/node", "max/mean", "last decision", "agree")
	for _, cr := range e12.Cells {
		rec := cr.Records[0]
		tb.Add(cr.Cell.Variant, fmt.Sprint(rec.AnswersDeferred), metrics.Bits(float64(rec.MaxBitsPerNode)),
			fmt.Sprintf("%.1f", float64(rec.MaxBitsPerNode)/rec.MeanBitsPerNode),
			fmt.Sprint(rec.LastDecision), fmt.Sprint(rec.Agreement))
	}
	tb.Render(os.Stdout)

	e13, err := mustSuite(fastba.Suite{
		Name: "e13",
		Sweep: fastba.Sweep{
			Ns:    []int{n},
			Seeds: fastba.Seeds(sw.seeds * 2),
			Variants: []fastba.Variant{
				{Name: "false"},
				{Name: "true", Options: []fastba.Option{fastba.WithDeferredRelay()}},
			},
		},
	})
	if err != nil {
		return err
	}
	tb2 := metrics.NewTable(
		"E13 — deferred-relay extension: agreement rate on the tight default population (n="+fmt.Sprint(n)+")",
		"deferred relay", "runs", "agreement runs")
	for _, cr := range e13.Cells {
		tb2.Add(cr.Cell.Variant, fmt.Sprint(cr.Runs), fmt.Sprint(cr.AgreeRuns))
	}
	tb2.Render(os.Stdout)

	tb3 := metrics.NewTable(
		"E12b — sampler construction: permutation (Lemma 1, no overload) vs naive hashing",
		"n", "d", "perm MaxLoad", "hash MaxLoad")
	for _, n := range sw.ns {
		p := core.DefaultParams(n)
		perm := sampler.NewPermQuorum(n, p.QuorumSize, p.SamplerSeed, "I")
		hash := sampler.NewHashQuorum(n, p.QuorumSize, p.SamplerSeed, "I")
		src := prng.New(5)
		worstPerm, worstHash := 0, 0
		for k := 0; k < 5; k++ {
			s := randomString(src, p.StringBits)
			if l := sampler.MaxLoad(perm, s); l > worstPerm {
				worstPerm = l
			}
			if l := sampler.MaxLoad(hash, s); l > worstHash {
				worstHash = l
			}
		}
		tb3.Add(fmt.Sprint(n), fmt.Sprint(p.QuorumSize), fmt.Sprint(worstPerm), fmt.Sprint(worstHash))
	}
	tb3.Render(os.Stdout)
	return nil
}
