// Command benchtab regenerates every table and figure of the paper's
// evaluation (Figure 1(a), Figure 1(b)) plus one empirical table per
// analytical lemma (Lemmas 3–10 and Lemma 2 Property 2), as indexed in
// DESIGN.md §3 and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtab               # quick sweep (n ≤ 256, few seeds)
//	benchtab -full         # full sweep (n ≤ 1024, more seeds; minutes)
//	benchtab -only fig1a   # one experiment (fig1a, fig1b, lemma3, lemma4,
//	                       # lemma5, lemma6, lemma7, nofault, property2,
//	                       # ablation, sensitivity, scenario)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/fastba/fastba/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

type sweep struct {
	ns    []int
	seeds int
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	full := fs.Bool("full", false, "full sweep: larger n, more seeds (minutes of runtime)")
	only := fs.String("only", "", "run a single experiment by name")
	nsFlag := fs.String("ns", "", "comma-separated system sizes (overrides -full)")
	seedsFlag := fs.Int("seeds", 0, "seeds per statistical cell (overrides -full)")
	var prof profiling.Flags
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", perr)
		}
	}()

	sw := sweep{ns: []int{64, 128, 256}, seeds: 5}
	if *full {
		sw = sweep{ns: []int{64, 128, 256, 512, 1024}, seeds: 10}
	}
	if *nsFlag != "" {
		sw.ns = nil
		for _, part := range strings.Split(*nsFlag, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 8 {
				return fmt.Errorf("bad -ns entry %q", part)
			}
			sw.ns = append(sw.ns, n)
		}
	}
	if *seedsFlag > 0 {
		sw.seeds = *seedsFlag
	}
	if err := registerFloodVariants(); err != nil {
		return err
	}

	experiments := []struct {
		name string
		fn   func(sweep) error
	}{
		{"fig1a", fig1a},
		{"fig1b", fig1b},
		{"lemma3", lemma3},
		{"lemma4", lemma4},
		{"lemma5", lemma5},
		{"lemma6", lemma6},
		{"lemma7", lemma7},
		{"nofault", nofault},
		{"property2", property2},
		{"ablation", ablation},
		{"sensitivity", sensitivity},
		{"scenario", scenarioExp},
	}

	names := make([]string, 0, len(experiments))
	for _, e := range experiments {
		names = append(names, e.name)
	}
	if *only != "" {
		for _, e := range experiments {
			if e.name == *only {
				return e.fn(sw)
			}
		}
		return fmt.Errorf("unknown experiment %q (have: %s)", *only, strings.Join(names, ", "))
	}
	for _, e := range experiments {
		if err := e.fn(sw); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println()
	}
	return nil
}
