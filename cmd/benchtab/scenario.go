package main

import (
	"fmt"
	"os"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/metrics"
)

// scenarioExp measures what an adaptive adversary buys over an oblivious
// one on a hostile-internet scenario: a Watts–Strogatz overlay with Zipf
// load and the gossip relay engaged, where the adversary spends the same
// silencing budget either on a seeded-random target set (oblivious), on
// the highest-degree relay hubs, or on the most-messaged nodes ranked from
// observed traffic. The paper's model grants the adversary full adaptivity;
// this table quantifies how much of the termination margin that adaptivity
// actually consumes (safety must stay intact in every row — BENCH_9.json).
func scenarioExp(sw sweep) error {
	n := sw.ns[len(sw.ns)-1]
	// TriggerAt 3: the adversary watches three rounds of traffic before
	// committing its budget — the traffic ranking is meaningless before the
	// first deliveries land.
	spec := fastba.Scenario{
		Topology: fastba.TopologyWS, Degree: 8, Rewire: 0.2, ZipfS: 1.0,
		Fanout: 1, TriggerAt: 3, Seed: 1,
	}
	const corrupt = 0.15
	advs := []string{
		fastba.AdversaryAdaptiveOblivious,
		fastba.AdversaryAdaptiveDegree,
		fastba.AdversaryAdaptiveTraffic,
	}
	variants := []fastba.Variant{{Name: "clean", Options: []fastba.Option{}}}
	for _, a := range advs {
		variants = append(variants, fastba.Variant{
			Name: a,
			Options: []fastba.Option{
				fastba.WithAdversaryName(a),
				fastba.WithCorruptFrac(corrupt),
			},
		})
	}
	rep, err := mustSuite(fastba.Suite{
		Name: "scenario",
		Sweep: fastba.Sweep{
			Ns:        []int{n},
			Seeds:     fastba.Seeds(sw.seeds),
			Scenarios: []fastba.Scenario{spec},
			Options:   []fastba.Option{fastba.WithKnowFrac(1)},
			Variants:  variants,
		},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		fmt.Sprintf("Adaptive vs oblivious silencing — %s, corrupt=%.2f, n=%d, %d seeds",
			spec.Label(), corrupt, n, sw.seeds),
		"adversary", "mean decided frac", "worst decided frac", "validity viol", "mean msgs")
	for _, cr := range rep.Cells {
		mean, msgs := 0.0, 0.0
		for _, rec := range cr.Records {
			mean += rec.DecidedFrac()
			msgs += float64(rec.TotalMessages)
		}
		if len(cr.Records) > 0 {
			mean /= float64(len(cr.Records))
			msgs /= float64(len(cr.Records))
		}
		tb.Add(cr.Cell.Variant,
			fmt.Sprintf("%.4f", mean),
			fmt.Sprintf("%.4f", cr.WorstDecidedFrac),
			fmt.Sprint(cr.ValidityViolations),
			fmt.Sprintf("%.0f", msgs))
	}
	tb.Render(os.Stdout)
	fmt.Println("the oblivious row spends the identical budget on seeded-random targets; the")
	fmt.Println("degree and traffic rows aim it at relay hubs. The gap between those rows is")
	fmt.Println("the measured value of adaptivity on this topology — and the 0 in the validity")
	fmt.Println("column is the safety claim: aim does not matter to agreement, only to liveness.")
	return nil
}
