package main

import (
	"fmt"
	"os"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/metrics"
)

// sensitivity sweeps the quorum-size constant c₁ (d = c₁·⌈log₂ n⌉): the
// central tuning trade-off behind every w.h.p. statement in the paper.
// Larger d sharpens the strict-majority concentration (success rate rises
// toward the asymptotic 1 − n⁻³) but costs ~d³ in messages (the Fw1 fan of
// Algorithm 2). This is the experiment behind EXPERIMENTS.md's
// "threats to validity" discussion of constants.
func sensitivity(sw sweep) error {
	n := sw.ns[len(sw.ns)-1]
	lg := logCeil(n)

	c1s := []int{2, 3, 4, 5}
	var variants []fastba.Variant
	for _, c1 := range c1s {
		d := c1 * lg
		if d > n {
			d = n
		}
		variants = append(variants, fastba.Variant{
			Name:    fmt.Sprintf("c1=%d", c1),
			Options: []fastba.Option{fastba.WithQuorumSize(d), fastba.WithPollSize(d)},
		})
	}
	rep, err := mustSuite(fastba.Suite{
		Name:  "sensitivity",
		Sweep: fastba.Sweep{Ns: []int{n}, Seeds: fastba.Seeds(sw.seeds), Variants: variants},
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		fmt.Sprintf("Sensitivity — quorum constant c₁ (d = c₁·⌈log₂ n⌉ = c₁·%d) at n=%d, default tight population", lg, n),
		"c₁", "d", "bits/node", "agreement runs", "worst decided frac")
	for i, cr := range rep.Cells {
		d := c1s[i] * lg
		if d > n {
			d = n
		}
		tb.Add(fmt.Sprint(c1s[i]), fmt.Sprint(d), metrics.Bits(cr.MeanBits.Mean),
			fmt.Sprintf("%d/%d", cr.AgreeRuns, cr.Runs), fmt.Sprintf("%.4f", cr.WorstDecidedFrac))
	}
	tb.Render(os.Stdout)
	fmt.Println("d trades message volume (~d³) for concentration: the failure tail of the")
	fmt.Println("strict quorum majorities shrinks exponentially in d while bits/node grow")
	fmt.Println("cubically — the constant the paper leaves implicit in its O(log n).")
	return nil
}

func logCeil(n int) int {
	lg := 0
	for v := n - 1; v > 0; v >>= 1 {
		lg++
	}
	if lg == 0 {
		lg = 1
	}
	return lg
}
