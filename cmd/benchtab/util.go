package main

import (
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
)

// randomString draws a candidate-domain string for the sampler ablation.
func randomString(src *prng.Source, bits int) bitstring.String {
	return bitstring.Random(src, bits)
}
