package main

import (
	"context"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
)

// randomString draws a candidate-domain string for the sampler ablation.
func randomString(src *prng.Source, bits int) bitstring.String {
	return bitstring.Random(src, bits)
}

// mustSuite runs a suite and fails hard on any errored run: benchtab
// produces paper artifacts, where a silently zero-filled row would be
// worse than an aborted table.
func mustSuite(s fastba.Suite) (*fastba.Report, error) {
	rep, err := fastba.RunSuite(context.Background(), s)
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}
