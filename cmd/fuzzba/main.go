// Command fuzzba drives the scenario fuzzer: replay a regression corpus,
// run a seeded random campaign against the protocol-invariant oracles, or
// both. Campaigns are deterministic per -seed (cases execute in a fixed
// order), so a longer -budget strictly extends a shorter one's coverage,
// and any failure is persisted as a shrunk JSON reproducer.
//
// Examples:
//
//	fuzzba -seeds testdata/fuzz_corpus           # replay the corpus only
//	fuzzba -budget 30s                           # 30s random campaign
//	fuzzba -seeds testdata/fuzz_corpus -budget 30s -selftest
//	fuzzba -runs 200 -seed 7 -out /tmp/failures  # persist any findings
//
// Exit status 0 means every corpus case and campaign case passed its
// oracles (and, with -selftest, that a deliberately broken quorum
// threshold was caught); 1 means violations were found; 2 means the
// fuzzer itself failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/fastba/fastba"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzzba:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("fuzzba", flag.ContinueOnError)
	var (
		corpus    = fs.String("seeds", "", "corpus directory of *.json cases to replay (all must pass their oracles)")
		budget    = fs.Duration("budget", 0, "wall-clock bound for the random campaign (0 = no campaign unless -runs is set)")
		runs      = fs.Int("runs", 0, "number of random campaign cases (0 = bounded by -budget)")
		seed      = fs.Uint64("seed", 1, "campaign seed: case i is a pure function of (seed, i)")
		ns        = fs.String("n", "", "comma-separated candidate system sizes (default 16,24,32)")
		models    = fs.String("models", "", "comma-separated candidate models (default all deterministic models)")
		advs      = fs.String("adversaries", "", "comma-separated adversary registry names (default built-ins)")
		logFrac   = fs.Float64("logfrac", 0, "fraction of campaign cases drawn from the pipelined decision-log family (0 = off)")
		restFrac  = fs.Float64("restartfrac", 0, "fraction of log-family cases that crash and recover a durable log mid-run (0 = off; needs -logfrac)")
		chaosFrac = fs.Float64("chaosfrac", 0, "fraction of log-family cases that run over TCP under a seeded live-socket chaos plan (0 = off; needs -logfrac)")
		scenFrac  = fs.Float64("scenariofrac", 0, "fraction of campaign cases drawn from the hostile-internet scenario family: topologies, latency models, gossip relay, adaptive adversaries (0 = off)")
		out       = fs.String("out", "", "directory receiving shrunk JSON reproducers for failing cases")
		selftest  = fs.Bool("selftest", false, "also run a deliberately broken quorum threshold and require the agreement oracle to catch it")
		verbose   = fs.Bool("v", false, "log every executed case")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *corpus == "" && *budget <= 0 && *runs <= 0 && !*selftest {
		fs.Usage()
		return 2, fmt.Errorf("nothing to do: give a corpus (-seeds), a campaign bound (-budget or -runs), or -selftest")
	}

	failures := 0

	if *corpus != "" {
		n, bad, err := replayCorpus(*corpus, *verbose)
		if err != nil {
			return 2, err
		}
		fmt.Printf("corpus %s: %d cases, %d failing\n", *corpus, n, bad)
		failures += bad
	}

	if *budget > 0 || *runs > 0 {
		fc := fastba.FuzzConfig{
			Seed:         *seed,
			Runs:         *runs,
			Budget:       *budget,
			PersistDir:   *out,
			LogFrac:      *logFrac,
			RestartFrac:  *restFrac,
			ChaosFrac:    *chaosFrac,
			ScenarioFrac: *scenFrac,
		}
		var err error
		if fc.Ns, err = parseInts(*ns); err != nil {
			return 2, fmt.Errorf("-n: %w", err)
		}
		if fc.Models, err = parseModels(*models); err != nil {
			return 2, fmt.Errorf("-models: %w", err)
		}
		if *advs != "" {
			for _, a := range strings.Split(*advs, ",") {
				fc.Adversaries = append(fc.Adversaries, strings.TrimSpace(a))
			}
		}
		if *verbose {
			fc.OnRun = func(r fastba.FuzzRun) {
				status := "ok"
				if !r.Report.OK() {
					status = r.Report.String()
				}
				fmt.Printf("  case %s → %s\n", r.Case, status)
			}
		}
		res, err := fastba.SimFuzz(context.Background(), fc)
		if err != nil {
			return 2, err
		}
		fmt.Printf("campaign seed %d: %d cases executed, %d failing, %d probabilistic misses\n",
			*seed, res.Executed, len(res.Failures), res.ProbabilisticMisses)
		for _, f := range res.Failures {
			fmt.Printf("  FAIL %s\n", f.Case)
			for _, v := range f.Violations {
				fmt.Printf("    %s\n", v)
			}
		}
		for _, p := range res.Persisted {
			fmt.Printf("  reproducer written: %s\n", p)
		}
		failures += len(res.Failures)
	}

	if *selftest {
		if err := oracleSelftest(); err != nil {
			return 1, err
		}
		fmt.Println("selftest: broken quorum threshold caught by the agreement oracle")
		if err := scenarioSelftest(); err != nil {
			return 1, err
		}
		fmt.Println("selftest: adaptive adversary on a broken threshold caught under a scenario")
	}

	if failures > 0 {
		return 1, fmt.Errorf("%d failing cases", failures)
	}
	return 0, nil
}

func replayCorpus(dir string, verbose bool) (n, bad int, err error) {
	runs, failing, err := fastba.ReplayCorpus(dir)
	if err != nil {
		return 0, 0, err
	}
	if verbose {
		for _, r := range runs {
			fmt.Printf("  case %s → %s\n", r.Case, r.Report)
		}
	}
	for _, f := range failing {
		fmt.Printf("  FAIL %s\n", f.Case)
		for _, v := range f.Violations {
			fmt.Printf("    %s\n", v)
		}
	}
	return len(runs), len(failing), nil
}

// oracleSelftest validates the oracle wiring end to end: a run whose
// decision rule is mutated to accept a single poll answer (instead of the
// strict majority of Algorithm 1) must split the system in a way the
// agreement oracle detects. If the oracles went blind, the whole fuzzing
// harness would silently pass everything — this guards the guard.
func oracleSelftest() error {
	// knowFrac 0.60 lets the shared junk belief assemble push-quorum
	// majorities, so with the broken threshold some nodes deterministically
	// decide the junk value — splitting the system (agreement) — while
	// every first-answer decision also lacks its majority certificate.
	cfg := fastba.NewConfig(32,
		fastba.WithSeed(1),
		fastba.WithKnowFrac(0.60),
		fastba.WithAdversary(fastba.AdversaryNone),
		fastba.WithDecideThreshold(1),
	)
	res, err := fastba.RunAER(cfg)
	if err != nil {
		return fmt.Errorf("selftest run: %w", err)
	}
	rep := fastba.CheckInvariants(cfg, res)
	caught := map[string]bool{}
	for _, v := range rep.Violations {
		caught[v.Oracle] = true
	}
	if !caught[fastba.OracleAgreement] || !caught[fastba.OracleCertificates] {
		return fmt.Errorf("selftest: oracles missed the broken quorum threshold (report: %s)", rep)
	}
	return nil
}

// scenarioSelftest repeats the guard-the-guard check through the scenario
// layer: the same broken decide threshold, but now on a Watts–Strogatz
// topology with the gossip relay engaged and an adaptive traffic-ranking
// adversary silencing the most-messaged nodes. The oracles watch decisions
// through the relay path, so if the scenario wrapper ever swallowed or
// reordered protocol deliveries in a way that masked a split, this would
// go green — it must not.
func scenarioSelftest() error {
	cfg := fastba.NewConfig(32,
		fastba.WithSeed(1),
		fastba.WithKnowFrac(0.60),
		fastba.WithScenario(fastba.Scenario{
			Topology: fastba.TopologyWS, Degree: 6, Rewire: 0.2, ZipfS: 1.0, Seed: 3,
		}),
		fastba.WithAdversaryName(fastba.AdversaryAdaptiveTraffic),
		fastba.WithCorruptFrac(0.1),
		fastba.WithDecideThreshold(1),
	)
	res, err := fastba.RunAER(cfg)
	if err != nil {
		return fmt.Errorf("scenario selftest run: %w", err)
	}
	rep := fastba.CheckInvariants(cfg, res)
	caught := map[string]bool{}
	for _, v := range rep.Violations {
		caught[v.Oracle] = true
	}
	if !caught[fastba.OracleAgreement] && !caught[fastba.OracleCertificates] {
		return fmt.Errorf("scenario selftest: oracles missed the broken threshold under an adaptive adversary (report: %s)", rep)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseModels(s string) ([]fastba.Model, error) {
	if s == "" {
		return nil, nil
	}
	var out []fastba.Model
	for _, part := range strings.Split(s, ",") {
		m, err := fastba.ParseModel(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
