// Command loadba drives a pipelined DecisionLog under sustained client
// load and reports committed throughput and commit-latency percentiles.
// It is the repository's "agreement as a service" harness: clients
// propose payloads, the batcher folds them into instance values, up to
// -depth instances run concurrently over one long-lived transport, and
// instances commit strictly in order.
//
// Examples:
//
//	loadba -n 64 -clients 256 -duration 5s
//	loadba -n 64 -clients 256 -duration 5s -runtime tcp
//	loadba -n 32 -depth 4 -rate 200 -payload 128 -duration 10s
//	loadba -n 32 -duration 5s -dup 0.2 -delay 0.3 -maxdelay 3
//	loadba -n 32 -duration 6s -store /tmp/balog -restart 2
//
// Exit status 0 means the run committed at least one entry and every
// cross-instance oracle (gap-free sequence, per-instance agreement,
// certificates, validity — and, on restart runs, durability: no
// committed entry regressed across any crash/recover cycle) held; 1
// means a violation, a stalled log or an empty one; 2 means the harness
// itself failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/fastba/fastba"
	"github.com/fastba/fastba/internal/profiling"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadba:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("loadba", flag.ContinueOnError)
	var (
		n             = fs.Int("n", 64, "system size")
		seed          = fs.Uint64("seed", 1, "master seed (corruption, knowledge, junk, client payloads)")
		clients       = fs.Int("clients", 256, "concurrent proposer goroutines")
		rate          = fs.Float64("rate", 0, "per-client proposal rate in payloads/second (0 = closed loop)")
		payload       = fs.Int("payload", 32, "payload size in bytes")
		duration      = fs.Duration("duration", 5*time.Second, "proposing phase duration")
		depth         = fs.Int("depth", 4, "instance pipelining depth")
		batch         = fs.Int("batch", 64, "ingest batch size")
		linger        = fs.Duration("linger", 2*time.Millisecond, "batch linger")
		runtime       = fs.String("runtime", "fabric", "transport: fabric (in-process) or tcp (loopback sockets)")
		corrupt       = fs.Float64("corrupt", 0.10, "fail-silent Byzantine fraction")
		know          = fs.Float64("know", 1.0, "per-instance knowledgeable fraction of correct nodes")
		frac          = fs.Float64("commitfrac", 1.0, "fraction of correct nodes that must decide before commit")
		timeout       = fs.Duration("timeout", 30*time.Second, "head-instance commit timeout")
		drop          = fs.Float64("drop", 0, "fault plan: per-message drop probability")
		dup           = fs.Float64("dup", 0, "fault plan: per-message duplication probability")
		delay         = fs.Float64("delay", 0, "fault plan: per-message delay probability")
		maxDelay      = fs.Int("maxdelay", 0, "fault plan: maximum injected delay (logical time)")
		planSeed      = fs.Uint64("faultseed", 1, "fault plan schedule seed")
		store         = fs.String("store", "", "durable store directory: persist committed entries to a write-ahead log and recover them on reopen")
		restart       = fs.Int("restart", 0, "crash-and-recover the log this many times during the run (requires -store)")
		syncWin       = fs.Duration("syncwindow", 0, "store group-commit window (0 = fsync every append)")
		chaos         = fs.String("chaos", "", "live-socket chaos mode: sweep (sever every link at least once) or random (requires -runtime tcp)")
		chaosSeed     = fs.Uint64("chaosseed", 1, "chaos strike schedule seed")
		chaosInterval = fs.Duration("chaosinterval", 50*time.Millisecond, "interval between chaos strikes")
		chaosStrikes  = fs.Int("chaosstrikes", 0, "chaos strike budget (0 with -chaos random = unbounded; ignored by sweep)")
		chaosKinds    = fs.String("chaoskinds", "", "comma-separated strike kinds: close, halfclose, blackhole (default all)")
		jsonOut       = fs.Bool("json", false, "emit the full LoadResult as JSON on stdout")
		daemonMode    = fs.Bool("daemon", false, "multi-process mode: spawn real balogd processes and drive the client SDK over real sockets")
		daemons       = fs.Int("daemons", 4, "daemon mode: balogd processes to spawn")
		perDaemon     = fs.Int("k", 2, "daemon mode: protocol nodes per daemon (population = daemons × k)")
		queueMax      = fs.Int("queue", 0, "daemon mode: per-client admission queue bound (small values force overload shedding)")
		pipeline      = fs.Int("pipeline", 1, "daemon mode: appends each client keeps in flight over its session (> queue forces ErrOverload)")
		daemonKill    = fs.Bool("daemonkill", true, "daemon mode: SIGKILL one daemon a third into the run and restart it")
		killDaemon    = fs.Int("killdaemon", 0, "daemon mode: which daemon to kill (default: the last; never 0, the leader)")
		balogdBin     = fs.String("balogd", "", "daemon mode: prebuilt balogd binary (default: go build from the enclosing module)")
		daemonDir     = fs.String("dir", "", "daemon mode: scratch directory for stores and logs (default: a temp dir)")
		verbose       = fs.Bool("v", false, "daemon mode: print harness progress lines")
	)
	var prof profiling.Flags
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *daemonMode {
		w := fastba.DaemonWorkload{
			Daemons:      *daemons,
			PerDaemon:    *perDaemon,
			Seed:         *seed,
			Clients:      *clients,
			Rate:         *rate,
			PayloadBytes: *payload,
			Pipeline:     *pipeline,
			Duration:     *duration,
			KillRestart:  *daemonKill,
			KillDaemon:   *killDaemon,
			Depth:        *depth,
			BatchMax:     *batch,
			QueueMax:     *queueMax,
			BalogdPath:   *balogdBin,
			Dir:          *daemonDir,
		}
		if *verbose {
			w.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "loadba: "+format+"\n", args...)
			}
		}
		res, err := fastba.RunDaemonLoad(context.Background(), w)
		if err != nil {
			return 2, err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return 2, err
			}
		} else {
			renderDaemon(res)
		}
		switch {
		case res.Err != "":
			return 1, fmt.Errorf("daemon run failed: %s (scratch kept at %s)", res.Err, res.Dir)
		case res.Committed == 0:
			return 1, fmt.Errorf("no entries committed")
		case !res.Oracles.OK():
			return 1, fmt.Errorf("oracle violations: %s (scratch kept at %s)", res.Oracles, res.Dir)
		case *daemonKill && !(res.Killed && res.Restarted):
			return 1, fmt.Errorf("kill/restart schedule did not complete (killed=%v restarted=%v)", res.Killed, res.Restarted)
		}
		return 0, nil
	}

	rt, err := fastba.ParseLogRuntime(*runtime)
	if err != nil {
		return 2, err
	}
	opts := []fastba.Option{
		fastba.WithSeed(*seed),
		fastba.WithCorruptFrac(*corrupt),
		fastba.WithKnowFrac(*know),
		fastba.WithLogRuntime(rt),
		fastba.WithLogDepth(*depth),
		fastba.WithLogBatch(*batch),
		fastba.WithLogLinger(*linger),
		fastba.WithLogCommitFraction(*frac),
		fastba.WithLogInstanceTimeout(*timeout),
		fastba.WithWorkload(fastba.Workload{
			Clients:      *clients,
			Rate:         *rate,
			PayloadBytes: *payload,
			Duration:     *duration,
			Restarts:     *restart,
		}),
	}
	if *restart > 0 && *store == "" {
		return 2, fmt.Errorf("-restart requires -store (crash recovery needs a durable log)")
	}
	if *store != "" {
		opts = append(opts, fastba.WithLogStore(*store), fastba.WithLogStoreSync(*syncWin))
	}
	if *drop > 0 || *dup > 0 || *delay > 0 {
		opts = append(opts, fastba.WithFaults(fastba.FaultPlan{
			Seed:      *planSeed,
			DropProb:  *drop,
			DupProb:   *dup,
			DelayProb: *delay,
			MaxDelay:  *maxDelay,
		}))
	}
	if *chaos != "" {
		if rt != fastba.RuntimeTCP {
			return 2, fmt.Errorf("-chaos severs real sockets; it requires -runtime tcp")
		}
		plan := fastba.ChaosPlan{
			Seed:     *chaosSeed,
			Strikes:  *chaosStrikes,
			Interval: *chaosInterval,
		}
		switch *chaos {
		case "sweep":
			plan.Sweep = true
		case "random":
			if plan.Strikes == 0 {
				plan.Interval = *chaosInterval // unbounded: strike every interval until the run ends
			}
		default:
			return 2, fmt.Errorf("-chaos must be sweep or random, got %q", *chaos)
		}
		if *chaosKinds != "" {
			for _, name := range strings.Split(*chaosKinds, ",") {
				k, err := fastba.ParseChaosKind(strings.TrimSpace(name))
				if err != nil {
					return 2, err
				}
				plan.Kinds = append(plan.Kinds, k)
			}
		}
		opts = append(opts, fastba.WithChaos(plan))
	}

	stopProf, err := prof.Start()
	if err != nil {
		return 2, err
	}
	res, err := fastba.RunLoad(context.Background(), fastba.NewConfig(*n, opts...))
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		return 2, err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return 2, err
		}
	} else {
		render(res)
	}

	if res.Err != "" {
		return 1, fmt.Errorf("log failed: %s", res.Err)
	}
	if res.Committed == 0 {
		return 1, fmt.Errorf("no entries committed")
	}
	if !res.Oracles.OK() {
		return 1, fmt.Errorf("oracle violations: %s", res.Oracles)
	}
	return 0, nil
}

func render(res *fastba.LoadResult) {
	fmt.Printf("decision log: runtime=%s depth=%d workload=%s\n", res.Runtime, res.Depth, res.Workload.Label())
	fmt.Printf("  committed  %d entries (%d of %d proposed payloads) in %v\n",
		res.Committed, res.CommittedPayloads, res.Proposed, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput %.1f entries/s, %.1f payloads/s\n", res.EntriesPerSec, res.PayloadsPerSec)
	fmt.Printf("  latency    p50 %v, p99 %v\n", res.CommitP50.Round(time.Microsecond), res.CommitP99.Round(time.Microsecond))
	if res.Restarts > 0 {
		fmt.Printf("  durability %d crash/recover cycles, %d entries recovered from the store\n", res.Restarts, res.Recovered)
	}
	if n := res.Net; n.Dials > 0 {
		fmt.Printf("  net        %d dials, %d redials (%d failed), %d suspects, %d recoveries, %d dead links, %d shed, %d dropped-down\n",
			n.Dials, n.Redials, n.FailedDials, n.Suspects, n.Recoveries, n.DeadLinks, n.Shed, n.DroppedDown)
		if n.FramesSent > 0 {
			fmt.Printf("  wire       %d frames carried %d messages (%d batch frames, %.2f msgs/frame)\n",
				n.FramesSent, n.MessagesSent, n.BatchFrames, float64(n.MessagesSent)/float64(n.FramesSent))
		}
		if n.ChaosStrikes > 0 || n.LinksSevered > 0 {
			fmt.Printf("  chaos      %d strikes (%d skipped), %d distinct links severed\n",
				n.ChaosStrikes, n.ChaosSkips, n.LinksSevered)
		}
	}
	if len(res.Hist) > 0 {
		fmt.Printf("  histogram  ")
		for _, b := range res.Hist {
			if b.Count == 0 {
				continue
			}
			if b.UpToMs > 0 {
				fmt.Printf("≤%gms:%d ", b.UpToMs, b.Count)
			} else {
				fmt.Printf(">%gms:%d ", latencyEdgeMax(), b.Count)
			}
		}
		fmt.Println()
	}
	fmt.Printf("  oracles    %s\n", res.Oracles)
}

func renderDaemon(res *fastba.DaemonLoadResult) {
	w := res.Workload
	fmt.Printf("daemon cluster: %d × balogd (k=%d, n=%d), %d clients for %v\n",
		w.Daemons, w.PerDaemon, res.Nodes, w.Clients, w.Duration)
	fmt.Printf("  appends    %d acked of %d attempts (%d overload-shed, %d session-lost)\n",
		res.Acked, res.Attempts, res.Overloads, res.Lost)
	fmt.Printf("  committed  %d entries (max acked seq %d) in %v\n",
		res.Committed, res.MaxAckedSeq, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  latency    p50 %v, p99 %v\n", res.CommitP50.Round(time.Microsecond), res.CommitP99.Round(time.Microsecond))
	if res.Killed || res.Restarted {
		fmt.Printf("  chaos      daemon %d killed=%v restarted=%v\n", w.KillDaemon, res.Killed, res.Restarted)
	}
	fmt.Printf("  stores     frontiers %v, byte-identical common prefix %d\n", res.Frontiers, res.CommonPrefix)
	if len(res.Scraped) > 0 {
		fmt.Printf("  metrics    commits=%.0f appends=%.0f shed=%.0f (leader /metrics)\n",
			res.Scraped["fastba_commits_total"], res.Scraped["fastba_appends_total"], res.Scraped["fastba_overload_shed_total"])
	}
	fmt.Printf("  oracles    %s\n", res.Oracles)
}

// latencyEdgeMax returns the largest bounded histogram edge.
func latencyEdgeMax() float64 {
	max := 0.0
	// Mirror the package's bucket table by probing a synthetic histogram.
	for _, b := range fastba.LatencyHistogramEdges() {
		if b > max {
			max = b
		}
	}
	return max
}
