// Package fastba is a from-scratch Go implementation of "Fast Byzantine
// Agreement" (Braud-Santoni, Guerraoui, Huc — PODC 2013): the AER
// almost-everywhere-to-everywhere agreement protocol (push/pull over
// sampler-defined quorums, Algorithms 1–3 of the paper) and its composition
// with a KSSV06-style almost-everywhere committee protocol into BA, the
// first Byzantine Agreement protocol with poly-logarithmic communication
// and time.
//
// The package simulates the paper's model — a fully connected message-
// passing network of n nodes, authenticated reliable channels, a
// non-adaptive Byzantine adversary controlling t < (1/3−ε)n nodes — under
// synchronous (rushing or non-rushing), asynchronous and goroutine-backed
// runtimes, with per-node communication metering.
//
// Quick start:
//
//	res, err := fastba.RunBA(fastba.NewConfig(256, fastba.WithSeed(1)))
//	if err != nil { ... }
//	fmt.Println(res.AER.Agreement, res.GString)
//
// Everything is deterministic given the configuration's seed.
package fastba

import (
	"fmt"

	"github.com/fastba/fastba/internal/core"
)

// Model selects the network/adversary timing model of §2.1.
type Model int

// Timing models.
const (
	// SyncNonRushing is the synchronous model where the adversary picks
	// its round-r messages independently of correct round-r messages
	// (Lemmas 8–9: constant expected time).
	SyncNonRushing Model = iota + 1
	// SyncRushing lets Byzantine nodes observe the correct nodes' round
	// messages before sending their own (Lemma 6's setting).
	SyncRushing
	// Async delivers messages in seeded-random order; time is causal
	// depth (Lemma 10: O(log n / log log n)).
	Async
	// AsyncAdversarial delivers messages in an adversary-chosen order
	// (Byzantine traffic first) within an eventual-delivery age bound.
	AsyncAdversarial
	// Goroutines runs one goroutine per node over unbounded mailboxes;
	// scheduling is up to the Go runtime, so only outcome properties are
	// deterministic, not traces.
	Goroutines
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case SyncNonRushing:
		return "sync-nonrushing"
	case SyncRushing:
		return "sync-rushing"
	case Async:
		return "async"
	case AsyncAdversarial:
		return "async-adversarial"
	case Goroutines:
		return "goroutines"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Adversary selects the Byzantine strategy.
type Adversary int

// Byzantine strategies (see internal/adversary for their behaviour).
const (
	// AdversaryNone corrupts nobody (t = 0).
	AdversaryNone Adversary = iota + 1
	// AdversarySilent crashes the corrupted nodes from the start.
	AdversarySilent
	// AdversaryFlood floods the push phase with bogus candidates.
	AdversaryFlood
	// AdversaryEquivocate colludes on a bogus string and pushes
	// per-target variants.
	AdversaryEquivocate
	// AdversaryCorner plays the Lemma 6 answer-budget overload attack.
	AdversaryCorner
	// AdversaryCornerRushing is the rushing variant of the overload
	// attack (it observes honest poll lists first).
	AdversaryCornerRushing
)

// String implements fmt.Stringer.
func (a Adversary) String() string {
	switch a {
	case AdversaryNone:
		return "none"
	case AdversarySilent:
		return "silent"
	case AdversaryFlood:
		return "flood"
	case AdversaryEquivocate:
		return "equivocate"
	case AdversaryCorner:
		return "corner"
	case AdversaryCornerRushing:
		return "corner-rushing"
	default:
		return fmt.Sprintf("Adversary(%d)", int(a))
	}
}

// Config describes one run. Build it with NewConfig and options.
type Config struct {
	n           int
	seed        uint64
	model       Model
	adversary   Adversary
	corruptFrac float64
	knowFrac    float64
	sharedJunk  bool
	params      core.Params
	maxRounds   int
}

// Option customizes a Config (functional options).
type Option interface {
	apply(*Config)
}

type optionFunc func(*Config)

func (f optionFunc) apply(c *Config) { f(c) }

// WithSeed sets the master seed (default 1). Runs are deterministic per
// seed under every model except Goroutines.
func WithSeed(seed uint64) Option {
	return optionFunc(func(c *Config) { c.seed = seed })
}

// WithModel sets the timing model (default SyncNonRushing).
func WithModel(m Model) Option {
	return optionFunc(func(c *Config) { c.model = m })
}

// WithAdversary sets the Byzantine strategy (default AdversarySilent when
// corruptFrac > 0).
func WithAdversary(a Adversary) Option {
	return optionFunc(func(c *Config) { c.adversary = a })
}

// WithCorruptFrac sets t/n (default 0.10; the paper requires < 1/3 − ε).
func WithCorruptFrac(f float64) Option {
	return optionFunc(func(c *Config) { c.corruptFrac = f })
}

// WithKnowFrac sets the fraction of correct nodes that initially know
// gstring in AER-only runs (default 0.85); BA runs derive knowledge from
// the almost-everywhere phase instead.
func WithKnowFrac(f float64) Option {
	return optionFunc(func(c *Config) { c.knowFrac = f })
}

// WithIndependentJunk gives unknowing nodes individually random candidates
// instead of one shared bogus string (the default, harder case).
func WithIndependentJunk() Option {
	return optionFunc(func(c *Config) { c.sharedJunk = false })
}

// WithQuorumSize overrides the sampler quorum size d.
func WithQuorumSize(d int) Option {
	return optionFunc(func(c *Config) { c.params.QuorumSize = d })
}

// WithPollSize overrides the poll-list size.
func WithPollSize(d int) Option {
	return optionFunc(func(c *Config) { c.params.PollSize = d })
}

// WithAnswerBudget overrides the log² n answer budget (0 = unlimited, the
// load-balance ablation).
func WithAnswerBudget(b int) Option {
	return optionFunc(func(c *Config) { c.params.AnswerBudget = b })
}

// WithDeferredRelay enables the deferred-relay extension (see
// DESIGN.md "Faithfulness notes").
func WithDeferredRelay() Option {
	return optionFunc(func(c *Config) { c.params.DeferredRelay = true })
}

// WithMaxRounds caps synchronous executions (default 64).
func WithMaxRounds(r int) Option {
	return optionFunc(func(c *Config) { c.maxRounds = r })
}

// NewConfig returns the default configuration for n nodes, customized by
// the options: synchronous non-rushing model, 10% silent corruption, 85%
// knowledgeable correct nodes, DESIGN.md §5 protocol geometry.
func NewConfig(n int, opts ...Option) Config {
	c := Config{
		n:           n,
		seed:        1,
		model:       SyncNonRushing,
		adversary:   AdversarySilent,
		corruptFrac: 0.10,
		knowFrac:    0.85,
		sharedJunk:  true,
		params:      core.DefaultParams(n),
		maxRounds:   64,
	}
	for _, o := range opts {
		o.apply(&c)
	}
	if c.adversary == AdversaryNone {
		c.corruptFrac = 0
	}
	return c
}

// N returns the configured system size.
func (c Config) N() int { return c.n }

// Seed returns the master seed.
func (c Config) Seed() uint64 { return c.seed }

// Model returns the timing model.
func (c Config) Model() Model { return c.model }

// validate checks the configuration.
func (c Config) validate() error {
	if c.n < 8 {
		return fmt.Errorf("fastba: n = %d too small (need ≥ 8)", c.n)
	}
	if c.model < SyncNonRushing || c.model > Goroutines {
		return fmt.Errorf("fastba: unknown model %d", int(c.model))
	}
	if c.adversary < AdversaryNone || c.adversary > AdversaryCornerRushing {
		return fmt.Errorf("fastba: unknown adversary %d", int(c.adversary))
	}
	if c.corruptFrac < 0 || c.corruptFrac >= 1.0/3 {
		return fmt.Errorf("fastba: corrupt fraction %v outside [0, 1/3)", c.corruptFrac)
	}
	return c.params.Validate()
}
