// Package fastba is a from-scratch Go implementation of "Fast Byzantine
// Agreement" (Braud-Santoni, Guerraoui, Huc — PODC 2013): the AER
// almost-everywhere-to-everywhere agreement protocol (push/pull over
// sampler-defined quorums, Algorithms 1–3 of the paper) and its composition
// with a KSSV06-style almost-everywhere committee protocol into BA, the
// first Byzantine Agreement protocol with poly-logarithmic communication
// and time.
//
// The package simulates the paper's model — a fully connected message-
// passing network of n nodes, authenticated reliable channels, a
// non-adaptive Byzantine adversary controlling t < (1/3−ε)n nodes — under
// synchronous (rushing or non-rushing), asynchronous and goroutine-backed
// runtimes, with per-node communication metering, and can execute the same
// protocol nodes over real loopback TCP sockets (RunTCP).
//
// Quick start — one run:
//
//	res, err := fastba.RunBA(fastba.NewConfig(256, fastba.WithSeed(1)))
//	if err != nil { ... }
//	fmt.Println(res.AER.Agreement, res.GString)
//
// Experiment suites — the paper's claims are sweep-shaped (bits and time
// versus n, seeds, timing models and adversaries), so the package's main
// surface is the declarative Suite: a Sweep expands a matrix of dimensions
// into configurations, RunSuite executes them on a worker pool with
// context cancellation, and the aggregated Report carries per-cell
// means/percentiles, agreement rates and JSON output:
//
//	rep, err := fastba.RunSuite(ctx, fastba.Suite{
//		Name: "scaling",
//		Sweep: fastba.Sweep{
//			Ns:     []int{64, 128, 256},
//			Seeds:  fastba.Seeds(5),
//			Models: []fastba.Model{fastba.SyncNonRushing, fastba.Async},
//		},
//	})
//	rep.Render(os.Stdout)
//
// Extension points — Byzantine strategies and delivery orders plug in
// from outside the module: RegisterAdversary adds a named strategy built
// from public types (ProtocolNode, NodeContext, Message), selectable via
// WithAdversaryName and sweepable via Sweep.Adversaries; WithScheduler
// substitutes a custom asynchronous delivery order; WithObserver streams
// per-delivery, per-round and per-decision events from any runtime.
//
// Everything is deterministic given the configuration's seed, except under
// the Goroutines model and TCP, where scheduling is up to the runtime.
package fastba

import (
	"fmt"
	"time"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/scenario"
)

// Model selects the network/adversary timing model of §2.1.
type Model int

// Timing models.
const (
	// SyncNonRushing is the synchronous model where the adversary picks
	// its round-r messages independently of correct round-r messages
	// (Lemmas 8–9: constant expected time).
	SyncNonRushing Model = iota + 1
	// SyncRushing lets Byzantine nodes observe the correct nodes' round
	// messages before sending their own (Lemma 6's setting).
	SyncRushing
	// Async delivers messages in seeded-random order; time is causal
	// depth (Lemma 10: O(log n / log log n)).
	Async
	// AsyncAdversarial delivers messages in an adversary-chosen order
	// (Byzantine traffic first) within an eventual-delivery age bound.
	AsyncAdversarial
	// Goroutines runs one goroutine per node over unbounded mailboxes;
	// scheduling is up to the Go runtime, so only outcome properties are
	// deterministic, not traces.
	Goroutines
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case SyncNonRushing:
		return "sync-nonrushing"
	case SyncRushing:
		return "sync-rushing"
	case Async:
		return "async"
	case AsyncAdversarial:
		return "async-adversarial"
	case Goroutines:
		return "goroutines"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel maps a model's String name back to its value.
func ParseModel(s string) (Model, error) {
	for _, m := range []Model{SyncNonRushing, SyncRushing, Async, AsyncAdversarial, Goroutines} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("fastba: unknown model %q", s)
}

// Adversary selects a built-in Byzantine strategy. Every value is also
// registered under its String name, so WithAdversary(AdversaryFlood) and
// WithAdversaryName("flood") are equivalent; custom strategies join the
// same namespace through RegisterAdversary.
type Adversary int

// Byzantine strategies (see internal/adversary for their behaviour).
const (
	// AdversaryNone corrupts nobody (t = 0).
	AdversaryNone Adversary = iota + 1
	// AdversarySilent crashes the corrupted nodes from the start.
	AdversarySilent
	// AdversaryFlood floods the push phase with bogus candidates.
	AdversaryFlood
	// AdversaryEquivocate colludes on a bogus string and pushes
	// per-target variants.
	AdversaryEquivocate
	// AdversaryCorner plays the Lemma 6 answer-budget overload attack.
	AdversaryCorner
	// AdversaryCornerRushing is the rushing variant of the overload
	// attack (it observes honest poll lists first).
	AdversaryCornerRushing
)

// String implements fmt.Stringer.
func (a Adversary) String() string {
	switch a {
	case AdversaryNone:
		return "none"
	case AdversarySilent:
		return "silent"
	case AdversaryFlood:
		return "flood"
	case AdversaryEquivocate:
		return "equivocate"
	case AdversaryCorner:
		return "corner"
	case AdversaryCornerRushing:
		return "corner-rushing"
	default:
		return fmt.Sprintf("Adversary(%d)", int(a))
	}
}

// Config describes one run. Build it with NewConfig and options.
type Config struct {
	n           int
	seed        uint64
	model       Model
	advName     string
	corruptFrac float64
	knowFrac    float64
	sharedJunk  bool
	params      core.Params
	maxRounds   int
	schedMaker  SchedulerMaker
	observer    Observer
	faults      FaultPlan
	scenario    *Scenario

	// Decision-log knobs (log.go) and the load-harness workload (load.go).
	logRuntime    LogRuntime
	logDepth      int
	logBatch      int
	logLinger     time.Duration
	logCommitFrac float64
	logTimeout    time.Duration
	// logNaive disables per-instance node recycling — the naive-rebuild
	// arm of BenchmarkLogInstanceReuse (no public option on purpose).
	logNaive bool
	workload Workload

	// Durable-store knobs (WithLogStore and friends) and the catch-up
	// source a restarted log fetches its missing committed prefix from.
	storeDir       string
	storeSync      time.Duration
	storeSnapEvery int
	catchupAddr    string
	catchupPeer    *DecisionLog

	// TCP transport supervision knobs (net.go): dial/write deadlines,
	// redial policy, heartbeat detector, send-queue bounds and the chaos
	// plan. Zero values select the netrun defaults.
	net netrun.Options

	// metricsReg, when set (WithMetrics), receives the run's counter
	// families: latency histograms, throughput counters, fastba_net_*.
	metricsReg *MetricsRegistry
}

// Option customizes a Config (functional options).
type Option interface {
	apply(*Config)
}

type optionFunc func(*Config)

func (f optionFunc) apply(c *Config) { f(c) }

// WithSeed sets the master seed (default 1). Runs are deterministic per
// seed under every model except Goroutines.
func WithSeed(seed uint64) Option {
	return optionFunc(func(c *Config) { c.seed = seed })
}

// WithModel sets the timing model (default SyncNonRushing).
func WithModel(m Model) Option {
	return optionFunc(func(c *Config) { c.model = m })
}

// WithAdversary selects a built-in Byzantine strategy (default
// AdversarySilent when corruptFrac > 0).
func WithAdversary(a Adversary) Option {
	return optionFunc(func(c *Config) { c.advName = a.String() })
}

// WithAdversaryName selects a Byzantine strategy by registry name: a
// built-in ("none", "silent", "flood", ...) or anything added through
// RegisterAdversary. Unknown names are rejected by validation at run time.
func WithAdversaryName(name string) Option {
	return optionFunc(func(c *Config) { c.advName = name })
}

// WithCorruptFrac sets t/n (default 0.10; the paper requires < 1/3 − ε).
func WithCorruptFrac(f float64) Option {
	return optionFunc(func(c *Config) { c.corruptFrac = f })
}

// WithKnowFrac sets the fraction of correct nodes that initially know
// gstring in AER-only runs (default 0.85); BA runs derive knowledge from
// the almost-everywhere phase instead.
func WithKnowFrac(f float64) Option {
	return optionFunc(func(c *Config) { c.knowFrac = f })
}

// WithIndependentJunk gives unknowing nodes individually random candidates
// instead of one shared bogus string (the default, harder case).
func WithIndependentJunk() Option {
	return optionFunc(func(c *Config) { c.sharedJunk = false })
}

// WithQuorumSize overrides the sampler quorum size d.
func WithQuorumSize(d int) Option {
	return optionFunc(func(c *Config) { c.params.QuorumSize = d })
}

// WithPollSize overrides the poll-list size.
func WithPollSize(d int) Option {
	return optionFunc(func(c *Config) { c.params.PollSize = d })
}

// WithAnswerBudget overrides the log² n answer budget (0 = unlimited, the
// load-balance ablation).
func WithAnswerBudget(b int) Option {
	return optionFunc(func(c *Config) { c.params.AnswerBudget = b })
}

// WithDeferredRelay enables the deferred-relay extension (see
// DESIGN.md "Faithfulness notes").
func WithDeferredRelay() Option {
	return optionFunc(func(c *Config) { c.params.DeferredRelay = true })
}

// WithMaxRounds caps synchronous executions (default 64).
func WithMaxRounds(r int) Option {
	return optionFunc(func(c *Config) { c.maxRounds = r })
}

// WithScheduler substitutes a custom asynchronous delivery order: the
// maker builds one fresh Scheduler per run. It requires the Async or
// AsyncAdversarial model (where it replaces the built-in order).
func WithScheduler(mk SchedulerMaker) Option {
	return optionFunc(func(c *Config) { c.schedMaker = mk })
}

// WithObserver streams execution events (deliveries, round advances,
// decisions) from the run to o. It covers the protocol under study: AER
// executions under every model and over TCP. Baseline comparison runs and
// the BA pipeline's almost-everywhere phase do not stream events (only
// the BA run's AER phase does). The deterministic models invoke o live,
// per delivery; the concurrent runtimes (Goroutines, TCP) buffer events
// per node — retaining them for the whole run — and fan them in as one
// globally ordered pass at quiescence. Observers add measurable overhead
// and memory on hot runs; leave unset when only the aggregate result
// matters.
func WithObserver(o Observer) Option {
	return optionFunc(func(c *Config) { c.observer = o })
}

// NewConfig returns the default configuration for n nodes, customized by
// the options: synchronous non-rushing model, 10% silent corruption, 85%
// knowledgeable correct nodes, DESIGN.md §5 protocol geometry.
func NewConfig(n int, opts ...Option) Config {
	c := Config{
		n:           n,
		seed:        1,
		model:       SyncNonRushing,
		advName:     AdversarySilent.String(),
		corruptFrac: 0.10,
		knowFrac:    0.85,
		sharedJunk:  true,
		params:      core.DefaultParams(n),
		maxRounds:   64,
	}
	for _, o := range opts {
		o.apply(&c)
	}
	if c.advName == AdversaryNone.String() {
		c.corruptFrac = 0
	}
	return c
}

// N returns the configured system size.
func (c Config) N() int { return c.n }

// Seed returns the master seed.
func (c Config) Seed() uint64 { return c.seed }

// Model returns the timing model.
func (c Config) Model() Model { return c.model }

// AdversaryName returns the selected Byzantine strategy's registry name.
func (c Config) AdversaryName() string { return c.advName }

// CorruptFrac returns t/n.
func (c Config) CorruptFrac() float64 { return c.corruptFrac }

// KnowFrac returns the initially-knowledgeable fraction of correct nodes.
func (c Config) KnowFrac() float64 { return c.knowFrac }

// MaxRounds returns the synchronous round cap.
func (c Config) MaxRounds() int { return c.maxRounds }

// Faults returns the configured fault plan (zero = fault-free).
func (c Config) Faults() FaultPlan { return c.faults }

// Scenario returns the configured network scenario (with its seed resolved
// against the run seed) and whether one is set.
func (c Config) Scenario() (Scenario, bool) {
	if c.scenario == nil {
		return Scenario{}, false
	}
	return c.resolvedScenario(), true
}

// resolvedScenario returns the scenario spec with a zero seed replaced by
// the run seed, so scenario draws are a pure function of the configuration
// regardless of option order (sweeps append WithSeed after WithScenario).
func (c Config) resolvedScenario() Scenario {
	spec := *c.scenario
	if spec.Seed == 0 {
		spec.Seed = c.seed
	}
	return spec
}

// validate checks the configuration.
func (c Config) validate() error {
	if c.n < 8 {
		return fmt.Errorf("fastba: n = %d too small (need ≥ 8)", c.n)
	}
	if c.model < SyncNonRushing || c.model > Goroutines {
		return fmt.Errorf("fastba: unknown model %d", int(c.model))
	}
	if _, err := lookupAdversary(c.advName); err != nil {
		return err
	}
	// The negated comparisons also reject NaN, which would otherwise pass
	// range checks and then poison Cell map keys (NaN != NaN).
	if !(c.corruptFrac >= 0 && c.corruptFrac < 1.0/3) {
		return fmt.Errorf("fastba: corrupt fraction %v outside [0, 1/3)", c.corruptFrac)
	}
	if !(c.knowFrac >= 0 && c.knowFrac <= 1) {
		return fmt.Errorf("fastba: know fraction %v outside [0, 1]", c.knowFrac)
	}
	if c.maxRounds <= 0 {
		return fmt.Errorf("fastba: maxRounds %d must be positive", c.maxRounds)
	}
	if c.schedMaker != nil && c.model != Async && c.model != AsyncAdversarial {
		return fmt.Errorf("fastba: WithScheduler requires the async or async-adversarial model, have %v", c.model)
	}
	if err := c.faults.Validate(c.n); err != nil {
		return err
	}
	if kind := adaptiveKind(c.advName); kind != "" && c.scenario == nil {
		return fmt.Errorf("fastba: adversary %q is adaptive and requires a scenario (WithScenario)", c.advName)
	}
	if c.scenario != nil {
		// Compilation here surfaces misconfigured scenarios — including
		// disconnected topologies that would hang the termination oracle —
		// at validate() time, with the compile cache making the later run
		// reuse of the artifact free.
		if _, err := scenario.Compile(c.resolvedScenario(), c.n); err != nil {
			return err
		}
	}
	if err := c.net.Validate(); err != nil {
		return err
	}
	return c.params.Validate()
}
