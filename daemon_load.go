package fastba

// The multi-process load harness: spawn a cluster of real balogd OS
// processes, drive the client SDK at them over real sockets, optionally
// kill -9 one daemon mid-workload and restart it, and verify that every
// daemon's durable store holds a byte-identical committed prefix. This is
// the deployment-shaped counterpart of RunLoad — same percentiles, same
// oracles, but nothing shares an address space: commits survive into WAL
// files the harness reads back only after the processes have exited.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/fastba/fastba/internal/metrics"
	"github.com/fastba/fastba/internal/pipeline"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/store"
	"github.com/fastba/fastba/internal/wire"
)

// DaemonWorkload shapes one multi-process daemon-cluster load run.
type DaemonWorkload struct {
	// Daemons is the number of balogd processes (default 4, minimum 2);
	// PerDaemon is k, the protocol nodes each hosts (default 2). The
	// population Daemons·k must be ≥ 8.
	Daemons   int `json:"daemons"`
	PerDaemon int `json:"perDaemon"`
	// Seed keys the cluster and the client payload streams (default 1).
	Seed uint64 `json:"seed"`
	// Clients is the number of concurrent SDK sessions (default 8); Rate
	// each client's open-loop append rate in payloads/second (0 = closed
	// loop); PayloadBytes sizes each payload (default 32).
	Clients      int     `json:"clients"`
	Rate         float64 `json:"rate,omitempty"`
	PayloadBytes int     `json:"payloadBytes"`
	// Pipeline is how many appends each client keeps in flight over its
	// one session (default 1 — strictly closed-loop). The daemon's
	// admission queue is per session, so a Pipeline larger than QueueMax
	// is the configuration that forces ErrOverload.
	Pipeline int `json:"pipeline,omitempty"`
	// Duration bounds the append phase (default 5s).
	Duration time.Duration `json:"durationNs"`
	// KillRestart, when set, SIGKILLs daemon KillDaemon a third of the way
	// into the run and restarts it (same store, same flags) at two thirds,
	// so the run exercises catch-up repair and client resilience while the
	// killed daemon's nodes are dark. KillDaemon defaults to the last
	// daemon; it must not be 0 (the leader sequences appends).
	KillRestart bool `json:"killRestart,omitempty"`
	KillDaemon  int  `json:"killDaemon,omitempty"`
	// Depth, BatchMax and QueueMax pass through to balogd (-depth, -batch,
	// -queue). A small QueueMax with many closed-loop clients is the
	// overload-shedding configuration: admission control sheds appends and
	// the SDK surfaces ErrOverload.
	Depth    int `json:"depth,omitempty"`
	BatchMax int `json:"batchMax,omitempty"`
	QueueMax int `json:"queueMax,omitempty"`
	// ReproposeAfter paces the leader's stalled-instance retries (default
	// 250ms — snappier than the daemon's 2s default, because kill runs
	// spend a third of their duration with a daemon dark).
	ReproposeAfter time.Duration `json:"reproposeAfterNs,omitempty"`
	// BalogdPath is a prebuilt balogd binary; empty builds one from the
	// enclosing module into Dir.
	BalogdPath string `json:"balogdPath,omitempty"`
	// Dir is the scratch directory for stores, daemon logs and the built
	// binary. Empty creates a temp dir, removed again when the run ends
	// healthy (kept for inspection when anything failed).
	Dir string `json:"dir,omitempty"`
	// Metrics, when set, receives the run's client-side counter families
	// (commit-latency histogram, ack/overload counters) under
	// runtime="daemon" — the same surface RunLoad exports.
	Metrics *MetricsRegistry `json:"-"`
	// Logf, when set, receives harness progress lines.
	Logf func(format string, args ...any) `json:"-"`
}

func (w DaemonWorkload) withDefaults() DaemonWorkload {
	if w.Daemons <= 0 {
		w.Daemons = 4
	}
	if w.PerDaemon <= 0 {
		w.PerDaemon = 2
	}
	if w.Seed == 0 {
		w.Seed = 1
	}
	if w.Clients <= 0 {
		w.Clients = 8
	}
	if w.PayloadBytes <= 0 {
		w.PayloadBytes = 32
	}
	if w.Pipeline <= 0 {
		w.Pipeline = 1
	}
	if w.Duration <= 0 {
		w.Duration = 5 * time.Second
	}
	if w.KillRestart && w.KillDaemon <= 0 {
		w.KillDaemon = w.Daemons - 1
	}
	if w.ReproposeAfter <= 0 {
		w.ReproposeAfter = 250 * time.Millisecond
	}
	return w
}

// DaemonLoadResult reports one multi-process daemon-cluster run.
type DaemonLoadResult struct {
	Workload DaemonWorkload `json:"workload"`
	// Nodes is the protocol population (Daemons × PerDaemon).
	Nodes int `json:"nodes"`
	// Attempts counts Append calls; Acked of them returned a committed
	// sequence number; Overloads were shed by admission control
	// (ErrOverload); Lost hit a session error mid-request.
	Attempts  int `json:"attempts"`
	Acked     int `json:"acked"`
	Overloads int `json:"overloads"`
	Lost      int `json:"lost"`
	// Committed is the leader store's committed entry count after
	// shutdown; MaxAckedSeq the highest sequence number acked to a client.
	Committed   int    `json:"committed"`
	MaxAckedSeq uint64 `json:"maxAckedSeq"`
	// Elapsed is the append phase plus drain; CommitP50/P99 are
	// client-observed append-to-ack latency percentiles; Hist the full
	// histogram over the shared bucket edges.
	Elapsed   time.Duration `json:"elapsedNs"`
	CommitP50 time.Duration `json:"commitP50Ns"`
	CommitP99 time.Duration `json:"commitP99Ns"`
	Hist      []HistBucket  `json:"hist,omitempty"`
	// Killed and Restarted report the kill/restart schedule's execution.
	Killed    bool `json:"killed,omitempty"`
	Restarted bool `json:"restarted,omitempty"`
	// Frontiers is each daemon's post-shutdown store frontier (committed
	// entry count); CommonPrefix the length of the byte-identical common
	// prefix across every daemon's store.
	Frontiers    []uint64 `json:"frontiers"`
	CommonPrefix int      `json:"commonPrefix"`
	// Scraped holds leader /metrics families sampled before shutdown
	// (fastba_commits_total, fastba_appends_total,
	// fastba_overload_shed_total), proving the live endpoint served real
	// counters.
	Scraped map[string]float64 `json:"scraped,omitempty"`
	// Oracles is the invariant verdict: the leader log's cross-instance
	// oracles plus the multi-process agreement (byte-identical prefixes)
	// and durability (every acked append is in the leader's durable log)
	// checks.
	Oracles OracleReport `json:"oracles"`
	// Dir is where stores, logs and the binary live — kept on failure.
	Dir string `json:"dir,omitempty"`
	// Err carries the harness's fatal error, if any.
	Err string `json:"err,omitempty"`
}

// BuildBalogd builds the balogd binary into out. It locates the
// enclosing Go module by walking up from the working directory, so it
// works from any directory inside the repository.
func BuildBalogd(ctx context.Context, out string) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	cmd := exec.CommandContext(ctx, "go", "build", "-o", out, "./cmd/balogd")
	cmd.Dir = root
	if b, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("fastba: build balogd: %w\n%s", err, b)
	}
	return nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("fastba: no go.mod above the working directory (set DaemonWorkload.BalogdPath)")
		}
		dir = parent
	}
}

// daemonProc is one running balogd process.
type daemonProc struct {
	idx     int
	cmd     *exec.Cmd
	waitErr chan error
}

// daemonCluster manages the balogd process set of one run.
type daemonCluster struct {
	w       DaemonWorkload
	bin     string
	dir     string
	bases   []int // each daemon's base port; it owns [base, base+k+2]
	cluster string

	mu    sync.Mutex
	procs []*daemonProc
}

func (c *daemonCluster) storeDir(i int) string { return filepath.Join(c.dir, fmt.Sprintf("d%d", i)) }
func (c *daemonCluster) clientAddr(i int) string {
	return fmt.Sprintf("127.0.0.1:%d", c.bases[i]+c.w.PerDaemon+1)
}
func (c *daemonCluster) metricsAddr(i int) string {
	return fmt.Sprintf("127.0.0.1:%d", c.bases[i]+c.w.PerDaemon+2)
}

// start launches daemon i and begins reaping it.
func (c *daemonCluster) start(i int) error {
	logPath := filepath.Join(c.dir, fmt.Sprintf("balogd-%d.log", i))
	logFile, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	args := []string{
		"-node", strconv.Itoa(i),
		"-cluster", c.cluster,
		"-k", strconv.Itoa(c.w.PerDaemon),
		"-seed", strconv.FormatUint(c.w.Seed, 10),
		"-store", c.storeDir(i),
		"-repropose", c.w.ReproposeAfter.String(),
	}
	if c.w.Depth > 0 {
		args = append(args, "-depth", strconv.Itoa(c.w.Depth))
	}
	if c.w.BatchMax > 0 {
		args = append(args, "-batch", strconv.Itoa(c.w.BatchMax))
	}
	if c.w.QueueMax > 0 {
		args = append(args, "-queue", strconv.Itoa(c.w.QueueMax))
	}
	cmd := exec.Command(c.bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("start balogd %d: %w", i, err)
	}
	p := &daemonProc{idx: i, cmd: cmd, waitErr: make(chan error, 1)}
	go func() {
		p.waitErr <- cmd.Wait()
		logFile.Close()
	}()
	c.mu.Lock()
	c.procs[i] = p
	c.mu.Unlock()
	return nil
}

func (c *daemonCluster) proc(i int) *daemonProc {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.procs[i]
}

// kill SIGKILLs daemon i and reaps it — the crash half of the
// kill/restart schedule (kill -9 semantics: no flush, no goodbye).
func (c *daemonCluster) kill(i int) {
	p := c.proc(i)
	if p == nil {
		return
	}
	_ = p.cmd.Process.Kill()
	<-p.waitErr
	c.mu.Lock()
	c.procs[i] = nil
	c.mu.Unlock()
}

// stop gracefully terminates daemon i (SIGTERM, escalating to SIGKILL
// after grace) and returns its exit error. The proc slot is cleared once
// the process is reaped, so the error-path killAll never re-waits a
// drained waitErr channel.
func (c *daemonCluster) stop(i int, grace time.Duration) error {
	p := c.proc(i)
	if p == nil {
		return nil
	}
	defer c.clear(i, p)
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.waitErr:
		return err
	case <-time.After(grace):
		_ = p.cmd.Process.Kill()
		<-p.waitErr
		return fmt.Errorf("balogd %d: did not exit within %v of SIGTERM", i, grace)
	}
}

// clear releases daemon i's proc slot if it still holds p.
func (c *daemonCluster) clear(i int, p *daemonProc) {
	c.mu.Lock()
	if c.procs[i] == p {
		c.procs[i] = nil
	}
	c.mu.Unlock()
}

// stopAll gracefully terminates every live daemon concurrently.
func (c *daemonCluster) stopAll(grace time.Duration) error {
	errs := make([]error, len(c.procs))
	var wg sync.WaitGroup
	for i := range c.procs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.stop(i, grace)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// killAll hard-kills whatever is still running (error-path cleanup).
func (c *daemonCluster) killAll() {
	for i := range c.procs {
		if p := c.proc(i); p != nil {
			_ = p.cmd.Process.Kill()
			<-p.waitErr
		}
	}
}

// logTail returns the last portion of daemon i's log, for error reports.
func (c *daemonCluster) logTail(i int, max int) string {
	b, err := os.ReadFile(filepath.Join(c.dir, fmt.Sprintf("balogd-%d.log", i)))
	if err != nil {
		return ""
	}
	if len(b) > max {
		b = b[len(b)-max:]
	}
	return string(b)
}

// allocPortBases reserves daemons contiguous blocks of span ports each on
// the loopback interface, probing candidate ranges until one is entirely
// free. The probe-then-release window is racy in principle; in practice
// the harness owns the range for the few milliseconds before the daemons
// bind, and a collision surfaces as a daemon startup failure.
func allocPortBases(daemons, span int) ([]int, error) {
	base := 23000 + (os.Getpid()*211)%17000
	for attempt := 0; attempt < 64; attempt++ {
		lo := base + attempt*(daemons*span+37)
		if lo+daemons*span >= 65000 {
			lo = 23000 + (lo % 20000)
		}
		if bases, ok := probeBlock(lo, daemons, span); ok {
			return bases, nil
		}
	}
	return nil, fmt.Errorf("fastba: no free port range for %d daemons × %d ports", daemons, span)
}

func probeBlock(lo, daemons, span int) ([]int, bool) {
	var lns []io.Closer
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	bases := make([]int, daemons)
	for d := 0; d < daemons; d++ {
		bases[d] = lo + d*span
		for p := 0; p < span; p++ {
			ln, err := probeListen(lo + d*span + p)
			if err != nil {
				return nil, false
			}
			lns = append(lns, ln)
		}
	}
	return bases, true
}

// RunDaemonLoad runs the multi-process load harness: build (or reuse)
// the balogd binary, spawn Daemons real OS processes on loopback port
// blocks, drive Clients concurrent SDK sessions at the leader for
// Duration, execute the kill/restart schedule, wait for the survivors to
// converge, shut everything down gracefully and audit the WAL files left
// behind. The returned result carries client-observed latency
// percentiles and the multi-process oracle verdict; the error return is
// reserved for harness failures (a run with oracle violations returns
// res, nil with the violations in res.Oracles).
func RunDaemonLoad(ctx context.Context, w DaemonWorkload) (*DaemonLoadResult, error) {
	w = w.withDefaults()
	if w.Daemons < 2 {
		return nil, fmt.Errorf("fastba: daemon load needs ≥ 2 daemons")
	}
	if w.Daemons*w.PerDaemon < 8 {
		return nil, fmt.Errorf("fastba: population %d×%d < 8", w.Daemons, w.PerDaemon)
	}
	if w.KillRestart && (w.KillDaemon <= 0 || w.KillDaemon >= w.Daemons) {
		return nil, fmt.Errorf("fastba: kill daemon %d outside (0, %d) — daemon 0 leads and cannot be the kill target", w.KillDaemon, w.Daemons)
	}
	logf := w.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	res := &DaemonLoadResult{Workload: w, Nodes: w.Daemons * w.PerDaemon}

	dir := w.Dir
	madeDir := false
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "fastba-daemon-*")
		if err != nil {
			return nil, err
		}
		madeDir = true
	}
	res.Dir = dir

	bin := w.BalogdPath
	if bin == "" {
		bin = filepath.Join(dir, "balogd")
		logf("building balogd → %s", bin)
		if err := BuildBalogd(ctx, bin); err != nil {
			return nil, err
		}
	}

	bases, err := allocPortBases(w.Daemons, w.PerDaemon+3)
	if err != nil {
		return nil, err
	}
	var baseAddrs []string
	for _, b := range bases {
		baseAddrs = append(baseAddrs, fmt.Sprintf("127.0.0.1:%d", b))
	}
	c := &daemonCluster{
		w: w, bin: bin, dir: dir, bases: bases,
		cluster: strings.Join(baseAddrs, ","),
		procs:   make([]*daemonProc, w.Daemons),
	}
	defer c.killAll()

	logf("starting %d daemons (k=%d, n=%d) on %s", w.Daemons, w.PerDaemon, res.Nodes, c.cluster)
	for i := 0; i < w.Daemons; i++ {
		if err := c.start(i); err != nil {
			return nil, err
		}
	}
	for i := 0; i < w.Daemons; i++ {
		if err := waitHealthy(ctx, c, i, 20*time.Second); err != nil {
			return nil, fmt.Errorf("daemon %d never became healthy: %w\n--- balogd-%d.log ---\n%s", i, err, i, c.logTail(i, 2000))
		}
	}

	// Drive phase: Clients SDK sessions at the leader, plus the
	// kill/restart schedule on its own clock.
	var (
		attempts, acked, overloads, lost atomic.Int64
		maxAcked                         atomic.Uint64
		latMu                            sync.Mutex
		latencies                        []float64
	)
	driveCtx, stopDrive := context.WithTimeout(ctx, w.Duration)
	defer stopDrive()

	var schedWG sync.WaitGroup
	if w.KillRestart {
		schedWG.Add(1)
		go func() {
			defer schedWG.Done()
			third := w.Duration / 3
			select {
			case <-driveCtx.Done():
				return
			case <-time.After(third):
			}
			logf("killing daemon %d (SIGKILL)", w.KillDaemon)
			c.kill(w.KillDaemon)
			res.Killed = true
			select {
			case <-driveCtx.Done():
			case <-time.After(third):
			}
			logf("restarting daemon %d", w.KillDaemon)
			if err := c.start(w.KillDaemon); err == nil {
				res.Restarted = true
			}
		}()
	}

	start := time.Now()
	var clientWG sync.WaitGroup
	for cl := 0; cl < w.Clients; cl++ {
		clientWG.Add(1)
		go func(cl int) {
			defer clientWG.Done()
			lc, err := DialLog(driveCtx, ClientConfig{Addr: c.clientAddr(0)})
			if err != nil {
				return
			}
			defer lc.Close()
			// Pipeline workers share the one session: appends interleave by
			// request id over the same connection, which is exactly what
			// fills a per-session admission queue past QueueMax.
			var workerWG sync.WaitGroup
			for wk := 0; wk < w.Pipeline; wk++ {
				workerWG.Add(1)
				go func(wk int) {
					defer workerWG.Done()
					src := prng.New(prng.DeriveKey(w.Seed, "daemonload/client", uint64(cl)<<16|uint64(wk)))
					payload := make([]byte, w.PayloadBytes)
					var pacer *time.Timer
					if w.Rate > 0 {
						pacer = time.NewTimer(time.Duration(float64(time.Second) / w.Rate))
						defer pacer.Stop()
					}
					var lats []float64
					for driveCtx.Err() == nil {
						for i := range payload {
							payload[i] = byte(src.Uint64())
						}
						attempts.Add(1)
						t0 := time.Now()
						seq, err := lc.Append(driveCtx, append([]byte(nil), payload...))
						switch {
						case err == nil:
							acked.Add(1)
							lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
							for {
								cur := maxAcked.Load()
								if seq <= cur || maxAcked.CompareAndSwap(cur, seq) {
									break
								}
							}
						case isOverload(err):
							overloads.Add(1)
							// Admission control never admitted the request,
							// so a paced resend is safe — back off a beat to
							// let the queue drain.
							sleepCtx(driveCtx, 2*time.Millisecond)
						case driveCtx.Err() != nil:
							// run over
						default:
							lost.Add(1)
							// Session errors self-heal on the next call
							// (redial with backoff inside the SDK).
						}
						if pacer != nil {
							select {
							case <-driveCtx.Done():
							case <-pacer.C:
								pacer.Reset(time.Duration(float64(time.Second) / w.Rate))
							}
						}
					}
					latMu.Lock()
					latencies = append(latencies, lats...)
					latMu.Unlock()
				}(wk)
			}
			workerWG.Wait()
		}(cl)
	}
	clientWG.Wait()
	stopDrive()
	schedWG.Wait()

	res.Attempts = int(attempts.Load())
	res.Acked = int(acked.Load())
	res.Overloads = int(overloads.Load())
	res.Lost = int(lost.Load())
	res.MaxAckedSeq = maxAcked.Load()
	logf("drive done: %d attempts, %d acked (max seq %d), %d overloads, %d lost",
		res.Attempts, res.Acked, res.MaxAckedSeq, res.Overloads, res.Lost)

	// Convergence: wait until every daemon's committed frontier reaches
	// the leader's, so the restarted daemon has repaired its gap before
	// the stores are compared. Scraping /metrics doubles as the liveness
	// probe of the metrics endpoint.
	if err := waitConverged(ctx, c, 30*time.Second); err != nil {
		res.Err = err.Error()
	}
	res.Scraped = scrapeFamilies(c.metricsAddr(0),
		"fastba_commits_total", "fastba_appends_total", "fastba_overload_shed_total")

	if err := c.stopAll(20 * time.Second); err != nil && res.Err == "" {
		res.Err = err.Error()
	}
	res.Elapsed = time.Since(start)

	// Post-mortem: read every WAL back and audit. The stores are only
	// readable now — while the daemons lived they owned these files.
	logs := make([][]store.Record, w.Daemons)
	for i := 0; i < w.Daemons; i++ {
		st, err := store.Open(c.storeDir(i), store.Options{})
		if err != nil {
			return nil, fmt.Errorf("reopen store of daemon %d: %w", i, err)
		}
		logs[i] = st.Records()
		res.Frontiers = append(res.Frontiers, st.Frontier())
		st.Close()
	}
	res.Committed = len(logs[0])
	res.CommonPrefix = commonPrefixLen(logs)
	res.Oracles = daemonOracles(logs, res)

	sort.Float64s(latencies)
	if len(latencies) > 0 {
		res.CommitP50 = time.Duration(metrics.Quantile(latencies, 0.5) * float64(time.Millisecond))
		res.CommitP99 = time.Duration(metrics.Quantile(latencies, 0.99) * float64(time.Millisecond))
		res.Hist = latencyHistogram(latencies)
	}
	exportDaemonLoadMetrics(w.Metrics, res, latencies)

	if madeDir && res.Err == "" && res.Oracles.OK() {
		os.RemoveAll(dir)
		res.Dir = ""
	}
	return res, nil
}

// isOverload reports an admission-control shed, whether surfaced as the
// typed sentinel or wrapped.
func isOverload(err error) bool { return errors.Is(err, ErrOverload) }

// probeListen checks one loopback port is bindable right now.
func probeListen(port int) (io.Closer, error) {
	return net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// waitHealthy polls daemon i's /healthz until it answers 200.
func waitHealthy(ctx context.Context, c *daemonCluster, i int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	url := "http://" + c.metricsAddr(i) + "/healthz"
	var last error
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			last = err
		}
		sleepCtx(ctx, 50*time.Millisecond)
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return last
}

// waitConverged polls every daemon's fastba_commit_seq until all match
// the leader's frontier sampled in the same round.
func waitConverged(ctx context.Context, c *daemonCluster, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastState string
	for time.Now().Before(deadline) && ctx.Err() == nil {
		frontiers := make([]float64, len(c.procs))
		converged := true
		for i := range c.procs {
			fams := scrapeFamilies(c.metricsAddr(i), "fastba_commit_seq")
			frontiers[i] = fams["fastba_commit_seq"]
			if frontiers[i] != frontiers[0] {
				converged = false
			}
		}
		if converged && frontiers[0] > 0 {
			return nil
		}
		lastState = fmt.Sprint(frontiers)
		sleepCtx(ctx, 100*time.Millisecond)
	}
	return fmt.Errorf("fastba: daemons did not converge within %v (frontiers %s)", timeout, lastState)
}

// scrapeFamilies GETs a daemon's /metrics and sums each named family's
// sample values across label sets. Missing families read as 0.
func scrapeFamilies(addr string, names ...string) map[string]float64 {
	out := make(map[string]float64, len(names))
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return out
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		for _, name := range names {
			if !strings.HasPrefix(line, name) {
				continue
			}
			rest := line[len(name):]
			if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue
			}
			if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
				out[name] += v
			}
		}
	}
	return out
}

// canonicalRecordBytes encodes the canonical content of one committed
// record — sequence, decided value, payloads — excluding the per-daemon
// bookkeeping (decider counters, timestamps) that legitimately differs
// between a daemon that committed an instance itself and one that
// repaired it from a peer. "Byte-identical prefixes" means these bytes.
func canonicalRecordBytes(r store.Record) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, r.Seq)
	buf = wire.AppendBitString(buf, r.Value)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Payloads)))
	for _, p := range r.Payloads {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// commonPrefixLen returns the length of the longest prefix on which
// every daemon's log is canonically byte-identical.
func commonPrefixLen(logs [][]store.Record) int {
	n := len(logs[0])
	for _, l := range logs[1:] {
		if len(l) < n {
			n = len(l)
		}
	}
	for i := 0; i < n; i++ {
		want := canonicalRecordBytes(logs[0][i])
		for _, l := range logs[1:] {
			if string(canonicalRecordBytes(l[i])) != string(want) {
				return i
			}
		}
	}
	return n
}

// daemonOracles audits the recovered stores: the leader log's
// cross-instance oracles, multi-process agreement (every common prefix
// byte-identical) and durability (every acked append is in every
// daemon's durable log).
func daemonOracles(logs [][]store.Record, res *DaemonLoadResult) OracleReport {
	entries := make([]LogEntry, len(logs[0]))
	for i, r := range logs[0] {
		entries[i] = logEntry(pipeline.EntryOf(r))
	}
	rep := CheckLogInvariants(entries, 1)

	rep.Checked = append(rep.Checked, OracleLogDurability)
	sort.Strings(rep.Checked)
	violate := func(oracle, detail string, args ...any) {
		rep.Violations = append(rep.Violations, Violation{Oracle: oracle, Detail: fmt.Sprintf(detail, args...)})
	}
	// Agreement across processes: the shortest log bounds the comparable
	// prefix; inside it every record must be canonically identical.
	shortest := len(logs[0])
	for _, l := range logs {
		if len(l) < shortest {
			shortest = len(l)
		}
	}
	if res.CommonPrefix < shortest {
		violate(OracleLogAgreement,
			"daemon stores diverge at seq %d: common byte-identical prefix %d < shortest log %d",
			res.CommonPrefix, res.CommonPrefix, shortest)
	}
	// Durability: an ack promised the payload is committed; the leader's
	// durable log must reach past every acked sequence number, and so
	// must every follower after convergence (they repaired to the same
	// frontier before shutdown).
	if res.Acked > 0 {
		for i, l := range logs {
			if uint64(len(l)) <= res.MaxAckedSeq {
				violate(OracleLogDurability,
					"daemon %d holds %d committed entries but seq %d was acked to a client",
					i, len(l), res.MaxAckedSeq)
			}
		}
	}
	return rep
}

// exportDaemonLoadMetrics publishes the run through the shared registry
// surface under runtime="daemon" (see exportLoadMetrics).
func exportDaemonLoadMetrics(reg *MetricsRegistry, res *DaemonLoadResult, latenciesMs []float64) {
	if reg == nil {
		return
	}
	label := []string{"runtime", "daemon"}
	h := reg.Histogram("fastba_commit_latency_seconds", "Client-observed commit latency.", metrics.LatencyBucketsSeconds(), label...)
	for _, ms := range latenciesMs {
		h.Observe(ms / 1e3)
	}
	reg.Counter("fastba_load_proposed_total", "Payloads accepted from load clients.", label...).Add(int64(res.Attempts))
	reg.Counter("fastba_load_committed_payloads_total", "Payloads that reached a committed entry.", label...).Add(int64(res.Acked))
	reg.Counter("fastba_load_committed_entries_total", "Entries committed during load runs.", label...).Add(int64(res.Committed))
	reg.Counter("fastba_overload_shed_total", "Client append requests shed by admission control.", label...).Add(int64(res.Overloads))
}
