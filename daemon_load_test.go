package fastba

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunDaemonLoadSmoke: the multi-process harness end to end — build
// balogd, spawn 4 real OS processes, drive the SDK, kill and restart one
// daemon mid-workload, and audit the WALs left behind. This is the
// in-repo twin of the CI daemon-smoke job.
func TestRunDaemonLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real balogd processes and builds the binary")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	reg := NewMetricsRegistry()
	res, err := RunDaemonLoad(ctx, DaemonWorkload{
		Daemons:     4,
		PerDaemon:   2,
		Clients:     4,
		Duration:    3 * time.Second,
		KillRestart: true,
		Metrics:     reg,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("harness error: %s (scratch kept at %s)", res.Err, res.Dir)
	}
	if !res.Killed || !res.Restarted {
		t.Fatalf("kill/restart schedule incomplete: killed=%v restarted=%v", res.Killed, res.Restarted)
	}
	if res.Committed == 0 || res.Acked == 0 {
		t.Fatalf("nothing committed: %d entries, %d acked", res.Committed, res.Acked)
	}
	if !res.Oracles.OK() {
		t.Fatalf("oracle violations: %s (scratch kept at %s)", res.Oracles, res.Dir)
	}
	// Byte-identical prefixes: the common prefix must span the shortest
	// store, and after convergence every store reaches the leader's.
	for i, f := range res.Frontiers {
		if f != res.Frontiers[0] {
			t.Errorf("daemon %d frontier %d != leader frontier %d", i, f, res.Frontiers[0])
		}
	}
	if res.CommonPrefix != res.Committed {
		t.Errorf("byte-identical prefix %d < committed %d", res.CommonPrefix, res.Committed)
	}
	if res.Scraped["fastba_commits_total"] == 0 {
		t.Error("leader /metrics scrape saw no commits")
	}
	// The run exported through the shared registry surface.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"fastba_commit_latency_seconds", "fastba_load_committed_entries_total"} {
		if !strings.Contains(b.String(), fam) {
			t.Errorf("registry exposition missing %s", fam)
		}
	}
}

// TestWithMetricsExportsLoadFamilies: an in-process RunLoad with
// WithMetrics publishes the same counter families the daemon serves —
// one bookkeeping surface across runtimes.
func TestWithMetricsExportsLoadFamilies(t *testing.T) {
	reg := NewMetricsRegistry()
	cfg := NewConfig(16, WithSeed(7), WithKnowFrac(1),
		WithWorkload(Workload{Clients: 2, Duration: 300 * time.Millisecond}),
		WithMetrics(reg))
	res, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no entries committed")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, fam := range []string{
		"fastba_commit_latency_seconds_bucket",
		`fastba_load_proposed_total{runtime="fabric"}`,
		`fastba_load_committed_entries_total{runtime="fabric"}`,
		"fastba_net_frames_sent_total",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("exposition missing %s\n%s", fam, body)
		}
	}
}
