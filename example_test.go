package fastba_test

import (
	"fmt"
	"log"

	"github.com/fastba/fastba"
)

// ExampleRunAER runs the core almost-everywhere-to-everywhere protocol on
// a synthetic population: 64 nodes, 5% silent Byzantine, 92% of correct
// nodes already knowing gstring.
func ExampleRunAER() {
	cfg := fastba.NewConfig(64,
		fastba.WithSeed(3),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
	)
	res, err := fastba.RunAER(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement: %v\n", res.Agreement)
	fmt.Printf("gstring: %s\n", res.GString)
	fmt.Printf("rounds: %d\n", res.Time)
	// Output:
	// agreement: true
	// gstring: a5abf6
	// rounds: 6
}

// ExampleRunBA runs the full pipeline: the committee tree generates and
// spreads gstring almost everywhere, then AER carries it to everyone.
func ExampleRunBA() {
	res, err := fastba.RunBA(fastba.NewConfig(128,
		fastba.WithSeed(1),
		fastba.WithCorruptFrac(0.05),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement: %v\n", res.AER.Agreement)
	fmt.Printf("ae-knowledge: %.2f\n", res.AE.KnowFrac)
	// Output:
	// agreement: true
	// ae-knowledge: 1.00
}

// ExampleRunBaseline compares against the trivial flood protocol on the
// same population an AER run would use.
func ExampleRunBaseline() {
	cfg := fastba.NewConfig(64,
		fastba.WithSeed(3),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
	)
	res, err := fastba.RunBaseline(cfg, fastba.BaselineFlood)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement: %v in %d round(s)\n", res.Agreement, res.Time)
	// Output:
	// agreement: true in 1 round(s)
}
