// Asyncadversary: AER under full asynchrony with an adversarial message
// scheduler and the Lemma 6 "cornering" overload attack.
//
// The run demonstrates the paper's two timing results side by side:
//
//   - against a quiet network, decisions land at constant causal depth
//     (Lemma 8's flavour);
//   - against the cornering adversary — which issues well-formed gstring
//     pull requests aimed at the busiest poll-list members to burn their
//     answer budgets — decision depth stretches while agreement survives
//     (Lemma 6: O(log n / log log n)).
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/fastba/fastba"
)

func main() {
	const n = 256

	fmt.Println("AER under asynchrony (n = 256, t = 0.1·n, answer budget tightened to the attack regime)")
	fmt.Println()
	fmt.Printf("%-34s %6s %6s %6s %9s %7s\n", "setting", "p50", "p95", "max", "deferred", "agree")

	for _, setting := range []struct {
		name  string
		model fastba.Model
		adv   fastba.Adversary
	}{
		{"async, random order, silent", fastba.Async, fastba.AdversarySilent},
		{"async, adversarial order, corner", fastba.AsyncAdversarial, fastba.AdversaryCorner},
	} {
		res, err := fastba.RunAER(fastba.NewConfig(n,
			fastba.WithSeed(11),
			fastba.WithModel(setting.model),
			fastba.WithAdversary(setting.adv),
			fastba.WithCorruptFrac(0.10),
			fastba.WithKnowFrac(0.90),
			// Half the quorum size: deep in the overload regime the
			// asymptotics put the adversary in (t = Θ(n) ≫ log² n), so
			// deferral chains and their depth cost become visible.
			fastba.WithAnswerBudget(12),
		))
		if err != nil {
			log.Fatal(err)
		}
		times := append([]int(nil), res.DecisionTimes...)
		sort.Ints(times)
		q := func(p float64) int {
			if len(times) == 0 {
				return -1
			}
			idx := int(p * float64(len(times)-1))
			return times[idx]
		}
		fmt.Printf("%-34s %6d %6d %6d %9d %7v\n",
			setting.name, q(0.5), q(0.95), q(1), res.AnswersDeferred, res.Agreement)
	}

	fmt.Println()
	fmt.Println("Causal depth is the async time measure: the longest chain of dependent")
	fmt.Println("messages before a decision. The cornering adversary defers answers at")
	fmt.Println("overloaded poll-list members, lengthening the tail without breaking agreement.")
}
