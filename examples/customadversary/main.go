// Customadversary: a Byzantine strategy implemented entirely outside the
// library — a "jammer" that sprays garbage messages of a custom type at
// pseudo-random targets — registered through the public RegisterAdversary
// extension point and swept against the built-in silent adversary by
// RunSuite. No internal/ package is imported: the strategy is built from
// the public ProtocolNode / NodeContext / Message surface alone.
//
// The experiment demonstrates the Lemma 3/4 robustness story from the
// outside: unknown message kinds are ignored by correct nodes, so the
// jammer burns its own bandwidth without moving agreement, time or the
// correct nodes' communication.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/fastba/fastba"
)

// jamMsg is a custom protocol message: correct AER nodes have no handler
// for its kind and drop it on delivery.
type jamMsg struct{ bytes int }

func (m jamMsg) WireSize() int { return m.bytes }
func (m jamMsg) Kind() string  { return "jam" }

// jammer sprays jam messages during Init and echoes one back per received
// message — sustained garbage pressure on the delivery path.
type jammer struct {
	env fastba.AdversaryEnv
	id  int
	rng uint64
}

// next is a tiny xorshift PRNG seeded from the run seed and node ID, so
// runs stay deterministic per configuration.
func (j *jammer) next() uint64 {
	j.rng ^= j.rng << 13
	j.rng ^= j.rng >> 7
	j.rng ^= j.rng << 17
	return j.rng
}

func (j *jammer) Init(ctx fastba.NodeContext) {
	for k := 0; k < 4*j.env.QuorumSize; k++ {
		ctx.Send(int(j.next()%uint64(j.env.N)), jamMsg{bytes: 64})
	}
}

func (j *jammer) Deliver(ctx fastba.NodeContext, from fastba.NodeID, m fastba.Message) {
	ctx.Send(int(j.next()%uint64(j.env.N)), jamMsg{bytes: 16})
}

func main() {
	err := fastba.RegisterAdversary("jammer",
		func(env fastba.AdversaryEnv, id int) fastba.ProtocolNode {
			return &jammer{env: env, id: id, rng: env.Seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15}
		})
	if err != nil {
		log.Fatal(err)
	}

	rep, err := fastba.RunSuite(context.Background(), fastba.Suite{
		Name: "custom jammer vs built-in silent",
		Sweep: fastba.Sweep{
			Ns:          []int{128},
			Seeds:       fastba.Seeds(5),
			Adversaries: []string{"silent", "jammer"},
			Options: []fastba.Option{
				fastba.WithCorruptFrac(0.10),
				fastba.WithKnowFrac(0.90),
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep.Render(os.Stdout)

	fmt.Println()
	fmt.Println("the jam traffic shows up in the delivered-message mix but cannot raise the")
	fmt.Println("correct nodes' sending or delay decisions: unknown kinds are dropped on")
	fmt.Println("arrival, the Lemma 3/4 filter story — now checked against an adversary the")
	fmt.Println("library has never heard of.")
}
