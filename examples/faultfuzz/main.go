// Faultfuzz: the hostile-network workflow end to end. First a single run
// under an explicit FaultPlan with the invariant oracles wired through
// the observer stream; then a fault sweep whose report separates "the
// network destroyed liveness" (agreement rate drops) from "safety broke"
// (oracle violations — which must never appear); finally a small seeded
// SimFuzz campaign sampling random hostile scenarios.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/fastba/fastba"
)

func main() {
	// 1. One run on a partitioned, lossy, reordering network.
	plan := fastba.FaultPlan{
		Seed:       7,
		DropProb:   0.05,
		DelayProb:  0.3,
		MaxDelay:   3,
		Partitions: []fastba.Partition{{A: []fastba.NodeID{0, 1, 2, 3}, From: 2, Until: 6}},
		Crashes:    []fastba.Crash{{Node: 5, At: 1, RecoverAt: 5}},
	}
	cfg := fastba.NewConfig(64, fastba.WithSeed(1), fastba.WithFaults(plan))
	oracles := fastba.NewOracles(cfg)
	cfg = fastba.NewConfig(64, fastba.WithSeed(1), fastba.WithFaults(plan),
		fastba.WithObserver(oracles.Observer()))
	res, err := fastba.RunAER(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single run under %s: %d/%d decided, oracles: %s\n",
		plan.Label(), res.Decided, res.Correct, oracles.Report(res))

	// 2. Fault plans as a sweep dimension, oracles on every cell.
	rep, err := fastba.RunSuite(context.Background(), fastba.Suite{
		Name: "fault sweep",
		Sweep: fastba.Sweep{
			Ns:          []int{64},
			Seeds:       fastba.Seeds(5),
			Adversaries: []string{"silent", "equivocate-then-silent"},
			Faults: []fastba.FaultPlan{
				{},
				{Seed: 3, DupProb: 0.2, DelayProb: 0.4, MaxDelay: 4}, // lossless
				{Seed: 5, DropProb: 0.1},                             // lossy
			},
		},
		CheckOracles: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep.Render(os.Stdout)
	for _, cell := range rep.Cells {
		if cell.OracleViolations > 0 {
			log.Fatalf("cell %v: %d safety violations — the protocol is broken", cell.Cell, cell.OracleViolations)
		}
	}

	// 3. A seeded fuzz campaign: deterministic per seed, shrunk
	// reproducers persisted on any finding.
	fz, err := fastba.SimFuzz(context.Background(), fastba.FuzzConfig{
		Seed: 1,
		Runs: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzz campaign: %d cases, %d failing, %d probabilistic misses\n",
		fz.Executed, len(fz.Failures), fz.ProbabilisticMisses)
	for _, f := range fz.Failures {
		log.Fatalf("fuzzer found a violation: %s → %v", f.Case, f.Violations)
	}
}
