// Netcluster: the same AER nodes that run inside the deterministic
// simulator, executed over real loopback TCP sockets with the library's
// binary wire codecs — 32 OS-level endpoints, length-prefixed frames,
// lazily dialed full mesh. Demonstrates that the protocol implementation
// is transport-agnostic (no simulator artifact props it up).
//
// This example uses the internal packages directly (it lives in the
// library module); external users drive the simulation runners through the
// public fastba API.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/netrun"
)

func main() {
	const n = 32
	sc, err := core.NewScenario(core.DefaultParams(n), 7, core.TestingScenarioConfig())
	if err != nil {
		log.Fatal(err)
	}
	nodes, correct := sc.Build(nil) // Byzantine nodes stay silent here

	cluster, err := netrun.New(nodes)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("listening on %d loopback TCP endpoints (first: %s)\n",
		n, cluster.Addrs()[0])

	start := time.Now()
	cluster.Start()

	allDecided := func() bool {
		for _, node := range correct {
			if node == nil {
				continue
			}
			if _, ok := node.Decided(); !ok {
				return false
			}
		}
		return true
	}
	if err := cluster.RunUntil(allDecided, 60*time.Second); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	o := core.Evaluate(correct, sc.GString)
	var totalBytes int64
	for _, b := range cluster.SentBytes() {
		totalBytes += b
	}
	fmt.Printf("agreement over TCP: %v (%d/%d decided gstring %s)\n",
		o.Agreement(), o.DecidedG, o.Correct, sc.GString)
	fmt.Printf("wall time %.0fms, %d KiB on the wire (%d bytes/node mean)\n",
		float64(elapsed.Milliseconds()), totalBytes/1024, totalBytes/int64(n))
}
