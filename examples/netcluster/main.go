// Netcluster: the same AER nodes that run inside the deterministic
// simulator, executed over real loopback TCP sockets with the library's
// binary wire codecs — 32 OS-level endpoints, length-prefixed frames,
// lazily dialed full mesh — through the public RunTCP entry point.
// Demonstrates that the protocol implementation is transport-agnostic (no
// simulator artifact props it up), and streams the deliveries through a
// message-kind counter via WithObserver.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/fastba/fastba"
)

func main() {
	const n = 32

	kinds := map[string]int64{}
	cfg := fastba.NewConfig(n,
		fastba.WithSeed(7),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
		fastba.WithObserver(func(ev fastba.Event) {
			if ev.Type == fastba.EventDeliver {
				kinds[ev.Kind]++
			}
		}),
	)

	res, err := fastba.RunTCP(context.Background(), cfg, 60*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agreement over TCP: %v (%d/%d decided gstring %s)\n",
		res.Agreement, res.DecidedGString, res.Correct, res.GString)
	fmt.Printf("wall time %.0fms, %.0f bits/node mean, %d bits/node max\n",
		float64(res.Wall.Milliseconds()), res.MeanBitsPerNode, res.MaxBitsPerNode)

	var names []string
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Println("deliveries by protocol message kind:")
	for _, k := range names {
		fmt.Printf("  %-8s %d\n", k, kinds[k])
	}
}
