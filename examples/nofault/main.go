// Nofault: the paper's §1 distinctive property — "unlike many randomized
// protocols, success is guaranteed when there is no Byzantine fault" — is
// exercised by running AER with t = 0 across many seeds under all three
// runtimes (deterministic event loop, random asynchrony and real
// goroutines). Every run must reach full agreement; none may merely be
// "likely" to.
package main

import (
	"fmt"
	"log"

	"github.com/fastba/fastba"
)

func main() {
	const n, seeds = 128, 25

	for _, model := range []fastba.Model{fastba.SyncNonRushing, fastba.Async, fastba.Goroutines} {
		failures := 0
		for seed := uint64(1); seed <= seeds; seed++ {
			res, err := fastba.RunAER(fastba.NewConfig(n,
				fastba.WithSeed(seed),
				fastba.WithModel(model),
				fastba.WithAdversary(fastba.AdversaryNone),
				fastba.WithKnowFrac(0.90),
			))
			if err != nil {
				log.Fatal(err)
			}
			if !res.Agreement {
				failures++
			}
		}
		fmt.Printf("%-18s %d/%d fault-free runs reached full agreement\n",
			model.String()+":", seeds-failures, seeds)
		if failures > 0 {
			log.Fatalf("model %v: %d fault-free runs failed — the no-fault guarantee is broken", model, failures)
		}
	}
	fmt.Println("\nWith t = 0 every quorum has an honest majority by construction, so the")
	fmt.Println("push filter, the relay majorities and the poll majorities all pass")
	fmt.Println("deterministically — no 'with high probability' qualifier needed.")
}
