// Quickstart: run the full Byzantine Agreement protocol — the KSSV06-style
// almost-everywhere committee phase composed with AER — on 256 nodes with a
// 10% silent Byzantine minority, and print what the paper's Lemma 9
// promises: every correct node ends up with the same global string, in a
// constant number of rounds, at poly-logarithmic per-node communication.
package main

import (
	"fmt"
	"log"

	"github.com/fastba/fastba"
)

func main() {
	cfg := fastba.NewConfig(256,
		fastba.WithSeed(42),
		fastba.WithCorruptFrac(0.10),
	)

	res, err := fastba.RunBA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fast Byzantine Agreement — quickstart (n = 256, t = 0.1·n, silent faults)")
	fmt.Printf("  global string (gstring):    %s\n", res.GString)
	fmt.Printf("  almost-everywhere phase:    %.1f%% of correct nodes learned it (%d rounds, %.0f bits/node)\n",
		100*res.AE.KnowFrac, res.AE.Time, res.AE.MeanBitsPerNode)
	fmt.Printf("  AER everywhere phase:       %d/%d correct nodes decided gstring (%d rounds, %.0f bits/node)\n",
		res.AER.DecidedGString, res.AER.Correct, res.AER.Time, res.AER.MeanBitsPerNode)
	fmt.Printf("  end-to-end agreement:       %v in %d rounds, %.0f bits/node total\n",
		res.AER.Agreement, res.TotalTime, res.TotalMeanBitsPerNode)

	if !res.AER.Agreement {
		log.Fatal("agreement failed — try a different seed (the guarantee is w.h.p.)")
	}
}
