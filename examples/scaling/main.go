// Scaling: the headline claim of the paper in one sweep — AER's per-node
// communication grows poly-logarithmically in n while its round count stays
// flat, against the Θ(n)-per-node flood and the Õ(√n) load-balanced
// baseline (Figure 1's comparison, at laptop scale).
package main

import (
	"fmt"
	"log"

	"github.com/fastba/fastba"
)

func main() {
	ns := []int{64, 128, 256, 512}

	fmt.Println("Per-node communication and time vs n (silent 5% corruption)")
	fmt.Println()
	fmt.Printf("%6s | %12s %6s | %12s %6s | %12s %6s\n",
		"n", "AER bits", "time", "KLST11 bits", "time", "flood bits", "time")

	var prevAER, prevFlood float64
	for _, n := range ns {
		cfg := fastba.NewConfig(n,
			fastba.WithSeed(7),
			fastba.WithCorruptFrac(0.05),
			fastba.WithKnowFrac(0.92),
		)
		aer, err := fastba.RunAER(cfg)
		if err != nil {
			log.Fatal(err)
		}
		klst, err := fastba.RunBaseline(cfg, fastba.BaselineKLST11)
		if err != nil {
			log.Fatal(err)
		}
		flood, err := fastba.RunBaseline(cfg, fastba.BaselineFlood)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d | %12.0f %6d | %12.0f %6d | %12.0f %6d\n",
			n, aer.MeanBitsPerNode, aer.Time,
			klst.MeanBitsPerNode, klst.Time,
			flood.MeanBitsPerNode, flood.Time)
		if prevAER > 0 {
			fmt.Printf("%6s | growth ×%.2f        | %21s | growth ×%.2f\n",
				"", aer.MeanBitsPerNode/prevAER, "", flood.MeanBitsPerNode/prevFlood)
		}
		prevAER, prevFlood = aer.MeanBitsPerNode, flood.MeanBitsPerNode
	}

	fmt.Println()
	fmt.Println("Doubling n multiplies flood's per-node bits by ≈ 2 (linear) but AER's by a")
	fmt.Println("shrinking factor (polylog): the paper's asymptotic separation, visible as a")
	fmt.Println("growth-rate gap at simulation scale. AER's round count never moves (O(1)).")
}
