// Suite: the paper's evaluation style as one declarative experiment — a
// Sweep matrix of sizes × seeds × timing models expanded and executed in
// parallel by RunSuite, with per-run results streamed through OnResult and
// the aggregated per-cell Report (means, percentiles, agreement rates)
// rendered as a Figure 1-style table and as JSON.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/fastba/fastba"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	suite := fastba.Suite{
		Name: "scaling — AER across models",
		Sweep: fastba.Sweep{
			Ns:     []int{64, 128, 256},
			Seeds:  fastba.Seeds(5),
			Models: []fastba.Model{fastba.SyncNonRushing, fastba.Async},
			Options: []fastba.Option{
				fastba.WithCorruptFrac(0.05),
				fastba.WithKnowFrac(0.92),
			},
		},
		OnResult: func(rec fastba.RunRecord) {
			fmt.Printf("done %-28s seed=%-2d agree=%-5v time=%d\n",
				rec.Cell, rec.Seed, rec.Agreement, rec.Time)
		},
	}

	rep, err := fastba.RunSuite(ctx, suite)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	rep.Render(os.Stdout)

	fmt.Println()
	fmt.Println("same report as JSON (first cell only, for brevity):")
	one := *rep
	one.Cells = rep.Cells[:1]
	if err := one.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
