// Timeline: watch one AER execution unfold — the temporal version of the
// paper's Figure 2. The trace shows the phase structure directly:
// round 1 is pure push (§3.1.1); pulls and polls launch in round 2
// (Algorithm 1); the Fw1 fan-out through the pull quorums dominates
// round 3 (Algorithm 2); Fw2 aggregation hits the poll lists in round 4;
// answers land in round 5 and decisions complete (Algorithm 3).
//
// It also prints the most-loaded nodes: under the cornering adversary the
// hotspot gap widens — the "not load-balanced" property of Figure 1(a).
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/fastba/fastba/internal/adversary"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/trace"
)

func main() {
	const n = 96
	for _, attack := range []bool{false, true} {
		sc, err := core.NewScenario(core.DefaultParams(n), 11, core.TestingScenarioConfig())
		if err != nil {
			log.Fatal(err)
		}
		var mk func(int) simnet.Node
		label := "silent adversary"
		if attack {
			mk = adversary.Maker(adversary.Corner{Rushing: true}, adversary.FromScenario(sc))
			label = "rushing corner adversary"
		}
		nodes, correct := sc.Build(mk)

		tr := trace.New(n)
		runner := simnet.NewSync(nodes, sc.Corrupt)
		runner.Observe(tr.Observer())
		runner.Run(60)

		o := core.Evaluate(correct, sc.GString)
		fmt.Printf("=== %s (agreement %v, %d/%d decided) ===\n", label, o.Agreement(), o.Decided, o.Correct)
		fmt.Println("message-flow timeline (deliveries per round and kind):")
		tr.Timeline(os.Stdout)
		fmt.Println("five most-loaded nodes:")
		tr.Hotspots(os.Stdout, 5)
		fmt.Println()
	}
}
