// Timeline: watch one AER execution unfold — the temporal version of the
// paper's Figure 2 — through the public streaming-observer API. The trace
// shows the phase structure directly: round 1 is pure push (§3.1.1); pulls
// and polls launch in round 2 (Algorithm 1); the Fw1 fan-out through the
// pull quorums dominates round 3 (Algorithm 2); Fw2 aggregation hits the
// poll lists in round 4; answers land in round 5 and decisions complete
// (Algorithm 3).
//
// It also prints the most-loaded nodes: under the cornering adversary the
// hotspot gap widens — the "not load-balanced" property of Figure 1(a).
// Everything here uses only the public fastba surface: the same observer
// stream a custom experiment would consume.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/fastba/fastba"
)

func main() {
	const n = 96
	for _, attack := range []bool{false, true} {
		tr := fastba.NewTrace(n)
		decisions := 0
		observer := tr.Observer()
		opts := []fastba.Option{
			fastba.WithSeed(11),
			fastba.WithCorruptFrac(0.05),
			fastba.WithKnowFrac(0.92),
			fastba.WithObserver(func(ev fastba.Event) {
				observer(ev)
				if ev.Type == fastba.EventDecision {
					decisions++
				}
			}),
		}
		label := "silent adversary"
		if attack {
			label = "rushing corner adversary"
			opts = append(opts,
				fastba.WithModel(fastba.SyncRushing),
				fastba.WithAdversary(fastba.AdversaryCornerRushing))
		}

		res, err := fastba.RunAER(fastba.NewConfig(n, opts...))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s (agreement %v, %d/%d decided, %d decision events) ===\n",
			label, res.Agreement, res.Decided, res.Correct, decisions)
		fmt.Println("message-flow timeline (deliveries per round and kind):")
		tr.Timeline(os.Stdout)
		fmt.Println("five most-loaded nodes:")
		tr.Hotspots(os.Stdout, 5)
		fmt.Println()
	}
}
