package fastba

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Variant names a bundle of extra options applied together as one sweep
// axis — the escape hatch for dimensions without a dedicated Sweep field
// (answer budgets, quorum sizes, the deferred-relay toggle, paired
// model+adversary settings, ...).
type Variant struct {
	// Name labels the variant in cells and reports.
	Name string
	// Options are applied after the Sweep's base Options.
	Options []Option
}

// Sweep declares a matrix of run dimensions. Every listed axis is crossed
// with every other; an empty axis contributes a single "inherit the
// configured default" point, so only the dimensions under study need
// listing. Ns is mandatory. Seeds vary within a report cell (they are the
// statistical repetitions); all other axes define the cells.
type Sweep struct {
	// Ns are the system sizes.
	Ns []int
	// Seeds are the master seeds per cell (default {1}). See Seeds for
	// the common 1..k range.
	Seeds []uint64
	// Models are the timing models to cross.
	Models []Model
	// Adversaries are Byzantine strategy registry names — built-ins or
	// anything added through RegisterAdversary.
	Adversaries []string
	// CorruptFracs and KnowFracs sweep the population shape.
	CorruptFracs []float64
	KnowFracs    []float64
	// Faults sweeps fault-injection plans (see WithFaults). Cells are
	// labeled with each plan's compact Label plus its schedule seed;
	// identically-labeled distinct plans are disambiguated by position.
	// The zero plan labels as "none".
	Faults []FaultPlan
	// Scenarios sweeps network scenarios (see WithScenario): topology,
	// latency/loss model, relay fanout and adversary trigger. Cells are
	// labeled with each scenario's Label plus its seed; identically-
	// labeled distinct scenarios are disambiguated by position. The zero
	// scenario labels as "none".
	Scenarios []Scenario
	// Workloads sweeps sustained-load shapes (KindLog suites; see
	// Workload and RunLoad). Cells are labeled with each workload's
	// Label.
	Workloads []Workload
	// Variants is the free-form axis of named option bundles.
	Variants []Variant
	// Options applies to every cell, before any per-axis option. A
	// WithObserver here is shared by every run: RunSuite serializes its
	// calls across workers, but events from concurrently executing runs
	// interleave — use Suite.OnResult (or Workers: 1) for per-run streams.
	Options []Option
}

// Seeds returns the canonical seed range 1..k (nil when k ≤ 0, which a
// Sweep treats as the default single seed).
func Seeds(k int) []uint64 {
	if k <= 0 {
		return nil
	}
	s := make([]uint64, k)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}

// Cell identifies one aggregation cell of a sweep: every dimension except
// the seed, resolved to the values the runs actually used.
type Cell struct {
	N           int     `json:"n"`
	Model       string  `json:"model"`
	Adversary   string  `json:"adversary"`
	CorruptFrac float64 `json:"corruptFrac"`
	KnowFrac    float64 `json:"knowFrac"`
	// Fault labels the cell's fault plan ("" = fault-free).
	Fault string `json:"fault,omitempty"`
	// Scenario labels the cell's network scenario ("" = direct mesh).
	Scenario string `json:"scenario,omitempty"`
	// Workload labels the cell's sustained-load shape (KindLog sweeps).
	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant,omitempty"`
}

// String renders a compact cell label.
func (c Cell) String() string {
	s := fmt.Sprintf("n=%d/%s/%s", c.N, c.Model, c.Adversary)
	if c.Fault != "" {
		s += "/" + c.Fault
	}
	if c.Scenario != "" {
		s += "/" + c.Scenario
	}
	if c.Workload != "" {
		s += "/" + c.Workload
	}
	if c.Variant != "" {
		s += "/" + c.Variant
	}
	return s
}

// plannedRun is one expanded (cell, seed) execution.
type plannedRun struct {
	cell Cell
	seed uint64
	cfg  Config
}

// expand materializes the sweep matrix into validated configurations,
// in deterministic order: cells in axis-nesting order (n outermost,
// variants innermost), seeds within each cell.
func (s Sweep) expand() ([]plannedRun, error) {
	if len(s.Ns) == 0 {
		return nil, fmt.Errorf("fastba: sweep needs at least one system size")
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}

	// Each empty axis degenerates to a single no-option point so the
	// cross product below needs no special cases.
	axis := func(k int) []int {
		if k == 0 {
			k = 1
		}
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}

	// Distinct axis combinations can resolve to the same cell — e.g. the
	// "none" adversary forces corruptFrac to 0 whatever the CorruptFracs
	// axis says — so identical (cell, seed) points are expanded once.
	type cellSeed struct {
		cell Cell
		seed uint64
	}
	seen := make(map[cellSeed]bool)

	faultLabels := faultAxisLabels(s.Faults)
	scenarioLabels := scenarioAxisLabels(s.Scenarios)

	var runs []plannedRun
	for _, n := range s.Ns {
		for _, mi := range axis(len(s.Models)) {
			for _, ai := range axis(len(s.Adversaries)) {
				for _, ci := range axis(len(s.CorruptFracs)) {
					for _, ki := range axis(len(s.KnowFracs)) {
						for _, fi := range axis(len(s.Faults)) {
							for _, si := range axis(len(s.Scenarios)) {
								for _, wi := range axis(len(s.Workloads)) {
									for _, vi := range axis(len(s.Variants)) {
										opts := append([]Option(nil), s.Options...)
										variant, fault, scen, workload := "", "", "", ""
										if len(s.Models) > 0 {
											opts = append(opts, WithModel(s.Models[mi]))
										}
										if len(s.Adversaries) > 0 {
											opts = append(opts, WithAdversaryName(s.Adversaries[ai]))
										}
										if len(s.CorruptFracs) > 0 {
											opts = append(opts, WithCorruptFrac(s.CorruptFracs[ci]))
										}
										if len(s.KnowFracs) > 0 {
											opts = append(opts, WithKnowFrac(s.KnowFracs[ki]))
										}
										if len(s.Faults) > 0 {
											fault = faultLabels[fi]
											opts = append(opts, WithFaults(s.Faults[fi]))
										}
										if len(s.Scenarios) > 0 {
											scen = scenarioLabels[si]
											opts = append(opts, WithScenario(s.Scenarios[si]))
										}
										if len(s.Workloads) > 0 {
											workload = s.Workloads[wi].Label()
											opts = append(opts, WithWorkload(s.Workloads[wi]))
										}
										if len(s.Variants) > 0 {
											variant = s.Variants[vi].Name
											opts = append(opts, s.Variants[vi].Options...)
										}
										for _, seed := range seeds {
											cfg := NewConfig(n, append(opts, WithSeed(seed))...)
											if err := cfg.validate(); err != nil {
												return nil, fmt.Errorf("fastba: sweep cell n=%d fault=%q scenario=%q variant=%q: %w", n, fault, scen, variant, err)
											}
											cell := Cell{
												N:           cfg.n,
												Model:       cfg.model.String(),
												Adversary:   cfg.advName,
												CorruptFrac: cfg.corruptFrac,
												KnowFrac:    cfg.knowFrac,
												Fault:       fault,
												Scenario:    scen,
												Workload:    workload,
												Variant:     variant,
											}
											if seen[cellSeed{cell, seed}] {
												continue
											}
											seen[cellSeed{cell, seed}] = true
											runs = append(runs, plannedRun{cell: cell, seed: seed, cfg: cfg})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return runs, nil
}

// scenarioAxisLabels renders one distinct cell label per scenario: the
// scenario's compact Label plus its own seed, with positional suffixes
// for scenarios that would otherwise collide. The zero scenario labels
// as "none".
func scenarioAxisLabels(specs []Scenario) []string {
	labels := make([]string, len(specs))
	seen := make(map[string]int, len(specs))
	for i, sp := range specs {
		l := sp.Label()
		if l == "" {
			l = "none"
		}
		if sp.Seed != 0 {
			l = fmt.Sprintf("%s#%d", l, sp.Seed)
		}
		seen[l]++
		if n := seen[l]; n > 1 {
			l = fmt.Sprintf("%s(%d)", l, n)
		}
		labels[i] = l
	}
	return labels
}

// faultAxisLabels renders one distinct cell label per fault plan: the
// plan's compact Label plus its schedule seed, with positional suffixes
// for plans that would otherwise collide (e.g. two partition plans
// differing only in their windows). The zero plan labels as "none".
func faultAxisLabels(plans []FaultPlan) []string {
	labels := make([]string, len(plans))
	seen := make(map[string]int, len(plans))
	for i, p := range plans {
		l := p.Label()
		if l == "" {
			l = "none"
		}
		if p.Seed != 0 {
			l = fmt.Sprintf("%s#%d", l, p.Seed)
		}
		seen[l]++
		if n := seen[l]; n > 1 {
			l = fmt.Sprintf("%s(%d)", l, n)
		}
		labels[i] = l
	}
	return labels
}

// RunKind selects which entry point a suite drives.
type RunKind int

// Suite run kinds.
const (
	// KindAER sweeps RunAER (the default).
	KindAER RunKind = iota + 1
	// KindBA sweeps the full two-phase RunBA pipeline.
	KindBA
	// KindBaseline sweeps RunBaseline with Suite.Baseline.
	KindBaseline
	// KindTCP sweeps RunTCP: every run executes over real loopback
	// sockets. Time statistics are wall-clock milliseconds.
	KindTCP
	// KindLog sweeps RunLoad: every run drives a pipelined DecisionLog
	// under the cell's Workload (Sweep.Workloads) and reports committed
	// throughput and commit-latency percentiles. Time statistics are
	// wall-clock milliseconds; the cross-instance log oracles are always
	// evaluated.
	KindLog
)

// String implements fmt.Stringer.
func (k RunKind) String() string {
	switch k {
	case KindAER:
		return "aer"
	case KindBA:
		return "ba"
	case KindBaseline:
		return "baseline"
	case KindTCP:
		return "tcp"
	case KindLog:
		return "log"
	default:
		return fmt.Sprintf("RunKind(%d)", int(k))
	}
}

// Suite is a declarative experiment: a sweep matrix, the entry point to
// drive, and execution knobs. Run it with RunSuite.
type Suite struct {
	// Name labels the report.
	Name string
	// Sweep is the run matrix.
	Sweep Sweep
	// Kind selects the entry point (default KindAER).
	Kind RunKind
	// Baseline selects the comparison protocol for KindBaseline.
	Baseline Baseline
	// Workers bounds run parallelism (default GOMAXPROCS). Runs are
	// deterministic per seed regardless of scheduling, and aggregation is
	// order-independent, so Reports do not depend on Workers.
	Workers int
	// TCPTimeout bounds each KindTCP run (default 60s).
	TCPTimeout time.Duration
	// OnResult, when set, streams every finished run's record as it
	// completes (calls are serialized). Completion order is
	// non-deterministic under parallelism; the Report is not.
	OnResult func(RunRecord)
	// CheckOracles evaluates the protocol-invariant safety oracles
	// (agreement, validity, certificates — see the Oracle* constants) on
	// every successful AER, BA and TCP run and records violations in
	// RunRecord.OracleViolations. Essential for sweeps with fault
	// dimensions, where the Agreement flag alone cannot distinguish "the
	// network destroyed liveness" from "safety broke". Termination is not
	// an oracle here — it is a w.h.p. guarantee, reported as the cell's
	// agreement rate; per-seed termination checking lives in
	// CheckInvariants and the SimFuzz campaign.
	CheckOracles bool
}

// RunRecord is the outcome of one (cell, seed) execution.
type RunRecord struct {
	Cell Cell   `json:"cell"`
	Seed uint64 `json:"seed"`
	// Err is set when the run failed; failed runs are excluded from cell
	// statistics. Most failures carry zero metrics, but a timed-out TCP
	// run keeps its partial outcome (who decided, bits so far) alongside
	// Err — check Err, not the metric fields, to classify a record.
	Err string `json:"err,omitempty"`

	Agreement        bool    `json:"agreement"`
	Correct          int     `json:"correct"`
	Decided          int     `json:"decided"`
	DecidedGString   int     `json:"decidedGString"`
	DecidedOther     int     `json:"decidedOther"`
	Time             int     `json:"time"`
	LastDecision     int     `json:"lastDecision"`
	MeanBitsPerNode  float64 `json:"meanBitsPerNode"`
	MaxBitsPerNode   int64   `json:"maxBitsPerNode"`
	TotalMessages    int64   `json:"totalMessages"`
	SumCandidates    int     `json:"sumCandidates"`
	AnswersDeferred  int     `json:"answersDeferred"`
	PushesPerCorrect float64 `json:"pushesPerCorrect"`
	// CandidateCoverage is the Lemma 5 probe (AER runs only).
	CandidateCoverage float64 `json:"candidateCoverage"`
	DecisionTimes     []int   `json:"decisionTimes,omitempty"`
	// DistinctDecisions counts distinct decided values among correct
	// nodes (0 = nobody decided; > 1 = agreement violation).
	DistinctDecisions int `json:"distinctDecisions"`
	// CertDeficits counts deciders without a strict poll-list majority
	// certificate (must stay 0 — see OracleCertificates).
	CertDeficits int `json:"certDeficits,omitempty"`
	// OracleViolations holds "oracle: detail" findings when
	// Suite.CheckOracles is set; empty means every checked invariant held.
	OracleViolations []string `json:"oracleViolations,omitempty"`

	// BA-only phase metrics.
	AEKnowFrac           float64 `json:"aeKnowFrac,omitempty"`
	TotalTime            int     `json:"totalTime,omitempty"`
	TotalMeanBitsPerNode float64 `json:"totalMeanBitsPerNode,omitempty"`

	// Decision-log metrics (KindLog runs only).
	Committed         int          `json:"committed,omitempty"`
	CommittedPayloads int          `json:"committedPayloads,omitempty"`
	EntriesPerSec     float64      `json:"entriesPerSec,omitempty"`
	PayloadsPerSec    float64      `json:"payloadsPerSec,omitempty"`
	CommitP50Ms       float64      `json:"commitP50Ms,omitempty"`
	CommitP99Ms       float64      `json:"commitP99Ms,omitempty"`
	LatencyHist       []HistBucket `json:"latencyHist,omitempty"`
}

// DecidedFrac returns the fraction of correct nodes that decided gstring,
// 0 when any correct node decided something else (a validity violation).
func (r RunRecord) DecidedFrac() float64 {
	if r.Correct == 0 || r.DecidedOther > 0 {
		return 0
	}
	return float64(r.DecidedGString) / float64(r.Correct)
}

// RunSuite expands the suite's sweep into configurations and executes them
// on a pool of Workers goroutines. It returns the aggregated Report, or
// ctx.Err() as soon as the context is cancelled — in-flight AER runs
// abandon at their next cancellation probe, so mid-sweep cancellation is
// prompt even with large cells. Runs without a probe finish first: an
// in-flight baseline run (cheap — their round structure is one or two
// rounds) and a BA run's almost-everywhere phase complete before the
// cancellation is observed.
//
// Reports are deterministic: for a fixed suite, every call returns the
// same Report regardless of worker count or completion order (KindTCP wall
// times and Goroutines-model traces excepted).
func RunSuite(ctx context.Context, s Suite) (*Report, error) {
	if s.Kind == 0 {
		s.Kind = KindAER
	}
	runs, err := s.Sweep.expand()
	if err != nil {
		return nil, err
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}

	// An observer configured through Sweep.Options is one closure shared
	// by every run; serialize its calls so parallel workers do not race
	// it (events from distinct runs still interleave — see Sweep.Options).
	var obsMu sync.Mutex
	for i := range runs {
		if inner := runs[i].cfg.observer; inner != nil && workers > 1 {
			runs[i].cfg.observer = func(ev Event) {
				obsMu.Lock()
				inner(ev)
				obsMu.Unlock()
			}
		}
	}

	records := make([]RunRecord, len(runs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var emitMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				records[i] = s.runOne(ctx, runs[i])
				if s.OnResult != nil && ctx.Err() == nil {
					emitMu.Lock()
					s.OnResult(records[i])
					emitMu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range runs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return aggregate(s, runs, records), nil
}

// runOne executes a single planned run through the suite's entry point.
func (s Suite) runOne(ctx context.Context, run plannedRun) RunRecord {
	rec := RunRecord{Cell: run.cell, Seed: run.seed}
	switch s.Kind {
	case KindAER:
		res, err := RunAERContext(ctx, run.cfg)
		if err != nil {
			rec.Err = err.Error()
			return rec
		}
		rec.fillAER(res)
		if s.CheckOracles {
			o := NewOracles(run.cfg)
			o.suiteMode = true
			rec.OracleViolations = o.Report(res).Strings()
		}
	case KindBA:
		res, err := RunBAContext(ctx, run.cfg)
		if err != nil {
			rec.Err = err.Error()
			return rec
		}
		rec.fillAER(&res.AER)
		rec.AEKnowFrac = res.AE.KnowFrac
		rec.TotalTime = res.TotalTime
		rec.TotalMeanBitsPerNode = res.TotalMeanBitsPerNode
		if s.CheckOracles {
			// The a.e. precondition of the AER phase is what the committee
			// phase actually achieved, not the configured knowFrac.
			o := NewOracles(run.cfg)
			o.suiteMode = true
			o.knowFrac = res.AE.KnowFrac
			rec.OracleViolations = o.Report(&res.AER).Strings()
		}
	case KindBaseline:
		if err := ctx.Err(); err != nil {
			rec.Err = err.Error()
			return rec
		}
		res, err := RunBaseline(run.cfg, s.Baseline)
		if err != nil {
			rec.Err = err.Error()
			return rec
		}
		rec.Agreement = res.Agreement
		rec.Correct = res.Correct
		rec.Decided = res.Decided
		rec.DecidedGString = res.Decided // baselines report decisions on gstring only
		rec.Time = res.Time
		rec.MeanBitsPerNode = res.MeanBitsPerNode
		rec.MaxBitsPerNode = res.MaxBitsPerNode
		rec.TotalMessages = res.TotalMessages
	case KindTCP:
		res, err := RunTCP(ctx, run.cfg, s.TCPTimeout)
		if err != nil {
			rec.Err = err.Error()
			return rec
		}
		rec.Agreement = res.Agreement
		rec.Correct = res.Correct
		rec.Decided = res.Decided
		rec.DecidedGString = res.DecidedGString
		rec.DecidedOther = res.DecidedOther
		rec.MeanBitsPerNode = res.MeanBitsPerNode
		rec.MaxBitsPerNode = res.MaxBitsPerNode
		rec.Time = int(res.Wall.Milliseconds())
		rec.LastDecision = res.LastDecision
		rec.DistinctDecisions = res.DistinctDecisions
		rec.CertDeficits = res.CertDeficits
		if res.TimedOut {
			rec.Err = "tcp run timed out before all correct nodes decided"
		}
		if s.CheckOracles && rec.Err == "" {
			// Oracles consume the AER-shaped view of the TCP outcome.
			view := &AERResult{
				Correct: res.Correct, Decided: res.Decided,
				DecidedGString: res.DecidedGString, DecidedOther: res.DecidedOther,
				LastDecision:      res.LastDecision,
				DistinctDecisions: res.DistinctDecisions,
				CertDeficits:      res.CertDeficits,
			}
			o := NewOracles(run.cfg)
			o.suiteMode = true
			rec.OracleViolations = o.Report(view).Strings()
		}
	case KindLog:
		res, err := RunLoad(ctx, run.cfg)
		if err != nil {
			rec.Err = err.Error()
			return rec
		}
		// Agreement for a log cell means: something committed and every
		// cross-instance oracle held. The oracles run unconditionally —
		// a log sweep without safety verdicts would be meaningless.
		rec.Agreement = res.Committed > 0 && res.Oracles.OK()
		rec.Time = int(res.Elapsed.Milliseconds())
		rec.Committed = res.Committed
		rec.CommittedPayloads = res.CommittedPayloads
		rec.EntriesPerSec = res.EntriesPerSec
		rec.PayloadsPerSec = res.PayloadsPerSec
		rec.CommitP50Ms = float64(res.CommitP50) / float64(time.Millisecond)
		rec.CommitP99Ms = float64(res.CommitP99) / float64(time.Millisecond)
		rec.LatencyHist = res.Hist
		rec.OracleViolations = res.Oracles.Strings()
		if res.Err != "" {
			rec.Err = res.Err
		}
	default:
		rec.Err = fmt.Sprintf("fastba: unknown run kind %v", s.Kind)
	}
	return rec
}

func (rec *RunRecord) fillAER(res *AERResult) {
	rec.Agreement = res.Agreement
	rec.Correct = res.Correct
	rec.Decided = res.Decided
	rec.DecidedGString = res.DecidedGString
	rec.DecidedOther = res.DecidedOther
	rec.Time = res.Time
	rec.LastDecision = res.LastDecision
	rec.MeanBitsPerNode = res.MeanBitsPerNode
	rec.MaxBitsPerNode = res.MaxBitsPerNode
	rec.TotalMessages = res.TotalMessages
	rec.SumCandidates = res.SumCandidates
	rec.AnswersDeferred = res.AnswersDeferred
	rec.PushesPerCorrect = res.PushesPerCorrect
	rec.CandidateCoverage = res.CandidateCoverage
	rec.DecisionTimes = res.DecisionTimes
	rec.DistinctDecisions = res.DistinctDecisions
	rec.CertDeficits = res.CertDeficits
}
