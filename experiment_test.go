package fastba

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSeedsHelper(t *testing.T) {
	s := Seeds(3)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("Seeds(3) = %v", s)
	}
	if len(Seeds(0)) != 0 {
		t.Fatal("Seeds(0) not empty")
	}
}

func TestSweepExpansion(t *testing.T) {
	sw := Sweep{
		Ns:          []int{64, 128},
		Seeds:       []uint64{1, 2, 3},
		Models:      []Model{SyncNonRushing, Async},
		Adversaries: []string{"silent", "flood"},
		Variants: []Variant{
			{Name: "plain"},
			{Name: "relay", Options: []Option{WithDeferredRelay()}},
		},
		Options: []Option{WithCorruptFrac(0.05), WithKnowFrac(0.92)},
	}
	runs, err := sw.expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2 * 2 * 2; len(runs) != want {
		t.Fatalf("expanded %d runs, want %d", len(runs), want)
	}
	// Axis nesting: n outermost, seeds innermost.
	first := runs[0]
	if first.cell.N != 64 || first.cell.Model != "sync-nonrushing" ||
		first.cell.Adversary != "silent" || first.cell.Variant != "plain" || first.seed != 1 {
		t.Fatalf("unexpected first run: %+v", first.cell)
	}
	if runs[1].seed != 2 || runs[1].cell != first.cell {
		t.Fatalf("seeds must vary within a cell: %+v", runs[1])
	}
	// Cells resolve to the values the runs actually use.
	if first.cell.CorruptFrac != 0.05 || first.cell.KnowFrac != 0.92 {
		t.Fatalf("cell did not pick up base options: %+v", first.cell)
	}
	if first.cfg.Seed() != 1 || runs[2].cfg.Seed() != 3 {
		t.Fatal("config seeds not threaded through")
	}
}

func TestSweepExpansionDefaultsAndErrors(t *testing.T) {
	runs, err := Sweep{Ns: []int{64}}.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].seed != 1 {
		t.Fatalf("empty axes must degenerate to one default run: %+v", runs)
	}
	if runs[0].cell.Adversary != "silent" || runs[0].cell.CorruptFrac != 0.10 {
		t.Fatalf("cell must reflect NewConfig defaults: %+v", runs[0].cell)
	}

	if _, err := (Sweep{}).expand(); err == nil {
		t.Fatal("empty Ns accepted")
	}
	_, err = Sweep{Ns: []int{64}, Adversaries: []string{"no-such-strategy"}}.expand()
	if err == nil || !strings.Contains(err.Error(), "unknown adversary") {
		t.Fatalf("bad adversary not rejected: %v", err)
	}
	_, err = Sweep{Ns: []int{4}}.expand()
	if err == nil || !strings.Contains(err.Error(), "too small") {
		t.Fatalf("invalid cell config not rejected: %v", err)
	}
}

func TestSweepExpansionDedupesCollidingCells(t *testing.T) {
	// "none" forces corruptFrac to 0, so both CorruptFracs points resolve
	// to the same cell for it; the duplicate must expand only once.
	runs, err := Sweep{
		Ns:           []int{64},
		Seeds:        []uint64{1, 2},
		Adversaries:  []string{"none", "silent"},
		CorruptFracs: []float64{0.05, 0.10},
	}.expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + 2*2; len(runs)/2 != want/2 || len(runs) != 2*3 {
		t.Fatalf("expanded %d runs, want 6 (2 none + 4 silent)", len(runs))
	}
	perCell := map[Cell]int{}
	for _, r := range runs {
		perCell[r.cell]++
	}
	for cell, count := range perCell {
		if count != 2 {
			t.Fatalf("cell %v has %d runs, want one per seed", cell, count)
		}
	}
}

func suiteFixture() Suite {
	return Suite{
		Name:    "fixture",
		Workers: 4,
		Sweep: Sweep{
			Ns:     []int{64},
			Seeds:  Seeds(3),
			Models: []Model{SyncNonRushing, Async},
			Options: []Option{
				WithCorruptFrac(0.05), WithKnowFrac(0.92),
			},
		},
	}
}

func TestRunSuiteAggregates(t *testing.T) {
	rep, err := RunSuite(context.Background(), suiteFixture())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(rep.Cells))
	}
	for _, cr := range rep.Cells {
		if cr.Runs != 3 || cr.Failures != 0 || len(cr.Records) != 3 {
			t.Fatalf("cell %v: bad counts %+v", cr.Cell, cr)
		}
		if cr.AgreementRate != float64(cr.AgreeRuns)/3 {
			t.Fatalf("cell %v: agreement rate mismatch", cr.Cell)
		}
		if cr.ValidityViolations != 0 {
			t.Fatalf("cell %v: validity violation", cr.Cell)
		}
		if cr.Time.Max < cr.Time.Mean || cr.MeanBits.Mean <= 0 {
			t.Fatalf("cell %v: degenerate stats %+v", cr.Cell, cr.Time)
		}
		if cr.Record(2).Seed != 2 {
			t.Fatalf("cell %v: Record(2) lookup failed", cr.Cell)
		}
	}
	async := rep.Find(func(c Cell) bool { return c.Model == Async.String() })
	if len(async) != 1 {
		t.Fatalf("Find returned %d cells", len(async))
	}
}

func TestRunSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) []byte {
		s := suiteFixture()
		s.Workers = workers
		rep, err := RunSuite(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := render(1), render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("report depends on worker count")
	}
	if !bytes.Equal(parallel, render(8)) {
		t.Fatal("report not deterministic across calls")
	}
}

func TestRunSuiteCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	s := Suite{
		Sweep: Sweep{
			Ns:      []int{96},
			Seeds:   Seeds(64), // far more work than a cancelled sweep should do
			Options: []Option{WithCorruptFrac(0.05), WithKnowFrac(0.92)},
		},
		OnResult: func(RunRecord) {
			if seen.Add(1) == 1 {
				cancel()
			}
		},
	}
	rep, err := RunSuite(ctx, s)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled suite returned a report")
	}
	if n := seen.Load(); n >= 64 {
		t.Fatalf("sweep ran to completion (%d results) despite cancellation", n)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := NewConfig(64, WithCorruptFrac(0.05), WithKnowFrac(0.92))
	if _, err := RunAERContext(ctx, cfg); err != context.Canceled {
		t.Fatalf("RunAERContext err = %v", err)
	}
	if _, err := RunBAContext(ctx, cfg); err != context.Canceled {
		t.Fatalf("RunBAContext err = %v", err)
	}
	if _, err := RunSuite(ctx, suiteFixture()); err != context.Canceled {
		t.Fatalf("RunSuite err = %v", err)
	}
}

func TestRunSuiteBAAndBaselineKinds(t *testing.T) {
	base := Sweep{
		Ns:      []int{64},
		Seeds:   Seeds(2),
		Options: []Option{WithCorruptFrac(0.05), WithKnowFrac(0.92)},
	}
	ba, err := RunSuite(context.Background(), Suite{Kind: KindBA, Sweep: base})
	if err != nil {
		t.Fatal(err)
	}
	rec := ba.Cells[0].Records[0]
	if rec.AEKnowFrac <= 0 || rec.TotalTime <= rec.Time || rec.TotalMeanBitsPerNode <= rec.MeanBitsPerNode {
		t.Fatalf("BA record missing phase metrics: %+v", rec)
	}

	bl, err := RunSuite(context.Background(), Suite{Kind: KindBaseline, Baseline: BaselineFlood, Sweep: base})
	if err != nil {
		t.Fatal(err)
	}
	if cr := bl.Cells[0]; cr.AgreeRuns != cr.Runs || cr.MeanBits.Mean <= 0 {
		t.Fatalf("baseline cell degenerate: %+v", cr)
	}
}

func TestRunSuiteRenderAndKindStrings(t *testing.T) {
	rep, err := RunSuite(context.Background(), Suite{Name: "render", Sweep: Sweep{
		Ns: []int{64}, Options: []Option{WithCorruptFrac(0.05), WithKnowFrac(0.92)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "render (aer)") || !strings.Contains(out, "sync-nonrushing") {
		t.Fatalf("render output missing pieces:\n%s", out)
	}
	for kind, want := range map[RunKind]string{KindAER: "aer", KindBA: "ba", KindBaseline: "baseline", KindTCP: "tcp"} {
		if kind.String() != want {
			t.Fatalf("RunKind(%d).String() = %q", kind, kind.String())
		}
	}
}

func TestOptionRoundTrips(t *testing.T) {
	sched := func(n int, seed uint64) Scheduler { return NewFIFOScheduler() }
	obs := func(Event) {}
	cfg := NewConfig(64,
		WithSeed(9),
		WithModel(Async),
		WithAdversaryName("flood"),
		WithCorruptFrac(0.07),
		WithKnowFrac(0.91),
		WithMaxRounds(17),
		WithScheduler(sched),
		WithObserver(obs),
	)
	if cfg.Seed() != 9 || cfg.Model() != Async || cfg.AdversaryName() != "flood" {
		t.Fatalf("accessors: %+v", cfg)
	}
	if cfg.CorruptFrac() != 0.07 || cfg.KnowFrac() != 0.91 || cfg.MaxRounds() != 17 {
		t.Fatalf("accessors: %+v", cfg)
	}
	if cfg.schedMaker == nil || cfg.observer == nil {
		t.Fatal("scheduler/observer options not stored")
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateNewRules(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		want string
	}{
		{"know too high", NewConfig(64, WithKnowFrac(1.5)), "know fraction"},
		{"know negative", NewConfig(64, WithKnowFrac(-0.1)), "know fraction"},
		{"zero rounds", NewConfig(64, WithMaxRounds(0)), "maxRounds"},
		{"negative rounds", NewConfig(64, WithMaxRounds(-3)), "maxRounds"},
		{"scheduler needs async", NewConfig(64, WithScheduler(func(int, uint64) Scheduler { return NewFIFOScheduler() })), "WithScheduler"},
		{"unknown adversary name", NewConfig(64, WithAdversaryName("bogus")), "unknown adversary"},
		{"NaN know", NewConfig(64, WithKnowFrac(math.NaN())), "know fraction"},
		{"NaN corrupt", NewConfig(64, WithCorruptFrac(math.NaN())), "corrupt fraction"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want substring %q", err, tt.want)
			}
		})
	}
}
