package fastba

import (
	"strings"
	"testing"
)

func TestRunAERDefaultsAgree(t *testing.T) {
	res, err := RunAER(NewConfig(96, WithSeed(2), WithCorruptFrac(0.05), WithKnowFrac(0.92)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatalf("no agreement: %+v", res)
	}
	if res.Time > 8 {
		t.Fatalf("sync run took %d rounds", res.Time)
	}
	if res.GString == "" || res.MeanBitsPerNode <= 0 || res.TotalMessages <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
	if len(res.DecisionTimes) != res.Decided {
		t.Fatalf("decision times %d vs decided %d", len(res.DecisionTimes), res.Decided)
	}
}

func TestRunAERNoFaultAlwaysSucceeds(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		res, err := RunAER(NewConfig(64, WithSeed(seed), WithAdversary(AdversaryNone), WithKnowFrac(0.9)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement {
			t.Fatalf("seed %d: t = 0 run failed: %+v", seed, res)
		}
	}
}

func TestRunAERModels(t *testing.T) {
	for _, model := range []Model{SyncNonRushing, Async, AsyncAdversarial, Goroutines} {
		t.Run(model.String(), func(t *testing.T) {
			res, err := RunAER(NewConfig(64, WithSeed(3), WithModel(model),
				WithCorruptFrac(0.05), WithKnowFrac(0.92)))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Agreement {
				t.Fatalf("%v: no agreement: %+v", model, res)
			}
		})
	}
}

func TestRunAERDeterministic(t *testing.T) {
	cfg := NewConfig(64, WithSeed(9), WithModel(Async), WithCorruptFrac(0.05), WithKnowFrac(0.92))
	a, err := RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.GString != b.GString || a.MeanBitsPerNode != b.MeanBitsPerNode || a.Time != b.Time {
		t.Fatal("async run not deterministic for fixed seed")
	}
}

func TestRunAERAdversaries(t *testing.T) {
	for _, adv := range []Adversary{AdversarySilent, AdversaryFlood, AdversaryEquivocate, AdversaryCorner} {
		t.Run(adv.String(), func(t *testing.T) {
			res, err := RunAER(NewConfig(96, WithSeed(4), WithAdversary(adv),
				WithCorruptFrac(0.05), WithKnowFrac(0.92)))
			if err != nil {
				t.Fatal(err)
			}
			if res.DecidedOther > 0 {
				t.Fatalf("%v: adversary string decided by %d nodes", adv, res.DecidedOther)
			}
			if !res.Agreement {
				t.Fatalf("%v: no agreement: %+v", adv, res)
			}
		})
	}
}

func TestRunAERCornerRushingUnderSyncRushing(t *testing.T) {
	res, err := RunAER(NewConfig(128, WithSeed(11), WithModel(SyncRushing),
		WithAdversary(AdversaryCornerRushing), WithCorruptFrac(0.1), WithKnowFrac(0.9),
		WithAnswerBudget(33)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatalf("rushing corner broke agreement: %+v", res)
	}
	if res.AnswersDeferred == 0 {
		t.Fatal("rushing corner caused no deferrals")
	}
}

func TestRunBAEndToEnd(t *testing.T) {
	res, err := RunBA(NewConfig(256, WithSeed(1), WithCorruptFrac(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	if res.AE.KnowFrac < 0.75 {
		t.Fatalf("AE phase below AER precondition: %v", res.AE.KnowFrac)
	}
	if !res.AER.Agreement {
		t.Fatalf("BA failed: %+v", res.AER)
	}
	if res.GString == "" || res.GString != res.AER.GString {
		t.Fatalf("gstring mismatch: %q vs %q", res.GString, res.AER.GString)
	}
	if res.TotalMeanBitsPerNode <= res.AER.MeanBitsPerNode {
		t.Fatal("total bits do not include the AE phase")
	}
	if res.TotalTime <= res.AER.Time {
		t.Fatal("total time does not include the AE phase")
	}
}

func TestRunBAWithPoisonAdversary(t *testing.T) {
	res, err := RunBA(NewConfig(256, WithSeed(2), WithAdversary(AdversaryEquivocate), WithCorruptFrac(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	if res.AER.DecidedOther > 0 {
		t.Fatalf("adversary string decided: %+v", res.AER)
	}
	if !res.AER.Agreement {
		t.Fatalf("BA under equivocation failed: %+v", res.AER)
	}
}

func TestRunBaselines(t *testing.T) {
	cfg := NewConfig(96, WithSeed(3), WithCorruptFrac(0.05), WithKnowFrac(0.92))
	for _, b := range []Baseline{BaselineKLST11, BaselineFlood, BaselineRabin} {
		t.Run(b.String(), func(t *testing.T) {
			res, err := RunBaseline(cfg, b)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Agreement {
				t.Fatalf("%v failed: %+v", b, res)
			}
			if res.MeanBitsPerNode <= 0 {
				t.Fatalf("%v: degenerate metrics", b)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		want string
	}{
		{"tiny n", NewConfig(4), "too small"},
		{"bad model", NewConfig(64, WithModel(Model(99))), "unknown model"},
		{"bad adversary", NewConfig(64, WithAdversary(Adversary(99))), "unknown adversary"},
		{"too corrupt", NewConfig(64, WithCorruptFrac(0.5)), "corrupt fraction"},
		{"bad quorum", NewConfig(64, WithQuorumSize(-1)), "QuorumSize"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := RunAER(tt.cfg)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %v, want substring %q", err, tt.want)
			}
			if _, err := RunBA(tt.cfg); err == nil {
				t.Fatal("RunBA accepted invalid config")
			}
			if _, err := RunBaseline(tt.cfg, BaselineFlood); err == nil {
				t.Fatal("RunBaseline accepted invalid config")
			}
		})
	}
}

func TestRunBaselineUnknown(t *testing.T) {
	if _, err := RunBaseline(NewConfig(64), Baseline(42)); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestStringers(t *testing.T) {
	if SyncNonRushing.String() != "sync-nonrushing" || Model(99).String() == "" {
		t.Fatal("Model.String broken")
	}
	if AdversaryFlood.String() != "flood" || Adversary(99).String() == "" {
		t.Fatal("Adversary.String broken")
	}
	if BaselineRabin.String() != "rabin" || Baseline(99).String() == "" {
		t.Fatal("Baseline.String broken")
	}
}

func TestAdversaryNoneZeroesCorruption(t *testing.T) {
	cfg := NewConfig(64, WithCorruptFrac(0.2), WithAdversary(AdversaryNone))
	if cfg.corruptFrac != 0 {
		t.Fatal("AdversaryNone did not clear corruption")
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := NewConfig(128, WithSeed(7), WithModel(Async))
	if cfg.N() != 128 || cfg.Seed() != 7 || cfg.Model() != Async {
		t.Fatal("accessors broken")
	}
}
