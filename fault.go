package fastba

import (
	"github.com/fastba/fastba/internal/simnet"
)

// Fault injection. The paper's model (§2.1) assumes authenticated reliable
// channels; a FaultPlan deliberately steps outside that envelope — message
// loss, duplication, extra latency and reordering, link partitions with
// heal times, node crash/recover windows — so experiments can probe where
// the protocol's guarantees actually bend and the invariant Oracles can
// check which ones must never break (safety holds under every plan;
// termination is only promised for lossless ones — see OracleTermination).
//
// Plans are deterministic: every probabilistic verdict is a pure hash of
// (plan seed, sender, receiver, per-link send index), so under the
// deterministic runners a configuration plus a plan reproduces the exact
// same fault schedule on every run. Under the concurrent runtimes
// (Goroutines, TCP) the per-link send indices follow real scheduling
// order, so — like the delivery order itself — the schedule varies between
// runs and only outcome properties are comparable.

// FaultPlan is a deterministic, seed-driven fault schedule applied on the
// send path of every runtime. The zero value injects no faults. Attach one
// to a run with WithFaults, sweep them with Sweep.Faults, or sample them
// with SimFuzz.
type FaultPlan = simnet.FaultPlan

// Partition cuts the links between a node set and the rest of the system
// for a window of logical time (see FaultPlan.Partitions).
type Partition = simnet.Partition

// LinkFault is a per-directed-link latency/loss override (see
// FaultPlan.Links): fixed delay, uniform jitter, long-tail spikes, and a
// drop rate, judged per message on the same deterministic hash chain as
// the plan's global knobs. The scenario generator (WithScenario) lowers
// its latency models onto these.
type LinkFault = simnet.LinkFault

// Crash makes a node fail-silent for a window of logical time; a recovery
// models a process restart with protocol state intact (see
// FaultPlan.Crashes).
//
// A Crash window is a *transport* fault: the node's in-memory protocol
// state survives the window untouched, which models a stall or a brief
// disconnect, not a process death. Real restart scenarios — the process
// killed mid-run, its memory gone, its durable state reopened from disk
// — are a property of the decision log, not of a single run's fault
// plan: give the log a store (WithLogStore / OpenLogAt), hard-crash it
// (DecisionLog.Crash — no final fsync, kill -9 semantics), and reopen
// it from the same directory. Workload.Restarts drives that cycle under
// sustained load, LogFuzz.RestartAfter fuzzes it under fault plans, and
// OracleLogDurability (CheckLogDurability) is the invariant that holds
// across every such boundary: the recovered log extends everything that
// had committed before the crash.
type Crash = simnet.Crash

// WithFaults installs a fault plan on the run's delivery path. The plan
// applies under every model and over TCP; invalid plans (probabilities
// outside [0, 1], malformed windows, unknown nodes) are rejected by
// validation at run time. Time units for partition and crash windows
// follow the runtime's clock: synchronous rounds, asynchronous causal
// depth, or the sender's per-node delivery count over TCP.
func WithFaults(plan FaultPlan) Option {
	return optionFunc(func(c *Config) { c.faults = plan })
}

// WithDecideThreshold REPLACES the strict Poll List majority of
// Algorithm 1 with a fixed answer count — a deliberate protocol MUTATION,
// not a tuning knob. It exists to validate the invariant oracles: a run
// mutated this way (e.g. threshold 1) decides without a quorum
// certificate, splitting the system in exactly the way OracleAgreement
// and OracleCertificates must detect. The zero value keeps the paper's
// faithful rule. See TestOracleCatchesBrokenQuorum and cmd/fuzzba
// -selftest.
func WithDecideThreshold(answers int) Option {
	return optionFunc(func(c *Config) { c.params.DecideThreshold = answers })
}
