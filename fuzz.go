package fastba

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/fastba/fastba/internal/prng"
)

// The scenario fuzzer: SimFuzz samples random hostile scenarios —
// a FaultPlan crossed with a system size, timing model, Byzantine
// strategy and population shape — runs each one, and checks the
// protocol-invariant oracles on the outcome. Campaigns are fully
// deterministic: case i of a campaign is a pure function of
// (FuzzConfig.Seed, i), every sampled case runs under a deterministic
// runner, and each run is summarized into a canonical digest — so a
// failing case replays bit-for-bit from its FuzzCase alone, and a fixed
// campaign seed reproduces identical digests across invocations (the
// regression tests lock this).
//
// When a case violates an oracle, the fuzzer shrinks it — greedily
// clearing and simplifying fault-plan dimensions while the violation
// persists — and persists the shrunk reproducer as JSON, ready for
// testdata/fuzz_corpus. The corpus is replayed by cmd/fuzzba (and CI) as
// a regression suite: every committed case must pass its oracles.

// FuzzCase is one fully-specified, reproducible fuzz scenario. It is the
// JSON corpus format of cmd/fuzzba.
type FuzzCase struct {
	// N is the system size.
	N int `json:"n"`
	// Seed is the run's master seed.
	Seed uint64 `json:"seed"`
	// Model is the timing model's String name. Deterministic models only:
	// the fuzzer needs bit-for-bit replays. Ignored for pipelined-log
	// cases (Log != nil), which run on the fabric runtime.
	Model string `json:"model,omitempty"`
	// Adversary is the Byzantine strategy's registry name. Pipelined-log
	// cases support only the log's fail-silent corruption model.
	Adversary string `json:"adversary,omitempty"`
	// CorruptFrac and KnowFrac shape the population.
	CorruptFrac float64 `json:"corruptFrac"`
	KnowFrac    float64 `json:"knowFrac"`
	// Plan is the fault schedule under test.
	Plan FaultPlan `json:"plan"`
	// Scenario, when set, runs the case over a network scenario (see
	// WithScenario): topology + latency/loss model + gossip relay, with
	// the adaptive adversaries admissible as Adversary. Single-shot cases
	// only.
	Scenario *Scenario `json:"scenario,omitempty"`
	// Log, when set, makes this a pipelined decision-log case: a short
	// log with deterministic batches replayed under the plan, judged by
	// the cross-instance oracles.
	Log *LogFuzz `json:"log,omitempty"`
	// Chaos, when set (log cases only), runs the log over the TCP runtime
	// with a live-socket chaos plan severing its real connections. Safety
	// oracles must hold; termination is skipped (chaos is lossy), and the
	// digest basis is the deterministic strike schedule plus the verdicts —
	// never entry counts, which real sockets under chaos do not reproduce.
	Chaos *ChaosFuzz `json:"chaos,omitempty"`
	// Note is free-form provenance ("sampled by campaign seed 7, case 42";
	// "shrunk from ...").
	Note string `json:"note,omitempty"`
}

// LogFuzz shapes a pipelined decision-log fuzz case.
type LogFuzz struct {
	// Entries is the number of deterministic batches appended.
	Entries int `json:"entries"`
	// Depth is the instance pipelining depth.
	Depth int `json:"depth"`
	// Batch is the payload count per batch; PayloadBytes sizes each
	// payload.
	Batch        int `json:"batch"`
	PayloadBytes int `json:"payloadBytes"`
	// RestartAfter, when positive (and < Entries), makes this a durable
	// restart-under-faults case: the log runs with a store, the first
	// RestartAfter entries are appended and awaited, the log hard-crashes
	// and reopens from its store directory (checked by the log-durability
	// oracle), and the remaining entries are appended to the recovered
	// log.
	RestartAfter int `json:"restartAfter,omitempty"`
}

// ChaosFuzz is the corpus form of a ChaosPlan: the live-socket chaos
// dimension of a log fuzz case.
type ChaosFuzz struct {
	// Seed keys the deterministic strike schedule (ChaosSchedule).
	Seed uint64 `json:"seed"`
	// Strikes bounds landed strikes; 0 with Sweep runs until every link
	// has been severed once.
	Strikes int `json:"strikes,omitempty"`
	// IntervalMs is the strike cadence in milliseconds (0: the plan
	// default).
	IntervalMs int `json:"intervalMs,omitempty"`
	// Kinds restricts the strike kinds ("close", "halfclose",
	// "blackhole"); empty allows all.
	Kinds []string `json:"kinds,omitempty"`
	// Sweep prioritizes live not-yet-severed links until full coverage.
	Sweep bool `json:"sweep,omitempty"`
}

// plan materializes the corpus form into a runnable ChaosPlan.
func (cf ChaosFuzz) plan() (ChaosPlan, error) {
	p := ChaosPlan{Seed: cf.Seed, Strikes: cf.Strikes, Sweep: cf.Sweep}
	if cf.IntervalMs > 0 {
		p.Interval = time.Duration(cf.IntervalMs) * time.Millisecond
	}
	for _, name := range cf.Kinds {
		k, err := ParseChaosKind(name)
		if err != nil {
			return ChaosPlan{}, err
		}
		p.Kinds = append(p.Kinds, k)
	}
	return p, nil
}

// String renders a compact case label.
func (c FuzzCase) String() string {
	fault := c.Plan.Label()
	if fault == "" {
		fault = "none"
	}
	if c.Log != nil {
		shape := fmt.Sprintf("e=%d,d=%d,b=%d", c.Log.Entries, c.Log.Depth, c.Log.Batch)
		if c.Log.RestartAfter > 0 {
			shape += fmt.Sprintf(",r@%d", c.Log.RestartAfter)
		}
		if c.Chaos != nil {
			shape += fmt.Sprintf(",chaos=%d", c.Chaos.Seed)
		}
		return fmt.Sprintf("n=%d seed=%d log[%s] corrupt=%.2f know=%.2f faults=%s",
			c.N, c.Seed, shape, c.CorruptFrac, c.KnowFrac, fault)
	}
	label := fmt.Sprintf("n=%d seed=%d %s/%s corrupt=%.2f know=%.2f faults=%s",
		c.N, c.Seed, c.Model, c.Adversary, c.CorruptFrac, c.KnowFrac, fault)
	if c.Scenario != nil {
		label += " scenario=" + c.Scenario.Label()
	}
	return label
}

// config materializes the case into a validated-on-use Config.
func (c FuzzCase) config() (Config, error) {
	model, err := ParseModel(c.Model)
	if err != nil {
		return Config{}, err
	}
	if model == Goroutines {
		return Config{}, fmt.Errorf("fastba: fuzz cases require a deterministic model, have %v", model)
	}
	opts := []Option{
		WithSeed(c.Seed),
		WithModel(model),
		WithAdversaryName(c.Adversary),
		WithCorruptFrac(c.CorruptFrac),
		WithKnowFrac(c.KnowFrac),
		WithFaults(c.Plan),
	}
	if c.Scenario != nil {
		opts = append(opts, WithScenario(*c.Scenario))
	}
	return NewConfig(c.N, opts...), nil
}

// FuzzRun is the outcome of one executed case.
type FuzzRun struct {
	Case FuzzCase `json:"case"`
	// Digest canonically summarizes the run (decisions, traffic, oracle
	// verdicts). Equal cases produce equal digests — the reproducibility
	// contract the regression tests lock.
	Digest string `json:"digest"`
	// Report is the oracle verdict.
	Report OracleReport `json:"report"`
	// Result is the underlying run result (not serialized).
	Result *AERResult `json:"-"`
}

// ReplayCase executes one fuzz case — oracles wired into the run through
// the Observer stream plus the end-state check — and returns the digested
// outcome. It is the unit the fuzzer, the corpus replayer and the
// shrinker all share. Pipelined-log cases replay through the decision log
// instead of a single-shot run.
func ReplayCase(c FuzzCase) (FuzzRun, error) {
	if c.Chaos != nil && c.Log == nil {
		return FuzzRun{}, fmt.Errorf("fastba: chaos fuzz dimension requires a log case (single-shot runs have no long-lived connections)")
	}
	if c.Log != nil {
		return replayLogCase(c)
	}
	cfg, err := c.config()
	if err != nil {
		return FuzzRun{}, err
	}
	oracles := NewOracles(cfg)
	cfg.observer = oracles.Observer()
	res, err := RunAER(cfg)
	if err != nil {
		return FuzzRun{}, err
	}
	report := oracles.Report(res)
	return FuzzRun{Case: c, Digest: runDigest(res, report), Report: report, Result: res}, nil
}

// replayLogCase executes a pipelined decision-log case: Entries
// deterministic batches appended over the fabric runtime at the case's
// depth, under the case's fault plan and corruption, judged by the
// cross-instance oracles plus a termination check (all planned entries
// committed — applicable, like the single-shot termination oracle, only
// to lossless plans). The committed log and the verdicts are digested;
// both are pure functions of the case for lossless plans, because the
// committed (seq, value) sequence does not depend on delivery order.
func replayLogCase(c FuzzCase) (FuzzRun, error) {
	lf := *c.Log
	if lf.Entries <= 0 || lf.Depth <= 0 || lf.Batch <= 0 || lf.PayloadBytes <= 0 {
		return FuzzRun{}, fmt.Errorf("fastba: malformed log fuzz case: %+v", lf)
	}
	if c.Chaos != nil {
		if lf.RestartAfter > 0 {
			return FuzzRun{}, fmt.Errorf("fastba: log fuzz case mixes chaos with restart — one hostile dimension per case")
		}
		return replayChaosLogCase(c)
	}
	if lf.RestartAfter > 0 {
		return replayLogRestartCase(c)
	}
	cfg, err := logFuzzConfig(c, lf)
	if err != nil {
		return FuzzRun{}, err
	}
	ctx := context.Background()
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		return FuzzRun{}, err
	}
	var appendErr error
	for k := 0; k < lf.Entries; k++ {
		if _, err := log.Append(ctx, logFuzzBatch(c.Seed, lf, k)); err != nil {
			appendErr = err
			break
		}
	}
	closeErr := log.Close()
	entries := log.Committed()
	report := CheckLogInvariants(entries, cfg.knowFrac)
	logTerminationCheck(&report, c, lf, entries, closeErr, appendErr)
	return FuzzRun{Case: c, Digest: logDigest(entries, report), Report: report}, nil
}

// replayLogRestartCase executes a durable restart-under-faults log case:
// the log runs with a write-ahead store in a temporary directory, the
// first RestartAfter entries are appended and awaited (pinning the
// committed — and therefore persisted — frontier deterministically),
// the log hard-crashes (no final fsync) and reopens from the store, the
// recovered prefix is judged by the log-durability oracle, and the
// remaining entries are appended to the recovered log. The committed
// (seq, value) sequence is byte-identical to the restart-free case's for
// lossless plans — recovery must be invisible in the digest basis.
func replayLogRestartCase(c FuzzCase) (FuzzRun, error) {
	lf := *c.Log
	if lf.RestartAfter >= lf.Entries {
		return FuzzRun{}, fmt.Errorf("fastba: log fuzz case restarts after entry %d of %d — nothing left to append", lf.RestartAfter, lf.Entries)
	}
	dir, err := os.MkdirTemp("", "bastore-fuzz-*")
	if err != nil {
		return FuzzRun{}, err
	}
	defer os.RemoveAll(dir)
	cfg, err := logFuzzConfig(c, lf, WithLogStore(dir))
	if err != nil {
		return FuzzRun{}, err
	}
	ctx := context.Background()
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		return FuzzRun{}, err
	}
	var appendErr error
	var lastSeq uint64
	for k := 0; k < lf.RestartAfter; k++ {
		seq, err := log.Append(ctx, logFuzzBatch(c.Seed, lf, k))
		if err != nil {
			appendErr = err
			break
		}
		lastSeq = seq
	}
	if appendErr == nil {
		// Await the whole first phase so the crash frontier is exactly
		// RestartAfter — the determinism the digest contract needs.
		if _, err := log.WaitSeq(ctx, lastSeq); err != nil {
			appendErr = err
		}
	}
	before := log.Committed()
	log.Crash()
	log, err = OpenLog(ctx, cfg)
	if err != nil {
		return FuzzRun{}, fmt.Errorf("fastba: log fuzz reopen after crash: %w", err)
	}
	durability := CheckLogDurability(before, log.Committed())
	if appendErr == nil {
		for k := lf.RestartAfter; k < lf.Entries; k++ {
			if _, err := log.Append(ctx, logFuzzBatch(c.Seed, lf, k)); err != nil {
				appendErr = err
				break
			}
		}
	}
	closeErr := log.Close()
	entries := log.Committed()
	report := CheckLogInvariants(entries, cfg.knowFrac)
	report.Checked = append(report.Checked, OracleLogDurability)
	report.Violations = append(report.Violations, durability.Violations...)
	logTerminationCheck(&report, c, lf, entries, closeErr, appendErr)
	sort.Strings(report.Checked)
	return FuzzRun{Case: c, Digest: logDigest(entries, report), Report: report}, nil
}

// replayChaosLogCase executes a chaos log case: the same deterministic
// batches, appended over the TCP runtime while the chaos controller
// severs the cluster's real connections on the case's seeded schedule.
// The supervisors must heal the mesh (aggressive redial, fast heartbeat)
// and the safety oracles must hold on whatever committed; termination is
// skipped — frames buffered in a severed socket die with it, so entry
// counts are not reproducible and stay out of the digest. What IS
// reproducible — the strike schedule and the safety verdicts — is the
// digest basis, locked by the determinism test and the corpus.
func replayChaosLogCase(c FuzzCase) (FuzzRun, error) {
	lf := *c.Log
	plan, err := c.Chaos.plan()
	if err != nil {
		return FuzzRun{}, err
	}
	cfg, err := logFuzzConfig(c, lf,
		WithLogRuntime(RuntimeTCP),
		// Commit below full attendance: a node behind a blackholed link
		// must not stall the head instance for the detector's whole window.
		WithLogCommitFraction(0.7),
		// Heal fast at fuzz scale — and never give up: every severed link
		// must come back, or the case wedges until the instance timeout.
		WithReconnect(ReconnectPolicy{Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, MaxAttempts: -1}),
		WithHeartbeat(HeartbeatPolicy{Every: 20 * time.Millisecond, SuspectAfter: 80 * time.Millisecond}),
		WithChaos(plan),
	)
	if err != nil {
		return FuzzRun{}, err
	}
	ctx := context.Background()
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		return FuzzRun{}, err
	}
	// Append and close errors are liveness outcomes, which chaos is
	// allowed to destroy; the oracles judge whatever committed.
	for k := 0; k < lf.Entries; k++ {
		if _, err := log.Append(ctx, logFuzzBatch(c.Seed, lf, k)); err != nil {
			break
		}
	}
	log.Close()
	entries := log.Committed()
	report := CheckLogInvariants(entries, cfg.knowFrac)
	if report.Skipped == nil {
		report.Skipped = map[string]string{}
	}
	report.Skipped[OracleTermination] = "chaos plan severs live sockets (lossy by construction)"
	return FuzzRun{Case: c, Digest: chaosDigest(c, plan, report), Report: report}, nil
}

// chaosDigest summarizes a chaos log case: the deterministic strike
// schedule and the oracle verdicts. Committed entry counts are excluded
// by design — real sockets under chaos do not reproduce them — so equal
// digests across replays mean "same schedule, same safety verdict".
func chaosDigest(c FuzzCase, plan ChaosPlan, report OracleReport) string {
	h := sha256.New()
	fmt.Fprintf(h, "chaos seed=%d sweep=%t strikes=%d\n", plan.Seed, plan.Sweep, plan.Strikes)
	for _, s := range ChaosSchedule(plan, c.N) {
		fmt.Fprintf(h, "strike kind=%s from=%d to=%d\n", s.Kind, s.From, s.To)
	}
	fmt.Fprintf(h, "oracles checked=%v violations=%v\n", report.Checked, report.Strings())
	return fmt.Sprintf("%x", h.Sum(nil))
}

// logFuzzConfig builds the validated Config a pipelined-log case runs
// under.
func logFuzzConfig(c FuzzCase, lf LogFuzz, extra ...Option) (Config, error) {
	opts := append([]Option{
		WithSeed(c.Seed),
		WithCorruptFrac(c.CorruptFrac),
		WithKnowFrac(c.KnowFrac),
		WithFaults(c.Plan),
		WithLogDepth(lf.Depth),
		WithLogInstanceTimeout(30 * time.Second),
	}, extra...)
	cfg := NewConfig(c.N, opts...)
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// logFuzzBatch derives batch k of a log case — a pure function of
// (seed, k), identical across restarts and runtimes.
func logFuzzBatch(seed uint64, lf LogFuzz, k int) [][]byte {
	batch := make([][]byte, lf.Batch)
	for i := range batch {
		src := prng.New(prng.DeriveKey(seed, "fuzz/log/payload", uint64(k)<<16|uint64(i)))
		p := make([]byte, lf.PayloadBytes)
		for j := range p {
			p[j] = byte(src.Uint64())
		}
		batch[i] = p
	}
	return batch
}

// logTerminationCheck applies the log termination oracle (lossless plans
// only) to a finished log-case report, keeping Checked sorted.
func logTerminationCheck(report *OracleReport, c FuzzCase, lf LogFuzz, entries []LogEntry, closeErr, appendErr error) {
	if c.Plan.Lossless() {
		report.Checked = append(report.Checked, OracleTermination)
		sort.Strings(report.Checked)
		if len(entries) < lf.Entries {
			detail := fmt.Sprintf("%d of %d planned entries committed under a lossless plan", len(entries), lf.Entries)
			if closeErr != nil {
				detail += ": " + closeErr.Error()
			} else if appendErr != nil {
				detail += ": " + appendErr.Error()
			}
			report.Violations = append(report.Violations, Violation{Oracle: OracleTermination, Detail: detail})
		}
	} else {
		if report.Skipped == nil {
			report.Skipped = map[string]string{}
		}
		report.Skipped[OracleTermination] = "fault plan can destroy messages (drops, partitions or crashes)"
	}
}

// logDigest canonically summarizes a committed log and its verdicts.
// Only order-independent fields enter: the committed (seq, value, payload
// count) sequence and the oracle verdicts — never latencies or delivery
// counts, which the concurrent runtime does not reproduce.
func logDigest(entries []LogEntry, report OracleReport) string {
	h := sha256.New()
	fmt.Fprintf(h, "committed=%d\n", len(entries))
	for _, e := range entries {
		fmt.Fprintf(h, "seq=%d value=%s payloads=%d distinct=%d certdef=%d proposal=%t\n",
			e.Seq, e.Value, e.PayloadCount, e.DistinctValues, e.CertDeficits, e.MatchesProposal)
	}
	fmt.Fprintf(h, "oracles checked=%v violations=%v\n", report.Checked, report.Strings())
	return fmt.Sprintf("%x", h.Sum(nil))
}

// runDigest renders the canonical summary of a run and hashes it. Every
// field written here is deterministic under the deterministic runners.
func runDigest(res *AERResult, report OracleReport) string {
	h := sha256.New()
	fmt.Fprintf(h, "gstring=%s correct=%d decided=%d onG=%d other=%d distinct=%d certdef=%d\n",
		res.GString, res.Correct, res.Decided, res.DecidedGString, res.DecidedOther,
		res.DistinctDecisions, res.CertDeficits)
	fmt.Fprintf(h, "time=%d last=%d msgs=%d meanBits=%.6f maxBits=%d deferred=%d\n",
		res.Time, res.LastDecision, res.TotalMessages, res.MeanBitsPerNode,
		res.MaxBitsPerNode, res.AnswersDeferred)
	kinds := make([]string, 0, len(res.MessagesByKind))
	for k := range res.MessagesByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(h, "kind %s=%d\n", k, res.MessagesByKind[k])
	}
	fmt.Fprintf(h, "decisions=%v\n", res.DecisionTimes)
	fmt.Fprintf(h, "oracles checked=%v violations=%v\n", report.Checked, report.Strings())
	return fmt.Sprintf("%x", h.Sum(nil))
}

// FuzzFailure is a persisted oracle violation: the shrunk reproducer, the
// originally sampled case it came from, and the findings.
type FuzzFailure struct {
	// Case is the shrunk (minimal found) reproducer.
	Case FuzzCase `json:"case"`
	// Original is the case as sampled, before shrinking.
	Original FuzzCase `json:"original"`
	// Violations are the shrunk case's oracle findings.
	Violations []Violation `json:"violations"`
	// Digest is the shrunk case's run digest.
	Digest string `json:"digest"`
}

// FuzzConfig parameterizes a SimFuzz campaign. The zero value of every
// field has a usable default; at least one of Runs and Budget must bound
// the campaign.
type FuzzConfig struct {
	// Seed keys the campaign: case i is a pure function of (Seed, i).
	Seed uint64
	// Runs bounds the number of sampled cases (0 = unbounded, Budget
	// bounds instead).
	Runs int
	// Budget bounds the campaign's wall-clock time (0 = unbounded, Runs
	// bounds instead). Cases run in deterministic order, so a larger
	// budget strictly extends a smaller one's coverage.
	Budget time.Duration
	// Ns are the candidate system sizes (default 16, 24, 32).
	Ns []int
	// Models are the candidate timing models — deterministic ones only
	// (default all four: sync non-rushing/rushing, async, async-adversarial).
	Models []Model
	// Adversaries are the candidate strategy registry names (default: all
	// built-ins including the *-then-silent fault flavours).
	Adversaries []string
	// KnowFracs are the candidate knowledge fractions (default 0.85, 1.0).
	KnowFracs []float64
	// CorruptFracs are the candidate corruption fractions (default 0,
	// 0.10, 0.20).
	CorruptFracs []float64
	// LogFrac is the fraction of sampled cases drawn from the
	// pipelined-log family (default 0 — off, keeping legacy campaign
	// digests stable): short decision logs (2–5 entries, depth 1–4) on
	// the fabric runtime with fail-silent corruption and lossless fault
	// plans (duplication/delay — the envelope in which the committed log
	// is a pure function of the case), judged by the cross-instance
	// oracles.
	LogFrac float64
	// RestartFrac is the fraction of log-family cases that run durable
	// with a mid-log crash and restart (LogFuzz.RestartAfter; default 0 —
	// off, keeping existing campaign digests stable). Only meaningful
	// when LogFrac > 0.
	RestartFrac float64
	// ChaosFrac is the fraction of non-restart log-family cases that run
	// over the TCP runtime under a seeded live-socket chaos plan (default
	// 0 — off, keeping existing campaign digests stable). Only meaningful
	// when LogFrac > 0.
	ChaosFrac float64
	// ScenarioFrac is the fraction of single-shot cases that run over a
	// sampled network scenario — seeded topology (ring/WS, optional Zipf
	// load), latency/loss model, gossip relay, and occasionally an
	// adaptive adversary (default 0 — off, keeping existing campaign
	// digests stable).
	ScenarioFrac float64
	// PersistDir, when set, receives one JSON FuzzFailure file per failing
	// case (after shrinking), named fail_<digest prefix>.json.
	PersistDir string
	// OnRun, when set, observes every executed case (sampled campaign
	// cases only, not shrink replays), in order.
	OnRun func(FuzzRun)
}

func (fc *FuzzConfig) defaults() error {
	if fc.Runs <= 0 && fc.Budget <= 0 {
		return fmt.Errorf("fastba: fuzz campaign needs a Runs or Budget bound")
	}
	if len(fc.Ns) == 0 {
		fc.Ns = []int{16, 24, 32}
	}
	if len(fc.Models) == 0 {
		fc.Models = []Model{SyncNonRushing, SyncRushing, Async, AsyncAdversarial}
	}
	for _, m := range fc.Models {
		if m == Goroutines {
			return fmt.Errorf("fastba: fuzz campaigns require deterministic models, have %v", m)
		}
	}
	if len(fc.Adversaries) == 0 {
		fc.Adversaries = []string{
			"none", "silent", "flood", "equivocate", "corner", "corner-rushing",
			"flood-then-silent", "equivocate-then-silent",
		}
	}
	if len(fc.KnowFracs) == 0 {
		fc.KnowFracs = []float64{0.85, 1.0}
	}
	if len(fc.CorruptFracs) == 0 {
		fc.CorruptFracs = []float64{0, 0.10, 0.20}
	}
	if fc.LogFrac < 0 || fc.LogFrac > 1 {
		return fmt.Errorf("fastba: fuzz LogFrac %v outside [0, 1]", fc.LogFrac)
	}
	if fc.RestartFrac < 0 || fc.RestartFrac > 1 {
		return fmt.Errorf("fastba: fuzz RestartFrac %v outside [0, 1]", fc.RestartFrac)
	}
	if fc.ChaosFrac < 0 || fc.ChaosFrac > 1 {
		return fmt.Errorf("fastba: fuzz ChaosFrac %v outside [0, 1]", fc.ChaosFrac)
	}
	if fc.ScenarioFrac < 0 || fc.ScenarioFrac > 1 {
		return fmt.Errorf("fastba: fuzz ScenarioFrac %v outside [0, 1]", fc.ScenarioFrac)
	}
	return nil
}

// FuzzResult summarizes a campaign.
type FuzzResult struct {
	// Executed counts the sampled cases that ran.
	Executed int `json:"executed"`
	// Failures holds one shrunk reproducer per oracle-violating case.
	Failures []FuzzFailure `json:"failures,omitempty"`
	// ProbabilisticMisses counts termination-only findings whose
	// fault-free twin (same case, zero plan) also fails to fully decide:
	// the protocol's guarantees are w.h.p., so at fuzzing sizes some seeds
	// legitimately leave nodes undecided even on a clean network. Those
	// are not fault-injection findings and are not treated as failures —
	// only faults that destroy liveness a clean run had are. Safety
	// violations are never downgraded this way.
	ProbabilisticMisses int `json:"probabilisticMisses,omitempty"`
	// Persisted lists the failure files written to PersistDir.
	Persisted []string `json:"persisted,omitempty"`
}

// OK reports whether the campaign found no violation.
func (r *FuzzResult) OK() bool { return len(r.Failures) == 0 }

// SimFuzz runs a fuzz campaign: sample case i from (Seed, i), execute it
// under its deterministic runner with the oracles attached, and on any
// violation shrink the case to a minimal reproducer and (when PersistDir
// is set) persist it. The campaign stops at the Runs bound, the Budget
// bound, or ctx cancellation — whichever comes first; the error reports
// infrastructure problems (invalid campaign, unwritable PersistDir), not
// oracle findings, which land in FuzzResult.Failures.
func SimFuzz(ctx context.Context, fc FuzzConfig) (*FuzzResult, error) {
	if err := fc.defaults(); err != nil {
		return nil, err
	}
	res := &FuzzResult{}
	var deadline time.Time
	if fc.Budget > 0 {
		deadline = time.Now().Add(fc.Budget)
	}
	for i := 0; ; i++ {
		if fc.Runs > 0 && i >= fc.Runs {
			break
		}
		if fc.Budget > 0 && !time.Now().Before(deadline) {
			break
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		c := sampleCase(fc, i)
		run, err := ReplayCase(c)
		if err != nil {
			return res, fmt.Errorf("fastba: fuzz case %d (%s): %w", i, c, err)
		}
		res.Executed++
		if fc.OnRun != nil {
			fc.OnRun(run)
		}
		if run.Report.OK() {
			continue
		}
		if terminationOnly(run.Report) {
			twin := c
			twin.Plan = FaultPlan{}
			twinRun, err := ReplayCase(twin)
			if err == nil && !twinRun.Report.OK() && terminationOnly(twinRun.Report) {
				res.ProbabilisticMisses++
				continue
			}
		}
		shrunk, shrunkRun := shrinkCase(c, run)
		failure := FuzzFailure{
			Case:       shrunk,
			Original:   c,
			Violations: shrunkRun.Report.Violations,
			Digest:     shrunkRun.Digest,
		}
		res.Failures = append(res.Failures, failure)
		if fc.PersistDir != "" {
			path, err := persistFailure(fc.PersistDir, failure)
			if err != nil {
				return res, err
			}
			res.Persisted = append(res.Persisted, path)
		}
	}
	return res, nil
}

// terminationOnly reports whether every violation in the report is a
// termination finding.
func terminationOnly(rep OracleReport) bool {
	if len(rep.Violations) == 0 {
		return false
	}
	for _, v := range rep.Violations {
		if v.Oracle != OracleTermination {
			return false
		}
	}
	return true
}

// sampleCase derives case i of the campaign — a pure function of
// (fc.Seed, i), independent of every other case.
func sampleCase(fc FuzzConfig, i int) FuzzCase {
	src := prng.New(prng.DeriveKey(fc.Seed, "simfuzz/case", uint64(i)))
	n := fc.Ns[src.Intn(len(fc.Ns))]
	if fc.LogFrac > 0 && src.Float64() < fc.LogFrac {
		return sampleLogCase(fc, src, n, i)
	}
	// The ScenarioFrac draw only happens when the family is enabled, so
	// ScenarioFrac 0 campaigns consume exactly the historical PRNG stream
	// and keep sampling the same cases.
	if fc.ScenarioFrac > 0 && src.Float64() < fc.ScenarioFrac {
		return sampleScenarioCase(fc, src, n, i)
	}
	c := FuzzCase{
		N:           n,
		Seed:        src.Uint64()>>1 | 1, // non-zero run seed
		Model:       fc.Models[src.Intn(len(fc.Models))].String(),
		Adversary:   fc.Adversaries[src.Intn(len(fc.Adversaries))],
		CorruptFrac: fc.CorruptFracs[src.Intn(len(fc.CorruptFracs))],
		KnowFrac:    fc.KnowFracs[src.Intn(len(fc.KnowFracs))],
		Plan:        samplePlan(src, n),
		Note:        fmt.Sprintf("sampled: campaign seed %d, case %d", fc.Seed, i),
	}
	return c
}

// sampleLogCase draws a pipelined-log case: short logs at depth 1–4 with
// small deterministic batches, fail-silent corruption, full knowledge and
// a lossless plan — the envelope in which replay digests are exact.
func sampleLogCase(fc FuzzConfig, src *prng.Source, n, i int) FuzzCase {
	plan := FaultPlan{Seed: src.Uint64()}
	if src.Float64() < 0.6 {
		plan.DupProb = src.Float64() * 0.3
	}
	if src.Float64() < 0.6 {
		plan.DelayProb = src.Float64() * 0.5
		plan.MaxDelay = 1 + src.Intn(6)
	}
	corrupt := 0.0
	if src.Bool() {
		corrupt = 0.1
	}
	seed := src.Uint64()>>1 | 1
	lf := &LogFuzz{
		Entries:      2 + src.Intn(4),
		Depth:        1 + src.Intn(4),
		Batch:        1 + src.Intn(3),
		PayloadBytes: 8 << src.Intn(4),
	}
	note := fmt.Sprintf("sampled: campaign seed %d, case %d (log family)", fc.Seed, i)
	// The RestartFrac draw only happens when the family is enabled, so
	// RestartFrac 0 campaigns consume exactly the historical PRNG stream
	// and keep sampling the same cases.
	if fc.RestartFrac > 0 && src.Float64() < fc.RestartFrac {
		lf.RestartAfter = 1 + src.Intn(lf.Entries-1)
		note = fmt.Sprintf("sampled: campaign seed %d, case %d (log restart family)", fc.Seed, i)
	}
	// Same guard for the chaos draw: ChaosFrac 0 campaigns keep the
	// historical stream untouched. Chaos and restart stay disjoint — one
	// hostile dimension per case keeps shrinking meaningful.
	var chaos *ChaosFuzz
	if fc.ChaosFrac > 0 && lf.RestartAfter == 0 && src.Float64() < fc.ChaosFrac {
		chaos = &ChaosFuzz{
			Seed:       src.Uint64(),
			Strikes:    1 + src.Intn(8),
			IntervalMs: 5 + src.Intn(16),
		}
		note = fmt.Sprintf("sampled: campaign seed %d, case %d (log chaos family)", fc.Seed, i)
	}
	return FuzzCase{
		N:           n,
		Seed:        seed,
		CorruptFrac: corrupt,
		KnowFrac:    1,
		Plan:        plan,
		Log:         lf,
		Chaos:       chaos,
		Note:        note,
	}
}

// sampleScenarioCase draws a single-shot case over a network scenario:
// a ring or Watts–Strogatz topology (optionally Zipf-loaded), a latency
// and/or loss model, the gossip relay, and — for a third of the cases —
// an adaptive adversary triggered early in the run. Fault plans stay in
// the lossless family (duplication/delay); loss enters through the
// scenario's own link model, where the oracles know to skip termination.
func sampleScenarioCase(fc FuzzConfig, src *prng.Source, n, i int) FuzzCase {
	plan := FaultPlan{Seed: src.Uint64()}
	if src.Float64() < 0.5 {
		plan.DupProb = src.Float64() * 0.3
	}
	if src.Float64() < 0.5 {
		plan.DelayProb = src.Float64() * 0.5
		plan.MaxDelay = 1 + src.Intn(4)
	}
	sc := Scenario{}
	if src.Bool() {
		sc.Topology = TopologyWS
		sc.Degree = 4 + 2*src.Intn(2)
		sc.Rewire = src.Float64() * 0.5
	} else {
		sc.Topology = TopologyRing
	}
	if src.Bool() {
		sc.ZipfS = 0.5 + src.Float64()
	}
	switch src.Intn(4) {
	case 1:
		sc.Latency = LatencyFixed
		sc.BaseDelay = 1 + src.Intn(3)
	case 2:
		sc.Latency = LatencyUniform
		sc.BaseDelay = src.Intn(2)
		sc.MaxDelay = sc.BaseDelay + 1 + src.Intn(4)
	case 3:
		sc.Latency = LatencyLongTail
		sc.BaseDelay = src.Intn(2)
		sc.TailProb = src.Float64() * 0.2
		sc.TailDelay = 2 + src.Intn(6)
	}
	if src.Float64() < 0.3 {
		sc.Loss = src.Float64() * 0.05
	}
	sc.Fanout = 2 + src.Intn(2)
	adversary := fc.Adversaries[src.Intn(len(fc.Adversaries))]
	corrupt := fc.CorruptFracs[src.Intn(len(fc.CorruptFracs))]
	if src.Float64() < 1.0/3 {
		adversary = []string{
			AdversaryAdaptiveDegree, AdversaryAdaptiveTraffic, AdversaryAdaptiveOblivious,
		}[src.Intn(3)]
		corrupt = 0.1
		sc.TriggerAt = src.Intn(5)
	}
	return FuzzCase{
		N:           n,
		Seed:        src.Uint64()>>1 | 1,
		Model:       fc.Models[src.Intn(len(fc.Models))].String(),
		Adversary:   adversary,
		CorruptFrac: corrupt,
		KnowFrac:    fc.KnowFracs[src.Intn(len(fc.KnowFracs))],
		Plan:        plan,
		Scenario:    &sc,
		Note:        fmt.Sprintf("sampled: campaign seed %d, case %d (scenario family)", fc.Seed, i),
	}
}

// samplePlan draws a random fault plan. Roughly a third of the plans are
// lossless (delay/duplicate/reorder only) so the termination oracle gets
// real coverage; the rest mix message loss, partitions and crashes.
func samplePlan(src *prng.Source, n int) FaultPlan {
	p := FaultPlan{Seed: src.Uint64()}
	if src.Float64() < 0.5 {
		p.DupProb = src.Float64() * 0.3
	}
	if src.Float64() < 0.6 {
		p.DelayProb = src.Float64() * 0.5
		p.MaxDelay = 1 + src.Intn(6)
	}
	if lossless := src.Float64() < 1.0/3; lossless {
		return p
	}
	if src.Float64() < 0.6 {
		p.DropProb = src.Float64() * 0.25
	}
	for k := src.Intn(3); k > 0; k-- { // 0..2 partitions
		side := 1 + src.Intn(n/2)
		perm := src.Perm(n)
		a := make([]NodeID, side)
		copy(a, perm[:side])
		from := src.Intn(8)
		until := 0
		if src.Bool() {
			until = from + 1 + src.Intn(8)
		}
		p.Partitions = append(p.Partitions, Partition{A: a, From: from, Until: until})
	}
	for k := src.Intn(3); k > 0; k-- { // 0..2 crashes
		at := src.Intn(8)
		recover := 0
		if src.Bool() {
			recover = at + 1 + src.Intn(8)
		}
		p.Crashes = append(p.Crashes, Crash{Node: src.Intn(n), At: at, RecoverAt: recover})
	}
	return p
}

// shrinkCase greedily simplifies a violating case while the violation
// persists: clear whole fault dimensions, then drop individual partitions
// and crashes, then shorten delays. Each candidate replays the run;
// replay errors just reject the candidate. Returns the smallest still-
// violating case found and its run.
func shrinkCase(c FuzzCase, run FuzzRun) (FuzzCase, FuzzRun) {
	best, bestRun := c, run
	improved := true
	for rounds := 0; improved && rounds < 8; rounds++ {
		improved = false
		for _, candidate := range shrinkCandidates(best) {
			crun, err := ReplayCase(candidate)
			if err != nil || crun.Report.OK() {
				continue
			}
			best, bestRun = candidate, crun
			improved = true
			break // restart candidate generation from the smaller case
		}
	}
	best.Note = fmt.Sprintf("shrunk from: %s", c.Note)
	return best, bestRun
}

// shrinkCandidates proposes strictly simpler variants of a case, most
// aggressive first.
func shrinkCandidates(c FuzzCase) []FuzzCase {
	var out []FuzzCase
	add := func(mut func(*FaultPlan)) {
		v := c
		v.Plan = clonePlan(c.Plan)
		v.Log = cloneLog(c.Log)
		mut(&v.Plan)
		out = append(out, v)
	}
	// Log-dimension shrinks first: a shorter, shallower, thinner log is
	// strictly simpler than any fault-plan change.
	if c.Log != nil {
		addLog := func(mut func(*LogFuzz)) {
			v := c
			v.Plan = clonePlan(c.Plan)
			v.Log = cloneLog(c.Log)
			mut(v.Log)
			out = append(out, v)
		}
		// clampRestart keeps RestartAfter < Entries when Entries shrinks
		// (0 degrades the candidate to the restart-free family, which is
		// strictly simpler).
		clampRestart := func(l *LogFuzz) {
			if l.RestartAfter >= l.Entries {
				l.RestartAfter = l.Entries - 1
			}
		}
		if c.Log.RestartAfter > 0 {
			addLog(func(l *LogFuzz) { l.RestartAfter = 0 })
		}
		if c.Log.Entries > 1 {
			addLog(func(l *LogFuzz) { l.Entries = 1; clampRestart(l) })
			if c.Log.Entries > 2 {
				addLog(func(l *LogFuzz) { l.Entries /= 2; clampRestart(l) })
			}
		}
		if c.Log.Depth > 1 {
			addLog(func(l *LogFuzz) { l.Depth = 1 })
		}
		if c.Log.Batch > 1 {
			addLog(func(l *LogFuzz) { l.Batch = 1 })
		}
	}
	// Chaos-dimension shrinks: no chaos at all (degrading to the fabric
	// family) is strictly simpler; then fewer strikes, then the least
	// exotic strike kind only.
	if c.Chaos != nil {
		addChaos := func(mut func(*FuzzCase)) {
			v := c
			v.Plan = clonePlan(c.Plan)
			v.Log = cloneLog(c.Log)
			v.Chaos = cloneChaos(c.Chaos)
			mut(&v)
			out = append(out, v)
		}
		addChaos(func(v *FuzzCase) { v.Chaos = nil })
		if c.Chaos.Sweep {
			addChaos(func(v *FuzzCase) { v.Chaos.Sweep = false; v.Chaos.Strikes = 4 })
		}
		if c.Chaos.Strikes > 1 {
			addChaos(func(v *FuzzCase) { v.Chaos.Strikes /= 2 })
		}
		if len(c.Chaos.Kinds) != 1 || c.Chaos.Kinds[0] != "close" {
			addChaos(func(v *FuzzCase) { v.Chaos.Kinds = []string{"close"} })
		}
	}
	// Scenario-dimension shrinks: no scenario at all is strictly simpler
	// (an adaptive adversary must shrink with it — it is invalid without
	// one); then a direct full mesh, a lossless link model, no latency
	// model, no rewiring, no Zipf skew.
	if c.Scenario != nil {
		addScen := func(mut func(*FuzzCase)) {
			v := c
			v.Plan = clonePlan(c.Plan)
			v.Log = cloneLog(c.Log)
			sc := *c.Scenario
			v.Scenario = &sc
			mut(&v)
			out = append(out, v)
		}
		addScen(func(v *FuzzCase) {
			v.Scenario = nil
			if adaptiveKind(v.Adversary) != "" {
				v.Adversary = "silent"
			}
		})
		if c.Scenario.Topology != "" && c.Scenario.Topology != TopologyFull {
			addScen(func(v *FuzzCase) { v.Scenario.Topology = TopologyFull; v.Scenario.Degree = 0; v.Scenario.Rewire = 0 })
		}
		if c.Scenario.Loss > 0 {
			addScen(func(v *FuzzCase) { v.Scenario.Loss = 0 })
		}
		if c.Scenario.Latency != "" {
			addScen(func(v *FuzzCase) {
				v.Scenario.Latency = ""
				v.Scenario.BaseDelay, v.Scenario.MaxDelay = 0, 0
				v.Scenario.TailProb, v.Scenario.TailDelay = 0, 0
			})
		}
		if c.Scenario.Rewire > 0 {
			addScen(func(v *FuzzCase) { v.Scenario.Rewire = 0 })
		}
		if c.Scenario.ZipfS > 0 {
			addScen(func(v *FuzzCase) { v.Scenario.ZipfS = 0 })
		}
	}
	if c.Plan.DropProb > 0 {
		add(func(p *FaultPlan) { p.DropProb = 0 })
	}
	if c.Plan.DupProb > 0 {
		add(func(p *FaultPlan) { p.DupProb = 0 })
	}
	if c.Plan.DelayProb > 0 {
		add(func(p *FaultPlan) { p.DelayProb = 0; p.MaxDelay = 0 })
	}
	if len(c.Plan.Partitions) > 0 {
		add(func(p *FaultPlan) { p.Partitions = nil })
	}
	if len(c.Plan.Crashes) > 0 {
		add(func(p *FaultPlan) { p.Crashes = nil })
	}
	for i := range c.Plan.Partitions {
		i := i
		if len(c.Plan.Partitions) > 1 {
			add(func(p *FaultPlan) { p.Partitions = append(p.Partitions[:i:i], p.Partitions[i+1:]...) })
		}
	}
	for i := range c.Plan.Crashes {
		i := i
		if len(c.Plan.Crashes) > 1 {
			add(func(p *FaultPlan) { p.Crashes = append(p.Crashes[:i:i], p.Crashes[i+1:]...) })
		}
	}
	if c.Plan.DropProb > 0.02 {
		add(func(p *FaultPlan) { p.DropProb /= 2 })
	}
	if c.Plan.MaxDelay > 1 {
		add(func(p *FaultPlan) { p.MaxDelay /= 2 })
	}
	// Beyond the plan: a fault-free variant separates "faults did it"
	// from "the scenario violates even on a clean network" (e.g. a
	// protocol mutation), and the weakest adversary isolates faults from
	// Byzantine behaviour.
	if !c.Plan.IsZero() {
		v := c
		v.Plan = FaultPlan{}
		out = append(out, v)
	}
	// ("none" is excluded: it forces zero corruption, so replacing it with
	// "silent" would re-activate the corrupt fraction — a strictly MORE
	// hostile case, not a simpler one.)
	if c.Log == nil && c.Adversary != "silent" && c.Adversary != "none" && c.CorruptFrac > 0 {
		v := c
		v.Adversary = "silent"
		out = append(out, v)
	}
	// Log cases are already fail-silent; dropping corruption entirely is
	// their adversary shrink.
	if c.Log != nil && c.CorruptFrac > 0 {
		v := c
		v.Plan = clonePlan(c.Plan)
		v.Log = cloneLog(c.Log)
		v.CorruptFrac = 0
		out = append(out, v)
	}
	return out
}

func clonePlan(p FaultPlan) FaultPlan {
	p.Partitions = append([]Partition(nil), p.Partitions...)
	p.Crashes = append([]Crash(nil), p.Crashes...)
	return p
}

func cloneLog(l *LogFuzz) *LogFuzz {
	if l == nil {
		return nil
	}
	v := *l
	return &v
}

func cloneChaos(cf *ChaosFuzz) *ChaosFuzz {
	if cf == nil {
		return nil
	}
	v := *cf
	v.Kinds = append([]string(nil), cf.Kinds...)
	return &v
}

// persistFailure writes one failure as indented JSON into dir, named by
// its digest prefix.
func persistFailure(dir string, f FuzzFailure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("fail_%s.json", f.Digest[:12]))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadFuzzCase reads one corpus file: either a bare FuzzCase or a
// persisted FuzzFailure (whose shrunk Case is taken).
func LoadFuzzCase(path string) (FuzzCase, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return FuzzCase{}, err
	}
	var failure struct {
		Case *FuzzCase `json:"case"`
	}
	if err := json.Unmarshal(data, &failure); err == nil && failure.Case != nil {
		return *failure.Case, nil
	}
	var c FuzzCase
	if err := json.Unmarshal(data, &c); err != nil {
		return FuzzCase{}, fmt.Errorf("fastba: corpus file %s: %w", path, err)
	}
	return c, nil
}

// ReplayCorpus replays every *.json case under dir (sorted by name) and
// returns the runs in order plus the cases whose oracles now fail. A
// missing directory is an error; an empty one is not.
func ReplayCorpus(dir string) ([]FuzzRun, []FuzzFailure, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	if _, err := os.Stat(dir); err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	var runs []FuzzRun
	var failures []FuzzFailure
	for _, path := range paths {
		c, err := LoadFuzzCase(path)
		if err != nil {
			return runs, failures, err
		}
		run, err := ReplayCase(c)
		if err != nil {
			return runs, failures, fmt.Errorf("fastba: corpus case %s: %w", path, err)
		}
		runs = append(runs, run)
		if !run.Report.OK() {
			failures = append(failures, FuzzFailure{
				Case: c, Original: c,
				Violations: run.Report.Violations,
				Digest:     run.Digest,
			})
		}
	}
	return runs, failures, nil
}
