package fastba

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestOracleCatchesBrokenQuorum is the oracle subsystem's acceptance
// proof: a deliberately broken quorum threshold (deciding on the first
// poll answer instead of the strict majority of Algorithm 1) must be
// caught — the split decisions by the agreement oracle and the
// certificate-less decisions by the certificate oracle. knowFrac 0.60
// lets the shared junk belief assemble push-quorum majorities, so the
// mutation deterministically splits the system on this seed.
func TestOracleCatchesBrokenQuorum(t *testing.T) {
	cfg := NewConfig(32,
		WithSeed(1),
		WithKnowFrac(0.60),
		WithAdversary(AdversaryNone),
		WithDecideThreshold(1),
	)
	res, err := RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctDecisions < 2 {
		t.Fatalf("mutation did not split the system: %d distinct decisions", res.DistinctDecisions)
	}
	rep := CheckInvariants(cfg, res)
	caught := map[string]bool{}
	for _, v := range rep.Violations {
		caught[v.Oracle] = true
	}
	if !caught[OracleAgreement] {
		t.Errorf("agreement oracle missed the broken quorum threshold: %s", rep)
	}
	if !caught[OracleCertificates] {
		t.Errorf("certificate oracle missed the broken quorum threshold: %s", rep)
	}

	// The same configuration without the mutation must keep every safety
	// oracle quiet: the findings above react to the broken threshold, not
	// to the hostile population shape. (Termination is exempt — at this
	// knowFrac and n, a clean run can legitimately leave stragglers, the
	// w.h.p. nature of Lemmas 9/10.)
	clean := NewConfig(32, WithSeed(1), WithKnowFrac(0.60), WithAdversary(AdversaryNone))
	cleanRes, err := RunAER(clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range CheckInvariants(clean, cleanRes).Violations {
		if v.Oracle != OracleTermination {
			t.Errorf("unmutated run violates safety oracle: %s", v)
		}
	}
}

// TestFuzzDigestDeterministic locks the reproducibility contract: a fixed
// campaign seed yields byte-identical run digests across two invocations,
// case by case.
func TestFuzzDigestDeterministic(t *testing.T) {
	campaign := func() []string {
		var digests []string
		res, err := SimFuzz(context.Background(), FuzzConfig{
			Seed: 7,
			Runs: 6,
			Ns:   []int{16, 24},
			OnRun: func(r FuzzRun) {
				digests = append(digests, r.Digest)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Executed != 6 {
			t.Fatalf("executed %d of 6 cases", res.Executed)
		}
		return digests
	}
	first, second := campaign(), campaign()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("digests diverge across invocations:\n%v\nvs\n%v", first, second)
	}
	for i, d := range first {
		if len(d) != 64 {
			t.Fatalf("digest %d malformed: %q", i, d)
		}
	}
}

// TestReplayCaseDeterministic: the single-case form of the same contract,
// for a case with every fault dimension active.
func TestReplayCaseDeterministic(t *testing.T) {
	c := FuzzCase{
		N: 24, Seed: 42, Model: "async", Adversary: "equivocate",
		CorruptFrac: 0.1, KnowFrac: 0.85,
		Plan: FaultPlan{
			Seed: 9, DropProb: 0.1, DupProb: 0.1, DelayProb: 0.3, MaxDelay: 3,
			Partitions: []Partition{{A: []NodeID{1, 2}, From: 2, Until: 5}},
			Crashes:    []Crash{{Node: 3, At: 1, RecoverAt: 4}},
		},
	}
	a, err := ReplayCase(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digests diverge: %s vs %s", a.Digest, b.Digest)
	}
}

// TestFuzzLogCaseDeterministic: a pipelined-log case with lossless faults
// replays to a byte-identical digest — the committed (seq, value)
// sequence is a pure function of the case even on the concurrent fabric.
func TestFuzzLogCaseDeterministic(t *testing.T) {
	c := FuzzCase{
		N: 16, Seed: 33, CorruptFrac: 0.1, KnowFrac: 1,
		Plan: FaultPlan{Seed: 5, DupProb: 0.2, DelayProb: 0.3, MaxDelay: 2},
		Log:  &LogFuzz{Entries: 3, Depth: 4, Batch: 2, PayloadBytes: 16},
	}
	a, err := ReplayCase(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("log digests diverge: %s vs %s", a.Digest, b.Digest)
	}
	if !a.Report.OK() {
		t.Fatalf("log case violates: %s", a.Report)
	}
	found := false
	for _, name := range a.Report.Checked {
		if name == OracleTermination {
			found = true
		}
	}
	if !found {
		t.Fatalf("lossless log case skipped termination: %+v", a.Report)
	}
}

// TestFuzzLogCampaign: a log-only campaign samples, executes and passes
// the pipelined-log family.
func TestFuzzLogCampaign(t *testing.T) {
	logCases := 0
	res, err := SimFuzz(context.Background(), FuzzConfig{
		Seed:    13,
		Runs:    5,
		Ns:      []int{16},
		LogFrac: 1,
		OnRun: func(r FuzzRun) {
			if r.Case.Log != nil {
				logCases++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 5 || logCases != 5 {
		t.Fatalf("executed %d cases, %d from the log family; want 5/5", res.Executed, logCases)
	}
	for _, f := range res.Failures {
		t.Errorf("log campaign failure: %s: %v", f.Case, f.Violations)
	}
}

// TestFuzzLogShrinkCandidates: log cases shrink along log dimensions
// without aliasing the parent's Log.
func TestFuzzLogShrinkCandidates(t *testing.T) {
	c := FuzzCase{
		N: 16, Seed: 1, CorruptFrac: 0.1, KnowFrac: 1,
		Plan: FaultPlan{Seed: 2, DupProb: 0.2},
		Log:  &LogFuzz{Entries: 4, Depth: 4, Batch: 2, PayloadBytes: 16},
	}
	cands := shrinkCandidates(c)
	if len(cands) == 0 {
		t.Fatal("no candidates for a shrinkable log case")
	}
	sawEntries, sawDepth := false, false
	for _, cand := range cands {
		if cand.Log == nil {
			t.Fatal("candidate lost its log shape")
		}
		if cand.Log == c.Log && (cand.Log.Entries != c.Log.Entries || cand.Log.Depth != c.Log.Depth || cand.Log.Batch != c.Log.Batch) {
			t.Fatal("candidate aliases the parent's Log")
		}
		if cand.Log.Entries < c.Log.Entries {
			sawEntries = true
		}
		if cand.Log.Depth == 1 && c.Log.Depth > 1 {
			sawDepth = true
		}
	}
	if !sawEntries || !sawDepth {
		t.Fatalf("missing log shrink dimensions (entries=%t depth=%t)", sawEntries, sawDepth)
	}
	// Mutating a candidate's Log must not touch the parent.
	cands[0].Log.Entries = 99
	if c.Log.Entries == 99 {
		t.Fatal("candidate Log aliases the parent")
	}
}

// TestFuzzScenarioCampaign: a scenario-only campaign samples, executes and
// passes the hostile-internet family — topologies, latency models, gossip
// relay and (occasionally) adaptive adversaries.
func TestFuzzScenarioCampaign(t *testing.T) {
	scenCases := 0
	res, err := SimFuzz(context.Background(), FuzzConfig{
		Seed:         21,
		Runs:         5,
		Ns:           []int{16, 24},
		ScenarioFrac: 1,
		OnRun: func(r FuzzRun) {
			if r.Case.Scenario != nil {
				scenCases++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 5 || scenCases != 5 {
		t.Fatalf("executed %d cases, %d from the scenario family; want 5/5", res.Executed, scenCases)
	}
	for _, f := range res.Failures {
		t.Errorf("scenario campaign failure: %s: %v", f.Case, f.Violations)
	}
}

// TestFuzzScenarioShrinkCandidates: scenario cases shrink along topology
// and adversary dimensions without aliasing the parent's Scenario, and
// dropping the scenario also drops an adaptive adversary (which cannot run
// without one).
func TestFuzzScenarioShrinkCandidates(t *testing.T) {
	c := FuzzCase{
		N: 24, Seed: 1, Model: "async", Adversary: AdversaryAdaptiveDegree,
		CorruptFrac: 0.1, KnowFrac: 1,
		Plan: FaultPlan{Seed: 2},
		Scenario: &Scenario{
			Topology: TopologyWS, Degree: 6, Rewire: 0.3, ZipfS: 1.0,
			Latency: LatencyLongTail, TailProb: 0.1, TailDelay: 4, Loss: 0.02, Seed: 5,
		},
	}
	cands := shrinkCandidates(c)
	if len(cands) == 0 {
		t.Fatal("no candidates for a shrinkable scenario case")
	}
	sawDrop, sawFull, sawNoLoss, sawNoLatency := false, false, false, false
	for _, cand := range cands {
		if cand.Scenario == nil {
			if adaptiveKind(cand.Adversary) != "" {
				t.Fatalf("dropping the scenario kept adaptive adversary %q", cand.Adversary)
			}
			sawDrop = true
			continue
		}
		if cand.Scenario == c.Scenario && *cand.Scenario != *c.Scenario {
			t.Fatal("candidate aliases the parent's Scenario")
		}
		if cand.Scenario.Topology == TopologyFull {
			sawFull = true
		}
		if cand.Scenario.Loss == 0 && cand.Scenario.Topology == c.Scenario.Topology {
			sawNoLoss = true
		}
		if cand.Scenario.Latency == "" {
			sawNoLatency = true
		}
	}
	if !sawDrop || !sawFull || !sawNoLoss || !sawNoLatency {
		t.Fatalf("missing scenario shrink dimensions (drop=%t full=%t noLoss=%t noLatency=%t)",
			sawDrop, sawFull, sawNoLoss, sawNoLatency)
	}
	// Mutating a candidate's Scenario must not touch the parent.
	for _, cand := range cands {
		if cand.Scenario != nil {
			cand.Scenario.Degree = 99
			break
		}
	}
	if c.Scenario.Degree == 99 {
		t.Fatal("candidate Scenario aliases the parent")
	}
}

// TestFuzzCorpusReplay: every committed corpus case must pass its oracles
// — the corpus is the fuzzer's regression suite.
func TestFuzzCorpusReplay(t *testing.T) {
	runs, failures, err := ReplayCorpus(filepath.Join("testdata", "fuzz_corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("corpus is empty")
	}
	for _, f := range failures {
		t.Errorf("corpus case %s now violates: %v", f.Case, f.Violations)
	}
}

// TestFuzzFailurePersistRoundTrip: a persisted failure loads back as its
// shrunk reproducer case.
func TestFuzzFailurePersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	failure := FuzzFailure{
		Case: FuzzCase{N: 16, Seed: 3, Model: "async", Adversary: "silent",
			CorruptFrac: 0.1, KnowFrac: 0.85, Plan: FaultPlan{Seed: 4, DropProb: 0.2}},
		Original:   FuzzCase{N: 16, Seed: 3, Model: "async", Adversary: "flood"},
		Violations: []Violation{{Oracle: OracleAgreement, Detail: "synthetic"}},
		Digest:     "0123456789abcdef0123456789abcdef",
	}
	path, err := persistFailure(dir, failure)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadFuzzCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, failure.Case) {
		t.Fatalf("round trip mangled the case: %+v vs %+v", got, failure.Case)
	}
	// A bare FuzzCase file loads too (the handwritten corpus format).
	bare := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(bare, []byte(`{"n":16,"seed":5,"model":"async","adversary":"silent","corruptFrac":0.1,"knowFrac":1,"plan":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadFuzzCase(bare); err != nil || got.Seed != 5 {
		t.Fatalf("bare case load: %+v, %v", got, err)
	}
}

// TestShrinkCandidates: candidates are strictly simpler and never alias
// the parent's plan slices.
func TestShrinkCandidates(t *testing.T) {
	c := FuzzCase{
		N: 16, Seed: 1, Model: "async", Adversary: "flood", CorruptFrac: 0.1, KnowFrac: 0.85,
		Plan: FaultPlan{
			Seed: 2, DropProb: 0.2, DupProb: 0.1, DelayProb: 0.3, MaxDelay: 4,
			Partitions: []Partition{{A: []NodeID{0}, From: 1}, {A: []NodeID{1}, From: 2}},
			Crashes:    []Crash{{Node: 1, At: 1}, {Node: 2, At: 2}},
		},
	}
	cands := shrinkCandidates(c)
	if len(cands) == 0 {
		t.Fatal("no candidates for a maximally faulty case")
	}
	for i, cand := range cands {
		if reflect.DeepEqual(cand, c) {
			t.Errorf("candidate %d did not simplify anything", i)
		}
	}
	// Mutating a candidate's partitions must not touch the parent.
	for _, cand := range cands {
		if len(cand.Plan.Partitions) == len(c.Plan.Partitions) && len(cand.Plan.Partitions) > 0 {
			cand.Plan.Partitions[0].From = 99
			if c.Plan.Partitions[0].From == 99 {
				t.Fatal("candidate aliases the parent plan")
			}
			break
		}
	}
}

// TestSweepFaultAxis: fault plans are a first-class sweep dimension —
// cells are labeled per plan, records carry oracle verdicts, and a
// lossless plan keeps full agreement.
func TestSweepFaultAxis(t *testing.T) {
	rep, err := RunSuite(context.Background(), Suite{
		Name: "faults",
		Sweep: Sweep{
			Ns:    []int{16},
			Seeds: Seeds(2),
			Faults: []FaultPlan{
				{},
				{Seed: 3, DupProb: 0.2, DelayProb: 0.3, MaxDelay: 2},
				{Seed: 4, DropProb: 0.15},
			},
		},
		Workers:      1,
		CheckOracles: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("want 3 fault cells, got %d", len(rep.Cells))
	}
	wantLabels := []string{"none", "dup0.2+delay0.3×2#3", "drop0.15#4"}
	for i, cr := range rep.Cells {
		if cr.Cell.Fault != wantLabels[i] {
			t.Errorf("cell %d fault label = %q, want %q", i, cr.Cell.Fault, wantLabels[i])
		}
		if cr.OracleViolations != 0 {
			t.Errorf("cell %q has %d oracle violations: %+v", cr.Cell.Fault, cr.OracleViolations, cr.Records)
		}
	}
	// The lossless cells must reach full agreement; the lossy one may
	// legitimately lose liveness but its safety verdicts were checked
	// above.
	for _, cr := range rep.Cells[:2] {
		if cr.AgreementRate != 1 {
			t.Errorf("lossless cell %q agreement rate %.2f", cr.Cell.Fault, cr.AgreementRate)
		}
	}
}

// TestFaultPlanValidationAtConfig: invalid plans are rejected at the same
// place every other configuration error is.
func TestFaultPlanValidationAtConfig(t *testing.T) {
	for _, plan := range []FaultPlan{
		{DropProb: 1.5},
		{Partitions: []Partition{{A: []NodeID{99}}}},
		{Crashes: []Crash{{Node: 0, At: 5, RecoverAt: 2}}},
	} {
		if _, err := RunAER(NewConfig(16, WithFaults(plan))); err == nil {
			t.Errorf("plan %+v accepted", plan)
		}
	}
}
