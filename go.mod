module github.com/fastba/fastba

go 1.21
