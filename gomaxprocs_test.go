package fastba

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
)

// TestDeterminismAcrossGOMAXPROCS locks the parallel-fabric contract of
// DESIGN.md §10: the worker count is a pure throughput knob. The golden
// suite's Report bytes and the regression corpus's run digests must be
// identical under GOMAXPROCS 1, 2 and 8 — the fabric defaults its shard
// workers to min(GOMAXPROCS, n), so these settings drive the serial,
// barely-parallel and oversubscribed drain paths through the same seeds.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the golden suite and regression corpus three times")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var wantReport []byte
	var wantDigests string
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)

		rep, err := RunSuite(context.Background(), Suite{
			Name: "golden",
			Sweep: Sweep{
				Ns:          []int{32, 64},
				Seeds:       Seeds(3),
				Models:      []Model{SyncNonRushing, Async},
				Adversaries: []string{"silent", "flood"},
			},
			Workers: 1,
		})
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		var report bytes.Buffer
		if err := rep.WriteJSON(&report); err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}

		runs, failures, err := ReplayCorpus(filepath.Join("testdata", "fuzz_corpus"))
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: replay: %v", procs, err)
		}
		if len(failures) > 0 {
			t.Fatalf("GOMAXPROCS=%d: %d corpus failures (first: %s)", procs, len(failures), failures[0].Digest)
		}
		var digests bytes.Buffer
		for i, r := range runs {
			fmt.Fprintf(&digests, "%d %s\n", i, r.Digest)
		}

		if wantReport == nil {
			wantReport = append([]byte(nil), report.Bytes()...)
			wantDigests = digests.String()
			continue
		}
		if !bytes.Equal(report.Bytes(), wantReport) {
			t.Errorf("GOMAXPROCS=%d: golden suite Report diverged from the GOMAXPROCS=1 bytes", procs)
		}
		if digests.String() != wantDigests {
			t.Errorf("GOMAXPROCS=%d: corpus digests diverged from the GOMAXPROCS=1 replay:\n%s\nvs\n%s", procs, digests.String(), wantDigests)
		}
	}
}
