// Package adversary implements the Byzantine node behaviours used by the
// experiments. The adversary of §2.1 is non-adaptive (corrupt nodes are
// fixed before the run — the scenario does this), has full knowledge of the
// network (every strategy receives the shared samplers, the corruption
// pattern and gstring itself), coordinates all its nodes, and comes in
// rushing and non-rushing flavours (rushing strategies implement
// simnet.Rusher and observe the correct nodes' round messages before
// sending their own).
//
// Strategies:
//
//   - Silent: crash from the start — the weakest adversary; used by the
//     "success guaranteed without Byzantine faults" experiments as the
//     t = 0 limit behaves identically.
//   - Flood: push-phase flooding (§3.1.1): bogus candidate strings sprayed
//     at everyone, plus garbage pulls; demonstrates that the Push Quorum
//     filter keeps candidate lists O(n) (Lemma 4) and that pushes cannot
//     inflate correct nodes' sending (Lemma 3).
//   - Equivocate: pushes per-target different bogus strings from every
//     Byzantine node that legitimately sits in the target's Push Quorum,
//     and answers polls for its bogus strings — the classic attempt to
//     split the system that Lemma 7 rules out.
//   - Corner: the Lemma 6 overload attack. Rushing: observes the Poll
//     messages of correct nodes, learns their poll lists J(x, r), and
//     directs its own *well-formed* pull requests (for gstring, so correct
//     quorums forward them) at the busiest poll-list members to exhaust
//     their log² n answer budgets and delay honest answers.
package adversary

import (
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// Env is the full-information view handed to every Byzantine node.
type Env struct {
	Params  core.Params
	Smp     *core.Samplers
	GString bitstring.String
	Corrupt []bool
	Seed    uint64
}

// FromScenario extracts the adversary's view from a scenario.
func FromScenario(sc *core.Scenario) Env {
	return Env{
		Params:  sc.Params,
		Smp:     sc.Smp,
		GString: sc.GString,
		Corrupt: sc.Corrupt,
		Seed:    sc.Seed,
	}
}

// Strategy builds Byzantine nodes.
type Strategy interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// New returns the Byzantine node with the given ID.
	New(env Env, id int) simnet.Node
}

// Maker adapts a Strategy to core.Scenario.Build's factory argument.
func Maker(st Strategy, env Env) func(id int) simnet.Node {
	return func(id int) simnet.Node { return st.New(env, id) }
}

// rng derives the strategy-private randomness for one Byzantine node.
func rng(env Env, name string, id int) *prng.Source {
	return prng.New(prng.DeriveKey(env.Seed, "adversary/"+name, uint64(id)))
}

// Silent is the crash adversary.
type Silent struct{}

// Name implements Strategy.
func (Silent) Name() string { return "silent" }

// New implements Strategy.
func (Silent) New(env Env, id int) simnet.Node { return silentNode{} }

type silentNode struct{}

func (silentNode) Init(simnet.Context)                                   {}
func (silentNode) Deliver(simnet.Context, simnet.NodeID, simnet.Message) {}
