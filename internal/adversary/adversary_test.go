package adversary

import (
	"testing"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// run executes AER with the given strategy and returns the outcome, the
// correct-node metrics and the correct nodes.
func run(t *testing.T, n int, seed uint64, st Strategy, p core.Params, cfg core.ScenarioConfig) (core.Outcome, *simnet.Metrics, []*core.Node, *core.Scenario) {
	t.Helper()
	sc, err := core.NewScenario(p, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := FromScenario(sc)
	nodes, correct := sc.Build(Maker(st, env))
	m := simnet.NewSync(nodes, sc.Corrupt).Run(60)
	return core.Evaluate(correct, sc.GString), m, correct, sc
}

func TestSilentMatchesDefaultBuild(t *testing.T) {
	p := core.DefaultParams(96)
	o, _, _, _ := run(t, 96, 5, Silent{}, p, core.TestingScenarioConfig())
	if !o.Agreement() {
		t.Fatalf("silent adversary broke agreement: %+v", o)
	}
}

func TestFloodDoesNotBreakAgreement(t *testing.T) {
	p := core.DefaultParams(96)
	o, _, _, _ := run(t, 96, 7, Flood{Strings: 6}, p, core.TestingScenarioConfig())
	if !o.Agreement() {
		t.Fatalf("flooding adversary broke agreement: %+v", o)
	}
}

func TestFloodDoesNotInflateCandidateLists(t *testing.T) {
	// Lemma 4 under attack: bogus strings must not enter candidate lists,
	// so Σ|L_x| stays O(n).
	p := core.DefaultParams(96)
	o, _, _, _ := run(t, 96, 7, Flood{Strings: 10}, p, core.TestingScenarioConfig())
	if o.SumCandidates > 3*o.Correct {
		t.Fatalf("flooding inflated candidate lists: Σ|L_x| = %d for %d nodes", o.SumCandidates, o.Correct)
	}
}

func TestFloodDoesNotInflateCorrectSending(t *testing.T) {
	// Lemma 3 under attack: correct nodes' sent bits must not react to
	// flooding ("nodes do not react to the reception of messages by
	// sending messages" in the push phase; garbage pulls are dropped by
	// the s = s_y filter).
	p := core.DefaultParams(96)
	cfg := core.TestingScenarioConfig()
	baseline, mSilent, _, scSilent := run(t, 96, 9, Silent{}, p, cfg)
	flooded, mFlood, _, scFlood := run(t, 96, 9, Flood{Strings: 10}, p, cfg)
	if !baseline.Agreement() || !flooded.Agreement() {
		t.Fatal("setup: runs did not agree")
	}
	silentBits := correctSentBits(mSilent, scSilent.Corrupt)
	floodBits := correctSentBits(mFlood, scFlood.Corrupt)
	// Allow a small tolerance: Byzantine pulls for bogus strings are
	// answered by nobody but the odd quorum overlap can add a message.
	if floodBits > silentBits*11/10 {
		t.Fatalf("flooding inflated correct sending: %d -> %d bits", silentBits, floodBits)
	}
}

func correctSentBits(m *simnet.Metrics, corrupt []bool) int64 {
	var total int64
	for id := range m.PerNode {
		if !corrupt[id] {
			total += m.PerNode[id].SentBytes * 8
		}
	}
	return total
}

func TestEquivocateNeverWins(t *testing.T) {
	p := core.DefaultParams(96)
	for seed := uint64(1); seed <= 3; seed++ {
		o, _, _, _ := run(t, 96, seed, Equivocate{}, p, core.TestingScenarioConfig())
		if o.DecidedOther > 0 {
			t.Fatalf("seed %d: %d correct nodes decided the adversary's string", seed, o.DecidedOther)
		}
		if !o.Agreement() {
			t.Fatalf("seed %d: equivocation blocked agreement: %+v", seed, o)
		}
	}
}

// cornerConfig puts the system in the regime where the Lemma 6 attack
// bites at simulation scale. Measured honest demand per poll-list member
// at n = 128 peaks at 32 answers; the paper's budget log² n = 49
// deliberately exceeds honest demand, and the adversary's extra pressure
// is bounded by t (one well-formed gstring request per Byzantine node per
// target). Asymptotically t = Θ(n) ≫ log² n; at n = 128 we set the budget
// to 33 — between honest peak demand and honest+attack — so the attack is
// observable exactly as in the paper's asymptotic regime.
func cornerConfig() (core.Params, core.ScenarioConfig) {
	p := core.DefaultParams(128)
	p.AnswerBudget = 33
	cfg := core.ScenarioConfig{CorruptFrac: 0.10, KnowFrac: 0.90, SharedJunk: true, AdvBits: 1.0 / 3}
	return p, cfg
}

func totalDeferred(correct []*core.Node) int {
	deferred := 0
	for _, n := range correct {
		if n != nil {
			deferred += n.Stats().AnswersDeferred
		}
	}
	return deferred
}

func TestCornerConsumesBudgets(t *testing.T) {
	// The cornering adversary must cause strictly more deferrals than a
	// silent adversary on the same population, without breaking agreement.
	p, cfg := cornerConfig()
	quiet, _, correctQuiet, _ := run(t, 128, 11, Silent{}, p, cfg)
	attacked, _, correctAtt, _ := run(t, 128, 11, Corner{Rushing: true}, p, cfg)
	if !quiet.Agreement() || !attacked.Agreement() {
		t.Fatalf("agreement lost (quiet=%+v attacked=%+v)", quiet, attacked)
	}
	dq, da := totalDeferred(correctQuiet), totalDeferred(correctAtt)
	if da <= dq {
		t.Fatalf("cornering caused no extra deferrals: quiet=%d attacked=%d", dq, da)
	}
}

func TestCornerRushingStretchesDecisions(t *testing.T) {
	// Lemma 8 vs Lemma 6: the rushing cornering adversary may only delay
	// the last decision relative to a quiet network, never accelerate it,
	// and agreement must survive the overload.
	p, cfg := cornerConfig()
	quiet, _, _, _ := run(t, 128, 13, Silent{}, p, cfg)
	attacked, _, _, _ := run(t, 128, 13, Corner{Rushing: true}, p, cfg)
	if !quiet.Agreement() || !attacked.Agreement() {
		t.Fatalf("setup: agreement lost (quiet=%+v attacked=%+v)", quiet, attacked)
	}
	if attacked.MaxDecisionAt < quiet.MaxDecisionAt {
		t.Fatalf("attack accelerated decisions? quiet=%d attacked=%d",
			quiet.MaxDecisionAt, attacked.MaxDecisionAt)
	}
}

func TestStrategyNames(t *testing.T) {
	tests := []struct {
		st   Strategy
		want string
	}{
		{Silent{}, "silent"},
		{Flood{}, "flood"},
		{Equivocate{}, "equivocate"},
		{Corner{}, "corner"},
		{Corner{Rushing: true}, "corner-rushing"},
	}
	for _, tt := range tests {
		if got := tt.st.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]int{3, 1, 3, 2, 1})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("dedupe = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupe = %v, want %v", got, want)
		}
	}
}
