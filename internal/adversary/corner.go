package adversary

import (
	"sort"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// Corner is the Lemma 6 overload attack. Byzantine nodes issue
// *well-formed* pull requests for gstring itself — the only requests
// correct proxies will forward (Algorithm 2's s = s_y filter means "this
// pull request will be considered by x iff it is for gstring") — with
// labels chosen so their poll lists concentrate on a target set of
// nodes, consuming those nodes' log² n answer budgets and forcing honest
// answers to defer until the targets decide.
//
// The rushing variant observes the Poll messages of correct nodes during
// the round (simnet.Rusher), recovers the poll lists J(x, r) that honest
// verifications depend on, and aims its budget-burning requests at exactly
// those members — the adversary of Lemma 6 that "can overload all the
// nodes x′ to which a given node x has sent pull requests".
type Corner struct {
	// LabelTries bounds the per-node search for a poll list covering the
	// targets (default 512).
	LabelTries int
	// Rushing enables the poll-list-observing variant; otherwise targets
	// are the statically busiest nodes under the public samplers.
	Rushing bool
}

// Name implements Strategy.
func (c Corner) Name() string {
	if c.Rushing {
		return "corner-rushing"
	}
	return "corner"
}

// New implements Strategy.
func (c Corner) New(env Env, id int) simnet.Node {
	tries := c.LabelTries
	if tries <= 0 {
		tries = 512
	}
	n := &cornerNode{env: env, id: id, tries: tries, rushing: c.Rushing}
	return n
}

type cornerNode struct {
	env     Env
	id      int
	tries   int
	rushing bool
	fired   bool
}

var _ simnet.Rusher = (*cornerNode)(nil)

// Init: the non-rushing variant attacks immediately using public
// information only (it cannot know the labels correct nodes will draw —
// Lemma 8's argument for O(1) time against non-rushing adversaries).
func (n *cornerNode) Init(ctx simnet.Context) {
	if n.rushing {
		return // wait for Rush to observe poll traffic
	}
	n.fire(ctx, nil)
}

// Rush observes the correct nodes' round messages; on the first round
// containing Poll messages it extracts the polled members and fires.
func (n *cornerNode) Rush(ctx simnet.Context, round int, correctSends []simnet.Envelope) {
	if !n.rushing || n.fired {
		return
	}
	var observed []int
	for _, e := range correctSends {
		if _, ok := e.Msg.(core.MsgPoll); ok {
			observed = append(observed, e.To)
		}
	}
	if len(observed) == 0 {
		return
	}
	n.fire(ctx, observed)
}

func (n *cornerNode) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	// Corner nodes also refuse to relay gstring traffic (they are counted
	// in quorums but contribute nothing).
}

// fire issues the budget-burning pull request. targets lists node IDs
// observed to serve on honest poll lists (rushing) or nil for the static
// variant.
func (n *cornerNode) fire(ctx simnet.Context, targets []int) {
	n.fired = true
	src := rng(n.env, "corner", n.id)

	hit := make(map[int]int, len(targets))
	for _, w := range targets {
		hit[w]++
	}

	// Search the label space for the poll list maximizing overlap with the
	// targets (weighted by how many honest verifications each target
	// serves). Without targets, any label works — the request still
	// consumes one budget unit at each of its d poll-list members.
	bestLabel := src.Uint64() % n.env.Params.Labels
	if len(hit) > 0 {
		bestScore := -1
		for try := 0; try < n.tries; try++ {
			r := src.Uint64() % n.env.Params.Labels
			score := 0
			for _, w := range n.env.Smp.J.List(n.id, r) {
				score += hit[w]
			}
			if score > bestScore {
				bestScore = score
				bestLabel = r
			}
		}
	}

	// The request is indistinguishable from an honest verification of
	// gstring: Poll to J(b, r), Pull to H(gstring, b). Correct proxies
	// forward it because the string matches their belief.
	for _, w := range n.env.Smp.J.List(n.id, bestLabel) {
		ctx.Send(w, core.MsgPoll{S: n.env.GString, R: bestLabel})
	}
	for _, y := range dedupe(n.env.Smp.H.Quorum(n.env.GString, n.id)) {
		ctx.Send(y, core.MsgPull{S: n.env.GString, R: bestLabel})
	}
}

func dedupe(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || ids[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
