package adversary

import (
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// Equivocate is the splitting adversary: all Byzantine nodes collude on a
// single bogus string s_adv, push it to exactly the nodes whose Push
// Quorums they legitimately occupy (maximizing filter pressure per
// message), answer polls and proxy pulls for s_adv as if it were their
// honest candidate, and refuse to cooperate on gstring. Lemma 7's argument
// is that such collusion cannot assemble an answer majority on any poll
// list — the experiments check no correct node ever decides s_adv.
type Equivocate struct{}

// Name implements Strategy.
func (Equivocate) Name() string { return "equivocate" }

// New implements Strategy.
func (Equivocate) New(env Env, id int) simnet.Node {
	// s_adv is shared by all Byzantine nodes: derived from the public seed
	// only, so every colluder computes the same string.
	sAdv := bitstring.Random(prng.New(prng.DeriveKey(env.Seed, "adversary/equivocate/string", 0)), env.Params.StringBits)
	inner := core.NewNode(id, sAdv, env.Params, env.Smp, rng(env, "equivocate", id))
	return &equivocateNode{env: env, id: id, sAdv: sAdv, inner: inner}
}

// equivocateNode wraps a real protocol node initialized with s_adv: the
// strongest form of this attack is to run the honest algorithm for the
// bogus string (any deviation only trips membership filters earlier). On
// top of the honest core it adds targeted equivocation during Init.
type equivocateNode struct {
	env   Env
	id    int
	sAdv  bitstring.String
	inner *core.Node
}

func (n *equivocateNode) Init(ctx simnet.Context) {
	n.inner.Init(ctx)
	// Additionally push per-target variations: to each node x whose Push
	// Quorum for a variant we occupy, push that variant. Variants differ
	// per Byzantine node, maximizing candidate-list pressure (Lemma 4).
	src := rng(n.env, "equivocate/variants", n.id)
	for k := 0; k < 4; k++ {
		variant := bitstring.Random(src, n.env.Params.StringBits)
		for _, x := range n.env.Smp.I.Inverse(variant, n.id) {
			ctx.Send(x, core.MsgPush{S: variant})
		}
	}
}

func (n *equivocateNode) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	// Never help gstring: drop everything that mentions it; behave
	// honestly (for s_adv) otherwise.
	switch msg := m.(type) {
	case core.MsgPush:
		if msg.S.Equal(n.env.GString) {
			return
		}
	case core.MsgPull:
		if msg.S.Equal(n.env.GString) {
			return
		}
	case core.MsgFw1:
		if msg.S.Equal(n.env.GString) {
			return
		}
	case core.MsgFw2:
		if msg.S.Equal(n.env.GString) {
			return
		}
	case core.MsgPoll:
		if msg.S.Equal(n.env.GString) {
			return
		}
		// Answer polls for s_adv immediately, bypassing the honest
		// routing checks — correct pollers only count us if we are on
		// their poll list, so this is the best the adversary can do.
		if msg.S.Equal(n.sAdv) {
			ctx.Send(from, core.MsgAnswer{S: msg.S, R: msg.R})
			return
		}
	}
	n.inner.Deliver(ctx, from, m)
}
