package adversary

import (
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// Flood is the push-phase flooding adversary: every Byzantine node sprays
// Strings bogus candidates at Fanout random correct nodes each, and fires
// garbage Pull requests. §3.1.1: "the adversary cannot increase the
// communication complexity of this phase by sending many candidate strings
// to all nodes" — the experiments verify that correct nodes' sent bits and
// candidate lists stay flat under this attack (Lemmas 3–4).
type Flood struct {
	// Strings is the number of distinct bogus strings per Byzantine node
	// (default 8).
	Strings int
	// Fanout is how many nodes each bogus string is pushed to (default:
	// the whole system).
	Fanout int
}

// Name implements Strategy.
func (f Flood) Name() string { return "flood" }

// New implements Strategy.
func (f Flood) New(env Env, id int) simnet.Node {
	strings := f.Strings
	if strings <= 0 {
		strings = 8
	}
	fanout := f.Fanout
	if fanout <= 0 || fanout > env.Params.N {
		fanout = env.Params.N
	}
	return &floodNode{env: env, id: id, strings: strings, fanout: fanout}
}

type floodNode struct {
	env     Env
	id      int
	strings int
	fanout  int
}

func (n *floodNode) Init(ctx simnet.Context) {
	src := rng(n.env, "flood", n.id)
	for k := 0; k < n.strings; k++ {
		bogus := bitstring.Random(src, n.env.Params.StringBits)
		// Spray the bogus candidate at fanout nodes regardless of quorum
		// membership — the Push Quorum filter must discard almost all of
		// these on arrival.
		for i := 0; i < n.fanout; i++ {
			ctx.Send(src.Intn(n.env.Params.N), core.MsgPush{S: bogus})
		}
		// Garbage pull traffic: correct proxies must refuse to amplify it
		// (the s = s_y filter of Algorithm 2).
		for _, y := range n.env.Smp.H.Quorum(bogus, n.id) {
			ctx.Send(y, core.MsgPull{S: bogus, R: src.Uint64() % n.env.Params.Labels})
		}
	}
}

func (n *floodNode) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	// Echo-flood: answer any poll with a bogus answer; correct nodes must
	// reject answers from outside their poll lists or with wrong labels.
	if poll, ok := m.(core.MsgPoll); ok {
		ctx.Send(from, core.MsgAnswer{S: poll.S, R: poll.R + 1})
	}
}
