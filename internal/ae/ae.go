// Package ae implements the almost-everywhere agreement substrate that the
// paper composes with AER to obtain the full Byzantine Agreement protocol
// BA (§1: "Composed with an almost-everywhere agreement protocol (along the
// lines of [KSSV06]) ... this yields the most effective protocol for
// Byzantine Agreement to date").
//
// The protocol is a synchronous committee tree in the spirit of KSSV06:
//
//  1. Committees are selected by the shared sampler (a keyed pseudorandom
//     permutation of each range) — the same common-knowledge assumption AER
//     already makes for I, H and J. With a non-adaptive adversary, every
//     committee is good-majority w.h.p.
//  2. The root committee generates gstring: every member broadcasts a
//     random bin choice plus a private random segment (one message);
//     members then run Feige's lightest-bin election — the members that
//     chose the least-loaded bin are elected — and gstring is the
//     concatenation of the elected members' segments in ID order. Because
//     the adversary cannot overpopulate the lightest bin (overloading a bin
//     stops it from being lightest), its elected share stays proportional,
//     so a ≥ 2/3+ε fraction of gstring's bits is uniformly random — exactly
//     the randomness precondition AER places on gstring (§3.1).
//  3. gstring descends the tree: each committee's members send the value
//     they hold to the members of the two child committees, which adopt the
//     majority of what they received; leaf committees finally fan the value
//     out to every node of their range.
//
// Byzantine members may stay silent or equivocate arbitrarily (the Poison
// strategy sends per-target garbage); committees where they reach a
// majority poison their whole subtree — that is precisely the
// O(log⁻¹ n)-fraction of unknowing nodes that "almost everywhere" permits,
// and it is what the experiment harness measures.
//
// The protocol is synchronous (it acts on simnet round boundaries via the
// Ticker interface), matching KSSV06; the paper leaves asynchronous
// almost-everywhere agreement as future work (§5).
package ae

import (
	"fmt"
	"sort"

	"github.com/fastba/fastba/internal/prng"
)

// Params configures the committee tree.
type Params struct {
	// N is the system size.
	N int
	// CommitteeSize is m, the number of members per committee.
	CommitteeSize int
	// Bins is the number of buckets in the lightest-bin election
	// (Feige suggests ~√m; DefaultParams uses max(2, √m)).
	Bins int
	// StringBits is the length of the generated gstring.
	StringBits int
	// Seed keys committee selection (public, like the AER samplers).
	Seed uint64
}

// DefaultParams mirrors core.DefaultParams geometry: committees of
// max(12, 3·⌈log₂ n⌉) members and a 4·⌈log₂ n⌉-bit string.
func DefaultParams(n int) Params {
	lg := 0
	for v := n - 1; v > 0; v >>= 1 {
		lg++
	}
	if lg == 0 {
		lg = 1
	}
	m := 3 * lg
	if m < 12 {
		m = 12
	}
	if m > n {
		m = n
	}
	bins := 2
	for bins*bins < m {
		bins++
	}
	return Params{N: n, CommitteeSize: m, Bins: bins, StringBits: 4 * lg, Seed: 0x5eed}
}

// Validate reports whether the parameters are consistent.
func (p Params) Validate() error {
	switch {
	case p.N <= 1:
		return fmt.Errorf("ae: N = %d too small", p.N)
	case p.CommitteeSize <= 0 || p.CommitteeSize > p.N:
		return fmt.Errorf("ae: CommitteeSize = %d out of range", p.CommitteeSize)
	case p.Bins < 2:
		return fmt.Errorf("ae: Bins = %d too small", p.Bins)
	case p.StringBits <= 0:
		return fmt.Errorf("ae: StringBits must be positive")
	}
	return nil
}

// Tree is the committee structure: level k holds 2^k committees; committee
// (k, j) is drawn from the contiguous range of nodes it supervises. Depth
// is the largest D with n/2^D ≥ 2·CommitteeSize, so leaf ranges comfortably
// contain their committees.
type Tree struct {
	p     Params
	depth int
}

// NewTree builds the committee structure for the given parameters.
func NewTree(p Params) (*Tree, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	depth := 0
	for (p.N >> (depth + 1)) >= 2*p.CommitteeSize {
		depth++
	}
	return &Tree{p: p, depth: depth}, nil
}

// Depth returns the number of levels below the root.
func (t *Tree) Depth() int { return t.depth }

// Range returns the node range [lo, hi) supervised by committee (level, idx).
func (t *Tree) Range(level, idx int) (lo, hi int) {
	count := 1 << level
	lo = idx * t.p.N / count
	hi = (idx + 1) * t.p.N / count
	return lo, hi
}

// Committee returns the members of committee (level, idx): a pseudorandom
// sample of CommitteeSize nodes from its range, chosen by the shared seed.
func (t *Tree) Committee(level, idx int) []int {
	lo, hi := t.Range(level, idx)
	size := hi - lo
	m := t.p.CommitteeSize
	if m > size {
		m = size
	}
	perm := prng.NewPerm(size, prng.DeriveKey(t.p.Seed, "ae/committee", uint64(level)<<32|uint64(idx)))
	out := make([]int, m)
	for i := range out {
		out[i] = lo + perm.Apply(i)
	}
	sort.Ints(out)
	return out
}

// Memberships returns every (level, idx) pair whose committee contains id.
func (t *Tree) Memberships(id int) []CommitteeID {
	var out []CommitteeID
	for level := 0; level <= t.depth; level++ {
		idx := id * (1 << level) / t.p.N
		for _, member := range t.Committee(level, idx) {
			if member == id {
				out = append(out, CommitteeID{Level: level, Index: idx})
				break
			}
		}
	}
	return out
}

// CommitteeID names one committee.
type CommitteeID struct {
	Level, Index int
}
