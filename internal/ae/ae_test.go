package ae

import (
	"testing"

	"github.com/fastba/fastba/internal/prng"
)

func TestDefaultParamsValid(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1000, 4096} {
		if err := DefaultParams(n).Validate(); err != nil {
			t.Errorf("DefaultParams(%d): %v", n, err)
		}
	}
}

func TestParamsValidateErrors(t *testing.T) {
	base := DefaultParams(64)
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"tiny N", func(p *Params) { p.N = 1 }},
		{"zero committee", func(p *Params) { p.CommitteeSize = 0 }},
		{"committee over N", func(p *Params) { p.CommitteeSize = p.N + 1 }},
		{"one bin", func(p *Params) { p.Bins = 1 }},
		{"zero bits", func(p *Params) { p.StringBits = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestTreeRangesPartition(t *testing.T) {
	tree, err := NewTree(DefaultParams(1000))
	if err != nil {
		t.Fatal(err)
	}
	for level := 0; level <= tree.Depth(); level++ {
		covered := 0
		prevHi := 0
		for idx := 0; idx < 1<<level; idx++ {
			lo, hi := tree.Range(level, idx)
			if lo != prevHi {
				t.Fatalf("level %d: range %d starts at %d, want %d", level, idx, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != 1000 {
			t.Fatalf("level %d covers %d nodes", level, covered)
		}
	}
}

func TestTreeCommitteeProperties(t *testing.T) {
	p := DefaultParams(512)
	tree, err := NewTree(p)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() < 1 {
		t.Fatalf("depth %d too shallow for n=512", tree.Depth())
	}
	for level := 0; level <= tree.Depth(); level++ {
		for idx := 0; idx < 1<<level; idx++ {
			members := tree.Committee(level, idx)
			if len(members) != p.CommitteeSize {
				t.Fatalf("committee (%d,%d) has %d members", level, idx, len(members))
			}
			lo, hi := tree.Range(level, idx)
			seen := map[int]bool{}
			for _, m := range members {
				if m < lo || m >= hi {
					t.Fatalf("member %d outside range [%d,%d)", m, lo, hi)
				}
				if seen[m] {
					t.Fatalf("duplicate member %d in committee (%d,%d)", m, level, idx)
				}
				seen[m] = true
			}
		}
	}
}

func TestMembershipsConsistent(t *testing.T) {
	tree, err := NewTree(DefaultParams(256))
	if err != nil {
		t.Fatal(err)
	}
	// Every committee's members list the committee among their memberships.
	for level := 0; level <= tree.Depth(); level++ {
		for idx := 0; idx < 1<<level; idx++ {
			for _, m := range tree.Committee(level, idx) {
				found := false
				for _, cid := range tree.Memberships(m) {
					if cid.Level == level && cid.Index == idx {
						found = true
					}
				}
				if !found {
					t.Fatalf("node %d does not list committee (%d,%d)", m, level, idx)
				}
			}
		}
	}
}

func TestRunNoFaults(t *testing.T) {
	p := DefaultParams(256)
	res, err := Run(p, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.GString.IsZero() {
		t.Fatal("no ground-truth gstring produced")
	}
	if res.GString.Len() != p.StringBits {
		t.Fatalf("gstring has %d bits, want %d", res.GString.Len(), p.StringBits)
	}
	if res.KnowFrac != 1.0 {
		t.Fatalf("KnowFrac = %v without faults, want 1.0", res.KnowFrac)
	}
}

func TestRunGStringIsBalanced(t *testing.T) {
	// The elected segments are uniform, so across several runs the bit
	// balance must hover around 1/2.
	ones, total := 0, 0
	for seed := uint64(1); seed <= 10; seed++ {
		res, err := Run(DefaultParams(128), seed, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ones += res.GString.Ones()
		total += res.GString.Len()
	}
	frac := float64(ones) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("gstring bit balance %.3f; generation badly biased", frac)
	}
}

func TestRunGStringVariesAcrossSeeds(t *testing.T) {
	a, err := Run(DefaultParams(128), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultParams(128), 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.GString.Equal(b.GString) {
		t.Fatal("gstring identical across seeds")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(DefaultParams(128), 7, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultParams(128), 7, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.GString.Equal(b.GString) || a.KnowFrac != b.KnowFrac {
		t.Fatal("run not deterministic")
	}
}

func corruptMask(n int, frac float64, seed uint64) []bool {
	src := prng.New(seed)
	mask := make([]bool, n)
	for count := 0; count < int(frac*float64(n)); {
		id := src.Intn(n)
		if !mask[id] {
			mask[id] = true
			count++
		}
	}
	return mask
}

func TestRunWithSilentByzantine(t *testing.T) {
	p := DefaultParams(256)
	res, err := Run(p, 3, corruptMask(256, 0.1, 99), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.GString.IsZero() {
		t.Fatal("silent minority killed the election")
	}
	if res.KnowFrac < 0.75 {
		t.Fatalf("KnowFrac = %v below the 3/4 AER precondition", res.KnowFrac)
	}
}

func TestRunWithPoisonByzantine(t *testing.T) {
	p := DefaultParams(256)
	mask := corruptMask(256, 0.1, 99)
	mkByz, err := Poison(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, 3, mask, mkByz)
	if err != nil {
		t.Fatal(err)
	}
	if res.GString.IsZero() {
		t.Fatal("poison minority killed the election entirely")
	}
	// Almost-everywhere: the poisoner may cost some nodes but must leave
	// well over 3/4 of correct nodes knowledgeable.
	if res.KnowFrac < 0.75 {
		t.Fatalf("KnowFrac = %v under poison; below AER precondition", res.KnowFrac)
	}
}

func TestRunCommunicationPolylogPerNode(t *testing.T) {
	// Per-node mean bits must grow far slower than n.
	r128, err := Run(DefaultParams(128), 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r512, err := Run(DefaultParams(512), 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r512.Metrics.MeanSentBits() / r128.Metrics.MeanSentBits()
	if ratio > 3 {
		t.Fatalf("mean bits grew %.2fx for 4x nodes", ratio)
	}
}

func TestRunRejectsBadMask(t *testing.T) {
	if _, err := Run(DefaultParams(64), 1, make([]bool, 63), nil); err == nil {
		t.Fatal("mismatched corrupt mask accepted")
	}
}
