package ae

import (
	"sort"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// MsgElect is a root-committee member's election broadcast: its bin choice
// for Feige's lightest-bin election plus its private random segment.
type MsgElect struct {
	Bin uint32
	Seg bitstring.String
}

// WireSize returns the payload size in bytes.
func (m MsgElect) WireSize() int { return 4 + m.Seg.WireSize() }

// Kind returns the metric kind tag.
func (m MsgElect) Kind() string { return "elect" }

// MsgValue carries the string down the tree. Level/Index identify the
// *receiving* committee (or the leaf range when Level == depth+1).
type MsgValue struct {
	Level int32
	Index int32
	S     bitstring.String
}

// WireSize returns the payload size in bytes.
func (m MsgValue) WireSize() int { return 8 + m.S.WireSize() }

// Kind returns the metric kind tag.
func (m MsgValue) Kind() string { return "value" }

// Node is a correct participant of the almost-everywhere protocol. It is
// synchronous: per-round tallies happen in OnRoundEnd.
//
// Round schedule (tree depth D):
//
//	round 0 (Init): root members broadcast MsgElect within the committee.
//	tick 1:         root members run the election, obtain gstring, send
//	                MsgValue to both child committees (level 1).
//	tick k+1:       level-k committees adopt the majority of the values
//	                received from their parent and forward down; leaf
//	                committees (level D) fan out to their whole range.
//	tick D+2:       every node adopts the majority of the leaf values.
type Node struct {
	id   int
	p    Params
	tree *Tree
	rng  *prng.Source

	memberships map[CommitteeID]bool

	elects map[int]MsgElect               // root election: sender -> announcement
	values map[CommitteeID]map[int][]byte // committee -> sender -> candidate value key
	strs   map[string]bitstring.String    // value key -> string
	final  map[int][]byte                 // leaf fan-out: sender -> value key

	belief bitstring.String
	done   bool
	// rootValue is the election outcome computed locally by a root member
	// (zero elsewhere); the run harness uses the majority across correct
	// root members as the ground-truth gstring.
	rootValue bitstring.String
}

var _ simnet.Ticker = (*Node)(nil)

// NewNode builds a correct AE participant with its private randomness.
func NewNode(id int, p Params, tree *Tree, rng *prng.Source) *Node {
	n := &Node{
		id:          id,
		p:           p,
		tree:        tree,
		rng:         rng,
		memberships: make(map[CommitteeID]bool),
		elects:      make(map[int]MsgElect),
		values:      make(map[CommitteeID]map[int][]byte),
		strs:        make(map[string]bitstring.String),
		final:       make(map[int][]byte),
	}
	for _, cid := range tree.Memberships(id) {
		n.memberships[cid] = true
	}
	return n
}

// Belief returns the node's final belief about gstring (zero String if the
// protocol did not reach it).
func (n *Node) Belief() bitstring.String { return n.belief }

// Init implements simnet.Node: root members broadcast their election
// announcement.
func (n *Node) Init(ctx simnet.Context) {
	root := CommitteeID{Level: 0, Index: 0}
	if !n.memberships[root] {
		return
	}
	announce := MsgElect{
		Bin: uint32(n.rng.Intn(n.p.Bins)),
		Seg: bitstring.Random(n.rng, n.p.StringBits),
	}
	for _, peer := range n.tree.Committee(0, 0) {
		ctx.Send(peer, announce)
	}
}

// Deliver implements simnet.Node.
func (n *Node) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case MsgElect:
		// Only root members tally the election, and only announcements
		// from fellow root members count.
		if !n.memberships[CommitteeID{Level: 0, Index: 0}] {
			return
		}
		if !n.isMember(0, 0, from) {
			return
		}
		if _, dup := n.elects[from]; dup {
			return // equivocation within a round: first value wins
		}
		if msg.Seg.Len() != n.p.StringBits {
			return
		}
		// Clone: elects outlives this delivery and msg.Seg may be a
		// zero-copy view of a transport buffer (DESIGN.md §10).
		msg.Seg = msg.Seg.Clone()
		n.elects[from] = msg
	case MsgValue:
		n.onValue(from, msg)
	}
}

func (n *Node) onValue(from int, m MsgValue) {
	if m.S.Len() != n.p.StringBits {
		return
	}
	key := []byte(m.S.Key())
	// Clone: strs outlives this delivery and m.S may be a zero-copy view
	// of a transport buffer (DESIGN.md §10).
	n.strs[string(key)] = m.S.Clone()
	if int(m.Level) == n.tree.Depth()+1 {
		// Leaf fan-out to the whole range: sender must be a member of
		// this node's leaf committee.
		leafIdx := n.id * (1 << n.tree.Depth()) / n.p.N
		if !n.isMember(n.tree.Depth(), leafIdx, from) {
			return
		}
		if _, dup := n.final[from]; !dup {
			n.final[from] = key
		}
		return
	}
	cid := CommitteeID{Level: int(m.Level), Index: int(m.Index)}
	if !n.memberships[cid] {
		return
	}
	// The sender must belong to the parent committee.
	if cid.Level == 0 || !n.isMember(cid.Level-1, cid.Index/2, from) {
		return
	}
	bySender := n.values[cid]
	if bySender == nil {
		bySender = make(map[int][]byte)
		n.values[cid] = bySender
	}
	if _, dup := bySender[from]; !dup {
		bySender[from] = key
	}
}

// OnRoundEnd implements simnet.Ticker: the committee schedule.
func (n *Node) OnRoundEnd(ctx simnet.Context, round int) {
	depth := n.tree.Depth()
	switch {
	case round == 1:
		if n.memberships[CommitteeID{Level: 0, Index: 0}] {
			g := n.runElection()
			n.rootValue = g
			n.sendDown(ctx, 0, 0, g)
		}
	case round >= 2 && round <= depth+1:
		level := round - 1
		for cid := range n.memberships {
			if cid.Level != level {
				continue
			}
			if v, ok := n.majorityValue(n.values[cid]); ok {
				n.sendDown(ctx, level, cid.Index, v)
			}
		}
	case round == depth+2 && !n.done:
		n.done = true
		if v, ok := n.majorityValue(n.final); ok {
			n.belief = v
		}
	}
}

// runElection performs Feige's lightest-bin election over the announcements
// received (including this node's own, which Init broadcast to itself) and
// assembles gstring from the elected members' segments.
func (n *Node) runElection() bitstring.String {
	if len(n.elects) == 0 {
		return bitstring.String{}
	}
	// Tally bins over distinct announcers.
	counts := make(map[uint32]int)
	for _, e := range n.elects {
		counts[e.Bin%uint32(n.p.Bins)]++
	}
	// Lightest non-empty bin, lowest index on ties (deterministic).
	best := uint32(0)
	bestCount := -1
	for bin := uint32(0); bin < uint32(n.p.Bins); bin++ {
		c := counts[bin]
		if c == 0 {
			continue
		}
		if bestCount < 0 || c < bestCount {
			best, bestCount = bin, c
		}
	}
	// Elected members in ID order contribute contiguous chunks.
	var elected []int
	for id, e := range n.elects {
		if e.Bin%uint32(n.p.Bins) == best {
			elected = append(elected, id)
		}
	}
	sort.Ints(elected)
	bits := make([]byte, n.p.StringBits)
	chunk := (n.p.StringBits + len(elected) - 1) / len(elected)
	for i := range bits {
		member := elected[min(i/chunk, len(elected)-1)]
		seg := n.elects[member].Seg
		bits[i] = seg.Bit(i)
	}
	return bitstring.New(bits)
}

// sendDown forwards v from committee (level, idx) to both child committees,
// or to the entire supervised range when (level, idx) is a leaf.
func (n *Node) sendDown(ctx simnet.Context, level, idx int, v bitstring.String) {
	if v.IsZero() {
		return
	}
	depth := n.tree.Depth()
	if level == depth {
		lo, hi := n.tree.Range(level, idx)
		fan := MsgValue{Level: int32(depth + 1), Index: int32(idx), S: v}
		for node := lo; node < hi; node++ {
			ctx.Send(node, fan)
		}
		return
	}
	for childIdx := 2 * idx; childIdx <= 2*idx+1; childIdx++ {
		child := MsgValue{Level: int32(level + 1), Index: int32(childIdx), S: v}
		for _, member := range n.tree.Committee(level+1, childIdx) {
			ctx.Send(member, child)
		}
	}
}

// majorityValue returns the strict-majority value among the senders'
// reports, if one exists.
func (n *Node) majorityValue(bySender map[int][]byte) (bitstring.String, bool) {
	if len(bySender) == 0 {
		return bitstring.String{}, false
	}
	counts := make(map[string]int)
	for _, key := range bySender {
		counts[string(key)]++
	}
	for key, c := range counts {
		if 2*c > len(bySender) {
			return n.strs[key], true
		}
	}
	return bitstring.String{}, false
}

func (n *Node) isMember(level, idx, id int) bool {
	for _, member := range n.tree.Committee(level, idx) {
		if member == id {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
