package ae

import (
	"fmt"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// Result summarizes one almost-everywhere run.
type Result struct {
	// GString is the ground-truth global string: the strict-majority
	// election outcome among correct root-committee members (zero if they
	// diverged — a failed run).
	GString bitstring.String
	// Beliefs holds every node's final belief (zero = unknowing);
	// Byzantine positions carry whatever the run left there and are
	// ignored by the statistics.
	Beliefs []bitstring.String
	// KnowFrac is the fraction of correct nodes whose belief equals
	// GString — the "almost everywhere" guarantee (paper: ≥ 3/4 of correct
	// nodes are needed by AER; KSSV06 gives 1 − O(1/log n)).
	KnowFrac float64
	// Metrics is the communication metering of the run.
	Metrics *simnet.Metrics
}

// Run executes the committee-tree protocol over the synchronous runner.
// corrupt marks Byzantine nodes; mkByz builds them (nil = silent). The
// returned Result feeds core.Scenario via BeliefScenario-style assembly in
// the public API.
func Run(p Params, seed uint64, corrupt []bool, mkByz func(id int) simnet.Node) (*Result, error) {
	tree, err := NewTree(p)
	if err != nil {
		return nil, err
	}
	if corrupt == nil {
		corrupt = make([]bool, p.N)
	}
	if len(corrupt) != p.N {
		return nil, fmt.Errorf("ae: corrupt mask has %d entries for n=%d", len(corrupt), p.N)
	}

	nodes := make([]simnet.Node, p.N)
	correct := make([]*Node, p.N)
	for id := 0; id < p.N; id++ {
		if corrupt[id] {
			if mkByz != nil {
				nodes[id] = mkByz(id)
			} else {
				nodes[id] = silent{}
			}
			continue
		}
		n := NewNode(id, p, tree, prng.New(prng.DeriveKey(seed, "ae/node", uint64(id))))
		nodes[id] = n
		correct[id] = n
	}

	metrics := simnet.NewSync(nodes, corrupt).Run(tree.Depth() + 4)

	res := &Result{Beliefs: make([]bitstring.String, p.N), Metrics: metrics}

	// Ground truth: strict majority among correct root members' election
	// outcomes.
	counts := make(map[string]bitstring.String)
	tally := make(map[string]int)
	rootCorrect := 0
	for _, id := range tree.Committee(0, 0) {
		n := correct[id]
		if n == nil {
			continue
		}
		rootCorrect++
		if n.rootValue.IsZero() {
			continue
		}
		k := n.rootValue.Key()
		counts[k] = n.rootValue
		tally[k]++
	}
	for k, c := range tally {
		if 2*c > rootCorrect {
			res.GString = counts[k]
		}
	}

	knowing, correctCount := 0, 0
	for id := 0; id < p.N; id++ {
		n := correct[id]
		if n == nil {
			continue
		}
		correctCount++
		res.Beliefs[id] = n.Belief()
		if !res.GString.IsZero() && n.Belief().Equal(res.GString) {
			knowing++
		}
	}
	if correctCount > 0 {
		res.KnowFrac = float64(knowing) / float64(correctCount)
	}
	return res, nil
}

type silent struct{}

func (silent) Init(simnet.Context)                                   {}
func (silent) Deliver(simnet.Context, simnet.NodeID, simnet.Message) {}

// Poison returns a Byzantine maker for the AE protocol: members equivocate
// in the election (per-target different bins and segments) and inject
// per-target garbage values into every committee they sit in, attempting to
// poison subtrees.
func Poison(p Params, seed uint64) (func(id int) simnet.Node, error) {
	tree, err := NewTree(p)
	if err != nil {
		return nil, err
	}
	return func(id int) simnet.Node {
		return &poisonNode{
			id:   id,
			p:    p,
			tree: tree,
			rng:  prng.New(prng.DeriveKey(seed, "ae/poison", uint64(id))),
		}
	}, nil
}

type poisonNode struct {
	id   int
	p    Params
	tree *Tree
	rng  *prng.Source
}

var _ simnet.Ticker = (*poisonNode)(nil)

func (n *poisonNode) Init(ctx simnet.Context) {
	root := CommitteeID{Level: 0, Index: 0}
	for _, cid := range n.tree.Memberships(n.id) {
		if cid == root {
			// Equivocate: a different announcement per peer.
			for _, peer := range n.tree.Committee(0, 0) {
				ctx.Send(peer, MsgElect{
					Bin: uint32(n.rng.Intn(n.p.Bins)),
					Seg: bitstring.Random(n.rng, n.p.StringBits),
				})
			}
		}
	}
}

func (n *poisonNode) Deliver(simnet.Context, simnet.NodeID, simnet.Message) {}

func (n *poisonNode) OnRoundEnd(ctx simnet.Context, round int) {
	// Wherever the schedule would have us forward, send garbage instead —
	// per-target different strings to maximize divergence downstream.
	depth := n.tree.Depth()
	for _, cid := range n.tree.Memberships(n.id) {
		if cid.Level+1 != round {
			continue
		}
		if cid.Level == depth {
			lo, hi := n.tree.Range(cid.Level, cid.Index)
			for node := lo; node < hi; node++ {
				ctx.Send(node, MsgValue{
					Level: int32(depth + 1),
					Index: int32(cid.Index),
					S:     bitstring.Random(n.rng, n.p.StringBits),
				})
			}
			continue
		}
		for childIdx := 2 * cid.Index; childIdx <= 2*cid.Index+1; childIdx++ {
			for _, member := range n.tree.Committee(cid.Level+1, childIdx) {
				ctx.Send(member, MsgValue{
					Level: int32(cid.Level + 1),
					Index: int32(childIdx),
					S:     bitstring.Random(n.rng, n.p.StringBits),
				})
			}
		}
	}
}
