// Package baseline implements the comparison protocols of Figure 1:
//
//   - KLST11: a stylized *load-balanced* almost-everywhere-to-everywhere
//     protocol in the lineage of KS09/KLST11: every node queries Õ(√n)
//     uniformly random peers for their candidate and adopts the majority
//     reply. It preserves the baseline's defining costs — Õ(√n) bits per
//     node, constant rounds, load-balance (max ≈ mean) — which is what the
//     Figure 1(a) comparison is about. (The real KLST11 builds quorum
//     towers to achieve the same bound against worst-case adversaries; see
//     DESIGN.md for the substitution note.)
//   - Flood: the trivial everyone-broadcasts-to-everyone protocol —
//     Θ(n) bits per node, one round; the Θ(n²)-total-bits yardstick.
//   - Rabin: a Rabin'83/PR10-class randomized agreement with a trusted
//     common coin and all-to-all voting rounds: expected O(1) rounds,
//     Θ(n log n) bits per node (Θ(n² log n) total), tolerating t < n/4 —
//     the quadratic-communication class in Figure 1(b).
//
// All baselines run on the same core.Scenario populations as AER so
// communication and time are directly comparable, with silent Byzantine
// nodes (the baselines are yardsticks for cost, not attack surfaces).
package baseline

import (
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// Outcome mirrors core.Outcome for baseline runs.
type Outcome struct {
	Correct       int
	Decided       int
	DecidedG      int
	DecidedOther  int
	MaxDecisionAt int
}

// Agreement reports whether every correct node decided on gstring.
func (o Outcome) Agreement() bool {
	return o.Decided == o.Correct && o.DecidedG == o.Decided
}

// Result bundles a baseline run's outcome with its communication metering.
type Result struct {
	Outcome Outcome
	Metrics *simnet.Metrics
}

// decider is the common read-out interface of baseline nodes.
type decider interface {
	Decided() (bitstring.String, bool)
	DecidedAt() int
}

func evaluate(nodes []simnet.Node, corrupt []bool, gstring bitstring.String) Outcome {
	var o Outcome
	for id, n := range nodes {
		if corrupt[id] {
			continue
		}
		d, ok := n.(decider)
		if !ok {
			continue
		}
		o.Correct++
		v, decided := d.Decided()
		if !decided {
			continue
		}
		o.Decided++
		if v.Equal(gstring) {
			o.DecidedG++
		} else {
			o.DecidedOther++
		}
		if at := d.DecidedAt(); at > o.MaxDecisionAt {
			o.MaxDecisionAt = at
		}
	}
	return o
}

type silent struct{}

func (silent) Init(simnet.Context)                                   {}
func (silent) Deliver(simnet.Context, simnet.NodeID, simnet.Message) {}

// buildNodes assembles a baseline node vector over the scenario's
// population, with silent Byzantine slots.
func buildNodes(sc *core.Scenario, mk func(id int, initial bitstring.String) simnet.Node) []simnet.Node {
	nodes := make([]simnet.Node, sc.Params.N)
	for id := 0; id < sc.Params.N; id++ {
		if sc.Corrupt[id] {
			nodes[id] = silent{}
			continue
		}
		nodes[id] = mk(id, sc.Initial[id])
	}
	return nodes
}
