package baseline

import (
	"math"
	"testing"

	"github.com/fastba/fastba/internal/core"
)

func scenario(t *testing.T, n int, seed uint64) *core.Scenario {
	t.Helper()
	sc, err := core.NewScenario(core.DefaultParams(n), seed, core.TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestKLST11Agreement(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		res := RunKLST11(scenario(t, 128, seed))
		if !res.Outcome.Agreement() {
			t.Fatalf("seed %d: no agreement: %+v", seed, res.Outcome)
		}
		if res.Outcome.MaxDecisionAt > 2 {
			t.Fatalf("seed %d: decided at round %d, want ≤ 2", seed, res.Outcome.MaxDecisionAt)
		}
	}
}

func TestKLST11FanoutScalesAsRootN(t *testing.T) {
	// Õ(√n): fanout(4n)/fanout(n) ≈ 2 up to the log factor.
	f256, f1024 := KLST11Fanout(256), KLST11Fanout(1024)
	ratio := float64(f1024) / float64(f256)
	if ratio < 1.8 || ratio > 3.2 {
		t.Fatalf("fanout ratio %v for 4x nodes; want ≈ 2-2.5", ratio)
	}
	if f := KLST11Fanout(4); f > 3 {
		t.Fatalf("fanout %d exceeds n-1 for n=4", f)
	}
}

func TestKLST11IsLoadBalanced(t *testing.T) {
	// Figure 1(a) "Load-Balanced: Yes": the max/mean sent-bits ratio stays
	// close to 1.
	res := RunKLST11(scenario(t, 256, 5))
	maxBits := float64(res.Metrics.MaxSentBits())
	meanBits := res.Metrics.MeanSentBits()
	if maxBits/meanBits > 2.5 {
		t.Fatalf("load imbalance %v; baseline should be balanced", maxBits/meanBits)
	}
}

func TestKLST11BitsScaleAsRootN(t *testing.T) {
	r64 := RunKLST11(scenario(t, 64, 7))
	r1024 := RunKLST11(scenario(t, 1024, 7))
	ratio := r1024.Metrics.MeanSentBits() / r64.Metrics.MeanSentBits()
	// √(1024/64) = 4, times log factor 10/6 ≈ 1.7 → ≈ 6.7; far below the
	// 16x a linear protocol would show.
	if ratio > 12 {
		t.Fatalf("mean bits grew %.1fx for 16x nodes; not Õ(√n)", ratio)
	}
	if ratio < 2 {
		t.Fatalf("mean bits grew only %.1fx; fanout not scaling", ratio)
	}
}

func TestFloodAgreementOneRound(t *testing.T) {
	res := RunFlood(scenario(t, 128, 3))
	if !res.Outcome.Agreement() {
		t.Fatalf("flood failed: %+v", res.Outcome)
	}
	if res.Outcome.MaxDecisionAt != 1 {
		t.Fatalf("flood decided at round %d, want 1", res.Outcome.MaxDecisionAt)
	}
}

func TestFloodBitsLinearPerNode(t *testing.T) {
	r64 := RunFlood(scenario(t, 64, 3))
	r256 := RunFlood(scenario(t, 256, 3))
	ratio := r256.Metrics.MeanSentBits() / r64.Metrics.MeanSentBits()
	if math.Abs(ratio-4) > 1.2 {
		t.Fatalf("flood mean bits grew %.2fx for 4x nodes; want ≈ 4x", ratio)
	}
}

func TestRabinAgreementFast(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		res := RunRabin(scenario(t, 96, seed), 0)
		if !res.Outcome.Agreement() {
			t.Fatalf("seed %d: rabin failed: %+v", seed, res.Outcome)
		}
		if res.Outcome.MaxDecisionAt > 3 {
			t.Fatalf("seed %d: rabin took %d rounds with a strong majority", seed, res.Outcome.MaxDecisionAt)
		}
	}
}

func TestRabinBitsQuadraticTotal(t *testing.T) {
	r64 := RunRabin(scenario(t, 64, 5), 0)
	r256 := RunRabin(scenario(t, 256, 5), 0)
	ratio := float64(r256.Metrics.TotalSentBits()) / float64(r64.Metrics.TotalSentBits())
	// Θ(n²·|s|) with |s| = Θ(log n): 16x from n², ~1.3x from the string.
	if ratio < 10 || ratio > 40 {
		t.Fatalf("rabin total bits grew %.1fx for 4x nodes; want ≈ 16-24x", ratio)
	}
}

func TestAERGrowsSlowerThanFlood(t *testing.T) {
	// The reproducible shape of Figure 1 at simulation scale is the growth
	// *rate*: AER's per-node bits are polylog (≈ log⁴ n with this
	// implementation's constants — see EXPERIMENTS.md), so quadrupling n
	// must grow them far less than the ≈ 4x of the Θ(n)-per-node flood.
	// The absolute crossover sits beyond simulatable n — exactly why the
	// paper's evaluation is analytic.
	if testing.Short() {
		t.Skip("cross-protocol comparison")
	}
	aerBits := func(n int) float64 {
		sc := scenario(t, n, 9)
		nodes, correct := sc.Build(nil)
		m := simnetSyncRun(nodes, sc)
		if o := core.Evaluate(correct, sc.GString); !o.Agreement() {
			t.Fatalf("AER failed at n=%d: %+v", n, o)
		}
		return m.MeanSentBits()
	}
	aerRatio := aerBits(384) / aerBits(96)
	floodRatio := RunFlood(scenario(t, 384, 9)).Metrics.MeanSentBits() /
		RunFlood(scenario(t, 96, 9)).Metrics.MeanSentBits()
	if aerRatio >= floodRatio {
		t.Fatalf("AER per-node bits grew %.2fx for 4x nodes vs flood's %.2fx; polylog shape lost",
			aerRatio, floodRatio)
	}
	if aerRatio > 3.2 {
		t.Fatalf("AER per-node bits grew %.2fx for 4x nodes; exceeds polylog envelope", aerRatio)
	}
}

func TestOutcomeAgreementHelper(t *testing.T) {
	o := Outcome{Correct: 3, Decided: 3, DecidedG: 3}
	if !o.Agreement() {
		t.Fatal("full agreement not recognized")
	}
	o.DecidedG = 2
	o.DecidedOther = 1
	if o.Agreement() {
		t.Fatal("divergent decision counted as agreement")
	}
}
