package baseline

import (
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// MsgBcast is the flood baseline's broadcast of a candidate.
type MsgBcast struct {
	S bitstring.String
}

// WireSize returns the payload size in bytes.
func (m MsgBcast) WireSize() int { return m.S.WireSize() }

// Kind returns the metric kind tag.
func (m MsgBcast) Kind() string { return "bcast" }

// RunFlood executes the trivial baseline: every node broadcasts its
// candidate to everyone and adopts the majority at the end of round 1.
// Θ(n) bits per node, Θ(n²) total, one round — the yardstick against which
// both AER and the √n baseline are measured.
func RunFlood(sc *core.Scenario) *Result {
	nodes := buildNodes(sc, func(id int, initial bitstring.String) simnet.Node {
		return &floodNode{id: id, n: sc.Params.N, initial: initial, heard: make(map[int]bitstring.String)}
	})
	metrics := simnet.NewSync(nodes, sc.Corrupt).Run(4)
	return &Result{Outcome: evaluate(nodes, sc.Corrupt, sc.GString), Metrics: metrics}
}

type floodNode struct {
	id      int
	n       int
	initial bitstring.String

	heard     map[int]bitstring.String
	decided   bitstring.String
	done      bool
	decidedAt int
}

var _ simnet.Ticker = (*floodNode)(nil)

// Decided implements the baseline decider read-out.
func (f *floodNode) Decided() (bitstring.String, bool) { return f.decided, f.done }

// DecidedAt returns the decision round, or -1.
func (f *floodNode) DecidedAt() int {
	if !f.done {
		return -1
	}
	return f.decidedAt
}

func (f *floodNode) Init(ctx simnet.Context) {
	if f.initial.IsZero() {
		return
	}
	for peer := 0; peer < f.n; peer++ {
		if peer != f.id {
			ctx.Send(peer, MsgBcast{S: f.initial})
		}
	}
	f.heard[f.id] = f.initial
}

func (f *floodNode) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	if b, ok := m.(MsgBcast); ok {
		if _, dup := f.heard[from]; !dup {
			// Clone: heard outlives this delivery and b.S may be a
			// zero-copy view of a transport buffer (DESIGN.md §10).
			f.heard[from] = b.S.Clone()
		}
	}
}

func (f *floodNode) OnRoundEnd(ctx simnet.Context, round int) {
	if round != 1 || f.done {
		return
	}
	counts := make(map[string]int)
	vals := make(map[string]bitstring.String)
	for _, s := range f.heard {
		counts[s.Key()]++
		vals[s.Key()] = s
	}
	for key, c := range counts {
		if 2*c > len(f.heard) {
			f.decided = vals[key]
			f.done = true
			f.decidedAt = round
		}
	}
}
