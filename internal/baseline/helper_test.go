package baseline

import (
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// simnetSyncRun runs an assembled AER node vector synchronously (test
// helper shared by comparison tests).
func simnetSyncRun(nodes []simnet.Node, sc *core.Scenario) *simnet.Metrics {
	return simnet.NewSync(nodes, sc.Corrupt).Run(60)
}
