package baseline

import (
	"math"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// MsgQuery asks a peer for its current candidate.
type MsgQuery struct{}

// WireSize returns the payload size in bytes.
func (MsgQuery) WireSize() int { return 1 }

// Kind returns the metric kind tag.
func (MsgQuery) Kind() string { return "query" }

// MsgReply returns the replier's candidate.
type MsgReply struct {
	S bitstring.String
}

// WireSize returns the payload size in bytes.
func (m MsgReply) WireSize() int { return m.S.WireSize() }

// Kind returns the metric kind tag.
func (m MsgReply) Kind() string { return "reply" }

// KLST11Fanout returns the per-node sample size used by the stylized
// load-balanced baseline: ⌈√n · log₂(n)/2⌉ — the Õ(√n) communication
// signature of KS09/KLST11.
func KLST11Fanout(n int) int {
	lg := math.Log2(float64(n))
	k := int(math.Ceil(math.Sqrt(float64(n)) * lg / 2))
	if k < 8 {
		k = 8
	}
	if k > n-1 {
		k = n - 1
	}
	return k
}

// RunKLST11 executes the load-balanced baseline on the scenario's
// population over the synchronous runner: every correct node queries
// KLST11Fanout(n) distinct random peers, every correct peer replies with
// its initial candidate, and queriers adopt the majority reply at the end
// of round 2.
func RunKLST11(sc *core.Scenario) *Result {
	nodes := buildNodes(sc, func(id int, initial bitstring.String) simnet.Node {
		return &klstNode{
			id:      id,
			n:       sc.Params.N,
			fanout:  KLST11Fanout(sc.Params.N),
			initial: initial,
			rng:     sc.NodeRNG(id),
			replies: make(map[int]bitstring.String),
		}
	})
	metrics := simnet.NewSync(nodes, sc.Corrupt).Run(6)
	return &Result{Outcome: evaluate(nodes, sc.Corrupt, sc.GString), Metrics: metrics}
}

type klstNode struct {
	id      int
	n       int
	fanout  int
	initial bitstring.String
	rng     *prng.Source

	queried   map[int]bool
	replies   map[int]bitstring.String
	decided   bitstring.String
	done      bool
	decidedAt int
}

var _ simnet.Ticker = (*klstNode)(nil)

// Decided implements the baseline decider read-out.
func (k *klstNode) Decided() (bitstring.String, bool) { return k.decided, k.done }

// DecidedAt returns the decision round, or -1.
func (k *klstNode) DecidedAt() int {
	if !k.done {
		return -1
	}
	return k.decidedAt
}

func (k *klstNode) Init(ctx simnet.Context) {
	k.queried = make(map[int]bool, k.fanout)
	for len(k.queried) < k.fanout {
		peer := k.rng.Intn(k.n)
		if peer == k.id || k.queried[peer] {
			continue
		}
		k.queried[peer] = true
		ctx.Send(peer, MsgQuery{})
	}
}

func (k *klstNode) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case MsgQuery:
		if !k.initial.IsZero() {
			ctx.Send(from, MsgReply{S: k.initial})
		}
	case MsgReply:
		if !k.queried[from] {
			return // unsolicited reply
		}
		if _, dup := k.replies[from]; !dup {
			// Clone: replies outlives this delivery and msg.S may be a
			// zero-copy view of a transport buffer (DESIGN.md §10).
			k.replies[from] = msg.S.Clone()
		}
	}
}

// OnRoundEnd decides at the end of round 2, when all replies of a
// synchronous execution have arrived.
func (k *klstNode) OnRoundEnd(ctx simnet.Context, round int) {
	if round != 2 || k.done {
		return
	}
	counts := make(map[string]int)
	vals := make(map[string]bitstring.String)
	for _, s := range k.replies {
		counts[s.Key()]++
		vals[s.Key()] = s
	}
	best, bestCount := "", 0
	for key, c := range counts {
		if c > bestCount {
			best, bestCount = key, c
		}
	}
	if bestCount*2 > len(k.replies) {
		k.decided = vals[best]
		k.done = true
		k.decidedAt = round
	}
}
