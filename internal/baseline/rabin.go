package baseline

import (
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// MsgVote is one all-to-all voting round of the Rabin-class agreement.
type MsgVote struct {
	Round int32
	S     bitstring.String
}

// WireSize returns the payload size in bytes.
func (m MsgVote) WireSize() int { return 4 + m.S.WireSize() }

// Kind returns the metric kind tag.
func (m MsgVote) Kind() string { return "vote" }

// RunRabin executes the Rabin'83/PR10-class randomized agreement:
// all-to-all voting rounds with a trusted-dealer common coin.
//
// Per round, every undecided node broadcasts its value; at the round end
// it tallies the votes received:
//
//   - ≥ 2/3 of the votes for one value → decide it (and broadcast it one
//     final round so stragglers catch up);
//   - ≥ 1/2 → adopt it;
//   - otherwise the common coin decides whether to keep the plurality
//     value or reset to the zero value.
//
// With private channels and t < n/4 this class decides in expected O(1)
// rounds at Θ(n² log n) total bits — the [PR10] row of Figure 1(b). The
// coin is modelled as a pre-shared random sequence (Rabin's trusted
// dealer), derived here from the public seed.
func RunRabin(sc *core.Scenario, maxRounds int) *Result {
	if maxRounds <= 0 {
		maxRounds = 12
	}
	coin := prng.New(prng.DeriveKey(sc.Seed, "baseline/rabin/coin", 0))
	coins := make([]bool, maxRounds+1)
	for i := range coins {
		coins[i] = coin.Bool()
	}
	nodes := buildNodes(sc, func(id int, initial bitstring.String) simnet.Node {
		return &rabinNode{
			id:      id,
			n:       sc.Params.N,
			value:   initial,
			coins:   coins,
			votes:   make(map[int32]map[int]bitstring.String),
			maxRnds: maxRounds,
		}
	})
	metrics := simnet.NewSync(nodes, sc.Corrupt).Run(maxRounds + 2)
	return &Result{Outcome: evaluate(nodes, sc.Corrupt, sc.GString), Metrics: metrics}
}

type rabinNode struct {
	id      int
	n       int
	value   bitstring.String
	coins   []bool
	maxRnds int

	votes     map[int32]map[int]bitstring.String
	decided   bitstring.String
	done      bool
	decidedAt int
	finalSent bool
}

var _ simnet.Ticker = (*rabinNode)(nil)

// Decided implements the baseline decider read-out.
func (r *rabinNode) Decided() (bitstring.String, bool) { return r.decided, r.done }

// DecidedAt returns the decision round, or -1.
func (r *rabinNode) DecidedAt() int {
	if !r.done {
		return -1
	}
	return r.decidedAt
}

func (r *rabinNode) Init(ctx simnet.Context) {
	r.broadcast(ctx, 1, r.value)
}

func (r *rabinNode) broadcast(ctx simnet.Context, round int32, v bitstring.String) {
	if v.IsZero() {
		return
	}
	msg := MsgVote{Round: round, S: v}
	for peer := 0; peer < r.n; peer++ {
		if peer != r.id {
			ctx.Send(peer, msg)
		}
	}
	byRound := r.votes[round]
	if byRound == nil {
		byRound = make(map[int]bitstring.String)
		r.votes[round] = byRound
	}
	byRound[r.id] = v
}

func (r *rabinNode) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	v, ok := m.(MsgVote)
	if !ok {
		return
	}
	byRound := r.votes[v.Round]
	if byRound == nil {
		byRound = make(map[int]bitstring.String)
		r.votes[v.Round] = byRound
	}
	if _, dup := byRound[from]; !dup {
		// Clone: votes outlives this delivery and v.S may be a zero-copy
		// view of a transport buffer (DESIGN.md §10).
		byRound[from] = v.S.Clone()
	}
}

func (r *rabinNode) OnRoundEnd(ctx simnet.Context, round int) {
	if round > r.maxRnds {
		return
	}
	if r.done {
		// One final supporting broadcast, then silence.
		if !r.finalSent {
			r.finalSent = true
			r.broadcast(ctx, int32(round+1), r.decided)
		}
		return
	}
	byRound := r.votes[int32(round)]
	counts := make(map[string]int)
	vals := make(map[string]bitstring.String)
	for _, s := range byRound {
		counts[s.Key()]++
		vals[s.Key()] = s
	}
	best, bestCount := "", 0
	for key, c := range counts {
		if c > bestCount {
			best, bestCount = key, c
		}
	}
	total := len(byRound)
	switch {
	case total > 0 && 3*bestCount >= 2*total:
		r.decided = vals[best]
		r.done = true
		r.decidedAt = round
	case total > 0 && 2*bestCount > total:
		r.value = vals[best]
	default:
		// Common coin: heads keeps the plurality value, tails resets to
		// the zero value (abstain next round).
		if round < len(r.coins) && r.coins[round] && bestCount > 0 {
			r.value = vals[best]
		} else {
			r.value = bitstring.String{}
		}
	}
	if !r.done {
		r.broadcast(ctx, int32(round+1), r.value)
	}
}
