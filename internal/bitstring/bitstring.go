// Package bitstring implements the candidate strings exchanged by the
// protocols: fixed-length bit strings in the agreement domain D.
//
// The paper requires gstring to be c·log n bits long with at least a
// 2/3 + ε fraction of uniformly random bits (the adversary may fix the
// rest). This package provides the representation, deterministic random
// generation with a controlled adversarial fraction, wire encoding, and the
// bit-level statistics used by the experiment harness.
package bitstring

import (
	"encoding/hex"
	"fmt"
	"strings"
	"unsafe"

	"github.com/fastba/fastba/internal/prng"
)

// String is an immutable bit string. The zero value is the empty string.
// Strings are compared by value; Key() returns a form usable as a map key.
type String struct {
	bits int
	data string // packed bits, little-endian within bytes; immutable
}

// New packs the given bits (each byte is 0 or 1) into a String.
func New(bits []byte) String {
	data := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			data[i/8] |= 1 << (i % 8)
		}
	}
	return String{bits: len(bits), data: string(data)}
}

// FromBytes builds a String of nbits bits from packed little-endian bytes.
// Excess bits in the final byte are cleared so equal strings compare equal.
func FromBytes(packed []byte, nbits int) (String, error) {
	need := (nbits + 7) / 8
	if nbits < 0 || len(packed) < need {
		return String{}, fmt.Errorf("bitstring: %d bytes cannot hold %d bits", len(packed), nbits)
	}
	data := make([]byte, need)
	copy(data, packed[:need])
	if rem := nbits % 8; rem != 0 && need > 0 {
		data[need-1] &= byte(1<<rem) - 1
	}
	return String{bits: nbits, data: string(data)}, nil
}

// View builds a String of nbits bits whose data ALIASES packed instead of
// copying it — the zero-copy decode path of internal/wire. The returned
// String is only valid while packed's contents are stable; callers that
// retain it past that window must Clone it first (see Clone). When the
// excess bits of the final byte are not already clear, the input is not
// canonical and View falls back to a masking copy (FromBytes), so equal
// strings always compare equal regardless of which constructor built them.
func View(packed []byte, nbits int) (String, error) {
	need := (nbits + 7) / 8
	if nbits < 0 || len(packed) < need {
		return String{}, fmt.Errorf("bitstring: %d bytes cannot hold %d bits", len(packed), nbits)
	}
	if need == 0 {
		return String{bits: nbits}, nil
	}
	if rem := nbits % 8; rem != 0 && packed[need-1]&^(byte(1<<rem)-1) != 0 {
		return FromBytes(packed, nbits) // non-canonical tail: copy and mask
	}
	return String{bits: nbits, data: unsafe.String(&packed[0], need)}, nil
}

// Random returns a uniformly random String of nbits bits drawn from src.
func Random(src *prng.Source, nbits int) String {
	data := make([]byte, (nbits+7)/8)
	for i := 0; i < len(data); i += 8 {
		v := src.Uint64()
		for j := 0; j < 8 && i+j < len(data); j++ {
			data[i+j] = byte(v >> (8 * j))
		}
	}
	s, err := FromBytes(data, nbits)
	if err != nil {
		panic("bitstring: internal: " + err.Error()) // unreachable: buffer sized above
	}
	return s
}

// PartiallyAdversarial returns a String of nbits bits in which the first
// ⌊advFrac·nbits⌋ bits are fixed to the adversary's choice adv (cyclically)
// and the remaining bits are uniform from src. It models the paper's
// assumption that gstring has a 2/3+ε fraction of uniformly random bits,
// with the adversary generating the remaining 1/3−ε fraction.
func PartiallyAdversarial(src *prng.Source, nbits int, advFrac float64, adv byte) String {
	if advFrac < 0 {
		advFrac = 0
	}
	if advFrac > 1 {
		advFrac = 1
	}
	advBits := int(advFrac * float64(nbits))
	bits := make([]byte, nbits)
	for i := 0; i < advBits; i++ {
		bits[i] = (adv >> (i % 8)) & 1
	}
	for i := advBits; i < nbits; i++ {
		if src.Uint64()&1 == 1 {
			bits[i] = 1
		}
	}
	return New(bits)
}

// Len returns the length in bits.
func (s String) Len() int { return s.bits }

// IsZero reports whether s is the zero (empty) String.
func (s String) IsZero() bool { return s.bits == 0 }

// Bit returns bit i (0 or 1). It panics if i is out of range.
func (s String) Bit(i int) byte {
	if i < 0 || i >= s.bits {
		panic("bitstring: Bit index out of range")
	}
	return (s.data[i/8] >> (i % 8)) & 1
}

// Key returns a value that uniquely identifies s and is usable as a map
// key. Two strings have equal keys iff they are equal. Key allocates a
// fresh string per call; hot paths should use MapKey (or an intern.Table)
// instead.
func (s String) Key() string {
	return string(rune(s.bits)) + s.data
}

// MapKey is a comparable identifier of a String for use as a map key.
// Unlike Key, constructing a MapKey performs no allocation: it reuses the
// String's immutable backing data. Two strings have equal MapKeys iff they
// are equal.
type MapKey struct {
	bits int
	data string
}

// MapKey returns the allocation-free map key for s.
func (s String) MapKey() MapKey { return MapKey{bits: s.bits, data: s.data} }

// Equal reports value equality.
func (s String) Equal(o String) bool {
	return s.bits == o.bits && s.data == o.data
}

// Clone returns a copy of s whose backing data is freshly allocated.
// Strings built by New/FromBytes already own their data and never need
// cloning; Clone exists for strings built by View, whose data aliases a
// transport buffer that is recycled after delivery — any state that
// outlives the delivery must retain the clone, not the view (the
// zero-copy ownership rule, DESIGN.md §10).
func (s String) Clone() String {
	return String{bits: s.bits, data: strings.Clone(s.data)}
}

// Bytes returns the packed little-endian byte representation (a copy).
func (s String) Bytes() []byte {
	return []byte(s.data)
}

// Hash64 returns a 64-bit mix of the string contents, used to derive
// sampler keys I(s, ·), H(s, ·) from the string itself.
func (s String) Hash64() uint64 {
	h := uint64(s.bits) * 0x9e3779b97f4a7c15
	for i := 0; i < len(s.data); i += 8 {
		var v uint64
		for j := 0; j < 8 && i+j < len(s.data); j++ {
			v |= uint64(s.data[i+j]) << (8 * j)
		}
		h = prng.Hash2(h, v)
	}
	return prng.Mix64(h)
}

// Ones returns the number of set bits (used by bias statistics).
func (s String) Ones() int {
	total := 0
	for i := 0; i < s.bits; i++ {
		total += int(s.Bit(i))
	}
	return total
}

// WireSize returns the number of bytes the string occupies on the wire
// (2-byte length prefix plus packed payload); used by the bit-metering.
func (s String) WireSize() int { return 2 + len(s.data) }

// String implements fmt.Stringer with a short hex rendering.
func (s String) String() string {
	if s.bits == 0 {
		return "ε"
	}
	h := hex.EncodeToString([]byte(s.data))
	if len(h) > 16 {
		h = h[:16] + "…"
	}
	return fmt.Sprintf("%s/%db", h, s.bits)
}

// XOR returns the bitwise XOR of two equal-length strings. It panics on
// length mismatch (caller bug).
func XOR(a, b String) String {
	if a.bits != b.bits {
		panic("bitstring: XOR length mismatch")
	}
	data := make([]byte, len(a.data))
	for i := range data {
		data[i] = a.data[i] ^ b.data[i]
	}
	return String{bits: a.bits, data: string(data)}
}

// Concat concatenates the given strings in order.
func Concat(parts ...String) String {
	total := 0
	for _, p := range parts {
		total += p.bits
	}
	bits := make([]byte, 0, total)
	for _, p := range parts {
		for i := 0; i < p.bits; i++ {
			bits = append(bits, p.Bit(i))
		}
	}
	return New(bits)
}
