package bitstring

import (
	"testing"
	"testing/quick"

	"github.com/fastba/fastba/internal/prng"
)

func TestNewAndBit(t *testing.T) {
	s := New([]byte{1, 0, 1, 1, 0, 0, 0, 1, 1})
	if s.Len() != 9 {
		t.Fatalf("Len = %d, want 9", s.Len())
	}
	want := []byte{1, 0, 1, 1, 0, 0, 0, 1, 1}
	for i, w := range want {
		if got := s.Bit(i); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestFromBytesMasksExcessBits(t *testing.T) {
	a, err := FromBytes([]byte{0xff}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := New([]byte{1, 1, 1})
	if !a.Equal(b) {
		t.Fatalf("FromBytes(0xff, 3) = %v, want %v", a, b)
	}
}

func TestFromBytesShortBuffer(t *testing.T) {
	if _, err := FromBytes([]byte{0xff}, 9); err == nil {
		t.Fatal("expected error for short buffer")
	}
	if _, err := FromBytes(nil, -1); err == nil {
		t.Fatal("expected error for negative length")
	}
}

func TestKeyUniqueness(t *testing.T) {
	// Strings with different lengths but identical padding must differ.
	a := New([]byte{1, 0, 1})
	b := New([]byte{1, 0, 1, 0})
	if a.Key() == b.Key() {
		t.Fatal("keys collide across lengths")
	}
	if a.Equal(b) {
		t.Fatal("Equal ignores length")
	}
}

func TestRandomDeterminism(t *testing.T) {
	s1 := Random(prng.New(9), 64)
	s2 := Random(prng.New(9), 64)
	if !s1.Equal(s2) {
		t.Fatal("Random is not deterministic for equal seeds")
	}
	s3 := Random(prng.New(10), 64)
	if s1.Equal(s3) {
		t.Fatal("Random is seed-insensitive")
	}
}

func TestRandomBalance(t *testing.T) {
	src := prng.New(123)
	const nbits = 10000
	s := Random(src, nbits)
	ones := s.Ones()
	if ones < nbits*45/100 || ones > nbits*55/100 {
		t.Fatalf("random string has %d/%d ones; badly biased", ones, nbits)
	}
}

func TestPartiallyAdversarial(t *testing.T) {
	src := prng.New(77)
	s := PartiallyAdversarial(src, 90, 1.0/3, 0x00)
	// First 30 bits fixed to zero.
	for i := 0; i < 30; i++ {
		if s.Bit(i) != 0 {
			t.Fatalf("adversarial bit %d = %d, want 0", i, s.Bit(i))
		}
	}
	// Remaining 60 bits should not be all zero (probability 2^-60).
	rest := 0
	for i := 30; i < 90; i++ {
		rest += int(s.Bit(i))
	}
	if rest == 0 {
		t.Fatal("random suffix is all zeros")
	}
}

func TestPartiallyAdversarialClamps(t *testing.T) {
	src := prng.New(5)
	if s := PartiallyAdversarial(src, 16, -1, 0); s.Len() != 16 {
		t.Fatal("negative fraction mishandled")
	}
	s := PartiallyAdversarial(src, 16, 2, 0xff)
	for i := 0; i < 16; i++ {
		if s.Bit(i) != 1 {
			t.Fatal("fraction > 1 should fix every bit")
		}
	}
}

func TestHash64Distinguishes(t *testing.T) {
	src := prng.New(4)
	seen := make(map[uint64]String)
	for i := 0; i < 2000; i++ {
		s := Random(src, 64)
		h := s.Hash64()
		if prev, ok := seen[h]; ok && !prev.Equal(s) {
			t.Fatalf("Hash64 collision between %v and %v", prev, s)
		}
		seen[h] = s
	}
}

func TestXOR(t *testing.T) {
	a := New([]byte{1, 0, 1, 0})
	b := New([]byte{1, 1, 0, 0})
	got := XOR(a, b)
	want := New([]byte{0, 1, 1, 0})
	if !got.Equal(want) {
		t.Fatalf("XOR = %v, want %v", got, want)
	}
}

func TestXORPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XOR with mismatched lengths did not panic")
		}
	}()
	XOR(New([]byte{1}), New([]byte{1, 0}))
}

func TestConcat(t *testing.T) {
	a := New([]byte{1, 0, 1})
	b := New([]byte{0, 0, 1, 1})
	c := Concat(a, b)
	if c.Len() != 7 {
		t.Fatalf("Concat length %d, want 7", c.Len())
	}
	want := []byte{1, 0, 1, 0, 0, 1, 1}
	for i, w := range want {
		if c.Bit(i) != w {
			t.Errorf("Concat bit %d = %d, want %d", i, c.Bit(i), w)
		}
	}
}

func TestWireSize(t *testing.T) {
	s := New(make([]byte, 33))
	if got := s.WireSize(); got != 2+5 {
		t.Fatalf("WireSize = %d, want 7", got)
	}
}

func TestStringRendering(t *testing.T) {
	var zero String
	if zero.String() != "ε" {
		t.Fatalf("zero String() = %q", zero.String())
	}
	if !zero.IsZero() {
		t.Fatal("IsZero false for zero value")
	}
	s := New([]byte{1})
	if s.IsZero() || s.String() == "" {
		t.Fatal("non-zero string misrendered")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []byte, lenSeed uint8) bool {
		nbits := len(raw) * 8
		if nbits == 0 {
			return true
		}
		nbits = 1 + int(lenSeed)%nbits
		s, err := FromBytes(raw, nbits)
		if err != nil {
			return false
		}
		s2, err := FromBytes(s.Bytes(), nbits)
		return err == nil && s.Equal(s2) && s.Key() == s2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConcatLength(t *testing.T) {
	src := prng.New(8)
	f := func(a8, b8 uint8) bool {
		a := Random(src, int(a8)%100)
		b := Random(src, int(b8)%100)
		c := Concat(a, b)
		if c.Len() != a.Len()+b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if c.Bit(i) != a.Bit(i) {
				return false
			}
		}
		for i := 0; i < b.Len(); i++ {
			if c.Bit(a.Len()+i) != b.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
