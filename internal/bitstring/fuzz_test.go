package bitstring

import "testing"

// FuzzFromBytes checks that arbitrary buffers either error or produce a
// string that round-trips through Bytes/FromBytes with a stable Key.
func FuzzFromBytes(f *testing.F) {
	f.Add([]byte{0xff, 0x01}, 9)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xaa}, 3)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		s, err := FromBytes(data, nbits)
		if err != nil {
			return
		}
		if s.Len() != nbits {
			t.Fatalf("Len %d != %d", s.Len(), nbits)
		}
		s2, err := FromBytes(s.Bytes(), nbits)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !s.Equal(s2) || s.Key() != s2.Key() || s.Hash64() != s2.Hash64() {
			t.Fatal("round trip not stable")
		}
		for i := 0; i < s.Len(); i++ {
			if b := s.Bit(i); b > 1 {
				t.Fatalf("Bit(%d) = %d", i, b)
			}
		}
	})
}
