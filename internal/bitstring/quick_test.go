package bitstring

import (
	"testing"
	"testing/quick"
)

// Property-based tests: Set and Bitset are checked against the obvious
// map model over randomized operation sequences, so the allocation-lean
// implementations cannot silently drift from set semantics.

// setOps interprets a random value stream as Add operations on both the
// Set under test and a map model, checking every intermediate answer.
func setOps(values []uint8) bool {
	var s Set
	model := map[int]bool{}
	var order []int
	for _, raw := range values {
		v := int(raw % 64)
		added := s.Add(v)
		if added == model[v] {
			return false // Add must report "newly added" exactly when the model lacks v
		}
		if !model[v] {
			model[v] = true
			order = append(order, v)
		}
		if !s.Contains(v) {
			return false
		}
		if s.Len() != len(model) {
			return false
		}
	}
	// Membership agrees over the whole domain.
	for v := 0; v < 64; v++ {
		if s.Contains(v) != model[v] {
			return false
		}
	}
	// ForEach yields exactly the members, in first-insertion order.
	var seen []int
	s.ForEach(func(v int) { seen = append(seen, v) })
	if len(seen) != len(order) {
		return false
	}
	for i := range seen {
		if seen[i] != order[i] {
			return false
		}
	}
	// Reset empties without disturbing reuse.
	s.Reset()
	return s.Len() == 0 && !s.Contains(order2(order))
}

// order2 picks an arbitrary previously-present member (or 0).
func order2(order []int) int {
	if len(order) == 0 {
		return 0
	}
	return order[0]
}

func TestQuickSetMatchesMapModel(t *testing.T) {
	if err := quick.Check(setOps, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// bitsetOps does the same for Bitset, including the maintained population
// count against a full recount.
func bitsetOps(values []uint16) bool {
	var b Bitset
	model := map[int]bool{}
	for _, raw := range values {
		v := int(raw % 1024) // spans multiple words, forces growth
		set := b.Set(v)
		if set == model[v] {
			return false
		}
		model[v] = true
		if !b.Get(v) {
			return false
		}
		if b.Count() != len(model) {
			return false
		}
		if b.Count() != b.recount() {
			return false
		}
	}
	for v := 0; v < 1024; v++ {
		if b.Get(v) != model[v] {
			return false
		}
	}
	// Out-of-domain reads are clear, never a panic.
	return !b.Get(1<<20) && !b.Get(-1)
}

func TestQuickBitsetMatchesMapModel(t *testing.T) {
	if err := quick.Check(bitsetOps, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStringRoundTrip: packing a bit pattern into a String and
// reading it back through Bytes/FromBytes preserves every bit and the
// equality/key relations.
func TestQuickStringRoundTrip(t *testing.T) {
	prop := func(bits []byte) bool {
		if len(bits) > 256 {
			bits = bits[:256]
		}
		for i := range bits {
			bits[i] &= 1
		}
		s := New(bits)
		if s.Len() != len(bits) {
			return false
		}
		for i, b := range bits {
			if s.Bit(i) != b {
				return false
			}
		}
		back, err := FromBytes(s.Bytes(), s.Len())
		if err != nil {
			return false
		}
		return back.Equal(s) && back.MapKey() == s.MapKey() && back.Hash64() == s.Hash64()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
