package bitstring

import "math/bits"

// Set is an allocation-lean set of small non-negative integers (node IDs)
// sized for quorum-scale cardinalities. The protocol's vouch and answer
// counters hold at most d = O(log n) distinct members, so a plain slice
// with linear membership beats both map[int]bool (per-key bucket
// allocations, hashing) and a dense bit vector (Θ(n) bits per set) on the
// delivery hot path. The zero value is an empty set.
type Set struct {
	ids []int32
}

// Add inserts v and reports whether it was newly added.
func (s *Set) Add(v int) bool {
	id := int32(v)
	for _, have := range s.ids {
		if have == id {
			return false
		}
	}
	s.ids = append(s.ids, id)
	return true
}

// Contains reports membership.
func (s *Set) Contains(v int) bool {
	id := int32(v)
	for _, have := range s.ids {
		if have == id {
			return true
		}
	}
	return false
}

// Len returns the cardinality.
func (s *Set) Len() int { return len(s.ids) }

// ForEach calls f for every member, in insertion order.
func (s *Set) ForEach(f func(v int)) {
	for _, id := range s.ids {
		f(int(id))
	}
}

// Reset empties the set, keeping its capacity for reuse.
func (s *Set) Reset() { s.ids = s.ids[:0] }

// Bitset is a dense bit vector over a small integer domain with a
// maintained population count. The protocol cores use it over the dense
// intern-ID space of candidate strings (per-node, bounded by Lemma 4), so
// flag lookups on the delivery path are an index instead of a map probe.
// The zero value is an empty set over an empty domain; Set grows the
// domain as needed.
type Bitset struct {
	words []uint64
	count int
}

// Set sets bit i and reports whether it was previously clear. It panics on
// negative i.
func (b *Bitset) Set(i int) bool {
	if i < 0 {
		panic("bitstring: negative Bitset index")
	}
	w := i >> 6
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	mask := uint64(1) << (i & 63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	b.count++
	return true
}

// Get reports whether bit i is set. Out-of-domain indices read as clear.
func (b *Bitset) Get(i int) bool {
	w := i >> 6
	if i < 0 || w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(i&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int { return b.count }

// Reset clears every bit, keeping the word storage for reuse.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}

// recount is a debugging invariant helper: it recomputes the population
// count from the words. Exposed to tests only through count equality.
func (b *Bitset) recount() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}
