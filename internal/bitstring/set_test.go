package bitstring

import "testing"

func TestSetAddAndContains(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Contains(3) {
		t.Fatal("zero Set not empty")
	}
	if !s.Add(3) || !s.Add(7) || !s.Add(0) {
		t.Fatal("fresh adds reported as duplicates")
	}
	if s.Add(3) || s.Add(7) {
		t.Fatal("duplicate adds reported as fresh")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, v := range []int{0, 3, 7} {
		if !s.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	if s.Contains(5) {
		t.Fatal("Contains(5) = true")
	}
	s.Reset()
	if s.Len() != 0 || s.Contains(3) {
		t.Fatal("Reset did not empty the set")
	}
	if !s.Add(3) {
		t.Fatal("add after Reset reported duplicate")
	}
}

func TestBitsetSetGetCount(t *testing.T) {
	var b Bitset
	if b.Get(0) || b.Get(1000) || b.Count() != 0 {
		t.Fatal("zero Bitset not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 300} {
		if !b.Set(i) {
			t.Fatalf("Set(%d) reported already set", i)
		}
	}
	for _, i := range []int{0, 1, 63, 64, 65, 300} {
		if b.Set(i) {
			t.Fatalf("re-Set(%d) reported newly set", i)
		}
		if !b.Get(i) {
			t.Fatalf("Get(%d) = false", i)
		}
	}
	for _, i := range []int{2, 62, 299, 301, 100000} {
		if b.Get(i) {
			t.Fatalf("Get(%d) = true for unset bit", i)
		}
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
	if b.Count() != b.recount() {
		t.Fatalf("maintained count %d disagrees with popcount %d", b.Count(), b.recount())
	}
}

func TestBitsetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) did not panic")
		}
	}()
	var b Bitset
	b.Set(-1)
}

func TestMapKeyEquality(t *testing.T) {
	a := New([]byte{1, 0, 1})
	b := New([]byte{1, 0, 1})
	c := New([]byte{1, 0, 1, 0}) // same bytes, longer
	if a.MapKey() != b.MapKey() {
		t.Fatal("equal strings have different MapKeys")
	}
	if a.MapKey() == c.MapKey() {
		t.Fatal("different-length strings share a MapKey")
	}
}
