package core

import (
	"testing"

	"github.com/fastba/fastba/internal/simnet"
)

// TestDebugStuckNode diagnoses why a node fails to decide (temporary
// diagnostic; assertions intentionally loose).
func TestDebugStuckNode(t *testing.T) {
	sc, err := NewScenario(DefaultParams(96), 11, DefaultScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	simnet.NewAsync(nodes, simnet.NewRandom(5)).Run()
	for id, n := range correct {
		if n == nil {
			continue
		}
		if _, ok := n.Decided(); ok {
			continue
		}
		gKey := sc.GString.Key()
		_, hasG := n.candidates[gKey]
		r, polled := n.pollLabels[gKey]
		t.Logf("stuck node %d: initialIsG=%v candidates=%d hasGCandidate=%v pulledG=%v r=%d answers(g)=%d needs>%d",
			id, sc.Initial[id].Equal(sc.GString), len(n.candidates), hasG, polled, r, len(n.answers[gKey]), sc.Params.PollSize/2)
		if polled {
			list := sc.Smp.J.List(id, r)
			good, knowing := 0, 0
			for _, w := range list {
				if !sc.Corrupt[w] {
					good++
					if sc.Initial[w].Equal(sc.GString) {
						knowing++
					}
				}
			}
			t.Logf("  poll list: %d members, %d correct, %d correct+knowledgeable", len(list), good, knowing)
			// How many poll members got the fw2 majority for our request?
			maj, answeredUs := 0, 0
			for _, w := range list {
				wn := correct[w]
				if wn == nil {
					continue
				}
				if wn.fw2Majority[xsrKey{x: id, s: gKey, r: r}] {
					maj++
				}
				if wn.answered[xsKey{x: id, s: gKey}] {
					answeredUs++
				}
			}
			t.Logf("  fw2 majorities at correct poll members: %d; answered us: %d", maj, answeredUs)
			// And the H(gstring, x) forwarding quorum?
			hq := distinct(sc.Smp.H.Quorum(sc.GString, id))
			fwd := 0
			for _, y := range hq {
				yn := correct[y]
				if yn != nil && yn.pullForwarded[xsKey{x: id, s: gKey}] {
					fwd++
				}
			}
			t.Logf("  H(g,x): %d distinct members, %d forwarded our pull", len(hq), fwd)
		}
	}
}
