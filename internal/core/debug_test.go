package core

import (
	"testing"

	"github.com/fastba/fastba/internal/simnet"
)

// TestDebugStuckNode diagnoses why a node fails to decide (temporary
// diagnostic; assertions intentionally loose).
func TestDebugStuckNode(t *testing.T) {
	sc, err := NewScenario(DefaultParams(96), 11, DefaultScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	simnet.NewAsync(nodes, simnet.NewRandom(5)).Run()
	for id, n := range correct {
		if n == nil {
			continue
		}
		if _, ok := n.Decided(); ok {
			continue
		}
		hasG := n.HasCandidate(sc.GString)
		r, polled := n.pollLabel(sc.GString)
		answersG := 0
		if sid := n.strs.Lookup(sc.GString); sid >= 0 && int(sid) < len(n.states) {
			answersG = n.states[sid].answers.Len()
		}
		t.Logf("stuck node %d: initialIsG=%v candidates=%d hasGCandidate=%v pulledG=%v r=%d answers(g)=%d needs>%d",
			id, sc.Initial[id].Equal(sc.GString), n.Stats().CandidateListSize, hasG, polled, r, answersG, sc.Params.PollSize/2)
		if polled {
			list := sc.Smp.J.List(id, r)
			good, knowing := 0, 0
			for _, w := range list {
				if !sc.Corrupt[w] {
					good++
					if sc.Initial[w].Equal(sc.GString) {
						knowing++
					}
				}
			}
			t.Logf("  poll list: %d members, %d correct, %d correct+knowledgeable", len(list), good, knowing)
			// How many poll members got the fw2 majority for our request?
			maj, answeredUs := 0, 0
			for _, w := range list {
				wn := correct[w]
				if wn == nil {
					continue
				}
				gID := wn.strs.Lookup(sc.GString)
				if gID < 0 {
					continue
				}
				if wn.fw2Majority[xsrID{x: id, s: gID, r: r}] {
					maj++
				}
				if wn.answered[xsID{x: id, s: gID}] {
					answeredUs++
				}
			}
			t.Logf("  fw2 majorities at correct poll members: %d; answered us: %d", maj, answeredUs)
			// And the H(gstring, x) forwarding quorum?
			hq := distinct(sc.Smp.H.Quorum(sc.GString, id))
			fwd := 0
			for _, y := range hq {
				yn := correct[y]
				if yn == nil {
					continue
				}
				gID := yn.strs.Lookup(sc.GString)
				if gID >= 0 && yn.pullForwarded[xsID{x: id, s: gID}] {
					fwd++
				}
			}
			t.Logf("  H(g,x): %d distinct members, %d forwarded our pull", len(hq), fwd)
		}
	}
}
