package core

import (
	"testing"

	"github.com/fastba/fastba/internal/simnet"
)

// runSync executes a full synchronous AER run and returns outcome+metrics.
func runSync(t *testing.T, n int, seed uint64, cfg ScenarioConfig, maxRounds int) (Outcome, *simnet.Metrics) {
	t.Helper()
	sc, err := NewScenario(DefaultParams(n), seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	m := simnet.NewSync(nodes, sc.Corrupt).Run(maxRounds)
	return Evaluate(correct, sc.GString), m
}

func TestAERSyncNoFault(t *testing.T) {
	// §1: "unlike many randomized protocols, success is guaranteed when
	// there is no Byzantine fault". Several seeds, all must succeed.
	cfg := ScenarioConfig{CorruptFrac: 0, KnowFrac: 0.8, SharedJunk: true, AdvBits: 1.0 / 3}
	for seed := uint64(1); seed <= 3; seed++ {
		o, m := runSync(t, 96, seed, cfg, 50)
		if !o.Agreement() {
			t.Fatalf("seed %d: no agreement: %+v", seed, o)
		}
		if m.Rounds > 8 {
			t.Fatalf("seed %d: took %d rounds, want O(1)", seed, m.Rounds)
		}
	}
}

func TestAERSyncWithByzantineSilent(t *testing.T) {
	o, m := runSync(t, 128, 7, TestingScenarioConfig(), 50)
	if !o.Agreement() {
		t.Fatalf("no agreement with silent Byzantine minority: %+v", o)
	}
	if m.Rounds > 8 {
		t.Fatalf("constant-round bound violated: %d rounds", m.Rounds)
	}
}

func TestAERSyncCandidateListsLinear(t *testing.T) {
	// Lemma 4: Σ|L_x| = O(n). With one global string and one shared junk
	// string the sum should be barely above the number of correct nodes.
	o, _ := runSync(t, 128, 7, TestingScenarioConfig(), 50)
	if o.SumCandidates > 3*o.Correct {
		t.Fatalf("Σ|L_x| = %d for %d correct nodes; exceeds O(n) envelope", o.SumCandidates, o.Correct)
	}
}

func TestAERAsyncRandomScheduler(t *testing.T) {
	sc, err := NewScenario(DefaultParams(96), 11, TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	m := simnet.NewAsync(nodes, simnet.NewRandom(5)).Run()
	o := Evaluate(correct, sc.GString)
	if !o.Agreement() {
		t.Fatalf("async: no agreement: %+v", o)
	}
	if m.Rounds > 10 {
		t.Fatalf("async causal depth %d unexpectedly large", m.Rounds)
	}
}

func TestAERAsyncFIFO(t *testing.T) {
	sc, err := NewScenario(DefaultParams(96), 13, TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	simnet.NewAsync(nodes, simnet.NewFIFO()).Run()
	if o := Evaluate(correct, sc.GString); !o.Agreement() {
		t.Fatalf("FIFO async: no agreement: %+v", o)
	}
}

func TestAERGoRunner(t *testing.T) {
	sc, err := NewScenario(DefaultParams(64), 17, TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	simnet.NewGo(nodes).Run()
	if o := Evaluate(correct, sc.GString); !o.Agreement() {
		t.Fatalf("goroutine runner: no agreement: %+v", o)
	}
}

func TestAERDeterministicAcrossRuns(t *testing.T) {
	run := func() (Outcome, int64) {
		sc, err := NewScenario(DefaultParams(64), 19, DefaultScenarioConfig())
		if err != nil {
			t.Fatal(err)
		}
		nodes, correct := sc.Build(nil)
		m := simnet.NewSync(nodes, sc.Corrupt).Run(50)
		return Evaluate(correct, sc.GString), m.TotalSentBits()
	}
	o1, b1 := run()
	o2, b2 := run()
	if o1 != o2 || b1 != b2 {
		t.Fatalf("non-deterministic execution: %+v/%d vs %+v/%d", o1, b1, o2, b2)
	}
}

func TestAERCommunicationPolylog(t *testing.T) {
	// Lemma 3 + Figure 1(a): mean per-node bits must grow polylog, i.e.
	// far slower than linearly. Quadrupling n should grow mean bits by far
	// less than 4x.
	if testing.Short() {
		t.Skip("scaling test")
	}
	cfg := DefaultScenarioConfig()
	_, m64 := runSync(t, 64, 3, cfg, 50)
	_, m256 := runSync(t, 256, 3, cfg, 50)
	ratio := m256.MeanSentBits() / m64.MeanSentBits()
	if ratio > 3 {
		t.Fatalf("mean bits grew %.2fx for 4x nodes; not polylog", ratio)
	}
}

func TestScenarioPreconditionEnforced(t *testing.T) {
	_, err := NewScenario(DefaultParams(64), 1, ScenarioConfig{
		CorruptFrac: 0.4, KnowFrac: 0.5, SharedJunk: true, AdvBits: 1.0 / 3,
	})
	if err == nil {
		t.Fatal("scenario with minority knowledge was accepted")
	}
}

func TestScenarioConfigValidation(t *testing.T) {
	p := DefaultParams(64)
	if _, err := NewScenario(p, 1, ScenarioConfig{CorruptFrac: -0.1, KnowFrac: 0.9}); err == nil {
		t.Fatal("negative CorruptFrac accepted")
	}
	if _, err := NewScenario(p, 1, ScenarioConfig{CorruptFrac: 0.1, KnowFrac: 1.5}); err == nil {
		t.Fatal("KnowFrac > 1 accepted")
	}
	bad := p
	bad.N = 0
	if _, err := NewScenario(bad, 1, DefaultScenarioConfig()); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, err := NewScenario(DefaultParams(64), 5, DefaultScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScenario(DefaultParams(64), 5, DefaultScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.GString.Equal(b.GString) {
		t.Fatal("gstring differs across identical scenarios")
	}
	for i := range a.Corrupt {
		if a.Corrupt[i] != b.Corrupt[i] {
			t.Fatal("corruption pattern differs")
		}
		if !a.Initial[i].Equal(b.Initial[i]) {
			t.Fatal("initial beliefs differ")
		}
	}
}

func TestEvaluateCountsNonDeciders(t *testing.T) {
	sc, err := NewScenario(DefaultParams(64), 23, DefaultScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, correct := sc.Build(nil)
	// No run executed: nobody has decided.
	o := Evaluate(correct, sc.GString)
	if o.Decided != 0 || o.Agreement() {
		t.Fatalf("unexpected outcome on unrun scenario: %+v", o)
	}
	if o.Correct == 0 || o.Correct > 64 {
		t.Fatalf("implausible correct count %d", o.Correct)
	}
}

func TestDeferredRelayRescuesTightPopulation(t *testing.T) {
	// Scenario seed 11 at n=96 under the default (tight) population leaves
	// one node without an H(g, x) forwarding majority — precisely the
	// statistical tail the DeferredRelay extension closes: junk holders
	// replay the declined pull after they decide.
	p := DefaultParams(96)
	run := func(deferredRelay bool) Outcome {
		p.DeferredRelay = deferredRelay
		sc, err := NewScenario(p, 11, DefaultScenarioConfig())
		if err != nil {
			t.Fatal(err)
		}
		nodes, correct := sc.Build(nil)
		simnet.NewAsync(nodes, simnet.NewRandom(5)).Run()
		return Evaluate(correct, sc.GString)
	}
	plain := run(false)
	if plain.Agreement() {
		t.Skip("population tail not hit at this seed; rescue not observable")
	}
	rescued := run(true)
	if !rescued.Agreement() {
		t.Fatalf("DeferredRelay did not rescue the run: %+v", rescued)
	}
}
