package core

import "github.com/fastba/fastba/internal/bitstring"

// Wire sizes: node IDs are 4 bytes, labels 8 bytes, strings use their
// length-prefixed packed encoding. These sizes feed the simnet bit meter,
// which is how the communication rows of Figure 1 are measured.
const (
	idBytes    = 4
	labelBytes = 8
)

// MsgPush is the push-phase message (§3.1.1): the sender diffuses its
// candidate string to the nodes whose Push Quorum it belongs to.
type MsgPush struct {
	S bitstring.String
}

// WireSize returns the encoded payload size in bytes.
func (m MsgPush) WireSize() int { return m.S.WireSize() }

// Kind returns the metric kind tag.
func (m MsgPush) Kind() string { return "push" }

// MsgPoll is Algorithm 1's Poll(s, r): sent by the verifying node x to
// every member of its Poll List J(x, r).
type MsgPoll struct {
	S bitstring.String
	R uint64
}

// WireSize returns the encoded payload size in bytes.
func (m MsgPoll) WireSize() int { return m.S.WireSize() + labelBytes }

// Kind returns the metric kind tag.
func (m MsgPoll) Kind() string { return "poll" }

// MsgPull is Algorithm 1's Pull(s, r): sent by the verifying node x to its
// Pull Quorum H(s, x), which acts as a filtering proxy.
type MsgPull struct {
	S bitstring.String
	R uint64
}

// WireSize returns the encoded payload size in bytes.
func (m MsgPull) WireSize() int { return m.S.WireSize() + labelBytes }

// Kind returns the metric kind tag.
func (m MsgPull) Kind() string { return "pull" }

// MsgFw1 is Algorithm 2's Fw1(x, s, r, w): a member y of H(s, x) vouches
// for x's pull request towards the Pull Quorum H(s, w) of poll-list member
// w.
type MsgFw1 struct {
	X int
	S bitstring.String
	R uint64
	W int
}

// WireSize returns the encoded payload size in bytes.
func (m MsgFw1) WireSize() int { return 2*idBytes + labelBytes + m.S.WireSize() }

// Kind returns the metric kind tag.
func (m MsgFw1) Kind() string { return "fw1" }

// MsgFw2 is Algorithm 2's Fw2(x, s, r): a member z of H(s, w) forwards the
// request to w after hearing it vouched by a majority of H(s, x).
type MsgFw2 struct {
	X int
	S bitstring.String
	R uint64
}

// WireSize returns the encoded payload size in bytes.
func (m MsgFw2) WireSize() int { return idBytes + labelBytes + m.S.WireSize() }

// Kind returns the metric kind tag.
func (m MsgFw2) Kind() string { return "fw2" }

// MsgAnswer is Algorithm 3's Answer(s): poll-list member w confirms the
// string s to the verifying node x. R echoes the request label so x can
// match the answer to the poll it issued.
type MsgAnswer struct {
	S bitstring.String
	R uint64
}

// WireSize returns the encoded payload size in bytes.
func (m MsgAnswer) WireSize() int { return m.S.WireSize() + labelBytes }

// Kind returns the metric kind tag.
func (m MsgAnswer) Kind() string { return "answer" }
