package core

import (
	"sync/atomic"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// Node is a correct AER participant. It implements simnet.Node and is
// runtime-agnostic: the same code executes under the synchronous,
// asynchronous and goroutine runners (each runner activates a node
// sequentially, so Node needs no internal locking).
//
// The implementation follows Algorithms 1–3 with two documented
// clarifications (see DESIGN.md "Faithfulness notes"): Fw1 counters are
// keyed per poll-list member w, and the log² n answer budget is enforced
// uniformly in tryAnswer for both the Fw2 and the late-Poll answer paths.
type Node struct {
	id     int
	params Params
	smp    *Samplers
	rng    *prng.Source

	// sthis is the string this node currently believes to be gstring
	// (Algorithms 2/3 "the current node believes gstring to be sthis").
	// It starts as the initial candidate and is overwritten on decision.
	sthis   bitstring.String
	initial bitstring.String

	hasDecided bool
	decided    bitstring.String
	decidedAt  int // ctx.Now() at decision time (round or causal depth)
	// pub atomically publishes the decision for cross-goroutine readers:
	// the concurrent runtimes (TCP, goroutines) poll Decided() from other
	// goroutines while this node's delivery loop is still mutating state.
	pub atomic.Pointer[decision]

	// Push state (§3.1.1): per candidate string, the set of quorum members
	// that pushed it; candidates is the list L_x.
	pushRecv   map[string]map[int]bool
	candidates map[string]bitstring.String

	// Algorithm 1 state: the label r_{x,s} of each poll this node issued
	// and the distinct answerers per candidate.
	pollLabels map[string]uint64
	answers    map[string]map[int]bool

	// Algorithm 2 state: Pull requests already forwarded (once per (x, s)),
	// and Fw1 vouch counters keyed by (x, s, r, w).
	pullForwarded map[xsKey]bool
	fw1Vouches    map[fw1Key]map[int]bool
	fw1Done       map[xswKey]bool

	// Algorithm 3 state: Fw2 counters keyed by (x, s, r), the Polled set,
	// sent answers, the answer budget and the deferred answers flushed on
	// decision ("Wait for has_decided"). beliefDeferred holds requests
	// whose Fw2 majority and Poll arrived while s differed from s_this;
	// they are answered if this node later decides s (§3.1.2 reply
	// condition 2: "one of its pull requests was answered ... and s_w was
	// changed accordingly").
	fw2Vouches     map[xsrKey]map[int]bool
	fw2Majority    map[xsrKey]bool
	polled         map[xsKey]bool
	answered       map[xsKey]bool
	answerCount    int
	deferred       []deferredAnswer
	beliefDeferred []deferredAnswer
	// relayDeferred holds pulls declined by the s = s_y filter, replayed on
	// decision when Params.DeferredRelay is enabled.
	relayDeferred []deferredPull

	// Statistics surfaced to the experiment harness.
	stats Stats
}

type (
	xsKey struct {
		x int
		s string
	}
	xsrKey struct {
		x int
		s string
		r uint64
	}
	xswKey struct {
		x int
		s string
		w int
	}
	fw1Key struct {
		x int
		s string
		r uint64
		w int
	}
)

type deferredAnswer struct {
	x int
	s bitstring.String
	r uint64
}

type deferredPull struct {
	x int
	s bitstring.String
	r uint64
}

// Stats exposes per-node protocol counters for the experiment harness.
type Stats struct {
	// CandidateListSize is |L_x| at the end of the run (Lemma 4).
	CandidateListSize int
	// PullsStarted counts Algorithm 1 invocations.
	PullsStarted int
	// PushesSent counts push-phase messages sent (Lemma 3).
	PushesSent int
	// AnswersSent counts Answer messages sent (budget consumption).
	AnswersSent int
	// AnswersDeferred counts answers deferred past the budget (Lemma 6
	// overload events).
	AnswersDeferred int
}

// HasCandidate reports whether s ∈ L_x — the Lemma 5 push-phase coverage
// probe.
func (n *Node) HasCandidate(s bitstring.String) bool {
	_, ok := n.candidates[s.Key()]
	return ok
}

// NewNode constructs a correct AER node. initial is the node's candidate
// s_x (possibly the zero String for a node with no candidate); rng is the
// node's private random source (§2.1).
func NewNode(id int, initial bitstring.String, params Params, smp *Samplers, rng *prng.Source) *Node {
	return &Node{
		id:            id,
		params:        params,
		smp:           smp,
		rng:           rng,
		sthis:         initial,
		initial:       initial,
		pushRecv:      make(map[string]map[int]bool),
		candidates:    make(map[string]bitstring.String),
		pollLabels:    make(map[string]uint64),
		answers:       make(map[string]map[int]bool),
		pullForwarded: make(map[xsKey]bool),
		fw1Vouches:    make(map[fw1Key]map[int]bool),
		fw1Done:       make(map[xswKey]bool),
		fw2Vouches:    make(map[xsrKey]map[int]bool),
		fw2Majority:   make(map[xsrKey]bool),
		polled:        make(map[xsKey]bool),
		answered:      make(map[xsKey]bool),
	}
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Decided returns the decision, if any.
func (n *Node) Decided() (bitstring.String, bool) {
	if d := n.pub.Load(); d != nil {
		return d.s, true
	}
	return bitstring.String{}, false
}

// decision is the immutable published outcome behind Decided/DecidedAt.
type decision struct {
	s  bitstring.String
	at int
}

// DecidedAt returns the time (sync round or async causal depth) at which
// the node decided, or -1.
func (n *Node) DecidedAt() int {
	if d := n.pub.Load(); d != nil {
		return d.at
	}
	return -1
}

// Believes returns the node's current belief s_this.
func (n *Node) Believes() bitstring.String { return n.sthis }

// Stats returns the protocol counters (valid after the run completes).
func (n *Node) Stats() Stats {
	s := n.stats
	s.CandidateListSize = len(n.candidates)
	return s
}

// Init implements simnet.Node: the push phase plus the pull for the node's
// own initial candidate.
func (n *Node) Init(ctx simnet.Context) {
	if n.initial.IsZero() {
		return
	}
	// Push s_x to the nodes x with this ∈ I(s_x, x) — exactly the
	// O(log n) inverse-quorum members (Lemma 3).
	for _, target := range distinct(n.smp.I.Inverse(n.initial, n.id)) {
		ctx.Send(target, MsgPush{S: n.initial})
		n.stats.PushesSent++
	}
	// The candidate list originally contains only s_x (§3.1.1, Figure 2a).
	n.candidates[n.initial.Key()] = n.initial
	n.startPull(ctx, n.initial)
}

// Deliver implements simnet.Node.
func (n *Node) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case MsgPush:
		n.onPush(ctx, from, msg)
	case MsgPull:
		n.onPull(ctx, from, msg)
	case MsgFw1:
		n.onFw1(ctx, from, msg)
	case MsgFw2:
		n.onFw2(ctx, from, msg)
	case MsgPoll:
		n.onPoll(ctx, from, msg)
	case MsgAnswer:
		n.onAnswer(ctx, from, msg)
	}
}

// onPush adds s to the candidate list once a strict majority of the Push
// Quorum I(s, this) has pushed it (§3.1.1). Pushes from nodes outside the
// quorum are ignored — the filter that makes the phase impervious to
// flooding.
func (n *Node) onPush(ctx simnet.Context, from int, m MsgPush) {
	if m.S.IsZero() || m.S.Len() != n.params.StringBits {
		return // malformed candidate; only the adversary sends these
	}
	if !n.smp.I.Contains(m.S, n.id, from) {
		return
	}
	key := m.S.Key()
	if _, ok := n.candidates[key]; ok {
		return
	}
	set := n.pushRecv[key]
	if set == nil {
		set = make(map[int]bool)
		n.pushRecv[key] = set
	}
	set[from] = true
	quorum := distinct(n.smp.I.Quorum(m.S, n.id))
	if 2*len(set) > len(quorum) {
		n.candidates[key] = m.S
		delete(n.pushRecv, key)
		n.startPull(ctx, m.S)
	}
}

// startPull is Algorithm 1 for a single candidate: draw r_{x,s}, poll
// J(x, r) and route the request through H(s, x).
func (n *Node) startPull(ctx simnet.Context, s bitstring.String) {
	if n.hasDecided {
		return
	}
	key := s.Key()
	if _, ok := n.pollLabels[key]; ok {
		return
	}
	r := n.rng.Uint64() % n.params.Labels
	n.pollLabels[key] = r
	n.stats.PullsStarted++
	for _, w := range n.smp.J.List(n.id, r) {
		ctx.Send(w, MsgPoll{S: s, R: r})
	}
	for _, y := range distinct(n.smp.H.Quorum(s, n.id)) {
		ctx.Send(y, MsgPull{S: s, R: r})
	}
}

// onPull is the first handler of Algorithm 2: y ∈ H(s, x) forwards x's
// request towards the Pull Quorums of the poll list J(x, r) iff s is y's
// own believed string. Each (x, s) is forwarded at most once ("keep track
// of senders to prevent flooding"), which caps what a Byzantine x can
// trigger (Lemma 6: "the adversary can send pull requests at most once for
// each node it controls").
func (n *Node) onPull(ctx simnet.Context, from int, m MsgPull) {
	if !n.smp.H.Contains(m.S, from, n.id) {
		return // this ∉ H(s, x): not our request to proxy
	}
	if !m.S.Equal(n.sthis) {
		if n.params.DeferredRelay && !n.hasDecided && m.S.Len() == n.params.StringBits {
			n.relayDeferred = append(n.relayDeferred, deferredPull{x: from, s: m.S, r: m.R})
		}
		return
	}
	n.forwardPull(ctx, from, m.S, m.R)
}

// forwardPull fans x's authenticated request out to the pull quorums of its
// poll list, once per (x, s).
func (n *Node) forwardPull(ctx simnet.Context, x int, s bitstring.String, r uint64) {
	k := xsKey{x: x, s: s.Key()}
	if n.pullForwarded[k] {
		return
	}
	n.pullForwarded[k] = true
	for _, w := range n.smp.J.List(x, r) {
		fw := MsgFw1{X: x, S: s, R: r, W: w}
		for _, z := range distinct(n.smp.H.Quorum(s, w)) {
			ctx.Send(z, fw)
		}
	}
}

// onFw1 is the second handler of Algorithm 2: z ∈ H(s, w) sends Fw2 to w
// once a strict majority of H(s, x) has vouched for x's request.
func (n *Node) onFw1(ctx simnet.Context, from int, m MsgFw1) {
	if !m.S.Equal(n.sthis) {
		return
	}
	if !n.smp.H.Contains(m.S, m.W, n.id) { // this ∈ H(s, w)
		return
	}
	if !n.smp.H.Contains(m.S, m.X, from) { // y ∈ H(s, x)
		return
	}
	if !n.smp.J.Contains(m.X, m.R, m.W) { // w ∈ J(x, r)
		return
	}
	sKey := m.S.Key()
	doneKey := xswKey{x: m.X, s: sKey, w: m.W}
	if n.fw1Done[doneKey] {
		return
	}
	vk := fw1Key{x: m.X, s: sKey, r: m.R, w: m.W}
	set := n.fw1Vouches[vk]
	if set == nil {
		set = make(map[int]bool)
		n.fw1Vouches[vk] = set
	}
	set[from] = true
	quorum := distinct(n.smp.H.Quorum(m.S, m.X))
	if 2*len(set) > len(quorum) {
		n.fw1Done[doneKey] = true // forward only once
		delete(n.fw1Vouches, vk)
		ctx.Send(m.W, MsgFw2{X: m.X, S: m.S, R: m.R})
	}
}

// onFw2 is the first handler of Algorithm 3: once a strict majority of
// H(s, this) has forwarded x's request and x has polled us, answer —
// subject to the overload budget and the reply conditions of §3.1.2.
//
// Vouches are counted for any string of valid length: the quorum majority
// in H(s, this) is what authenticates the request. Whether this node may
// *reply* is decided in maybeAnswer (reply conditions 2/3 of §3.1.2).
func (n *Node) onFw2(ctx simnet.Context, from int, m MsgFw2) {
	if m.S.Len() != n.params.StringBits {
		return
	}
	if !n.smp.J.Contains(m.X, m.R, n.id) { // this ∈ J(x, r)
		return
	}
	if !n.smp.H.Contains(m.S, n.id, from) { // z ∈ H(s, this)
		return
	}
	sKey := m.S.Key()
	k := xsrKey{x: m.X, s: sKey, r: m.R}
	if n.fw2Majority[k] {
		return
	}
	set := n.fw2Vouches[k]
	if set == nil {
		set = make(map[int]bool)
		n.fw2Vouches[k] = set
	}
	set[from] = true
	quorum := distinct(n.smp.H.Quorum(m.S, n.id))
	if 2*len(set) <= len(quorum) {
		return
	}
	n.fw2Majority[k] = true
	delete(n.fw2Vouches, k)
	if n.polled[xsKey{x: m.X, s: sKey}] {
		n.maybeAnswer(ctx, m.X, m.S, m.R)
	}
}

// onPoll is the second handler of Algorithm 3: record (x, s) in the Polled
// set; if the Fw2 majority was already reached (the asynchronous case where
// the Poll overtakes the routed request) answer immediately.
func (n *Node) onPoll(ctx simnet.Context, from int, m MsgPoll) {
	if !n.smp.J.Contains(from, m.R, n.id) {
		return
	}
	sKey := m.S.Key()
	n.polled[xsKey{x: from, s: sKey}] = true
	if n.fw2Majority[xsrKey{x: from, s: sKey, r: m.R}] {
		n.maybeAnswer(ctx, from, m.S, m.R)
	}
}

// maybeAnswer applies the reply conditions of §3.1.2: a node holding s
// (knowledgeable, or decided — condition 2) answers subject to the budget
// (condition 3); a node that does not hold s keeps the authenticated
// request pending and answers it if a future decision changes s_this to s.
func (n *Node) maybeAnswer(ctx simnet.Context, x int, s bitstring.String, r uint64) {
	if s.Equal(n.sthis) {
		n.tryAnswer(ctx, x, s, r)
		return
	}
	n.beliefDeferred = append(n.beliefDeferred, deferredAnswer{x: x, s: s, r: r})
}

// tryAnswer sends Answer(s) to x unless the answer budget is exhausted, in
// which case the answer is deferred until this node decides (Algorithm 3:
// "Wait for has_decided"). Each (x, s) is answered at most once.
func (n *Node) tryAnswer(ctx simnet.Context, x int, s bitstring.String, r uint64) {
	k := xsKey{x: x, s: s.Key()}
	if n.answered[k] {
		return
	}
	if n.params.AnswerBudget > 0 && n.answerCount >= n.params.AnswerBudget && !n.hasDecided {
		n.stats.AnswersDeferred++
		n.deferred = append(n.deferred, deferredAnswer{x: x, s: s, r: r})
		return
	}
	n.answered[k] = true
	n.answerCount++
	n.stats.AnswersSent++
	ctx.Send(x, MsgAnswer{S: s, R: r})
}

// onAnswer counts answers from distinct poll-list members and decides on s
// upon a strict majority (end of Algorithm 1).
func (n *Node) onAnswer(ctx simnet.Context, from int, m MsgAnswer) {
	if n.hasDecided {
		return
	}
	sKey := m.S.Key()
	r, ok := n.pollLabels[sKey]
	if !ok || r != m.R {
		return // not a poll we issued
	}
	if !n.smp.J.Contains(n.id, r, from) {
		return // answerer is not on the authoritative poll list
	}
	set := n.answers[sKey]
	if set == nil {
		set = make(map[int]bool)
		n.answers[sKey] = set
	}
	if set[from] {
		return // "w hasn't sent another Answer(s) message yet"
	}
	set[from] = true
	if 2*len(set) > n.params.PollSize {
		n.decide(ctx, m.S)
	}
}

// decide fixes the output, updates s_this (Algorithm 3 condition 2: "sw
// was changed accordingly") and flushes both kinds of deferred answers:
// those held back by the budget and those awaiting this belief change.
func (n *Node) decide(ctx simnet.Context, s bitstring.String) {
	n.hasDecided = true
	n.decided = s
	n.decidedAt = ctx.Now()
	n.pub.Store(&decision{s: s, at: n.decidedAt})
	n.sthis = s
	flushBudget := n.deferred
	n.deferred = nil
	for _, d := range flushBudget {
		n.tryAnswer(ctx, d.x, d.s, d.r)
	}
	flushBelief := n.beliefDeferred
	n.beliefDeferred = nil
	for _, d := range flushBelief {
		if d.s.Equal(s) {
			n.tryAnswer(ctx, d.x, d.s, d.r)
		}
	}
	flushRelay := n.relayDeferred
	n.relayDeferred = nil
	for _, d := range flushRelay {
		if d.s.Equal(s) {
			n.forwardPull(ctx, d.x, d.s, d.r)
		}
	}
}

// distinct returns the distinct elements of ids, preserving first-seen
// order. Quorums built from unions of permutations may contain the same
// node under two indices; thresholds and sends use the distinct view.
func distinct(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
