package core

import (
	"sync/atomic"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/intern"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/sampler"
	"github.com/fastba/fastba/internal/simnet"
)

// Node is a correct AER participant. It implements simnet.Node and is
// runtime-agnostic: the same code executes under the synchronous,
// asynchronous and goroutine runners (each runner activates a node
// sequentially, so Node needs no internal locking).
//
// The implementation follows Algorithms 1–3 with two documented
// clarifications (see DESIGN.md "Faithfulness notes"): Fw1 counters are
// keyed per poll-list member w, and the log² n answer budget is enforced
// uniformly in tryAnswer for both the Fw2 and the late-Poll answer paths.
//
// All per-string state is keyed by dense interned IDs rather than string
// map keys: each node owns an intern.Table mapping every candidate string
// it has seen to a small integer, per-string counters live in an ID-indexed
// slice, and the composite (x, s, r, w) counters key their maps by integer
// tuples. This keeps the delivery hot path free of per-message key
// formatting and map-of-map churn (DESIGN.md §4).
type Node struct {
	id     int
	params Params
	smp    *Samplers
	rng    *prng.Source

	// sthis is the string this node currently believes to be gstring
	// (Algorithms 2/3 "the current node believes gstring to be sthis").
	// It starts as the initial candidate and is overwritten on decision.
	// sthisID is its interned ID (interned in NewNode, updated on decide).
	sthis   bitstring.String
	sthisID intern.ID
	initial bitstring.String

	hasDecided bool
	decided    bitstring.String
	decidedAt  int // ctx.Now() at decision time (round or causal depth)
	// pub atomically publishes the decision for cross-goroutine readers:
	// the concurrent runtimes (TCP, goroutines) poll Decided() from other
	// goroutines while this node's delivery loop is still mutating state.
	pub atomic.Pointer[decision]

	// strs interns every string this node tracks state for; states is the
	// parallel ID-indexed per-string state and candidates flags the IDs on
	// the candidate list L_x (§3.1.1).
	strs       intern.Table
	states     []strState
	candidates bitstring.Bitset

	// Algorithm 2 state: Pull requests already forwarded (once per (x, s)),
	// Fw1 vouch counters keyed by (x, s, r, w) and the forward-once flags.
	pullForwarded map[xsID]bool
	fw1Vouches    map[fw1ID]*bitstring.Set
	fw1Done       map[xswID]bool

	// Algorithm 3 state: Fw2 counters keyed by (x, s, r), the Polled set,
	// sent answers, the answer budget and the deferred answers flushed on
	// decision ("Wait for has_decided"). beliefDeferred holds requests
	// whose Fw2 majority and Poll arrived while s differed from s_this;
	// they are answered if this node later decides s (§3.1.2 reply
	// condition 2: "one of its pull requests was answered ... and s_w was
	// changed accordingly").
	fw2Vouches     map[xsrID]*bitstring.Set
	fw2Majority    map[xsrID]bool
	polled         map[xsID]bool
	answered       map[xsID]bool
	answerCount    int
	deferred       []deferredAnswer
	beliefDeferred []deferredAnswer
	// relayDeferred holds pulls declined by the s = s_y filter, replayed on
	// decision when Params.DeferredRelay is enabled.
	relayDeferred []deferredPull

	// hxSizes caches |distinct H(s, x)| per (x, s): quorum thresholds are
	// consulted on every Fw1/Fw2 delivery but the distinct size of a quorum
	// never changes within a run.
	hxSizes map[xsID]int

	// scratchJ and scratchH are reused sampling buffers for the fan-out hot
	// paths (startPull, forwardPull): poll lists and pull quorums are sampled
	// into node-owned scratch instead of a fresh slice per query. The node is
	// single-threaded and sends only enqueue, so the buffers cannot be
	// observed mid-iteration.
	scratchJ []int
	scratchH []int
	// setPool recycles vouch Sets: fw1Vouches/fw2Vouches entries churn per
	// (x, s, r[, w]) counter key and are deleted on majority, so recycling
	// them keeps steady-state Fw1/Fw2 delivery free of slice growth.
	setPool []*bitstring.Set

	// Statistics surfaced to the experiment harness.
	stats Stats
}

// strState is the per-interned-string protocol state, indexed by intern ID.
type strState struct {
	// Push state (§3.1.1): the quorum members that pushed this string and
	// the cached |distinct I(s, this)| threshold (0 = not yet computed).
	pushRecv   bitstring.Set
	pushQuorum int
	// Algorithm 1 state: the label r_{x,s} of the poll this node issued for
	// the string and the distinct answerers.
	hasLabel bool
	label    uint64
	answers  bitstring.Set
}

// Composite state keys; s is the interned string ID.
type (
	xsID struct {
		x int
		s intern.ID
	}
	xsrID struct {
		x int
		s intern.ID
		r uint64
	}
	xswID struct {
		x int
		s intern.ID
		w int
	}
	fw1ID struct {
		x int
		s intern.ID
		r uint64
		w int
	}
)

type deferredAnswer struct {
	x int
	s intern.ID
	r uint64
}

type deferredPull struct {
	x int
	s bitstring.String
	r uint64
}

// Stats exposes per-node protocol counters for the experiment harness.
type Stats struct {
	// CandidateListSize is |L_x| at the end of the run (Lemma 4).
	CandidateListSize int
	// PullsStarted counts Algorithm 1 invocations.
	PullsStarted int
	// PushesSent counts push-phase messages sent (Lemma 3).
	PushesSent int
	// AnswersSent counts Answer messages sent (budget consumption).
	AnswersSent int
	// AnswersDeferred counts answers deferred past the budget (Lemma 6
	// overload events).
	AnswersDeferred int
}

// HasCandidate reports whether s ∈ L_x — the Lemma 5 push-phase coverage
// probe.
func (n *Node) HasCandidate(s bitstring.String) bool {
	sid := n.strs.Lookup(s)
	return sid != intern.None && n.candidates.Get(int(sid))
}

// NewNode constructs a correct AER node. initial is the node's candidate
// s_x (possibly the zero String for a node with no candidate); rng is the
// node's private random source (§2.1).
func NewNode(id int, initial bitstring.String, params Params, smp *Samplers, rng *prng.Source) *Node {
	n := &Node{
		id:            id,
		params:        params,
		smp:           smp,
		rng:           rng,
		sthis:         initial,
		initial:       initial,
		pullForwarded: make(map[xsID]bool),
		fw1Vouches:    make(map[fw1ID]*bitstring.Set),
		fw1Done:       make(map[xswID]bool),
		fw2Vouches:    make(map[xsrID]*bitstring.Set),
		fw2Majority:   make(map[xsrID]bool),
		polled:        make(map[xsID]bool),
		answered:      make(map[xsID]bool),
		hxSizes:       make(map[xsID]int),
	}
	// s_this always has a valid interned ID, even for the zero string, so
	// the Algorithm 2 fast path can key state by it unconditionally.
	n.sthisID = n.strs.ID(initial)
	return n
}

// Reset rewinds the node to a freshly constructed state for a new agreement
// instance, keeping every allocation it can: map buckets survive via
// clear(), the intern table and per-string state slice keep their storage,
// and the quorum-member sets inside recycled strState entries keep their
// capacity. The node's identity and protocol geometry are unchanged;
// initial, smp and rng take the role of NewNode's arguments — a reopened
// instance passes attempt-salted samplers so a retry re-rolls the quorum
// geometry, not just the poll labels. The decision-log pipeline calls this
// between instances so a long log reuses one set of nodes instead of
// reallocating per-instance protocol state (see BenchmarkLogInstanceReuse).
func (n *Node) Reset(initial bitstring.String, smp *Samplers, rng *prng.Source) {
	n.smp = smp
	n.rng = rng
	n.sthis = initial
	n.initial = initial
	n.hasDecided = false
	n.decided = bitstring.String{}
	n.decidedAt = 0
	n.pub.Store(nil)

	n.strs.Reset()
	// Keep the state slice's length: intern IDs restart from 0, so recycled
	// entries are re-addressed by the new instance's strings; each entry is
	// scrubbed in place to keep its sets' capacity.
	for i := range n.states {
		st := &n.states[i]
		st.pushRecv.Reset()
		st.pushQuorum = 0
		st.hasLabel = false
		st.label = 0
		st.answers.Reset()
	}
	n.candidates.Reset()

	// Live vouch sets return to the free list before their keys clear, so a
	// recycled node starts the next instance with its set capacity intact.
	for _, set := range n.fw1Vouches {
		n.putSet(set)
	}
	for _, set := range n.fw2Vouches {
		n.putSet(set)
	}

	clear(n.pullForwarded)
	clear(n.fw1Vouches)
	clear(n.fw1Done)
	clear(n.fw2Vouches)
	clear(n.fw2Majority)
	clear(n.polled)
	clear(n.answered)
	clear(n.hxSizes)
	n.answerCount = 0
	n.deferred = n.deferred[:0]
	n.beliefDeferred = n.beliefDeferred[:0]
	n.relayDeferred = n.relayDeferred[:0]
	n.stats = Stats{}

	n.sthisID = n.strs.ID(initial)
}

// quorumInto samples Quorum(s, x) into dst, using the sampler's
// allocation-free QuorumAppend when it offers one and falling back to a
// copy of the allocating Quorum otherwise (third-party Quorum
// implementations used by tests and ablations).
func (n *Node) quorumInto(dst []int, q sampler.Quorum, s bitstring.String, x int) []int {
	if aq, ok := q.(sampler.AppendQuorum); ok {
		return aq.QuorumAppend(dst, s, x)
	}
	return append(dst, q.Quorum(s, x)...)
}

// getSet takes a vouch set from the node-local free list (or allocates).
func (n *Node) getSet() *bitstring.Set {
	if k := len(n.setPool) - 1; k >= 0 {
		s := n.setPool[k]
		n.setPool = n.setPool[:k]
		s.Reset()
		return s
	}
	return new(bitstring.Set)
}

// putSet returns a vouch set to the free list. The caller must have removed
// every reference to it from the vouch maps first.
func (n *Node) putSet(s *bitstring.Set) { n.setPool = append(n.setPool, s) }

// state returns the per-string state for an interned ID, growing the
// ID-indexed slice on demand. Growth may reallocate the slice, so callers
// must not hold the returned pointer across any later state() call.
func (n *Node) state(sid intern.ID) *strState {
	for int(sid) >= len(n.states) {
		n.states = append(n.states, strState{})
	}
	return &n.states[sid]
}

// pollLabel returns the label of the poll this node issued for s, if any
// (white-box test hook).
func (n *Node) pollLabel(s bitstring.String) (uint64, bool) {
	sid := n.strs.Lookup(s)
	if sid == intern.None || int(sid) >= len(n.states) || !n.states[sid].hasLabel {
		return 0, false
	}
	return n.states[sid].label, true
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Decided returns the decision, if any.
func (n *Node) Decided() (bitstring.String, bool) {
	if d := n.pub.Load(); d != nil {
		return d.s, true
	}
	return bitstring.String{}, false
}

// decision is the immutable published outcome behind Decided/DecidedAt.
type decision struct {
	s  bitstring.String
	at int
}

// DecidedAt returns the time (sync round or async causal depth) at which
// the node decided, or -1.
func (n *Node) DecidedAt() int {
	if d := n.pub.Load(); d != nil {
		return d.at
	}
	return -1
}

// Believes returns the node's current belief s_this.
func (n *Node) Believes() bitstring.String { return n.sthis }

// DecisionCert re-derives the quorum certificate behind this node's
// decision for the protocol-invariant oracles: support is the number of
// recorded answerers for the decided string that the authoritative poll
// list J(this, r) actually contains (re-validated against the shared
// sampler, independently of the delivery-path checks), and need is the
// strict-majority threshold the decision required. ok reports whether the
// node decided at all. A decided node with support < need holds a decision
// no valid certificate backs — a protocol-state inconsistency no
// fault schedule can excuse. Call after the run completes.
func (n *Node) DecisionCert() (support, need int, ok bool) {
	if !n.hasDecided {
		return 0, 0, false
	}
	need = n.params.PollSize/2 + 1
	sid := n.strs.Lookup(n.decided)
	if sid == intern.None || int(sid) >= len(n.states) {
		return 0, need, true
	}
	st := &n.states[sid]
	if !st.hasLabel {
		return 0, need, true
	}
	st.answers.ForEach(func(from int) {
		if n.smp.J.Contains(n.id, st.label, from) {
			support++
		}
	})
	return support, need, true
}

// Stats returns the protocol counters (valid after the run completes).
func (n *Node) Stats() Stats {
	s := n.stats
	s.CandidateListSize = n.candidates.Count()
	return s
}

// Init implements simnet.Node: the push phase plus the pull for the node's
// own initial candidate.
func (n *Node) Init(ctx simnet.Context) {
	if n.initial.IsZero() {
		return
	}
	// Push s_x to the nodes x with this ∈ I(s_x, x) — exactly the
	// O(log n) inverse-quorum members (Lemma 3). The message is boxed once
	// for the whole fan-out.
	var push simnet.Message = MsgPush{S: n.initial}
	for _, target := range distinct(n.smp.I.Inverse(n.initial, n.id)) {
		ctx.Send(target, push)
		n.stats.PushesSent++
	}
	// The candidate list originally contains only s_x (§3.1.1, Figure 2a).
	n.candidates.Set(int(n.sthisID))
	n.startPull(ctx, n.sthisID, n.initial)
}

// Deliver implements simnet.Node.
func (n *Node) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case MsgPush:
		n.onPush(ctx, from, msg)
	case MsgPull:
		n.onPull(ctx, from, msg)
	case MsgFw1:
		n.onFw1(ctx, from, msg)
	case MsgFw2:
		n.onFw2(ctx, from, msg)
	case MsgPoll:
		n.onPoll(ctx, from, msg)
	case MsgAnswer:
		n.onAnswer(ctx, from, msg)
	}
}

// onPush adds s to the candidate list once a strict majority of the Push
// Quorum I(s, this) has pushed it (§3.1.1). Pushes from nodes outside the
// quorum are ignored — the filter that makes the phase impervious to
// flooding.
func (n *Node) onPush(ctx simnet.Context, from int, m MsgPush) {
	if m.S.IsZero() || m.S.Len() != n.params.StringBits {
		return // malformed candidate; only the adversary sends these
	}
	if !n.smp.I.Contains(m.S, n.id, from) {
		return
	}
	sid := n.strs.ID(m.S)
	if n.candidates.Get(int(sid)) {
		return
	}
	st := n.state(sid)
	if !st.pushRecv.Add(from) {
		return // duplicate pusher: the count did not change
	}
	if st.pushQuorum == 0 {
		st.pushQuorum = countDistinct(n.smp.I.Quorum(m.S, n.id))
	}
	if 2*st.pushRecv.Len() > st.pushQuorum {
		n.candidates.Set(int(sid))
		st.pushRecv = bitstring.Set{} // accepted: release the pusher set
		n.startPull(ctx, sid, m.S)
	}
}

// startPull is Algorithm 1 for a single candidate: draw r_{x,s}, poll
// J(x, r) and route the request through H(s, x).
func (n *Node) startPull(ctx simnet.Context, sid intern.ID, s bitstring.String) {
	if n.hasDecided {
		return
	}
	st := n.state(sid)
	if st.hasLabel {
		return
	}
	r := n.rng.Uint64() % n.params.Labels
	st.hasLabel = true
	st.label = r
	n.stats.PullsStarted++
	var poll simnet.Message = MsgPoll{S: s, R: r}
	n.scratchJ = n.smp.J.ListAppend(n.scratchJ[:0], n.id, r)
	for _, w := range n.scratchJ {
		ctx.Send(w, poll)
	}
	var pull simnet.Message = MsgPull{S: s, R: r}
	n.scratchH = n.quorumInto(n.scratchH[:0], n.smp.H, s, n.id)
	for _, y := range distinct(n.scratchH) {
		ctx.Send(y, pull)
	}
}

// onPull is the first handler of Algorithm 2: y ∈ H(s, x) forwards x's
// request towards the Pull Quorums of the poll list J(x, r) iff s is y's
// own believed string. Each (x, s) is forwarded at most once ("keep track
// of senders to prevent flooding"), which caps what a Byzantine x can
// trigger (Lemma 6: "the adversary can send pull requests at most once for
// each node it controls").
func (n *Node) onPull(ctx simnet.Context, from int, m MsgPull) {
	if !n.smp.H.Contains(m.S, from, n.id) {
		return // this ∉ H(s, x): not our request to proxy
	}
	if !m.S.Equal(n.sthis) {
		if n.params.DeferredRelay && !n.hasDecided && m.S.Len() == n.params.StringBits {
			// Clone: the deferred pull outlives this delivery, and m.S may be
			// a zero-copy view of a transport buffer (DESIGN.md §10).
			n.relayDeferred = append(n.relayDeferred, deferredPull{x: from, s: m.S.Clone(), r: m.R})
		}
		return
	}
	n.forwardPull(ctx, from, n.sthisID, m.S, m.R)
}

// forwardPull fans x's authenticated request out to the pull quorums of its
// poll list, once per (x, s).
func (n *Node) forwardPull(ctx simnet.Context, x int, sid intern.ID, s bitstring.String, r uint64) {
	k := xsID{x: x, s: sid}
	if n.pullForwarded[k] {
		return
	}
	n.pullForwarded[k] = true
	n.scratchJ = n.smp.J.ListAppend(n.scratchJ[:0], x, r)
	for _, w := range n.scratchJ {
		// Box the Fw1 once per poll-list member, not once per quorum member:
		// this double loop dominated the allocation profile of sustained-load
		// runs (one interface conversion per Send).
		var fw simnet.Message = MsgFw1{X: x, S: s, R: r, W: w}
		n.scratchH = n.quorumInto(n.scratchH[:0], n.smp.H, s, w)
		for _, z := range distinct(n.scratchH) {
			ctx.Send(z, fw)
		}
	}
}

// onFw1 is the second handler of Algorithm 2: z ∈ H(s, w) sends Fw2 to w
// once a strict majority of H(s, x) has vouched for x's request.
func (n *Node) onFw1(ctx simnet.Context, from int, m MsgFw1) {
	if !m.S.Equal(n.sthis) {
		return
	}
	if !n.smp.H.Contains(m.S, m.W, n.id) { // this ∈ H(s, w)
		return
	}
	if !n.smp.H.Contains(m.S, m.X, from) { // y ∈ H(s, x)
		return
	}
	if !n.smp.J.Contains(m.X, m.R, m.W) { // w ∈ J(x, r)
		return
	}
	sid := n.sthisID
	doneKey := xswID{x: m.X, s: sid, w: m.W}
	if n.fw1Done[doneKey] {
		return
	}
	vk := fw1ID{x: m.X, s: sid, r: m.R, w: m.W}
	set := n.fw1Vouches[vk]
	if set == nil {
		set = n.getSet()
		n.fw1Vouches[vk] = set
	}
	if !set.Add(from) {
		return // duplicate voucher: the count did not change
	}
	if 2*set.Len() > n.hQuorumSize(sid, m.S, m.X) {
		n.fw1Done[doneKey] = true // forward only once
		delete(n.fw1Vouches, vk)
		n.putSet(set)
		ctx.Send(m.W, MsgFw2{X: m.X, S: m.S, R: m.R})
	}
}

// onFw2 is the first handler of Algorithm 3: once a strict majority of
// H(s, this) has forwarded x's request and x has polled us, answer —
// subject to the overload budget and the reply conditions of §3.1.2.
//
// Vouches are counted for any string of valid length: the quorum majority
// in H(s, this) is what authenticates the request. Whether this node may
// *reply* is decided in maybeAnswer (reply conditions 2/3 of §3.1.2).
func (n *Node) onFw2(ctx simnet.Context, from int, m MsgFw2) {
	if m.S.Len() != n.params.StringBits {
		return
	}
	if !n.smp.J.Contains(m.X, m.R, n.id) { // this ∈ J(x, r)
		return
	}
	if !n.smp.H.Contains(m.S, n.id, from) { // z ∈ H(s, this)
		return
	}
	sid := n.strs.ID(m.S)
	k := xsrID{x: m.X, s: sid, r: m.R}
	if n.fw2Majority[k] {
		return
	}
	set := n.fw2Vouches[k]
	if set == nil {
		set = n.getSet()
		n.fw2Vouches[k] = set
	}
	if !set.Add(from) {
		return // duplicate voucher: the count did not change
	}
	if 2*set.Len() <= n.hQuorumSize(sid, m.S, n.id) {
		return
	}
	n.fw2Majority[k] = true
	delete(n.fw2Vouches, k)
	n.putSet(set)
	if n.polled[xsID{x: m.X, s: sid}] {
		n.maybeAnswer(ctx, m.X, sid, m.R)
	}
}

// onPoll is the second handler of Algorithm 3: record (x, s) in the Polled
// set; if the Fw2 majority was already reached (the asynchronous case where
// the Poll overtakes the routed request) answer immediately.
func (n *Node) onPoll(ctx simnet.Context, from int, m MsgPoll) {
	if !n.smp.J.Contains(from, m.R, n.id) {
		return
	}
	sid := n.strs.ID(m.S)
	n.polled[xsID{x: from, s: sid}] = true
	if n.fw2Majority[xsrID{x: from, s: sid, r: m.R}] {
		n.maybeAnswer(ctx, from, sid, m.R)
	}
}

// maybeAnswer applies the reply conditions of §3.1.2: a node holding s
// (knowledgeable, or decided — condition 2) answers subject to the budget
// (condition 3); a node that does not hold s keeps the authenticated
// request pending and answers it if a future decision changes s_this to s.
func (n *Node) maybeAnswer(ctx simnet.Context, x int, sid intern.ID, r uint64) {
	if sid == n.sthisID {
		n.tryAnswer(ctx, x, sid, r)
		return
	}
	n.beliefDeferred = append(n.beliefDeferred, deferredAnswer{x: x, s: sid, r: r})
}

// tryAnswer sends Answer(s) to x unless the answer budget is exhausted, in
// which case the answer is deferred until this node decides (Algorithm 3:
// "Wait for has_decided"). Each (x, s) is answered at most once.
func (n *Node) tryAnswer(ctx simnet.Context, x int, sid intern.ID, r uint64) {
	k := xsID{x: x, s: sid}
	if n.answered[k] {
		return
	}
	if n.params.AnswerBudget > 0 && n.answerCount >= n.params.AnswerBudget && !n.hasDecided {
		n.stats.AnswersDeferred++
		n.deferred = append(n.deferred, deferredAnswer{x: x, s: sid, r: r})
		return
	}
	n.answered[k] = true
	n.answerCount++
	n.stats.AnswersSent++
	ctx.Send(x, MsgAnswer{S: n.strs.String(sid), R: r})
}

// onAnswer counts answers from distinct poll-list members and decides on s
// upon a strict majority (end of Algorithm 1).
func (n *Node) onAnswer(ctx simnet.Context, from int, m MsgAnswer) {
	if n.hasDecided {
		return
	}
	sid := n.strs.Lookup(m.S)
	if sid == intern.None {
		return // not a poll we issued
	}
	st := n.state(sid)
	if !st.hasLabel || st.label != m.R {
		return // not a poll we issued
	}
	if !n.smp.J.Contains(n.id, st.label, from) {
		return // answerer is not on the authoritative poll list
	}
	if !st.answers.Add(from) {
		return // "w hasn't sent another Answer(s) message yet"
	}
	need := n.params.PollSize/2 + 1
	if n.params.DecideThreshold > 0 {
		need = n.params.DecideThreshold // oracle-validation mutation
	}
	if st.answers.Len() >= need {
		n.decide(ctx, sid, m.S)
	}
}

// decide fixes the output, updates s_this (Algorithm 3 condition 2: "sw
// was changed accordingly") and flushes both kinds of deferred answers:
// those held back by the budget and those awaiting this belief change.
func (n *Node) decide(ctx simnet.Context, sid intern.ID, s bitstring.String) {
	// Retain the interned copy, never the delivered argument: s may be a
	// zero-copy view of a transport buffer that is recycled after this
	// delivery returns (DESIGN.md §10), while the intern table owns stable
	// storage for every string it has assigned an ID.
	s = n.strs.String(sid)
	n.hasDecided = true
	n.decided = s
	n.decidedAt = ctx.Now()
	n.pub.Store(&decision{s: s, at: n.decidedAt})
	n.sthis = s
	n.sthisID = sid
	flushBudget := n.deferred
	n.deferred = nil
	for _, d := range flushBudget {
		n.tryAnswer(ctx, d.x, d.s, d.r)
	}
	flushBelief := n.beliefDeferred
	n.beliefDeferred = nil
	for _, d := range flushBelief {
		if d.s == sid {
			n.tryAnswer(ctx, d.x, d.s, d.r)
		}
	}
	flushRelay := n.relayDeferred
	n.relayDeferred = nil
	for _, d := range flushRelay {
		if d.s.Equal(s) {
			n.forwardPull(ctx, d.x, sid, s, d.r)
		}
	}
}

// hQuorumSize returns |distinct H(s, x)|, cached per (x, s): the threshold
// denominators of Algorithms 2/3 are consulted on every Fw1/Fw2 delivery
// and never change within a run.
func (n *Node) hQuorumSize(sid intern.ID, s bitstring.String, x int) int {
	k := xsID{x: x, s: sid}
	if v, ok := n.hxSizes[k]; ok {
		return v
	}
	v := countDistinct(n.smp.H.Quorum(s, x))
	n.hxSizes[k] = v
	return v
}

// distinct returns the distinct elements of ids, preserving first-seen
// order. Quorums built from unions of permutations may contain the same
// node under two indices; thresholds and sends use the distinct view.
// The input slice is reused (deduplicated in place): callers pass freshly
// sampled quorums. Quorum sizes are O(log n), so the quadratic scan beats
// a map both on allocation and on time.
func distinct(ids []int) []int {
	out := ids[:0]
	for _, id := range ids {
		dup := false
		for _, seen := range out {
			if seen == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	return out
}

// countDistinct returns len(distinct(ids)) without modifying ids.
func countDistinct(ids []int) int {
	count := 0
	for i, id := range ids {
		dup := false
		for _, prev := range ids[:i] {
			if prev == id {
				dup = true
				break
			}
		}
		if !dup {
			count++
		}
	}
	return count
}
