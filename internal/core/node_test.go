package core

import (
	"testing"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// fakeCtx captures sends for white-box protocol tests.
type fakeCtx struct {
	now   int
	sends []simnet.Envelope
}

func (c *fakeCtx) Now() int { return c.now }
func (c *fakeCtx) Send(to simnet.NodeID, m simnet.Message) {
	c.sends = append(c.sends, simnet.Envelope{To: to, Msg: m})
}

func (c *fakeCtx) byKind(kind string) []simnet.Envelope {
	var out []simnet.Envelope
	for _, e := range c.sends {
		if e.Msg.Kind() == kind {
			out = append(out, e)
		}
	}
	return out
}

// testSetup builds a small deterministic world for white-box tests.
func testSetup(t *testing.T, n int) (Params, *Samplers, bitstring.String) {
	t.Helper()
	p := DefaultParams(n)
	smp := NewSamplers(p)
	s := bitstring.Random(prng.New(42), p.StringBits)
	return p, smp, s
}

func newTestNode(id int, initial bitstring.String, p Params, smp *Samplers) *Node {
	return NewNode(id, initial, p, smp, prng.New(uint64(id)+1000))
}

func TestInitPushesToInverseQuorum(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	n := newTestNode(7, s, p, smp)
	ctx := &fakeCtx{}
	n.Init(ctx)

	pushes := ctx.byKind("push")
	wantTargets := distinct(smp.I.Inverse(s, 7))
	if len(pushes) != len(wantTargets) {
		t.Fatalf("sent %d pushes, want %d", len(pushes), len(wantTargets))
	}
	for _, e := range pushes {
		if !smp.I.Contains(s, e.To, 7) {
			t.Fatalf("pushed to %d which does not hold 7 in I(s, %d)", e.To, e.To)
		}
	}
	// Own candidate registered and pulled immediately.
	if got := n.Stats().CandidateListSize; got != 1 {
		t.Fatalf("candidate list size %d, want 1", got)
	}
	if len(ctx.byKind("poll")) != p.PollSize {
		t.Fatalf("sent %d polls, want %d", len(ctx.byKind("poll")), p.PollSize)
	}
	if got := len(ctx.byKind("pull")); got != len(distinct(smp.H.Quorum(s, 7))) {
		t.Fatalf("sent %d pulls, want %d", got, len(distinct(smp.H.Quorum(s, 7))))
	}
}

func TestInitWithZeroStringIsSilent(t *testing.T) {
	p, smp, _ := testSetup(t, 64)
	n := newTestNode(3, bitstring.String{}, p, smp)
	ctx := &fakeCtx{}
	n.Init(ctx)
	if len(ctx.sends) != 0 {
		t.Fatalf("zero-candidate node sent %d messages", len(ctx.sends))
	}
}

func TestPushMajorityFilter(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const me = 11
	n := newTestNode(me, bitstring.Random(prng.New(1), p.StringBits), p, smp)
	n.Init(&fakeCtx{})

	quorum := distinct(smp.I.Quorum(s, me))
	need := len(quorum)/2 + 1

	// Pushes from non-members are ignored entirely.
	outsider := pickNonMember(quorum, 64)
	ctx := &fakeCtx{}
	for i := 0; i < need+3; i++ {
		n.Deliver(ctx, outsider, MsgPush{S: s})
	}
	if n.HasCandidate(s) {
		t.Fatal("candidate accepted from non-quorum pushes")
	}

	// A minority of quorum members is not enough.
	for _, y := range quorum[:need-1] {
		n.Deliver(ctx, y, MsgPush{S: s})
	}
	if n.HasCandidate(s) {
		t.Fatal("candidate accepted below majority")
	}
	// Duplicate pushes from the same member must not inflate the count.
	for i := 0; i < 5; i++ {
		n.Deliver(ctx, quorum[0], MsgPush{S: s})
	}
	if n.HasCandidate(s) {
		t.Fatal("duplicate pushes crossed the majority filter")
	}

	// The majority-crossing push triggers the pull for the new candidate.
	before := len(ctx.byKind("poll"))
	n.Deliver(ctx, quorum[need-1], MsgPush{S: s})
	if !n.HasCandidate(s) {
		t.Fatal("candidate not accepted at majority")
	}
	if got := len(ctx.byKind("poll")) - before; got != p.PollSize {
		t.Fatalf("pull not started on acceptance: %d new polls", got)
	}
}

func TestPushRejectsMalformedStrings(t *testing.T) {
	p, smp, _ := testSetup(t, 64)
	n := newTestNode(5, bitstring.String{}, p, smp)
	ctx := &fakeCtx{}
	short := bitstring.Random(prng.New(3), p.StringBits/2)
	for from := 0; from < 64; from++ {
		n.Deliver(ctx, from, MsgPush{S: short})
		n.Deliver(ctx, from, MsgPush{S: bitstring.String{}})
	}
	if n.Stats().CandidateListSize != 0 {
		t.Fatal("malformed strings entered the candidate list")
	}
}

func TestPullForwardOnlyForOwnString(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	other := bitstring.Random(prng.New(9), p.StringBits)

	// y holds s; a pull for `other` must not be proxied.
	yID := distinct(smp.H.Quorum(other, 20))[0]
	y := newTestNode(yID, s, p, smp)
	y.Init(&fakeCtx{})
	ctx := &fakeCtx{}
	y.Deliver(ctx, 20, MsgPull{S: other, R: 5})
	if len(ctx.byKind("fw1")) != 0 {
		t.Fatal("node proxied a pull for a string it does not hold")
	}
}

func TestPullForwardedOncePerRequester(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const x = 20
	yID := distinct(smp.H.Quorum(s, x))[0]
	y := newTestNode(yID, s, p, smp)
	y.Init(&fakeCtx{})

	ctx := &fakeCtx{}
	y.Deliver(ctx, x, MsgPull{S: s, R: 5})
	first := len(ctx.byKind("fw1"))
	if first == 0 {
		t.Fatal("no Fw1 sent for a valid pull")
	}
	// Label churn from the same requester must not amplify traffic.
	y.Deliver(ctx, x, MsgPull{S: s, R: 6})
	y.Deliver(ctx, x, MsgPull{S: s, R: 7})
	if got := len(ctx.byKind("fw1")); got != first {
		t.Fatalf("pull re-forwarded under label churn: %d -> %d", first, got)
	}
}

func TestPullIgnoredFromForeignQuorum(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const x = 20
	quorum := distinct(smp.H.Quorum(s, x))
	outsider := pickNonMember(quorum, 64)
	y := newTestNode(outsider, s, p, smp)
	y.Init(&fakeCtx{})
	ctx := &fakeCtx{}
	y.Deliver(ctx, x, MsgPull{S: s, R: 5})
	if len(ctx.byKind("fw1")) != 0 {
		t.Fatal("node outside H(s, x) proxied the pull")
	}
}

// buildFw2Majority drives node w through a valid Fw2 majority for requester
// x with label r, returning the capture context.
func buildFw2Majority(t *testing.T, w *Node, smp *Samplers, x int, s bitstring.String, r uint64, polledFirst bool) *fakeCtx {
	t.Helper()
	ctx := &fakeCtx{}
	if polledFirst {
		w.Deliver(ctx, x, MsgPoll{S: s, R: r})
	}
	quorum := distinct(smp.H.Quorum(s, w.id))
	need := len(quorum)/2 + 1
	for _, z := range quorum[:need] {
		w.Deliver(ctx, z, MsgFw2{X: x, S: s, R: r})
	}
	return ctx
}

// findLabelWith returns a label r such that member ∈ J(x, r).
func findLabelWith(t *testing.T, smp *Samplers, labels uint64, x, member int) uint64 {
	t.Helper()
	for r := uint64(0); r < labels; r++ {
		if smp.J.Contains(x, r, member) {
			return r
		}
	}
	t.Fatal("no label found placing member on x's poll list")
	return 0
}

func TestAnswerRequiresPollAndMajority(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const wID, x = 9, 30
	r := findLabelWith(t, smp, p.Labels, x, wID)

	// Without the Poll, even an Fw2 majority must not trigger an answer.
	w := newTestNode(wID, s, p, smp)
	w.Init(&fakeCtx{})
	ctx := buildFw2Majority(t, w, smp, x, s, r, false)
	if len(ctx.byKind("answer")) != 0 {
		t.Fatal("answered without being polled")
	}
	// The late Poll (asynchronous case) releases the answer.
	w.Deliver(ctx, x, MsgPoll{S: s, R: r})
	if len(ctx.byKind("answer")) != 1 {
		t.Fatalf("late poll answers = %d, want 1", len(ctx.byKind("answer")))
	}

	// Poll-first order also answers exactly once.
	w2 := newTestNode(wID, s, p, smp)
	w2.Init(&fakeCtx{})
	ctx2 := buildFw2Majority(t, w2, smp, x, s, r, true)
	if len(ctx2.byKind("answer")) != 1 {
		t.Fatalf("poll-first answers = %d, want 1", len(ctx2.byKind("answer")))
	}
	// Replayed Fw2s must not produce duplicate answers.
	quorum := distinct(smp.H.Quorum(s, wID))
	for _, z := range quorum {
		w2.Deliver(ctx2, z, MsgFw2{X: x, S: s, R: r})
	}
	if len(ctx2.byKind("answer")) != 1 {
		t.Fatal("duplicate answers after Fw2 replay")
	}
}

func TestAnswerRejectsWrongString(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	other := bitstring.Random(prng.New(17), p.StringBits)
	const wID, x = 9, 30
	r := findLabelWith(t, smp, p.Labels, x, wID)
	w := newTestNode(wID, s, p, smp)
	w.Init(&fakeCtx{})
	// Fw2s for a string w does not believe are pended, not answered.
	ctx := buildFw2Majority(t, w, smp, x, other, r, true)
	if len(ctx.byKind("answer")) != 0 {
		t.Fatal("answered for a string the node does not hold")
	}
}

func TestBeliefDeferredAnsweredAfterDecision(t *testing.T) {
	// §3.1.2 reply condition 2: a node holding junk receives an
	// authenticated request for gstring; it answers only after deciding
	// gstring itself ("s_w was changed accordingly").
	p, smp, _ := testSetup(t, 64)
	junk := bitstring.Random(prng.New(31), p.StringBits)
	gstring := bitstring.Random(prng.New(32), p.StringBits)
	const wID, x = 9, 30
	r := findLabelWith(t, smp, p.Labels, x, wID)

	w := newTestNode(wID, junk, p, smp)
	w.Init(&fakeCtx{})
	ctx := buildFw2Majority(t, w, smp, x, gstring, r, true)
	if len(ctx.byKind("answer")) != 0 {
		t.Fatal("junk holder answered a gstring request before deciding")
	}

	// w now learns gstring through the push phase and decides it.
	quorum := distinct(smp.I.Quorum(gstring, wID))
	for _, y := range quorum[:len(quorum)/2+1] {
		w.Deliver(ctx, y, MsgPush{S: gstring})
	}
	rOwn, _ := w.pollLabel(gstring)
	list := smp.J.List(wID, rOwn)
	for _, member := range list[:p.PollSize/2+1] {
		w.Deliver(ctx, member, MsgAnswer{S: gstring, R: rOwn})
	}
	if d, ok := w.Decided(); !ok || !d.Equal(gstring) {
		t.Fatal("setup: node should have decided gstring")
	}
	// The pending request for gstring must now be answered; the old junk
	// belief must not resurrect anything.
	answers := ctx.byKind("answer")
	if len(answers) != 1 {
		t.Fatalf("answers after decision = %d, want 1", len(answers))
	}
	if answers[0].To != x {
		t.Fatalf("answer went to %d, want %d", answers[0].To, x)
	}
}

func TestAnswerBudgetDefersAndFlushesOnDecision(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	p.AnswerBudget = 1
	const wID = 9
	w := newTestNode(wID, s, p, smp)
	w.Init(&fakeCtx{})

	// Two requesters whose poll lists contain w.
	x1, x2 := 30, 31
	r1 := findLabelWith(t, smp, p.Labels, x1, wID)
	r2 := findLabelWith(t, smp, p.Labels, x2, wID)

	ctx1 := buildFw2Majority(t, w, smp, x1, s, r1, true)
	if len(ctx1.byKind("answer")) != 1 {
		t.Fatal("first request not answered within budget")
	}
	ctx2 := buildFw2Majority(t, w, smp, x2, s, r2, true)
	if len(ctx2.byKind("answer")) != 0 {
		t.Fatal("budget exceeded but request answered")
	}
	if w.Stats().AnswersDeferred != 1 {
		t.Fatalf("AnswersDeferred = %d, want 1", w.Stats().AnswersDeferred)
	}

	// Drive w to decide its own candidate: majority answers on its poll.
	rOwn, _ := w.pollLabel(s)
	ctx3 := &fakeCtx{now: 7}
	list := smp.J.List(wID, rOwn)
	for _, member := range list[:len(list)/2+1] {
		w.Deliver(ctx3, member, MsgAnswer{S: s, R: rOwn})
	}
	if _, ok := w.Decided(); !ok {
		t.Fatal("node did not decide on answer majority")
	}
	if w.DecidedAt() != 7 {
		t.Fatalf("DecidedAt = %d, want 7", w.DecidedAt())
	}
	// The deferred answer to x2 must have flushed on decision.
	if len(ctx3.byKind("answer")) != 1 {
		t.Fatalf("deferred answer not flushed: %d answers", len(ctx3.byKind("answer")))
	}
	if ctx3.byKind("answer")[0].To != x2 {
		t.Fatalf("flushed answer went to %d, want %d", ctx3.byKind("answer")[0].To, x2)
	}
}

func TestDecisionRequiresPollListMajority(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const me = 9
	n := newTestNode(me, s, p, smp)
	n.Init(&fakeCtx{})
	r, _ := n.pollLabel(s)
	list := smp.J.List(me, r)
	ctx := &fakeCtx{}

	// Answers from non-members are ignored.
	outsider := pickNonMember(list, 64)
	for i := 0; i < p.PollSize; i++ {
		n.Deliver(ctx, outsider, MsgAnswer{S: s, R: r})
	}
	if _, ok := n.Decided(); ok {
		t.Fatal("decided on answers from outside the poll list")
	}

	// Wrong label answers are ignored.
	for _, member := range list {
		n.Deliver(ctx, member, MsgAnswer{S: s, R: r + 1})
	}
	if _, ok := n.Decided(); ok {
		t.Fatal("decided on answers with a stale label")
	}

	// Duplicate answers from one member are counted once.
	for i := 0; i < p.PollSize; i++ {
		n.Deliver(ctx, list[0], MsgAnswer{S: s, R: r})
	}
	if _, ok := n.Decided(); ok {
		t.Fatal("decided on duplicate answers")
	}

	half := list[:p.PollSize/2]
	for _, member := range half {
		n.Deliver(ctx, member, MsgAnswer{S: s, R: r})
	}
	if _, ok := n.Decided(); ok {
		t.Fatal("decided on exactly half (needs strict majority)")
	}
	n.Deliver(ctx, list[p.PollSize/2], MsgAnswer{S: s, R: r})
	if d, ok := n.Decided(); !ok || !d.Equal(s) {
		t.Fatal("did not decide at strict majority")
	}
}

func TestFw1RequiresAllMembershipChecks(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const x = 12
	// Choose w on x's poll list for some label and z ∈ H(s, w).
	r := uint64(3)
	w := smp.J.List(x, r)[0]
	zID := distinct(smp.H.Quorum(s, w))[0]
	z := newTestNode(zID, s, p, smp)
	z.Init(&fakeCtx{})

	hsx := distinct(smp.H.Quorum(s, x))
	need := len(hsx)/2 + 1

	// Vouches from outside H(s, x) are ignored.
	ctx := &fakeCtx{}
	outsider := pickNonMember(hsx, 64)
	for i := 0; i < need+2; i++ {
		z.Deliver(ctx, outsider, MsgFw1{X: x, S: s, R: r, W: w})
	}
	if len(ctx.byKind("fw2")) != 0 {
		t.Fatal("Fw2 sent from vouches outside H(s, x)")
	}

	// A w outside J(x, r) is ignored even with valid vouchers.
	wOutside := pickNonMember(smp.J.List(x, r), 64)
	if smp.H.Contains(s, wOutside, zID) {
		// extremely unlikely; skip rather than construct a new world
		t.Skip("z happens to sit in H(s, wOutside)")
	}
	for _, y := range hsx[:need] {
		z.Deliver(ctx, y, MsgFw1{X: x, S: s, R: r, W: wOutside})
	}
	if len(ctx.byKind("fw2")) != 0 {
		t.Fatal("Fw2 sent for w outside the poll list")
	}

	// The valid majority triggers exactly one Fw2 to w.
	for _, y := range hsx[:need] {
		z.Deliver(ctx, y, MsgFw1{X: x, S: s, R: r, W: w})
	}
	fw2s := ctx.byKind("fw2")
	if len(fw2s) != 1 || fw2s[0].To != w {
		t.Fatalf("fw2s = %v, want exactly one to %d", fw2s, w)
	}
	// Replays do not re-forward ("forward only once").
	for _, y := range hsx {
		z.Deliver(ctx, y, MsgFw1{X: x, S: s, R: r, W: w})
	}
	if len(ctx.byKind("fw2")) != 1 {
		t.Fatal("Fw2 re-forwarded on replay")
	}
}

func TestDecidedNodeStopsNewPulls(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const me = 9
	n := newTestNode(me, s, p, smp)
	n.Init(&fakeCtx{})
	r, _ := n.pollLabel(s)
	list := smp.J.List(me, r)
	ctx := &fakeCtx{}
	for _, member := range list[:p.PollSize/2+1] {
		n.Deliver(ctx, member, MsgAnswer{S: s, R: r})
	}
	if _, ok := n.Decided(); !ok {
		t.Fatal("setup: node should have decided")
	}

	// A new candidate reaching push majority must not start a pull.
	other := bitstring.Random(prng.New(23), p.StringBits)
	before := len(ctx.byKind("poll"))
	for _, y := range distinct(smp.I.Quorum(other, me)) {
		n.Deliver(ctx, y, MsgPush{S: other})
	}
	if got := len(ctx.byKind("poll")); got != before {
		t.Fatal("decided node started a new pull")
	}
	// But it now believes gstring and serves as a relay for it.
	if !n.Believes().Equal(s) {
		t.Fatal("belief not updated on decision")
	}
}

func pickNonMember(members []int, n int) int {
	in := make(map[int]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	for i := 0; i < n; i++ {
		if !in[i] {
			return i
		}
	}
	panic("no non-member available")
}

func TestFw2MalformedStringIgnored(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const wID, x = 9, 30
	r := findLabelWith(t, smp, p.Labels, x, wID)
	w := newTestNode(wID, s, p, smp)
	w.Init(&fakeCtx{})
	short := bitstring.Random(prng.New(41), p.StringBits/2)
	ctx := buildFw2Majority(t, w, smp, x, short, r, true)
	if len(ctx.byKind("answer")) != 0 {
		t.Fatal("answered a malformed-length string")
	}
	if len(w.fw2Vouches) != 0 || len(w.fw2Majority) != 0 {
		t.Fatal("malformed string accumulated vouch state")
	}
}

func TestAnswersIgnoredAfterDecision(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	const me = 9
	n := newTestNode(me, s, p, smp)
	n.Init(&fakeCtx{})
	r, _ := n.pollLabel(s)
	list := smp.J.List(me, r)
	ctx := &fakeCtx{now: 3}
	for _, member := range list[:p.PollSize/2+1] {
		n.Deliver(ctx, member, MsgAnswer{S: s, R: r})
	}
	if _, ok := n.Decided(); !ok {
		t.Fatal("setup: not decided")
	}
	at := n.DecidedAt()
	// A late flood of answers for a different candidate must not flip or
	// re-time the decision.
	other := bitstring.Random(prng.New(43), p.StringBits)
	late := &fakeCtx{now: 9}
	for _, member := range list {
		n.Deliver(late, member, MsgAnswer{S: other, R: r})
		n.Deliver(late, member, MsgAnswer{S: s, R: r})
	}
	if d, _ := n.Decided(); !d.Equal(s) || n.DecidedAt() != at {
		t.Fatal("decision changed after the fact")
	}
}

func TestStatsCounters(t *testing.T) {
	p, smp, s := testSetup(t, 64)
	n := newTestNode(5, s, p, smp)
	ctx := &fakeCtx{}
	n.Init(ctx)
	st := n.Stats()
	if st.PushesSent != len(ctx.byKind("push")) {
		t.Fatalf("PushesSent = %d, sent %d", st.PushesSent, len(ctx.byKind("push")))
	}
	if st.PullsStarted != 1 || st.CandidateListSize != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if !n.HasCandidate(s) {
		t.Fatal("own candidate not reported by HasCandidate")
	}
}
