// Package core implements AER, the paper's primary contribution: the
// unbalanced almost-everywhere to everywhere agreement protocol of §3
// (push phase §3.1.1, pull phase §3.1.2, Algorithms 1–3).
//
// Every node is a simnet.Node, so the same protocol code runs unchanged
// under the synchronous, asynchronous and goroutine runners. The protocol
// is fully event-driven: a node inserts a string into its candidate list
// the moment a strict majority of the corresponding Push Quorum has pushed
// it, and immediately starts the pull verification for that candidate —
// which is what makes AER "correct and efficient under asynchrony" (§1).
package core

import (
	"fmt"

	"github.com/fastba/fastba/internal/sampler"
)

// Params fixes the protocol geometry. All sizes are derived from n by
// DefaultParams but remain individually overridable for sweeps and
// ablations.
type Params struct {
	// N is the system size (the paper's n).
	N int
	// QuorumSize is d, the cardinality of Push Quorums I(s, x) and Pull
	// Quorums H(s, x) (Lemma 1: d = O(log n)).
	QuorumSize int
	// PollSize is the cardinality of Poll Lists J(x, r) (Lemma 2:
	// d = O(log n)).
	PollSize int
	// Labels is |R|, the cardinality of the random label domain, required
	// to be polynomial in n (§2.2); DefaultParams uses n².
	Labels uint64
	// StringBits is the length of candidate strings: c·log n for a large
	// enough constant c (§3, preconditions).
	StringBits int
	// AnswerBudget is the maximum number of pull requests a node answers
	// before deferring further answers until it has decided (the log² n
	// threshold of Algorithm 3). Zero means unlimited — the load-balance
	// ablation of experiment E12.
	AnswerBudget int
	// SamplerSeed keys the shared sampling functions I, H and J. The paper
	// assumes all nodes share these functions (§3.1 "Preconditions"); the
	// seed is therefore public and known to the adversary.
	SamplerSeed uint64
	// DecideThreshold, when positive, REPLACES the strict Poll List
	// majority of Algorithm 1 with a fixed answer count — a deliberate
	// protocol mutation for validating the invariant oracles (a node that
	// decides below the majority cannot hold a valid quorum certificate,
	// and colluding answerers can split the system). Zero, the only
	// faithful value, keeps the paper's 2·answers > PollSize rule.
	DecideThreshold int
	// DeferredRelay enables an extension beyond the paper's pseudocode:
	// a pull-quorum member that declines to proxy a request because the
	// string differs from its current belief (Algorithm 2's s = s_y check)
	// remembers the request and replays it if a later decision changes its
	// belief to that string — the Algorithm 2 analogue of §3.1.2's reply
	// condition 2. It substantially improves the success probability at
	// small n at the cost of extra post-decision messages; experiment E13
	// quantifies the trade-off. Off by default for pseudocode fidelity.
	DeferredRelay bool
}

// DefaultParams returns the geometry used throughout the experiments:
// d = max(12, 3·⌈log₂ n⌉) for quorums and poll lists, |R| = n²,
// |gstring| = 4·⌈log₂ n⌉ bits and a ⌈log₂ n⌉² answer budget.
func DefaultParams(n int) Params {
	lg := log2Ceil(n)
	d := 3 * lg
	if d < 12 {
		d = 12
	}
	if d > n {
		d = n
	}
	return Params{
		N:            n,
		QuorumSize:   d,
		PollSize:     d,
		Labels:       uint64(n) * uint64(n),
		StringBits:   4 * lg,
		AnswerBudget: lg * lg,
		SamplerSeed:  0x5eed,
	}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.N <= 1:
		return fmt.Errorf("core: N = %d too small", p.N)
	case p.QuorumSize <= 0 || p.QuorumSize > p.N:
		return fmt.Errorf("core: QuorumSize = %d out of range for N = %d", p.QuorumSize, p.N)
	case p.PollSize <= 0 || p.PollSize > p.N:
		return fmt.Errorf("core: PollSize = %d out of range for N = %d", p.PollSize, p.N)
	case p.Labels == 0:
		return fmt.Errorf("core: Labels must be positive")
	case p.StringBits <= 0:
		return fmt.Errorf("core: StringBits must be positive")
	case p.AnswerBudget < 0:
		return fmt.Errorf("core: AnswerBudget must be non-negative")
	case p.DecideThreshold < 0 || p.DecideThreshold > p.PollSize:
		return fmt.Errorf("core: DecideThreshold = %d out of range for PollSize = %d", p.DecideThreshold, p.PollSize)
	}
	return nil
}

// Samplers bundles the three shared sampling functions of §3.1:
// I defines Push Quorums, H defines Pull Quorums and J generates Poll
// Lists. All nodes (and the adversary) hold the same instance.
type Samplers struct {
	I sampler.Quorum
	H sampler.Quorum
	J *sampler.Poll
}

// NewSamplers constructs the shared samplers for the given parameters
// using the permutation construction (no overloaded nodes, Lemma 1).
func NewSamplers(p Params) *Samplers {
	return &Samplers{
		I: sampler.NewPermQuorum(p.N, p.QuorumSize, p.SamplerSeed, "I"),
		H: sampler.NewPermQuorum(p.N, p.QuorumSize, p.SamplerSeed, "H"),
		J: sampler.NewPoll(p.N, p.PollSize, p.Labels, p.SamplerSeed),
	}
}

// log2Ceil returns ⌈log₂ n⌉ for n ≥ 1.
func log2Ceil(n int) int {
	lg := 0
	for v := n - 1; v > 0; v >>= 1 {
		lg++
	}
	if lg == 0 {
		lg = 1
	}
	return lg
}
