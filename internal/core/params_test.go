package core

import "testing"

func TestLog2Ceil(t *testing.T) {
	tests := []struct {
		give, want int
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := log2Ceil(tt.give); got != tt.want {
			t.Errorf("log2Ceil(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestDefaultParamsValid(t *testing.T) {
	for _, n := range []int{16, 64, 100, 256, 1000, 4096} {
		p := DefaultParams(n)
		if err := p.Validate(); err != nil {
			t.Errorf("DefaultParams(%d) invalid: %v", n, err)
		}
		if p.QuorumSize > n {
			t.Errorf("n=%d: quorum larger than system", n)
		}
		if p.StringBits < 4 {
			t.Errorf("n=%d: StringBits %d too small", n, p.StringBits)
		}
	}
}

func TestDefaultParamsScalesLogarithmically(t *testing.T) {
	small := DefaultParams(64).QuorumSize
	big := DefaultParams(4096).QuorumSize
	if big <= small {
		t.Fatalf("quorum size does not grow with n: %d vs %d", small, big)
	}
	// d = Θ(log n): quadrupling the exponent should not even double d+12.
	if big > 2*small {
		t.Fatalf("quorum size grows too fast: %d vs %d", small, big)
	}
}

func TestParamsValidateErrors(t *testing.T) {
	base := DefaultParams(64)
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"tiny N", func(p *Params) { p.N = 1 }},
		{"zero quorum", func(p *Params) { p.QuorumSize = 0 }},
		{"quorum over N", func(p *Params) { p.QuorumSize = p.N + 1 }},
		{"zero poll", func(p *Params) { p.PollSize = 0 }},
		{"poll over N", func(p *Params) { p.PollSize = p.N + 1 }},
		{"zero labels", func(p *Params) { p.Labels = 0 }},
		{"zero bits", func(p *Params) { p.StringBits = 0 }},
		{"negative budget", func(p *Params) { p.AnswerBudget = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestNewSamplersGeometry(t *testing.T) {
	p := DefaultParams(128)
	smp := NewSamplers(p)
	if smp.I.N() != 128 || smp.H.N() != 128 || smp.J.N() != 128 {
		t.Fatal("sampler domain mismatch")
	}
	if smp.I.Size() != p.QuorumSize || smp.J.Size() != p.PollSize {
		t.Fatal("sampler size mismatch")
	}
}
