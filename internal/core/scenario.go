package core

import (
	"fmt"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// Scenario captures one AER experiment setup: the shared samplers, the
// corruption pattern, the true global string and each node's initial
// candidate. It realizes the preconditions of §3.1: more than half of the
// nodes must be correct and know gstring, and gstring has a ≥ 2/3+ε
// fraction of uniformly random bits.
//
// Scenarios are built either synthetically (NewScenario, for AER-only
// experiments) or from the output of the almost-everywhere substrate
// (internal/ae) for end-to-end BA runs.
type Scenario struct {
	Params  Params
	Smp     *Samplers
	GString bitstring.String
	// Corrupt marks Byzantine nodes.
	Corrupt []bool
	// Initial holds every node's starting candidate s_x. Byzantine nodes
	// ignore theirs.
	Initial []bitstring.String
	// Seed is the master seed; per-node private RNGs derive from it.
	Seed uint64
}

// ScenarioConfig controls synthetic scenario generation.
type ScenarioConfig struct {
	// CorruptFrac is t/n (the paper requires < 1/3 − ε).
	CorruptFrac float64
	// KnowFrac is the fraction of correct nodes that initially know
	// gstring (the paper requires > 3/4 when t < (1/3−ε)n, equivalently
	// correct-and-knowledgeable > n/2).
	KnowFrac float64
	// SharedJunk makes all unknowing correct nodes share a single bogus
	// candidate — the worst case for the push filter — instead of holding
	// individually random junk.
	SharedJunk bool
	// AdvBits is the fraction of gstring bits fixed by the adversary
	// (the paper allows up to 1/3 − ε; default 1/3).
	AdvBits float64
}

// DefaultScenarioConfig matches the defaults documented in DESIGN.md §5.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{CorruptFrac: 0.10, KnowFrac: 0.85, SharedJunk: true, AdvBits: 1.0 / 3}
}

// TestingScenarioConfig is a comfortably-concentrated population used by
// tests that assert hard (non-statistical) agreement. The paper's
// guarantees are "with high probability" and asymptotic in n; at the small
// n and d = Θ(log n) used in unit tests, the default population's strict
// quorum majorities fail with probability ≈ n·exp(-2d(p-1/2)²) ≈ a few
// percent per run. This config raises the correct-and-knowledgeable
// fraction p to ≈ 0.87 so those tails are negligible; experiments E9/E13
// measure the success-rate curve for the default (tighter) population.
func TestingScenarioConfig() ScenarioConfig {
	return ScenarioConfig{CorruptFrac: 0.05, KnowFrac: 0.92, SharedJunk: true, AdvBits: 1.0 / 3}
}

// NewScenario builds a synthetic scenario: random (non-adaptive) corruption
// of ⌊CorruptFrac·n⌋ nodes, a partially adversarial gstring and initial
// beliefs per KnowFrac. It returns an error if the resulting population
// violates the protocol's precondition (correct ∧ knowledgeable > n/2).
func NewScenario(p Params, seed uint64, cfg ScenarioConfig) (*Scenario, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.CorruptFrac < 0 || cfg.CorruptFrac >= 1 {
		return nil, fmt.Errorf("core: CorruptFrac %v out of range", cfg.CorruptFrac)
	}
	if cfg.KnowFrac < 0 || cfg.KnowFrac > 1 {
		return nil, fmt.Errorf("core: KnowFrac %v out of range", cfg.KnowFrac)
	}

	src := prng.New(prng.DeriveKey(seed, "scenario", 0))
	sc := &Scenario{
		Params:  p,
		Smp:     NewSamplers(p),
		Corrupt: make([]bool, p.N),
		Initial: make([]bitstring.String, p.N),
		Seed:    seed,
	}

	// Non-adaptive corruption: nodes chosen before the execution (§2.1).
	t := int(cfg.CorruptFrac * float64(p.N))
	perm := src.Perm(p.N)
	for _, id := range perm[:t] {
		sc.Corrupt[id] = true
	}

	// gstring: adversary fixes AdvBits of the bits, the rest are uniform.
	sc.GString = bitstring.PartiallyAdversarial(src.Fork(1), p.StringBits, cfg.AdvBits, 0xA5)

	// Beliefs: a KnowFrac fraction of correct nodes know gstring; the rest
	// hold junk.
	var correctIDs []int
	for id := 0; id < p.N; id++ {
		if !sc.Corrupt[id] {
			correctIDs = append(correctIDs, id)
		}
	}
	src.Shuffle(len(correctIDs), func(i, j int) {
		correctIDs[i], correctIDs[j] = correctIDs[j], correctIDs[i]
	})
	knowing := int(cfg.KnowFrac * float64(len(correctIDs)))
	sharedJunk := bitstring.Random(src.Fork(2), p.StringBits)
	for i, id := range correctIDs {
		switch {
		case i < knowing:
			sc.Initial[id] = sc.GString
		case cfg.SharedJunk:
			sc.Initial[id] = sharedJunk
		default:
			sc.Initial[id] = bitstring.Random(src, p.StringBits)
		}
	}

	if 2*knowing <= p.N {
		return nil, fmt.Errorf("core: precondition violated: %d knowledgeable correct nodes of %d (need > n/2)", knowing, p.N)
	}
	return sc, nil
}

// ScenarioFromBeliefs builds a scenario from an externally produced belief
// vector — the composition point with the almost-everywhere substrate: the
// beliefs are internal/ae's output and gstring its ground truth. The
// precondition check (> n/2 correct and knowledgeable) is the caller's
// responsibility; BA reports the measured knowledge fraction instead of
// failing, since an adversarial AE phase may leave the population short.
func ScenarioFromBeliefs(p Params, seed uint64, corrupt []bool, gstring bitstring.String, beliefs []bitstring.String) (*Scenario, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(corrupt) != p.N || len(beliefs) != p.N {
		return nil, fmt.Errorf("core: belief scenario vectors must have length %d", p.N)
	}
	if gstring.Len() != p.StringBits {
		return nil, fmt.Errorf("core: gstring has %d bits, params want %d", gstring.Len(), p.StringBits)
	}
	sc := &Scenario{
		Params:  p,
		Smp:     NewSamplers(p),
		GString: gstring,
		Corrupt: append([]bool(nil), corrupt...),
		Initial: append([]bitstring.String(nil), beliefs...),
		Seed:    seed,
	}
	return sc, nil
}

// NodeRNG returns node id's private random source.
func (sc *Scenario) NodeRNG(id int) *prng.Source {
	return prng.New(prng.DeriveKey(sc.Seed, "node", uint64(id)))
}

// Build assembles the simnet node vector: correct nodes run the AER
// protocol; Byzantine slots are filled by mkByz (nil mkByz yields silent
// Byzantine nodes that never send — the weakest adversary). It returns the
// full vector plus the correct nodes for post-run inspection, indexed by
// node ID (nil entries for Byzantine IDs).
func (sc *Scenario) Build(mkByz func(id int) simnet.Node) (nodes []simnet.Node, correct []*Node) {
	nodes = make([]simnet.Node, sc.Params.N)
	correct = make([]*Node, sc.Params.N)
	for id := 0; id < sc.Params.N; id++ {
		if sc.Corrupt[id] {
			if mkByz != nil {
				nodes[id] = mkByz(id)
			} else {
				nodes[id] = silentNode{}
			}
			continue
		}
		n := NewNode(id, sc.Initial[id], sc.Params, sc.Smp, sc.NodeRNG(id))
		nodes[id] = n
		correct[id] = n
	}
	return nodes, correct
}

// silentNode is the trivial Byzantine behaviour: full crash from the start.
type silentNode struct{}

func (silentNode) Init(simnet.Context)                                   {}
func (silentNode) Deliver(simnet.Context, simnet.NodeID, simnet.Message) {}

// Outcome summarizes the decisions of the correct nodes after a run.
type Outcome struct {
	Correct       int // number of correct nodes
	Decided       int // correct nodes that decided
	DecidedG      int // correct nodes that decided on gstring
	DecidedOther  int // correct nodes that decided on something else
	MaxDecisionAt int // latest decision time among deciders
	SumCandidates int // Σ|L_x| over correct nodes (Lemma 4)
	// DistinctDecisions counts the distinct values decided by correct
	// nodes — the agreement oracle's input: > 1 is an agreement violation.
	DistinctDecisions int
	// CertDeficits counts deciders whose re-derived quorum certificate
	// (Node.DecisionCert) falls short of the strict poll-list majority —
	// must stay 0 under every fault schedule.
	CertDeficits int
}

// Agreement reports whether every correct node decided and all decisions
// equal gstring — the Lemma 9/10 success condition.
func (o Outcome) Agreement() bool {
	return o.Decided == o.Correct && o.DecidedG == o.Decided
}

// Evaluate inspects the correct nodes after a run.
func Evaluate(correct []*Node, gstring bitstring.String) Outcome {
	var o Outcome
	values := make(map[bitstring.MapKey]bool)
	for _, n := range correct {
		if n == nil {
			continue
		}
		o.Correct++
		o.SumCandidates += n.Stats().CandidateListSize
		d, ok := n.Decided()
		if !ok {
			continue
		}
		o.Decided++
		values[d.MapKey()] = true
		if d.Equal(gstring) {
			o.DecidedG++
		} else {
			o.DecidedOther++
		}
		if at := n.DecidedAt(); at > o.MaxDecisionAt {
			o.MaxDecisionAt = at
		}
		if support, need, ok := n.DecisionCert(); ok && support < need {
			o.CertDeficits++
		}
	}
	o.DistinctDecisions = len(values)
	return o
}
