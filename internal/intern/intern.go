// Package intern provides small per-node interning tables that map
// candidate bit strings to dense integer IDs.
//
// Every protocol node keys most of its state by candidate string. Keying
// maps directly by string forces a fresh key allocation and a string hash
// on every delivery (bitstring.String.Key allocates); interning each
// distinct string once turns all subsequent state lookups into integer
// indexing. The table is expected to stay small: Lemma 4 bounds the number
// of distinct strings a correct node tracks during an execution.
//
// Tables are not safe for concurrent use; each protocol node owns its own
// (runners never activate one node concurrently).
package intern

import "github.com/fastba/fastba/internal/bitstring"

// ID is a dense per-table index of an interned string. IDs are assigned
// consecutively from 0 in first-seen order, so they are usable directly as
// slice indices.
type ID = int32

// None is the sentinel returned by Lookup for strings never interned.
const None ID = -1

// Table interns bit strings to dense IDs. The zero value is ready to use.
type Table struct {
	ids  map[bitstring.MapKey]ID
	strs []bitstring.String
}

// ID returns the dense ID for s, interning it on first sight.
//
// The table retains a Clone of s, never s itself: delivered strings may be
// zero-copy views of a transport buffer that is recycled after delivery
// (bitstring.View; DESIGN.md §10), and the table must own stable storage —
// String(id) is the canonical stable copy callers retain instead of a view.
func (t *Table) ID(s bitstring.String) ID {
	if id, ok := t.ids[s.MapKey()]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[bitstring.MapKey]ID, 8)
	}
	c := s.Clone()
	id := ID(len(t.strs))
	t.ids[c.MapKey()] = id
	t.strs = append(t.strs, c)
	return id
}

// Lookup returns the ID for s, or None if s was never interned. It never
// modifies the table.
func (t *Table) Lookup(s bitstring.String) ID {
	if id, ok := t.ids[s.MapKey()]; ok {
		return id
	}
	return None
}

// String returns the string interned under id. It panics on IDs the table
// never issued.
func (t *Table) String(id ID) bitstring.String { return t.strs[id] }

// Len returns the number of interned strings (also the next ID).
func (t *Table) Len() int { return len(t.strs) }

// Reset empties the table for reuse, keeping the map's buckets and the
// slice's capacity allocated — the decision-log pipeline recycles one table
// per node across agreement instances.
func (t *Table) Reset() {
	clear(t.ids)
	t.strs = t.strs[:0]
}
