package intern

import (
	"testing"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
)

func TestTableInternsDense(t *testing.T) {
	var tab Table
	src := prng.New(1)
	strs := make([]bitstring.String, 16)
	for i := range strs {
		strs[i] = bitstring.Random(src, 24)
	}
	for i, s := range strs {
		if id := tab.ID(s); id != ID(i) {
			t.Fatalf("ID(%v) = %d, want %d", s, id, i)
		}
	}
	for i, s := range strs {
		if id := tab.ID(s); id != ID(i) {
			t.Fatalf("re-ID(%v) = %d, want %d", s, id, i)
		}
		if id := tab.Lookup(s); id != ID(i) {
			t.Fatalf("Lookup(%v) = %d, want %d", s, id, i)
		}
		if got := tab.String(ID(i)); !got.Equal(s) {
			t.Fatalf("String(%d) = %v, want %v", i, got, s)
		}
	}
	if tab.Len() != len(strs) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(strs))
	}
}

func TestLookupMissing(t *testing.T) {
	var tab Table
	s := bitstring.Random(prng.New(2), 24)
	if id := tab.Lookup(s); id != None {
		t.Fatalf("Lookup on empty table = %d, want None", id)
	}
	tab.ID(s)
	other := bitstring.Random(prng.New(3), 24)
	if id := tab.Lookup(other); id != None {
		t.Fatalf("Lookup of foreign string = %d, want None", id)
	}
}

func TestZeroStringInternable(t *testing.T) {
	var tab Table
	if id := tab.ID(bitstring.String{}); id != 0 {
		t.Fatalf("zero string ID = %d", id)
	}
	if id := tab.Lookup(bitstring.String{}); id != 0 {
		t.Fatalf("zero string Lookup = %d", id)
	}
}

func TestLengthDisambiguates(t *testing.T) {
	// Two strings with identical backing bytes but different bit lengths
	// must intern separately (the MapKey carries the length).
	a := bitstring.New([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	b := bitstring.New([]byte{1, 0, 0, 0, 0, 0, 0})
	var tab Table
	if tab.ID(a) == tab.ID(b) {
		t.Fatal("strings of different length share an ID")
	}
}

// BenchmarkInternLookup measures the hot-path cost of resolving a string to
// its dense ID — the operation that replaced per-delivery Key() string
// construction in every protocol handler. It must be allocation-free.
func BenchmarkInternLookup(b *testing.B) {
	var tab Table
	src := prng.New(7)
	strs := make([]bitstring.String, 32)
	for i := range strs {
		strs[i] = bitstring.Random(src, 32)
		tab.ID(strs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab.ID(strs[i%len(strs)]) < 0 {
			b.Fatal("lost an interned string")
		}
	}
}

// BenchmarkStringKeyLookup is the displaced alternative — a map keyed by
// String.Key() — kept as the before/after comparison for the delivery-path
// refactor: Key() allocates on every lookup.
func BenchmarkStringKeyLookup(b *testing.B) {
	m := make(map[string]int32)
	src := prng.New(7)
	strs := make([]bitstring.String, 32)
	for i := range strs {
		strs[i] = bitstring.Random(src, 32)
		m[strs[i].Key()] = int32(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m[strs[i%len(strs)].Key()] < 0 {
			b.Fatal("lost a key")
		}
	}
}
