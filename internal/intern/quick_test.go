package intern

import (
	"testing"
	"testing/quick"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
)

// Property-based tests for the interning table: IDs are dense (assigned
// consecutively from 0 in first-seen order), stable (re-interning never
// changes an assignment), and round-trip (String(ID(s)) is s). These are
// the assumptions the protocol cores index slices by, so a violation
// would silently corrupt per-candidate state.

// TestQuickInternDenseStableRoundTrip drives a table with a random
// sequence of strings (drawn from a small pool, so re-interning is
// frequent) and checks every invariant after every operation.
func TestQuickInternDenseStableRoundTrip(t *testing.T) {
	prop := func(seed uint64, picks []uint8) bool {
		// A pool of 16 distinct random strings of varying lengths.
		src := prng.New(seed)
		pool := make([]bitstring.String, 16)
		for i := range pool {
			pool[i] = bitstring.Random(src, 8+i)
		}
		var tab Table
		assigned := map[bitstring.MapKey]ID{}
		var firstSeen []bitstring.String
		for _, p := range picks {
			s := pool[int(p)%len(pool)]
			id := tab.ID(s)
			if prev, ok := assigned[s.MapKey()]; ok {
				if id != prev {
					return false // dense-ID stability
				}
			} else {
				if id != ID(len(assigned)) {
					return false // IDs are consecutive in first-seen order
				}
				assigned[s.MapKey()] = id
				firstSeen = append(firstSeen, s)
			}
			if tab.Lookup(s) != id {
				return false // Lookup agrees with ID
			}
			if !tab.String(id).Equal(s) {
				return false // round trip
			}
			if tab.Len() != len(assigned) {
				return false
			}
		}
		// First-seen order is fully reconstructible from the IDs.
		for i, s := range firstSeen {
			if !tab.String(ID(i)).Equal(s) {
				return false
			}
		}
		// Never-interned strings Lookup to None and leave the table alone.
		fresh := bitstring.Random(src, 200)
		before := tab.Len()
		return tab.Lookup(fresh) == None && tab.Len() == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInternDistinctStringsDistinctIDs: strings differing in any bit
// (or only in length) intern to distinct IDs.
func TestQuickInternDistinctStringsDistinctIDs(t *testing.T) {
	prop := func(seed uint64, nbits uint8) bool {
		n := 1 + int(nbits%200)
		src := prng.New(seed)
		s := bitstring.Random(src, n)
		var tab Table
		base := tab.ID(s)
		// Flip one bit: distinct ID.
		bits := make([]byte, n)
		for i := 0; i < n; i++ {
			bits[i] = s.Bit(i)
		}
		bits[0] ^= 1
		flipped := bitstring.New(bits)
		if tab.ID(flipped) == base {
			return false
		}
		// Same prefix, longer length: distinct ID.
		longer := bitstring.Concat(s, bitstring.New([]byte{0}))
		return tab.ID(longer) != base && tab.ID(longer) != tab.ID(flipped)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
