// Package metrics provides the small statistics and table-rendering
// toolkit used by the benchmark harness to print Figure 1-shaped
// comparison tables and per-lemma experiment reports.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a fixed-width ASCII table in the style of the paper's Figure 1.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cell counts beyond the header are truncated, missing
// cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "| " + strings.Join(parts, " | ") + " |"
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	fmt.Fprintln(w, line(t.Header))
	fmt.Fprintln(w, line(sep))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

func pad(s string, w int) string {
	if l := len([]rune(s)); l < w {
		return s + strings.Repeat(" ", w-l)
	}
	return s
}

// Bits renders a bit count with a binary magnitude suffix.
func Bits(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGb", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMb", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKb", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fb", v)
	}
}

// Count renders an integer with thousands separators.
func Count(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// PowerFit fits y = a·x^b by least squares on logarithms and returns the
// exponent b. It is how the harness reports measured growth exponents
// (e.g. per-node bits vs n). It panics on fewer than two points or
// non-positive data — harness misuse, not a runtime condition.
func PowerFit(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("metrics: PowerFit needs ≥ 2 paired points")
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("metrics: PowerFit needs positive data")
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(xs))
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// PolylogFit fits y = a·log(x)^b and returns the exponent b — the natural
// model for AER's costs.
func PolylogFit(xs, ys []float64) float64 {
	lxs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 1 {
			panic("metrics: PolylogFit needs x > 1")
		}
		lxs[i] = math.Log(x)
	}
	return PowerFit(lxs, ys)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of values using the
// nearest-rank method. It panics on empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		panic("metrics: Quantile of empty slice")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
