package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "proto", "bits")
	tb.Add("AER", "12")
	tb.Add("flood", "99999")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Demo", "proto", "AER", "99999"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len(lines[1])
	for i, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("row %d has width %d, want %d:\n%s", i, len(l), width, out)
		}
	}
}

func TestTableAddPadsAndTruncates(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("only")
	tb.Add("x", "y", "z")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Fatalf("short row not padded: %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 2 {
		t.Fatalf("long row not truncated: %v", tb.Rows[1])
	}
}

func TestBits(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{12, "12b"},
		{2048, "2.0Kb"},
		{3 << 20, "3.0Mb"},
		{5 << 30, "5.0Gb"},
	}
	for _, tt := range tests {
		if got := Bits(tt.give); got != tt.want {
			t.Errorf("Bits(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestCount(t *testing.T) {
	tests := []struct {
		give int64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{1234567, "1,234,567"},
		{-4200, "-4,200"},
	}
	for _, tt := range tests {
		if got := Count(tt.give); got != tt.want {
			t.Errorf("Count(%d) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestPowerFitRecoversExponent(t *testing.T) {
	xs := []float64{64, 128, 256, 512, 1024}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	if b := PowerFit(xs, ys); math.Abs(b-1.5) > 1e-9 {
		t.Fatalf("PowerFit = %v, want 1.5", b)
	}
}

func TestPolylogFitRecoversExponent(t *testing.T) {
	xs := []float64{64, 128, 256, 512, 1024}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 7 * math.Pow(math.Log(x), 3)
	}
	if b := PolylogFit(xs, ys); math.Abs(b-3) > 1e-9 {
		t.Fatalf("PolylogFit = %v, want 3", b)
	}
}

func TestPowerFitPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PowerFit([]float64{1}, []float64{1}) },
		func() { PowerFit([]float64{1, -2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.9, 5}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(vals, tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}
