package metrics

import "github.com/fastba/fastba/internal/simnet"

// LatencyBucketsMs are the shared commit-latency histogram edges
// (milliseconds): the load harness's result histograms and the daemon's
// /metrics latency series use the same edges, so their distributions are
// directly comparable.
var LatencyBucketsMs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// LatencyBucketsSeconds returns the shared edges in seconds — the
// Prometheus convention for *_seconds histograms.
func LatencyBucketsSeconds() []float64 {
	out := make([]float64, len(LatencyBucketsMs))
	for i, ms := range LatencyBucketsMs {
		out[i] = ms / 1e3
	}
	return out
}

// netStatsCounters names every NetStats field in exposition order. One
// table keeps the registry bridge and the golden test in lockstep with
// the struct.
var netStatsCounters = []struct {
	name, help string
	get        func(s simnet.NetStats) int64
}{
	{"fastba_net_dials_total", "First successful dials of a supervised link.", func(s simnet.NetStats) int64 { return s.Dials }},
	{"fastba_net_redials_total", "Successful re-establishments after a link failure.", func(s simnet.NetStats) int64 { return s.Redials }},
	{"fastba_net_failed_dials_total", "Failed connect attempts.", func(s simnet.NetStats) int64 { return s.FailedDials }},
	{"fastba_net_shed_total", "Frames dropped by the shed-oldest overload policy.", func(s simnet.NetStats) int64 { return s.Shed }},
	{"fastba_net_dropped_down_total", "Frames dropped while their link was down.", func(s simnet.NetStats) int64 { return s.DroppedDown }},
	{"fastba_net_suspects_total", "Heartbeat suspect transitions.", func(s simnet.NetStats) int64 { return s.Suspects }},
	{"fastba_net_recoveries_total", "Suspected or down links confirmed alive again.", func(s simnet.NetStats) int64 { return s.Recoveries }},
	{"fastba_net_dead_links_total", "Links whose redial budget ran out.", func(s simnet.NetStats) int64 { return s.DeadLinks }},
	{"fastba_net_pings_sent_total", "Heartbeat pings sent.", func(s simnet.NetStats) int64 { return s.PingsSent }},
	{"fastba_net_pongs_received_total", "Heartbeat pongs received.", func(s simnet.NetStats) int64 { return s.PongsReceived }},
	{"fastba_net_chaos_strikes_total", "Chaos-plan connection strikes executed.", func(s simnet.NetStats) int64 { return s.ChaosStrikes }},
	{"fastba_net_chaos_skips_total", "Chaos strikes skipped (no live target).", func(s simnet.NetStats) int64 { return s.ChaosSkips }},
	{"fastba_net_links_severed_total", "Live connections severed by chaos.", func(s simnet.NetStats) int64 { return s.LinksSevered }},
	{"fastba_net_frames_sent_total", "Data frames written to sockets.", func(s simnet.NetStats) int64 { return s.FramesSent }},
	{"fastba_net_messages_sent_total", "Protocol messages carried by those frames.", func(s simnet.NetStats) int64 { return s.MessagesSent }},
	{"fastba_net_batch_frames_total", "Coalesced (batch) frames among frames sent.", func(s simnet.NetStats) int64 { return s.BatchFrames }},
}

// RegisterNetStats exposes a live NetStats source through the registry:
// one fastba_net_* counter family per field, read from get at exposition
// time. The supervision counters keep living in their atomic block — the
// registry is a view, not a second bookkeeping path.
func RegisterNetStats(r *Registry, get func() simnet.NetStats, labels ...string) {
	for _, c := range netStatsCounters {
		c := c
		r.CounterFunc(c.name, c.help, func() float64 { return float64(c.get(get())) }, labels...)
	}
}
