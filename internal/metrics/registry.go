package metrics

// The live counter surface shared by every runtime: an in-process
// Prometheus-style registry. The balogd daemon serves it on /metrics
// (text exposition format) and the load harness exports its result
// histograms and NetStats counters through it, so the daemon and the
// in-process runtimes report through one bookkeeping path instead of two.
// Stdlib only; the exposition layout is pinned by a golden test.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready;
// all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored — counters
// only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready; all
// methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a cumulative-bucket distribution with fixed upper edges.
// Observations above the last edge land only in the implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	edges  []float64
	counts []uint64 // one per edge, plus the +Inf bucket at the end
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.edges, v) // first edge ≥ v: its bucket
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// series is one labeled time series of a family: exactly one of the
// collector fields is set.
type series struct {
	labels  string // rendered {k="v",...} suffix, "" for unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one metric name: a TYPE, a HELP line and its labeled series.
type family struct {
	name, help, typ string
	series          []*series
	byLabel         map[string]*series
}

// Registry is a set of metric families with a Prometheus text exposition.
// All methods are safe for concurrent use; registering an already
// registered (name, labels) pair returns the existing collector, so
// shared surfaces can re-register idempotently.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for (name, labels), registering it on first
// use. Labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for (name, labels) with the given upper
// bucket edges (ascending), registering it on first use. Edges are fixed
// at first registration; later calls with different edges get the
// existing histogram.
func (r *Registry) Histogram(name, help string, edges []float64, labels ...string) *Histogram {
	s := r.register(name, help, "histogram", labels)
	if s.hist == nil {
		s.hist = &Histogram{
			edges:  append([]float64(nil), edges...),
			counts: make([]uint64, len(edges)+1),
		}
	}
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for counters kept elsewhere (atomic
// NetStats blocks). Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, "counter", labels)
	s.fn = fn
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, "gauge", labels)
	s.fn = fn
}

// register finds or creates the series for (name, labels). Registering one
// name under two types is a programming error and panics loudly.
func (r *Registry) register(name, help, typ string, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %s", name))
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	s := f.byLabel[rendered]
	if s == nil {
		s = &series{labels: rendered}
		f.byLabel[rendered] = s
		f.series = append(f.series, s)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	}
	return s
}

// renderLabels renders alternating key, value pairs as the exposition
// label suffix, keys sorted so the same label set always renders the same.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: families sorted by name, series by label string, histograms as
// cumulative _bucket/_sum/_count triples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.hist != nil:
		return writeHistogram(w, f.name, s)
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
		return err
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Value()))
		return err
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets with an
// le label merged into the series labels, then _sum and _count.
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	h.mu.Lock()
	edges := h.edges
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	var cum uint64
	for i, edge := range edges {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(s.labels, formatFloat(edge)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(s.labels, "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, count)
	return err
}

// mergeLE appends the le bucket label to a rendered label suffix.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
