package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/fastba/fastba/internal/simnet"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRegistryCollectors: the collector types count, gauge and observe
// correctly, and re-registering a (name, labels) pair returns the same
// collector (the shared-surface contract).
func TestRegistryCollectors(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registering returned a different counter")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	h := r.Histogram("h_seconds", "help", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10) // above the last edge: +Inf only
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d, want 3", got)
	}
	if r.Histogram("h_seconds", "help", nil) != h {
		t.Fatal("re-registering returned a different histogram")
	}
	// Labeled series are distinct from the unlabeled one and from each
	// other, independent of label order.
	a := r.Counter("c_total", "help", "node", "0", "role", "leader")
	b := r.Counter("c_total", "help", "role", "leader", "node", "0")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	if a == c {
		t.Fatal("labeled series collided with the unlabeled one")
	}
}

// TestRegistryConcurrent: concurrent registration and updates on the same
// names race-cleanly (run under -race in CI).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("x_total", "h").Inc()
				r.Gauge("y", "h").Set(float64(j))
				r.Histogram("z_seconds", "h", []float64{1, 2}).Observe(1.5)
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("x_total", "h").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}

// TestPrometheusExpositionGolden pins the exposition output — metric
// names, label rendering, bucket layout, ordering — against a golden
// file, so the daemon's /metrics surface cannot drift silently. The
// registry is populated the way balogd populates it: daemon counters,
// a latency histogram on the shared edges, and the NetStats bridge.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("fastba_appends_total", "Client append requests admitted.", "node", "0").Add(42)
	r.Counter("fastba_overload_shed_total", "Client append requests shed by admission control.", "node", "0").Add(3)
	r.Gauge("fastba_commit_seq", "The daemon's committed frontier.", "node", "0").Set(17)
	r.Gauge("fastba_membership_epoch", "The configuration epoch of the peer set.", "node", "0").Set(7)
	r.GaugeFunc("fastba_peers_alive", "Peer daemons answering membership handshakes.", func() float64 { return 3 }, "node", "0")
	h := r.Histogram("fastba_commit_latency_seconds", "Client-observed commit latency.", LatencyBucketsSeconds(), "node", "0")
	for _, v := range []float64{0.0004, 0.003, 0.003, 0.04, 0.8, 12} {
		h.Observe(v)
	}
	stats := simnet.NetStats{
		Dials: 9, Redials: 2, FailedDials: 5, Shed: 1, DroppedDown: 4,
		Suspects: 2, Recoveries: 2, DeadLinks: 1, PingsSent: 30, PongsReceived: 29,
		ChaosStrikes: 0, ChaosSkips: 0, LinksSevered: 0,
		FramesSent: 1000, MessagesSent: 1700, BatchFrames: 200,
	}
	RegisterNetStats(r, func() simnet.NetStats { return stats }, "node", "0")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden (run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Spot-check the histogram contract independently of the golden bytes:
	// cumulative buckets, +Inf equals _count.
	out := buf.String()
	for _, line := range []string{
		`fastba_commit_latency_seconds_bucket{node="0",le="0.005"} 3`,
		`fastba_commit_latency_seconds_bucket{node="0",le="+Inf"} 6`,
		`fastba_commit_latency_seconds_count{node="0"} 6`,
		`fastba_net_messages_sent_total{node="0"} 1700`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q", line)
		}
	}
}
