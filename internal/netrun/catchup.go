package netrun

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/wire"
)

// Catch-up state transfer over TCP: the cluster can serve its committed
// prefix on a dedicated listener, and a restarted node fetches the gap
// past its recovered WAL frontier with FetchCatchup. Frames are the same
// length-prefixed wire envelopes the node mesh uses (kindCatchupReq /
// kindCatchupResp); records are opaque encoded bytes.

const (
	// maxCatchupFrame bounds catch-up frames: one store record (up to its
	// own 1<<26 cap) plus framing slack — larger than the node mesh's
	// maxFrame because a response chunk carries whole batches.
	maxCatchupFrame = 1<<26 + 1024
	// catchupChunk is the server's default records-per-handler-call.
	catchupChunk = 256
)

// ServeCatchup opens a dedicated catch-up listener answering
// CatchupReq frames from handler, and returns its address. The listener
// closes with the cluster.
func (c *Cluster) ServeCatchup(handler simnet.CatchupHandler) (string, error) {
	return c.ServeCatchupOn("127.0.0.1:0", handler)
}

// ServeCatchupOn is ServeCatchup at a fixed listen address — the daemon
// topology, where peers must know the catch-up endpoint before this
// process exists (a derived port, not an ephemeral one).
func (c *Cluster) ServeCatchupOn(addr string, handler simnet.CatchupHandler) (string, error) {
	select {
	case <-c.closing:
		return "", errors.New("netrun: cluster closing")
	default:
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netrun: catchup listen: %w", err)
	}
	c.mu.Lock()
	c.catchupLns = append(c.catchupLns, ln)
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Track the accepted connection so Close can unblock the
			// serving goroutine even if the peer never disconnects.
			c.mu.Lock()
			c.catchupConns = append(c.catchupConns, conn)
			c.mu.Unlock()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				serveCatchupConn(conn, handler)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// serveCatchupConn answers catch-up requests on one connection: for each
// request, stream the committed records past its frontier in bounded
// chunks, then an empty terminator chunk.
func serveCatchupConn(conn net.Conn, handler simnet.CatchupHandler) {
	defer conn.Close()
	for {
		msg, err := readCatchupFrame(conn)
		if err != nil {
			return
		}
		req, ok := msg.(simnet.CatchupReq)
		if !ok {
			return // not speaking the catch-up protocol: drop the peer
		}
		from := req.From
		max := catchupChunk
		if req.Max > 0 && int(req.Max) < max {
			max = int(req.Max)
		}
		for {
			recs := handler(from, max)
			if len(recs) == 0 {
				break
			}
			// Re-chunk by byte budget: a handler chunk can exceed a frame.
			for start := 0; start < len(recs); {
				end, size := start, 0
				for end < len(recs) {
					rs := 4 + len(recs[end])
					if end > start && size+rs > maxFrame {
						break
					}
					size += rs
					end++
				}
				if err := writeCatchupFrame(conn, simnet.CatchupResp{Records: recs[start:end]}); err != nil {
					return
				}
				start = end
			}
			from += uint64(len(recs))
		}
		if err := writeCatchupFrame(conn, simnet.CatchupResp{}); err != nil {
			return
		}
	}
}

// FetchCatchup dials a peer's catch-up listener and fetches every
// committed record from seq from onward, in order. dialTimeout bounds the
// connect attempt; 0 or negative selects the default (2s).
func FetchCatchup(addr string, from uint64, dialTimeout time.Duration) ([][]byte, error) {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("netrun: catchup dial: %w", err)
	}
	defer conn.Close()
	if err := writeCatchupFrame(conn, simnet.CatchupReq{From: from}); err != nil {
		return nil, fmt.Errorf("netrun: catchup request: %w", err)
	}
	var out [][]byte
	for {
		msg, err := readCatchupFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("netrun: catchup response: %w", err)
		}
		resp, ok := msg.(simnet.CatchupResp)
		if !ok {
			return nil, fmt.Errorf("netrun: catchup peer sent %T", msg)
		}
		if len(resp.Records) == 0 {
			return out, nil
		}
		out = append(out, resp.Records...)
	}
}

// writeCatchupFrame writes one length-prefixed wire envelope (from/to 0:
// catch-up is point-to-point, not node-addressed).
func writeCatchupFrame(conn net.Conn, m simnet.Message) error {
	buf, err := wire.AppendFrame(nil, 0, 0, m)
	if err != nil {
		return err
	}
	_, err = conn.Write(buf)
	return err
}

// readCatchupFrame reads and decodes one length-prefixed wire envelope.
func readCatchupFrame(conn net.Conn) (simnet.Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(conn, header[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(header[:])
	if size == 0 || size > maxCatchupFrame {
		return nil, fmt.Errorf("netrun: catchup frame size %d", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	_, _, msg, err := wire.DecodeEnvelope(frame)
	return msg, err
}
