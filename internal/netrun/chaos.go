package netrun

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"github.com/fastba/fastba/internal/prng"
)

// Live-socket chaos: a ChaosPlan severs *real* TCP connections mid-run —
// full close, half-close (the dialer stops reading, so heartbeat answers
// die while data still flows), and blackhole (the accepting side stops
// draining the socket, so writes back up into kernel buffers) — on a
// deterministic seeded schedule. What is deterministic is the strike
// *sequence*: ChaosSchedule(plan, n) is a pure function of (Seed, n),
// replayed identically on every run (the fuzzer's chaos digests lock this
// in). What is not deterministic is wall-clock placement — strikes land
// on whatever sockets are live when their tick fires, like every other
// timing property of the TCP runtime. Safety oracles must hold under any
// placement; termination is checked only against the run's own commit
// path (chaos runs are lossy: frames buffered in a severed socket die
// with it).

// ChaosKind enumerates the ways a strike severs a connection.
type ChaosKind uint8

const (
	// ChaosClose closes both endpoints' sockets outright.
	ChaosClose ChaosKind = iota + 1
	// ChaosHalfClose shuts the read side of the dialer's socket: data
	// keeps flowing, but pongs can no longer be read, so the failure
	// detector must notice and recycle the link.
	ChaosHalfClose
	// ChaosBlackhole pauses the accepting side's read loop for
	// BlackholeFor: frames back up into kernel buffers and either the
	// pause expires (delayed delivery, no loss) or the detector suspects
	// the link and recycles it.
	ChaosBlackhole
)

func (k ChaosKind) String() string {
	switch k {
	case ChaosClose:
		return "close"
	case ChaosHalfClose:
		return "halfclose"
	case ChaosBlackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("ChaosKind(%d)", int(k))
	}
}

// ParseChaosKind parses a ChaosKind name (close, halfclose, blackhole).
func ParseChaosKind(s string) (ChaosKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "close":
		return ChaosClose, nil
	case "halfclose", "half-close":
		return ChaosHalfClose, nil
	case "blackhole":
		return ChaosBlackhole, nil
	default:
		return 0, fmt.Errorf("netrun: unknown chaos kind %q", s)
	}
}

// ChaosPlan is a seeded schedule of connection strikes. The zero value is
// inactive; any of Sweep, Strikes or Interval being set activates it.
type ChaosPlan struct {
	// Seed keys the strike sequence (see ChaosSchedule).
	Seed uint64 `json:"seed"`
	// Strikes bounds the number of landed strikes (0 = keep striking until
	// the cluster closes).
	Strikes int `json:"strikes,omitempty"`
	// Interval is the wall-clock delay between strike attempts (default
	// 50ms).
	Interval time.Duration `json:"intervalNs,omitempty"`
	// Kinds restricts the strike kinds drawn by the schedule (default: all
	// three).
	Kinds []ChaosKind `json:"kinds,omitempty"`
	// BlackholeFor is the read-pause window of a blackhole strike (default
	// 3×Interval).
	BlackholeFor time.Duration `json:"blackholeForNs,omitempty"`
	// Sweep prioritizes live links never severed so far, in schedule
	// order, until every link that ever carried traffic has been severed
	// at least once (NetStats.LinksSevered == NetStats.Dials); it then
	// continues with the cyclic schedule.
	Sweep bool `json:"sweep,omitempty"`
}

// Active reports whether the plan schedules any strikes.
func (p ChaosPlan) Active() bool {
	return p.Sweep || p.Strikes > 0 || p.Interval > 0
}

func (p ChaosPlan) withDefaults() ChaosPlan {
	if p.Interval <= 0 {
		p.Interval = 50 * time.Millisecond
	}
	if p.BlackholeFor <= 0 {
		p.BlackholeFor = 3 * p.Interval
	}
	if len(p.Kinds) == 0 {
		p.Kinds = []ChaosKind{ChaosClose, ChaosHalfClose, ChaosBlackhole}
	}
	return p
}

// Validate rejects malformed plans.
func (p ChaosPlan) Validate() error {
	if p.Strikes < 0 {
		return fmt.Errorf("netrun: negative chaos strike count")
	}
	if p.Interval < 0 || p.BlackholeFor < 0 {
		return fmt.Errorf("netrun: negative chaos window")
	}
	for _, k := range p.Kinds {
		switch k {
		case ChaosClose, ChaosHalfClose, ChaosBlackhole:
		default:
			return fmt.Errorf("netrun: unknown chaos kind %d", int(k))
		}
	}
	return nil
}

// ChaosStrike is one scheduled strike on the directed link from → to.
type ChaosStrike struct {
	Kind ChaosKind `json:"kind"`
	From int       `json:"from"`
	To   int       `json:"to"`
}

// ChaosSchedule returns the plan's first strike round for an n-node
// cluster: every directed link exactly once, in a seeded permutation,
// each with a seeded kind draw. It is a pure function of (plan, n) — the
// deterministic artifact that seeded chaos replays and the fuzzer's
// digests are built on. The controller cycles through successive rounds
// (round r reseeds with DeriveKey) until the strike budget or the run
// ends.
func ChaosSchedule(p ChaosPlan, n int) []ChaosStrike {
	return chaosRound(p.withDefaults(), n, 0)
}

func chaosRound(p ChaosPlan, n, round int) []ChaosStrike {
	src := prng.New(prng.DeriveKey(p.Seed, "netrun/chaos", uint64(round)))
	pairs := make([]connKey, 0, n*(n-1))
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from != to {
				pairs = append(pairs, connKey{from: from, to: to})
			}
		}
	}
	src.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	out := make([]ChaosStrike, len(pairs))
	for i, pr := range pairs {
		out[i] = ChaosStrike{Kind: p.Kinds[src.Intn(len(p.Kinds))], From: pr.from, To: pr.to}
	}
	return out
}

// chaosLoop is the strike controller: one attempt per interval tick,
// following the seeded schedule (sweep mode first targets live links not
// yet severed). Attempts that find no socket count as skips, not strikes.
func (c *Cluster) chaosLoop() {
	defer c.wg.Done()
	plan := c.opts.Chaos
	n := len(c.addrs)
	ticker := time.NewTicker(plan.Interval)
	defer ticker.Stop()
	struck := make(map[connKey]bool)
	sched := chaosRound(plan, n, 0)
	round, idx, landed := 0, 0, 0
	for {
		select {
		case <-c.closing:
			return
		case <-ticker.C:
		}
		if plan.Strikes > 0 && landed >= plan.Strikes {
			return
		}
		s, ok := ChaosStrike{}, false
		if plan.Sweep {
			s, ok = c.sweepTarget(sched, struck)
		}
		if !ok {
			s = sched[idx]
			if idx++; idx == len(sched) {
				idx = 0
				round++
				sched = chaosRound(plan, n, round)
			}
		}
		if c.applyStrike(s, struck) {
			landed++
			c.stats.chaosStrikes.Add(1)
		} else {
			c.stats.chaosSkips.Add(1)
		}
	}
}

// sweepTarget picks the first schedule entry whose link is live and not
// yet severed.
func (c *Cluster) sweepTarget(sched []ChaosStrike, struck map[connKey]bool) (ChaosStrike, bool) {
	for _, s := range sched {
		key := connKey{from: s.From, to: s.To}
		if struck[key] {
			continue
		}
		if c.linkLive(key) {
			return s, true
		}
	}
	return ChaosStrike{}, false
}

// linkLive reports whether the directed link has a live socket at either
// endpoint.
func (c *Cluster) linkLive(key connKey) bool {
	c.mu.Lock()
	l := c.links[key]
	ic := c.inbound[key]
	c.mu.Unlock()
	return (l != nil && l.currentConn() != nil) || ic != nil
}

// applyStrike severs one link, reporting whether anything was hit.
func (c *Cluster) applyStrike(s ChaosStrike, struck map[connKey]bool) bool {
	key := connKey{from: s.From, to: s.To}
	c.mu.Lock()
	l := c.links[key]
	ic := c.inbound[key]
	c.mu.Unlock()
	var conn net.Conn
	if l != nil {
		conn = l.currentConn()
	}
	hit := false
	switch s.Kind {
	case ChaosClose:
		if conn != nil {
			_ = conn.Close()
			hit = true
		}
		if ic != nil {
			_ = ic.conn.Close()
			hit = true
		}
	case ChaosHalfClose:
		if conn != nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.CloseRead()
			} else {
				_ = conn.Close()
			}
			hit = true
		}
	case ChaosBlackhole:
		if ic != nil {
			ic.pausedUntil.Store(time.Now().Add(c.opts.Chaos.BlackholeFor).UnixNano())
			hit = true
		}
	}
	if hit && !struck[key] {
		struck[key] = true
		c.stats.linksSevered.Add(1)
	}
	return hit
}

// inboundConn tracks one accepted mesh socket for the chaos controller:
// blackhole strikes pause its read loop via pausedUntil.
type inboundConn struct {
	conn        net.Conn
	pausedUntil atomic.Int64 // unix nanos; 0 = not paused
}
