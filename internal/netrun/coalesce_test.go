package netrun

import (
	"context"
	"testing"
	"time"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// runAER drives one AER agreement to completion over TCP with the given
// options and returns the cluster's wire counters.
func runAER(t testing.TB, n int, opts Options) simnet.NetStats {
	t.Helper()
	sc, err := core.NewScenario(core.DefaultParams(n), 3, core.TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	cluster, err := NewWithOptions(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()
	decided := func() bool {
		for _, node := range correct {
			if node == nil {
				continue
			}
			if _, ok := node.Decided(); !ok {
				return false
			}
		}
		return true
	}
	if err := cluster.RunUntil(context.Background(), decided, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if !cluster.AwaitQuiescence(30 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}
	o := core.Evaluate(correct, sc.GString)
	if !o.Agreement() {
		t.Fatalf("no agreement: %+v", o)
	}
	return cluster.NetStats()
}

// TestCoalescingReducesFrames is the acceptance check for link-level frame
// coalescing: on a loaded mesh, fewer frames than messages hit the wire,
// with batch frames carrying the difference — and agreement still holds.
func TestCoalescingReducesFrames(t *testing.T) {
	st := runAER(t, 16, Options{FlushWindow: 200 * time.Microsecond})
	if st.MessagesSent == 0 {
		t.Fatal("no messages metered")
	}
	if st.BatchFrames == 0 {
		t.Fatalf("no batch frames on a coalescing run: %+v", st)
	}
	if st.FramesSent >= st.MessagesSent {
		t.Fatalf("coalescing did not reduce frames: %d frames for %d messages", st.FramesSent, st.MessagesSent)
	}
}

// TestDisableCoalesce locks the bisection knob: with coalescing off, every
// message is its own frame.
func TestDisableCoalesce(t *testing.T) {
	st := runAER(t, 12, Options{DisableCoalesce: true})
	if st.BatchFrames != 0 {
		t.Fatalf("batch frames written with coalescing disabled: %+v", st)
	}
	if st.FramesSent != st.MessagesSent {
		t.Fatalf("frame/message mismatch without coalescing: %d frames, %d messages", st.FramesSent, st.MessagesSent)
	}
}

// BenchmarkLinkCoalesce compares a full TCP agreement run with coalescing
// on and off. The msgs/frame metric is the batching ratio; entries/s-style
// wall clock is noisy on shared hardware — allocs and the ratio are the
// numbers to watch.
func BenchmarkLinkCoalesce(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"coalesce", Options{FlushWindow: 200 * time.Microsecond}},
		{"single-frame", Options{DisableCoalesce: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var last simnet.NetStats
			for i := 0; i < b.N; i++ {
				last = runAER(b, 16, bc.opts)
			}
			if last.FramesSent > 0 {
				b.ReportMetric(float64(last.MessagesSent)/float64(last.FramesSent), "msgs/frame")
			}
		})
	}
}
