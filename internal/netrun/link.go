package netrun

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/wire"
)

// link supervises one directed connection (from → to): a bounded send
// queue drained by a dedicated writer goroutine that dials on demand,
// redials with jittered exponential backoff when the socket breaks, and
// goes down — dropping traffic instead of stalling senders — when the
// redial budget runs out. The heartbeat detector (Cluster.heartbeatLoop)
// probes the link when it is idle and recycles the socket when a probe
// goes unanswered; a per-connection pong reader is the only goroutine
// that reads from the dialed socket.
type link struct {
	c        *Cluster
	from, to int
	queue    chan outFrame

	mu     sync.Mutex
	conn   net.Conn // established socket; nil while disconnected
	dialed bool     // a dial succeeded at least once

	down      atomic.Bool  // redial budget exhausted
	suspected atomic.Bool  // heartbeat suspicion outstanding
	nextProbe atomic.Int64 // unix nanos: end of the down-state cooldown
	lastIn    atomic.Int64 // unix nanos of the last pong (or dial)
	pingAt    atomic.Int64 // unix nanos of the outstanding ping, 0 = none
	wrStart   atomic.Int64 // unix nanos when a conn.Write began, 0 = idle

	rng uint64 // backoff jitter state; writer goroutine only

	// Coalescing scratch, writer goroutine only: the frames gathered for
	// one batch write and the per-write slice of their buffers.
	gather []outFrame
	bufs   [][]byte
}

// Coalescing bounds: a batch write carries at most maxBatchRecords frames
// and roughly maxBatchBytes of payload — enough to amortize the syscall
// and framing cost, small enough to keep write latency and peer memory
// bounded.
const (
	maxBatchRecords = 64
	maxBatchBytes   = 256 << 10
)

// outFrame is one queued wire frame. ping frames are transport-internal:
// never counted toward fabric quiescence, never retried, never metered.
type outFrame struct {
	buf  *[]byte
	ping bool
}

func newLink(c *Cluster, from, to int) *link {
	return &link{
		c:     c,
		from:  from,
		to:    to,
		queue: make(chan outFrame, c.opts.QueueLen),
		rng:   prng.Hash2(uint64(from)+1, uint64(to)+1),
	}
}

// enqueue hands a frame to the writer. Under the shed-oldest policy a
// full queue drops its oldest frame to make room; under the default block
// policy the sender waits. It reports false — recycling the buffer, with
// the fabric's send path doing the uncounting — only when the cluster is
// closing.
func (l *link) enqueue(f outFrame) bool {
	if l.c.opts.ShedOldest {
		for {
			select {
			case l.queue <- f:
				return true
			case <-l.c.closing:
				bufPool.Put(f.buf)
				return false
			default:
			}
			select {
			case old := <-l.queue:
				if !old.ping {
					l.c.stats.shed.Add(1)
					l.c.fab.Uncount(1)
					l.c.event(ConnShed, l.from, l.to)
				}
				bufPool.Put(old.buf)
			default:
			}
		}
	}
	select {
	case l.queue <- f:
		return true
	case <-l.c.closing:
		bufPool.Put(f.buf)
		return false
	}
}

// run is the writer goroutine: drain the queue, coalescing queued data
// frames into batch writes.
func (l *link) run() {
	defer l.c.wg.Done()
	for {
		select {
		case <-l.c.closing:
			l.drainQueue()
			return
		case f := <-l.queue:
			l.dispatch(f)
		}
	}
}

// dispatch writes one dequeued frame, first coalescing whatever else is
// already waiting: all data frames queued for this link at write time —
// plus, under a FlushWindow, those arriving within the linger — collapse
// into a single batch frame (one syscall, one header). Pings terminate
// collection and go out singly: they are latency probes, and batching one
// behind data would distort the detector's clock.
func (l *link) dispatch(f outFrame) {
	if f.ping || l.c.opts.DisableCoalesce {
		l.deliver(f)
		return
	}
	l.gather = append(l.gather[:0], f)
	total := len(*f.buf)
	var trailing *outFrame
collect:
	for len(l.gather) < maxBatchRecords && total < maxBatchBytes {
		select {
		case g := <-l.queue:
			if g.ping {
				trailing = &g
				break collect
			}
			l.gather = append(l.gather, g)
			total += len(*g.buf)
		default:
			if w := l.c.opts.FlushWindow; w > 0 {
				l.linger(w, &trailing, &total)
			}
			break collect
		}
	}
	if len(l.gather) == 1 {
		l.deliver(l.gather[0])
	} else {
		l.deliverBatch(l.gather)
	}
	l.gather = l.gather[:0]
	if trailing != nil {
		l.deliver(*trailing)
	}
}

// linger waits up to w for more frames during batch collection, appending
// what arrives until the window expires, a ping arrives, the cluster
// closes or the batch fills.
func (l *link) linger(w time.Duration, trailing **outFrame, total *int) {
	t := time.NewTimer(w)
	defer t.Stop()
	for len(l.gather) < maxBatchRecords && *total < maxBatchBytes {
		select {
		case g := <-l.queue:
			if g.ping {
				*trailing = &g
				return
			}
			l.gather = append(l.gather, g)
			*total += len(*g.buf)
		case <-t.C:
			return
		case <-l.c.closing:
			return
		}
	}
}

// deliverBatch coalesces the gathered frames into one batch frame and
// writes it with deliver's retry semantics: a write that failed before any
// byte reached the kernel retries on a fresh socket; a partial write drops
// the batch (the peer may have consumed a prefix).
func (l *link) deliverBatch(frames []outFrame) {
	l.bufs = l.bufs[:0]
	for _, f := range frames {
		l.bufs = append(l.bufs, *f.buf)
	}
	bp := bufPool.Get().(*[]byte)
	buf, err := wire.AppendBatchFrame((*bp)[:0], l.bufs)
	if err != nil {
		// Unreachable by construction (same link, never pings); degrade to
		// per-frame writes rather than dropping traffic.
		bufPool.Put(bp)
		for _, f := range frames {
			l.deliver(f)
		}
		return
	}
	*bp = buf
	batch := outFrame{buf: bp}
	for {
		conn := l.ensure(false)
		if conn == nil {
			l.releaseBatch(frames, bp)
			return
		}
		if wt := l.c.opts.WriteTimeout; wt > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
		}
		l.wrStart.Store(time.Now().UnixNano())
		n, err := conn.Write(*batch.buf)
		l.wrStart.Store(0)
		if err == nil {
			// Meter exactly what the frames would have cost unbatched: the
			// per-message accounting (and its equality with the simulation
			// meter) is independent of coalescing.
			var bytes int64
			for _, f := range frames {
				bytes += int64(len(*f.buf) - 4)
				bufPool.Put(f.buf)
			}
			atomic.AddInt64(&l.c.sent[l.from], bytes)
			l.c.stats.framesSent.Add(1)
			l.c.stats.batchFrames.Add(1)
			l.c.stats.messagesSent.Add(int64(len(frames)))
			bufPool.Put(bp)
			return
		}
		l.dropConn(conn)
		if n > 0 || l.c.isClosing() {
			l.releaseBatch(frames, bp)
			return
		}
	}
}

// releaseBatch drops a coalesced batch: every member frame returns its
// in-flight count and buffer, plus the batch's own write buffer.
func (l *link) releaseBatch(frames []outFrame, bp *[]byte) {
	l.c.fab.Uncount(len(frames))
	for _, f := range frames {
		bufPool.Put(f.buf)
	}
	bufPool.Put(bp)
}

// deliver writes one frame, dialing or redialing as needed. A frame whose
// write failed before any byte reached the kernel is retried on a fresh
// socket (per-link FIFO order survives a severed conn); a partially
// written frame is dropped — resending it would poison the new stream,
// since the peer may have consumed a prefix.
func (l *link) deliver(f outFrame) {
	for {
		conn := l.ensure(f.ping)
		if conn == nil {
			l.release(f)
			return
		}
		if wt := l.c.opts.WriteTimeout; wt > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
		}
		l.wrStart.Store(time.Now().UnixNano())
		n, err := conn.Write(*f.buf)
		l.wrStart.Store(0)
		if err == nil {
			if !f.ping {
				atomic.AddInt64(&l.c.sent[l.from], int64(len(*f.buf)-4))
				l.c.stats.framesSent.Add(1)
				l.c.stats.messagesSent.Add(1)
			}
			bufPool.Put(f.buf)
			return
		}
		l.dropConn(conn)
		if f.ping || n > 0 || l.c.isClosing() {
			l.release(f)
			return
		}
	}
}

// ensure returns the link's socket, dialing it if absent. Heartbeat
// probes never dial (a ping on a dead link is pointless); data frames to
// a down peer are fast-dropped until the cooldown expires, then the next
// frame probes with a fresh dial cycle.
func (l *link) ensure(forPing bool) net.Conn {
	l.mu.Lock()
	conn := l.conn
	l.mu.Unlock()
	if conn != nil {
		return conn
	}
	if forPing || l.c.isClosing() {
		return nil
	}
	if l.down.Load() && time.Now().UnixNano() < l.nextProbe.Load() {
		l.c.stats.droppedDown.Add(1)
		return nil
	}
	pol := l.c.opts.Reconnect
	backoff := pol.Base
	for attempt := 1; ; attempt++ {
		d, err := net.DialTimeout("tcp", l.c.addrs[l.to], l.c.opts.DialTimeout)
		if err == nil {
			return l.adopt(d)
		}
		l.c.stats.failedDials.Add(1)
		if pol.Disable {
			return nil
		}
		if pol.MaxAttempts > 0 && attempt >= pol.MaxAttempts {
			l.giveUp()
			return nil
		}
		if !l.sleep(l.jitter(backoff)) {
			return nil
		}
		if backoff *= 2; backoff > pol.Cap {
			backoff = pol.Cap
		}
	}
}

// adopt installs a freshly dialed socket, clears suspicion and down
// state, and spawns the pong reader.
func (l *link) adopt(conn net.Conn) net.Conn {
	if tc, ok := conn.(*net.TCPConn); ok && l.c.opts.SockBuf > 0 {
		_ = tc.SetWriteBuffer(l.c.opts.SockBuf)
		_ = tc.SetReadBuffer(l.c.opts.SockBuf)
	}
	l.mu.Lock()
	if l.c.isClosing() {
		l.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	l.conn = conn
	first := !l.dialed
	l.dialed = true
	l.mu.Unlock()
	l.pingAt.Store(0)
	l.lastIn.Store(time.Now().UnixNano())
	wasDown := l.down.Swap(false)
	wasSuspect := l.suspected.Swap(false)
	if first {
		l.c.stats.dials.Add(1)
		l.c.event(ConnDialed, l.from, l.to)
	} else {
		l.c.stats.redials.Add(1)
		l.c.event(ConnRedialed, l.from, l.to)
	}
	if wasDown || wasSuspect {
		l.c.stats.recoveries.Add(1)
		l.c.event(ConnRecovered, l.from, l.to)
	}
	if !l.c.opts.Heartbeat.Disable {
		l.c.wg.Add(1)
		go func() {
			defer l.c.wg.Done()
			l.pongLoop(conn)
		}()
	}
	return conn
}

// giveUp marks the link down for a cooldown and drops its queued frames:
// a fail-silent peer degrades to dropped traffic, never to stalled
// senders.
func (l *link) giveUp() {
	l.nextProbe.Store(time.Now().Add(l.c.opts.Reconnect.Cap).UnixNano())
	if l.down.CompareAndSwap(false, true) {
		l.c.stats.deadLinks.Add(1)
		l.c.event(ConnDown, l.from, l.to)
	}
	l.drainQueue()
}

// drainQueue drops every queued frame, returning the in-flight counts of
// data frames to the fabric.
func (l *link) drainQueue() {
	for {
		select {
		case f := <-l.queue:
			l.release(f)
		default:
			return
		}
	}
}

// release drops one frame: data frames return their in-flight count.
func (l *link) release(f outFrame) {
	if !f.ping {
		l.c.fab.Uncount(1)
	}
	bufPool.Put(f.buf)
}

// dropConn detaches and closes a socket (idempotent per socket: a newer
// conn installed by adopt is left alone).
func (l *link) dropConn(conn net.Conn) {
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
	}
	l.mu.Unlock()
	_ = conn.Close()
	l.pingAt.Store(0)
}

func (l *link) currentConn() net.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn
}

// closeConn is Close's teardown hook: in-flight writers observe the
// closed socket (write error) plus the closing channel and exit without
// touching dead conns again.
func (l *link) closeConn() {
	l.mu.Lock()
	conn := l.conn
	l.conn = nil
	l.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// checkHealth is the heartbeat detector's per-tick scan of one link (now
// in unix nanos): suspect a stalled write or an unanswered ping — closing
// the socket so the next frame redials — and ping when the link has been
// quiet for a full period.
func (l *link) checkHealth(now int64) {
	hb := l.c.opts.Heartbeat
	conn := l.currentConn()
	if conn == nil {
		return
	}
	if ws := l.wrStart.Load(); ws != 0 && now-ws > int64(hb.SuspectAfter) {
		l.suspectConn(conn)
		return
	}
	if pa := l.pingAt.Load(); pa != 0 {
		if now-pa > int64(hb.SuspectAfter) {
			l.suspectConn(conn)
		}
		return // probe outstanding; wait for the pong or the window
	}
	if now-l.lastIn.Load() >= int64(hb.Every) {
		l.sendPing(now)
	}
}

// sendPing enqueues a heartbeat probe without ever blocking the detector:
// a full queue means data traffic is already probing the link.
func (l *link) sendPing(now int64) {
	bp := bufPool.Get().(*[]byte)
	buf, err := wire.AppendFrame((*bp)[:0], l.from, l.to, simnet.Ping{Nonce: uint64(now)})
	if err != nil {
		bufPool.Put(bp)
		return
	}
	*bp = buf
	select {
	case l.queue <- outFrame{buf: bp, ping: true}:
		l.pingAt.Store(now)
		l.c.stats.pingsSent.Add(1)
	default:
		bufPool.Put(bp)
	}
}

// suspectConn marks the link suspect (once per episode) and recycles the
// socket; the suspicion clears on the next pong or successful redial.
func (l *link) suspectConn(conn net.Conn) {
	if l.suspected.CompareAndSwap(false, true) {
		l.c.stats.suspects.Add(1)
		l.c.event(ConnSuspected, l.from, l.to)
	}
	l.dropConn(conn)
}

// pongLoop is the dialer-side reader of one socket: the accepting peer
// sends nothing but pongs, which feed the failure detector. It exits when
// the socket dies.
func (l *link) pongLoop(conn net.Conn) {
	header := make([]byte, 4)
	var frame []byte
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		size := frameSize(header)
		if size == 0 || size > maxFrame {
			_ = conn.Close()
			return
		}
		if cap(frame) < size {
			frame = make([]byte, size)
		}
		frame = frame[:size]
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		_, _, msg, err := wire.DecodeEnvelope(frame)
		if err != nil {
			continue
		}
		if _, ok := msg.(simnet.Pong); !ok {
			continue
		}
		l.c.stats.pongsReceived.Add(1)
		l.lastIn.Store(time.Now().UnixNano())
		l.pingAt.Store(0)
		if l.suspected.CompareAndSwap(true, false) {
			l.c.stats.recoveries.Add(1)
			l.c.event(ConnRecovered, l.from, l.to)
		}
	}
}

// jitter draws a uniformly jittered duration in [d/2, d] from the link's
// private hash chain (no global rand, deterministic per link).
func (l *link) jitter(d time.Duration) time.Duration {
	if d <= time.Millisecond {
		return d
	}
	l.rng = prng.Mix64(l.rng + 0x9e3779b97f4a7c15)
	half := int64(d) / 2
	return time.Duration(half + int64(l.rng%uint64(half+1)))
}

// sleep waits d unless the cluster closes first.
func (l *link) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-l.c.closing:
		return false
	case <-t.C:
		return true
	}
}
