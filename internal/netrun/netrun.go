// Package netrun executes the same protocol nodes that the simulation
// runners drive — AER, the committee substrate, the baselines — over real
// TCP sockets on localhost, using the internal/wire codecs. It exists to
// demonstrate that the protocol implementation is transport-agnostic: a
// node moved from the discrete-event simulator onto the network stack
// unchanged is strong evidence that no simulator artifact props it up.
//
// Topology: every node owns one TCP listener; connections are dialed
// lazily on first send and cached. Frames are length-prefixed wire
// envelopes. Delivery order and timing are whatever the kernel provides,
// so — like the goroutine runner — only outcome properties are
// deterministic, not traces.
package netrun

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/wire"
)

// maxFrame bounds accepted frame sizes (defense against corrupt length
// prefixes; generous for any protocol message).
const maxFrame = 1 << 20

// Cluster runs a set of protocol nodes over localhost TCP.
type Cluster struct {
	nodes     []simnet.Node
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	conns map[connKey]net.Conn
	sent  []int64 // bytes sent per node, guarded by mu

	obsMu    sync.Mutex
	observer simnet.Observer

	boxes   []*mailbox
	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

type connKey struct{ from, to int }

// New builds a cluster: one loopback listener per node. The caller must
// Close the cluster.
func New(nodes []simnet.Node) (*Cluster, error) {
	c := &Cluster{
		nodes:   nodes,
		conns:   make(map[connKey]net.Conn),
		sent:    make([]int64, len(nodes)),
		closing: make(chan struct{}),
	}
	for range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netrun: listen: %w", err)
		}
		c.listeners = append(c.listeners, ln)
		c.addrs = append(c.addrs, ln.Addr().String())
		c.boxes = append(c.boxes, newMailbox())
	}
	return c, nil
}

// Observe registers an observer invoked after every delivery, serialized
// across the per-node delivery loops. Envelope depth is always 0: network
// executions have no logical clock. It must be called before Start.
func (c *Cluster) Observe(o simnet.Observer) { c.observer = o }

// Addrs returns the per-node listen addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// SentBytes returns per-node sent byte counts.
func (c *Cluster) SentBytes() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.sent...)
}

// Start launches accept loops, initializes every node, and only then
// starts the delivery loops — the ordering that preserves the runner
// contract that Init and Deliver never overlap on one node (inbound frames
// queue in the mailboxes meanwhile).
func (c *Cluster) Start() {
	for id := range c.nodes {
		id := id
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.acceptLoop(id)
		}()
	}
	for id, n := range c.nodes {
		n.Init(&netCtx{c: c, self: id})
	}
	for id := range c.nodes {
		id := id
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.deliverLoop(id)
		}()
	}
}

// RunUntil polls pred until it returns true, the timeout elapses or ctx is
// done. It returns an error on timeout and ctx.Err() on cancellation.
// Network executions have no global quiescence detector (that would itself
// need agreement), so completion is observed from node state — e.g. "all
// correct nodes decided".
func (c *Cluster) RunUntil(ctx context.Context, pred func() bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	if pred() {
		return nil
	}
	return errors.New("netrun: timeout waiting for completion predicate")
}

// Close shuts listeners, connections and delivery loops down and waits for
// the worker goroutines.
func (c *Cluster) Close() {
	c.once.Do(func() {
		close(c.closing)
		for _, ln := range c.listeners {
			_ = ln.Close()
		}
		c.mu.Lock()
		for _, conn := range c.conns {
			_ = conn.Close()
		}
		c.mu.Unlock()
		for _, b := range c.boxes {
			b.close()
		}
	})
	c.wg.Wait()
}

func (c *Cluster) acceptLoop(id int) {
	for {
		conn, err := c.listeners[id].Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.readLoop(id, conn)
		}()
	}
}

// readLoop decodes frames from one inbound connection into id's mailbox.
func (c *Cluster) readLoop(id int, conn net.Conn) {
	defer conn.Close()
	header := make([]byte, 4)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(header)
		if size == 0 || size > maxFrame {
			return // corrupt peer; drop the connection
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		from, to, msg, err := wire.DecodeEnvelope(frame)
		if err != nil || to != id {
			continue // malformed or misrouted frame: authenticated drop
		}
		c.boxes[id].put(delivery{from: from, msg: msg})
	}
}

func (c *Cluster) deliverLoop(id int) {
	for {
		d, ok := c.boxes[id].get()
		if !ok {
			return
		}
		c.nodes[id].Deliver(&netCtx{c: c, self: id}, d.from, d.msg)
		if c.observer != nil {
			c.obsMu.Lock()
			c.observer(simnet.Envelope{From: d.from, To: id, Msg: d.msg})
			c.obsMu.Unlock()
		}
	}
}

// send frames and writes one message, dialing the peer on first use.
func (c *Cluster) send(from, to int, m simnet.Message) {
	frame, err := wire.EncodeEnvelope(from, to, m)
	if err != nil {
		return // unknown message type: nothing a remote peer could do either
	}
	conn, err := c.conn(from, to)
	if err != nil {
		return // peer unreachable; the model's reliability holds on loopback
	}
	buf := make([]byte, 0, 4+len(frame))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(frame)))
	buf = append(buf, frame...)
	c.mu.Lock()
	_, werr := conn.Write(buf)
	if werr == nil {
		c.sent[from] += int64(len(frame))
	}
	c.mu.Unlock()
}

func (c *Cluster) conn(from, to int) (net.Conn, error) {
	key := connKey{from: from, to: to}
	c.mu.Lock()
	conn, ok := c.conns[key]
	c.mu.Unlock()
	if ok {
		return conn, nil
	}
	dialed, err := net.DialTimeout("tcp", c.addrs[to], 2*time.Second)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.conns[key]; ok {
		_ = dialed.Close()
		return existing, nil
	}
	select {
	case <-c.closing:
		_ = dialed.Close()
		return nil, errors.New("netrun: cluster closing")
	default:
	}
	c.conns[key] = dialed
	return dialed, nil
}

type netCtx struct {
	c    *Cluster
	self int
}

// Now returns 0: wall-clock-free logical time is not defined for network
// executions; completion is observed from node state (RunUntil).
func (ctx *netCtx) Now() int { return 0 }

func (ctx *netCtx) Send(to simnet.NodeID, m simnet.Message) {
	if to < 0 || to >= len(ctx.c.nodes) {
		return
	}
	ctx.c.send(ctx.self, to, m)
}

type delivery struct {
	from int
	msg  simnet.Message
}

// mailbox is an unbounded MPSC queue (same rationale as the goroutine
// runner: bounded buffers would deadlock mutually sending nodes).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delivery
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(d delivery) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, d)
	m.cond.Signal()
}

func (m *mailbox) get() (delivery, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return delivery{}, false
	}
	d := m.queue[0]
	m.queue = m.queue[1:]
	return d, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}
