// Package netrun executes the same protocol nodes that the simulation
// runners drive — AER, the committee substrate, the baselines — over real
// TCP sockets on localhost, using the internal/wire codecs. It exists to
// demonstrate that the protocol implementation is transport-agnostic: a
// node moved from the discrete-event simulator onto the network stack
// unchanged is strong evidence that no simulator artifact props it up.
//
// The cluster is a simnet.Transport implementation plugged into the shared
// simnet.Fabric: mailboxes, per-node metrics shards, observer fan-in and
// quiescence accounting are the Fabric's (the same code the goroutine
// runner uses); this package only moves frames. Topology: every node owns
// one TCP listener; connections are dialed lazily on first send. Frames
// are length-prefixed wire envelopes. Delivery order and timing are
// whatever the kernel provides, so — like the goroutine runner — only
// outcome properties are deterministic, not traces.
//
// Every directed connection is supervised (see link): a bounded send
// queue with an explicit overload policy, jittered exponential-backoff
// redial when the socket breaks, write deadlines on every frame, and a
// heartbeat failure detector that recycles unresponsive sockets. A peer
// that stays unreachable past the redial budget degrades to dropped
// frames — never to stalled senders — so a run keeps committing while ≤f
// peers are dark, and a healed peer re-syncs through the catch-up path.
// Options tune all of it; ChaosPlan (chaos.go) attacks it with live
// socket strikes.
//
// Time: the Fabric runs a per-node delivery counter (simnet.CounterClock),
// so Context.Now during a delivery is the number of messages the node has
// handled — which makes decision times on network runs meaningful (the
// count of deliveries it took the node to decide) instead of 0.
package netrun

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/wire"
)

// maxFrame bounds accepted frame sizes (defense against corrupt length
// prefixes; generous for any protocol message).
const maxFrame = 1 << 20

// bufPool recycles per-send frame buffers.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// Cluster runs a set of protocol nodes over localhost TCP.
type Cluster struct {
	fab       *simnet.Fabric
	opts      Options
	listeners []net.Listener
	addrs     []string

	// mu guards the link and inbound-connection registries and the closing
	// handshake; per-socket state lives in the links themselves. sent is
	// written with atomic adds by the link writer goroutines.
	mu      sync.Mutex
	links   map[connKey]*link
	inbound map[connKey]*inboundConn
	sent    []int64
	// catchupLns are dedicated catch-up listeners (ServeCatchup), and
	// catchupConns their accepted connections; both close with the
	// cluster.
	catchupLns   []net.Listener
	catchupConns []net.Conn

	stats   netStats
	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

type connKey struct{ from, to int }

// netStats is the cluster's supervision counter block; every field is
// written with atomics and safe to snapshot mid-run.
type netStats struct {
	dials, redials, failedDials     atomic.Int64
	shed, droppedDown               atomic.Int64
	suspects, recoveries, deadLinks atomic.Int64
	pingsSent, pongsReceived        atomic.Int64
	chaosStrikes, chaosSkips        atomic.Int64
	linksSevered                    atomic.Int64
	// framesSent counts data frames written, messagesSent the protocol
	// messages they carried, batchFrames the coalesced subset; framesSent <
	// messagesSent proves link-level coalescing engaged.
	framesSent, messagesSent atomic.Int64
	batchFrames              atomic.Int64
}

func (s *netStats) snapshot() simnet.NetStats {
	return simnet.NetStats{
		Dials:         s.dials.Load(),
		Redials:       s.redials.Load(),
		FailedDials:   s.failedDials.Load(),
		Shed:          s.shed.Load(),
		DroppedDown:   s.droppedDown.Load(),
		Suspects:      s.suspects.Load(),
		Recoveries:    s.recoveries.Load(),
		DeadLinks:     s.deadLinks.Load(),
		PingsSent:     s.pingsSent.Load(),
		PongsReceived: s.pongsReceived.Load(),
		ChaosStrikes:  s.chaosStrikes.Load(),
		ChaosSkips:    s.chaosSkips.Load(),
		LinksSevered:  s.linksSevered.Load(),
		FramesSent:    s.framesSent.Load(),
		MessagesSent:  s.messagesSent.Load(),
		BatchFrames:   s.batchFrames.Load(),
	}
}

// New builds a cluster with default Options: one loopback listener per
// node. The caller must Close the cluster.
func New(nodes []simnet.Node) (*Cluster, error) {
	return NewWithOptions(nodes, Options{})
}

// NewWithOptions builds a cluster with explicit supervision options. The
// caller must Close the cluster.
func NewWithOptions(nodes []simnet.Node, opts Options) (*Cluster, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:    opts.withDefaults(),
		links:   make(map[connKey]*link),
		inbound: make(map[connKey]*inboundConn),
		sent:    make([]int64, len(nodes)),
		closing: make(chan struct{}),
	}
	c.fab = simnet.NewFabric(nodes, simnet.CounterClock, true)
	c.fab.SetTransport(c)
	c.fab.SetLenientSends(true)
	if c.opts.Hosted != nil {
		// Partial hosting: this process listens only for its hosted nodes,
		// at the fixed addresses peers were told to dial; the remaining
		// slots are remote peers whose advertised addresses the link
		// supervisors dial.
		if len(c.opts.Hosted) != len(nodes) {
			c.Close()
			return nil, fmt.Errorf("netrun: Hosted has %d entries for %d nodes", len(c.opts.Hosted), len(nodes))
		}
		for id := range nodes {
			if !c.opts.Hosted[id] {
				c.listeners = append(c.listeners, nil)
				c.addrs = append(c.addrs, c.opts.Addrs[id])
				continue
			}
			ln, err := net.Listen("tcp", c.opts.Addrs[id])
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("netrun: listen %s: %w", c.opts.Addrs[id], err)
			}
			c.listeners = append(c.listeners, ln)
			c.addrs = append(c.addrs, c.opts.Addrs[id])
		}
		return c, nil
	}
	for range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netrun: listen: %w", err)
		}
		c.listeners = append(c.listeners, ln)
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	return c, nil
}

// Observe registers an observer: deliveries are buffered in the Fabric's
// shards and fanned in — one globally ordered pass — when the cluster
// closes. Envelope depth carries the receiving node's delivery count (the
// per-node logical clock). It must be called before Start.
func (c *Cluster) Observe(o simnet.Observer) { c.fab.Observe(o) }

// InjectFaults installs a fault plan on the Fabric's send path: judged
// before a frame reaches the wire, so dropped messages are never written
// and duplicated messages are framed twice. Time for crash/partition
// windows is the sender's per-node delivery count (the cluster's
// CounterClock). It must be called before Start.
func (c *Cluster) InjectFaults(plan simnet.FaultPlan) { c.fab.SetFaults(plan) }

// Addrs returns the per-node listen addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// SentBytes returns per-node sent byte counts (wire frames actually
// written, excluding the length prefix and heartbeat frames). Counters
// are atomic, but for totals consistent with each other call it after
// Close or quiescence.
func (c *Cluster) SentBytes() []int64 {
	out := make([]int64, len(c.sent))
	for i := range c.sent {
		out[i] = atomic.LoadInt64(&c.sent[i])
	}
	return out
}

// Metrics returns the Fabric's merged per-node metrics (message counts by
// kind, per-node sent/received) with the cluster's supervision counters
// attached as Metrics.Net. Call it only after the cluster is closed or
// quiescent; merging during delivery is racy.
func (c *Cluster) Metrics() *simnet.Metrics {
	m := c.fab.Metrics()
	ns := c.stats.snapshot()
	m.Net = &ns
	return m
}

// NetStats snapshots the supervision counters — dial/redial churn,
// detector transitions, shed frames, chaos strikes. Unlike Metrics it is
// safe to call mid-run (all counters are atomic).
func (c *Cluster) NetStats() simnet.NetStats { return c.stats.snapshot() }

// Inject feeds a locally originated control envelope (e.g. a decision-log
// open/close message) straight into the destination node's mailbox,
// bypassing the wire. The in-flight counter is incremented so quiescence
// accounting stays exact — unlike frames arriving through readLoop, nobody
// counted these on a send path.
func (c *Cluster) Inject(e simnet.Envelope) { c.fab.InjectLocal(e) }

// Start launches accept loops, the heartbeat detector and the chaos
// controller (when configured), then starts the Fabric: nodes initialize
// sequentially before any delivery loop runs — the ordering that preserves
// the runner contract that Init and Deliver never overlap on one node
// (inbound frames queue in the mailboxes meanwhile).
func (c *Cluster) Start() {
	for id := range c.listeners {
		if c.listeners[id] == nil {
			continue // remote peer of a partially hosted cluster
		}
		id := id
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.acceptLoop(id)
		}()
	}
	if !c.opts.Heartbeat.Disable {
		c.wg.Add(1)
		go c.heartbeatLoop()
	}
	if c.opts.Chaos.Active() {
		c.wg.Add(1)
		go c.chaosLoop()
	}
	c.fab.Start()
}

// RunUntil waits for pred to return true, the timeout to elapse or ctx to
// be done. It returns an error on timeout and ctx.Err() on cancellation.
// Completion of a *protocol* is observed from node state — e.g. "all
// correct nodes decided"; AwaitQuiescence then drains the tail of the
// execution. Polling backs off exponentially (1ms doubling to 16ms) and
// never sleeps past the deadline.
func (c *Cluster) RunUntil(ctx context.Context, pred func() bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	wait := time.Millisecond
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		if pred() {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return errors.New("netrun: timeout waiting for completion predicate")
		}
		if wait > remain {
			wait = remain
		}
		timer.Reset(wait)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		if wait < 16*time.Millisecond {
			wait *= 2
		}
	}
}

// AwaitQuiescence blocks until no sent message remains unhandled, or the
// timeout elapses (0 = forever), reporting whether quiescence was reached.
// The count is kept in-process (both endpoints of every loopback connection
// live in this cluster), so unlike a real distributed system the cluster
// can detect global quiescence without running an agreement protocol for
// it. Frames dropped by the supervision layer (shed, dead links, teardown)
// return their counts, but a frame that died *inside* a severed socket's
// kernel buffer cannot be traced, so chaos runs and broken connections can
// leak in-flight counts: callers should pass a timeout.
func (c *Cluster) AwaitQuiescence(timeout time.Duration) bool {
	return c.fab.AwaitQuiescence(timeout)
}

// Quiesced is the non-blocking form of AwaitQuiescence: once it reports
// true the execution is over (no unhandled message remains and none can be
// created). With a lossy fault plan installed it is the natural RunUntil
// predicate — "all correct nodes decided" may never come true when the
// plan destroys messages.
func (c *Cluster) Quiesced() bool { return c.fab.Quiesced() }

// isClosing reports whether Close has begun.
func (c *Cluster) isClosing() bool {
	select {
	case <-c.closing:
		return true
	default:
		return false
	}
}

// event dispatches one link state transition to the configured observer.
func (c *Cluster) event(kind ConnEventKind, from, to int) {
	if h := c.opts.OnConnEvent; h != nil {
		h(ConnEvent{Kind: kind, From: from, To: to})
	}
}

// Close shuts listeners, connections and delivery loops down, waits for
// the worker goroutines and flushes buffered observer events. Link
// writers observe the closing channel (and write errors from their closed
// sockets) and drain their queues, returning in-flight counts, instead of
// writing to dead conns.
func (c *Cluster) Close() {
	c.once.Do(func() {
		close(c.closing)
		for _, ln := range c.listeners {
			if ln != nil {
				_ = ln.Close()
			}
		}
		c.mu.Lock()
		for _, l := range c.links {
			l.closeConn()
		}
		for _, ic := range c.inbound {
			_ = ic.conn.Close()
		}
		for _, ln := range c.catchupLns {
			_ = ln.Close()
		}
		for _, conn := range c.catchupConns {
			_ = conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	c.fab.Stop()
	// Stragglers: a sender that won the enqueue race against a writer
	// already gone. Everything has stopped, so a single drain pass is
	// race-free and final.
	c.mu.Lock()
	for _, l := range c.links {
		l.drainQueue()
	}
	c.mu.Unlock()
}

func (c *Cluster) acceptLoop(id int) {
	for {
		conn, err := c.listeners[id].Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok && c.opts.SockBuf > 0 {
			_ = tc.SetReadBuffer(c.opts.SockBuf)
			_ = tc.SetWriteBuffer(c.opts.SockBuf)
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.readLoop(id, conn)
		}()
	}
}

// frameSize decodes a length prefix.
func frameSize(header []byte) int {
	return int(binary.LittleEndian.Uint32(header))
}

// readLoop decodes frames from one inbound connection into id's mailbox.
// Decode is zero-copy by default: each frame reads into a pooled RefBuf,
// decoded payloads alias it, and one reference per injected envelope keeps
// the buffer alive until the fabric finishes each delivery (DESIGN.md
// §10). When an observer is registered the fabric retains envelopes until
// quiescence, so the loop falls back to owning-copy decode into a reused
// buffer. It answers heartbeat pings in place (this loop is the socket's
// only writer on the accepting side), registers the connection with the
// chaos controller once the peer identifies itself, and — when the
// heartbeat detector is on — applies a generous idle read deadline so
// sockets abandoned by a dead dialer are reaped.
func (c *Cluster) readLoop(id int, conn net.Conn) {
	defer conn.Close()
	var reg *inboundConn
	var regKey connKey
	defer func() {
		if reg == nil {
			return
		}
		c.mu.Lock()
		if c.inbound[regKey] == reg {
			delete(c.inbound, regKey)
		}
		c.mu.Unlock()
	}()
	var idle time.Duration
	if hb := c.opts.Heartbeat; !hb.Disable {
		idle = 4 * (hb.Every + hb.SuspectAfter)
		if idle < 2*time.Second {
			idle = 2 * time.Second
		}
	}
	// copyMode: an observer retains envelopes past delivery, so decoded
	// payloads must own their data; the frame buffer is then reusable.
	copyMode := c.fab.Observing()
	header := make([]byte, 4)
	var frame, pong []byte
	var batch []simnet.Envelope
	for {
		if reg != nil && !c.pauseInbound(reg) {
			return // cluster closed mid-blackhole
		}
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		size := frameSize(header)
		if size == 0 || size > maxFrame {
			return // corrupt peer; drop the connection
		}
		var rb *wire.RefBuf
		if copyMode {
			if cap(frame) < size {
				frame = make([]byte, size)
			}
			frame = frame[:size]
		} else {
			rb = wire.NewRefBuf(size)
			frame = rb.Bytes()
		}
		if _, err := io.ReadFull(conn, frame); err != nil {
			if rb != nil {
				rb.Recycle()
			}
			return
		}

		if wire.IsBatchFrame(frame) {
			var err error
			batch, err = wire.DecodeBatchAppend(batch[:0], frame, !copyMode)
			if err != nil || len(batch) == 0 || batch[0].To != id {
				if rb != nil {
					rb.Recycle()
				}
				continue // malformed or misrouted batch: authenticated drop
			}
			from := batch[0].From
			if reg == nil && from >= 0 && from < len(c.addrs) && from != id {
				reg = &inboundConn{conn: conn}
				regKey = connKey{from: from, to: id}
				c.mu.Lock()
				c.inbound[regKey] = reg // latest socket for the link wins
				c.mu.Unlock()
			}
			if rb != nil {
				// One reference per envelope: the buffer recycles when the
				// fabric has handled the last of them.
				rb.Retain(len(batch))
			}
			for i := range batch {
				if rb != nil {
					batch[i].Buf = rb
				}
				c.fab.Inject(batch[i])
			}
			continue
		}

		from, to, msg, err := wire.DecodeEnvelope(frame)
		if err != nil || to != id {
			if rb != nil {
				rb.Recycle()
			}
			continue // malformed or misrouted frame: authenticated drop
		}
		if reg == nil && from >= 0 && from < len(c.addrs) && from != id {
			reg = &inboundConn{conn: conn}
			regKey = connKey{from: from, to: id}
			c.mu.Lock()
			c.inbound[regKey] = reg // latest socket for the link wins
			c.mu.Unlock()
		}
		switch m := msg.(type) {
		case simnet.Ping:
			if rb != nil {
				rb.Recycle() // transport-internal: nothing aliases past here
			}
			pong, err = wire.AppendFrame(pong[:0], id, from, simnet.Pong{Nonce: m.Nonce})
			if err != nil {
				continue
			}
			if wt := c.opts.WriteTimeout; wt > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(wt))
			}
			if _, werr := conn.Write(pong); werr != nil {
				return
			}
			continue
		case simnet.Pong:
			if rb != nil {
				rb.Recycle()
			}
			continue // not expected on an inbound socket; ignore
		}
		if copyMode {
			// Owning decode: the reused frame buffer would otherwise be
			// overwritten under the retained envelope.
			if _, _, msg, err = wire.DecodeEnvelopeCopy(frame); err != nil {
				continue
			}
		}
		e := simnet.Envelope{From: from, To: to, Msg: msg}
		// Instance-tagged frames surface as InstMsg; hoist the tag back
		// into the envelope header so the Fabric dispatches DeliverTagged.
		if im, ok := msg.(simnet.InstMsg); ok {
			e.Msg, e.Inst, e.Tagged = im.Inner, im.Inst, true
		}
		if rb != nil {
			rb.Retain(1)
			e.Buf = rb
		}
		c.fab.Inject(e)
	}
}

// pauseInbound honors a blackhole window: stop draining the socket until
// the window expires or the cluster closes (false = closing).
func (c *Cluster) pauseInbound(ic *inboundConn) bool {
	for {
		until := ic.pausedUntil.Load()
		now := time.Now().UnixNano()
		if until <= now {
			return true
		}
		wait := time.Duration(until - now)
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-c.closing:
			t.Stop()
			return false
		case <-t.C:
		}
	}
}

// Send implements simnet.Transport: it frames one message and hands it to
// the (from, to) link supervisor, which owns dialing, redialing and the
// actual write. It reports whether the frame was accepted (unknown
// message types and a closing cluster are rejected; the Fabric then
// uncounts them). Frames the supervisor later drops — shed, dead link,
// teardown — return their in-flight counts through Fabric.Uncount.
func (c *Cluster) Send(e simnet.Envelope) bool {
	bp := bufPool.Get().(*[]byte)
	var buf []byte
	var err error
	if e.Tagged {
		buf, err = wire.AppendTaggedFrame((*bp)[:0], e.From, e.To, e.Inst, e.Msg)
	} else {
		buf, err = wire.AppendFrame((*bp)[:0], e.From, e.To, e.Msg)
	}
	if err != nil {
		bufPool.Put(bp)
		return false // unknown message type: nothing a remote peer could do either
	}
	*bp = buf
	l := c.link(e.From, e.To)
	if l == nil {
		bufPool.Put(bp)
		return false // cluster closing
	}
	return l.enqueue(outFrame{buf: bp})
}

// link returns the supervisor for a directed connection, creating it (and
// its writer goroutine) on first use.
func (c *Cluster) link(from, to int) *link {
	key := connKey{from: from, to: to}
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.links[key]; ok {
		return l
	}
	select {
	case <-c.closing:
		return nil
	default:
	}
	l := newLink(c, from, to)
	c.links[key] = l
	c.wg.Add(1)
	go l.run()
	return l
}

// snapshotLinks copies the link registry for lock-free iteration.
func (c *Cluster) snapshotLinks() []*link {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*link, 0, len(c.links))
	for _, l := range c.links {
		out = append(out, l)
	}
	return out
}

// heartbeatLoop drives the failure detector: every period, scan the links
// for stalled writes and unanswered pings, and probe idle sockets.
func (c *Cluster) heartbeatLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.Heartbeat.Every)
	defer ticker.Stop()
	for {
		select {
		case <-c.closing:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for _, l := range c.snapshotLinks() {
			l.checkHealth(now)
		}
	}
}
