// Package netrun executes the same protocol nodes that the simulation
// runners drive — AER, the committee substrate, the baselines — over real
// TCP sockets on localhost, using the internal/wire codecs. It exists to
// demonstrate that the protocol implementation is transport-agnostic: a
// node moved from the discrete-event simulator onto the network stack
// unchanged is strong evidence that no simulator artifact props it up.
//
// The cluster is a simnet.Transport implementation plugged into the shared
// simnet.Fabric: mailboxes, per-node metrics shards, observer fan-in and
// quiescence accounting are the Fabric's (the same code the goroutine
// runner uses); this package only moves frames. Topology: every node owns
// one TCP listener; connections are dialed lazily on first send and
// cached. Frames are length-prefixed wire envelopes. Delivery order and
// timing are whatever the kernel provides, so — like the goroutine runner
// — only outcome properties are deterministic, not traces.
//
// Time: the Fabric runs a per-node delivery counter (simnet.CounterClock),
// so Context.Now during a delivery is the number of messages the node has
// handled — which makes decision times on network runs meaningful (the
// count of deliveries it took the node to decide) instead of 0.
package netrun

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/wire"
)

// maxFrame bounds accepted frame sizes (defense against corrupt length
// prefixes; generous for any protocol message).
const maxFrame = 1 << 20

// bufPool recycles per-send frame buffers.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// Cluster runs a set of protocol nodes over localhost TCP.
type Cluster struct {
	fab       *simnet.Fabric
	listeners []net.Listener
	addrs     []string

	// mu guards the connection cache and closing handshake only. Writes on
	// a cached connection take no lock: the connection for (from, to) is
	// written exclusively by node from's goroutine (sends happen on the
	// sender's delivery loop, or during sequential Init), and sent[from]
	// is single-writer for the same reason.
	mu    sync.Mutex
	conns map[connKey]net.Conn
	sent  []int64 // wire-frame bytes sent per node; read only after Close
	// catchupLns are dedicated catch-up listeners (ServeCatchup), and
	// catchupConns their accepted connections; both close with the
	// cluster.
	catchupLns   []net.Listener
	catchupConns []net.Conn

	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

type connKey struct{ from, to int }

// New builds a cluster: one loopback listener per node. The caller must
// Close the cluster.
func New(nodes []simnet.Node) (*Cluster, error) {
	c := &Cluster{
		conns:   make(map[connKey]net.Conn),
		sent:    make([]int64, len(nodes)),
		closing: make(chan struct{}),
	}
	c.fab = simnet.NewFabric(nodes, simnet.CounterClock, true)
	c.fab.SetTransport(c)
	c.fab.SetLenientSends(true)
	for range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netrun: listen: %w", err)
		}
		c.listeners = append(c.listeners, ln)
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	return c, nil
}

// Observe registers an observer: deliveries are buffered in the Fabric's
// shards and fanned in — one globally ordered pass — when the cluster
// closes. Envelope depth carries the receiving node's delivery count (the
// per-node logical clock). It must be called before Start.
func (c *Cluster) Observe(o simnet.Observer) { c.fab.Observe(o) }

// InjectFaults installs a fault plan on the Fabric's send path: judged
// before a frame reaches the wire, so dropped messages are never written
// and duplicated messages are framed twice. Time for crash/partition
// windows is the sender's per-node delivery count (the cluster's
// CounterClock). It must be called before Start.
func (c *Cluster) InjectFaults(plan simnet.FaultPlan) { c.fab.SetFaults(plan) }

// Addrs returns the per-node listen addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// SentBytes returns per-node sent byte counts (wire frames actually
// written, excluding the length prefix). Call it only after Close (or
// quiescence): the counters are written lock-free by the sender loops.
func (c *Cluster) SentBytes() []int64 {
	return append([]int64(nil), c.sent...)
}

// Metrics returns the Fabric's merged per-node metrics (message counts by
// kind, per-node sent/received). Call it only after the cluster is closed
// or quiescent; merging during delivery is racy.
func (c *Cluster) Metrics() *simnet.Metrics { return c.fab.Metrics() }

// Inject feeds a locally originated control envelope (e.g. a decision-log
// open/close message) straight into the destination node's mailbox,
// bypassing the wire. The in-flight counter is incremented so quiescence
// accounting stays exact — unlike frames arriving through readLoop, nobody
// counted these on a send path.
func (c *Cluster) Inject(e simnet.Envelope) { c.fab.InjectLocal(e) }

// Start launches accept loops, then starts the Fabric: nodes initialize
// sequentially before any delivery loop runs — the ordering that preserves
// the runner contract that Init and Deliver never overlap on one node
// (inbound frames queue in the mailboxes meanwhile).
func (c *Cluster) Start() {
	for id := range c.listeners {
		id := id
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.acceptLoop(id)
		}()
	}
	c.fab.Start()
}

// RunUntil polls pred until it returns true, the timeout elapses or ctx is
// done. It returns an error on timeout and ctx.Err() on cancellation.
// Completion of a *protocol* is observed from node state — e.g. "all
// correct nodes decided"; AwaitQuiescence then drains the tail of the
// execution.
func (c *Cluster) RunUntil(ctx context.Context, pred func() bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	if pred() {
		return nil
	}
	return errors.New("netrun: timeout waiting for completion predicate")
}

// AwaitQuiescence blocks until no sent message remains unhandled, or the
// timeout elapses (0 = forever), reporting whether quiescence was reached.
// The count is kept in-process (both endpoints of every loopback connection
// live in this cluster), so unlike a real distributed system the cluster
// can detect global quiescence without running an agreement protocol for
// it. A broken connection can leak in-flight counts, so callers should
// pass a timeout.
func (c *Cluster) AwaitQuiescence(timeout time.Duration) bool {
	return c.fab.AwaitQuiescence(timeout)
}

// Quiesced is the non-blocking form of AwaitQuiescence: once it reports
// true the execution is over (no unhandled message remains and none can be
// created). With a lossy fault plan installed it is the natural RunUntil
// predicate — "all correct nodes decided" may never come true when the
// plan destroys messages.
func (c *Cluster) Quiesced() bool { return c.fab.Quiesced() }

// Close shuts listeners, connections and delivery loops down, waits for
// the worker goroutines and flushes buffered observer events.
func (c *Cluster) Close() {
	c.once.Do(func() {
		close(c.closing)
		for _, ln := range c.listeners {
			_ = ln.Close()
		}
		c.mu.Lock()
		for _, conn := range c.conns {
			_ = conn.Close()
		}
		for _, ln := range c.catchupLns {
			_ = ln.Close()
		}
		for _, conn := range c.catchupConns {
			_ = conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	c.fab.Stop()
}

func (c *Cluster) acceptLoop(id int) {
	for {
		conn, err := c.listeners[id].Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.readLoop(id, conn)
		}()
	}
}

// readLoop decodes frames from one inbound connection into id's mailbox.
// The frame buffer is reused across messages: the wire decoders copy what
// they keep.
func (c *Cluster) readLoop(id int, conn net.Conn) {
	defer conn.Close()
	header := make([]byte, 4)
	var frame []byte
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(header)
		if size == 0 || size > maxFrame {
			return // corrupt peer; drop the connection
		}
		if cap(frame) < int(size) {
			frame = make([]byte, size)
		}
		frame = frame[:size]
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		from, to, msg, err := wire.DecodeEnvelope(frame)
		if err != nil || to != id {
			continue // malformed or misrouted frame: authenticated drop
		}
		e := simnet.Envelope{From: from, To: to, Msg: msg}
		// Instance-tagged frames surface as InstMsg; hoist the tag back
		// into the envelope header so the Fabric dispatches DeliverTagged.
		if im, ok := msg.(simnet.InstMsg); ok {
			e.Msg, e.Inst, e.Tagged = im.Inner, im.Inst, true
		}
		c.fab.Inject(e)
	}
}

// Send implements simnet.Transport: it frames and writes one message,
// dialing the peer on first use. Write buffers come from a pool. It
// reports whether the frame was written (unknown message types and
// unreachable peers are dropped; the Fabric then uncounts them).
func (c *Cluster) Send(e simnet.Envelope) bool {
	bp := bufPool.Get().(*[]byte)
	var buf []byte
	var err error
	if e.Tagged {
		buf, err = wire.AppendTaggedFrame((*bp)[:0], e.From, e.To, e.Inst, e.Msg)
	} else {
		buf, err = wire.AppendFrame((*bp)[:0], e.From, e.To, e.Msg)
	}
	if err != nil {
		bufPool.Put(bp)
		return false // unknown message type: nothing a remote peer could do either
	}
	conn, err := c.conn(e.From, e.To)
	if err != nil {
		*bp = buf
		bufPool.Put(bp)
		return false // peer unreachable; the model's reliability holds on loopback
	}
	// No lock: this connection is written only by e.From's goroutine.
	_, werr := conn.Write(buf)
	if werr == nil {
		c.sent[e.From] += int64(len(buf) - 4) // excluding the length prefix
	}
	*bp = buf
	bufPool.Put(bp)
	return werr == nil
}

func (c *Cluster) conn(from, to int) (net.Conn, error) {
	key := connKey{from: from, to: to}
	c.mu.Lock()
	conn, ok := c.conns[key]
	c.mu.Unlock()
	if ok {
		return conn, nil
	}
	dialed, err := net.DialTimeout("tcp", c.addrs[to], 2*time.Second)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.conns[key]; ok {
		_ = dialed.Close()
		return existing, nil
	}
	select {
	case <-c.closing:
		_ = dialed.Close()
		return nil, errors.New("netrun: cluster closing")
	default:
	}
	c.conns[key] = dialed
	return dialed, nil
}
