package netrun

import (
	"context"
	"testing"
	"time"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

func TestAEROverTCP(t *testing.T) {
	// The flagship check: the same AER nodes that run in the simulator
	// reach agreement over real loopback TCP.
	const n = 24
	sc, err := core.NewScenario(core.DefaultParams(n), 5, core.TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)

	cluster, err := New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	allDecided := func() bool {
		for _, node := range correct {
			if node == nil {
				continue
			}
			if _, ok := node.Decided(); !ok {
				return false
			}
		}
		return true
	}
	if err := cluster.RunUntil(context.Background(), allDecided, 30*time.Second); err != nil {
		t.Fatalf("TCP run did not complete: %v", err)
	}
	// Quiesce before reading node state: deliveries may still be in flight
	// when the last decision lands.
	if !cluster.AwaitQuiescence(30 * time.Second) {
		t.Fatal("cluster did not quiesce after all decisions")
	}
	o := core.Evaluate(correct, sc.GString)
	if !o.Agreement() {
		t.Fatalf("no agreement over TCP: %+v", o)
	}
	m := cluster.Metrics()
	if m.Delivered == 0 || m.ByKind["push"] == 0 || m.ByKind["answer"] == 0 {
		t.Fatalf("fabric metrics not populated over TCP: %+v", m.ByKind)
	}
}

func TestSentBytesAccounted(t *testing.T) {
	const n = 16
	sc, err := core.NewScenario(core.DefaultParams(n), 3, core.TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	cluster, err := New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()
	decided := func() bool {
		for _, node := range correct {
			if node == nil {
				continue
			}
			if _, ok := node.Decided(); !ok {
				return false
			}
		}
		return true
	}
	if err := cluster.RunUntil(context.Background(), decided, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if !cluster.AwaitQuiescence(30 * time.Second) {
		t.Fatal("cluster did not quiesce")
	}
	total := int64(0)
	for _, b := range cluster.SentBytes() {
		total += b
	}
	if total == 0 {
		t.Fatal("no bytes accounted on a completed run")
	}
}

func TestAddrsExposed(t *testing.T) {
	nodes := []simnet.Node{noopNode{}, noopNode{}}
	cluster, err := New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	addrs := cluster.Addrs()
	if len(addrs) != 2 || addrs[0] == "" || addrs[0] == addrs[1] {
		t.Fatalf("bad addrs: %v", addrs)
	}
}

func TestRunUntilTimeout(t *testing.T) {
	cluster, err := New([]simnet.Node{noopNode{}})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()
	if err := cluster.RunUntil(context.Background(), func() bool { return false }, 30*time.Millisecond); err == nil {
		t.Fatal("RunUntil did not time out")
	}
}

func TestCloseIdempotent(t *testing.T) {
	cluster, err := New([]simnet.Node{noopNode{}})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	cluster.Close()
	cluster.Close() // second close must be a no-op, not a panic
}

func TestSendToInvalidNodeIgnored(t *testing.T) {
	bad := &wildSender{}
	cluster, err := New([]simnet.Node{bad})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start() // Init sends out of range; must not panic
}

type noopNode struct{}

func (noopNode) Init(simnet.Context)                                   {}
func (noopNode) Deliver(simnet.Context, simnet.NodeID, simnet.Message) {}

type wildSender struct{}

func (w *wildSender) Init(ctx simnet.Context) {
	ctx.Send(99, core.MsgPush{})
	ctx.Send(-1, core.MsgPush{})
}
func (w *wildSender) Deliver(simnet.Context, simnet.NodeID, simnet.Message) {}
