package netrun

import (
	"fmt"
	"time"
)

// Options shape the cluster's connection supervision layer: dial and
// write deadlines, the redial policy, the heartbeat failure detector, the
// bounded per-peer send queues and their overload policy, and an optional
// chaos plan. The zero value selects the defaults listed on each field.
type Options struct {
	// DialTimeout bounds every connect attempt, for both mesh links and
	// catch-up fetches. Default 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds every frame write — the backstop that unwedges a
	// writer stuck on a dead socket even with the heartbeat detector
	// disabled. Default 10s.
	WriteTimeout time.Duration
	// Reconnect is the redial policy for broken links.
	Reconnect ReconnectPolicy
	// Heartbeat is the failure-detector policy.
	Heartbeat HeartbeatPolicy
	// QueueLen bounds each link's send queue, in frames. Default 1024.
	QueueLen int
	// ShedOldest selects the overload policy for a full send queue: true
	// drops the oldest queued frame (counted in NetStats.Shed), false —
	// the default — blocks the sender until the writer drains.
	ShedOldest bool
	// SockBuf, when positive, sets the kernel send/receive buffer size on
	// every mesh connection. It exists to make backpressure observable at
	// small scales (tests, experiments); 0 keeps the kernel default.
	SockBuf int
	// FlushWindow, when positive, is the coalescing linger: a link writer
	// that found fewer than a full batch waiting lingers up to this long
	// for more frames before writing, trading latency for larger batches.
	// 0 (the default) coalesces opportunistically only — whatever is
	// already queued goes out in one frame, and an idle queue never delays
	// a write.
	FlushWindow time.Duration
	// DisableCoalesce turns link-level frame coalescing off: every message
	// is written as its own frame (the pre-batching wire behavior, kept for
	// benchmarks and bisection).
	DisableCoalesce bool
	// Chaos, when active, severs live connections mid-run on a seeded
	// schedule. See ChaosPlan.
	Chaos ChaosPlan
	// OnConnEvent, when non-nil, observes link state transitions. It is
	// called from supervisor goroutines — implementations must be fast and
	// concurrency-safe.
	OnConnEvent func(ConnEvent)
	// Hosted, when non-nil, marks which node ids this process hosts: the
	// cluster listens only for hosted nodes (at their Addrs entries) and
	// treats the rest as remote peers reached through Addrs — the
	// multi-process daemon topology (internal/server). nil (the default)
	// hosts every node in-process on ephemeral loopback ports.
	Hosted []bool
	// Addrs are the full per-node addresses of a partially hosted cluster,
	// required exactly when Hosted is set: hosted entries are this
	// process's fixed listen addresses, remote entries the peers'
	// advertised ones. Cross-process sends leak the fabric's in-flight
	// quiescence count (the remote delivery is invisible here), so
	// partially hosted clusters must not await quiescence.
	Addrs []string
}

// ReconnectPolicy is the jittered-exponential-backoff redial schedule of
// a link supervisor: after a failed dial the writer sleeps a uniformly
// jittered backoff in [b/2, b], doubling b from Base up to Cap, until a
// dial succeeds or MaxAttempts consecutive attempts failed — at which
// point the link drops its queued frames and goes down for a Cap-long
// cooldown (frames sent meanwhile are dropped immediately, so a
// fail-silent peer never stalls its senders). The next frame after the
// cooldown probes the peer again.
type ReconnectPolicy struct {
	// Base is the first backoff (default 25ms); Cap bounds the growth and
	// sets the down-state cooldown (default 1s).
	Base, Cap time.Duration
	// MaxAttempts bounds consecutive failed dials before the link goes
	// down. 0 means the default (8); negative means never give up.
	MaxAttempts int
	// Disable restores single-shot dialing: one failed dial drops the
	// frame with no retry and no down state.
	Disable bool
}

// HeartbeatPolicy is the failure detector: the dialing side of every
// established link sends a ping when it has heard no pong for Every, and
// suspects the link — closing the socket so the next frame redials — when
// a ping goes unanswered for SuspectAfter, or when a frame write has been
// stuck for SuspectAfter (a blackholed peer with deep kernel buffers).
// Suspect→alive transitions are surfaced through Options.OnConnEvent and
// counted in NetStats.
type HeartbeatPolicy struct {
	// Every is the detector period (default 500ms). SuspectAfter is the
	// unanswered-ping window (default 4×Every).
	Every, SuspectAfter time.Duration
	// Disable turns the detector off: no pings, no read deadlines on
	// accepted connections.
	Disable bool
}

// ConnEventKind enumerates link state transitions.
type ConnEventKind int

const (
	// ConnDialed: first successful dial of a link.
	ConnDialed ConnEventKind = iota + 1
	// ConnRedialed: successful re-establishment after a failure.
	ConnRedialed
	// ConnSuspected: heartbeat unanswered or write stalled; the socket was
	// recycled.
	ConnSuspected
	// ConnRecovered: a suspected or down link confirmed alive again.
	ConnRecovered
	// ConnDown: the redial budget ran out; queued frames were dropped.
	ConnDown
	// ConnShed: the overload policy dropped the oldest queued frame.
	ConnShed
)

func (k ConnEventKind) String() string {
	switch k {
	case ConnDialed:
		return "dial"
	case ConnRedialed:
		return "redial"
	case ConnSuspected:
		return "suspect"
	case ConnRecovered:
		return "alive"
	case ConnDown:
		return "down"
	case ConnShed:
		return "shed"
	default:
		return fmt.Sprintf("ConnEventKind(%d)", int(k))
	}
}

// ConnEvent is one link state transition, identified by the directed link
// it happened on.
type ConnEvent struct {
	Kind     ConnEventKind
	From, To int
}

// withDefaults fills every unset knob.
func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.Reconnect.Base <= 0 {
		o.Reconnect.Base = 25 * time.Millisecond
	}
	if o.Reconnect.Cap < o.Reconnect.Base {
		o.Reconnect.Cap = time.Second
		if o.Reconnect.Cap < o.Reconnect.Base {
			o.Reconnect.Cap = o.Reconnect.Base
		}
	}
	if o.Reconnect.MaxAttempts == 0 {
		o.Reconnect.MaxAttempts = 8
	}
	if o.Heartbeat.Every <= 0 {
		o.Heartbeat.Every = 500 * time.Millisecond
	}
	if o.Heartbeat.SuspectAfter <= 0 {
		o.Heartbeat.SuspectAfter = 4 * o.Heartbeat.Every
	}
	if o.Chaos.Active() {
		o.Chaos = o.Chaos.withDefaults()
	}
	return o
}

// Validate rejects malformed options (negative durations or queue bounds,
// unknown chaos kinds).
func (o Options) Validate() error {
	if o.DialTimeout < 0 || o.WriteTimeout < 0 {
		return fmt.Errorf("netrun: negative timeout")
	}
	if o.QueueLen < 0 || o.SockBuf < 0 {
		return fmt.Errorf("netrun: negative buffer bound")
	}
	if o.Reconnect.Base < 0 || o.Reconnect.Cap < 0 {
		return fmt.Errorf("netrun: negative reconnect backoff")
	}
	if o.Heartbeat.Every < 0 || o.Heartbeat.SuspectAfter < 0 {
		return fmt.Errorf("netrun: negative heartbeat window")
	}
	if o.FlushWindow < 0 {
		return fmt.Errorf("netrun: negative flush window")
	}
	if (o.Hosted == nil) != (o.Addrs == nil) {
		return fmt.Errorf("netrun: Hosted and Addrs must be set together")
	}
	if o.Hosted != nil && len(o.Hosted) != len(o.Addrs) {
		return fmt.Errorf("netrun: Hosted has %d entries, Addrs %d", len(o.Hosted), len(o.Addrs))
	}
	return o.Chaos.Validate()
}
