package netrun

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// broadcaster is the traffic generator of the supervision tests: a kick
// (self-delivery) fans one frame out to every peer; frames from peers are
// only counted. The test loop injects kicks, so traffic volume is under
// test control and every directed link carries frames.
type broadcaster struct {
	id, n    int
	received atomic.Int64
}

func (b *broadcaster) Init(simnet.Context) {}

func (b *broadcaster) Deliver(ctx simnet.Context, from simnet.NodeID, _ simnet.Message) {
	if int(from) != b.id {
		b.received.Add(1)
		return
	}
	for j := 0; j < b.n; j++ {
		if j != b.id {
			ctx.Send(j, core.MsgPush{})
		}
	}
}

func kick(c *Cluster, id int) {
	c.Inject(simnet.Envelope{From: id, To: id, Msg: core.MsgPush{}})
}

// TestChaosSweepSeversEveryLink is the tentpole chaos check at transport
// level: under a seeded sweep plan, every directed link that ever carried
// traffic is severed at least once, the supervisors keep healing the mesh
// (redials observed), and the cluster still moves frames afterwards.
func TestChaosSweepSeversEveryLink(t *testing.T) {
	const n = 6
	nodes := make([]simnet.Node, n)
	bcs := make([]*broadcaster, n)
	for i := range nodes {
		bcs[i] = &broadcaster{id: i, n: n}
		nodes[i] = bcs[i]
	}
	cluster, err := NewWithOptions(nodes, Options{
		Reconnect: ReconnectPolicy{Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, MaxAttempts: -1},
		Heartbeat: HeartbeatPolicy{Every: 20 * time.Millisecond, SuspectAfter: 80 * time.Millisecond},
		Chaos:     ChaosPlan{Seed: 7, Sweep: true, Interval: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	want := int64(n * (n - 1))
	deadline := time.Now().Add(60 * time.Second)
	for cluster.NetStats().LinksSevered < want {
		if time.Now().After(deadline) {
			t.Fatalf("sweep incomplete: %d of %d links severed (stats %+v)",
				cluster.NetStats().LinksSevered, want, cluster.NetStats())
		}
		// Keep every link busy so sweep strikes always find live sockets.
		for i := 0; i < n; i++ {
			kick(cluster, i)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := cluster.NetStats()
	if st.Redials == 0 {
		t.Fatalf("links severed but never redialed — the mesh did not heal: %+v", st)
	}
	// The mesh must still move frames after full-coverage severing.
	before := bcs[1].received.Load()
	healDeadline := time.Now().Add(30 * time.Second)
	for bcs[1].received.Load() == before {
		if time.Now().After(healDeadline) {
			t.Fatalf("no delivery after sweep completed: stats %+v", cluster.NetStats())
		}
		kick(cluster, 0)
		time.Sleep(2 * time.Millisecond)
	}
}

// TestUnreachablePeerDegrades pins the graceful-degradation contract: a
// peer whose listener is gone burns the redial budget once (failed dials,
// then a dead link), after which frames to it are dropped fast — never
// stalling senders — while delivery to live peers continues. With every
// dropped frame returning its in-flight count, the run still quiesces.
func TestUnreachablePeerDegrades(t *testing.T) {
	const n = 4
	nodes := make([]simnet.Node, n)
	bcs := make([]*broadcaster, n)
	for i := range nodes {
		bcs[i] = &broadcaster{id: i, n: n}
		nodes[i] = bcs[i]
	}
	cluster, err := NewWithOptions(nodes, Options{
		Reconnect: ReconnectPolicy{Base: time.Millisecond, Cap: 5 * time.Millisecond, MaxAttempts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	// Kill node 3's listener before anything dials it: every connect is
	// refused, so the link must exhaust its budget and go down.
	cluster.listeners[3].Close()
	cluster.Start()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := cluster.NetStats()
		if st.DeadLinks >= 1 && bcs[1].received.Load() > 0 && bcs[2].received.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no degradation observed: stats %+v, received %d/%d",
				st, bcs[1].received.Load(), bcs[2].received.Load())
		}
		kick(cluster, 0)
		time.Sleep(2 * time.Millisecond)
	}
	st := cluster.NetStats()
	if st.FailedDials == 0 {
		t.Fatalf("dead link without failed dials: %+v", st)
	}
	if bcs[3].received.Load() != 0 {
		t.Fatalf("node behind a closed listener received %d frames", bcs[3].received.Load())
	}
	// The accounting contract: every frame either delivered or uncounted.
	if !cluster.AwaitQuiescence(30 * time.Second) {
		t.Fatal("cluster did not quiesce with a dead link — dropped frames leaked in-flight counts")
	}
}

// TestShedOldestPolicy pins the bounded-backpressure contract: with a tiny
// send queue, small kernel buffers and a receiver that stops draining, the
// shed-oldest policy drops queued frames (counted in NetStats.Shed)
// instead of blocking the sender — and the shed counts are returned to the
// quiescence accounting, so the run still drains once the receiver resumes.
func TestShedOldestPolicy(t *testing.T) {
	const n = 2
	nodes := make([]simnet.Node, n)
	bcs := make([]*broadcaster, n)
	for i := range nodes {
		bcs[i] = &broadcaster{id: i, n: n}
		nodes[i] = bcs[i]
	}
	cluster, err := NewWithOptions(nodes, Options{
		QueueLen:   4,
		ShedOldest: true,
		SockBuf:    4096,
		Heartbeat:  HeartbeatPolicy{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	// Establish the 0→1 socket and wait for its inbound registration.
	kick(cluster, 0)
	deadline := time.Now().Add(10 * time.Second)
	for bcs[1].received.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("link 0→1 never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	cluster.mu.Lock()
	ic := cluster.inbound[connKey{from: 0, to: 1}]
	cluster.mu.Unlock()
	if ic == nil {
		t.Fatal("inbound connection not registered")
	}
	// Stop the receiver draining, then flood: the writer wedges on a full
	// kernel buffer, the 4-slot queue fills, and shedding must begin.
	ic.pausedUntil.Store(time.Now().Add(600 * time.Millisecond).UnixNano())
	for i := 0; i < 5000; i++ {
		kick(cluster, 0)
	}
	sheddingDeadline := time.Now().Add(30 * time.Second)
	for cluster.NetStats().Shed == 0 {
		if time.Now().After(sheddingDeadline) {
			t.Fatalf("no frames shed under overload: %+v", cluster.NetStats())
		}
		time.Sleep(time.Millisecond)
	}
	if !cluster.AwaitQuiescence(60 * time.Second) {
		t.Fatalf("cluster did not quiesce after shedding — shed frames leaked in-flight counts: %+v", cluster.NetStats())
	}
}

// TestHeartbeatSuspectAndRecover drives the failure detector through a
// full suspect→alive cycle on one link: a blackholed receiver stops
// answering pings, the detector suspects the link and recycles the socket,
// and the next data frame redials and recovers it — all surfaced as
// ConnEvents and NetStats counters.
func TestHeartbeatSuspectAndRecover(t *testing.T) {
	const n = 2
	var mu sync.Mutex
	var kinds []ConnEventKind
	nodes := make([]simnet.Node, n)
	bcs := make([]*broadcaster, n)
	for i := range nodes {
		bcs[i] = &broadcaster{id: i, n: n}
		nodes[i] = bcs[i]
	}
	cluster, err := NewWithOptions(nodes, Options{
		Reconnect: ReconnectPolicy{Base: time.Millisecond, Cap: 10 * time.Millisecond, MaxAttempts: -1},
		Heartbeat: HeartbeatPolicy{Every: 10 * time.Millisecond, SuspectAfter: 40 * time.Millisecond},
		OnConnEvent: func(ev ConnEvent) {
			if ev.From == 0 && ev.To == 1 {
				mu.Lock()
				kinds = append(kinds, ev.Kind)
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	kick(cluster, 0)
	deadline := time.Now().Add(10 * time.Second)
	for bcs[1].received.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("link 0→1 never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	cluster.mu.Lock()
	ic := cluster.inbound[connKey{from: 0, to: 1}]
	cluster.mu.Unlock()
	if ic == nil {
		t.Fatal("inbound connection not registered")
	}
	// Blackhole the receiver: pings go unanswered, so the detector must
	// suspect the link within SuspectAfter (plus scheduling slack).
	ic.pausedUntil.Store(time.Now().Add(2 * time.Second).UnixNano())
	suspectDeadline := time.Now().Add(30 * time.Second)
	for cluster.NetStats().Suspects == 0 {
		if time.Now().After(suspectDeadline) {
			t.Fatalf("detector never suspected a blackholed link: %+v", cluster.NetStats())
		}
		time.Sleep(time.Millisecond)
	}
	// A suspected idle link stays dormant (no speculative redial); the
	// next data frame re-establishes and clears the suspicion.
	ic.pausedUntil.Store(0)
	recoverDeadline := time.Now().Add(30 * time.Second)
	for cluster.NetStats().Recoveries == 0 {
		if time.Now().After(recoverDeadline) {
			t.Fatalf("suspected link never recovered: %+v", cluster.NetStats())
		}
		kick(cluster, 0)
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawSuspect, sawAliveAfter bool
	for _, k := range kinds {
		switch k {
		case ConnSuspected:
			sawSuspect = true
		case ConnRecovered:
			if sawSuspect {
				sawAliveAfter = true
			}
		}
	}
	if !sawSuspect || !sawAliveAfter {
		t.Fatalf("event stream missing suspect→alive transition: %v", kinds)
	}
}

// TestCloseUnderTraffic races a flood of sends against Close: accept
// loops must exit cleanly, in-flight writers must observe the closed
// state, and nothing may panic or deadlock (the -race CI step runs this).
func TestCloseUnderTraffic(t *testing.T) {
	const n = 4
	for round := 0; round < 5; round++ {
		nodes := make([]simnet.Node, n)
		for i := range nodes {
			nodes[i] = &broadcaster{id: i, n: n}
		}
		cluster, err := NewWithOptions(nodes, Options{
			Reconnect: ReconnectPolicy{Base: time.Millisecond, Cap: 10 * time.Millisecond},
			Heartbeat: HeartbeatPolicy{Every: 5 * time.Millisecond, SuspectAfter: 20 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		cluster.Start()
		done := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					for i := 0; i < n; i++ {
						kick(cluster, i)
					}
				}
			}()
		}
		time.Sleep(20 * time.Millisecond)
		close(done)
		wg.Wait()
		cluster.Close() // deliveries and redials still in flight
	}
}
