package pipeline

import (
	"crypto/sha256"
	"encoding/binary"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/store"
)

// The seeded derivations every decision-log runtime shares. The in-process
// Engine and the multi-process daemon replica (internal/server) must agree
// bit-for-bit on the corruption set, each instance's value digest and each
// node's initial belief — otherwise their committed logs diverge — so the
// derivations live here as pure functions of (seed, geometry, inputs) and
// both runtimes call the same code.

// CorruptSet derives the log's non-adaptive fail-silent corruption set:
// the first ⌊frac·n⌋ entries of a seeded permutation of [n].
func CorruptSet(seed uint64, n int, frac float64) []bool {
	corrupt := make([]bool, n)
	src := prng.New(prng.DeriveKey(seed, "log/corrupt", 0))
	t := int(frac * float64(n))
	for _, id := range src.Perm(n)[:t] {
		corrupt[id] = true
	}
	return corrupt
}

// BatchValue derives instance seq's proposal digest from the batch: the
// first stringBits bits of SHA-256 over (seed, seq, length-prefixed
// payloads). All correct runtimes derive the same value for the same
// inputs, which is what makes committed logs comparable across transports
// and across processes.
func BatchValue(seed uint64, stringBits int, seq uint64, payloads [][]byte) bitstring.String {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seed)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	h.Write(hdr[:])
	var lenBuf [8]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	sum := h.Sum(nil)
	s, err := bitstring.FromBytes(sum, stringBits)
	if err != nil {
		panic("pipeline: internal: " + err.Error()) // unreachable: SHA-256 is 32 bytes, StringBits ≤ 256 validated sizes
	}
	return s
}

// OpenMsgs derives the per-node MsgOpen beliefs of instance seq: entry id
// is the open message node id starts from (nil for corrupt nodes, which
// ignore opens). The PRNG draw order — one knowledge draw per correct
// node, in id order, none at all when knowFrac ≥ 1 — is part of the
// cross-runtime contract: a daemon hosting only a slice of the nodes still
// evaluates every id so its local beliefs match what a single process
// would have injected. The attempt stamps reopens of a stalled instance;
// beliefs are derived from seq alone, so every attempt injects the same
// initial strings.
func OpenMsgs(seed uint64, stringBits int, knowFrac float64, corrupt []bool, seq uint64, attempt uint32, value bitstring.String) []simnet.Message {
	src := prng.New(prng.DeriveKey(seed, "log/believe", seq))
	junk := bitstring.Random(src.Fork(1), stringBits)
	// Two boxed opens (knower and junk-holder) instead of one boxing
	// allocation per node.
	var openValue simnet.Message = MsgOpen{Seq: seq, Attempt: attempt, Initial: value}
	var openJunk simnet.Message = MsgOpen{Seq: seq, Attempt: attempt, Initial: junk}
	msgs := make([]simnet.Message, len(corrupt))
	for id := range corrupt {
		if corrupt[id] {
			continue
		}
		msg := openJunk
		if knowFrac >= 1 || src.Float64() < knowFrac {
			msg = openValue
		}
		msgs[id] = msg
	}
	return msgs
}

// RecordOf converts a committed entry to its durable form.
func RecordOf(en Entry) store.Record { return recordOf(en) }

// EntryOf reverses RecordOf for recovered records.
func EntryOf(r store.Record) Entry { return entryOf(r) }
