package pipeline

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/store"
)

// ErrClosed reports an append on a cleanly closed log — as opposed to a
// log that failed (instance timeout) or was aborted by context
// cancellation, whose appends return the recorded fatal error.
var ErrClosed = fmt.Errorf("pipeline: log closed")

// Config parameterizes one decision log.
type Config struct {
	// N is the system size; Params the protocol geometry (zero value:
	// core.DefaultParams(N)).
	N      int
	Params core.Params
	// Seed keys everything derived: corruption, per-instance knowledge,
	// junk values and per-(instance, node) private randomness.
	Seed uint64
	// CorruptFrac is the fraction of fail-silent Byzantine nodes, fixed for
	// the whole log (the adversary is non-adaptive).
	CorruptFrac float64
	// KnowFrac is the per-instance fraction of correct nodes that start
	// knowing the instance's value; the rest hold a shared junk candidate.
	KnowFrac float64
	// Depth bounds concurrently open instances (≥ 1).
	Depth int
	// CommitFraction is the fraction of correct nodes that must decide
	// before an instance commits (default 1 — every correct node).
	CommitFraction float64
	// InstanceTimeout fails the log when the head instance does not commit
	// in time (default 30s). Lossy fault plans can legitimately destroy an
	// instance's liveness; the timeout turns that into a reported error
	// instead of a hang.
	InstanceTimeout time.Duration
	// Faults is the fault plan installed on the transport's send path.
	Faults simnet.FaultPlan
	// Net carries the TCP transport's supervision knobs — dial timeout,
	// redial policy, heartbeat detector, send-queue bound, chaos plan.
	// StartFabric ignores it.
	Net netrun.Options
	// DisablePool turns off per-instance node recycling (benchmark knob:
	// the naive-rebuild arm of BenchmarkLogInstanceReuse).
	DisablePool bool
	// OnCommit, when set, observes every committed entry, in sequence
	// order, from the engine's commit goroutine.
	OnCommit func(Entry)
	// Store, when set, makes the log durable: the engine seeds its
	// committed prefix from the store's recovered records (new instances
	// open at the recovered frontier) and persists every in-order commit
	// to the store BEFORE surfacing it through WaitSeq/OnCommit — a
	// surfaced commit is always already durable.
	Store *store.Store
}

// Entry is one committed decision-log record.
type Entry struct {
	// Seq is the instance sequence number; committed seqs are contiguous
	// from 0.
	Seq uint64
	// Value is the decided value — the digest of the batch, as agreed by
	// the instance's deciders.
	Value bitstring.String
	// Payloads are the client payloads folded into this instance.
	Payloads [][]byte
	// Deciders and Correct count the correct nodes that decided before the
	// commit and the correct population.
	Deciders int
	Correct  int
	// DistinctValues counts distinct decided values among deciders at
	// commit time (> 1 is a log-agreement violation).
	DistinctValues int
	// CertDeficits counts deciders whose re-derived quorum certificate
	// fell short of the strict poll-list majority (must stay 0).
	CertDeficits int
	// MatchesProposal reports whether Value equals the batch digest the
	// engine proposed (a validity probe).
	MatchesProposal bool
	// Opened and Committed bound the instance's lifetime.
	Opened    time.Time
	Committed time.Time
}

// instance is one open (not yet committed) agreement instance.
type instance struct {
	seq      uint64
	proposed bitstring.String
	payloads [][]byte
	opened   time.Time

	deciders     int
	values       map[bitstring.MapKey]int
	value        bitstring.String // a maximally decided value
	valueCount   int
	certDeficits int

	committed chan struct{} // closed when the instance commits or the log fails
}

// Engine runs the pipelined decision log over one long-lived transport.
// Build it with New, start exactly one transport (StartFabric or
// StartTCP), feed it with Append, then Close it.
type Engine struct {
	cfg     Config
	params  core.Params
	corrupt []bool
	correct int
	need    int // deciders required to commit
	mux     []*MuxNode
	nodes   []simnet.Node

	fab     *simnet.Fabric
	cluster *netrun.Cluster
	inject  func(simnet.Envelope)
	// recovered counts entries seeded from the store at construction;
	// catchupAddr is the TCP catch-up listener's address (StartTCP with a
	// store).
	recovered   int
	catchupAddr string

	slots   chan struct{} // Depth tokens: held while an instance is open
	wake    chan struct{} // commit-watcher kick (capacity 1)
	done    chan struct{} // watcher shutdown
	failCh  chan struct{} // closed on the first fatal error, releasing Append waiters
	watcher sync.WaitGroup

	mu        sync.Mutex
	nextSeq   uint64
	commitSeq uint64
	open      map[uint64]*instance
	// instPool recycles committed instance shells (struct + values map);
	// the committed channel is rebuilt per use — a closed channel cannot
	// be reused. Guarded by mu.
	instPool []*instance
	entries  []Entry
	failed   error
	closed   bool

	teardown sync.Once
}

// New validates the configuration and assembles the node vector. The
// engine is inert until a transport starts.
func New(cfg Config) (*Engine, error) {
	if cfg.N < 8 {
		return nil, fmt.Errorf("pipeline: n = %d too small (need ≥ 8)", cfg.N)
	}
	if cfg.Params.N == 0 {
		cfg.Params = core.DefaultParams(cfg.N)
	}
	if cfg.Params.N != cfg.N {
		return nil, fmt.Errorf("pipeline: params are for n = %d, log has n = %d", cfg.Params.N, cfg.N)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Params.StringBits > 8*sha256.Size {
		return nil, fmt.Errorf("pipeline: StringBits %d exceeds the %d-bit value digest", cfg.Params.StringBits, 8*sha256.Size)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	if cfg.CommitFraction <= 0 {
		cfg.CommitFraction = 1
	}
	if cfg.CommitFraction > 1 {
		return nil, fmt.Errorf("pipeline: commit fraction %v above 1", cfg.CommitFraction)
	}
	if cfg.InstanceTimeout <= 0 {
		cfg.InstanceTimeout = 30 * time.Second
	}
	if !(cfg.CorruptFrac >= 0 && cfg.CorruptFrac < 1.0/3) {
		return nil, fmt.Errorf("pipeline: corrupt fraction %v outside [0, 1/3)", cfg.CorruptFrac)
	}
	if !(cfg.KnowFrac >= 0 && cfg.KnowFrac <= 1) {
		return nil, fmt.Errorf("pipeline: know fraction %v outside [0, 1]", cfg.KnowFrac)
	}
	if err := cfg.Faults.Validate(cfg.N); err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:     cfg,
		params:  cfg.Params,
		corrupt: make([]bool, cfg.N),
		slots:   make(chan struct{}, cfg.Depth),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		failCh:  make(chan struct{}),
		open:    make(map[uint64]*instance),
	}

	// Non-adaptive corruption, fixed for the log's lifetime (the shared
	// cross-runtime derivation — derive.go).
	e.corrupt = CorruptSet(cfg.Seed, cfg.N, cfg.CorruptFrac)
	e.correct = cfg.N - int(cfg.CorruptFrac*float64(cfg.N))
	e.need = int(math.Ceil(cfg.CommitFraction * float64(e.correct)))
	if e.need < 1 {
		e.need = 1
	}

	// A durable log resumes where its store's recovered prefix ends: the
	// recovered entries seed the committed log (never re-surfaced through
	// OnCommit — their commits were surfaced in a previous life) and new
	// instances open at the recovered frontier.
	if cfg.Store != nil {
		for _, r := range cfg.Store.Records() {
			e.entries = append(e.entries, entryOf(r))
		}
		e.commitSeq = cfg.Store.Frontier()
		e.nextSeq = e.commitSeq
		e.recovered = len(e.entries)
	}

	smp := core.NewSamplers(cfg.Params)
	e.mux = make([]*MuxNode, cfg.N)
	e.nodes = make([]simnet.Node, cfg.N)
	for id := 0; id < cfg.N; id++ {
		m := NewMuxNode(id, e.corrupt[id], cfg.Params, smp, cfg.Seed, e.onDecision)
		m.disablePool = cfg.DisablePool
		e.mux[id] = m
		e.nodes[id] = m
	}
	return e, nil
}

// recordOf converts a committed entry to its durable form.
func recordOf(en Entry) store.Record {
	return store.Record{
		Seq:             en.Seq,
		Value:           en.Value,
		Payloads:        en.Payloads,
		Deciders:        en.Deciders,
		Correct:         en.Correct,
		DistinctValues:  en.DistinctValues,
		CertDeficits:    en.CertDeficits,
		MatchesProposal: en.MatchesProposal,
		OpenedNs:        en.Opened.UnixNano(),
		CommittedNs:     en.Committed.UnixNano(),
	}
}

// entryOf reverses recordOf for recovered records.
func entryOf(r store.Record) Entry {
	return Entry{
		Seq:             r.Seq,
		Value:           r.Value,
		Payloads:        r.Payloads,
		Deciders:        r.Deciders,
		Correct:         r.Correct,
		DistinctValues:  r.DistinctValues,
		CertDeficits:    r.CertDeficits,
		MatchesProposal: r.MatchesProposal,
		Opened:          time.Unix(0, r.OpenedNs),
		Committed:       time.Unix(0, r.CommittedNs),
	}
}

// Correct returns the number of correct nodes.
func (e *Engine) Correct() int { return e.correct }

// Recovered returns how many committed entries were seeded from the
// store's recovered prefix at construction.
func (e *Engine) Recovered() int { return e.recovered }

// StartFabric runs the log over the in-process loopback Fabric
// (CounterClock: fault windows and decision times are per-node delivery
// counts, the sustained-load analogue of rounds).
func (e *Engine) StartFabric() {
	e.fab = simnet.NewFabric(e.nodes, simnet.CounterClock, true)
	if !e.cfg.Faults.IsZero() {
		e.fab.SetFaults(e.cfg.Faults)
	}
	e.fab.ServeCatchup(e.CatchupRecords)
	e.fab.Start()
	e.inject = e.fab.InjectLocal
	e.watcher.Add(1)
	go e.watch()
}

// StartTCP runs the log over real loopback TCP sockets (one listener per
// node, lazily dialed mesh — internal/netrun).
func (e *Engine) StartTCP() error {
	cluster, err := netrun.NewWithOptions(e.nodes, e.cfg.Net)
	if err != nil {
		return err
	}
	if !e.cfg.Faults.IsZero() {
		cluster.InjectFaults(e.cfg.Faults)
	}
	addr, err := cluster.ServeCatchup(e.CatchupRecords)
	if err != nil {
		cluster.Close()
		return err
	}
	e.catchupAddr = addr
	cluster.Start()
	e.cluster = cluster
	e.inject = cluster.Inject
	e.watcher.Add(1)
	go e.watch()
	return nil
}

// CatchupAddr returns the TCP catch-up listener's address ("" on the
// fabric runtime, whose surface is Catchup).
func (e *Engine) CatchupAddr() string { return e.catchupAddr }

// CatchupRecords serves one catch-up chunk: the committed entries
// [from, from+max), encoded as store records. It is the handler behind
// both transports' catch-up surfaces.
func (e *Engine) CatchupRecords(from uint64, max int) [][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	if from >= e.commitSeq || max <= 0 {
		return nil
	}
	end := from + uint64(max)
	if end > e.commitSeq {
		end = e.commitSeq
	}
	out := make([][]byte, 0, end-from)
	for seq := from; seq < end; seq++ {
		out = append(out, store.AppendRecord(nil, recordOf(e.entries[seq])))
	}
	return out
}

// Catchup fetches one chunk through the running fabric's catch-up
// surface (the in-process analogue of netrun.FetchCatchup against
// CatchupAddr). ok reports whether a fabric is serving — a stopped or
// failed engine no longer is, exactly like a dead TCP listener.
func (e *Engine) Catchup(from uint64, max int) ([][]byte, bool) {
	if e.fab == nil {
		return nil, false
	}
	e.mu.Lock()
	live := !e.closed && e.failed == nil
	e.mu.Unlock()
	if !live {
		return nil, false
	}
	return e.fab.Catchup(from, max)
}

// Value derives instance seq's proposal digest from the batch: the first
// StringBits bits of SHA-256 over (seed, seq, payloads). All correct
// runtimes derive the same value for the same inputs, which is what makes
// committed logs comparable across transports (the shared cross-runtime
// derivation — derive.go).
func (e *Engine) Value(seq uint64, payloads [][]byte) bitstring.String {
	return BatchValue(e.cfg.Seed, e.params.StringBits, seq, payloads)
}

// Append opens the next instance with the given batch, blocking while the
// pipeline is at Depth. It returns the assigned sequence number; the
// commit is observed with WaitSeq or OnCommit.
func (e *Engine) Append(ctx context.Context, payloads [][]byte) (uint64, error) {
	select {
	case e.slots <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-e.failCh:
		return 0, e.runError()
	case <-e.done:
		return 0, e.runError()
	}

	e.mu.Lock()
	if err := e.appendBlocked(); err != nil {
		e.mu.Unlock()
		<-e.slots
		return 0, err
	}
	seq := e.nextSeq
	e.nextSeq++
	if seq > MaxSeq {
		e.failLocked(fmt.Errorf("pipeline: instance tag overflow at seq %d", seq))
		e.mu.Unlock()
		<-e.slots
		return 0, e.runError()
	}
	inst := e.getInstance()
	inst.seq = seq
	inst.proposed = e.Value(seq, payloads)
	inst.payloads = payloads
	inst.opened = time.Now()
	inst.committed = make(chan struct{})
	e.open[seq] = inst
	e.mu.Unlock()

	e.openInstance(seq, inst.proposed)
	return seq, nil
}

// getInstance returns a recycled instance shell or builds a fresh one.
// Callers hold e.mu.
func (e *Engine) getInstance() *instance {
	if n := len(e.instPool); n > 0 {
		inst := e.instPool[n-1]
		e.instPool = e.instPool[:n-1]
		return inst
	}
	return &instance{values: make(map[bitstring.MapKey]int, 1)}
}

// putInstance recycles a committed instance shell. Callers hold e.mu and
// guarantee the instance is no longer reachable through e.open — late
// deciders find nil there and waiters resolve through e.entries, so the
// only outstanding references are commit channels captured under the lock
// before the recycle.
func (e *Engine) putInstance(inst *instance) {
	clear(inst.values)
	*inst = instance{values: inst.values}
	e.instPool = append(e.instPool, inst)
}

// appendBlocked reports why new instances cannot open, if they cannot.
func (e *Engine) appendBlocked() error {
	if e.failed != nil {
		return e.failed
	}
	if e.closed {
		return ErrClosed
	}
	return nil
}

// openInstance distributes MsgOpen to every node with the deterministic
// per-node initial beliefs of instance seq (the shared cross-runtime
// derivation — derive.go).
func (e *Engine) openInstance(seq uint64, value bitstring.String) {
	for id, msg := range OpenMsgs(e.cfg.Seed, e.params.StringBits, e.cfg.KnowFrac, e.corrupt, seq, 0, value) {
		if msg == nil {
			// Corrupt nodes ignore MsgOpen; skip the injection entirely.
			continue
		}
		e.inject(simnet.Envelope{From: id, To: id, Msg: msg})
	}
}

// onDecision is the MuxNode callback: record one node's decision and kick
// the commit watcher. Decisions arriving after the instance committed
// (possible below CommitFraction 1) are dropped.
func (e *Engine) onDecision(node int, seq uint64, value bitstring.String, support, need int) {
	e.mu.Lock()
	inst := e.open[seq]
	if inst != nil {
		inst.deciders++
		k := value.MapKey()
		inst.values[k]++
		if inst.values[k] > inst.valueCount {
			inst.valueCount = inst.values[k]
			inst.value = value
		}
		if support < need {
			inst.certDeficits++
		}
	}
	e.mu.Unlock()
	if inst != nil {
		e.kick()
	}
}

// kick wakes the commit watcher without blocking.
func (e *Engine) kick() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// watch is the commit goroutine: it advances the in-order commit frontier
// on every decision signal and polls for instance timeouts.
func (e *Engine) watch() {
	defer e.watcher.Done()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-e.wake:
		case <-ticker.C:
		}
		e.advance()
	}
}

// advance commits every head instance whose decision threshold is met, in
// sequence order, and fails the log on a head timeout.
func (e *Engine) advance() {
	for {
		e.mu.Lock()
		inst := e.open[e.commitSeq]
		if inst == nil || e.failed != nil {
			e.mu.Unlock()
			return
		}
		if inst.deciders < e.need {
			if time.Since(inst.opened) > e.cfg.InstanceTimeout {
				e.failLocked(fmt.Errorf("pipeline: instance %d: %d of %d required deciders after %v",
					inst.seq, inst.deciders, e.need, e.cfg.InstanceTimeout))
			}
			e.mu.Unlock()
			return
		}
		entry := Entry{
			Seq:             inst.seq,
			Value:           inst.value,
			Payloads:        inst.payloads,
			Deciders:        inst.deciders,
			Correct:         e.correct,
			DistinctValues:  len(inst.values),
			CertDeficits:    inst.certDeficits,
			MatchesProposal: inst.value.Equal(inst.proposed),
			Opened:          inst.opened,
			Committed:       time.Now(),
		}
		e.mu.Unlock()

		// Persist before surfacing: the entry reaches the store — durably —
		// before anything observable (WaitSeq, OnCommit, Entries) can see
		// it. The instance stays in e.open across the unlocked append, so a
		// concurrent failLocked (Abort, timeout) still finds and releases
		// it; late decisions mutate counters the snapshot above no longer
		// reads.
		if st := e.cfg.Store; st != nil {
			if err := st.Append(recordOf(entry)); err != nil {
				e.mu.Lock()
				e.failLocked(fmt.Errorf("pipeline: persist seq %d: %w", entry.Seq, err))
				e.mu.Unlock()
				return
			}
		}

		e.mu.Lock()
		if e.failed != nil {
			// failLocked ran during the persist: it already closed every
			// open instance's commit channel (ours included) and cleared
			// e.open. The entry is durable but never surfaced — recovery
			// replays it, which is exactly what the durability oracle's
			// prefix-extension rule permits.
			e.mu.Unlock()
			return
		}
		delete(e.open, e.commitSeq)
		e.commitSeq++
		e.entries = append(e.entries, entry)
		e.mu.Unlock()

		close(inst.committed)
		e.mu.Lock()
		e.putInstance(inst)
		e.mu.Unlock()
		<-e.slots // free the pipeline slot
		var closeMsg simnet.Message = MsgClose{Seq: entry.Seq} // boxed once, not per node
		for id := 0; id < e.cfg.N; id++ {
			if !e.corrupt[id] {
				e.inject(simnet.Envelope{From: id, To: id, Msg: closeMsg})
			}
		}
		if e.cfg.OnCommit != nil {
			e.cfg.OnCommit(entry)
		}
	}
}

// failLocked records the first fatal error and releases every waiter.
// Callers hold e.mu.
func (e *Engine) failLocked(err error) {
	if e.failed != nil {
		return
	}
	e.failed = err
	close(e.failCh)
	for _, inst := range e.open {
		close(inst.committed)
	}
	e.open = make(map[uint64]*instance)
}

// runError returns the recorded fatal error, or a generic closed error.
func (e *Engine) runError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.failed != nil {
		return e.failed
	}
	return ErrClosed
}

// WaitSeq blocks until instance seq commits and returns its entry.
func (e *Engine) WaitSeq(ctx context.Context, seq uint64) (Entry, error) {
	e.mu.Lock()
	if seq < e.commitSeq {
		entry := e.entries[seq]
		e.mu.Unlock()
		return entry, nil
	}
	if err := e.failed; err != nil {
		e.mu.Unlock()
		return Entry{}, err
	}
	inst := e.open[seq]
	next := e.nextSeq
	// Capture the channel under the lock: once the instance commits its
	// shell is recycled (putInstance), so inst fields must not be read
	// afterwards.
	var committed chan struct{}
	if inst != nil {
		committed = inst.committed
	}
	e.mu.Unlock()
	if inst == nil {
		return Entry{}, fmt.Errorf("pipeline: seq %d not open (next append is %d)", seq, next)
	}
	select {
	case <-committed:
	case <-ctx.Done():
		return Entry{}, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq < e.commitSeq {
		return e.entries[seq], nil
	}
	if e.failed != nil {
		return Entry{}, e.failed
	}
	return Entry{}, fmt.Errorf("pipeline: seq %d released without commit", seq)
}

// CommittedSeq returns instance seq's entry if it has already committed.
func (e *Engine) CommittedSeq(seq uint64) (Entry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq < e.commitSeq {
		return e.entries[seq], true
	}
	return Entry{}, false
}

// Failed returns a channel closed on the log's first fatal error (an
// instance timeout, an abort). Waiters holding per-payload state use it
// to resolve promptly instead of discovering the failure at Close.
func (e *Engine) Failed() <-chan struct{} { return e.failCh }

// Entries snapshots the committed log in sequence order.
func (e *Engine) Entries() []Entry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Entry(nil), e.entries...)
}

// Err returns the log's fatal error, if any.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failed
}

// Close drains the log — no new Appends, every open instance gets until
// the instance timeout to commit — then tears the transport down. It
// returns the log's fatal error, if any.
func (e *Engine) Close() error {
	e.mu.Lock()
	e.closed = true
	// Capture channels, not instances: a committed shell is recycled.
	waiting := make([]chan struct{}, 0, len(e.open))
	for _, inst := range e.open {
		waiting = append(waiting, inst.committed)
	}
	e.mu.Unlock()
	deadline := time.NewTimer(e.cfg.InstanceTimeout + time.Second)
	defer deadline.Stop()
	for _, committed := range waiting {
		select {
		case <-committed:
		case <-deadline.C:
			e.mu.Lock()
			e.failLocked(fmt.Errorf("pipeline: close: open instances did not drain in %v", e.cfg.InstanceTimeout))
			e.mu.Unlock()
		}
	}
	e.stop()
	return e.Err()
}

// Abort tears the transport down immediately, abandoning open instances
// (the context-cancellation path).
func (e *Engine) Abort() {
	e.mu.Lock()
	e.failLocked(context.Canceled)
	e.mu.Unlock()
	e.stop()
}

// stop shuts the watcher and the transport down, once.
func (e *Engine) stop() {
	e.teardown.Do(func() {
		close(e.done)
		e.watcher.Wait()
		if e.fab != nil {
			e.fab.Stop()
		}
		if e.cluster != nil {
			e.cluster.Close()
		}
	})
}

// Metrics returns the transport's merged per-node metrics. Call it only
// after Close or Abort.
func (e *Engine) Metrics() *simnet.Metrics {
	if e.cluster != nil {
		return e.cluster.Metrics()
	}
	if e.fab != nil {
		return e.fab.Metrics()
	}
	return nil
}

// NetStats snapshots the TCP transport's connection-supervision counters.
// Unlike Metrics it is safe mid-run (the counters are atomic); the zero
// value is returned on the fabric runtime, which has no connections.
func (e *Engine) NetStats() simnet.NetStats {
	if e.cluster != nil {
		return e.cluster.NetStats()
	}
	return simnet.NetStats{}
}
