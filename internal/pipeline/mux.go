// Package pipeline chains agreement instances into a decision log: a
// sequence of AER executions multiplexed over one long-lived transport
// (the loopback Fabric or the netrun TCP cluster), with batched values,
// bounded instance pipelining and in-order commits.
//
// The paper's protocol decides a single value; a replicated log runs it as
// a service. This package supplies the machinery the one-shot runners do
// not have: per-node multiplexers (MuxNode) that demultiplex
// instance-tagged traffic (simnet.InstMsg) onto per-instance core.Node
// children recycled through a pool (core.Node.Reset), and an Engine that
// opens instances as client batches arrive, detects decisions, commits
// instances strictly in sequence order and retires them.
//
// Determinism contract: the committed log — the sequence of (Seq, Value)
// pairs — is a pure function of (seed, batch contents) whenever the value
// digest decides every instance (the lossless-fault envelope): corruption,
// per-instance knowledge and junk derive from the seed alone, and a
// correct node's decision success depends only on which poll-list members
// are correct, not on delivery order. The cross-runtime conformance test
// locks this: the same seed and workload produce byte-identical committed
// logs on the in-process Fabric and over real TCP sockets.
package pipeline

import (
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// maxPendingPerInstance bounds the early-arrival queue of one instance: a
// correct engine opens every instance on every node, so queued messages
// are a short-lived race artifact; an unbounded queue would hand a
// flooding adversary a memory lever.
const maxPendingPerInstance = 1 << 14

// Instance tags pack (seq, attempt) into the u32 envelope header: the low
// 24 bits carry the sequence number, the high 8 bits the attempt. Tagging
// traffic with the attempt is what lets a reopened instance re-run
// cleanly across daemons whose reopens are not synchronized: a node still
// on the old attempt buffers the new attempt's traffic (instead of
// feeding it to a child whose flood-dedup maps would silently eat it) and
// replays it when its own reopen lands, while stale old-attempt traffic
// is dropped.
const (
	tagSeqBits = 24
	// MaxSeq is the largest instance sequence number the tag can carry —
	// the decision log's capacity.
	MaxSeq = 1<<tagSeqBits - 1
	// MaxAttempt is the largest instance attempt; reproposals stop bumping
	// there (the leader's instance timeout is the backstop beyond it).
	MaxAttempt = 1<<(32-tagSeqBits) - 1
)

// PackTag builds the envelope instance tag for (seq, attempt).
func PackTag(seq uint64, attempt uint32) uint32 {
	return uint32(seq&MaxSeq) | attempt<<tagSeqBits
}

// MsgOpen is the engine→node control message opening instance Seq on the
// receiving node with the given initial candidate (the zero String for a
// node that starts with no candidate). It is injected locally into each
// node's mailbox and never crosses the wire, so it has no codec in
// internal/wire.
type MsgOpen struct {
	Seq uint64
	// Attempt is the instance's run counter. Attempt 0 is the normal open;
	// a higher attempt re-opens a stalled, undecided instance with a fresh
	// attempt-keyed RNG (new poll labels — the randomized protocol's
	// per-run success draw is re-rolled). A decided child ignores reopens.
	Attempt uint32
	Initial bitstring.String
}

// WireSize returns the metered payload size.
func (m MsgOpen) WireSize() int { return 12 + m.Initial.WireSize() }

// Kind returns the metric kind tag.
func (m MsgOpen) Kind() string { return "log-open" }

// MsgClose retires instance Seq on the receiving node: its child returns
// to the reuse pool and later traffic for the instance is dropped. Like
// MsgOpen it is local-only.
type MsgClose struct {
	Seq uint64
}

// WireSize returns the metered payload size.
func (m MsgClose) WireSize() int { return 8 }

// Kind returns the metric kind tag.
func (m MsgClose) Kind() string { return "log-close" }

// DecisionFunc receives one node's decision for one instance, with the
// certificate re-derived by the deciding node's own delivery goroutine
// (the only context in which reading core.Node protocol state is
// race-free).
type DecisionFunc func(node int, seq uint64, value bitstring.String, support, need int)

// pendingEnv is a message that arrived for an instance the node has not
// opened yet (the open control message races protocol traffic from nodes
// that opened earlier).
type pendingEnv struct {
	from    int
	attempt uint32
	msg     simnet.Message
}

// MuxNode is one physical node of the decision log: a simnet.Node that
// demultiplexes instance-tagged traffic onto per-instance core.Node
// children. All state is owned by the node's delivery goroutine (runners
// never activate one node concurrently), so MuxNode takes no locks;
// decisions leave the goroutine only through the DecisionFunc callback.
type MuxNode struct {
	id      int
	corrupt bool
	params  core.Params
	smp     *core.Samplers
	seed    uint64
	// disablePool forces NewNode per instance instead of Reset on a pooled
	// child — the naive-rebuild arm of BenchmarkLogInstanceReuse.
	disablePool bool
	onDecision  DecisionFunc

	children map[uint64]*muxChild
	pool     []*core.Node
	pending  map[uint64][]pendingEnv
	// resmp caches attempt-salted samplers (see samplersFor); attempt 0
	// always uses the shared base samplers.
	resmp map[uint32]*core.Samplers
	// retired is the retirement watermark: instances below it are closed
	// and their traffic is dropped. Closes arrive in commit order, so a
	// single watermark suffices.
	retired uint64

	// ictx is the reusable instance-tagging Context wrapper (one per node,
	// re-pointed per delivery, so the hot path allocates nothing).
	ictx instCtx
}

type muxChild struct {
	node    *core.Node
	decided bool
	attempt uint32
}

// NewMuxNode builds the multiplexer for node id. Corrupt nodes are
// fail-silent for the whole log (the log's Byzantine model; richer
// per-instance adversaries stay with the one-shot runners).
func NewMuxNode(id int, corrupt bool, params core.Params, smp *core.Samplers, seed uint64, onDecision DecisionFunc) *MuxNode {
	return &MuxNode{
		id:         id,
		corrupt:    corrupt,
		params:     params,
		smp:        smp,
		seed:       seed,
		onDecision: onDecision,
		children:   make(map[uint64]*muxChild),
		pending:    make(map[uint64][]pendingEnv),
	}
}

// Init implements simnet.Node. Instances open on demand via MsgOpen, so
// there is nothing to do at fabric start.
func (m *MuxNode) Init(simnet.Context) {}

// Deliver implements simnet.Node: control messages manage the instance
// table; instance-tagged messages arriving as InstMsg wrappers (runners
// without envelope-header tags) route to their child.
func (m *MuxNode) Deliver(ctx simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch t := msg.(type) {
	case MsgOpen:
		m.open(ctx, t)
	case MsgClose:
		m.close(t.Seq)
	case simnet.InstMsg:
		m.route(ctx, from, t.Inner, t.Inst)
	}
}

// DeliverTagged implements simnet.TaggedNode: the Fabric hands over the
// instance tag from the envelope header, wrapper-free.
func (m *MuxNode) DeliverTagged(ctx simnet.Context, from simnet.NodeID, msg simnet.Message, inst uint32) {
	m.route(ctx, from, msg, inst)
}

// open starts instance t.Seq on this node: a pooled child is rewound via
// Reset, or a fresh one is built, and its Init runs under the
// instance-tagging context. Early-arrived traffic replays in arrival
// order. A reopen (higher attempt) discards the child — decided or not —
// and rebuilds it under an attempt-keyed RNG: the system-layer retry for
// a run of the randomized protocol that left nodes wedged. Every child
// must re-run, not just the wedged ones, because the protocol's per-(x,s)
// flood caps make a node that already forwarded or answered a requester
// ignore that requester's fresh poll. A decision already published
// survives in the decision log (the publish is one-shot and the log
// dedups per node), and every attempt proposes the same derived value, so
// a rebuilt decider can only re-decide identically.
func (m *MuxNode) open(ctx simnet.Context, t MsgOpen) {
	if m.corrupt || t.Seq < m.retired {
		return
	}
	if prev := m.children[t.Seq]; prev != nil {
		if t.Attempt <= prev.attempt {
			return
		}
		delete(m.children, t.Seq)
		if !m.disablePool {
			m.pool = append(m.pool, prev.node)
		}
	}
	key := prng.Hash2(t.Seq, uint64(m.id))
	smp := m.smp
	if t.Attempt > 0 {
		// Attempt 0 keeps the original derivation so single-process engine
		// runs replay byte-identically; retries draw a fresh label stream
		// AND fresh quorum geometry. Re-rolling only the labels is not
		// enough: the pull quorums H(s, x) are a pure function of (s, x),
		// and the proposal digest is identical every attempt, so a run
		// wedged because dark nodes hold a quorum's majority stays wedged
		// under every label draw. Salting the sampler seed by attempt makes
		// retries independent draws of the quorum geometry while the decided
		// value — the safety anchor — stays the same.
		key = prng.Hash3(t.Seq, uint64(m.id), uint64(t.Attempt))
		smp = m.samplersFor(t.Attempt)
	}
	rng := prng.New(prng.DeriveKey(m.seed, "log/node", key))
	var node *core.Node
	if n := len(m.pool); n > 0 && !m.disablePool {
		node = m.pool[n-1]
		m.pool = m.pool[:n-1]
		node.Reset(t.Initial, smp, rng)
	} else {
		node = core.NewNode(m.id, t.Initial, m.params, smp, rng)
	}
	child := &muxChild{node: node, attempt: t.Attempt}
	m.children[t.Seq] = child
	ictx := m.tag(ctx, PackTag(t.Seq, t.Attempt))
	node.Init(ictx)
	if queued := m.pending[t.Seq]; queued != nil {
		delete(m.pending, t.Seq)
		// Replay only this attempt's traffic; older attempts are dead runs,
		// newer ones wait for their own reopen to land here.
		var ahead []pendingEnv
		for _, p := range queued {
			switch {
			case p.attempt == t.Attempt:
				node.Deliver(ictx, p.from, p.msg)
			case p.attempt > t.Attempt:
				ahead = append(ahead, p)
			}
		}
		if ahead != nil {
			m.pending[t.Seq] = ahead
		}
	}
	m.checkDecided(child, t.Seq)
}

// samplersFor returns (building and caching on first use) the samplers of
// reopen attempt k: the base geometry with an attempt-salted sampler seed.
// Every daemon derives the same salt from shared inputs, so the cluster
// agrees on each attempt's quorums. The cache is bounded by MaxAttempt and
// shared across instances — the salt is per attempt, not per (seq,
// attempt), because distinct sequences already decouple through the string
// hash inside the samplers.
func (m *MuxNode) samplersFor(attempt uint32) *core.Samplers {
	if s := m.resmp[attempt]; s != nil {
		return s
	}
	if m.resmp == nil {
		m.resmp = make(map[uint32]*core.Samplers)
	}
	p := m.params
	p.SamplerSeed = prng.Hash2(p.SamplerSeed, uint64(attempt))
	s := core.NewSamplers(p)
	m.resmp[attempt] = s
	return s
}

// close retires instance seq: the child returns to the pool and the
// watermark advances so stragglers are dropped.
func (m *MuxNode) close(seq uint64) {
	if child, ok := m.children[seq]; ok {
		delete(m.children, seq)
		if !m.disablePool {
			m.pool = append(m.pool, child.node)
		}
	}
	delete(m.pending, seq)
	if seq+1 > m.retired {
		m.retired = seq + 1
	}
}

// route delivers one instance-tagged message, queueing it when the
// instance (or the message's attempt of it) is not open here yet and
// dropping it when the instance is retired or the attempt is stale.
func (m *MuxNode) route(ctx simnet.Context, from int, inner simnet.Message, inst uint32) {
	seq := uint64(inst & MaxSeq)
	attempt := inst >> tagSeqBits
	if m.corrupt || seq < m.retired {
		return
	}
	child, ok := m.children[seq]
	if ok && attempt < child.attempt {
		return
	}
	if !ok || attempt > child.attempt {
		if q := m.pending[seq]; len(q) < maxPendingPerInstance {
			// cloneMessage: the queued message outlives this delivery, and
			// its strings may be zero-copy views of a transport buffer
			// (DESIGN.md §10).
			m.pending[seq] = append(q, pendingEnv{from: from, attempt: attempt, msg: cloneMessage(inner)})
		}
		return
	}
	child.node.Deliver(m.tag(ctx, inst), from, inner)
	m.checkDecided(child, seq)
}

// cloneMessage deep-copies the bit strings of a queued protocol message so
// it owns its data past the delivery that carried it. The mux children are
// core nodes, so only the core message set needs handling; unknown types
// pass through (they carry no transport views the mux would retain).
func cloneMessage(m simnet.Message) simnet.Message {
	switch t := m.(type) {
	case core.MsgPush:
		t.S = t.S.Clone()
		return t
	case core.MsgPoll:
		t.S = t.S.Clone()
		return t
	case core.MsgPull:
		t.S = t.S.Clone()
		return t
	case core.MsgFw1:
		t.S = t.S.Clone()
		return t
	case core.MsgFw2:
		t.S = t.S.Clone()
		return t
	case core.MsgAnswer:
		t.S = t.S.Clone()
		return t
	default:
		return m
	}
}

// checkDecided publishes a child's decision exactly once, with the quorum
// certificate re-derived here — on the delivery goroutine that owns the
// child's state — so the engine never reads racy protocol internals.
func (m *MuxNode) checkDecided(child *muxChild, seq uint64) {
	if child.decided || child.node.DecidedAt() < 0 {
		return
	}
	child.decided = true
	value, _ := child.node.Decided()
	support, need, _ := child.node.DecisionCert()
	if m.onDecision != nil {
		m.onDecision(m.id, seq, value, support, need)
	}
}

// tag re-points the reusable instance context at the current delivery;
// inst is the packed (seq, attempt) tag stamped on outgoing sends.
func (m *MuxNode) tag(ctx simnet.Context, inst uint32) *instCtx {
	m.ictx.inner = ctx
	m.ictx.tagger, _ = ctx.(simnet.TaggedSender)
	m.ictx.inst = inst
	return &m.ictx
}

// instCtx wraps a runner Context so every send is instance-tagged: through
// the envelope header when the runner supports it (the Fabric — no
// per-send wrapper allocation), through an InstMsg wrapper otherwise.
type instCtx struct {
	inner  simnet.Context
	tagger simnet.TaggedSender
	inst   uint32
}

// Now returns the underlying runner clock.
func (c *instCtx) Now() int { return c.inner.Now() }

// Send stamps the instance tag onto the outgoing message.
func (c *instCtx) Send(to simnet.NodeID, msg simnet.Message) {
	if c.tagger != nil {
		c.tagger.SendTagged(to, msg, c.inst)
		return
	}
	c.inner.Send(to, simnet.InstMsg{Inst: c.inst, Inner: msg})
}
