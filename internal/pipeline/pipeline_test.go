package pipeline

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/fastba/fastba/internal/simnet"
)

// appendAll feeds count deterministic single-payload batches and waits for
// every commit.
func appendAll(t *testing.T, e *Engine, count int) []Entry {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var last uint64
	for i := 0; i < count; i++ {
		seq, err := e.Append(ctx, [][]byte{[]byte(fmt.Sprintf("payload-%d", i))})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		last = seq
	}
	if _, err := e.WaitSeq(ctx, last); err != nil {
		t.Fatalf("wait seq %d: %v", last, err)
	}
	return e.Entries()
}

func checkLog(t *testing.T, entries []Entry, want int) {
	t.Helper()
	if len(entries) != want {
		t.Fatalf("committed %d entries, want %d", len(entries), want)
	}
	for i, entry := range entries {
		if entry.Seq != uint64(i) {
			t.Errorf("entry %d has seq %d: the log has a gap", i, entry.Seq)
		}
		if entry.DistinctValues != 1 {
			t.Errorf("seq %d: %d distinct decided values", entry.Seq, entry.DistinctValues)
		}
		if entry.CertDeficits != 0 {
			t.Errorf("seq %d: %d cert deficits", entry.Seq, entry.CertDeficits)
		}
		if !entry.MatchesProposal {
			t.Errorf("seq %d: decided value differs from the batch digest", entry.Seq)
		}
	}
}

func TestEngineFabricLog(t *testing.T) {
	e, err := New(Config{N: 16, Seed: 1, KnowFrac: 1, Depth: 2, InstanceTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	e.StartFabric()
	entries := appendAll(t, e, 6)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	checkLog(t, entries, 6)
}

func TestEngineTCPLog(t *testing.T) {
	e, err := New(Config{N: 16, Seed: 1, KnowFrac: 1, Depth: 2, InstanceTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartTCP(); err != nil {
		t.Fatal(err)
	}
	entries := appendAll(t, e, 4)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	checkLog(t, entries, 4)
}

// TestEngineCorruptPopulation: the log commits with fail-silent Byzantine
// nodes present, and the deciders are exactly the correct nodes.
func TestEngineCorruptPopulation(t *testing.T) {
	e, err := New(Config{N: 24, Seed: 3, CorruptFrac: 0.1, KnowFrac: 1, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.StartFabric()
	entries := appendAll(t, e, 4)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	checkLog(t, entries, 4)
	for _, entry := range entries {
		if entry.Deciders != e.Correct() {
			t.Errorf("seq %d: %d deciders of %d correct", entry.Seq, entry.Deciders, e.Correct())
		}
	}
}

// TestEngineLosslessFaults: delay/duplication on the send path must not
// break commits, values or certificates.
func TestEngineLosslessFaults(t *testing.T) {
	plan := simnet.FaultPlan{Seed: 11, DupProb: 0.2, DelayProb: 0.3, MaxDelay: 3}
	e, err := New(Config{N: 16, Seed: 5, KnowFrac: 1, Depth: 3, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	e.StartFabric()
	entries := appendAll(t, e, 5)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	checkLog(t, entries, 5)
}

// TestEngineAbort: aborting mid-run releases blocked waiters promptly with
// the cancellation error.
func TestEngineAbort(t *testing.T) {
	e, err := New(Config{N: 16, Seed: 1, KnowFrac: 1, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.StartFabric()
	ctx := context.Background()
	seq, err := e.Append(ctx, [][]byte{[]byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitSeq(ctx, seq); err != nil {
		t.Fatal(err)
	}
	e.Abort()
	if _, err := e.Append(ctx, [][]byte{[]byte("y")}); err == nil {
		t.Fatal("append after abort succeeded")
	}
}
