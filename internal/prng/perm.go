package prng

// Perm is a keyed pseudorandom permutation (PRP) on the domain [0, n).
//
// It is built as a 4-round Feistel network over [0, 2^k) with 2^k >= n,
// restricted to [0, n) by cycle walking: values that land outside the domain
// are re-encrypted until they fall inside. Because the Feistel network is a
// bijection on [0, 2^k), cycle walking yields a bijection on [0, n); the
// expected number of walks is below 4 since 2^k < 4n.
//
// The samplers in internal/sampler use Perm to realize quorum maps with
// *exactly* d quorum memberships per node (the "no overloaded node"
// condition of Lemma 1 holds deterministically) while keeping quorum
// composition pseudorandom.
//
// Perm is immutable after construction and safe for concurrent use.
type Perm struct {
	n        uint64
	halfBits uint
	halfMask uint64
	keys     [4]uint64
}

// feistelRounds is the number of Feistel rounds. Four rounds of a strong
// round function give a strong PRP (Luby–Rackoff); we only need statistical
// quality, not cryptographic strength.
const feistelRounds = 4

// NewPerm returns a PRP on [0, n) keyed by key. It panics if n <= 0 (domain
// construction is a programming error, not a runtime condition).
func NewPerm(n int, key uint64) *Perm {
	p := MakePerm(n, key)
	return &p
}

// MakePerm is NewPerm by value: callers that build a Perm per query (the
// poll-list sampler, once per delivery on the protocol hot path) keep it
// on the stack instead of allocating.
func MakePerm(n int, key uint64) Perm {
	if n <= 0 {
		panic("prng: NewPerm with non-positive domain")
	}
	// Find the smallest even bit-width 2*h with 2^(2h) >= n so the Feistel
	// halves are balanced.
	var h uint = 1
	for uint64(1)<<(2*h) < uint64(n) {
		h++
	}
	p := Perm{
		n:        uint64(n),
		halfBits: h,
		halfMask: (uint64(1) << h) - 1,
	}
	for i := range p.keys {
		p.keys[i] = Hash2(key, uint64(i)+0x51ed2701)
	}
	return p
}

// N returns the domain size.
func (p *Perm) N() int { return int(p.n) }

// Apply maps x through the permutation. It panics if x is outside [0, n).
func (p *Perm) Apply(x int) int {
	if x < 0 || uint64(x) >= p.n {
		panic("prng: Perm.Apply out of domain")
	}
	v := uint64(x)
	for {
		v = p.encryptOnce(v)
		if v < p.n {
			return int(v)
		}
	}
}

// Invert maps y back through the permutation: Invert(Apply(x)) == x.
// It panics if y is outside [0, n).
func (p *Perm) Invert(y int) int {
	if y < 0 || uint64(y) >= p.n {
		panic("prng: Perm.Invert out of domain")
	}
	v := uint64(y)
	for {
		v = p.decryptOnce(v)
		if v < p.n {
			return int(v)
		}
	}
}

func (p *Perm) encryptOnce(v uint64) uint64 {
	l := v >> p.halfBits
	r := v & p.halfMask
	for i := 0; i < feistelRounds; i++ {
		l, r = r, l^(Mix64(r^p.keys[i])&p.halfMask)
	}
	return l<<p.halfBits | r
}

func (p *Perm) decryptOnce(v uint64) uint64 {
	l := v >> p.halfBits
	r := v & p.halfMask
	for i := feistelRounds - 1; i >= 0; i-- {
		l, r = r^(Mix64(l^p.keys[i])&p.halfMask), l
	}
	return l<<p.halfBits | r
}
