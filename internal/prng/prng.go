// Package prng provides the deterministic randomness substrate used by the
// whole simulation: a fast 64-bit mixer (splitmix64), a general-purpose
// xoshiro256** generator, keyed derivation of independent sub-streams, and
// keyed pseudorandom permutations on [0, n) built from a cycle-walking
// Feistel network.
//
// Everything in this package is deterministic given the seed, allocation
// free on the hot paths, and safe to copy by value unless documented
// otherwise. The simulation never uses the global math/rand state so that
// runs are reproducible bit-for-bit.
package prng

// Mix64 is the splitmix64 finalizer. It is a bijection on uint64 with good
// avalanche behaviour and is the basic building block for key derivation and
// for the Feistel round function.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes two words into one. It is not cryptographic; it is a cheap,
// well-distributed combiner for sampler keys.
func Hash2(a, b uint64) uint64 {
	return Mix64(a ^ Mix64(b))
}

// Hash3 mixes three words into one.
func Hash3(a, b, c uint64) uint64 {
	return Mix64(Hash2(a, b) ^ Mix64(c))
}

// Hash4 mixes four words into one.
func Hash4(a, b, c, d uint64) uint64 {
	return Mix64(Hash3(a, b, c) ^ Mix64(d))
}

// Source is a xoshiro256** PRNG. The zero value is not usable; construct it
// with New. Source is not safe for concurrent use; each node of the
// simulation owns its private Source (the paper's "private random number
// generator").
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via splitmix64, following the
// reference xoshiro initialization.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed resets the generator state as if freshly created with New(seed).
func (s *Source) Reseed(seed uint64) {
	// splitmix64 sequence, per the xoshiro authors' recommendation.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1 // xoshiro must not be seeded with all zeros
	}
}

// Uint64 returns the next 64 bits of the stream.
func (s *Source) Uint64() uint64 {
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand. Uses Lemire's nearly-divisionless bounded sampling.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Perm returns a uniform permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child Source keyed by tag. Forking the same
// Source with the same tag twice yields identical children; distinct tags
// yield (pseudo-)independent streams. Fork does not advance the parent.
func (s *Source) Fork(tag uint64) *Source {
	return New(Hash3(s.s0^s.s2, s.s1^s.s3, tag))
}

// DeriveKey produces a sub-key for the given purpose tag and index from a
// master seed. It is the canonical way the simulation splits one master seed
// into independent sampler, adversary and per-node seeds.
func DeriveKey(master uint64, purpose string, index uint64) uint64 {
	h := master
	for _, b := range []byte(purpose) {
		h = Mix64(h ^ uint64(b))
	}
	return Hash2(h, index)
}

// mul64 returns the 128-bit product of a and b as (hi, lo), without
// importing math/bits (kept local so the package stays dependency-light and
// inlinable).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}
