package prng

import (
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Mix64 must be injective; sample a window and check for collisions.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, h)
		}
		seen[h] = i
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %#x != %#x", i, av, bv)
		}
	}
}

func TestSourceSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical samples out of 1000", same)
	}
}

func TestSourceZeroSeed(t *testing.T) {
	s := New(0)
	v := s.Uint64()
	if v == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck all-zero stream")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared style sanity check over 8 buckets.
	s := New(99)
	const buckets, samples = 8, 80000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[s.Intn(buckets)]++
	}
	want := samples / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d count %d deviates more than 10%% from %d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermFisherYates(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	s := New(3)
	c1 := s.Fork(1)
	c2 := s.Fork(2)
	c1again := s.Fork(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Fork with same tag is not deterministic")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("Fork with different tags produced identical streams")
	}
}

func TestDeriveKeyDistinct(t *testing.T) {
	keys := map[uint64]string{}
	add := func(k uint64, desc string) {
		if prev, ok := keys[k]; ok {
			t.Fatalf("key collision between %s and %s", prev, desc)
		}
		keys[k] = desc
	}
	for i := uint64(0); i < 100; i++ {
		add(DeriveKey(1, "sampler/I", i), "I")
		add(DeriveKey(1, "sampler/H", i), "H")
		add(DeriveKey(2, "sampler/I", i), "I'")
	}
}

func TestPermIsBijection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 17, 100, 1000, 4099} {
		p := NewPerm(n, 0xdead)
		seen := make([]bool, n)
		for x := 0; x < n; x++ {
			y := p.Apply(x)
			if y < 0 || y >= n {
				t.Fatalf("n=%d: Apply(%d) = %d out of domain", n, x, y)
			}
			if seen[y] {
				t.Fatalf("n=%d: Apply not injective at %d", n, x)
			}
			seen[y] = true
			if back := p.Invert(y); back != x {
				t.Fatalf("n=%d: Invert(Apply(%d)) = %d", n, x, back)
			}
		}
	}
}

func TestPermKeySensitivity(t *testing.T) {
	const n = 512
	p1 := NewPerm(n, 1)
	p2 := NewPerm(n, 2)
	same := 0
	for x := 0; x < n; x++ {
		if p1.Apply(x) == p2.Apply(x) {
			same++
		}
	}
	// Two random permutations agree on ~1 point in expectation.
	if same > 10 {
		t.Fatalf("differently keyed permutations agree on %d/%d points", same, n)
	}
}

func TestPermQuickInverse(t *testing.T) {
	p := NewPerm(10007, 0xfeed)
	f := func(x uint16) bool {
		v := int(x) % 10007
		return p.Invert(p.Apply(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermApplyPanicsOutOfDomain(t *testing.T) {
	p := NewPerm(10, 1)
	for _, bad := range []int{-1, 10, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Apply(%d) did not panic", bad)
				}
			}()
			p.Apply(bad)
		}()
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{0xdeadbeef, 0x12345678, 0, 0xdeadbeef * 0x12345678},
	}
	for _, tt := range tests {
		hi, lo := mul64(tt.a, tt.b)
		if hi != tt.hi || lo != tt.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", tt.a, tt.b, hi, lo, tt.hi, tt.lo)
		}
	}
}

func BenchmarkMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Mix64(uint64(i))
	}
	_ = acc
}

func BenchmarkSourceUint64(b *testing.B) {
	s := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= s.Uint64()
	}
	_ = acc
}

func BenchmarkPermApply(b *testing.B) {
	p := NewPerm(1<<20, 42)
	var acc int
	for i := 0; i < b.N; i++ {
		acc ^= p.Apply(i & (1<<20 - 1))
	}
	_ = acc
}
