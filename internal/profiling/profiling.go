// Package profiling is the shared -cpuprofile/-memprofile/-trace plumbing
// of the CLI harnesses (cmd/loadba, cmd/benchtab). It exists so every
// harness exposes the same three flags with the same semantics and the
// same shutdown ordering, documented once in README.md ("Profiling").
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the three profiling destinations. Empty strings disable the
// corresponding collector.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register installs the standard profiling flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
}

// Start begins the requested collectors and returns a stop function that
// flushes them in reverse order. The heap profile is written at stop time
// (after a GC, so it reflects live retained memory, not transient
// garbage). Call stop exactly once, after the measured work completes.
func (f Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		cleanup()
		if f.MemProfile == "" {
			return nil
		}
		mf, err := os.Create(f.MemProfile)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer mf.Close()
		runtime.GC() // capture live retained memory
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		return nil
	}, nil
}
