package sampler

import (
	"fmt"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
)

// Pair is an element of [n] × R: a node together with a poll-list label.
// Sets of Pairs are the "L" of Lemma 2 Property 2 (at most one pair per
// node).
type Pair struct {
	X int
	R uint64
}

// QuorumStats summarizes an empirical check of the (θ, δ)-sampler property
// of Definition 1: for a target set S ⊆ [n], how many sampled inputs have a
// quorum whose overlap with S exceeds |S|/n + θ.
type QuorumStats struct {
	Inputs      int     // number of (s, x) inputs sampled
	Exceeding   int     // inputs with overlap fraction > |S|/n + θ
	MaxOverlap  float64 // worst overlap fraction observed
	MeanOverlap float64 // average overlap fraction
}

// CheckQuorumSampler empirically tests the sampler property of a quorum map
// against the target set S (given as a membership mask) using the provided
// candidate strings and all nodes x ∈ [0, n). It returns the observed
// statistics; the sampler property requires Exceeding/Inputs ≤ δ.
func CheckQuorumSampler(q Quorum, strs []bitstring.String, inS []bool, theta float64) QuorumStats {
	n := q.N()
	sSize := 0
	for _, b := range inS {
		if b {
			sSize++
		}
	}
	base := float64(sSize) / float64(n)
	var st QuorumStats
	var sum float64
	for _, s := range strs {
		for x := 0; x < n; x++ {
			quorum := q.Quorum(s, x)
			hit := 0
			for _, y := range quorum {
				if inS[y] {
					hit++
				}
			}
			frac := float64(hit) / float64(len(quorum))
			sum += frac
			if frac > st.MaxOverlap {
				st.MaxOverlap = frac
			}
			if frac > base+theta {
				st.Exceeding++
			}
			st.Inputs++
		}
	}
	if st.Inputs > 0 {
		st.MeanOverlap = sum / float64(st.Inputs)
	}
	return st
}

// MaxLoad returns the maximum, over all nodes y, of the number of quorums
// {Quorum(s, x)}_x that contain y, for the given string s — the overload
// measure of Definition 1/Lemma 1 ("H⁻¹(i, x) > a·d"). For PermQuorum this
// is exactly d for every y; for HashQuorum it can be substantially larger.
func MaxLoad(q Quorum, s bitstring.String) int {
	n := q.N()
	load := make([]int, n)
	for x := 0; x < n; x++ {
		for _, y := range q.Quorum(s, x) {
			load[y]++
		}
	}
	max := 0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// Property1Result reports the empirical check of Lemma 2 Property 1: the
// fraction of (x, r) pairs whose poll list contains a minority of good
// nodes must be at most θ.
type Property1Result struct {
	Sampled      int
	BadLists     int
	BadFraction  float64
	GoodFraction float64 // fraction of good nodes in [n], for reference
}

// CheckProperty1 samples `samples` uniformly random (x, r) pairs and counts
// how many poll lists have ≤ d/2 good members.
func CheckProperty1(p *Poll, good []bool, samples int, src *prng.Source) Property1Result {
	if len(good) != p.N() {
		panic(fmt.Sprintf("sampler: good mask has %d entries for n=%d", len(good), p.N()))
	}
	goodCount := 0
	for _, g := range good {
		if g {
			goodCount++
		}
	}
	res := Property1Result{
		Sampled:      samples,
		GoodFraction: float64(goodCount) / float64(p.N()),
	}
	for i := 0; i < samples; i++ {
		x := src.Intn(p.N())
		r := src.Uint64() % p.Labels()
		hit := 0
		for _, w := range p.List(x, r) {
			if good[w] {
				hit++
			}
		}
		if 2*hit <= p.Size() { // not a strict majority of good nodes
			res.BadLists++
		}
	}
	res.BadFraction = float64(res.BadLists) / float64(samples)
	return res
}

// ExpansionResult reports the border expansion of a pair-set L:
// Border = Σ_{(x,r)∈L} |J(x,r) \ L*| (the ∂L of Figure 3, counting edge
// multiplicity — each list element leaving L* is one border edge) and
// Ratio = Border / (d·|L|). Lemma 2 Property 2 requires Ratio > 2/3 for all
// valid L with |L| = O(n / log n).
type ExpansionResult struct {
	L      int
	Border int
	Ratio  float64
}

// BorderExpansion computes the border expansion of L. L must contain at
// most one pair per node (the side condition of Property 2); violations
// panic since they indicate a harness bug rather than a runtime condition.
func BorderExpansion(p *Poll, L []Pair) ExpansionResult {
	lstar := make(map[int]bool, len(L))
	seen := make(map[int]bool, len(L))
	for _, pr := range L {
		if seen[pr.X] {
			panic(fmt.Sprintf("sampler: BorderExpansion: duplicate node %d in L", pr.X))
		}
		seen[pr.X] = true
		lstar[pr.X] = true
	}
	border := 0
	for _, pr := range L {
		for _, w := range p.List(pr.X, pr.R) {
			if !lstar[w] {
				border++
			}
		}
	}
	res := ExpansionResult{L: len(L), Border: border}
	if len(L) > 0 {
		res.Ratio = float64(border) / (float64(p.Size()) * float64(len(L)))
	}
	return res
}

// GreedyCorner plays the adversary of Lemma 6: it tries to construct a
// low-expansion L of the given size by starting from a random pair and
// greedily adding, among `width` random candidate pairs per step, the pair
// whose poll list overlaps the current L* the most. It returns the worst
// (lowest-ratio) L found across `restarts` attempts.
//
// The paper's Property 2 asserts the adversary cannot push the ratio to
// 2/3 or below; experiment E11 sweeps this attack.
func GreedyCorner(p *Poll, size, width, restarts int, src *prng.Source) ExpansionResult {
	if size <= 0 || size > p.N() {
		panic(fmt.Sprintf("sampler: GreedyCorner size %d out of range", size))
	}
	worst := ExpansionResult{Ratio: 2}
	for attempt := 0; attempt < restarts; attempt++ {
		inL := make(map[int]bool, size)
		lstar := make(map[int]bool, size)
		L := make([]Pair, 0, size)
		add := func(pr Pair) {
			inL[pr.X] = true
			lstar[pr.X] = true
			L = append(L, pr)
		}
		add(Pair{X: src.Intn(p.N()), R: src.Uint64() % p.Labels()})
		for len(L) < size {
			best := Pair{X: -1}
			bestOverlap := -1
			for c := 0; c < width; c++ {
				x := src.Intn(p.N())
				if inL[x] {
					continue
				}
				r := src.Uint64() % p.Labels()
				overlap := 0
				for _, w := range p.List(x, r) {
					if lstar[w] {
						overlap++
					}
				}
				if overlap > bestOverlap {
					bestOverlap = overlap
					best = Pair{X: x, R: r}
				}
			}
			if best.X < 0 {
				break // candidate pool exhausted (tiny n); partial L still valid
			}
			add(best)
		}
		res := BorderExpansion(p, L)
		if res.Ratio < worst.Ratio {
			worst = res
		}
	}
	return worst
}
