package sampler

import (
	"github.com/fastba/fastba/internal/prng"
)

// This file implements the random-digraph model of §4.1.1 (Figure 3),
// which the paper uses to prove Lemma 2: vertices [n] ∪ ([n] × R), each
// labeled vertex with exactly d uniformly random out-neighbours in [n],
// and the border ∂L = edges from a pair-set L to [n] \ L*. The proof
// shows P(u, s) — the probability that some L with |L| = u has border
// exactly s — is o(2^{-n}) for s < (2/3)·d·u.
//
// DigraphBorderStats Monte-Carlo-samples that model directly (fresh
// uniform edges each trial, unlike the keyed Poll construction) so the
// experiment harness can compare the abstract model's border distribution
// against the concrete sampler's: if the keyed construction behaved worse
// than the uniform model, Lemma 2's argument would not transfer.

// DigraphStats summarizes sampled borders in the §4.1 model.
type DigraphStats struct {
	Trials     int
	U          int     // |L| per trial
	D          int     // out-degree
	MinRatio   float64 // min over trials of |∂L| / (d·u)
	MeanRatio  float64
	Violations int // trials with ratio ≤ 2/3
}

// DigraphBorderStats samples `trials` independent draws of the §4.1
// random digraph restricted to a pair-set L of size u (one label per
// node — the Property 2 side condition), with each of L's vertices given
// d uniform out-neighbours in [n], and returns border statistics.
func DigraphBorderStats(n, d, u, trials int, src *prng.Source) DigraphStats {
	if n <= 1 || d <= 0 || u <= 0 || u > n || trials <= 0 {
		panic("sampler: invalid DigraphBorderStats arguments")
	}
	st := DigraphStats{Trials: trials, U: u, D: d, MinRatio: 2}
	var sum float64
	for trial := 0; trial < trials; trial++ {
		// Choose L* ⊆ [n] of size u uniformly (labels are irrelevant in
		// the uniform-edge model: only membership of endpoints matters).
		inL := make(map[int]bool, u)
		for len(inL) < u {
			inL[src.Intn(n)] = true
		}
		border := 0
		for range inL {
			for j := 0; j < d; j++ {
				if !inL[src.Intn(n)] {
					border++
				}
			}
		}
		ratio := float64(border) / float64(d*u)
		sum += ratio
		if ratio < st.MinRatio {
			st.MinRatio = ratio
		}
		if ratio <= 2.0/3 {
			st.Violations++
		}
	}
	st.MeanRatio = sum / float64(trials)
	return st
}
