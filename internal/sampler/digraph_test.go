package sampler

import (
	"testing"

	"github.com/fastba/fastba/internal/prng"
)

func TestDigraphBorderStatsModelHolds(t *testing.T) {
	// The §4.1 bound's regime: u ≤ n/log n. For n=512, u=56, d=12, the
	// expected border ratio is 1 − u/n ≈ 0.89, far above 2/3; violations
	// should be absent across many trials.
	src := prng.New(7)
	st := DigraphBorderStats(512, 12, 56, 500, src)
	if st.Violations != 0 {
		t.Fatalf("uniform digraph model violated the 2/3 bound %d/%d times", st.Violations, st.Trials)
	}
	if st.MinRatio <= 2.0/3 {
		t.Fatalf("min ratio %.3f at or below 2/3", st.MinRatio)
	}
	if st.MeanRatio < 0.8 || st.MeanRatio > 0.95 {
		t.Fatalf("mean ratio %.3f far from 1-u/n ≈ 0.89", st.MeanRatio)
	}
}

func TestDigraphBorderStatsLargeLLowersRatio(t *testing.T) {
	// Sanity: with u = n/2 the expected ratio drops to ≈ 0.5 — the bound
	// genuinely depends on |L| staying small, as the lemma requires.
	src := prng.New(9)
	st := DigraphBorderStats(256, 12, 128, 200, src)
	if st.MeanRatio > 0.6 {
		t.Fatalf("mean ratio %.3f for u=n/2; model broken", st.MeanRatio)
	}
	if st.Violations == 0 {
		t.Fatal("expected violations at u=n/2 (outside the lemma's regime)")
	}
}

func TestDigraphBorderStatsMatchesKeyedSampler(t *testing.T) {
	// The keyed Poll construction must not behave worse than the uniform
	// model it stands in for: compare minimum ratios at the same (n, d, u).
	const n, d, u = 256, 12, 32
	src := prng.New(11)
	model := DigraphBorderStats(n, d, u, 200, src)

	poll := NewPoll(n, d, uint64(n)*uint64(n), 13)
	minKeyed := 2.0
	for trial := 0; trial < 200; trial++ {
		used := map[int]bool{}
		var L []Pair
		for len(L) < u {
			x := src.Intn(n)
			if used[x] {
				continue
			}
			used[x] = true
			L = append(L, Pair{X: x, R: src.Uint64()})
		}
		if r := BorderExpansion(poll, L).Ratio; r < minKeyed {
			minKeyed = r
		}
	}
	// Allow modest slack: both are 200-trial minima of the same
	// distribution.
	if minKeyed < model.MinRatio-0.1 {
		t.Fatalf("keyed sampler min ratio %.3f well below uniform model's %.3f", minKeyed, model.MinRatio)
	}
}

func TestDigraphBorderStatsPanicsOnBadArgs(t *testing.T) {
	src := prng.New(1)
	for i, fn := range []func(){
		func() { DigraphBorderStats(1, 4, 1, 10, src) },
		func() { DigraphBorderStats(64, 0, 1, 10, src) },
		func() { DigraphBorderStats(64, 4, 0, 10, src) },
		func() { DigraphBorderStats(64, 4, 65, 10, src) },
		func() { DigraphBorderStats(64, 4, 8, 0, src) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
