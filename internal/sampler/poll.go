package sampler

import (
	"fmt"

	"github.com/fastba/fastba/internal/prng"
)

// Poll is the poll-list sampler J : [n] × R → [n]^d of Lemma 2. Given a
// node x and a random label r drawn from the polynomial label domain R,
// J(x, r) is the poll list that x treats as authoritative when verifying a
// candidate string (Algorithm 1).
//
// The construction takes, for each (x, r), the first d elements of a keyed
// pseudorandom permutation of [n], so a poll list never contains duplicate
// nodes. Lemma 2's two properties are validated empirically by the
// CheckProperty1 and BorderExpansion checkers in this package:
//
//  1. at most θ·n of the (x, r) pairs map to a list with a minority of
//     good nodes, and
//  2. for every small pair-set L, Σ_{(x,r)∈L} |J(x,r) \ L*| > (2/3)·d·|L| —
//     the border expansion that stops the adversary from cornering a set of
//     nodes (Figure 3).
type Poll struct {
	n, d   int
	labels uint64
	seed   uint64
}

// NewPoll returns a poll-list sampler over [0, n) with lists of size d and
// label domain R = [0, labels). The paper requires |R| polynomial in n;
// callers typically use n². It panics on invalid geometry.
func NewPoll(n, d int, labels uint64, seed uint64) *Poll {
	if n <= 0 || d <= 0 || d > n || labels == 0 {
		panic(fmt.Sprintf("sampler: invalid Poll geometry n=%d d=%d labels=%d", n, d, labels))
	}
	return &Poll{n: n, d: d, labels: labels, seed: prng.DeriveKey(seed, "sampler/J", 0)}
}

// N returns the node-domain size.
func (p *Poll) N() int { return p.n }

// Size returns the poll-list cardinality d.
func (p *Poll) Size() int { return p.d }

// Labels returns the cardinality of the label domain R.
func (p *Poll) Labels() uint64 { return p.labels }

// List returns J(x, r): d distinct nodes. The label is reduced modulo |R|
// so that callers may pass raw 64-bit randomness.
func (p *Poll) List(x int, r uint64) []int {
	return p.ListAppend(make([]int, 0, p.d), x, r)
}

// ListAppend appends J(x, r) to dst, the allocation-free form of List for
// the delivery hot paths (callers pass a reused scratch slice as dst[:0]).
func (p *Poll) ListAppend(dst []int, x int, r uint64) []int {
	perm := p.permFor(x, r)
	for i := 0; i < p.d; i++ {
		dst = append(dst, perm.Apply(i))
	}
	return dst
}

// Contains reports whether w ∈ J(x, r), in O(d).
func (p *Poll) Contains(x int, r uint64, w int) bool {
	perm := p.permFor(x, r)
	for i := 0; i < p.d; i++ {
		if perm.Apply(i) == w {
			return true
		}
	}
	return false
}

func (p *Poll) permFor(x int, r uint64) prng.Perm {
	// Poll lists are short-lived (one per pull request), so unlike
	// PermQuorum there is no cache: the Perm is rebuilt per query — by
	// value, so it lives on the caller's stack — which keeps memory flat
	// under adversarial label churn AND the delivery hot path (J.Contains
	// runs per Fw1/Fw2/Answer) allocation-free. This matters doubly for
	// the decision log, where one shared sampler serves every instance of
	// a long-lived run.
	return prng.MakePerm(p.n, prng.Hash3(p.seed, uint64(x), r%p.labels))
}
