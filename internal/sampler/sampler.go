// Package sampler implements the sampler machinery of §2.2 of the paper:
// the quorum samplers I and H of Lemma 1 (used for Push Quorums and Pull
// Quorums) and the poll-list sampler J of Lemma 2, together with empirical
// checkers for the (θ, δ)-sampler property and for Lemma 2's Properties 1
// and 2 (the border-expansion / isoperimetric condition of Figure 3).
//
// Lemma 1 proves the existence of samplers in which no node is overloaded.
// We realize I and H constructively as the union of d keyed pseudorandom
// permutations of [n]:
//
//	I(s, x) = { σ_{s,j}(x) : j ∈ [d] }
//
// Each σ_{s,j} is a bijection, so every node y belongs to exactly d quorums
// I(s, ·) for every string s — the no-overload condition holds
// deterministically with constant a = 1 — while quorum composition remains
// pseudorandom (the sampler property is validated empirically by this
// package's tests, mirroring the random-graph argument of §4.1). Inverse
// queries ("which quorums do I sit in?"), needed by the Push phase, cost
// O(d) permutation inversions.
package sampler

import (
	"fmt"
	"sync"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
)

// Quorum is the interface shared by the string-indexed samplers I and H.
// Implementations must be deterministic and safe for concurrent use.
// Quorum and Inverse must return freshly allocated slices on every call:
// callers own the result and may mutate it (the protocol core deduplicates
// quorums in place on its delivery hot path).
type Quorum interface {
	// Quorum returns the quorum assigned to node x for string s.
	// The result may contain duplicates only if the implementation is
	// multiset-based; the permutation construction returns distinct slots
	// per j but the same node may appear under two different j.
	Quorum(s bitstring.String, x int) []int
	// Inverse returns every node x such that y ∈ Quorum(s, x).
	Inverse(s bitstring.String, y int) []int
	// Contains reports whether y ∈ Quorum(s, x).
	Contains(s bitstring.String, x, y int) bool
	// Size returns the quorum cardinality d (counting multiplicity).
	Size() int
	// N returns the node-domain size.
	N() int
}

// AppendQuorum is the optional allocation-free extension of Quorum: the
// hot delivery paths (internal/core) probe for it and sample into a
// caller-owned scratch slice instead of taking a fresh allocation per
// query. Implementations append Quorum(s, x) to dst and return the
// extended slice; dst's existing contents are preserved (callers pass
// dst[:0] to reuse capacity).
type AppendQuorum interface {
	QuorumAppend(dst []int, s bitstring.String, x int) []int
}

// PermQuorum is the permutation-based quorum sampler described in the
// package comment. It realizes both I and H; the two instances are
// domain-separated by their key tags.
type PermQuorum struct {
	n, d int
	seed uint64

	mu    sync.RWMutex
	perms map[uint64][]*prng.Perm // string hash -> d permutations
}

var _ Quorum = (*PermQuorum)(nil)

// NewPermQuorum returns a quorum sampler over [0, n) with quorums of size d.
// tag domain-separates independent samplers drawn from the same master seed
// (e.g. "I" and "H"). It panics on non-positive n or d: sampler geometry is
// fixed at configuration time and invalid values are programming errors.
func NewPermQuorum(n, d int, seed uint64, tag string) *PermQuorum {
	if n <= 0 || d <= 0 {
		panic(fmt.Sprintf("sampler: invalid PermQuorum geometry n=%d d=%d", n, d))
	}
	return &PermQuorum{
		n:     n,
		d:     d,
		seed:  prng.DeriveKey(seed, "sampler/"+tag, 0),
		perms: make(map[uint64][]*prng.Perm),
	}
}

// N returns the node-domain size.
func (q *PermQuorum) N() int { return q.n }

// Size returns d, the quorum cardinality.
func (q *PermQuorum) Size() int { return q.d }

// Quorum returns { σ_{s,j}(x) : j < d }.
func (q *PermQuorum) Quorum(s bitstring.String, x int) []int {
	return q.QuorumAppend(make([]int, 0, q.d), s, x)
}

// QuorumAppend appends Quorum(s, x) to dst (sampler.AppendQuorum).
func (q *PermQuorum) QuorumAppend(dst []int, s bitstring.String, x int) []int {
	for _, p := range q.permsFor(s) {
		dst = append(dst, p.Apply(x))
	}
	return dst
}

// Inverse returns { σ_{s,j}^{-1}(y) : j < d }: the nodes whose quorum for s
// contains y. Its length is always exactly d — the deterministic
// no-overload guarantee of this construction.
func (q *PermQuorum) Inverse(s bitstring.String, y int) []int {
	ps := q.permsFor(s)
	out := make([]int, q.d)
	for j, p := range ps {
		out[j] = p.Invert(y)
	}
	return out
}

// Contains reports whether y ∈ Quorum(s, x) in O(d) time.
func (q *PermQuorum) Contains(s bitstring.String, x, y int) bool {
	for _, p := range q.permsFor(s) {
		if p.Apply(x) == y {
			return true
		}
	}
	return false
}

// permsFor returns (building and caching on first use) the d permutations
// keyed by s. The cache is bounded by the number of distinct strings seen in
// an execution, which Lemma 4 bounds by O(n).
func (q *PermQuorum) permsFor(s bitstring.String) []*prng.Perm {
	h := s.Hash64()
	q.mu.RLock()
	ps, ok := q.perms[h]
	q.mu.RUnlock()
	if ok {
		return ps
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if ps, ok = q.perms[h]; ok {
		return ps
	}
	ps = make([]*prng.Perm, q.d)
	for j := range ps {
		ps[j] = prng.NewPerm(q.n, prng.Hash3(q.seed, h, uint64(j)))
	}
	q.perms[h] = ps
	return ps
}

// HashQuorum is a naive sampler that draws each quorum member independently
// by hashing (s, x, j). It does NOT guarantee the no-overload condition of
// Lemma 1 — a node may sit in far more than d quorums for some string — and
// exists as the ablation baseline quantifying what the permutation
// construction buys (experiment E12 companion; see also TestHashQuorumCanOverload).
type HashQuorum struct {
	n, d int
	seed uint64
}

var _ Quorum = (*HashQuorum)(nil)

// NewHashQuorum returns the naive independent-hash sampler.
func NewHashQuorum(n, d int, seed uint64, tag string) *HashQuorum {
	if n <= 0 || d <= 0 {
		panic(fmt.Sprintf("sampler: invalid HashQuorum geometry n=%d d=%d", n, d))
	}
	return &HashQuorum{n: n, d: d, seed: prng.DeriveKey(seed, "sampler/hash/"+tag, 0)}
}

// N returns the node-domain size.
func (q *HashQuorum) N() int { return q.n }

// Size returns d.
func (q *HashQuorum) Size() int { return q.d }

// Quorum returns the d independently hashed members for (s, x).
func (q *HashQuorum) Quorum(s bitstring.String, x int) []int {
	return q.QuorumAppend(make([]int, 0, q.d), s, x)
}

// QuorumAppend appends Quorum(s, x) to dst (sampler.AppendQuorum).
func (q *HashQuorum) QuorumAppend(dst []int, s bitstring.String, x int) []int {
	h := s.Hash64()
	for j := 0; j < q.d; j++ {
		dst = append(dst, int(prng.Hash4(q.seed, h, uint64(x), uint64(j))%uint64(q.n)))
	}
	return dst
}

// Inverse scans the whole domain — Θ(n·d). The naive construction has no
// efficient inverse; this is part of why the permutation sampler is used.
func (q *HashQuorum) Inverse(s bitstring.String, y int) []int {
	var out []int
	for x := 0; x < q.n; x++ {
		if q.Contains(s, x, y) {
			out = append(out, x)
		}
	}
	return out
}

// Contains reports whether y ∈ Quorum(s, x).
func (q *HashQuorum) Contains(s bitstring.String, x, y int) bool {
	h := s.Hash64()
	for j := 0; j < q.d; j++ {
		if int(prng.Hash4(q.seed, h, uint64(x), uint64(j))%uint64(q.n)) == y {
			return true
		}
	}
	return false
}
