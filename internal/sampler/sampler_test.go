package sampler

import (
	"testing"
	"testing/quick"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
)

func randStrings(seed uint64, count, bits int) []bitstring.String {
	src := prng.New(seed)
	out := make([]bitstring.String, count)
	for i := range out {
		out[i] = bitstring.Random(src, bits)
	}
	return out
}

func TestPermQuorumShape(t *testing.T) {
	const n, d = 128, 12
	q := NewPermQuorum(n, d, 1, "I")
	if q.N() != n || q.Size() != d {
		t.Fatalf("geometry mismatch: N=%d Size=%d", q.N(), q.Size())
	}
	s := randStrings(2, 1, 40)[0]
	for x := 0; x < n; x++ {
		quorum := q.Quorum(s, x)
		if len(quorum) != d {
			t.Fatalf("quorum size %d, want %d", len(quorum), d)
		}
		for _, y := range quorum {
			if y < 0 || y >= n {
				t.Fatalf("member %d out of range", y)
			}
		}
	}
}

func TestPermQuorumDeterministic(t *testing.T) {
	s := randStrings(3, 1, 40)[0]
	q1 := NewPermQuorum(64, 8, 7, "I")
	q2 := NewPermQuorum(64, 8, 7, "I")
	for x := 0; x < 64; x++ {
		a, b := q1.Quorum(s, x), q2.Quorum(s, x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("non-deterministic quorum at x=%d", x)
			}
		}
	}
}

func TestPermQuorumTagSeparation(t *testing.T) {
	s := randStrings(4, 1, 40)[0]
	qi := NewPermQuorum(256, 8, 7, "I")
	qh := NewPermQuorum(256, 8, 7, "H")
	identical := 0
	for x := 0; x < 256; x++ {
		a, b := qi.Quorum(s, x), qh.Quorum(s, x)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			identical++
		}
	}
	if identical > 2 {
		t.Fatalf("I and H coincide on %d/256 nodes; tags not separating", identical)
	}
}

func TestPermQuorumInverseConsistency(t *testing.T) {
	const n, d = 100, 10
	q := NewPermQuorum(n, d, 5, "I")
	s := randStrings(6, 1, 40)[0]
	for y := 0; y < n; y++ {
		inv := q.Inverse(s, y)
		if len(inv) != d {
			t.Fatalf("Inverse cardinality %d, want exactly %d (no-overload)", len(inv), d)
		}
		for _, x := range inv {
			if !q.Contains(s, x, y) {
				t.Fatalf("Inverse(%d) returned %d but Contains is false", y, x)
			}
		}
	}
}

func TestPermQuorumNoOverload(t *testing.T) {
	// The central Lemma 1 guarantee: for every string, every node sits in
	// exactly d quorums, so MaxLoad == d.
	const n, d = 200, 9
	q := NewPermQuorum(n, d, 11, "H")
	for _, s := range randStrings(7, 5, 40) {
		if load := MaxLoad(q, s); load != d {
			t.Fatalf("PermQuorum MaxLoad = %d, want %d", load, d)
		}
	}
}

func TestHashQuorumCanOverload(t *testing.T) {
	// The ablation baseline: independent hashing exceeds the d load bound.
	const n, d = 200, 9
	q := NewHashQuorum(n, d, 11, "H")
	overloaded := false
	for _, s := range randStrings(8, 5, 40) {
		if MaxLoad(q, s) > d {
			overloaded = true
			break
		}
	}
	if !overloaded {
		t.Fatal("HashQuorum never exceeded load d; ablation premise broken")
	}
}

func TestQuorumSamplerProperty(t *testing.T) {
	// Empirical Definition 1 check: with |S|/n = 0.3 and θ = 0.25, the
	// fraction of inputs whose quorum overlaps S by more than 0.55 must be
	// tiny for quorums of size 16 (Chernoff gives ≈ e^{-2·θ²·d} ≈ 0.13;
	// observed is far lower for the permutation construction).
	const n, d = 512, 16
	q := NewPermQuorum(n, d, 3, "I")
	inS := make([]bool, n)
	src := prng.New(9)
	for count := 0; count < n*3/10; {
		x := src.Intn(n)
		if !inS[x] {
			inS[x] = true
			count++
		}
	}
	st := CheckQuorumSampler(q, randStrings(10, 8, 40), inS, 0.25)
	if frac := float64(st.Exceeding) / float64(st.Inputs); frac > 0.05 {
		t.Fatalf("sampler property violated: %.3f of inputs exceed |S|/n+θ", frac)
	}
	if st.MeanOverlap < 0.25 || st.MeanOverlap > 0.35 {
		t.Fatalf("mean overlap %.3f far from |S|/n = 0.3", st.MeanOverlap)
	}
}

func TestPollListShape(t *testing.T) {
	p := NewPoll(128, 10, 128*128, 1)
	src := prng.New(2)
	for i := 0; i < 100; i++ {
		x := src.Intn(128)
		r := src.Uint64()
		list := p.List(x, r)
		if len(list) != 10 {
			t.Fatalf("list size %d", len(list))
		}
		seen := map[int]bool{}
		for _, w := range list {
			if w < 0 || w >= 128 || seen[w] {
				t.Fatalf("invalid or duplicate member %d", w)
			}
			seen[w] = true
			if !p.Contains(x, r, w) {
				t.Fatalf("Contains(%d,%d,%d) = false for a list member", x, r, w)
			}
		}
		if p.Contains(x, r, pickOutside(seen, 128)) {
			t.Fatal("Contains true for non-member")
		}
	}
}

func pickOutside(seen map[int]bool, n int) int {
	for i := 0; i < n; i++ {
		if !seen[i] {
			return i
		}
	}
	return 0
}

func TestPollLabelReduction(t *testing.T) {
	p := NewPoll(64, 8, 100, 1)
	a := p.List(5, 7)
	b := p.List(5, 107) // 107 mod 100 == 7
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("labels not reduced modulo |R|")
		}
	}
}

func TestCheckProperty1(t *testing.T) {
	const n = 256
	p := NewPoll(n, 16, n*n, 5)
	good := make([]bool, n)
	src := prng.New(3)
	// 75% good nodes (the paper's 1/2 + ε with generous ε).
	for count := 0; count < n*3/4; {
		x := src.Intn(n)
		if !good[x] {
			good[x] = true
			count++
		}
	}
	res := CheckProperty1(p, good, 4000, src)
	if res.BadFraction > 0.05 {
		t.Fatalf("Property 1 violated: %.3f of poll lists lack a good majority", res.BadFraction)
	}
}

func TestBorderExpansionFullSetIsSmall(t *testing.T) {
	// If L covers every node, every list element lands inside L*, so the
	// border is 0 — sanity check of the ∂L definition.
	const n = 32
	p := NewPoll(n, 6, n*n, 1)
	L := make([]Pair, n)
	for i := range L {
		L[i] = Pair{X: i, R: uint64(i)}
	}
	res := BorderExpansion(p, L)
	if res.Border != 0 || res.Ratio != 0 {
		t.Fatalf("full-set border = %+v, want zero", res)
	}
}

func TestBorderExpansionSingleton(t *testing.T) {
	const n = 128
	p := NewPoll(n, 8, uint64(n*n), 2)
	res := BorderExpansion(p, []Pair{{X: 3, R: 99}})
	// A single list can at most self-intersect at x itself.
	if res.Border < p.Size()-1 {
		t.Fatalf("singleton border %d below d-1", res.Border)
	}
	if res.Ratio <= 2.0/3 {
		t.Fatalf("singleton expansion ratio %.3f ≤ 2/3", res.Ratio)
	}
}

func TestBorderExpansionRejectsDuplicateNodes(t *testing.T) {
	p := NewPoll(16, 4, 256, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node in L did not panic")
		}
	}()
	BorderExpansion(p, []Pair{{X: 1, R: 1}, {X: 1, R: 2}})
}

func TestProperty2RandomSets(t *testing.T) {
	// Random L of size n/log n must expand well beyond 2/3·d.
	const n = 512
	p := NewPoll(n, 12, uint64(n)*uint64(n), 7)
	src := prng.New(11)
	size := n / 9 // ≈ n / log₂ n
	for trial := 0; trial < 20; trial++ {
		L := make([]Pair, 0, size)
		used := map[int]bool{}
		for len(L) < size {
			x := src.Intn(n)
			if used[x] {
				continue
			}
			used[x] = true
			L = append(L, Pair{X: x, R: src.Uint64()})
		}
		res := BorderExpansion(p, L)
		if res.Ratio <= 2.0/3 {
			t.Fatalf("random L violates Property 2: ratio %.3f", res.Ratio)
		}
	}
}

func TestProperty2GreedyAdversary(t *testing.T) {
	// Even a greedy corner-seeking adversary cannot push the expansion to
	// 2/3 or below (experiment E11 in miniature).
	const n = 256
	p := NewPoll(n, 12, uint64(n)*uint64(n), 13)
	src := prng.New(17)
	res := GreedyCorner(p, n/8, 24, 6, src)
	if res.Ratio <= 2.0/3 {
		t.Fatalf("greedy adversary cornered J: ratio %.3f with |L|=%d", res.Ratio, res.L)
	}
}

func TestQuickQuorumMembershipAgree(t *testing.T) {
	q := NewPermQuorum(97, 7, 23, "I")
	s := randStrings(19, 1, 33)[0]
	f := func(x8, y8 uint8) bool {
		x, y := int(x8)%97, int(y8)%97
		inQuorum := false
		for _, m := range q.Quorum(s, x) {
			if m == y {
				inQuorum = true
			}
		}
		return inQuorum == q.Contains(s, x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	q := NewPermQuorum(101, 9, 29, "H")
	s := randStrings(20, 1, 33)[0]
	f := func(y8 uint8) bool {
		y := int(y8) % 101
		for _, x := range q.Inverse(s, y) {
			if !q.Contains(s, x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	tests := []func(){
		func() { NewPermQuorum(0, 4, 1, "I") },
		func() { NewPermQuorum(10, 0, 1, "I") },
		func() { NewHashQuorum(0, 4, 1, "I") },
		func() { NewPoll(0, 4, 16, 1) },
		func() { NewPoll(10, 11, 16, 1) },
		func() { NewPoll(10, 4, 0, 1) },
	}
	for i, fn := range tests {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkPermQuorum(b *testing.B) {
	q := NewPermQuorum(4096, 24, 1, "I")
	s := randStrings(1, 1, 48)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Quorum(s, i%4096)
	}
}

func BenchmarkPollList(b *testing.B) {
	p := NewPoll(4096, 24, 4096*4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.List(i%4096, uint64(i))
	}
}
