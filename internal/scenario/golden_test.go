package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files instead of comparing")

// goldenEntry serializes everything a compiled scenario derives from
// (Spec, n): the topology edge set, the diameter, the load weights, the
// latency/loss lowering, and the adaptive corruption schedules. Every
// field is a pure function of the spec — the golden file locks that.
type goldenEntry struct {
	Label    string    `json:"label"`
	N        int       `json:"n"`
	Seed     uint64    `json:"seed"`
	Edges    []string  `json:"edges,omitempty"`
	Diameter int       `json:"diameter"`
	Weights  []float64 `json:"weights"`
	// LinkDigest hashes the full lowered link list (order and every knob).
	Links      int    `json:"links"`
	LinkDigest string `json:"linkDigest,omitempty"`
	// The adaptive corruption schedules: the first 8 targets per ranking.
	RankDegree    []int `json:"rankDegree"`
	RankWeight    []int `json:"rankWeight"`
	RankOblivious []int `json:"rankOblivious"`
}

func goldenSpecs() []struct {
	spec Spec
	n    int
} {
	return []struct {
		spec Spec
		n    int
	}{
		{Spec{Topology: TopologyRing, Latency: LatencyFixed, BaseDelay: 2, Seed: 7}, 24},
		{Spec{Topology: TopologyWS, Degree: 6, Rewire: 0.3, ZipfS: 1.1, Seed: 11}, 64},
		{Spec{Topology: TopologyWS, Degree: 8, Rewire: 0.1, Latency: LatencyUniform, BaseDelay: 1, MaxDelay: 5, Loss: 0.02, Seed: 3}, 48},
		{Spec{Topology: TopologyWS, Degree: 10, Rewire: 0.2, ZipfS: 0.8, Latency: LatencyLongTail, TailProb: 0.05, TailDelay: 4, Seed: 1}, 256},
		{Spec{Latency: LatencyFixed, BaseDelay: 1, Seed: 5}, 16}, // full mesh
	}
}

func capture(t *testing.T, spec Spec, n int) goldenEntry {
	t.Helper()
	// compile (not Compile): bypass the memo cache so every GOMAXPROCS
	// round genuinely recomputes.
	c, err := compile(spec, n)
	if err != nil {
		t.Fatalf("compile %s n=%d: %v", spec.Label(), n, err)
	}
	e := goldenEntry{
		Label:    spec.Label(),
		N:        n,
		Seed:     spec.Seed,
		Diameter: c.Diameter,
		Weights:  c.Weights,
		Links:    len(c.Links),
	}
	for u := range c.Adj {
		for _, v := range c.Adj[u] {
			if u < v {
				e.Edges = append(e.Edges, fmt.Sprintf("%d-%d", u, v))
			}
		}
	}
	sort.Strings(e.Edges)
	if len(c.Links) > 0 {
		h := sha256.New()
		for _, lf := range c.Links {
			fmt.Fprintf(h, "%d->%d delay=%d jitter=%d tail=%g/%d loss=%g\n",
				lf.From, lf.To, lf.Delay, lf.Jitter, lf.TailProb, lf.TailDelay, lf.Loss)
		}
		e.LinkDigest = fmt.Sprintf("%x", h.Sum(nil))
	}
	top := func(rank []int) []int {
		k := 8
		if k > len(rank) {
			k = len(rank)
		}
		return append([]int(nil), rank[:k]...)
	}
	e.RankDegree = top(c.rankDegree)
	e.RankWeight = top(c.rankWeight)
	e.RankOblivious = top(c.rankOblivious)
	return e
}

// TestScenarioGolden locks the scenario generator byte-for-byte: topology
// edges, latency draws and adaptive corruption schedules are pure
// functions of (seed, n), identical across GOMAXPROCS settings.
//
// Regenerate (only after an intentional semantic change) with:
//
//	go test ./internal/scenario -run TestScenarioGolden -update
func TestScenarioGolden(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var baseline []byte
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		var entries []goldenEntry
		for _, g := range goldenSpecs() {
			entries = append(entries, capture(t, g.spec, g.n))
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entries); err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = buf.Bytes()
			continue
		}
		if !bytes.Equal(baseline, buf.Bytes()) {
			t.Fatalf("scenario capture diverged between GOMAXPROCS settings at %d", procs)
		}
	}

	path := filepath.Join("testdata", "scenario_golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, baseline, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseline, want) {
		t.Fatalf("scenario generator diverged from %s (run with -update after an intentional change); got %d bytes, want %d",
			path, len(baseline), len(want))
	}
}

// TestCompileMemoized locks the cache contract: Compile returns the same
// artifact pointer for equal (spec, n), including cached errors.
func TestCompileMemoized(t *testing.T) {
	spec := Spec{Topology: TopologyWS, Degree: 6, Rewire: 0.2, Seed: 9}
	a, err := Compile(spec, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(spec, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Compile did not memoize equal specs")
	}
}
