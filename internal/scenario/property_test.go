package scenario

import (
	"math"
	"testing"
	"testing/quick"
)

// The generator's structural invariants, checked over randomized specs
// with testing/quick. Draws are narrowed to the valid parameter space —
// the properties quantify over every spec that compiles.

// wsSpec narrows raw quick inputs to a valid Watts–Strogatz spec.
func wsSpec(seed uint64, nRaw, degRaw uint8, rewireRaw float64) (Spec, int) {
	n := 16 + int(nRaw)%113      // 16..128
	k := 2 * (1 + int(degRaw)%5) // 2,4,6,8,10
	if k >= n {
		k = 2
	}
	rewire := math.Abs(rewireRaw)
	rewire -= math.Floor(rewire) // [0, 1)
	return Spec{Topology: TopologyWS, Degree: k, Rewire: rewire, Seed: seed}, n
}

// TestPropCompiledConnected: compilation succeeding implies the topology
// is connected — every pair has a finite hop distance (Compile rejects
// disconnected graphs by contract, so success must mean full reachability).
func TestPropCompiledConnected(t *testing.T) {
	prop := func(seed uint64, nRaw, degRaw uint8, rewireRaw float64) bool {
		spec, n := wsSpec(seed, nRaw, degRaw, rewireRaw)
		c, err := compile(spec, n)
		if err != nil {
			return true // rejected specs assert nothing
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && c.Distance(u, v) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropWSDegreeBounds: rewiring preserves the edge count at exactly
// n·k/2 and never drops a node below k/2 neighbours (each node keeps its
// own clockwise stubs).
func TestPropWSDegreeBounds(t *testing.T) {
	prop := func(seed uint64, nRaw, degRaw uint8, rewireRaw float64) bool {
		spec, n := wsSpec(seed, nRaw, degRaw, rewireRaw)
		c, err := compile(spec, n)
		if err != nil {
			return true
		}
		edges := 0
		for u := range c.Adj {
			if len(c.Adj[u]) < spec.Degree/2 {
				return false
			}
			edges += len(c.Adj[u])
		}
		return edges == n*spec.Degree // each undirected edge counted twice
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropZipfWeights: Zipf load weights are normalized (sum 1) and
// strictly follow the weight ranking — monotone non-increasing along
// Rank(RankWeight).
func TestPropZipfWeights(t *testing.T) {
	prop := func(seed uint64, nRaw uint8, sRaw float64) bool {
		n := 8 + int(nRaw)%121
		s := 0.2 + math.Abs(sRaw)
		s -= math.Floor(s) // (0, 1.2) after the offset wrap below
		spec := Spec{ZipfS: 0.2 + s, Seed: seed}
		c, err := compile(spec, n)
		if err != nil {
			return true
		}
		sum := 0.0
		for _, w := range c.Weights {
			if w <= 0 {
				return false
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		rank := c.Rank(RankWeight)
		for i := 1; i < len(rank); i++ {
			if c.Weights[rank[i-1]] < c.Weights[rank[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRelayTTLSuffices: a TTL equal to the hop distance always
// suffices — simulating the forwarding DAG (strictly distance-decreasing
// hops, preference order, fanout cap) from every origin to a sampled
// destination reaches the destination before the TTL expires.
func TestPropRelayTTLSuffices(t *testing.T) {
	prop := func(seed uint64, nRaw, degRaw uint8, rewireRaw float64, destRaw uint8) bool {
		spec, n := wsSpec(seed, nRaw, degRaw, rewireRaw)
		spec.ZipfS = 0.9 // exercise weighted preference orders too
		c, err := compile(spec, n)
		if err != nil {
			return true
		}
		fanout := spec.EffectiveFanout()
		dest := int(destRaw) % n
		for origin := 0; origin < n; origin++ {
			if origin == dest {
				continue
			}
			// Replicate relayNet.forward: frontier of (node, ttl) pairs.
			type hop struct{ node, ttl int }
			frontier := []hop{{origin, c.Distance(origin, dest)}}
			reached := false
			for len(frontier) > 0 && !reached {
				h := frontier[0]
				frontier = frontier[1:]
				du := c.Distance(h.node, dest)
				ttl := h.ttl - 1
				sent := 0
				for _, v := range c.Adj[h.node] {
					if c.Distance(v, dest) != du-1 {
						continue
					}
					if v == dest {
						reached = true
						break
					}
					if ttl == 0 {
						return false // TTL expired before arrival
					}
					frontier = append(frontier, hop{v, ttl})
					sent++
					if sent >= fanout {
						break
					}
				}
			}
			if !reached {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnectedTopologyError pins the fix: a topology that leaves
// nodes unreachable fails compilation with a descriptive error instead of
// hanging the termination oracle downstream.
func TestDisconnectedTopologyError(t *testing.T) {
	// Degree 2 with full rewiring fragments small rings for many seeds;
	// scan a few seeds to find one deterministically.
	for seed := uint64(1); seed < 200; seed++ {
		spec := Spec{Topology: TopologyWS, Degree: 2, Rewire: 1.0, Seed: seed}
		_, err := compile(spec, 32)
		if err == nil {
			continue
		}
		msg := err.Error()
		for _, want := range []string{"disconnected", "unreachable"} {
			if !contains(msg, want) {
				t.Fatalf("disconnection error not descriptive: %v", err)
			}
		}
		return
	}
	t.Skip("no disconnecting seed found in range (generator got more robust?)")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
