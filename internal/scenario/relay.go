package scenario

import (
	"sync"
	"sync/atomic"

	"github.com/fastba/fastba/internal/simnet"
)

// This file is the gossip relay and the adaptive-adversary enforcement
// point. Wrap interposes a relay node in front of every protocol node:
// sends to adjacent peers pass through unchanged, sends across the
// topology travel inside simnet.RelayMsg hops along strictly
// distance-decreasing links (TTL-bounded, deduplicated per (origin, seq)),
// and — when an adaptive adversary is configured — the sends of silenced
// target nodes are suppressed from the trigger time on.
//
// Concurrency: each relay node's state (dedup set, sequence counter) is
// touched only inside its own Init/Deliver activations, which every
// runtime serializes per node. The shared adaptive state uses atomics plus
// a sync.Once for the traffic ranking, so the wrapper is safe on the
// concurrent runtimes too.

// WrapConfig configures the relay layer.
type WrapConfig struct {
	// AdaptiveKind selects the adaptive adversary's target ranking:
	// RankDegree, RankWeight, RankOblivious, RankTraffic, or "" for none.
	AdaptiveKind string
	// Budget is the number of nodes the adaptive adversary silences.
	Budget int
	// TriggerAt is the logical time silencing starts.
	TriggerAt int
}

// relayNet is the state shared by all relay nodes of one run.
type relayNet struct {
	comp   *Compiled
	fanout int

	kind      string
	budget    int
	triggerAt int
	// muted marks the silenced targets. For structural rankings it is
	// fixed at construction; for the traffic ranking it is published by
	// rankOnce at trigger time (atomic pointer for a race-free swap under
	// the concurrent runtimes).
	muted    atomic.Pointer[[]bool]
	rankOnce sync.Once
	// traffic counts per-node handled deliveries — the online signal the
	// traffic ranking sorts by.
	traffic []atomic.Int64
}

// Wrap interposes the relay in front of every node. The returned nodes
// implement simnet.Node only: rushing Byzantine strategies degrade to
// their non-rushing form under a scenario, exactly as they do over TCP.
func Wrap(nodes []simnet.Node, comp *Compiled, cfg WrapConfig) []simnet.Node {
	rn := &relayNet{
		comp:      comp,
		fanout:    comp.Spec.EffectiveFanout(),
		kind:      cfg.AdaptiveKind,
		budget:    cfg.Budget,
		triggerAt: cfg.TriggerAt,
		traffic:   make([]atomic.Int64, len(nodes)),
	}
	if rn.kind != "" && rn.kind != RankTraffic && rn.budget > 0 {
		rn.publishMuted(comp.Rank(rn.kind))
	}
	wrapped := make([]simnet.Node, len(nodes))
	for id, n := range nodes {
		wrapped[id] = &relayNode{inner: n, id: id, net: rn}
	}
	return wrapped
}

// publishMuted marks the first budget entries of rank as silenced.
func (rn *relayNet) publishMuted(rank []int) {
	muted := make([]bool, rn.comp.N)
	for i := 0; i < rn.budget && i < len(rank); i++ {
		muted[rank[i]] = true
	}
	rn.muted.Store(&muted)
}

// silenced reports whether node id's sends are suppressed at time now.
func (rn *relayNet) silenced(id, now int) bool {
	if rn.kind == "" || rn.budget <= 0 || now < rn.triggerAt {
		return false
	}
	if rn.kind == RankTraffic {
		rn.rankOnce.Do(rn.rankByTraffic)
	}
	m := rn.muted.Load()
	return m != nil && (*m)[id]
}

// rankByTraffic snapshots the delivery counters and silences the
// most-messaged nodes. On the deterministic runners the snapshot point
// (first send at or past the trigger) is itself deterministic; on the
// concurrent runtimes it follows real scheduling, like delivery order.
func (rn *relayNet) rankByTraffic() {
	counts := make([]int64, len(rn.traffic))
	for i := range rn.traffic {
		counts[i] = rn.traffic[i].Load()
	}
	rank := rankBy(len(counts), func(a, b int) bool {
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	rn.publishMuted(rank)
}

// Muted returns the silenced node set, or nil when no adaptive adversary
// is active (or the traffic ranking has not triggered). Test hook.
func (rn *relayNet) Muted() []bool {
	m := rn.muted.Load()
	if m == nil {
		return nil
	}
	return *m
}

// relayKey packs the dedup key of a relayed message.
func relayKey(origin int, seq uint32) uint64 {
	return uint64(uint32(origin))<<32 | uint64(seq)
}

// relayNode interposes the relay on one node's send and delivery paths.
type relayNode struct {
	inner simnet.Node
	id    int
	net   *relayNet
	seq   uint32
	seen  map[uint64]struct{}
	ctx   relayCtx // reused across activations (contexts are call-scoped)
}

func (r *relayNode) wrap(ctx simnet.Context) *relayCtx {
	r.ctx.node, r.ctx.inner = r, ctx
	return &r.ctx
}

func (r *relayNode) Init(ctx simnet.Context) {
	r.seen = make(map[uint64]struct{})
	r.inner.Init(r.wrap(ctx))
}

func (r *relayNode) Deliver(ctx simnet.Context, from simnet.NodeID, m simnet.Message) {
	r.net.traffic[r.id].Add(1)
	rm, ok := m.(simnet.RelayMsg)
	if !ok {
		r.inner.Deliver(r.wrap(ctx), from, m)
		return
	}
	key := relayKey(rm.Origin, rm.Seq)
	if _, dup := r.seen[key]; dup {
		return
	}
	r.seen[key] = struct{}{}
	if rm.Dest == r.id {
		r.inner.Deliver(r.wrap(ctx), rm.Origin, rm.Inner)
		return
	}
	// Forwarding is part of a node's send budget: a silenced relay drops
	// transit traffic too — that collateral damage is exactly what makes
	// hub-targeting adaptive adversaries hurt.
	if rm.TTL == 0 || r.net.silenced(r.id, ctx.Now()) {
		return
	}
	r.net.forward(ctx, r.id, rm)
}

// forward sends rm one hop closer to its destination: to up to fanout
// neighbours of u whose distance to Dest is exactly one less than u's, in
// relay preference order. The choice depends only on the topology, so the
// forwarding DAG of an (origin, dest) pair is delivery-order independent.
func (rn *relayNet) forward(ctx simnet.Context, u int, rm simnet.RelayMsg) {
	du := rn.comp.Distance(u, rm.Dest)
	rm.TTL--
	sent := 0
	for _, v := range rn.comp.Adj[u] {
		if rn.comp.Distance(v, rm.Dest) != du-1 {
			continue
		}
		ctx.Send(v, rm)
		sent++
		if sent >= rn.fanout {
			return
		}
	}
}

// relayCtx is the Context handed to the inner node: it routes non-adjacent
// sends through the relay and enforces adaptive silencing.
type relayCtx struct {
	node  *relayNode
	inner simnet.Context
}

func (c *relayCtx) Now() int { return c.inner.Now() }

func (c *relayCtx) Send(to simnet.NodeID, m simnet.Message) {
	r := c.node
	if r.net.silenced(r.id, c.inner.Now()) {
		return
	}
	if to < 0 || to >= r.net.comp.N { // let the runtime's own policy judge it
		c.inner.Send(to, m)
		return
	}
	d := r.net.comp.Distance(r.id, to)
	if d <= 1 {
		c.inner.Send(to, m)
		return
	}
	rm := simnet.RelayMsg{Origin: r.id, Seq: r.seq, Dest: to, TTL: uint8(d), Inner: m}
	r.seq++
	r.net.forward(c.inner, r.id, rm)
}
