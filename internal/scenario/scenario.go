// Package scenario is the hostile-internet scenario generator (ROADMAP
// item 5): it composes a topology model (full mesh, ring, Watts–Strogatz
// small world, with optional Zipf-weighted node load), a per-link
// latency/loss model lowered onto simnet.FaultPlan link faults, a gossip
// relay that carries protocol traffic across non-adjacent links, and the
// target rankings used by the adaptive adversaries registered in the public
// package.
//
// Everything a scenario produces — topology edges, per-link latency draws,
// relay forwarding choices, corruption rankings — is a pure function of
// (Spec, n): all randomness derives from prng.DeriveKey over Spec.Seed, no
// global state is consulted, and compilation is single-threaded. The golden
// test locks this down byte-for-byte across GOMAXPROCS settings.
//
// Relay determinism: a message from origin o to destination d is forwarded
// only along links that strictly decrease the topology distance to d, and
// each node picks its forwarding successors by a fixed preference order
// (descending Zipf weight, then ascending id) capped at the fanout. The
// forwarding DAG of an (o, d) pair is therefore a pure function of the
// topology: which nodes transmit, and to whom, never depends on delivery
// order, so per-kind message counts agree across all runtimes — including
// the concurrent ones — for lossless scenarios.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// Topology model names accepted by Spec.Topology ("" means full).
const (
	TopologyFull = "full"
	TopologyRing = "ring"
	TopologyWS   = "ws"
)

// Latency model names accepted by Spec.Latency ("" means none).
const (
	LatencyFixed    = "fixed"
	LatencyUniform  = "uniform"
	LatencyLongTail = "longtail"
)

// Spec describes a network scenario. The zero value is the trivial
// scenario: full mesh, no latency, no loss. Spec is comparable (all scalar
// fields), which the compile cache and the sweep cell map rely on.
type Spec struct {
	// Name, when set, overrides the generated Label in reports.
	Name string `json:"name,omitempty"`
	// Topology selects the graph model: "full" (or ""), "ring", or "ws"
	// (Watts–Strogatz: a ring lattice of Degree neighbours with each
	// clockwise edge rewired to a random far endpoint with probability
	// Rewire).
	Topology string `json:"topology,omitempty"`
	// Degree is the Watts–Strogatz lattice degree (even, default 8).
	Degree int `json:"degree,omitempty"`
	// Rewire is the Watts–Strogatz rewiring probability in [0, 1].
	Rewire float64 `json:"rewire,omitempty"`
	// ZipfS, when positive, gives nodes Zipf(s)-distributed load weights
	// (assigned by a seeded permutation, normalized to sum 1). The relay
	// prefers high-weight forwarders, making them traffic hubs.
	ZipfS float64 `json:"zipfS,omitempty"`
	// Latency selects the per-link delay model: "" (none), "fixed"
	// (BaseDelay on every link), "uniform" (a per-link compile-time draw in
	// [BaseDelay, MaxDelay]), or "longtail" (BaseDelay plus a TailProb
	// chance of TailDelay extra, judged per message).
	Latency   string  `json:"latency,omitempty"`
	BaseDelay int     `json:"baseDelay,omitempty"`
	MaxDelay  int     `json:"maxDelay,omitempty"`
	TailProb  float64 `json:"tailProb,omitempty"`
	TailDelay int     `json:"tailDelay,omitempty"`
	// Loss is the per-message drop probability applied on every link.
	Loss float64 `json:"loss,omitempty"`
	// Fanout caps how many distance-decreasing successors a node forwards a
	// relayed message to (default 2).
	Fanout int `json:"fanout,omitempty"`
	// TriggerAt is the logical time at which an adaptive adversary starts
	// silencing its targets (0 = from the start).
	TriggerAt int `json:"triggerAt,omitempty"`
	// Seed keys every draw the scenario makes. Zero means "inherit the run
	// seed" (resolved by the public Config before compilation).
	Seed uint64 `json:"seed,omitempty"`
}

// topology returns the effective topology name.
func (s Spec) topology() string {
	if s.Topology == "" {
		return TopologyFull
	}
	return s.Topology
}

// degree returns the effective Watts–Strogatz degree.
func (s Spec) degree() int {
	if s.Degree == 0 {
		return 8
	}
	return s.Degree
}

// EffectiveFanout returns the relay fanout in effect.
func (s Spec) EffectiveFanout() int {
	if s.Fanout <= 0 {
		return 2
	}
	return s.Fanout
}

// Validate checks the spec against a system of n nodes.
func (s Spec) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("scenario: need at least 2 nodes, have %d", n)
	}
	switch s.topology() {
	case TopologyFull, TopologyRing:
	case TopologyWS:
		k := s.degree()
		if k < 2 || k%2 != 0 {
			return fmt.Errorf("scenario: ws degree %d must be even and at least 2", k)
		}
		if k >= n {
			return fmt.Errorf("scenario: ws degree %d must be below n=%d", k, n)
		}
	default:
		return fmt.Errorf("scenario: unknown topology %q", s.Topology)
	}
	if s.Rewire < 0 || s.Rewire > 1 {
		return fmt.Errorf("scenario: rewire probability %v outside [0, 1]", s.Rewire)
	}
	if s.ZipfS < 0 {
		return fmt.Errorf("scenario: negative zipf exponent %v", s.ZipfS)
	}
	switch s.Latency {
	case "", LatencyFixed, LatencyUniform, LatencyLongTail:
	default:
		return fmt.Errorf("scenario: unknown latency model %q", s.Latency)
	}
	if s.BaseDelay < 0 || s.MaxDelay < 0 || s.TailDelay < 0 {
		return fmt.Errorf("scenario: negative delay knob")
	}
	if s.Latency == LatencyUniform && s.MaxDelay < s.BaseDelay {
		return fmt.Errorf("scenario: uniform latency MaxDelay %d below BaseDelay %d", s.MaxDelay, s.BaseDelay)
	}
	if s.TailProb < 0 || s.TailProb > 1 {
		return fmt.Errorf("scenario: tail probability %v outside [0, 1]", s.TailProb)
	}
	if s.Loss < 0 || s.Loss >= 1 {
		return fmt.Errorf("scenario: loss rate %v outside [0, 1)", s.Loss)
	}
	if s.Fanout < 0 {
		return fmt.Errorf("scenario: negative fanout %d", s.Fanout)
	}
	if s.TriggerAt < 0 {
		return fmt.Errorf("scenario: negative trigger time %d", s.TriggerAt)
	}
	return nil
}

// Label renders a compact human-readable summary (the sweep-cell label).
func (s Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	label := s.topology()
	if s.topology() == TopologyWS {
		label = fmt.Sprintf("ws%d", s.degree())
		if s.Rewire > 0 {
			label += fmt.Sprintf("r%.3g", s.Rewire)
		}
	}
	if s.ZipfS > 0 {
		label += fmt.Sprintf("/zipf%.3g", s.ZipfS)
	}
	switch s.Latency {
	case LatencyFixed:
		label += fmt.Sprintf("/fix%d", s.BaseDelay)
	case LatencyUniform:
		label += fmt.Sprintf("/uni%d-%d", s.BaseDelay, s.MaxDelay)
	case LatencyLongTail:
		label += fmt.Sprintf("/tail%.3g×%d", s.TailProb, s.TailDelay)
	}
	if s.Loss > 0 {
		label += fmt.Sprintf("/loss%.3g", s.Loss)
	}
	return label
}

// Adaptive target-ranking kinds (see Compiled.Rank).
const (
	RankDegree    = "degree"
	RankWeight    = "weight"
	RankOblivious = "oblivious"
	RankTraffic   = "traffic"
)

// Compiled is a scenario lowered for a system of n nodes. It is immutable
// after Compile and safe for concurrent use.
type Compiled struct {
	Spec Spec
	N    int
	// Adj holds each node's neighbours in relay preference order:
	// descending Zipf weight, ties by ascending id. For TopologyFull it is
	// nil — every pair is adjacent and the relay is never engaged.
	Adj [][]int
	// Dist is the all-pairs hop distance table (nil for TopologyFull,
	// where every distance is 1).
	Dist [][]uint16
	// Weights are the normalized per-node load weights (sum 1).
	Weights []float64
	// Links is the latency/loss lowering: one simnet.LinkFault per directed
	// topology edge with at least one active knob. Empty when the spec has
	// neither latency nor loss.
	Links []simnet.LinkFault
	// Diameter is the longest shortest path (1 for TopologyFull).
	Diameter int
	// rankings are the precomputed adaptive-adversary target orders.
	rankDegree    []int
	rankWeight    []int
	rankOblivious []int
}

// Distance returns the hop distance from u to v.
func (c *Compiled) Distance(u, v int) int {
	if u == v {
		return 0
	}
	if c.Dist == nil {
		return 1
	}
	return int(c.Dist[u][v])
}

// DegreeOf returns node id's neighbour count.
func (c *Compiled) DegreeOf(id int) int {
	if c.Adj == nil {
		return c.N - 1
	}
	return len(c.Adj[id])
}

// Rank returns the structural corruption ranking of the given kind
// (RankDegree, RankWeight or RankOblivious; RankTraffic is computed online
// by the relay from observed deliveries). The returned slice is shared —
// callers must not mutate it.
func (c *Compiled) Rank(kind string) []int {
	switch kind {
	case RankDegree:
		return c.rankDegree
	case RankWeight:
		return c.rankWeight
	case RankOblivious:
		return c.rankOblivious
	}
	return nil
}

// compileKey identifies one cache entry; Spec is comparable by design.
type compileKey struct {
	spec Spec
	n    int
}

type compileResult struct {
	c   *Compiled
	err error
}

var (
	cacheMu sync.Mutex
	cache   = map[compileKey]compileResult{}
)

// Compile lowers a spec for n nodes, memoized per (spec, n): validation,
// sweeps and runs all hit the same compiled artifact. It returns a
// descriptive error when the generated topology leaves nodes unreachable,
// so misconfigured sweeps fail at validate() time instead of hanging the
// termination oracle.
func Compile(spec Spec, n int) (*Compiled, error) {
	key := compileKey{spec: spec, n: n}
	cacheMu.Lock()
	if res, ok := cache[key]; ok {
		cacheMu.Unlock()
		return res.c, res.err
	}
	cacheMu.Unlock()
	c, err := compile(spec, n)
	cacheMu.Lock()
	cache[key] = compileResult{c: c, err: err}
	cacheMu.Unlock()
	return c, err
}

func compile(spec Spec, n int) (*Compiled, error) {
	if err := spec.Validate(n); err != nil {
		return nil, err
	}
	c := &Compiled{Spec: spec, N: n}
	c.Weights = weights(spec, n)

	if spec.topology() != TopologyFull {
		adj, err := buildAdjacency(spec, n)
		if err != nil {
			return nil, err
		}
		c.Adj = orderAdjacency(adj, c.Weights)
		dist, diam, err := allPairsBFS(spec, c.Adj)
		if err != nil {
			return nil, err
		}
		c.Dist, c.Diameter = dist, diam
	} else {
		c.Diameter = 1
	}

	c.Links = lowerLinks(spec, n, c.Adj)
	c.rankDegree = rankBy(n, func(a, b int) bool {
		da, db := c.DegreeOf(a), c.DegreeOf(b)
		if da != db {
			return da > db
		}
		if c.Weights[a] != c.Weights[b] {
			return c.Weights[a] > c.Weights[b]
		}
		return a < b
	})
	c.rankWeight = rankBy(n, func(a, b int) bool {
		if c.Weights[a] != c.Weights[b] {
			return c.Weights[a] > c.Weights[b]
		}
		return a < b
	})
	c.rankOblivious = prng.New(prng.DeriveKey(spec.Seed, "scenario/oblivious", uint64(n))).Perm(n)
	return c, nil
}

// weights returns the normalized per-node load weights: uniform when
// ZipfS is zero, otherwise Zipf(s) ranks scattered over node ids by a
// seeded permutation (so hubs are not always the low ids).
func weights(spec Spec, n int) []float64 {
	w := make([]float64, n)
	if spec.ZipfS == 0 {
		for i := range w {
			w[i] = 1 / float64(n)
		}
		return w
	}
	ranked := make([]float64, n)
	var sum float64
	for i := range ranked {
		ranked[i] = 1 / math.Pow(float64(i+1), spec.ZipfS)
		sum += ranked[i]
	}
	perm := prng.New(prng.DeriveKey(spec.Seed, "scenario/zipf", uint64(n))).Perm(n)
	for rank, id := range perm {
		w[id] = ranked[rank] / sum
	}
	return w
}

// buildAdjacency constructs the undirected neighbour sets.
func buildAdjacency(spec Spec, n int) ([]map[int]bool, error) {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	addEdge := func(u, v int) {
		adj[u][v] = true
		adj[v][u] = true
	}
	switch spec.topology() {
	case TopologyRing:
		for i := 0; i < n; i++ {
			addEdge(i, (i+1)%n)
		}
	case TopologyWS:
		k := spec.degree()
		for j := 1; j <= k/2; j++ {
			for i := 0; i < n; i++ {
				addEdge(i, (i+j)%n)
			}
		}
		if spec.Rewire > 0 {
			src := prng.New(prng.DeriveKey(spec.Seed, "scenario/ws", uint64(n)))
			// Classic Watts–Strogatz: each clockwise lattice edge (i, i+j)
			// is rewired, with probability Rewire, to (i, t) for a uniform
			// non-adjacent t — the edge count stays exactly n·k/2 and node
			// i keeps its own k/2 clockwise stubs, so min degree ≥ k/2.
			for j := 1; j <= k/2; j++ {
				for i := 0; i < n; i++ {
					if src.Float64() >= spec.Rewire {
						continue
					}
					old := (i + j) % n
					if !adj[i][old] {
						continue // already rewired away by an earlier pass
					}
					t := src.Intn(n)
					if t == i || adj[i][t] {
						continue // keep the lattice edge: no fresh endpoint drawn
					}
					delete(adj[i], old)
					delete(adj[old], i)
					addEdge(i, t)
				}
			}
		}
	}
	return adj, nil
}

// orderAdjacency converts neighbour sets to slices in relay preference
// order: descending weight, ties broken by ascending id.
func orderAdjacency(adj []map[int]bool, w []float64) [][]int {
	out := make([][]int, len(adj))
	for i, set := range adj {
		ns := make([]int, 0, len(set))
		for v := range set {
			ns = append(ns, v)
		}
		sort.Slice(ns, func(a, b int) bool {
			if w[ns[a]] != w[ns[b]] {
				return w[ns[a]] > w[ns[b]]
			}
			return ns[a] < ns[b]
		})
		out[i] = ns
	}
	return out
}

// allPairsBFS computes the hop-distance table and the diameter, failing
// with a descriptive error on disconnected graphs or diameters beyond the
// relay TTL budget (255, the RelayMsg wire field).
func allPairsBFS(spec Spec, adj [][]int) ([][]uint16, int, error) {
	n := len(adj)
	const unreached = ^uint16(0)
	dist := make([][]uint16, n)
	queue := make([]int, 0, n)
	diameter := 0
	for s := 0; s < n; s++ {
		d := make([]uint16, n)
		for i := range d {
			d[i] = unreached
		}
		d[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if d[v] == unreached {
					d[v] = d[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for v, dv := range d {
			if dv == unreached {
				return nil, 0, fmt.Errorf(
					"scenario %q: topology %s is disconnected: node %d is unreachable from node %d (the termination oracle would hang; raise the degree, lower the rewiring, or change the seed)",
					spec.Label(), spec.topology(), v, s)
			}
			if int(dv) > diameter {
				diameter = int(dv)
			}
		}
		dist[s] = d
	}
	if diameter > 255 {
		return nil, 0, fmt.Errorf("scenario %q: diameter %d exceeds the relay TTL budget of 255", spec.Label(), diameter)
	}
	return dist, diameter, nil
}

// lowerLinks produces the FaultPlan link faults realizing the latency/loss
// model on every directed topology edge. Per-link draws (the uniform
// model's fixed delay) hash (Seed, from, to), so they are a pure function
// of the spec.
func lowerLinks(spec Spec, n int, adj [][]int) []simnet.LinkFault {
	if spec.Latency == "" && spec.Loss == 0 {
		return nil
	}
	mk := func(u, v int) (simnet.LinkFault, bool) {
		lf := simnet.LinkFault{From: u, To: v, Loss: spec.Loss}
		switch spec.Latency {
		case LatencyFixed:
			lf.Delay = spec.BaseDelay
		case LatencyUniform:
			span := spec.MaxDelay - spec.BaseDelay
			h := prng.Hash3(prng.DeriveKey(spec.Seed, "scenario/latency", uint64(n)), uint64(u), uint64(v))
			lf.Delay = spec.BaseDelay + int(h%uint64(span+1))
		case LatencyLongTail:
			lf.Delay = spec.BaseDelay
			lf.TailProb = spec.TailProb
			lf.TailDelay = spec.TailDelay
		}
		active := lf.Delay > 0 || lf.Jitter > 0 || (lf.TailProb > 0 && lf.TailDelay > 0) || lf.Loss > 0
		return lf, active
	}
	var links []simnet.LinkFault
	if adj == nil { // full mesh
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				if lf, ok := mk(u, v); ok {
					links = append(links, lf)
				}
			}
		}
		return links
	}
	for u := range adj {
		for _, v := range adj[u] {
			if lf, ok := mk(u, v); ok {
				links = append(links, lf)
			}
		}
	}
	return links
}

// rankBy returns the node ids sorted by the given strict order.
func rankBy(n int, less func(a, b int) bool) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return less(ids[a], ids[b]) })
	return ids
}
