package server

import (
	"net"
	"sync"
	"time"
)

// pending is one admitted client append: queued on its session, batched
// round-robin into an instance, acked when that instance commits.
type pending struct {
	sess    *session
	req     uint64
	payload []byte
	queued  time.Time
}

// session is one client connection's admission state: a bounded FIFO of
// not-yet-batched appends, and a write lock serializing ack frames (the
// commit path and the read loop both write to the connection).
type session struct {
	id   uint64
	conn net.Conn

	wmu sync.Mutex

	queue []*pending // guarded by the admission mutex
}

// write sends one frame to the client, serialized against concurrent
// ack writers. The deadline bounds how long a wedged client can stall
// the commit observer. Errors are the connection's problem: the client
// is gone and the commit it missed is recoverable through Status.
func (s *session) write(msg any) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_ = s.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	return WriteClientMsg(s.conn, msg)
}

// admission is the daemon's ingest gate: per-client bounded queues (the
// overload contract — a client that outruns the pipeline gets CodeOverload
// back, it is never silently buffered without bound) and a fair
// round-robin batch former (one payload per client per pass, so a
// firehose client cannot starve a trickle client).
type admission struct {
	maxQueue int
	maxBatch int

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[uint64]*session
	order    []uint64 // round-robin visit order (session ids)
	rr       int
	queued   int
	inflight map[uint64][]*pending // instance seq → batch members
	closed   bool
	nextID   uint64
}

func newAdmission(maxQueue, maxBatch int) *admission {
	a := &admission{
		maxQueue: maxQueue,
		maxBatch: maxBatch,
		sessions: make(map[uint64]*session),
		inflight: make(map[uint64][]*pending),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// attach registers a client connection and returns its session.
func (a *admission) attach(conn net.Conn) *session {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	s := &session{id: a.nextID, conn: conn}
	a.sessions[s.id] = s
	a.order = append(a.order, s.id)
	return s
}

// detach drops a departed client: its queued (unbatched) appends are
// abandoned — the connection their acks would ride is gone. Inflight
// batch members keep their session pointer; the commit-path write simply
// fails.
func (a *admission) detach(s *session) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.sessions[s.id]; !ok {
		return
	}
	delete(a.sessions, s.id)
	for i, id := range a.order {
		if id == s.id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	a.queued -= len(s.queue)
	s.queue = nil
}

// enqueue admits one append, returning CodeOK (queued, ack follows at
// commit), CodeOverload (the session's queue is full) or CodeShutdown.
func (a *admission) enqueue(s *session, req uint64, payload []byte) byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return CodeShutdown
	}
	if len(s.queue) >= a.maxQueue {
		return CodeOverload
	}
	s.queue = append(s.queue, &pending{sess: s, req: req, payload: payload, queued: time.Now()})
	a.queued++
	a.cond.Signal()
	return CodeOK
}

// nextBatch blocks until work is queued, then forms a batch round-robin:
// repeated passes over the sessions, one payload each, until maxBatch or
// every queue is dry. Returns nil exactly when the admission gate is
// closed and fully drained — the batcher's exit signal.
func (a *admission) nextBatch() []*pending {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.queued == 0 && !a.closed {
		a.cond.Wait()
	}
	if a.queued == 0 {
		return nil
	}
	var batch []*pending
	for a.queued > 0 && len(batch) < a.maxBatch && len(a.order) > 0 {
		took := false
		for i := 0; i < len(a.order) && a.queued > 0 && len(batch) < a.maxBatch; i++ {
			s := a.sessions[a.order[a.rr%len(a.order)]]
			a.rr++
			if s == nil || len(s.queue) == 0 {
				continue
			}
			p := s.queue[0]
			s.queue = s.queue[1:]
			a.queued--
			batch = append(batch, p)
			took = true
		}
		if !took {
			break
		}
	}
	return batch
}

// sessionCount reports open client sessions.
func (a *admission) sessionCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.sessions)
}

// track parks a batch under its assigned instance sequence until commit.
func (a *admission) track(seq uint64, batch []*pending) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight[seq] = batch
}

// resolve claims the batch committed as seq (nil when the batch came from
// a peer daemon's client, or was repaired after a restart).
func (a *admission) resolve(seq uint64) []*pending {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.inflight[seq]
	delete(a.inflight, seq)
	return b
}

// close shuts the gate: subsequent enqueues are rejected with
// CodeShutdown, queued work stays for the batcher to drain, and the
// batcher is woken so it can observe the close.
func (a *admission) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	a.cond.Broadcast()
}

// inflightCount reports batches awaiting their commit acks — the
// shutdown path waits for zero before closing client connections, so an
// admitted append is never orphaned without its ack.
func (a *admission) inflightCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.inflight)
}

// abandonInflight claims every inflight batch at once — the
// shutdown-abort path, when the replica failed and commits will never
// arrive.
func (a *admission) abandonInflight() []*pending {
	a.mu.Lock()
	defer a.mu.Unlock()
	var all []*pending
	for seq, b := range a.inflight {
		all = append(all, b...)
		delete(a.inflight, seq)
	}
	return all
}
