package server

import (
	"fmt"
	"net"
	"testing"
)

func pipeSession(t *testing.T, a *admission) *session {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return a.attach(c1)
}

// TestAdmissionOverload: the per-session queue is bounded; the
// maxQueue+1'th enqueue sheds with CodeOverload, and other sessions are
// unaffected.
func TestAdmissionOverload(t *testing.T) {
	a := newAdmission(3, 16)
	s1 := pipeSession(t, a)
	s2 := pipeSession(t, a)
	for i := 0; i < 3; i++ {
		if code := a.enqueue(s1, uint64(i), []byte("x")); code != CodeOK {
			t.Fatalf("enqueue %d: %s", i, CodeString(code))
		}
	}
	if code := a.enqueue(s1, 3, []byte("x")); code != CodeOverload {
		t.Fatalf("over-limit enqueue: %s, want overload", CodeString(code))
	}
	if code := a.enqueue(s2, 0, []byte("y")); code != CodeOK {
		t.Fatalf("other session sheds too: %s", CodeString(code))
	}
}

// TestAdmissionRoundRobin: batches interleave sessions fairly — a
// firehose session cannot starve a trickle session out of a batch.
func TestAdmissionRoundRobin(t *testing.T) {
	a := newAdmission(64, 4)
	hose := pipeSession(t, a)
	drip := pipeSession(t, a)
	for i := 0; i < 10; i++ {
		a.enqueue(hose, uint64(i), []byte(fmt.Sprintf("hose-%d", i)))
	}
	a.enqueue(drip, 0, []byte("drip"))
	batch := a.nextBatch()
	if len(batch) != 4 {
		t.Fatalf("batch size %d, want 4", len(batch))
	}
	var sawDrip bool
	for _, p := range batch {
		if p.sess == drip {
			sawDrip = true
		}
	}
	if !sawDrip {
		t.Fatal("round-robin batch starved the trickle session")
	}
	// FIFO within a session.
	if string(batch[0].payload) != "hose-0" && string(batch[1].payload) != "hose-0" {
		t.Fatal("session queue is not FIFO")
	}
}

// TestAdmissionShutdownDrain: close rejects new enqueues with
// CodeShutdown but leaves queued work for the batcher; nextBatch returns
// the remainder, then nil.
func TestAdmissionShutdownDrain(t *testing.T) {
	a := newAdmission(8, 16)
	s := pipeSession(t, a)
	a.enqueue(s, 1, []byte("queued"))
	a.close()
	if code := a.enqueue(s, 2, []byte("late")); code != CodeShutdown {
		t.Fatalf("post-close enqueue: %s, want shutdown", CodeString(code))
	}
	batch := a.nextBatch()
	if len(batch) != 1 || batch[0].req != 1 {
		t.Fatalf("drain batch = %+v", batch)
	}
	if got := a.nextBatch(); got != nil {
		t.Fatalf("drained admission returned %+v, want nil", got)
	}
}

// TestAdmissionDetachDropsQueue: a departed session's unbatched appends
// are abandoned, and inflight tracking resolves exactly once.
func TestAdmissionDetachDropsQueue(t *testing.T) {
	a := newAdmission(8, 16)
	s1 := pipeSession(t, a)
	s2 := pipeSession(t, a)
	a.enqueue(s1, 1, []byte("a"))
	a.enqueue(s2, 2, []byte("b"))
	a.detach(s1)
	batch := a.nextBatch()
	if len(batch) != 1 || batch[0].req != 2 {
		t.Fatalf("batch after detach = %+v", batch)
	}
	a.track(7, batch)
	if got := a.inflightCount(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	if got := a.resolve(7); len(got) != 1 {
		t.Fatalf("resolve = %+v", got)
	}
	if got := a.resolve(7); got != nil {
		t.Fatalf("double resolve = %+v", got)
	}
	if got := a.sessionCount(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
}
