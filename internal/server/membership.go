package server

import (
	"sync"
	"time"
)

// membership tracks the epoch-stamped peer set. Every daemon runs a join
// loop — a Join handshake to each peer once per period — which doubles as
// the liveness probe: a peer is alive while its last handshake (in either
// direction) is within the TTL. Epochs order configurations: a handshake
// stamped below the local epoch is rejected with CodeStaleEpoch (the
// sender is running an outdated peer set and must not be folded back in),
// and a higher stamp adopts the newer configuration, clearing departures
// recorded under the old one.
type membership struct {
	self    int
	daemons int
	ttl     time.Duration

	mu       sync.Mutex
	epoch    uint64
	lastSeen map[int]time.Time
	left     map[int]bool
}

func newMembership(self, daemons int, epoch uint64, ttl time.Duration) *membership {
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	return &membership{
		self:     self,
		daemons:  daemons,
		ttl:      ttl,
		epoch:    epoch,
		lastSeen: make(map[int]time.Time),
		left:     make(map[int]bool),
	}
}

// Epoch returns the current configuration epoch.
func (m *membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// HandleJoin processes a peer's join handshake (also its liveness probe).
func (m *membership) HandleJoin(epoch uint64, node uint32) JoinAck {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(node) >= m.daemons || int(node) == m.self {
		return JoinAck{Code: CodeFailed, Epoch: m.epoch, PeersAlive: m.aliveLocked()}
	}
	if epoch < m.epoch {
		return JoinAck{Code: CodeStaleEpoch, Epoch: m.epoch, PeersAlive: m.aliveLocked()}
	}
	if epoch > m.epoch {
		m.epoch = epoch
		m.left = make(map[int]bool)
	}
	delete(m.left, int(node))
	m.lastSeen[int(node)] = time.Now()
	return JoinAck{Code: CodeOK, Epoch: m.epoch, PeersAlive: m.aliveLocked()}
}

// HandleLeave processes a peer's graceful departure: it drops out of the
// alive set immediately rather than aging out through the TTL.
func (m *membership) HandleLeave(epoch uint64, node uint32) LeaveAck {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(node) >= m.daemons || int(node) == m.self {
		return LeaveAck{Code: CodeFailed}
	}
	if epoch < m.epoch {
		return LeaveAck{Code: CodeStaleEpoch}
	}
	if epoch > m.epoch {
		m.epoch = epoch
	}
	m.left[int(node)] = true
	delete(m.lastSeen, int(node))
	return LeaveAck{Code: CodeOK}
}

// Observe records a successful handshake initiated by us: the peer
// answered, so it is alive, and if it advertises a newer epoch we adopt
// it.
func (m *membership) Observe(node int, epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch > m.epoch {
		m.epoch = epoch
		m.left = make(map[int]bool)
	}
	if node != m.self && node >= 0 && node < m.daemons && !m.left[node] {
		m.lastSeen[node] = time.Now()
	}
}

// Alive counts the daemons currently in the live peer set: self plus
// every peer heard from within the TTL that has not departed.
func (m *membership) Alive() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.aliveLocked())
}

func (m *membership) aliveLocked() uint32 {
	alive := uint32(1) // self
	cutoff := time.Now().Add(-m.ttl)
	for node, seen := range m.lastSeen {
		if !m.left[node] && seen.After(cutoff) {
			alive++
		}
	}
	return alive
}
