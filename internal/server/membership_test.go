package server

import (
	"testing"
	"time"
)

// TestMembershipEpochs: same-epoch joins are accepted, stale epochs are
// rejected with CodeStaleEpoch, and newer epochs are adopted (clearing
// departures recorded under the old configuration).
func TestMembershipEpochs(t *testing.T) {
	m := newMembership(0, 4, 5, time.Second)
	if ack := m.HandleJoin(5, 1); ack.Code != CodeOK || ack.Epoch != 5 {
		t.Fatalf("same-epoch join: %+v", ack)
	}
	if ack := m.HandleJoin(4, 2); ack.Code != CodeStaleEpoch || ack.Epoch != 5 {
		t.Fatalf("stale join: %+v", ack)
	}
	if got := m.Alive(); got != 2 { // self + daemon 1
		t.Fatalf("alive = %d, want 2", got)
	}
	// Daemon 2 leaves under epoch 5, then daemon 3 joins at epoch 6: the
	// new configuration forgets the old departure set.
	if ack := m.HandleJoin(5, 2); ack.Code != CodeOK {
		t.Fatalf("join 2: %+v", ack)
	}
	if ack := m.HandleLeave(5, 2); ack.Code != CodeOK {
		t.Fatalf("leave 2: %+v", ack)
	}
	if got := m.Alive(); got != 2 {
		t.Fatalf("alive after leave = %d, want 2", got)
	}
	if ack := m.HandleJoin(6, 3); ack.Code != CodeOK || ack.Epoch != 6 {
		t.Fatalf("newer-epoch join: %+v", ack)
	}
	if m.Epoch() != 6 {
		t.Fatalf("epoch = %d, want 6", m.Epoch())
	}
	// The old-epoch departure was cleared: daemon 2 can rejoin at 6.
	if ack := m.HandleJoin(6, 2); ack.Code != CodeOK {
		t.Fatalf("rejoin after epoch bump: %+v", ack)
	}
	// And a join stamped with the superseded epoch is now stale.
	if ack := m.HandleJoin(5, 1); ack.Code != CodeStaleEpoch {
		t.Fatalf("join at superseded epoch: %+v", ack)
	}
}

// TestMembershipLiveness: peers age out of the alive set after the TTL;
// an observed handshake refreshes them; self and out-of-range ids are
// rejected.
func TestMembershipLiveness(t *testing.T) {
	m := newMembership(0, 3, 1, 50*time.Millisecond)
	m.HandleJoin(1, 1)
	m.Observe(2, 1)
	if got := m.Alive(); got != 3 {
		t.Fatalf("alive = %d, want 3", got)
	}
	time.Sleep(80 * time.Millisecond)
	if got := m.Alive(); got != 1 {
		t.Fatalf("alive after TTL = %d, want 1 (self)", got)
	}
	m.Observe(1, 1)
	if got := m.Alive(); got != 2 {
		t.Fatalf("alive after refresh = %d, want 2", got)
	}
	if ack := m.HandleJoin(1, 0); ack.Code != CodeFailed {
		t.Fatalf("self-join: %+v", ack)
	}
	if ack := m.HandleJoin(1, 9); ack.Code != CodeFailed {
		t.Fatalf("out-of-range join: %+v", ack)
	}
	// Observing a newer epoch adopts it.
	m.Observe(1, 7)
	if m.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", m.Epoch())
	}
}
