// Package server hosts one slice of a fast-BA decision log as a
// standalone OS process: the balogd daemon. A cluster of D daemons shares
// one protocol population of n = D·k nodes — each daemon runs k real
// protocol nodes over the supervised TCP mesh (internal/netrun partial
// hosting) — plus one durable WAL (internal/store), a catch-up listener,
// a client/admin listener (connection mux over the frame codec below) and
// a Prometheus /metrics endpoint (internal/metrics).
//
// The protocol geometry needs n ≥ 8 and tolerates < n/3 silent nodes, so
// a ≥4-daemon cluster keeps committing while any single daemon is down
// (k/n = 1/D ≤ 1/4 silenced), and a restarted daemon closes its gap
// through catch-up transfer — the multi-process composition of PR 6
// (durable store + catch-up) and PR 7 (supervised reconnecting links).
package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Client/admin frame kinds. Like internal/wire's kind bytes they are a
// serialized contract: values are never reused. The 0xA0 block is
// disjoint from the node-mesh kinds (0x01–0x80), so a client frame
// accidentally written to a mesh listener can never be misparsed as
// protocol traffic.
const (
	// KindHello/KindHelloAck open a client session: the daemon identifies
	// itself, its epoch, its leadership and the leader's client address.
	KindHello    byte = 0xA0
	KindHelloAck byte = 0xA1
	// KindAppend/KindAppendAck is the ingest path: one client payload per
	// request, resolved with the committed sequence number (or an error
	// code — overload, not-leader, shutdown).
	KindAppend    byte = 0xA2
	KindAppendAck byte = 0xA3
	// KindStatus/KindStatusAck is the one-shot health/progress probe the
	// harness and the status ticker of peers use.
	KindStatus    byte = 0xA4
	KindStatusAck byte = 0xA5
	// KindJoin/KindJoinAck is the membership handshake: epoch-stamped,
	// rejecting stale epochs. Daemons re-join periodically, so the
	// handshake doubles as a membership-level liveness signal.
	KindJoin    byte = 0xA6
	KindJoinAck byte = 0xA7
	// KindLeave/KindLeaveAck is the advisory graceful-departure note a
	// daemon sends its peers on shutdown.
	KindLeave    byte = 0xA8
	KindLeaveAck byte = 0xA9
)

// Response codes.
const (
	CodeOK byte = iota
	// CodeOverload: admission control shed the request (bounded per-client
	// queue was full). The SDK surfaces this as ErrOverload.
	CodeOverload
	// CodeNotLeader: appends must go to the leader; the hello ack carries
	// its address.
	CodeNotLeader
	// CodeShutdown: the daemon is draining; the request was not accepted.
	CodeShutdown
	// CodeStaleEpoch: the peer's configuration epoch is older than ours —
	// a misconfigured or ancient daemon that must not rejoin the set.
	CodeStaleEpoch
	// CodeFailed: the replica failed (instance timeout, store error).
	CodeFailed
)

// CodeString names a response code for errors and logs.
func CodeString(code byte) string {
	switch code {
	case CodeOK:
		return "ok"
	case CodeOverload:
		return "overload"
	case CodeNotLeader:
		return "not-leader"
	case CodeShutdown:
		return "shutdown"
	case CodeStaleEpoch:
		return "stale-epoch"
	case CodeFailed:
		return "failed"
	default:
		return fmt.Sprintf("code-%#x", code)
	}
}

// maxClientFrame bounds accepted client frames (a payload plus framing
// slack; the store's per-record cap is far larger, but a single client
// payload this size is a protocol abuse, not a workload).
const maxClientFrame = 1 << 20

// Hello opens a session.
type Hello struct{}

// HelloAck identifies the daemon to a client.
type HelloAck struct {
	Node       uint32 // daemon index
	Epoch      uint64
	Leader     bool
	LeaderAddr string // the leader's client address ("" when unknown)
	Frontier   uint64
}

// Append submits one payload under a client-chosen request id.
type Append struct {
	Req     uint64
	Payload []byte
}

// AppendAck resolves one append.
type AppendAck struct {
	Req  uint64
	Code byte
	// Seq is the committed sequence number (valid when Code == CodeOK).
	Seq uint64
	// LatencyNs is the daemon-side admission-to-commit latency.
	LatencyNs int64
}

// Status asks for a progress snapshot.
type Status struct{}

// StatusAck is the daemon's progress snapshot.
type StatusAck struct {
	Node       uint32
	Epoch      uint64
	Leader     bool
	Frontier   uint64
	Recovered  uint64 // entries seeded from the WAL at startup
	Repaired   uint64 // entries committed through peer catch-up repair
	PeersAlive uint32
	Sessions   uint32
}

// Join is the epoch-stamped membership handshake.
type Join struct {
	Epoch uint64
	Node  uint32
}

// JoinAck answers a join.
type JoinAck struct {
	Code       byte
	Epoch      uint64
	PeersAlive uint32
}

// Leave is the advisory departure note.
type Leave struct {
	Epoch uint64
	Node  uint32
}

// LeaveAck acknowledges a leave.
type LeaveAck struct {
	Code byte
}

// AppendClientMsg appends one framed client/admin message to buf:
// u32 frame length (kind + payload), kind byte, payload.
func AppendClientMsg(buf []byte, msg any) ([]byte, error) {
	mark := len(buf)
	buf = append(buf, 0, 0, 0, 0) // frame length, patched below
	switch m := msg.(type) {
	case Hello:
		buf = append(buf, KindHello)
	case HelloAck:
		buf = append(buf, KindHelloAck)
		buf = binary.LittleEndian.AppendUint32(buf, m.Node)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf = appendBool(buf, m.Leader)
		buf = appendLString(buf, m.LeaderAddr)
		buf = binary.LittleEndian.AppendUint64(buf, m.Frontier)
	case Append:
		buf = append(buf, KindAppend)
		buf = binary.LittleEndian.AppendUint64(buf, m.Req)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Payload)))
		buf = append(buf, m.Payload...)
	case AppendAck:
		buf = append(buf, KindAppendAck)
		buf = binary.LittleEndian.AppendUint64(buf, m.Req)
		buf = append(buf, m.Code)
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.LatencyNs))
	case Status:
		buf = append(buf, KindStatus)
	case StatusAck:
		buf = append(buf, KindStatusAck)
		buf = binary.LittleEndian.AppendUint32(buf, m.Node)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf = appendBool(buf, m.Leader)
		buf = binary.LittleEndian.AppendUint64(buf, m.Frontier)
		buf = binary.LittleEndian.AppendUint64(buf, m.Recovered)
		buf = binary.LittleEndian.AppendUint64(buf, m.Repaired)
		buf = binary.LittleEndian.AppendUint32(buf, m.PeersAlive)
		buf = binary.LittleEndian.AppendUint32(buf, m.Sessions)
	case Join:
		buf = append(buf, KindJoin)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint32(buf, m.Node)
	case JoinAck:
		buf = append(buf, KindJoinAck)
		buf = append(buf, m.Code)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint32(buf, m.PeersAlive)
	case Leave:
		buf = append(buf, KindLeave)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint32(buf, m.Node)
	case LeaveAck:
		buf = append(buf, KindLeaveAck)
		buf = append(buf, m.Code)
	default:
		return buf[:mark], fmt.Errorf("server: unknown client message %T", msg)
	}
	binary.LittleEndian.PutUint32(buf[mark:mark+4], uint32(len(buf)-mark-4))
	return buf, nil
}

// WriteClientMsg frames and writes one message. The caller serializes
// writers per connection.
func WriteClientMsg(conn net.Conn, msg any) error {
	buf, err := AppendClientMsg(nil, msg)
	if err != nil {
		return err
	}
	_, err = conn.Write(buf)
	return err
}

// ReadClientMsg reads and decodes one framed client/admin message.
func ReadClientMsg(r io.Reader) (any, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err
	}
	size := int(binary.LittleEndian.Uint32(header[:]))
	if size == 0 || size > maxClientFrame {
		return nil, fmt.Errorf("server: client frame size %d", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return decodeClientMsg(frame)
}

func decodeClientMsg(frame []byte) (any, error) {
	d := cdecoder{buf: frame[1:]}
	var msg any
	switch kind := frame[0]; kind {
	case KindHello:
		msg = Hello{}
	case KindHelloAck:
		m := HelloAck{Node: d.u32(), Epoch: d.u64(), Leader: d.bool()}
		m.LeaderAddr = d.lstring()
		m.Frontier = d.u64()
		msg = m
	case KindAppend:
		msg = Append{Req: d.u64(), Payload: d.bytes()}
	case KindAppendAck:
		msg = AppendAck{Req: d.u64(), Code: d.u8(), Seq: d.u64(), LatencyNs: int64(d.u64())}
	case KindStatus:
		msg = Status{}
	case KindStatusAck:
		msg = StatusAck{
			Node: d.u32(), Epoch: d.u64(), Leader: d.bool(), Frontier: d.u64(),
			Recovered: d.u64(), Repaired: d.u64(), PeersAlive: d.u32(), Sessions: d.u32(),
		}
	case KindJoin:
		msg = Join{Epoch: d.u64(), Node: d.u32()}
	case KindJoinAck:
		msg = JoinAck{Code: d.u8(), Epoch: d.u64(), PeersAlive: d.u32()}
	case KindLeave:
		msg = Leave{Epoch: d.u64(), Node: d.u32()}
	case KindLeaveAck:
		msg = LeaveAck{Code: d.u8()}
	default:
		return nil, fmt.Errorf("server: unknown client frame kind %#x", kind)
	}
	if d.err != nil {
		return nil, fmt.Errorf("server: decode client frame %#x: %w", frame[0], d.err)
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("server: decode client frame %#x: %d trailing bytes", frame[0], len(d.buf)-d.pos)
	}
	return msg, nil
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendLString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// cdecoder is a cursor with sticky errors over a client frame payload.
type cdecoder struct {
	buf []byte
	pos int
	err error
}

func (d *cdecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at offset %d (need %d of %d)", d.pos, n, len(d.buf))
		return nil
	}
	out := d.buf[d.pos : d.pos+n]
	d.pos += n
	return out
}

func (d *cdecoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *cdecoder) bool() bool { return d.u8() != 0 }

func (d *cdecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *cdecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *cdecoder) bytes() []byte {
	n := int(d.u32())
	b := d.take(n)
	if d.err != nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *cdecoder) lstring() string {
	b := d.take(2)
	if b == nil {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(b))
	s := d.take(n)
	if d.err != nil {
		return ""
	}
	return string(s)
}
