package server

import (
	"bytes"
	"net"
	"reflect"
	"testing"
)

// allClientMessages is one value of every client/admin message type, with
// every field populated (round-trip must preserve all of them).
var allClientMessages = []any{
	Hello{},
	HelloAck{Node: 3, Epoch: 9, Leader: true, LeaderAddr: "127.0.0.1:4100", Frontier: 77},
	HelloAck{}, // empty leader addr
	Append{Req: 12, Payload: []byte("payload")},
	Append{Req: 13, Payload: nil},
	AppendAck{Req: 12, Code: CodeOK, Seq: 41, LatencyNs: 1_500_000},
	AppendAck{Req: 14, Code: CodeOverload},
	Status{},
	StatusAck{Node: 2, Epoch: 5, Leader: false, Frontier: 100, Recovered: 60, Repaired: 3, PeersAlive: 4, Sessions: 7},
	Join{Epoch: 8, Node: 1},
	JoinAck{Code: CodeStaleEpoch, Epoch: 9, PeersAlive: 3},
	Leave{Epoch: 8, Node: 2},
	LeaveAck{Code: CodeOK},
}

// TestClientProtoRoundTrip: every message survives encode → decode
// byte-exactly, including over a pipelined stream.
func TestClientProtoRoundTrip(t *testing.T) {
	var stream []byte
	for _, msg := range allClientMessages {
		buf, err := AppendClientMsg(nil, msg)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		got, err := decodeClientMsg(buf[4:])
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		want := msg
		// nil and empty payloads are wire-identical; both decode to nil.
		if a, ok := want.(Append); ok && len(a.Payload) == 0 {
			a.Payload = nil
			want = a
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %#v, want %#v", got, want)
		}
		stream = append(stream, buf...)
	}
	r := bytes.NewReader(stream)
	for i := range allClientMessages {
		if _, err := ReadClientMsg(r); err != nil {
			t.Fatalf("stream message %d: %v", i, err)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d stream bytes left over", r.Len())
	}
}

// TestClientProtoRejects: truncated frames, trailing garbage, unknown
// kinds and oversized frames all error instead of misparsing.
func TestClientProtoRejects(t *testing.T) {
	full, err := AppendClientMsg(nil, StatusAck{Node: 1, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full)-4; cut++ {
		if _, err := decodeClientMsg(full[4 : 4+cut]); err == nil {
			t.Errorf("truncated frame (%d of %d payload bytes) decoded", cut, len(full)-4)
		}
	}
	if _, err := decodeClientMsg(append(full[4:], 0xFF)); err == nil {
		t.Error("frame with trailing garbage decoded")
	}
	if _, err := decodeClientMsg([]byte{0x42}); err == nil {
		t.Error("unknown kind decoded")
	}
	if _, err := ReadClientMsg(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0x7F})); err == nil {
		t.Error("oversized frame accepted")
	}
	if _, err := ReadClientMsg(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
}

// TestClientProtoOverSocket: write/read over a real TCP connection.
func TestClientProtoOverSocket(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		msg, err := ReadClientMsg(conn)
		if err != nil {
			done <- err
			return
		}
		a, ok := msg.(Append)
		if !ok {
			done <- err
			return
		}
		done <- WriteClientMsg(conn, AppendAck{Req: a.Req, Code: CodeOK, Seq: 5})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteClientMsg(conn, Append{Req: 9, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadClientMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := reply.(AppendAck); !ok || ack.Req != 9 || ack.Seq != 5 {
		t.Fatalf("reply = %#v", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
