package server

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/pipeline"
	"github.com/fastba/fastba/internal/simnet"
	"github.com/fastba/fastba/internal/store"
)

// ErrNotLeader reports an append on a follower replica.
var ErrNotLeader = fmt.Errorf("server: not the leader")

// ErrReplicaClosed reports an operation on a cleanly closed replica.
var ErrReplicaClosed = fmt.Errorf("server: replica closed")

// ReplicaConfig parameterizes one daemon's slice of the distributed
// decision log.
type ReplicaConfig struct {
	// Nodes is the global population n = Daemons·PerDaemon; Daemon this
	// process's index; PerDaemon the nodes hosted per daemon.
	Nodes     int
	Daemons   int
	Daemon    int
	PerDaemon int
	// Leader marks the sequencing daemon (daemon 0 by convention): it
	// assigns instance sequence numbers and broadcasts LogOpen.
	Leader bool
	// Params is the protocol geometry (zero value: core.DefaultParams).
	Params core.Params
	// Seed keys the shared derivations; it must be identical on every
	// daemon of a cluster.
	Seed uint64
	// CorruptFrac and KnowFrac mirror pipeline.Config.
	CorruptFrac float64
	KnowFrac    float64
	// Depth bounds the leader's concurrently open instances.
	Depth int
	// CommitFraction is the fraction of this daemon's correct nodes that
	// must decide before the daemon commits locally. The default (zero) is
	// one decider: a single certified decision already carries the poll
	// quorum certificate, and the randomized protocol only guarantees
	// almost-everywhere decisions — at small n a daemon that waits for all
	// of its local nodes stalls on every per-node wedge. Catch-up repair
	// covers a daemon whose local nodes all wedged.
	CommitFraction float64
	// InstanceTimeout fails the leader when its head instance does not
	// commit in time (default 30s). Followers never fail on a stall — they
	// repair from peers instead.
	InstanceTimeout time.Duration
	// ReproposeAfter is how long the leader lets its head instance sit
	// undecided before re-broadcasting the open with a bumped attempt
	// (default 2s). A reopen rebuilds undecided protocol nodes under fresh
	// poll labels — the retry that turns the protocol's almost-everywhere
	// guarantee into daemon-level liveness — and re-delivers the open to
	// daemons that missed the original broadcast (a restart, a dropped
	// dead-link frame).
	ReproposeAfter time.Duration
	// Store is this daemon's durable WAL (required).
	Store *store.Store
	// Net must carry the partial-hosting topology (Hosted/Addrs) of this
	// daemon's node slice.
	Net netrun.Options
	// CatchupAddr is this daemon's fixed catch-up listen address;
	// PeerCatchup the peers' catch-up addresses (self excluded).
	CatchupAddr string
	PeerCatchup []string
	// RepairEvery is the stall-scan period (default 250ms); StallAfter the
	// no-progress window after which a repair fetch fires (default 1s).
	RepairEvery time.Duration
	StallAfter  time.Duration
	// OnCommit observes every committed entry in sequence order from the
	// replica's commit goroutine; repaired reports a commit taken from a
	// peer's log (catch-up) rather than local decisions.
	OnCommit func(e pipeline.Entry, repaired bool)
}

// rinst is one open (not yet committed) agreement instance on this
// daemon.
type rinst struct {
	seq      uint64
	proposed bitstring.String
	payloads [][]byte
	opened   time.Time
	lastOpen time.Time // last (re)open — paces the repropose backoff
	attempt  uint32    // current run of the randomized protocol

	decided      map[int]bool // node id → decided (dedups across reopens)
	values       map[bitstring.MapKey]int
	value        bitstring.String
	valueCount   int
	certDeficits int

	slot      bool          // holds one of the leader's Depth tokens
	committed chan struct{} // closed when the instance commits or the replica fails
}

// Replica runs one daemon's slice of the decision log: k local protocol
// nodes on a partially hosted TCP mesh, a local in-order commit frontier
// with persist-before-surface, and a catch-up repair loop that closes
// gaps (a restart, a missed broadcast) from peer daemons' committed logs.
type Replica struct {
	cfg      ReplicaConfig
	params   core.Params
	corrupt  []bool
	localIDs []int
	need     int // local deciders required to commit
	repFrom  int // the local node id LogOpen broadcasts are sent from

	mux     []*pipeline.MuxNode
	cluster *netrun.Cluster

	catchupAddr string
	recovered   int

	slots   chan struct{}
	wake    chan struct{}
	done    chan struct{}
	failCh  chan struct{}
	workers sync.WaitGroup

	mu          sync.Mutex
	nextSeq     uint64
	commitSeq   uint64
	open        map[uint64]*rinst
	repaired    map[uint64]store.Record
	nRepaired   int
	nReproposed int
	entries     []pipeline.Entry
	failed      error
	closed      bool

	teardown sync.Once
}

// NewReplica validates the configuration, seeds the committed prefix from
// the store and assembles the partially hosted cluster. The replica is
// inert until Start.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Daemons < 1 || cfg.PerDaemon < 1 || cfg.Nodes != cfg.Daemons*cfg.PerDaemon {
		return nil, fmt.Errorf("server: need n = daemons·k, got n=%d daemons=%d k=%d", cfg.Nodes, cfg.Daemons, cfg.PerDaemon)
	}
	if cfg.Daemon < 0 || cfg.Daemon >= cfg.Daemons {
		return nil, fmt.Errorf("server: daemon index %d outside [0, %d)", cfg.Daemon, cfg.Daemons)
	}
	if cfg.Nodes < 8 {
		return nil, fmt.Errorf("server: n = %d too small (pipeline needs ≥ 8)", cfg.Nodes)
	}
	if cfg.Params.N == 0 {
		cfg.Params = core.DefaultParams(cfg.Nodes)
	}
	if cfg.Params.N != cfg.Nodes {
		return nil, fmt.Errorf("server: params are for n = %d, cluster has n = %d", cfg.Params.N, cfg.Nodes)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: replica requires a store")
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.CommitFraction < 0 || cfg.CommitFraction > 1 {
		return nil, fmt.Errorf("server: commit fraction %v outside [0, 1]", cfg.CommitFraction)
	}
	if cfg.InstanceTimeout <= 0 {
		cfg.InstanceTimeout = 30 * time.Second
	}
	if cfg.ReproposeAfter <= 0 {
		cfg.ReproposeAfter = 2 * time.Second
	}
	if cfg.RepairEvery <= 0 {
		cfg.RepairEvery = 250 * time.Millisecond
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = time.Second
	}
	if !(cfg.CorruptFrac >= 0 && cfg.CorruptFrac < 1.0/3) {
		return nil, fmt.Errorf("server: corrupt fraction %v outside [0, 1/3)", cfg.CorruptFrac)
	}
	if !(cfg.KnowFrac >= 0 && cfg.KnowFrac <= 1) {
		return nil, fmt.Errorf("server: know fraction %v outside [0, 1]", cfg.KnowFrac)
	}

	r := &Replica{
		cfg:      cfg,
		params:   cfg.Params,
		corrupt:  pipeline.CorruptSet(cfg.Seed, cfg.Nodes, cfg.CorruptFrac),
		slots:    make(chan struct{}, cfg.Depth),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		failCh:   make(chan struct{}),
		open:     make(map[uint64]*rinst),
		repaired: make(map[uint64]store.Record),
	}
	base := cfg.Daemon * cfg.PerDaemon
	correctLocal := 0
	for i := 0; i < cfg.PerDaemon; i++ {
		r.localIDs = append(r.localIDs, base+i)
		if !r.corrupt[base+i] {
			correctLocal++
		}
	}
	if correctLocal == 0 {
		return nil, fmt.Errorf("server: daemon %d hosts no correct node (corrupt fraction %v)", cfg.Daemon, cfg.CorruptFrac)
	}
	r.need = 1
	if cfg.CommitFraction > 0 {
		r.need = int(math.Ceil(cfg.CommitFraction * float64(correctLocal)))
		if r.need < 1 {
			r.need = 1
		}
	}
	r.repFrom = base

	// Resume where the recovered WAL prefix ends.
	for _, rec := range cfg.Store.Records() {
		r.entries = append(r.entries, pipeline.EntryOf(rec))
	}
	r.commitSeq = cfg.Store.Frontier()
	r.nextSeq = r.commitSeq
	r.recovered = len(r.entries)

	// k real protocol nodes behind shims (LogOpen interception), remote
	// placeholders elsewhere: the fabric routes every protocol send
	// through the TCP transport, so placeholders are never activated.
	smp := core.NewSamplers(cfg.Params)
	nodes := make([]simnet.Node, cfg.Nodes)
	for id := range nodes {
		nodes[id] = remoteNode{}
	}
	r.mux = make([]*pipeline.MuxNode, 0, cfg.PerDaemon)
	for _, id := range r.localIDs {
		m := pipeline.NewMuxNode(id, r.corrupt[id], cfg.Params, smp, cfg.Seed, r.onDecision)
		r.mux = append(r.mux, m)
		nodes[id] = &shimNode{r: r, mux: m}
	}
	cluster, err := netrun.NewWithOptions(nodes, cfg.Net)
	if err != nil {
		return nil, err
	}
	addr, err := cluster.ServeCatchupOn(cfg.CatchupAddr, r.CatchupRecords)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	r.catchupAddr = addr
	r.cluster = cluster
	return r, nil
}

// remoteNode is the placeholder for a node hosted by a peer daemon; the
// transport carries every envelope addressed to it, so it is never
// activated locally.
type remoteNode struct{}

func (remoteNode) Init(simnet.Context)                          {}
func (remoteNode) Deliver(simnet.Context, int, simnet.Message)  {}

// shimNode wraps a hosted MuxNode, intercepting the daemon-level LogOpen
// broadcast before protocol delivery.
type shimNode struct {
	r   *Replica
	mux *pipeline.MuxNode
}

func (s *shimNode) Init(ctx simnet.Context) { s.mux.Init(ctx) }

func (s *shimNode) Deliver(ctx simnet.Context, from simnet.NodeID, msg simnet.Message) {
	if lo, ok := msg.(simnet.LogOpen); ok {
		s.r.handleOpen(lo)
		return
	}
	s.mux.Deliver(ctx, from, msg)
}

func (s *shimNode) DeliverTagged(ctx simnet.Context, from simnet.NodeID, msg simnet.Message, inst uint32) {
	s.mux.DeliverTagged(ctx, from, msg, inst)
}

// Start launches the cluster and the replica's commit and repair
// goroutines.
func (r *Replica) Start() {
	r.cluster.Start()
	r.workers.Add(2)
	go r.watch()
	go r.repairLoop()
}

// CatchupAddr returns the catch-up listener's bound address.
func (r *Replica) CatchupAddr() string { return r.catchupAddr }

// Frontier returns the committed frontier.
func (r *Replica) Frontier() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commitSeq
}

// Recovered returns the number of entries seeded from the WAL at
// construction; Repaired the number committed through peer catch-up.
func (r *Replica) Recovered() int { return r.recovered }

func (r *Replica) Repaired() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nRepaired
}

// Reproposed returns how many times the leader re-opened a stalled head
// instance with a bumped attempt.
func (r *Replica) Reproposed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nReproposed
}

// NetStats snapshots the mesh's supervision counters (safe mid-run).
func (r *Replica) NetStats() simnet.NetStats { return r.cluster.NetStats() }

// Err returns the replica's fatal error, if any.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Failed returns a channel closed on the replica's first fatal error.
func (r *Replica) Failed() <-chan struct{} { return r.failCh }

// CatchupRecords serves one catch-up chunk — committed entries
// [from, from+max) as encoded store records — to restarted peers and to
// the harness's log-agreement oracle.
func (r *Replica) CatchupRecords(from uint64, max int) [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from >= r.commitSeq || max <= 0 {
		return nil
	}
	end := from + uint64(max)
	if end > r.commitSeq {
		end = r.commitSeq
	}
	out := make([][]byte, 0, end-from)
	for seq := from; seq < end; seq++ {
		out = append(out, store.AppendRecord(nil, pipeline.RecordOf(r.entries[seq])))
	}
	return out
}

// Append opens the next instance with the given batch (leader only),
// blocking while the pipeline is at Depth. The commit is observed through
// OnCommit.
func (r *Replica) Append(ctx context.Context, payloads [][]byte) (uint64, error) {
	if !r.cfg.Leader {
		return 0, ErrNotLeader
	}
	select {
	case r.slots <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-r.failCh:
		return 0, r.runError()
	case <-r.done:
		return 0, r.runError()
	}

	r.mu.Lock()
	if err := r.appendBlocked(); err != nil {
		r.mu.Unlock()
		<-r.slots
		return 0, err
	}
	seq := r.nextSeq
	r.nextSeq++
	if seq > pipeline.MaxSeq {
		r.failLocked(fmt.Errorf("server: instance tag overflow at seq %d", seq))
		r.mu.Unlock()
		<-r.slots
		return 0, r.runError()
	}
	inst := r.newInstLocked(seq, payloads)
	inst.slot = true
	r.open[seq] = inst
	proposed := inst.proposed
	r.mu.Unlock()

	r.injectOpens(seq, 0, proposed)
	r.broadcastOpen(seq, 0, payloads)
	return seq, nil
}

// newInstLocked builds an open instance. Callers hold r.mu.
func (r *Replica) newInstLocked(seq uint64, payloads [][]byte) *rinst {
	now := time.Now()
	return &rinst{
		seq:       seq,
		proposed:  pipeline.BatchValue(r.cfg.Seed, r.params.StringBits, seq, payloads),
		payloads:  payloads,
		opened:    now,
		lastOpen:  now,
		decided:   make(map[int]bool, 1),
		values:    make(map[bitstring.MapKey]int, 1),
		committed: make(chan struct{}),
	}
}

// appendBlocked reports why new instances cannot open, if they cannot.
func (r *Replica) appendBlocked() error {
	if r.failed != nil {
		return r.failed
	}
	if r.closed {
		return ErrReplicaClosed
	}
	return nil
}

// handleOpen processes one LogOpen broadcast (follower path): register
// the instance and inject the derived initial beliefs into the hosted
// nodes. Duplicates and already-committed sequences are dropped; a reopen
// (higher attempt) re-injects the opens so undecided local nodes re-run
// the instance under fresh labels.
func (r *Replica) handleOpen(lo simnet.LogOpen) {
	r.mu.Lock()
	if r.failed != nil || r.closed || lo.Seq < r.commitSeq || lo.Seq > pipeline.MaxSeq {
		r.mu.Unlock()
		return
	}
	inst := r.open[lo.Seq]
	if inst != nil && lo.Attempt <= inst.attempt {
		r.mu.Unlock()
		return
	}
	if inst == nil {
		inst = r.newInstLocked(lo.Seq, lo.Payloads)
		r.open[lo.Seq] = inst
		if lo.Seq >= r.nextSeq {
			r.nextSeq = lo.Seq + 1
		}
	}
	inst.attempt = lo.Attempt
	inst.lastOpen = time.Now()
	proposed := inst.proposed
	r.mu.Unlock()

	r.injectOpens(lo.Seq, lo.Attempt, proposed)
	r.kick()
}

// injectOpens derives the full population's initial beliefs (the shared
// seeded derivation — every daemon must consume the same draws) and
// injects the hosted slice's MsgOpens.
func (r *Replica) injectOpens(seq uint64, attempt uint32, value bitstring.String) {
	msgs := pipeline.OpenMsgs(r.cfg.Seed, r.params.StringBits, r.cfg.KnowFrac, r.corrupt, seq, attempt, value)
	for _, id := range r.localIDs {
		if msgs[id] == nil {
			continue // corrupt nodes ignore opens
		}
		r.cluster.Inject(simnet.Envelope{From: id, To: id, Msg: msgs[id]})
	}
}

// broadcastOpen ships the batch to one representative node per peer
// daemon. A dark peer's frames die in its supervised link (dropped-down),
// and the peer later closes the gap through catch-up repair or a
// reproposal. Reproposals rotate the representative so a single bad link
// cannot eat every attempt.
func (r *Replica) broadcastOpen(seq uint64, attempt uint32, payloads [][]byte) {
	lo := simnet.LogOpen{Seq: seq, Attempt: attempt, Payloads: payloads}
	for d := 0; d < r.cfg.Daemons; d++ {
		if d == r.cfg.Daemon {
			continue
		}
		to := d*r.cfg.PerDaemon + int(attempt)%r.cfg.PerDaemon
		r.cluster.Send(simnet.Envelope{From: r.repFrom, To: to, Msg: lo})
	}
}

// onDecision is the MuxNode callback for hosted nodes. A node decides an
// instance at most once across reopens: a rebuilt child that re-decides
// (the reopen raced its first decision) is deduplicated here.
func (r *Replica) onDecision(node int, seq uint64, value bitstring.String, support, need int) {
	r.mu.Lock()
	inst := r.open[seq]
	if inst != nil && !inst.decided[node] {
		inst.decided[node] = true
		k := value.MapKey()
		inst.values[k]++
		if inst.values[k] > inst.valueCount {
			inst.valueCount = inst.values[k]
			inst.value = value
		}
		if support < need {
			inst.certDeficits++
		}
	}
	r.mu.Unlock()
	if inst != nil {
		r.kick()
	}
}

// kick wakes the commit watcher without blocking.
func (r *Replica) kick() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// watch is the commit goroutine.
func (r *Replica) watch() {
	defer r.workers.Done()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-r.wake:
		case <-ticker.C:
		}
		r.advance()
	}
}

// advance commits the head instance — through local decisions when the
// threshold is met, through a repaired peer record when catch-up filled
// the gap first — in sequence order, with persist-before-surface.
func (r *Replica) advance() {
	for {
		r.mu.Lock()
		if r.failed != nil {
			r.mu.Unlock()
			return
		}
		head := r.commitSeq
		inst := r.open[head]
		var entry pipeline.Entry
		var rec store.Record
		viaRepair := false
		switch {
		case inst != nil && len(inst.decided) >= r.need:
			entry = pipeline.Entry{
				Seq:             inst.seq,
				Value:           inst.value,
				Payloads:        inst.payloads,
				Deciders:        len(inst.decided),
				Correct:         len(r.localIDs),
				DistinctValues:  len(inst.values),
				CertDeficits:    inst.certDeficits,
				MatchesProposal: inst.value.Equal(inst.proposed),
				Opened:          inst.opened,
				Committed:       time.Now(),
			}
			rec = pipeline.RecordOf(entry)
		case hasRepair(r.repaired, head):
			rec = r.repaired[head]
			entry = pipeline.EntryOf(rec)
			viaRepair = true
		default:
			// The head is stalled. The leader retries the randomized protocol
			// run before the hard timeout: a reopen with a bumped attempt
			// re-rolls undecided nodes' poll labels and re-delivers the open
			// to daemons that missed the original broadcast.
			if inst != nil && r.cfg.Leader {
				if time.Since(inst.opened) > r.cfg.InstanceTimeout {
					r.failLocked(fmt.Errorf("server: instance %d: %d of %d required deciders after %v",
						inst.seq, len(inst.decided), r.need, r.cfg.InstanceTimeout))
				} else if time.Since(inst.lastOpen) > r.cfg.ReproposeAfter && inst.attempt < pipeline.MaxAttempt {
					inst.attempt++
					inst.lastOpen = time.Now()
					r.nReproposed++
					attempt, payloads, proposed := inst.attempt, inst.payloads, inst.proposed
					r.mu.Unlock()
					r.injectOpens(head, attempt, proposed)
					r.broadcastOpen(head, attempt, payloads)
					return
				}
			}
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()

		// Persist before surfacing: the entry is durable before OnCommit —
		// and before the daemon acks the client — can observe it.
		if err := r.cfg.Store.Append(rec); err != nil {
			r.mu.Lock()
			r.failLocked(fmt.Errorf("server: persist seq %d: %w", entry.Seq, err))
			r.mu.Unlock()
			return
		}

		r.mu.Lock()
		if r.failed != nil {
			r.mu.Unlock()
			return
		}
		delete(r.repaired, head)
		delete(r.open, head)
		r.commitSeq++
		r.entries = append(r.entries, entry)
		if viaRepair {
			r.nRepaired++
		}
		r.mu.Unlock()

		if inst != nil {
			close(inst.committed)
			if inst.slot {
				<-r.slots
			}
		}
		var closeMsg simnet.Message = pipeline.MsgClose{Seq: entry.Seq}
		for _, id := range r.localIDs {
			if !r.corrupt[id] {
				r.cluster.Inject(simnet.Envelope{From: id, To: id, Msg: closeMsg})
			}
		}
		if r.cfg.OnCommit != nil {
			r.cfg.OnCommit(entry, viaRepair)
		}
	}
}

func hasRepair(m map[uint64]store.Record, seq uint64) bool {
	_, ok := m[seq]
	return ok
}

// repairLoop watches the commit frontier: when it stalls past StallAfter
// — a restart gap, a missed broadcast, a straggling local node — it
// fetches committed records from peer daemons and hands them to advance.
func (r *Replica) repairLoop() {
	defer r.workers.Done()
	if len(r.cfg.PeerCatchup) == 0 {
		return
	}
	ticker := time.NewTicker(r.cfg.RepairEvery)
	defer ticker.Stop()
	lastSeen := r.Frontier()
	lastMove := time.Now()
	next := 0 // rotating peer cursor
	for {
		select {
		case <-r.done:
			return
		case <-ticker.C:
		}
		fr := r.Frontier()
		if fr != lastSeen {
			lastSeen, lastMove = fr, time.Now()
			continue
		}
		if time.Since(lastMove) < r.cfg.StallAfter {
			continue
		}
		r.mu.Lock()
		idle := len(r.open) == 0 && r.closed
		r.mu.Unlock()
		if idle {
			continue // a drained, closing replica is not stalled
		}
		for i := 0; i < len(r.cfg.PeerCatchup); i++ {
			peer := r.cfg.PeerCatchup[(next+i)%len(r.cfg.PeerCatchup)]
			recs, err := netrun.FetchCatchup(peer, fr, r.cfg.Net.DialTimeout)
			if err != nil || len(recs) == 0 {
				continue
			}
			if n := r.ingestRepaired(fr, recs); n > 0 {
				next = (next + i + 1) % len(r.cfg.PeerCatchup)
				lastMove = time.Now()
				r.kick()
				break
			}
		}
	}
}

// ingestRepaired decodes fetched records and registers the contiguous run
// starting at from for the commit path. It returns how many were
// registered.
func (r *Replica) ingestRepaired(from uint64, recs [][]byte) int {
	n := 0
	r.mu.Lock()
	defer r.mu.Unlock()
	want := from
	for _, enc := range recs {
		rec, err := store.DecodeRecord(enc)
		if err != nil || rec.Seq != want {
			break // non-contiguous or corrupt: keep the good prefix
		}
		if rec.Seq >= r.commitSeq {
			r.repaired[rec.Seq] = rec
			n++
		}
		want++
	}
	return n
}

// failLocked records the first fatal error and releases every waiter.
// Callers hold r.mu.
func (r *Replica) failLocked(err error) {
	if r.failed != nil {
		return
	}
	r.failed = err
	close(r.failCh)
	for _, inst := range r.open {
		close(inst.committed)
		if inst.slot {
			inst.slot = false
			// Drain the token asynchronously-safe: the channel has capacity
			// Depth and every token was put by Append, so this never blocks.
			<-r.slots
		}
	}
	r.open = make(map[uint64]*rinst)
}

// runError returns the recorded fatal error, or the generic closed error.
func (r *Replica) runError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed != nil {
		return r.failed
	}
	return ErrReplicaClosed
}

// Close drains the replica — no new appends, every open instance gets
// until the instance timeout to commit (locally or through repair) — then
// tears the mesh down. The store stays open: the daemon closes it after
// the last ack has been flushed (the shutdown-ordering contract).
func (r *Replica) Close() error {
	r.mu.Lock()
	r.closed = true
	waiting := make([]chan struct{}, 0, len(r.open))
	for _, inst := range r.open {
		waiting = append(waiting, inst.committed)
	}
	r.mu.Unlock()
	deadline := time.NewTimer(r.cfg.InstanceTimeout + time.Second)
	defer deadline.Stop()
	for _, committed := range waiting {
		select {
		case <-committed:
		case <-deadline.C:
			r.mu.Lock()
			r.failLocked(fmt.Errorf("server: close: open instances did not drain in %v", r.cfg.InstanceTimeout))
			r.mu.Unlock()
		}
	}
	r.stop()
	return r.Err()
}

// Abort tears the mesh down immediately, abandoning open instances.
func (r *Replica) Abort() {
	r.mu.Lock()
	r.failLocked(context.Canceled)
	r.mu.Unlock()
	r.stop()
}

// stop shuts the workers and the transport down, once.
func (r *Replica) stop() {
	r.teardown.Do(func() {
		close(r.done)
		r.workers.Wait()
		r.cluster.Close()
	})
}
