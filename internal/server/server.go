package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/metrics"
	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/pipeline"
	"github.com/fastba/fastba/internal/store"
)

// Config shapes one balogd daemon.
type Config struct {
	// ClusterAddrs are the daemons' base addresses ("host:port"), one per
	// daemon, identical on every daemon. Each daemon owns the port block
	// [port, port+k+2]: ports port..port+k-1 are its k node-mesh
	// listeners, port+k the catch-up listener, port+k+1 the client/admin
	// listener, port+k+2 the metrics HTTP endpoint.
	ClusterAddrs []string
	// Daemon is this process's index into ClusterAddrs. Daemon 0 leads:
	// it sequences client appends.
	Daemon int
	// PerDaemon is k, the protocol nodes each daemon hosts (default 4;
	// the population n = len(ClusterAddrs)·k must be ≥ 8).
	PerDaemon int
	// Seed keys the cluster's shared derivations; identical everywhere.
	Seed uint64
	// Epoch is the starting configuration epoch.
	Epoch uint64
	// StoreDir is this daemon's WAL directory.
	StoreDir string
	// Depth bounds concurrently open instances (default 4); BatchMax the
	// payloads folded into one instance (default 16); QueueMax each client
	// session's admission queue (default 64).
	Depth    int
	BatchMax int
	QueueMax int
	// CorruptFrac and KnowFrac mirror pipeline.Config. KnowFrac defaults
	// to 1 (every correct node learns the proposed batch digest).
	CorruptFrac float64
	KnowFrac    float64
	// CommitFraction is the local-decider commit threshold (default: one
	// certified local decision; see ReplicaConfig.CommitFraction).
	CommitFraction float64
	// InstanceTimeout fails the leader on a stuck head instance
	// (default 30s); ReproposeAfter re-runs a stalled head instance with a
	// bumped attempt well before that (default 2s).
	InstanceTimeout time.Duration
	ReproposeAfter  time.Duration
	// SyncWindow is the WAL group-commit window (default 2ms).
	SyncWindow time.Duration
	// JoinEvery is the membership handshake period (default 1s); it also
	// paces the liveness TTL (3×JoinEvery).
	JoinEvery time.Duration
	// Reconnect and Heartbeat tune the mesh's link supervision (zero
	// values: netrun defaults). They bound how long a dead peer's queued
	// frames survive — past the redial budget the frames drop and the
	// peer recovers through catch-up repair instead.
	Reconnect netrun.ReconnectPolicy
	Heartbeat netrun.HeartbeatPolicy
	// RepairEvery paces the catch-up repair scan (default 250ms);
	// StallAfter is the no-progress window that triggers a repair fetch
	// (default 1s).
	RepairEvery time.Duration
	StallAfter  time.Duration
	// Registry receives the daemon's metrics (nil: a private registry).
	Registry *metrics.Registry
	// Logf, when non-nil, receives the status ticker and lifecycle lines.
	Logf func(format string, args ...any)
}

func (cfg *Config) withDefaults() error {
	if len(cfg.ClusterAddrs) == 0 {
		return fmt.Errorf("server: no cluster addresses")
	}
	if cfg.Daemon < 0 || cfg.Daemon >= len(cfg.ClusterAddrs) {
		return fmt.Errorf("server: daemon index %d outside cluster of %d", cfg.Daemon, len(cfg.ClusterAddrs))
	}
	if cfg.StoreDir == "" {
		return fmt.Errorf("server: no store directory")
	}
	if cfg.PerDaemon <= 0 {
		cfg.PerDaemon = 4
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 16
	}
	if cfg.QueueMax <= 0 {
		cfg.QueueMax = 64
	}
	if cfg.KnowFrac == 0 {
		cfg.KnowFrac = 1
	}
	if cfg.SyncWindow <= 0 {
		cfg.SyncWindow = 2 * time.Millisecond
	}
	if cfg.JoinEvery <= 0 {
		cfg.JoinEvery = time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// clusterLayout derives every listener address of every daemon from the
// base addresses (see Config.ClusterAddrs).
type clusterLayout struct {
	nodeAddrs    []string // n entries
	catchupAddrs []string // one per daemon
	clientAddrs  []string
	metricsAddrs []string
}

func layoutCluster(bases []string, k int) (clusterLayout, error) {
	var lay clusterLayout
	for _, base := range bases {
		host, portStr, err := net.SplitHostPort(base)
		if err != nil {
			return lay, fmt.Errorf("server: cluster address %q: %w", base, err)
		}
		port, err := strconv.Atoi(portStr)
		if err != nil || port <= 0 || port+k+2 > 65535 {
			return lay, fmt.Errorf("server: cluster address %q: port block [%s, %s+%d] unusable", base, portStr, portStr, k+2)
		}
		for i := 0; i < k; i++ {
			lay.nodeAddrs = append(lay.nodeAddrs, net.JoinHostPort(host, strconv.Itoa(port+i)))
		}
		lay.catchupAddrs = append(lay.catchupAddrs, net.JoinHostPort(host, strconv.Itoa(port+k)))
		lay.clientAddrs = append(lay.clientAddrs, net.JoinHostPort(host, strconv.Itoa(port+k+1)))
		lay.metricsAddrs = append(lay.metricsAddrs, net.JoinHostPort(host, strconv.Itoa(port+k+2)))
	}
	return lay, nil
}

// Daemon is one running balogd process: a replica (k protocol nodes +
// WAL + repair), the client/admin listener with admission control, the
// membership join loop, the metrics endpoint and the status ticker.
type Daemon struct {
	cfg  Config
	lay  clusterLayout
	logf func(string, ...any)

	st  *store.Store
	rep *Replica
	adm *admission
	mem *membership

	leader     bool
	clientLn   net.Listener
	httpLn     net.Listener
	httpSrv    *http.Server

	reg        *metrics.Registry
	ctrAppends *metrics.Counter
	ctrShed    *metrics.Counter
	ctrCommits *metrics.Counter
	ctrRepair  *metrics.Counter
	gCommit    *metrics.Gauge
	gEpoch     *metrics.Gauge
	hLatency   *metrics.Histogram

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	done      chan struct{}
	wg        sync.WaitGroup
	batcherWG sync.WaitGroup

	closeOnce   sync.Once
	shutdownErr error
}

// New assembles a daemon: opens (and, when peers are up, catches up) the
// WAL, builds the partially hosted replica and binds the client and
// metrics listeners. The daemon is inert until Start.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	lay, err := layoutCluster(cfg.ClusterAddrs, cfg.PerDaemon)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:    cfg,
		lay:    lay,
		logf:   cfg.Logf,
		leader: cfg.Daemon == 0,
		reg:    cfg.Registry,
		adm:    newAdmission(cfg.QueueMax, cfg.BatchMax),
		mem:    newMembership(cfg.Daemon, len(cfg.ClusterAddrs), cfg.Epoch, 3*cfg.JoinEvery),
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}

	st, err := store.Open(cfg.StoreDir, store.Options{SyncWindow: cfg.SyncWindow})
	if err != nil {
		return nil, err
	}
	d.st = st

	// Startup catch-up: close as much of the committed gap as any live
	// peer can serve before joining the mesh. Best-effort — at cluster
	// boot no peer is up yet, and the replica's repair loop covers
	// whatever is still missing once traffic flows.
	peers := d.peerCatchupAddrs()
	d.catchUpFromPeers(peers)

	hosted := make([]bool, len(lay.nodeAddrs))
	base := cfg.Daemon * cfg.PerDaemon
	for i := 0; i < cfg.PerDaemon; i++ {
		hosted[base+i] = true
	}
	rep, err := NewReplica(ReplicaConfig{
		Nodes:           len(cfg.ClusterAddrs) * cfg.PerDaemon,
		Daemons:         len(cfg.ClusterAddrs),
		Daemon:          cfg.Daemon,
		PerDaemon:       cfg.PerDaemon,
		Leader:          d.leader,
		Seed:            cfg.Seed,
		CorruptFrac:     cfg.CorruptFrac,
		KnowFrac:        cfg.KnowFrac,
		Depth:           cfg.Depth,
		CommitFraction:  cfg.CommitFraction,
		InstanceTimeout: cfg.InstanceTimeout,
		ReproposeAfter:  cfg.ReproposeAfter,
		Store:           st,
		Net: netrun.Options{
			Hosted:    hosted,
			Addrs:     lay.nodeAddrs,
			Reconnect: cfg.Reconnect,
			Heartbeat: cfg.Heartbeat,
		},
		CatchupAddr: lay.catchupAddrs[cfg.Daemon],
		PeerCatchup: peers,
		RepairEvery: cfg.RepairEvery,
		StallAfter:  cfg.StallAfter,
		OnCommit:    d.onCommit,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	d.rep = rep

	d.clientLn, err = net.Listen("tcp", lay.clientAddrs[cfg.Daemon])
	if err == nil {
		d.httpLn, err = net.Listen("tcp", lay.metricsAddrs[cfg.Daemon])
	}
	if err != nil {
		if d.clientLn != nil {
			d.clientLn.Close()
		}
		rep.Abort()
		st.Close()
		return nil, err
	}

	d.registerMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = d.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if err := d.rep.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	d.httpSrv = &http.Server{Handler: mux}
	return d, nil
}

func (d *Daemon) peerCatchupAddrs() []string {
	var peers []string
	for i, addr := range d.lay.catchupAddrs {
		if i != d.cfg.Daemon {
			peers = append(peers, addr)
		}
	}
	return peers
}

// catchUpFromPeers ingests committed records past our frontier from the
// first peer that serves them.
func (d *Daemon) catchUpFromPeers(peers []string) {
	for _, peer := range peers {
		enc, err := netrun.FetchCatchup(peer, d.st.Frontier(), time.Second)
		if err != nil || len(enc) == 0 {
			continue
		}
		recs := make([]store.Record, 0, len(enc))
		next := d.st.Frontier()
		for _, e := range enc {
			rec, err := store.DecodeRecord(e)
			if err != nil || rec.Seq != next {
				break
			}
			recs = append(recs, rec)
			next++
		}
		if len(recs) == 0 {
			continue
		}
		if err := d.st.AppendBatch(recs); err == nil {
			d.logf("balogd[%d]: caught up %d records from %s (frontier now %d)",
				d.cfg.Daemon, len(recs), peer, d.st.Frontier())
			return
		}
	}
}

func (d *Daemon) registerMetrics() {
	label := []string{"daemon", strconv.Itoa(d.cfg.Daemon)}
	d.ctrAppends = d.reg.Counter("fastba_appends_total", "Client append requests admitted.", label...)
	d.ctrShed = d.reg.Counter("fastba_overload_shed_total", "Client append requests shed by admission control.", label...)
	d.ctrCommits = d.reg.Counter("fastba_commits_total", "Instances committed by this daemon.", label...)
	d.ctrRepair = d.reg.Counter("fastba_repaired_total", "Instances committed through peer catch-up repair.", label...)
	d.gCommit = d.reg.Gauge("fastba_commit_seq", "The daemon's committed frontier.", label...)
	d.gEpoch = d.reg.Gauge("fastba_membership_epoch", "The configuration epoch of the peer set.", label...)
	d.hLatency = d.reg.Histogram("fastba_commit_latency_seconds", "Client-observed commit latency.", metrics.LatencyBucketsSeconds(), label...)
	d.reg.GaugeFunc("fastba_peers_alive", "Peer daemons answering membership handshakes.", func() float64 {
		return float64(d.mem.Alive())
	}, label...)
	d.reg.GaugeFunc("fastba_sessions", "Open client sessions.", func() float64 {
		return float64(d.adm.sessionCount())
	}, label...)
	d.reg.GaugeFunc("fastba_reproposals", "Stalled head instances re-opened with a bumped attempt.", func() float64 {
		return float64(d.rep.Reproposed())
	}, label...)
	metrics.RegisterNetStats(d.reg, d.rep.NetStats, label...)
	d.gCommit.Set(float64(d.rep.Frontier()))
	d.gEpoch.Set(float64(d.mem.Epoch()))
}

// Start launches the replica and every daemon loop.
func (d *Daemon) Start() {
	d.rep.Start()
	d.batcherWG.Add(1)
	go d.batchLoop()
	d.wg.Add(5)
	go d.acceptLoop()
	go d.joinLoop()
	go d.statusLoop()
	go d.watchReplica()
	go func() {
		defer d.wg.Done()
		_ = d.httpSrv.Serve(d.httpLn)
	}()
	d.logf("balogd[%d]: up — client %s metrics http://%s/metrics leader=%v epoch=%d frontier=%d",
		d.cfg.Daemon, d.ClientAddr(), d.MetricsAddr(), d.leader, d.mem.Epoch(), d.rep.Frontier())
}

// ClientAddr returns the bound client/admin address; MetricsAddr the
// bound metrics HTTP address; LeaderAddr the leader's client address.
func (d *Daemon) ClientAddr() string  { return d.clientLn.Addr().String() }
func (d *Daemon) MetricsAddr() string { return d.httpLn.Addr().String() }
func (d *Daemon) LeaderAddr() string  { return d.lay.clientAddrs[0] }

// Frontier returns the committed frontier; Err the replica's fatal
// error, if any.
func (d *Daemon) Frontier() uint64 { return d.rep.Frontier() }
func (d *Daemon) Err() error       { return d.rep.Err() }

// Failed closes when the replica can no longer make progress (instance
// timeout, store failure). The process should exit nonzero so a
// supervisor restarts it.
func (d *Daemon) Failed() <-chan struct{} { return d.rep.Failed() }

// onCommit is the replica's commit observer: it updates the metrics and
// acks every client append folded into the committed instance.
func (d *Daemon) onCommit(e pipeline.Entry, repaired bool) {
	d.ctrCommits.Inc()
	d.gCommit.Set(float64(e.Seq + 1))
	if repaired {
		d.ctrRepair.Inc()
	}
	for _, p := range d.adm.resolve(e.Seq) {
		lat := time.Since(p.queued)
		d.hLatency.Observe(lat.Seconds())
		_ = p.sess.write(AppendAck{Req: p.req, Code: CodeOK, Seq: e.Seq, LatencyNs: int64(lat)})
	}
}

// watchReplica nacks every inflight append when the replica dies: their
// instances will never commit, so without this the clients wait forever.
// New enqueues start failing with CodeShutdown (the admission gate
// closes), and handleConn keeps serving Status/Join so peers still see
// the daemon's corpse report its epoch until the process exits.
func (d *Daemon) watchReplica() {
	defer d.wg.Done()
	select {
	case <-d.done:
		return
	case <-d.rep.Failed():
	}
	d.logf("balogd[%d]: replica failed: %v", d.cfg.Daemon, d.rep.Err())
	d.adm.close()
	// The batcher unblocks (Append fails fast once the replica is failed)
	// and nacks what it still held; wait for it so nothing is tracked
	// after the abandon sweep below.
	d.batcherWG.Wait()
	for _, p := range d.adm.abandonInflight() {
		_ = p.sess.write(AppendAck{Req: p.req, Code: CodeFailed})
	}
}

// batchLoop forms admitted appends into instances. It exits when the
// admission gate is closed and drained.
func (d *Daemon) batchLoop() {
	defer d.batcherWG.Done()
	for {
		batch := d.adm.nextBatch()
		if batch == nil {
			return
		}
		payloads := make([][]byte, len(batch))
		for i, p := range batch {
			payloads[i] = p.payload
		}
		seq, err := d.rep.Append(context.Background(), payloads)
		if err != nil {
			code := CodeFailed
			if errors.Is(err, ErrReplicaClosed) || errors.Is(err, context.Canceled) {
				code = CodeShutdown
			}
			for _, p := range batch {
				_ = p.sess.write(AppendAck{Req: p.req, Code: code})
			}
			continue
		}
		d.adm.track(seq, batch)
	}
}

// acceptLoop admits client connections.
func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.clientLn.Accept()
		if err != nil {
			return
		}
		d.connMu.Lock()
		d.conns[conn] = struct{}{}
		d.connMu.Unlock()
		d.wg.Add(1)
		go d.handleConn(conn)
	}
}

func (d *Daemon) dropConn(conn net.Conn) {
	d.connMu.Lock()
	delete(d.conns, conn)
	d.connMu.Unlock()
	conn.Close()
}

func (d *Daemon) closeConns() {
	d.connMu.Lock()
	for conn := range d.conns {
		conn.Close()
	}
	d.connMu.Unlock()
}

// handleConn serves one client session.
func (d *Daemon) handleConn(conn net.Conn) {
	defer d.wg.Done()
	defer d.dropConn(conn)
	sess := d.adm.attach(conn)
	defer d.adm.detach(sess)
	for {
		msg, err := ReadClientMsg(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case Hello:
			err = sess.write(HelloAck{
				Node:       uint32(d.cfg.Daemon),
				Epoch:      d.mem.Epoch(),
				Leader:     d.leader,
				LeaderAddr: d.LeaderAddr(),
				Frontier:   d.rep.Frontier(),
			})
		case Append:
			if !d.leader {
				err = sess.write(AppendAck{Req: m.Req, Code: CodeNotLeader})
				break
			}
			switch code := d.adm.enqueue(sess, m.Req, m.Payload); code {
			case CodeOK:
				d.ctrAppends.Inc()
			case CodeOverload:
				d.ctrShed.Inc()
				err = sess.write(AppendAck{Req: m.Req, Code: code})
			default:
				err = sess.write(AppendAck{Req: m.Req, Code: code})
			}
		case Status:
			err = sess.write(StatusAck{
				Node:       uint32(d.cfg.Daemon),
				Epoch:      d.mem.Epoch(),
				Leader:     d.leader,
				Frontier:   d.rep.Frontier(),
				Recovered:  uint64(d.rep.Recovered()),
				Repaired:   uint64(d.rep.Repaired()),
				PeersAlive: uint32(d.mem.Alive()),
				Sessions:   uint32(d.adm.sessionCount()),
			})
		case Join:
			ack := d.mem.HandleJoin(m.Epoch, m.Node)
			d.gEpoch.Set(float64(ack.Epoch))
			err = sess.write(ack)
		case Leave:
			err = sess.write(d.mem.HandleLeave(m.Epoch, m.Node))
		default:
			return
		}
		if err != nil {
			return
		}
	}
}

// joinLoop runs the periodic membership handshake against every peer.
func (d *Daemon) joinLoop() {
	defer d.wg.Done()
	d.joinPeersOnce()
	ticker := time.NewTicker(d.cfg.JoinEvery)
	defer ticker.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			d.joinPeersOnce()
		}
	}
}

func (d *Daemon) joinPeersOnce() {
	for peer, addr := range d.lay.clientAddrs {
		if peer == d.cfg.Daemon {
			continue
		}
		ack, err := d.handshake(addr, Join{Epoch: d.mem.Epoch(), Node: uint32(d.cfg.Daemon)})
		if err != nil {
			continue
		}
		if ja, ok := ack.(JoinAck); ok && (ja.Code == CodeOK || ja.Code == CodeStaleEpoch) {
			d.mem.Observe(peer, ja.Epoch)
			d.gEpoch.Set(float64(d.mem.Epoch()))
		}
	}
}

// handshake performs one one-shot request/response exchange with a peer's
// client listener.
func (d *Daemon) handshake(addr string, req any) (any, error) {
	conn, err := net.DialTimeout("tcp", addr, d.cfg.JoinEvery)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * d.cfg.JoinEvery))
	if err := WriteClientMsg(conn, req); err != nil {
		return nil, err
	}
	return ReadClientMsg(conn)
}

// statusLoop is the 1s progress ticker: committed watermark, TPS since
// the last tick, membership view.
func (d *Daemon) statusLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	last := d.rep.Frontier()
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			fr := d.rep.Frontier()
			d.logf("balogd[%d]: commit=%d tps=%d epoch=%d peers=%d sessions=%d shed=%d repaired=%d",
				d.cfg.Daemon, fr, fr-last, d.mem.Epoch(), d.mem.Alive(),
				d.adm.sessionCount(), d.ctrShed.Value(), d.rep.Repaired())
			last = fr
		}
	}
}

// Shutdown drains the daemon gracefully, in the no-lost-acks order:
// stop admitting (new appends get CodeShutdown) → drain the batcher →
// wait for every inflight instance's commit acks to be written → close
// client connections → tear the replica down → close the WAL last (its
// close performs the final group-commit flush, so anything acked is on
// disk before the process exits).
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.closeOnce.Do(func() {
		d.logf("balogd[%d]: shutting down", d.cfg.Daemon)
		d.broadcastLeave()
		close(d.done)
		d.clientLn.Close()
		d.adm.close()
		d.batcherWG.Wait()

		tick := time.NewTicker(5 * time.Millisecond)
	drain:
		for d.adm.inflightCount() > 0 {
			select {
			case <-ctx.Done():
				break drain
			case <-d.rep.Failed():
				break drain
			case <-tick.C:
			}
		}
		tick.Stop()
		for _, p := range d.adm.abandonInflight() {
			_ = p.sess.write(AppendAck{Req: p.req, Code: CodeFailed})
		}

		d.closeConns()
		repErr := d.rep.Close()
		if errors.Is(repErr, context.Canceled) {
			repErr = nil
		}
		d.httpSrv.Close()
		stErr := d.st.Close()
		d.wg.Wait()
		d.shutdownErr = errors.Join(repErr, stErr)
		d.logf("balogd[%d]: down (frontier %d)", d.cfg.Daemon, d.st.Frontier())
	})
	return d.shutdownErr
}

// broadcastLeave sends the advisory departure note to every peer.
func (d *Daemon) broadcastLeave() {
	for peer, addr := range d.lay.clientAddrs {
		if peer == d.cfg.Daemon {
			continue
		}
		_, _ = d.handshake(addr, Leave{Epoch: d.mem.Epoch(), Node: uint32(d.cfg.Daemon)})
	}
}

// Kill tears the daemon down abruptly — no drain, no final WAL flush
// beyond what group commit already made durable. It models a crash for
// restart tests (the in-process analogue of SIGKILL).
func (d *Daemon) Kill() {
	d.closeOnce.Do(func() {
		close(d.done)
		d.clientLn.Close()
		d.adm.close()
		d.closeConns()
		d.rep.Abort()
		d.httpSrv.Close()
		d.st.Crash()
		d.batcherWG.Wait()
		d.wg.Wait()
		d.shutdownErr = fmt.Errorf("server: killed")
	})
}
