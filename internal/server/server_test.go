package server

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/store"
)

// reserveBases probes for daemons contiguous free port blocks of k+3
// ports each and returns the base addresses. The listeners are closed
// before returning, so a parallel process could steal a port — the probe
// retries across the ephemeral range to make that unlikely.
func reserveBases(t *testing.T, daemons, k int) []string {
	t.Helper()
	block := k + 3
	rnd := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 0; attempt < 50; attempt++ {
		base := 21000 + rnd.Intn(30000)
		var lns []net.Listener
		ok := true
		for p := base; p < base+daemons*block; p++ {
			ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p))
			if err != nil {
				ok = false
				break
			}
			lns = append(lns, ln)
		}
		for _, ln := range lns {
			ln.Close()
		}
		if ok {
			bases := make([]string, daemons)
			for d := range bases {
				bases[d] = fmt.Sprintf("127.0.0.1:%d", base+d*block)
			}
			return bases
		}
	}
	t.Fatal("no free port block found")
	return nil
}

// testCluster starts an in-process D-daemon cluster (daemon 0 leads) and
// returns the running daemons plus their store directories.
func testCluster(t *testing.T, daemons, k int) ([]*Daemon, []string, []string) {
	t.Helper()
	bases := reserveBases(t, daemons, k)
	dirs := make([]string, daemons)
	ds := make([]*Daemon, daemons)
	for i := range ds {
		dirs[i] = t.TempDir()
		d, err := New(testConfig(bases, dirs, i, k))
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		ds[i] = d
	}
	for _, d := range ds {
		d.Start()
	}
	t.Cleanup(func() {
		for _, d := range ds {
			d.Kill() // no-op if already shut down
		}
	})
	return ds, dirs, bases
}

func testConfig(bases, dirs []string, i, k int) Config {
	return Config{
		ClusterAddrs:    bases,
		Daemon:          i,
		PerDaemon:       k,
		Seed:            42,
		Epoch:           1,
		StoreDir:        dirs[i],
		Depth:           2,
		BatchMax:        4,
		QueueMax:        32,
		SyncWindow:      time.Millisecond,
		JoinEvery:       100 * time.Millisecond,
		InstanceTimeout: 20 * time.Second,
		ReproposeAfter:  300 * time.Millisecond,
		// A dead peer's links give up fast, so its queued frames drop and
		// the restart tests exercise catch-up repair rather than riding the
		// redial queue.
		Reconnect:   netrun.ReconnectPolicy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, MaxAttempts: 2},
		RepairEvery: 50 * time.Millisecond,
		StallAfter:  200 * time.Millisecond,
	}
}

// appendAll submits n payloads on one client connection and waits for
// every ack, returning req → committed seq for the CodeOK ones.
func appendAll(t *testing.T, addr string, n int, tag string) map[uint64]uint64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(60 * time.Second))
	for i := 0; i < n; i++ {
		if err := WriteClientMsg(conn, Append{Req: uint64(i), Payload: []byte(fmt.Sprintf("%s-%d", tag, i))}); err != nil {
			t.Fatal(err)
		}
	}
	seqs := make(map[uint64]uint64, n)
	for len(seqs) < n {
		msg, err := ReadClientMsg(conn)
		if err != nil {
			t.Fatalf("after %d of %d acks: %v", len(seqs), n, err)
		}
		ack, ok := msg.(AppendAck)
		if !ok {
			t.Fatalf("unexpected reply %#v", msg)
		}
		if ack.Code != CodeOK {
			t.Fatalf("append %d: %s", ack.Req, CodeString(ack.Code))
		}
		seqs[ack.Req] = ack.Seq
	}
	return seqs
}

func waitFrontier(t *testing.T, d *Daemon, want uint64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for d.Frontier() < want {
		if time.Now().After(deadline) {
			t.Fatalf("daemon %d frontier %d, want ≥ %d (replica err: %v)",
				d.cfg.Daemon, d.Frontier(), want, d.Err())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// canonicalPrefix fetches a daemon's committed prefix through its
// catch-up listener and re-encodes it with the daemon-local observation
// fields (decider counts, timestamps) zeroed: what is left — seq, value,
// payloads, validity — is exactly what agreement promises to be
// byte-identical across daemons.
func canonicalPrefix(t *testing.T, catchupAddr string, n uint64) []string {
	t.Helper()
	enc, err := netrun.FetchCatchup(catchupAddr, 0, 2*time.Second)
	if err != nil {
		t.Fatalf("catch-up from %s: %v", catchupAddr, err)
	}
	if uint64(len(enc)) < n {
		t.Fatalf("catch-up from %s returned %d records, want ≥ %d", catchupAddr, len(enc), n)
	}
	out := make([]string, 0, n)
	for _, e := range enc[:n] {
		rec, err := store.DecodeRecord(e)
		if err != nil {
			t.Fatal(err)
		}
		rec.Deciders, rec.Correct, rec.DistinctValues, rec.CertDeficits = 0, 0, 0, 0
		rec.OpenedNs, rec.CommittedNs = 0, 0
		out = append(out, string(store.AppendRecord(nil, rec)))
	}
	return out
}

func checkAgreement(t *testing.T, ds []*Daemon, upTo uint64) {
	t.Helper()
	want := canonicalPrefix(t, ds[0].rep.CatchupAddr(), upTo)
	for _, d := range ds[1:] {
		got := canonicalPrefix(t, d.rep.CatchupAddr(), upTo)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("daemon %d record %d diverges from daemon 0", d.cfg.Daemon, i)
			}
		}
	}
}

// TestClusterCommitsAndConverges: a 4-daemon × 2-node cluster commits
// client appends over real sockets; every daemon converges to the same
// canonical committed prefix; the metrics and health endpoints serve.
func TestClusterCommitsAndConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon TCP cluster")
	}
	ds, _, _ := testCluster(t, 4, 2)

	seqs := appendAll(t, ds[0].ClientAddr(), 12, "conv")
	var top uint64
	for _, seq := range seqs {
		if seq >= top {
			top = seq + 1
		}
	}
	for _, d := range ds {
		waitFrontier(t, d, top, 30*time.Second)
	}
	checkAgreement(t, ds, top)

	// Status probe against a follower.
	conn, err := net.Dial("tcp", ds[2].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteClientMsg(conn, Status{}); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadClientMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := msg.(StatusAck)
	if !ok || st.Node != 2 || st.Leader || st.Frontier < top {
		t.Fatalf("status = %#v", msg)
	}
	if st.PeersAlive < 4 {
		t.Errorf("peers alive = %d, want 4 (join loop)", st.PeersAlive)
	}

	// Metrics + health endpoints.
	body := httpGet(t, "http://"+ds[0].MetricsAddr()+"/metrics")
	for _, want := range []string{"fastba_commit_seq", "fastba_commits_total", "fastba_net_frames_sent_total", "fastba_peers_alive"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if h := httpGet(t, "http://"+ds[0].MetricsAddr()+"/healthz"); !strings.Contains(h, "ok") {
		t.Errorf("/healthz = %q", h)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestClusterKillRestart: killing one daemon (25% of the population,
// under the < 1/3 fail-silent bound) must not stop commits. The append
// stream keeps flowing across the kill and the restart, so the restarted
// daemon exercises both recovery paths: the WAL prefix plus startup
// catch-up for everything committed while it was dark, and the runtime
// repair loop for instances whose LogOpen broadcast it missed (open at
// restart time, committed just after its startup fetch). Everyone
// converges on the same canonical log.
func TestClusterKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon TCP cluster")
	}
	ds, dirs, bases := testCluster(t, 4, 2)

	first := appendAll(t, ds[0].ClientAddr(), 8, "pre")
	var top uint64
	for _, seq := range first {
		if seq >= top {
			top = seq + 1
		}
	}
	waitFrontier(t, ds[3], top, 30*time.Second)
	preKill := ds[3].Frontier()

	ds[3].Kill()

	// Background stream: keeps the pipeline full while daemon 3 is dark
	// and while it restarts, so some LogOpen broadcasts are lost for good
	// and only catch-up repair can close those instances on daemon 3.
	stop := make(chan struct{})
	streamed := make(chan uint64, 1)
	go func() {
		var streamTop uint64
		defer func() { streamed <- streamTop }() // also on t.Fatal's Goexit
		round := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, seq := range appendAll(t, ds[0].ClientAddr(), 4, fmt.Sprintf("live-%d", round)) {
				if seq >= streamTop {
					streamTop = seq + 1
				}
			}
			round++
		}
	}()

	time.Sleep(300 * time.Millisecond) // commits accumulate with daemon 3 dark

	re, err := New(testConfig(bases, dirs, 3, 2))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	// New performed the startup catch-up fetch; while the daemon is still
	// off the mesh, the stream commits (and retires) more instances. Those
	// are gone from the open set by the time the mesh joins — no broadcast
	// or reproposal will ever mention them again — so only the runtime
	// repair loop can close that gap. Hold Start until the leader is
	// demonstrably past the fetched prefix so the gap really exists.
	preFetch := re.rep.Frontier()
	for deadline := time.Now().Add(30 * time.Second); ds[0].Frontier() < preFetch+3; {
		if time.Now().After(deadline) {
			t.Fatalf("leader never advanced past the restart's fetched prefix %d", preFetch)
		}
		time.Sleep(10 * time.Millisecond)
	}
	re.Start()
	ds[3] = re
	t.Cleanup(re.Kill)
	if got := re.rep.Recovered(); got < int(preKill) {
		t.Errorf("restarted daemon recovered %d records, want ≥ the pre-kill frontier %d", got, preKill)
	}

	time.Sleep(500 * time.Millisecond) // stream spans the restart window
	close(stop)
	if st := <-streamed; st > top {
		top = st
	}

	for _, d := range ds {
		waitFrontier(t, d, top, 60*time.Second)
	}
	checkAgreement(t, ds, top)
	if re.rep.Repaired() == 0 {
		t.Error("restarted daemon repaired nothing through catch-up")
	}
	if re.rep.Recovered() <= int(preKill) {
		t.Errorf("startup catch-up transferred nothing: recovered %d, pre-kill frontier %d", re.rep.Recovered(), preKill)
	}
}

// TestShutdownNoLostAcks: a graceful shutdown racing a burst of appends
// must resolve every request exactly once, and every CodeOK ack must
// name a sequence that is durable in the WAL after the daemon exits —
// acked implies on disk.
func TestShutdownNoLostAcks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon TCP cluster")
	}
	ds, dirs, _ := testCluster(t, 4, 2)

	conn, err := net.Dial("tcp", ds[0].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(60 * time.Second))
	const burst = 24
	for i := 0; i < burst; i++ {
		if err := WriteClientMsg(conn, Append{Req: uint64(i), Payload: []byte(fmt.Sprintf("ack-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
		defer cancel()
		shutdownDone <- ds[0].Shutdown(ctx)
	}()

	acked := make(map[uint64]byte, burst)
	okSeqs := make(map[uint64]string)
	for len(acked) < burst {
		msg, err := ReadClientMsg(conn)
		if err != nil {
			break // daemon closed the connection after the drain
		}
		ack, ok := msg.(AppendAck)
		if !ok {
			t.Fatalf("unexpected reply %#v", msg)
		}
		if _, dup := acked[ack.Req]; dup {
			t.Fatalf("request %d acked twice", ack.Req)
		}
		acked[ack.Req] = ack.Code
		if ack.Code == CodeOK {
			okSeqs[ack.Seq] = fmt.Sprintf("ack-%d", ack.Req)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if len(okSeqs) == 0 {
		t.Fatal("no append committed before the drain finished")
	}
	for req, code := range acked {
		if code != CodeOK && code != CodeShutdown {
			t.Errorf("request %d resolved with %s", req, CodeString(code))
		}
	}

	// Durability: every CodeOK-acked payload is in the closed WAL.
	st, err := store.Open(dirs[0], store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := st.Records()
	for seq, payload := range okSeqs {
		if seq >= uint64(len(recs)) {
			t.Fatalf("acked seq %d beyond recovered frontier %d", seq, len(recs))
			continue
		}
		found := false
		for _, p := range recs[seq].Payloads {
			if string(p) == payload {
				found = true
			}
		}
		if !found {
			t.Errorf("acked payload %q missing from durable record %d", payload, seq)
		}
	}

	// The drained daemon no longer accepts connections.
	if c, err := net.DialTimeout("tcp", ds[0].ClientAddr(), 500*time.Millisecond); err == nil {
		c.Close()
		t.Error("shut-down daemon still accepting connections")
	}
}
