package simnet

import (
	"container/heap"

	"github.com/fastba/fastba/internal/prng"
)

// Scheduler decides the delivery order of in-flight messages in an
// asynchronous execution. The runner guarantees eventual delivery by
// construction: every queued envelope is eventually popped because
// executions are finite; adversarial schedulers additionally enforce an age
// bound so no message is starved behind an unbounded stream.
type Scheduler interface {
	// Push enqueues an envelope.
	Push(e Envelope)
	// Pop removes and returns the next envelope to deliver. It must only
	// be called when Len() > 0.
	Pop() Envelope
	// Len returns the number of queued envelopes.
	Len() int
}

// AsyncRunner executes nodes under asynchrony: the scheduler picks any
// in-flight message to deliver next. Time is the causal depth described in
// the package comment; Metrics.Rounds reports the maximum depth, i.e. the
// longest chain of dependent messages in the execution.
type AsyncRunner struct {
	nodes    []Node
	sched    Scheduler
	metrics  *Metrics
	observer Observer
	stop     func() bool
	inj      *Injector
	delayed  *delayedScheduler
	seq      uint64
	// MaxDeliveries guards against runaway executions (0 = no limit).
	MaxDeliveries int64
}

// stopCheckInterval is how many deliveries pass between cancellation
// probes: frequent enough to abandon large runs promptly, rare enough to
// keep the probe off the per-delivery hot path.
const stopCheckInterval = 256

// NewAsync returns an asynchronous runner using the given scheduler.
func NewAsync(nodes []Node, sched Scheduler) *AsyncRunner {
	return &AsyncRunner{nodes: nodes, sched: sched, metrics: newMetrics(len(nodes))}
}

// Observe registers an observer invoked on every delivery. It must be
// called before Run.
func (r *AsyncRunner) Observe(o Observer) { r.observer = o }

// StopWhen registers a cancellation probe polled every stopCheckInterval
// deliveries; when it returns true the run abandons the remaining queue
// and returns the metrics collected so far. It must be called before Run.
func (r *AsyncRunner) StopWhen(f func() bool) { r.stop = f }

// InjectFaults installs a fault plan, judged at send time: dropped
// messages are metered as sent but never enqueued, duplicates are enqueued
// twice, and a delay of d both inflates the message's causal depth by d
// and holds it back past the next d deliveries — so later sends can
// overtake it under any Scheduler. It must be called before Run.
func (r *AsyncRunner) InjectFaults(plan FaultPlan) {
	r.inj = NewInjector(plan, len(r.nodes))
	if plan.DelayProb > 0 || plan.linkDelays() {
		r.delayed = &delayedScheduler{inner: r.sched}
		r.sched = r.delayed
	}
}

type asyncCtx struct {
	r    *AsyncRunner
	self NodeID
	now  int
}

func (c *asyncCtx) Now() int { return c.now }

func (c *asyncCtx) Send(to NodeID, m Message) {
	e := Envelope{From: c.self, To: to, Msg: m, Depth: c.now + 1, seq: c.r.seq}
	c.r.seq++
	validateEnvelope(len(c.r.nodes), e)
	c.r.metrics.recordSend(e)
	if c.r.inj == nil {
		c.r.sched.Push(e)
		return
	}
	v := c.r.inj.Judge(e, c.now)
	e.Depth += v.Delay
	for i := 0; i < v.Copies; i++ {
		if i > 0 { // duplicates carry their own sequence number
			e.seq = c.r.seq
			c.r.seq++
		}
		if v.Delay > 0 && c.r.delayed != nil {
			c.r.delayed.PushDelayed(e, v.Delay)
		} else {
			c.r.sched.Push(e)
		}
	}
}

// Run initializes all nodes and processes messages to quiescence (or until
// MaxDeliveries). It returns the collected metrics.
func (r *AsyncRunner) Run() *Metrics {
	// One context is reused across activations (contexts are only valid for
	// the duration of the call), keeping the loop free of per-delivery
	// allocations.
	ctx := &asyncCtx{r: r}
	for id, n := range r.nodes {
		ctx.self, ctx.now = id, 0
		n.Init(ctx)
	}
	for r.sched.Len() > 0 {
		if r.MaxDeliveries > 0 && r.metrics.Delivered >= r.MaxDeliveries {
			break
		}
		if r.stop != nil && r.metrics.Delivered%stopCheckInterval == 0 && r.stop() {
			break
		}
		e := r.sched.Pop()
		// Receive-side crash check: fail-silence also drops messages that
		// arrive (possibly delayed) inside the destination's crash window.
		if r.inj != nil && r.inj.CrashedAt(e.To, e.Depth) {
			continue
		}
		r.metrics.recordDeliver(e)
		ctx.self, ctx.now = e.To, e.Depth
		r.nodes[e.To].Deliver(ctx, e.From, e.Msg)
		if r.observer != nil {
			r.observer(e)
		}
	}
	return r.metrics
}

// fifoScheduler delivers messages in send order.
type fifoScheduler struct {
	q    []Envelope
	head int
}

// NewFIFO returns a first-in-first-out scheduler: the most benign
// asynchronous network, equivalent to a synchronous execution with unit
// delays.
func NewFIFO() Scheduler { return &fifoScheduler{} }

func (s *fifoScheduler) Push(e Envelope) { s.q = append(s.q, e) }

func (s *fifoScheduler) Len() int { return len(s.q) - s.head }

func (s *fifoScheduler) Pop() Envelope {
	e := s.q[s.head]
	s.q[s.head] = Envelope{}
	s.head++
	if s.head > 1024 && s.head*2 > len(s.q) {
		s.q = append([]Envelope(nil), s.q[s.head:]...)
		s.head = 0
	}
	return e
}

// randomScheduler delivers a uniformly random queued message, modelling a
// network with unpredictable but non-malicious delays.
type randomScheduler struct {
	q   []Envelope
	src *prng.Source
}

// NewRandom returns a seeded random-order scheduler.
func NewRandom(seed uint64) Scheduler {
	return &randomScheduler{src: prng.New(seed)}
}

func (s *randomScheduler) Push(e Envelope) { s.q = append(s.q, e) }

func (s *randomScheduler) Len() int { return len(s.q) }

func (s *randomScheduler) Pop() Envelope {
	i := s.src.Intn(len(s.q))
	e := s.q[i]
	last := len(s.q) - 1
	s.q[i] = s.q[last]
	s.q[last] = Envelope{}
	s.q = s.q[:last]
	return e
}

// Priority classifies an envelope for the adversarial scheduler: lower
// classes are delivered first.
type Priority func(e Envelope) int

// advItem is a queued envelope with its heap bookkeeping.
type advItem struct {
	env   Envelope
	class int
}

type advHeap []advItem

func (h advHeap) Len() int { return len(h) }
func (h advHeap) Less(i, j int) bool {
	if h[i].class != h[j].class {
		return h[i].class < h[j].class
	}
	return h[i].env.seq < h[j].env.seq
}
func (h advHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *advHeap) Push(x any)   { *h = append(*h, x.(advItem)) }
func (h *advHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// adversarialScheduler delivers low-priority-class messages first but
// enforces eventual delivery: whenever the oldest queued message has waited
// for more than maxAge subsequent deliveries, it is delivered regardless of
// class. This models an asynchronous adversary that reorders freely inside
// a reliability envelope (§2.1: "a message sent will eventually be
// delivered"). Both internal heaps use lazy deletion keyed on the pending
// set.
type adversarialScheduler struct {
	byClass   advHeap // ordered by (class, seq)
	byAge     advHeap // ordered by (0, seq) == send order
	pri       Priority
	maxAge    uint64
	delivered uint64
	pending   map[uint64]bool
}

// NewAdversarial returns a scheduler that orders deliveries by the given
// priority function, subject to an age bound of maxAge deliveries.
func NewAdversarial(pri Priority, maxAge uint64) Scheduler {
	if maxAge == 0 {
		panic("simnet: adversarial scheduler needs a positive age bound")
	}
	return &adversarialScheduler{pri: pri, maxAge: maxAge, pending: make(map[uint64]bool)}
}

func (s *adversarialScheduler) Push(e Envelope) {
	s.pending[e.seq] = true
	heap.Push(&s.byClass, advItem{env: e, class: s.pri(e)})
	heap.Push(&s.byAge, advItem{env: e})
}

func (s *adversarialScheduler) Len() int { return len(s.pending) }

func (s *adversarialScheduler) Pop() Envelope {
	s.delivered++
	s.clean(&s.byAge)
	s.clean(&s.byClass)
	// Age rule first: the oldest pending message must go out if starved.
	if s.byAge.Len() > 0 && s.delivered > s.byAge[0].env.seq+s.maxAge {
		return s.take(&s.byAge)
	}
	return s.take(&s.byClass)
}

// clean pops entries whose envelopes were already delivered via the other
// heap.
func (s *adversarialScheduler) clean(h *advHeap) {
	for h.Len() > 0 && !s.pending[(*h)[0].env.seq] {
		heap.Pop(h)
	}
}

func (s *adversarialScheduler) take(h *advHeap) Envelope {
	e := heap.Pop(h).(advItem).env
	delete(s.pending, e.seq)
	return e
}

// heldItem is a delayed envelope waiting to re-enter the inner scheduler.
type heldItem struct {
	env     Envelope
	release uint64 // the pop count at which the envelope becomes eligible
}

type heldHeap []heldItem

func (h heldHeap) Len() int { return len(h) }
func (h heldHeap) Less(i, j int) bool {
	if h[i].release != h[j].release {
		return h[i].release < h[j].release
	}
	return h[i].env.seq < h[j].env.seq
}
func (h heldHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *heldHeap) Push(x any)   { *h = append(*h, x.(heldItem)) }
func (h *heldHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// delayedScheduler realizes fault-plan delays under asynchrony: a message
// delayed by d is held outside the inner scheduler until d further
// deliveries have happened, so any later send can overtake it regardless
// of the inner delivery order. If the inner queue ever empties while
// messages are still held, the earliest held message is released
// immediately — a delay reorders, it never deadlocks the execution.
type delayedScheduler struct {
	inner Scheduler
	pops  uint64
	held  heldHeap
}

// PushDelayed enqueues an envelope that becomes eligible after d more
// deliveries.
func (s *delayedScheduler) PushDelayed(e Envelope, d int) {
	heap.Push(&s.held, heldItem{env: e, release: s.pops + uint64(d)})
}

func (s *delayedScheduler) Push(e Envelope) { s.inner.Push(e) }

func (s *delayedScheduler) Len() int { return s.inner.Len() + len(s.held) }

func (s *delayedScheduler) Pop() Envelope {
	s.pops++
	for len(s.held) > 0 && s.held[0].release <= s.pops {
		s.inner.Push(heap.Pop(&s.held).(heldItem).env)
	}
	if s.inner.Len() == 0 { // only held messages remain: release the earliest
		s.inner.Push(heap.Pop(&s.held).(heldItem).env)
	}
	return s.inner.Pop()
}
