package simnet

import "sync"

// Catch-up state transfer: a restarted decision-log node that recovered
// its WAL but still misses part of the committed prefix fetches the gap
// from a peer. The request/response pair travels as ordinary wire frames
// (kindCatchupReq/kindCatchupResp in internal/wire), served by the TCP
// cluster's dedicated catch-up listener and by the Fabric's registered
// handler alike. Records are opaque encoded bytes (internal/store's
// record encoding): the transfer layer moves the committed prefix
// without knowing its schema.

// CatchupReq asks a peer for its committed records starting at From.
type CatchupReq struct {
	// From is the first missing sequence number (the requester's
	// recovered frontier).
	From uint64
	// Max bounds the records per response chunk (0: the server picks).
	Max uint32
}

// WireSize returns the encoded payload size.
func (m CatchupReq) WireSize() int { return 12 }

// Kind implements Message.
func (m CatchupReq) Kind() string { return "catchup-req" }

// CatchupResp carries one chunk of encoded committed records, in
// sequence order. An empty chunk terminates the transfer.
type CatchupResp struct {
	Records [][]byte
}

// WireSize returns the encoded payload size: count u32 + per-record
// length prefixes and bytes.
func (m CatchupResp) WireSize() int {
	size := 4
	for _, r := range m.Records {
		size += 4 + len(r)
	}
	return size
}

// Kind implements Message.
func (m CatchupResp) Kind() string { return "catchup-resp" }

// CatchupHandler serves one catch-up request chunk: encoded committed
// records [from, from+max), empty when the server holds nothing past
// from. Handlers must be safe for concurrent use.
type CatchupHandler func(from uint64, max int) [][]byte

// catchup is the Fabric's registered catch-up surface.
type catchup struct {
	mu      sync.RWMutex
	handler CatchupHandler
}

// ServeCatchup registers the fabric's catch-up handler: in-process peers
// fetch the committed prefix through Catchup. Safe to call before or
// after Start.
func (f *Fabric) ServeCatchup(h CatchupHandler) {
	f.catchup.mu.Lock()
	f.catchup.handler = h
	f.catchup.mu.Unlock()
}

// Catchup serves one chunk from the registered handler; ok reports
// whether a handler is serving.
func (f *Fabric) Catchup(from uint64, max int) ([][]byte, bool) {
	f.catchup.mu.RLock()
	h := f.catchup.handler
	f.catchup.mu.RUnlock()
	if h == nil {
		return nil, false
	}
	return h(from, max), true
}
