package simnet

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkFabricParallel measures the Fabric's sharded drain with
// constant-work relay nodes: workers=1 is the serial baseline, the default
// worker count is min(GOMAXPROCS, n). On a single-core host the two arms
// should track each other (the parallel machinery must not cost anything
// when it cannot help); with cores available the default arm shows the
// multi-core speedup.
func BenchmarkFabricParallel(b *testing.B) {
	const n, fanout, ttl = 64, 4, 256
	for _, workers := range []int{1, 0} {
		name := "workers=default"
		if workers > 0 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var delivered int64
			for i := 0; i < b.N; i++ {
				nodes := make([]Node, n)
				for id := range nodes {
					nodes[id] = &relayNode{id: id, n: n, fanout: fanout, ttl: ttl}
				}
				f := NewFabric(nodes, CounterClock, true)
				if workers > 0 {
					f.SetWorkers(workers)
				}
				f.Start()
				if !f.AwaitQuiescence(time.Minute) {
					b.Fatal("fabric did not quiesce")
				}
				f.Stop()
				delivered = f.Metrics().Delivered
				if want := int64(n * fanout * (ttl + 1)); delivered != want {
					b.Fatalf("delivered %d, want %d", delivered, want)
				}
			}
			b.ReportMetric(float64(delivered), "deliveries")
		})
	}
}
