package simnet

import (
	"fmt"
	"strings"

	"github.com/fastba/fastba/internal/prng"
)

// This file is the fault-injection fabric: a deterministic, seed-driven
// description of network and node faults (FaultPlan) and its compiled form
// (Injector) consulted on the send path of every runtime. The paper's model
// (§2.1) assumes authenticated *reliable* channels; the fault fabric
// deliberately steps outside that envelope — message loss, duplication,
// extra latency, link partitions, node crashes — so the experiment harness
// can measure where the protocol's guarantees actually bend, and the
// protocol-invariant oracles can check which ones must never break.
//
// Determinism: every per-message verdict is a pure hash of
// (plan seed, sender, receiver, per-link send index). The deterministic
// runners (sync, async) therefore reproduce fault schedules bit-for-bit
// per seed. Under the concurrent runtimes (goroutines, TCP) the per-link
// send indices follow the real scheduling order, so fault schedules vary
// between runs there — like the delivery order itself — and only outcome
// properties are comparable.

// Partition cuts the links between a node set A and the rest of the system
// for a window of logical time: messages crossing the cut in either
// direction while the partition is active are dropped. Multiple partitions
// compose (a message is dropped if any active partition cuts its link).
type Partition struct {
	// A is one side of the cut; every node not in A is on the other side.
	A []NodeID `json:"a"`
	// From is the first time unit (send-time: round, causal depth, or the
	// sender's delivery count, depending on the runtime clock) at which the
	// cut is active.
	From int `json:"from"`
	// Until is the heal time: the first time unit at which the cut is no
	// longer active. Zero means the partition never heals.
	Until int `json:"until,omitempty"`
}

// Crash makes a node fail-silent for a window of logical time: while
// crashed, everything the node sends and everything addressed to it is
// dropped. The node's in-memory protocol state is preserved across the
// window, so a recovery models a process restart with state intact
// (crash-recover), not amnesia.
type Crash struct {
	// Node is the crashing node.
	Node NodeID `json:"node"`
	// At is the crash time (send-time units, as for Partition.From).
	At int `json:"at"`
	// RecoverAt is the recovery time. Zero means the node never recovers.
	RecoverAt int `json:"recoverAt,omitempty"`
}

// LinkFault is a per-directed-link latency/loss override, the lowering
// target of the scenario generator's latency models (internal/scenario).
// Fixed latency is Delay; a uniform distribution adds a per-message draw in
// [0, Jitter]; a long-tail distribution adds TailDelay with probability
// TailProb; Loss drops the message outright. All per-message draws extend
// the same (Seed, from, to, link index) hash chain as the global knobs, so
// link verdicts are exactly as deterministic as the rest of the plan.
type LinkFault struct {
	// From and To name the directed link the fault applies to.
	From NodeID `json:"from"`
	To   NodeID `json:"to"`
	// Delay is a fixed extra latency (time units) added to every message.
	Delay int `json:"delay,omitempty"`
	// Jitter adds a uniform per-message extra delay in [0, Jitter].
	Jitter int `json:"jitter,omitempty"`
	// TailProb is the probability of a long-tail event adding TailDelay.
	TailProb  float64 `json:"tailProb,omitempty"`
	TailDelay int     `json:"tailDelay,omitempty"`
	// Loss is the per-message drop probability on this link.
	Loss float64 `json:"loss,omitempty"`
}

// FaultPlan is a deterministic, seed-driven fault schedule applied on the
// delivery path of every runtime. The zero value is the fault-free plan.
//
// Probabilistic knobs (DropProb, DupProb, DelayProb) are judged per
// message by hashing (Seed, sender, receiver, per-link send index), so a
// plan plus a deterministic runner reproduces the exact same schedule on
// every run. Structural faults (Partitions, Crashes) are windows in
// logical send time.
type FaultPlan struct {
	// Seed keys the per-message fault hashes. Two plans with equal knobs
	// but different seeds produce different (equally deterministic)
	// schedules.
	Seed uint64 `json:"seed,omitempty"`
	// DropProb is the probability that a message is silently lost.
	DropProb float64 `json:"dropProb,omitempty"`
	// DupProb is the probability that a message is delivered twice.
	DupProb float64 `json:"dupProb,omitempty"`
	// DelayProb is the probability that a message is delayed; a delayed
	// message arrives 1..MaxDelay time units late (uniform, deterministic
	// per message). Under the synchronous runner delay defers delivery by
	// whole rounds; under the asynchronous runners it additionally holds
	// the message back so later sends can overtake it (reordering).
	DelayProb float64 `json:"delayProb,omitempty"`
	// MaxDelay bounds the extra latency of a delayed message (default 1
	// when DelayProb > 0).
	MaxDelay int `json:"maxDelay,omitempty"`
	// Partitions are link cuts with heal times.
	Partitions []Partition `json:"partitions,omitempty"`
	// Crashes are fail-silent node windows.
	Crashes []Crash `json:"crashes,omitempty"`
	// Links are per-directed-link latency/loss overrides, applied on top of
	// the global probabilistic knobs.
	Links []LinkFault `json:"links,omitempty"`
}

// IsZero reports whether the plan injects no faults at all.
func (p FaultPlan) IsZero() bool {
	return p.DropProb == 0 && p.DupProb == 0 && p.DelayProb == 0 &&
		len(p.Partitions) == 0 && len(p.Crashes) == 0 && len(p.Links) == 0
}

// Lossless reports whether the plan can never destroy a message: only
// duplication, delay and reordering. Termination oracles are applicable
// exactly for lossless plans — a lossy network may legitimately starve a
// node of its poll answers.
func (p FaultPlan) Lossless() bool {
	if p.DropProb != 0 || len(p.Partitions) != 0 || len(p.Crashes) != 0 {
		return false
	}
	for _, lf := range p.Links {
		if lf.Loss > 0 {
			return false
		}
	}
	return true
}

// linkDelays reports whether any link fault can add latency, which under
// the asynchronous runners requires the delayed-release scheduler wrapper.
func (p FaultPlan) linkDelays() bool {
	for _, lf := range p.Links {
		if lf.Delay > 0 || lf.Jitter > 0 || (lf.TailProb > 0 && lf.TailDelay > 0) {
			return true
		}
	}
	return false
}

// Validate checks the plan against a system of n nodes.
func (p FaultPlan) Validate(n int) error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"DropProb", p.DropProb}, {"DupProb", p.DupProb}, {"DelayProb", p.DelayProb}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("simnet: fault plan %s = %v outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("simnet: fault plan MaxDelay = %d negative", p.MaxDelay)
	}
	for i, part := range p.Partitions {
		if len(part.A) == 0 {
			return fmt.Errorf("simnet: partition %d has an empty side", i)
		}
		for _, id := range part.A {
			if id < 0 || id >= n {
				return fmt.Errorf("simnet: partition %d contains invalid node %d (n=%d)", i, id, n)
			}
		}
		if part.Until != 0 && part.Until <= part.From {
			return fmt.Errorf("simnet: partition %d heals at %d, before it forms at %d", i, part.Until, part.From)
		}
	}
	for i, c := range p.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("simnet: crash %d names invalid node %d (n=%d)", i, c.Node, n)
		}
		if c.RecoverAt != 0 && c.RecoverAt <= c.At {
			return fmt.Errorf("simnet: crash %d recovers at %d, before it crashes at %d", i, c.RecoverAt, c.At)
		}
	}
	for i, lf := range p.Links {
		if lf.From < 0 || lf.From >= n || lf.To < 0 || lf.To >= n {
			return fmt.Errorf("simnet: link fault %d names invalid link %d→%d (n=%d)", i, lf.From, lf.To, n)
		}
		if lf.Delay < 0 || lf.Jitter < 0 || lf.TailDelay < 0 {
			return fmt.Errorf("simnet: link fault %d has a negative delay knob", i)
		}
		if lf.TailProb < 0 || lf.TailProb > 1 || lf.Loss < 0 || lf.Loss > 1 {
			return fmt.Errorf("simnet: link fault %d has a probability outside [0, 1]", i)
		}
	}
	return nil
}

// Label renders a compact human-readable summary of the plan's knobs, used
// as the default sweep-cell label for unnamed plans.
func (p FaultPlan) Label() string {
	if p.IsZero() {
		return ""
	}
	var parts []string
	if p.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop%.3g", p.DropProb))
	}
	if p.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup%.3g", p.DupProb))
	}
	if p.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay%.3g×%d", p.DelayProb, p.maxDelay()))
	}
	if len(p.Partitions) > 0 {
		parts = append(parts, fmt.Sprintf("part%d", len(p.Partitions)))
	}
	if len(p.Crashes) > 0 {
		parts = append(parts, fmt.Sprintf("crash%d", len(p.Crashes)))
	}
	if len(p.Links) > 0 {
		parts = append(parts, fmt.Sprintf("links%d", len(p.Links)))
	}
	return strings.Join(parts, "+")
}

func (p FaultPlan) maxDelay() int {
	if p.MaxDelay <= 0 {
		return 1
	}
	return p.MaxDelay
}

// Verdict is the injector's decision for one message.
type Verdict struct {
	// Copies is how many times the message reaches the destination mailbox:
	// 0 = dropped, 1 = normal, 2 = duplicated.
	Copies int
	// Delay is the extra logical latency in time units (0 = on time).
	Delay int
}

// Injector is a compiled FaultPlan. It is consulted once per send; apart
// from per-sender link counters it is stateless, so the same plan yields
// the same verdict sequence for the same send sequence.
//
// Concurrency: Judge mutates only counters[from][·]. Every runtime sends a
// node's messages from a single goroutine (the event-loop runners are
// single-threaded; on the Fabric a node's sends happen during sequential
// Init or on the node's own delivery goroutine), so Judge is safe without
// locks under the same single-writer discipline as the Fabric's metric
// shards.
type Injector struct {
	plan     FaultPlan
	maxDelay int
	// partMask[i] marks side-A membership for partition i, as a bitmask
	// over node IDs.
	partMask [][]uint64
	// crashed[id] holds the crash windows of node id (rarely more than one).
	crashed  [][]Crash
	counters [][]uint32 // per-link send index, [from][to]
	// links is the sparse per-directed-link override table, keyed
	// from<<32 | to. Nil when the plan has no link faults.
	links map[uint64]*LinkFault
}

// linkKey packs a directed link into the links map key.
func linkKey(from, to NodeID) uint64 { return uint64(uint32(from))<<32 | uint64(uint32(to)) }

// NewInjector compiles a plan for a system of n nodes. It panics on
// invalid plans — callers validate at configuration time.
func NewInjector(plan FaultPlan, n int) *Injector {
	if err := plan.Validate(n); err != nil {
		panic(err)
	}
	inj := &Injector{
		plan:     plan,
		maxDelay: plan.maxDelay(),
		crashed:  make([][]Crash, n),
		counters: make([][]uint32, n),
	}
	for i := range inj.counters {
		inj.counters[i] = make([]uint32, n)
	}
	words := (n + 63) / 64
	for _, part := range plan.Partitions {
		mask := make([]uint64, words)
		for _, id := range part.A {
			mask[id>>6] |= 1 << (id & 63)
		}
		inj.partMask = append(inj.partMask, mask)
	}
	for _, c := range plan.Crashes {
		inj.crashed[c.Node] = append(inj.crashed[c.Node], c)
	}
	if len(plan.Links) > 0 {
		inj.links = make(map[uint64]*LinkFault, len(plan.Links))
		for i := range plan.Links {
			lf := &plan.Links[i]
			inj.links[linkKey(lf.From, lf.To)] = lf
		}
	}
	return inj
}

// windowActive reports whether a [from, until) window (until 0 = forever)
// contains time t.
func windowActive(from, until, t int) bool {
	return t >= from && (until == 0 || t < until)
}

// CrashedAt reports whether node id is inside a crash window at time t.
func (inj *Injector) CrashedAt(id NodeID, t int) bool {
	for _, c := range inj.crashed[id] {
		if windowActive(c.At, c.RecoverAt, t) {
			return true
		}
	}
	return false
}

// cut reports whether any active partition separates from and to at time t.
func (inj *Injector) cut(from, to NodeID, t int) bool {
	for i, part := range inj.plan.Partitions {
		if !windowActive(part.From, part.Until, t) {
			continue
		}
		mask := inj.partMask[i]
		if (mask[from>>6]>>(uint(from)&63))&1 != (mask[to>>6]>>(uint(to)&63))&1 {
			return true
		}
	}
	return false
}

// Judge decides the fate of one message sent at logical time sendTime.
// Structural faults (crashes, partitions) are checked first; the
// probabilistic knobs are then resolved from a pure hash of the plan seed
// and the message's link coordinates. Judge covers the sending side only:
// every runner additionally consults CrashedAt at delivery time, so a
// message that arrives (possibly delayed) inside the destination's crash
// window vanishes at the door — fail-silence covers receipt too.
func (inj *Injector) Judge(e Envelope, sendTime int) Verdict {
	if inj.CrashedAt(e.From, sendTime) || inj.CrashedAt(e.To, sendTime) {
		return Verdict{Copies: 0}
	}
	if inj.cut(e.From, e.To, sendTime) {
		return Verdict{Copies: 0}
	}
	v := Verdict{Copies: 1}
	p := inj.plan
	if p.DropProb == 0 && p.DupProb == 0 && p.DelayProb == 0 && inj.links == nil {
		return v
	}
	idx := inj.counters[e.From][e.To]
	inj.counters[e.From][e.To] = idx + 1
	h := prng.Hash4(p.Seed, uint64(e.From), uint64(e.To), uint64(idx))
	if p.DropProb > 0 && unit(h) < p.DropProb {
		return Verdict{Copies: 0}
	}
	h = prng.Mix64(h)
	if p.DupProb > 0 && unit(h) < p.DupProb {
		v.Copies = 2
	}
	h = prng.Mix64(h)
	if p.DelayProb > 0 && unit(h) < p.DelayProb {
		v.Delay = 1 + int(prng.Mix64(h)%uint64(inj.maxDelay))
	}
	// Per-link overrides extend the same hash chain, so plans without link
	// faults consume exactly the historical draw sequence.
	if lf, ok := inj.links[linkKey(e.From, e.To)]; ok {
		h = prng.Mix64(h)
		if lf.Loss > 0 && unit(h) < lf.Loss {
			return Verdict{Copies: 0}
		}
		extra := lf.Delay
		if lf.Jitter > 0 {
			h = prng.Mix64(h)
			extra += int(h % uint64(lf.Jitter+1))
		}
		if lf.TailProb > 0 {
			h = prng.Mix64(h)
			if unit(h) < lf.TailProb {
				extra += lf.TailDelay
			}
		}
		v.Delay += extra
	}
	return v
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
