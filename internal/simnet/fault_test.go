package simnet

import (
	"testing"
)

// chatterNode broadcasts one tick to every peer on Init and echoes every
// delivery back to its sender up to a per-node budget, generating enough
// traffic for the statistical fault assertions.
type chatterNode struct {
	id     int
	n      int
	budget int
	recv   int
}

type tick struct{}

func (tick) WireSize() int { return 1 }
func (tick) Kind() string  { return "tick" }

func (c *chatterNode) Init(ctx Context) {
	for to := 0; to < c.n; to++ {
		if to != c.id {
			ctx.Send(to, tick{})
		}
	}
}

func (c *chatterNode) Deliver(ctx Context, from NodeID, m Message) {
	c.recv++
	if c.budget > 0 {
		c.budget--
		ctx.Send(from, tick{})
	}
}

func chatter(n, budget int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &chatterNode{id: i, n: n, budget: budget}
	}
	return nodes
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{DropProb: -0.1},
		{DupProb: 1.5},
		{MaxDelay: -1},
		{Partitions: []Partition{{}}},
		{Partitions: []Partition{{A: []NodeID{9}}}},
		{Partitions: []Partition{{A: []NodeID{0}, From: 5, Until: 3}}},
		{Crashes: []Crash{{Node: -1}}},
		{Crashes: []Crash{{Node: 0, At: 4, RecoverAt: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(8); err == nil {
			t.Errorf("plan %d (%+v) unexpectedly valid", i, p)
		}
	}
	good := FaultPlan{
		DropProb: 0.5, DupProb: 0.1, DelayProb: 0.2, MaxDelay: 3,
		Partitions: []Partition{{A: []NodeID{0, 1}, From: 1, Until: 4}},
		Crashes:    []Crash{{Node: 2, At: 0}},
	}
	if err := good.Validate(8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if good.Lossless() || good.IsZero() {
		t.Fatal("lossy plan misclassified")
	}
	if (FaultPlan{DupProb: 0.1, DelayProb: 0.2}).Lossless() == false {
		t.Fatal("dup+delay plan should be lossless")
	}
}

// TestReceiveSideCrash: a message delayed into the destination's crash
// window vanishes at delivery, not only at send time — fail-silence
// covers receipt. Node 3 crashes for rounds [2, 6); with every message
// delayed by 3 rounds, everything sent in rounds 0..2 lands inside the
// window and must not reach it.
func TestReceiveSideCrash(t *testing.T) {
	nodes := chatter(8, 2)
	r := NewSync(nodes, nil)
	r.InjectFaults(FaultPlan{
		DelayProb: 1, MaxDelay: 1, Seed: 1, // MaxDelay 1 ⇒ every message +1 round
		Crashes: []Crash{{Node: 3, At: 1, RecoverAt: 4}},
	})
	r.Run(16)
	// Init sends (round 0, not crashed at send) would deliver in round 2
	// fault-free; the +1 delay lands them in the window, and peers'
	// echoes all fall inside it too — node 3 must have processed nothing.
	if got := nodes[3].(*chatterNode).recv; got != 0 {
		t.Fatalf("crashed receiver processed %d messages delivered inside its window", got)
	}
	if nodes[0].(*chatterNode).recv == 0 {
		t.Fatal("healthy nodes exchanged nothing")
	}
}

// TestInjectorDeterministic locks the pure-hash property: the same plan
// judges the same send sequence identically across injector instances.
func TestInjectorDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, DropProb: 0.3, DupProb: 0.2, DelayProb: 0.25, MaxDelay: 4}
	a := NewInjector(plan, 8)
	b := NewInjector(plan, 8)
	for i := 0; i < 2000; i++ {
		e := Envelope{From: i % 8, To: (i * 3) % 8, Msg: tick{}}
		va := a.Judge(e, i%7)
		vb := b.Judge(e, i%7)
		if va != vb {
			t.Fatalf("send %d: verdicts diverge: %+v vs %+v", i, va, vb)
		}
	}
}

// TestInjectorCrashAndPartition checks the structural windows.
func TestInjectorCrashAndPartition(t *testing.T) {
	inj := NewInjector(FaultPlan{
		Partitions: []Partition{{A: []NodeID{0, 1}, From: 2, Until: 5}},
		Crashes:    []Crash{{Node: 3, At: 1, RecoverAt: 4}},
	}, 8)
	cases := []struct {
		from, to, t int
		delivered   bool
	}{
		{0, 1, 3, true},  // same side of the cut
		{0, 2, 3, false}, // across the cut, window active
		{2, 0, 3, false}, // cut is bidirectional
		{0, 2, 1, true},  // before the cut forms
		{0, 2, 5, true},  // after the heal
		{3, 0, 2, false}, // crashed sender
		{0, 3, 2, false}, // crashed receiver
		{3, 0, 0, true},  // before the crash
		{3, 0, 5, true},  // after recovery and the heal
	}
	for _, c := range cases {
		v := inj.Judge(Envelope{From: c.from, To: c.to, Msg: tick{}}, c.t)
		if (v.Copies > 0) != c.delivered {
			t.Errorf("Judge(%d→%d at t=%d): copies=%d, want delivered=%v", c.from, c.to, c.t, v.Copies, c.delivered)
		}
	}
}

// TestSyncRunnerFaultsDeterministic: the sync runner under a lossy plan
// reproduces the exact same metrics across runs.
func TestSyncRunnerFaultsDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 7, DropProb: 0.2, DupProb: 0.1, DelayProb: 0.3, MaxDelay: 2}
	run := func() *Metrics {
		r := NewSync(chatter(10, 5), nil)
		r.InjectFaults(plan)
		return r.Run(64)
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Rounds != b.Rounds {
		t.Fatalf("lossy sync runs diverge: %d/%d vs %d/%d deliveries/rounds",
			a.Delivered, a.Rounds, b.Delivered, b.Rounds)
	}
	var sentA int64
	for i := range a.PerNode {
		sentA += a.PerNode[i].SentMsgs
	}
	if a.Delivered >= sentA {
		t.Fatalf("drop plan delivered %d of %d sends — nothing dropped", a.Delivered, sentA)
	}
}

// TestAsyncRunnerFaultsDeterministic: same property for the async runner,
// including the delay-holding scheduler wrapper.
func TestAsyncRunnerFaultsDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 11, DropProb: 0.15, DupProb: 0.1, DelayProb: 0.4, MaxDelay: 5}
	run := func() *Metrics {
		r := NewAsync(chatter(10, 5), NewRandom(3))
		r.InjectFaults(plan)
		return r.Run()
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Rounds != b.Rounds {
		t.Fatalf("lossy async runs diverge: %d/%d vs %d/%d deliveries/depth",
			a.Delivered, a.Rounds, b.Delivered, b.Rounds)
	}
}

// TestAsyncDelayOnlyLosesNothing: a lossless plan (delay + dup only) must
// deliver every copy eventually — the delayed scheduler cannot starve.
func TestAsyncDelayOnlyLosesNothing(t *testing.T) {
	r := NewAsync(chatter(8, 4), NewFIFO())
	r.InjectFaults(FaultPlan{Seed: 5, DelayProb: 0.5, MaxDelay: 20})
	m := r.Run()
	var sent int64
	for i := range m.PerNode {
		sent += m.PerNode[i].SentMsgs
	}
	if m.Delivered != sent {
		t.Fatalf("lossless delay plan delivered %d of %d sends", m.Delivered, sent)
	}
}

// TestFabricFaultsCrash: a permanently crashed node exchanges no messages
// on the Fabric, and the run still quiesces.
func TestFabricFaultsCrash(t *testing.T) {
	nodes := chatter(8, 4)
	f := NewFabric(nodes, CausalClock, true)
	f.SetFaults(FaultPlan{Crashes: []Crash{{Node: 3, At: 0}}})
	f.Start()
	if !f.AwaitQuiescence(0) {
		t.Fatal("fabric did not quiesce")
	}
	f.Stop()
	m := f.Metrics()
	if m.PerNode[3].RecvMsgs != 0 {
		t.Fatalf("crashed node received %d messages", m.PerNode[3].RecvMsgs)
	}
	if nodes[3].(*chatterNode).recv != 0 {
		t.Fatal("crashed node's Deliver ran")
	}
	if m.PerNode[0].RecvMsgs == 0 {
		t.Fatal("healthy nodes exchanged nothing")
	}
}

// TestFabricFaultsDuplicate: a duplicate-heavy plan delivers more than it
// sends and still quiesces (in-flight accounting covers every copy).
func TestFabricFaultsDuplicate(t *testing.T) {
	f := NewFabric(chatter(8, 4), CausalClock, true)
	f.SetFaults(FaultPlan{Seed: 9, DupProb: 0.5})
	f.Start()
	if !f.AwaitQuiescence(0) {
		t.Fatal("fabric did not quiesce")
	}
	f.Stop()
	m := f.Metrics()
	var sent int64
	for i := range m.PerNode {
		sent += m.PerNode[i].SentMsgs
	}
	if m.Delivered <= sent {
		t.Fatalf("dup plan delivered %d of %d sends — nothing duplicated", m.Delivered, sent)
	}
}
