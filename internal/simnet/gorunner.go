package simnet

import (
	"sync"
	"sync/atomic"
)

// GoRunner executes the same protocol nodes as the event-loop runners but
// with one goroutine per node connected by unbounded mailboxes — the
// natural Go rendering of an asynchronous message-passing system. It exists
// to demonstrate that protocol nodes are runtime-agnostic and to cross-check
// the deterministic runners under real concurrency (scheduling order is then
// up to the Go runtime, so only outcome properties — agreement, validity —
// are comparable, not exact traces).
//
// Termination uses quiescence detection: a global in-flight counter is
// incremented on send and decremented after the receiving node finishes
// handling the message; when it drops to zero no further message can ever
// be created, so all mailboxes are closed.
type GoRunner struct {
	nodes    []Node
	metrics  *Metrics
	observer Observer
	mu       sync.Mutex // guards metrics, Rounds tracking and observer calls
	inflight atomic.Int64
	boxes    []*mailbox
}

// NewGo returns a goroutine-per-node runner.
func NewGo(nodes []Node) *GoRunner {
	r := &GoRunner{nodes: nodes, metrics: newMetrics(len(nodes))}
	r.boxes = make([]*mailbox, len(nodes))
	for i := range r.boxes {
		r.boxes[i] = newMailbox()
	}
	return r
}

// Observe registers an observer invoked on every delivery, serialized
// under the metrics lock. It must be called before Run.
func (r *GoRunner) Observe(o Observer) { r.observer = o }

// mailbox is an unbounded MPSC queue. Unboundedness matters: with bounded
// channels two nodes sending to each other can deadlock, which would be an
// artifact of the runtime rather than of the protocol.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e Envelope) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, e)
	m.cond.Signal()
}

func (m *mailbox) get() (Envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Envelope{}, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

type goCtx struct {
	r    *GoRunner
	self NodeID
	now  int
}

func (c *goCtx) Now() int { return c.now }

func (c *goCtx) Send(to NodeID, m Message) {
	e := Envelope{From: c.self, To: to, Msg: m, Depth: c.now + 1}
	validateEnvelope(len(c.r.nodes), e)
	c.r.mu.Lock()
	c.r.metrics.recordSend(e)
	c.r.mu.Unlock()
	c.r.inflight.Add(1)
	c.r.boxes[to].put(e)
}

// Run initializes every node, processes messages until global quiescence,
// and returns the metrics. Run must be called at most once.
func (r *GoRunner) Run() *Metrics {
	var wg sync.WaitGroup
	for id := range r.nodes {
		wg.Add(1)
		go func(id NodeID) {
			defer wg.Done()
			r.nodeLoop(id)
		}(id)
	}

	// Initialize sequentially (Init may send; the in-flight counter covers
	// those messages before the quiescence watcher starts).
	for id, n := range r.nodes {
		n.Init(&goCtx{r: r, self: id, now: 0})
	}

	// Quiescence watcher: when in-flight reaches zero, close all boxes.
	// A plain spin with a channel handoff keeps this free of runtime
	// dependencies; executions are short-lived.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if r.inflight.Load() == 0 {
				for _, b := range r.boxes {
					b.close()
				}
				return
			}
			// Yield to the node goroutines.
			waitHint()
		}
	}()

	wg.Wait()
	<-done
	return r.metrics
}

func (r *GoRunner) nodeLoop(id NodeID) {
	box := r.boxes[id]
	for {
		e, ok := box.get()
		if !ok {
			return
		}
		r.mu.Lock()
		r.metrics.recordDeliver(e)
		r.mu.Unlock()
		r.nodes[id].Deliver(&goCtx{r: r, self: id, now: e.Depth}, e.From, e.Msg)
		if r.observer != nil {
			r.mu.Lock()
			r.observer(e)
			r.mu.Unlock()
		}
		// Decrement only after handling so that messages produced during
		// handling are already counted: the counter can then never dip to
		// zero while work remains.
		r.inflight.Add(-1)
	}
}
