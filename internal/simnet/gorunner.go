package simnet

// GoRunner executes the same protocol nodes as the event-loop runners but
// with one goroutine per node connected by unbounded mailboxes — the
// natural Go rendering of an asynchronous message-passing system. It exists
// to demonstrate that protocol nodes are runtime-agnostic and to cross-check
// the deterministic runners under real concurrency (scheduling order is then
// up to the Go runtime, so only outcome properties — agreement, validity —
// are comparable, not exact traces).
//
// GoRunner is a thin shell over the shared Fabric with the in-process
// loopback transport: per-node sharded metrics, batched mailbox draining
// and quiescence detection all live in the Fabric (see transport.go).
// Termination uses quiescence detection: a global in-flight counter is
// incremented on send and decremented after the receiving node finishes
// handling the message; when it drops to zero no further message can ever
// be created, so all mailboxes are closed.
type GoRunner struct {
	f *Fabric
}

// NewGo returns a goroutine-per-node runner.
func NewGo(nodes []Node) *GoRunner {
	return &GoRunner{f: NewFabric(nodes, CausalClock, true)}
}

// Observe registers an observer. Deliveries are buffered per node and
// fanned into the observer in one globally ordered pass at quiescence —
// the delivery path itself takes no lock for observation. It must be
// called before Run.
func (r *GoRunner) Observe(o Observer) { r.f.Observe(o) }

// InjectFaults installs a fault plan on the Fabric's send path. Because
// the per-link fault counters follow the real goroutine schedule, the
// fault pattern — like the delivery order — varies between runs; only
// outcome properties are reproducible. It must be called before Run.
func (r *GoRunner) InjectFaults(plan FaultPlan) { r.f.SetFaults(plan) }

// Run initializes every node, processes messages until global quiescence,
// and returns the metrics. Run must be called at most once.
func (r *GoRunner) Run() *Metrics {
	r.f.Start()
	r.f.AwaitQuiescence(0)
	r.f.Stop()
	return r.f.Metrics()
}
