package simnet

import (
	"fmt"
	"testing"
)

// relayMsg is a minimal protocol message for runner micro-benchmarks: a
// hop counter that keeps a fixed amount of traffic in flight without any
// protocol-level allocation, so allocs/op measures the runner itself.
type relayMsg struct {
	TTL int
}

func (relayMsg) WireSize() int { return 8 }
func (relayMsg) Kind() string  { return "relay" }

// relayNode forwards each message to the next node until its TTL expires.
// Every delivery does constant work, so the benchmark isolates the
// runner's per-delivery cost: mailbox operations, metering and context
// plumbing.
type relayNode struct {
	id, n, fanout, ttl int
}

func (r *relayNode) Init(ctx Context) {
	for i := 1; i <= r.fanout; i++ {
		ctx.Send((r.id+i)%r.n, relayMsg{TTL: r.ttl})
	}
}

func (r *relayNode) Deliver(ctx Context, from NodeID, m Message) {
	msg := m.(relayMsg)
	if msg.TTL <= 0 {
		return
	}
	ctx.Send((r.id+1)%r.n, relayMsg{TTL: msg.TTL - 1})
}

// BenchmarkGoRunnerDeliver measures the GoRunner delivery hot path with
// constant-work nodes: n·fanout·(ttl+1) deliveries per op. The per-delivery
// allocation count (allocs/op divided by the deliveries metric) is the
// number to watch; wall-clock on shared hardware is noisy.
func BenchmarkGoRunnerDeliver(b *testing.B) {
	for _, n := range []int{64, 256} {
		const fanout, ttl = 4, 64
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var delivered int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nodes := make([]Node, n)
				for id := range nodes {
					nodes[id] = &relayNode{id: id, n: n, fanout: fanout, ttl: ttl}
				}
				m := NewGo(nodes).Run()
				delivered = m.Delivered
				if want := int64(n * fanout * (ttl + 1)); delivered != want {
					b.Fatalf("delivered %d, want %d", delivered, want)
				}
			}
			b.ReportMetric(float64(delivered), "deliveries")
		})
	}
}

// BenchmarkAsyncRunnerDeliver is the single-threaded analogue over the
// FIFO scheduler: the deterministic runners share the metering path, so
// this tracks the non-sharded part of the delivery cost.
func BenchmarkAsyncRunnerDeliver(b *testing.B) {
	const n, fanout, ttl = 256, 4, 64
	var delivered int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nodes := make([]Node, n)
		for id := range nodes {
			nodes[id] = &relayNode{id: id, n: n, fanout: fanout, ttl: ttl}
		}
		m := NewAsync(nodes, NewFIFO()).Run()
		delivered = m.Delivered
	}
	b.ReportMetric(float64(delivered), "deliveries")
}
