package simnet

// Transport health. Ping and Pong are the heartbeat frames of the TCP
// runtime's failure detector: the dialing side of an idle link sends a
// Ping, the accepting side answers with a Pong carrying the same nonce,
// and an unanswered Ping past the suspect window marks the link suspect.
// They are transport-internal — they travel on the wire like any other
// frame but are consumed by the connection supervisor and never delivered
// to a Node, never metered in Metrics, and never counted toward
// quiescence.

// Ping is a heartbeat probe on an idle link. Nonce is the sender's clock
// reading, echoed back by the matching Pong.
type Ping struct {
	Nonce uint64
}

func (Ping) WireSize() int { return 8 }
func (Ping) Kind() string  { return "ping" }

// Pong answers a Ping, echoing its nonce.
type Pong struct {
	Nonce uint64
}

func (Pong) WireSize() int { return 8 }
func (Pong) Kind() string  { return "pong" }

// NetStats aggregates the connection-supervision counters of a network
// run: dial/redial churn, the failure detector's suspect/recover
// transitions, the overload policy's shed count, and the chaos
// controller's strike tally. All fields are monotone counters; the struct
// is comparable, so a zero check is `stats == NetStats{}`.
type NetStats struct {
	// Dials counts first successful dials — i.e. distinct links that ever
	// carried traffic. Redials counts successful re-establishments after a
	// failure, FailedDials counts connect attempts that errored.
	Dials       int64 `json:"dials"`
	Redials     int64 `json:"redials"`
	FailedDials int64 `json:"failedDials"`
	// Shed counts frames dropped by the shed-oldest overload policy;
	// DroppedDown counts frames dropped because the peer's redial budget
	// was exhausted and the link is in its down cooldown.
	Shed        int64 `json:"shed"`
	DroppedDown int64 `json:"droppedDown"`
	// Suspects and Recoveries are the failure detector's transitions;
	// DeadLinks counts links whose redial budget ran out (transitions into
	// the down state). PingsSent/PongsReceived meter the heartbeat traffic.
	Suspects      int64 `json:"suspects"`
	Recoveries    int64 `json:"recoveries"`
	DeadLinks     int64 `json:"deadLinks"`
	PingsSent     int64 `json:"pingsSent"`
	PongsReceived int64 `json:"pongsReceived"`
	// ChaosStrikes counts chaos-plan strikes that landed on a live socket,
	// ChaosSkips scheduled strikes that found no socket to sever, and
	// LinksSevered the distinct (from, to) links severed at least once.
	ChaosStrikes int64 `json:"chaosStrikes"`
	ChaosSkips   int64 `json:"chaosSkips"`
	LinksSevered int64 `json:"linksSevered"`
	// FramesSent counts data frames written to sockets; MessagesSent the
	// protocol messages they carried (a coalesced batch frame is one frame,
	// many messages, so FramesSent < MessagesSent proves batching engaged);
	// BatchFrames the subset of written frames that were batches. Heartbeat
	// frames count in none of the three.
	FramesSent   int64 `json:"framesSent"`
	MessagesSent int64 `json:"messagesSent"`
	BatchFrames  int64 `json:"batchFrames"`
}

// Add accumulates another run's counters (e.g. across the crash/recover
// legs of a load run).
func (s *NetStats) Add(o NetStats) {
	s.Dials += o.Dials
	s.Redials += o.Redials
	s.FailedDials += o.FailedDials
	s.Shed += o.Shed
	s.DroppedDown += o.DroppedDown
	s.Suspects += o.Suspects
	s.Recoveries += o.Recoveries
	s.DeadLinks += o.DeadLinks
	s.PingsSent += o.PingsSent
	s.PongsReceived += o.PongsReceived
	s.ChaosStrikes += o.ChaosStrikes
	s.ChaosSkips += o.ChaosSkips
	s.LinksSevered += o.LinksSevered
	s.FramesSent += o.FramesSent
	s.MessagesSent += o.MessagesSent
	s.BatchFrames += o.BatchFrames
}
