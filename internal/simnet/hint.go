package simnet

import "runtime"

// waitHint yields the processor while the quiescence watcher polls the
// in-flight counter. Gosched (rather than a sleep) keeps single-CPU test
// environments responsive.
func waitHint() { runtime.Gosched() }
