package simnet

// LogOpen is the instance-open broadcast of the multi-process log daemon
// (internal/server): the leader daemon assigns a sequence number to a
// client batch and ships (seq, payloads) to one representative node on
// every peer daemon, which re-derives the instance's value digest and
// per-node initial beliefs locally (the same seeded derivations the
// in-process pipeline engine uses) and injects MsgOpen into its hosted
// protocol nodes. It is transport-level control traffic — consumed by the
// daemon's node shim, never delivered to a protocol node — but it travels
// as an ordinary wire frame (internal/wire) so the supervised-link layer
// carries, coalesces and meters it like everything else.
type LogOpen struct {
	// Seq is the assigned instance sequence number.
	Seq uint64
	// Attempt is the instance's run counter. The agreement protocol is
	// one-shot and randomized: at small n a run can leave nodes undecided
	// (almost-everywhere, not everywhere). When the leader's head instance
	// stalls it re-broadcasts the open with a bumped attempt; receivers
	// rebuild the instance's protocol node with an attempt-keyed RNG —
	// fresh poll labels, a fresh chance to decide. Decided nodes ignore
	// reopens, and the deterministic value derivation makes every attempt
	// propose the same digest, so re-runs cannot diverge.
	Attempt uint32
	// Payloads are the client payloads folded into the instance, in batch
	// order — the input to the deterministic value digest.
	Payloads [][]byte
}

// WireSize returns the encoded payload size: seq u64 + attempt u32 +
// count u32 + per-payload length prefixes and bytes (the CatchupResp
// layout behind a sequence header).
func (m LogOpen) WireSize() int {
	size := 16
	for _, p := range m.Payloads {
		size += 4 + len(p)
	}
	return size
}

// Kind implements Message ("log-open" is taken by the pipeline's local
// MsgOpen control message; the broadcast gets its own kind tag).
func (m LogOpen) Kind() string { return "open-bcast" }
