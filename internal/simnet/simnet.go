// Package simnet is the message-passing substrate underneath every protocol
// in this repository. It models the paper's network (§2.1): a fully
// connected system of n nodes with authenticated, reliable channels and no
// transferable signatures.
//
// Three runners execute the same protocol code:
//
//   - SyncRunner: lock-step rounds — a message sent during round r is
//     delivered during round r+1 — with optional *rushing* adversaries that
//     observe the correct nodes' round-r messages before choosing their own
//     (§2.1 "Adversary").
//   - AsyncRunner: an event loop with a pluggable scheduler (FIFO, seeded
//     random, or adversarial with an eventual-delivery age bound). Time is
//     measured as *causal depth*: a message sent while handling a
//     depth-k delivery has depth k+1, so the completion time of a node is
//     the longest chain of dependent messages leading to its decision —
//     the standard asynchronous-round measure behind the paper's
//     O(log n / log log n) bound.
//   - GoRunner: one goroutine per node connected by unbounded mailboxes;
//     it demonstrates that protocol nodes are runtime-agnostic actors and
//     cross-checks the event-loop runners under real concurrency.
//
// All runners meter per-node sent/received messages and bytes, broken down
// by message kind, which is how the experiment harness measures the
// communication rows of Figure 1.
package simnet

import "fmt"

// NodeID identifies a node; nodes are numbered 0..n-1 (the paper's [n]).
type NodeID = int

// Message is a protocol message. Implementations must be immutable after
// sending, report their wire size for bit metering, and name their kind for
// per-kind accounting.
type Message interface {
	// WireSize returns the payload size in bytes as encoded on the wire.
	WireSize() int
	// Kind returns a short stable name ("push", "fw1", ...) for metrics.
	Kind() string
}

// envelopeOverhead is the per-message header charged by the meter:
// sender (4B) + recipient (4B) + kind tag (1B) — the authenticated-channel
// framing. The paper counts bits exchanged; we charge header + payload.
const envelopeOverhead = 9

// InstMsg is an instance-tagged message: the multiplexing envelope of the
// decision-log pipeline (internal/pipeline), which runs several agreement
// instances concurrently over one shared transport. The tag travels inside
// the message payload — 4 bytes of instance sequence plus the inner kind
// byte — so every existing transport (loopback Fabric, TCP frames) carries
// multiplexed traffic unchanged, and the wire codec (internal/wire) gives
// it a stable on-the-wire encoding.
type InstMsg struct {
	// Inst is the agreement-instance sequence number the inner message
	// belongs to.
	Inst uint32
	// Inner is the wrapped protocol message.
	Inner Message
}

// WireSize returns the encoded payload size: the 4-byte instance tag, the
// inner kind byte and the inner payload.
func (m InstMsg) WireSize() int { return 5 + m.Inner.WireSize() }

// Kind returns the inner message's kind, so per-kind metrics stay
// meaningful across a multiplexed run.
func (m InstMsg) Kind() string { return m.Inner.Kind() }

// RelayMsg is the gossip-relay hop envelope of the scenario subsystem
// (internal/scenario): a protocol message travelling from Origin to Dest
// across a multi-hop topology, forwarded by intermediate relay nodes along
// strictly distance-decreasing links. Seq is the origin's relay sequence
// number (dedup key together with Origin); TTL is the remaining hop budget,
// which at the origin equals the topology distance to Dest, so it is exact:
// every forwarding path consumes it precisely. The wire codec
// (internal/wire) gives it a stable encoding so the TCP cluster carries
// relayed traffic unchanged.
type RelayMsg struct {
	Origin NodeID
	Seq    uint32
	Dest   NodeID
	TTL    uint8
	// Inner is the wrapped protocol message. Relay and instance envelopes
	// must not nest.
	Inner Message
}

// WireSize returns the encoded payload size: origin (4B) + seq (4B) +
// dest (4B) + ttl (1B) + the inner kind byte + the inner payload.
func (m RelayMsg) WireSize() int { return 14 + m.Inner.WireSize() }

// Kind returns the constant "relay": per-kind metrics meter forwarding
// traffic separately from the protocol kinds it carries, and a constant
// avoids a per-send string allocation on the relay hot path.
func (m RelayMsg) Kind() string { return "relay" }

// Envelope is a message in flight.
type Envelope struct {
	From, To NodeID
	Msg      Message
	// Depth is the causal depth at which the envelope becomes deliverable:
	// 1 + the depth of the delivery during which it was sent (initial sends
	// have depth 1). The SyncRunner uses Depth as the delivery round.
	Depth int
	// Inst is the agreement-instance tag of a multiplexed decision-log
	// envelope, valid when Tagged is set. Carrying the tag in the envelope
	// header keeps the send path free of wrapper allocations; InstMsg is
	// the equivalent in-message representation (the wire format, and the
	// fallback for runners without tagged-send support).
	Inst   uint32
	Tagged bool
	// Buf, when non-nil, is the pooled, refcounted transport buffer that the
	// envelope's message payload aliases (zero-copy decode, internal/wire).
	// The fabric releases it once the envelope has been handled; any state
	// that retains payload data past that point must hold a clone, not the
	// view (DESIGN.md §10).
	Buf Releaser
	// seq is the global send sequence number; schedulers use it for
	// deterministic tie-breaking and the age bound.
	seq uint64
}

// Releaser is the release hook of a pooled transport buffer (Envelope.Buf).
// Implementations decrement a reference count and recycle the buffer when
// it reaches zero.
type Releaser interface{ Release() }

// release returns the envelope's transport buffer, if any, to its pool.
func (e *Envelope) release() {
	if e.Buf != nil {
		e.Buf.Release()
		e.Buf = nil
	}
}

// Context is handed to a node for every activation. It is only valid for
// the duration of the call.
type Context interface {
	// Now returns the current time: the delivery round (sync) or the causal
	// depth of the message being handled (async). During Init, Now is 0.
	Now() int
	// Send enqueues a message to the given node.
	Send(to NodeID, m Message)
}

// Node is a protocol actor. Implementations must be single-threaded per
// node: runners guarantee Init and Deliver calls on one node never overlap.
type Node interface {
	// Init is called exactly once before any delivery; initial protocol
	// messages (e.g. the AER push) are sent here.
	Init(ctx Context)
	// Deliver handles one message from an authenticated sender.
	Deliver(ctx Context, from NodeID, m Message)
}

// TaggedSender is implemented by runner contexts that can stamp an
// instance tag into the envelope header itself (the Fabric). Multiplexing
// senders probe for it and fall back to wrapping in InstMsg.
type TaggedSender interface {
	// SendTagged enqueues m with the instance tag, metered exactly like
	// Send(to, InstMsg{Inst: inst, Inner: m}) but without the wrapper
	// allocation.
	SendTagged(to NodeID, m Message, inst uint32)
}

// TaggedNode is a Node that consumes envelope instance tags. Runners that
// carry tags in the envelope header (the Fabric) route tagged deliveries
// to DeliverTagged; other runners deliver the InstMsg wrapper through
// plain Deliver.
type TaggedNode interface {
	Node
	// DeliverTagged handles one instance-tagged message.
	DeliverTagged(ctx Context, from NodeID, m Message, inst uint32)
}

// instTagOverhead is the extra metered bytes of a tagged envelope: the
// 4-byte instance tag plus the inner kind byte — identical to the InstMsg
// wire representation, so metering does not depend on which form carried
// the tag.
const instTagOverhead = 5

// Rusher is implemented by Byzantine nodes that exploit a rushing adversary
// model. After the correct nodes of a synchronous round have produced their
// messages, the SyncRunner shows them to each Rusher, which may then send
// additional messages *within the same round*.
type Rusher interface {
	Node
	// Rush observes the envelopes sent by correct nodes during the current
	// round and may send its own round messages through ctx.
	Rush(ctx Context, round int, correctSends []Envelope)
}

// NodeMetrics aggregates one node's traffic.
type NodeMetrics struct {
	SentMsgs  int64
	SentBytes int64
	RecvMsgs  int64
	RecvBytes int64
}

// Observer receives every delivered envelope, in delivery order, after the
// receiving node has handled it (so post-delivery node state is readable).
// Runners call it synchronously from the delivery path (the GoRunner
// serializes calls under its metrics lock), so implementations must be
// fast and must not call back into the runner.
type Observer func(e Envelope)

// Metrics aggregates a run.
type Metrics struct {
	PerNode []NodeMetrics
	ByKind  map[string]int64 // message count per kind
	// Rounds is the number of synchronous rounds executed (sync runner) or
	// the maximum causal depth of any delivered message (async runners).
	Rounds int
	// Delivered is the total number of delivered messages.
	Delivered int64
	// Net carries the connection-supervision counters of a network
	// transport run (the TCP cluster); nil for in-process runners.
	Net *NetStats
}

func newMetrics(n int) *Metrics {
	return &Metrics{PerNode: make([]NodeMetrics, n), ByKind: make(map[string]int64)}
}

func (m *Metrics) recordSend(e Envelope) {
	size := int64(e.Msg.WireSize() + envelopeOverhead)
	pm := &m.PerNode[e.From]
	pm.SentMsgs++
	pm.SentBytes += size
	m.ByKind[e.Msg.Kind()]++
}

func (m *Metrics) recordDeliver(e Envelope) {
	size := int64(e.Msg.WireSize() + envelopeOverhead)
	pm := &m.PerNode[e.To]
	pm.RecvMsgs++
	pm.RecvBytes += size
	m.Delivered++
	if e.Depth > m.Rounds {
		m.Rounds = e.Depth
	}
}

// TotalSentBits returns the total number of bits sent by all nodes.
func (m *Metrics) TotalSentBits() int64 {
	var total int64
	for i := range m.PerNode {
		total += m.PerNode[i].SentBytes
	}
	return total * 8
}

// MeanSentBits returns the per-node average of sent bits — the paper's
// amortized communication complexity metric (§2.1 "Complexity").
func (m *Metrics) MeanSentBits() float64 {
	if len(m.PerNode) == 0 {
		return 0
	}
	return float64(m.TotalSentBits()) / float64(len(m.PerNode))
}

// MaxSentBits returns the worst per-node sent bits — the load-balance
// metric: for load-balanced protocols Max ≈ Mean, while AER deliberately
// relaxes this (Figure 1(a) "Load-Balanced" row).
func (m *Metrics) MaxSentBits() int64 {
	var max int64
	for i := range m.PerNode {
		if b := m.PerNode[i].SentBytes * 8; b > max {
			max = b
		}
	}
	return max
}

// validateEnvelope panics on malformed addressing; protocols constructing
// bad destinations is a programming error we want loudly and early.
func validateEnvelope(n int, e Envelope) {
	if e.To < 0 || e.To >= n {
		panic(fmt.Sprintf("simnet: send to invalid node %d (n=%d)", e.To, n))
	}
	if e.Msg == nil {
		panic("simnet: nil message")
	}
}
