package simnet

import (
	"sync"
	"testing"
)

// token is a tiny test message.
type token struct {
	hops int
}

func (t token) WireSize() int { return 4 }
func (t token) Kind() string  { return "token" }

// ringNode forwards a token around the ring until hops run out.
type ringNode struct {
	id, n     int
	start     bool
	delivered int
	lastTime  int
	mu        sync.Mutex // GoRunner delivers concurrently across nodes
}

func (r *ringNode) Init(ctx Context) {
	if r.start {
		ctx.Send((r.id+1)%r.n, token{hops: 10})
	}
}

func (r *ringNode) Deliver(ctx Context, from NodeID, m Message) {
	t, ok := m.(token)
	if !ok {
		return
	}
	r.mu.Lock()
	r.delivered++
	r.lastTime = ctx.Now()
	r.mu.Unlock()
	if t.hops > 1 {
		ctx.Send((r.id+1)%r.n, token{hops: t.hops - 1})
	}
}

func newRing(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &ringNode{id: i, n: n, start: i == 0}
	}
	return nodes
}

func TestSyncRing(t *testing.T) {
	nodes := newRing(4)
	m := NewSync(nodes, nil).Run(100)
	// 10 token deliveries total, one per round.
	if m.Delivered != 10 {
		t.Fatalf("Delivered = %d, want 10", m.Delivered)
	}
	if m.Rounds != 10 {
		t.Fatalf("Rounds = %d, want 10", m.Rounds)
	}
	if m.ByKind["token"] != 10 {
		t.Fatalf("ByKind[token] = %d", m.ByKind["token"])
	}
}

func TestSyncRoundCap(t *testing.T) {
	nodes := newRing(4)
	m := NewSync(nodes, nil).Run(3)
	if m.Delivered != 3 {
		t.Fatalf("Delivered = %d with 3-round cap", m.Delivered)
	}
}

func TestAsyncFIFODepthMatchesSync(t *testing.T) {
	nodes := newRing(4)
	m := NewAsync(nodes, NewFIFO()).Run()
	if m.Delivered != 10 || m.Rounds != 10 {
		t.Fatalf("FIFO async: delivered %d rounds %d, want 10/10", m.Delivered, m.Rounds)
	}
}

func TestAsyncRandomSameDeliveries(t *testing.T) {
	nodes := newRing(4)
	m := NewAsync(nodes, NewRandom(1)).Run()
	// The ring is a single causal chain: order cannot change counts/depth.
	if m.Delivered != 10 || m.Rounds != 10 {
		t.Fatalf("random async: delivered %d rounds %d", m.Delivered, m.Rounds)
	}
}

func TestAsyncDeterministicGivenSeed(t *testing.T) {
	run := func(seed uint64) int64 {
		nodes := newRing(8)
		return NewAsync(nodes, NewRandom(seed)).Run().Delivered
	}
	if run(7) != run(7) {
		t.Fatal("async execution not deterministic for fixed seed")
	}
}

// fanNode: node 0 sends one message to every other node on Init; others
// reply once. Used to test metering.
type fanNode struct {
	id, n int
}

func (f *fanNode) Init(ctx Context) {
	if f.id == 0 {
		for i := 1; i < f.n; i++ {
			ctx.Send(i, token{hops: 1})
		}
	}
}

func (f *fanNode) Deliver(ctx Context, from NodeID, m Message) {
	if f.id != 0 {
		ctx.Send(0, token{hops: 1})
	}
}

func TestMetering(t *testing.T) {
	const n = 5
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &fanNode{id: i, n: n}
	}
	m := NewSync(nodes, nil).Run(10)
	if m.PerNode[0].SentMsgs != n-1 {
		t.Fatalf("node 0 sent %d, want %d", m.PerNode[0].SentMsgs, n-1)
	}
	if m.PerNode[0].RecvMsgs != n-1 {
		t.Fatalf("node 0 received %d, want %d", m.PerNode[0].RecvMsgs, n-1)
	}
	wantBytes := int64((n - 1) * (4 + envelopeOverhead))
	if m.PerNode[0].SentBytes != wantBytes {
		t.Fatalf("node 0 sent %d bytes, want %d", m.PerNode[0].SentBytes, wantBytes)
	}
	if m.TotalSentBits() != 8*2*wantBytes {
		t.Fatalf("TotalSentBits = %d", m.TotalSentBits())
	}
	if m.MaxSentBits() != 8*wantBytes {
		t.Fatalf("MaxSentBits = %d", m.MaxSentBits())
	}
	if mean := m.MeanSentBits(); mean != float64(2*wantBytes*8)/n {
		t.Fatalf("MeanSentBits = %v", mean)
	}
}

// rushSpy is a Byzantine node that records how many correct-round sends it
// observed before sending its own message.
type rushSpy struct {
	id       int
	observed int
	sent     bool
}

func (r *rushSpy) Init(ctx Context)                            {}
func (r *rushSpy) Deliver(ctx Context, from NodeID, m Message) {}
func (r *rushSpy) Rush(ctx Context, round int, correct []Envelope) {
	r.observed += len(correct)
	if !r.sent && len(correct) > 0 {
		r.sent = true
		ctx.Send(0, token{hops: 1})
	}
}

func TestRushingObservesCorrectTraffic(t *testing.T) {
	n := 4
	nodes := make([]Node, n)
	for i := 0; i < n-1; i++ {
		nodes[i] = &ringNode{id: i, n: n - 1, start: i == 0} // ring among correct nodes
	}
	spy := &rushSpy{id: n - 1}
	nodes[n-1] = spy
	corrupt := make([]bool, n)
	corrupt[n-1] = true
	m := NewSync(nodes, corrupt).Run(50)
	if spy.observed == 0 {
		t.Fatal("rushing adversary observed no correct traffic")
	}
	if !spy.sent {
		t.Fatal("rushing adversary never injected its message")
	}
	if m.ByKind["token"] < 11 {
		t.Fatalf("expected spy's token to be counted, got %d", m.ByKind["token"])
	}
}

func TestAdversarialSchedulerPriority(t *testing.T) {
	// Two fans: messages from node 1 should be delivered before messages
	// from node 2 under a priority that favours node 1.
	var order []NodeID
	recorder := &recorderNode{order: &order}
	nodes := []Node{recorder, &senderNode{id: 1}, &senderNode{id: 2}}
	pri := func(e Envelope) int {
		if e.From == 1 {
			return 0
		}
		return 1
	}
	NewAsync(nodes, NewAdversarial(pri, 1000)).Run()
	if len(order) != 6 {
		t.Fatalf("delivered %d, want 6", len(order))
	}
	for i := 0; i < 3; i++ {
		if order[i] != 1 {
			t.Fatalf("delivery %d from node %d, want node 1 first", i, order[i])
		}
	}
}

func TestAdversarialSchedulerAgeBound(t *testing.T) {
	// Node 1 keeps a long ping-pong chain with node 0 alive; node 2 sends
	// three one-shot messages at Init. The priority favours the chain, so
	// without the age bound node 2's messages would all arrive after the
	// chain drains; with maxAge = 2 they must be forced out early.
	var order []NodeID
	echo := &echoNode{order: &order}
	nodes := []Node{echo, &chainNode{hops: 40}, &senderNode{id: 2}}
	pri := func(e Envelope) int {
		if e.From == 2 {
			return 1
		}
		return 0
	}
	NewAsync(nodes, NewAdversarial(pri, 2)).Run()
	// Find the last chain delivery and the first node-2 delivery at node 0.
	last1, first2 := -1, -1
	for i, from := range order {
		if from == 1 {
			last1 = i
		}
		if from == 2 && first2 < 0 {
			first2 = i
		}
	}
	if first2 < 0 {
		t.Fatal("node 2's messages never delivered")
	}
	if first2 > last1 {
		t.Fatalf("age bound did not force interleaving: first2=%d last1=%d (%v)", first2, last1, order)
	}
}

// chainNode keeps a ping-pong chain with node 0 alive for hops messages.
type chainNode struct{ hops int }

func (c *chainNode) Init(ctx Context) { ctx.Send(0, token{hops: c.hops}) }
func (c *chainNode) Deliver(ctx Context, from NodeID, m Message) {
	if t, ok := m.(token); ok && t.hops > 1 {
		ctx.Send(0, token{hops: t.hops - 1})
	}
}

// echoNode records senders and bounces chain tokens back to node 1.
type echoNode struct{ order *[]NodeID }

func (e *echoNode) Init(ctx Context) {}
func (e *echoNode) Deliver(ctx Context, from NodeID, m Message) {
	*e.order = append(*e.order, from)
	if t, ok := m.(token); ok && from == 1 && t.hops > 1 {
		ctx.Send(1, token{hops: t.hops - 1})
	}
}

type senderNode struct{ id int }

func (s *senderNode) Init(ctx Context) {
	for i := 0; i < 3; i++ {
		ctx.Send(0, token{hops: 1})
	}
}
func (s *senderNode) Deliver(ctx Context, from NodeID, m Message) {}

type recorderNode struct{ order *[]NodeID }

func (r *recorderNode) Init(ctx Context) {}
func (r *recorderNode) Deliver(ctx Context, from NodeID, m Message) {
	*r.order = append(*r.order, from)
}

func TestGoRunnerRing(t *testing.T) {
	nodes := newRing(4)
	m := NewGo(nodes).Run()
	if m.Delivered != 10 {
		t.Fatalf("GoRunner delivered %d, want 10", m.Delivered)
	}
	if m.Rounds != 10 {
		t.Fatalf("GoRunner max depth %d, want 10", m.Rounds)
	}
	total := 0
	for _, n := range nodes {
		total += n.(*ringNode).delivered
	}
	if total != 10 {
		t.Fatalf("nodes recorded %d deliveries", total)
	}
}

func TestGoRunnerQuiescesWithNoMessages(t *testing.T) {
	nodes := []Node{&fanNode{id: 1, n: 1}} // sends nothing
	m := NewGo(nodes).Run()
	if m.Delivered != 0 {
		t.Fatalf("Delivered = %d", m.Delivered)
	}
}

func TestGoRunnerMatchesEventLoopTotals(t *testing.T) {
	mkNodes := func() []Node {
		nodes := make([]Node, 6)
		for i := range nodes {
			nodes[i] = &fanNode{id: i, n: 6}
		}
		return nodes
	}
	sync := NewSync(mkNodes(), nil).Run(10)
	gor := NewGo(mkNodes()).Run()
	if sync.Delivered != gor.Delivered {
		t.Fatalf("delivery counts differ: sync %d vs go %d", sync.Delivered, gor.Delivered)
	}
	if sync.TotalSentBits() != gor.TotalSentBits() {
		t.Fatalf("bit totals differ: %d vs %d", sync.TotalSentBits(), gor.TotalSentBits())
	}
}

func TestSendValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("send to invalid node did not panic")
		}
	}()
	nodes := []Node{&badSender{}}
	NewSync(nodes, nil).Run(1)
}

type badSender struct{}

func (b *badSender) Init(ctx Context)                            { ctx.Send(99, token{}) }
func (b *badSender) Deliver(ctx Context, from NodeID, m Message) {}

func TestAsyncMaxDeliveries(t *testing.T) {
	nodes := newRing(4)
	r := NewAsync(nodes, NewFIFO())
	r.MaxDeliveries = 5
	m := r.Run()
	if m.Delivered != 5 {
		t.Fatalf("Delivered = %d with cap 5", m.Delivered)
	}
}
