package simnet

// SyncRunner executes nodes in lock-step rounds. Messages sent during round
// r are delivered during round r+1 (§2.1 "Network", synchronous case).
//
// Within a round the runner first delivers the previous round's messages to
// every node (correct nodes first, then Byzantine — delivery order inside a
// round is unobservable in the model), collecting each node's sends. If any
// registered node implements Rusher, the runner then reveals the round's
// correct-node sends to the Rushers, which may inject additional messages
// into the same round: this is exactly the rushing adversary of §2.1. With
// no Rusher present the execution is non-rushing.
type SyncRunner struct {
	nodes    []Node
	corrupt  []bool // corrupt[i] reports whether node i is Byzantine
	metrics  *Metrics
	observer Observer
	stop     func() bool
	inj      *Injector

	pending []Envelope // messages in flight (due this round or later)
	due     []Envelope // scratch: the messages due in the current round
	seq     uint64
	round   int
	ctx     *syncCtx // reused across deliveries (contexts are call-scoped)
}

// NewSync returns a runner over the given nodes. corrupt marks the
// Byzantine nodes (used to order intra-round processing for the rushing
// semantics); it may be nil when no node is Byzantine.
func NewSync(nodes []Node, corrupt []bool) *SyncRunner {
	if corrupt == nil {
		corrupt = make([]bool, len(nodes))
	}
	if len(corrupt) != len(nodes) {
		panic("simnet: corrupt mask length mismatch")
	}
	return &SyncRunner{
		nodes:   nodes,
		corrupt: corrupt,
		metrics: newMetrics(len(nodes)),
	}
}

// Observe registers an observer invoked on every delivery. It must be
// called before Run.
func (r *SyncRunner) Observe(o Observer) { r.observer = o }

// StopWhen registers a cancellation probe polled at every round boundary;
// when it returns true the run abandons the remaining rounds and returns
// the metrics collected so far. It must be called before Run.
func (r *SyncRunner) StopWhen(f func() bool) { r.stop = f }

// InjectFaults installs a fault plan, judged at send time: dropped
// messages are metered as sent but never delivered, duplicated messages
// are delivered twice, and a delay of d defers delivery by d whole rounds.
// It must be called before Run.
func (r *SyncRunner) InjectFaults(plan FaultPlan) {
	r.inj = NewInjector(plan, len(r.nodes))
}

// Ticker is implemented by nodes that act on synchronous round boundaries
// (e.g. committee protocols that tally everything received in a round).
// The SyncRunner calls OnRoundEnd after all of a round's deliveries, in
// node-ID order; messages sent there are delivered next round. The
// asynchronous runners never call it — protocols relying on Ticker are
// synchronous by construction (like the KSSV06-style substrate).
type Ticker interface {
	Node
	OnRoundEnd(ctx Context, round int)
}

// syncCtx implements Context for one activation of one node.
type syncCtx struct {
	r    *SyncRunner
	from NodeID
	now  int
}

func (c *syncCtx) Now() int { return c.now }

func (c *syncCtx) Send(to NodeID, m Message) {
	e := Envelope{From: c.from, To: to, Msg: m, Depth: c.now + 1, seq: c.r.seq}
	c.r.seq++
	validateEnvelope(len(c.r.nodes), e)
	c.r.metrics.recordSend(e)
	if c.r.inj == nil {
		c.r.pending = append(c.r.pending, e)
		return
	}
	v := c.r.inj.Judge(e, c.now)
	e.Depth += v.Delay
	for i := 0; i < v.Copies; i++ {
		if i > 0 { // duplicates carry their own sequence number
			e.seq = c.r.seq
			c.r.seq++
		}
		c.r.pending = append(c.r.pending, e)
	}
}

// Run initializes every node and then executes rounds until either no
// messages remain in flight or maxRounds rounds have elapsed. It returns
// the collected metrics. Run must be called at most once.
func (r *SyncRunner) Run(maxRounds int) *Metrics {
	r.initNodes()
	for r.round = 1; r.round <= maxRounds && len(r.pending) > 0; r.round++ {
		if r.stop != nil && r.stop() {
			break
		}
		r.step()
	}
	if rounds := r.round - 1; rounds > r.metrics.Rounds {
		r.metrics.Rounds = rounds
	}
	return r.metrics
}

// Rounds returns the number of rounds executed so far.
func (r *SyncRunner) Rounds() int { return r.round - 1 }

func (r *SyncRunner) initNodes() {
	// Correct nodes first so that rushing Byzantine nodes could in
	// principle observe initial sends too; Init for Byzantine nodes runs
	// after, giving them the standard full-information advantage.
	for id, n := range r.nodes {
		if !r.corrupt[id] {
			n.Init(&syncCtx{r: r, from: id, now: 0})
		}
	}
	correctSends := append([]Envelope(nil), r.pending...)
	for id, n := range r.nodes {
		if r.corrupt[id] {
			n.Init(&syncCtx{r: r, from: id, now: 0})
			if rusher, ok := n.(Rusher); ok {
				rusher.Rush(&syncCtx{r: r, from: id, now: 0}, 0, correctSends)
			}
		}
	}
}

// step delivers the pending messages due this round and collects the
// sends of the current one. With a fault plan installed, delayed messages
// (Depth beyond the current round) stay in flight until their round comes.
func (r *SyncRunner) step() {
	var toDeliver []Envelope
	if r.inj == nil {
		toDeliver = r.pending
		r.pending = nil
	} else {
		toDeliver = r.due[:0]
		keep := r.pending[:0]
		for _, e := range r.pending {
			if e.Depth <= r.round {
				toDeliver = append(toDeliver, e)
			} else {
				keep = append(keep, e)
			}
		}
		r.due = toDeliver
		r.pending = keep
	}
	carried := len(r.pending) // in-flight delayed messages are not this round's sends

	// Deliver to correct nodes first and track what they send this round.
	for _, e := range toDeliver {
		if !r.corrupt[e.To] {
			r.deliver(e)
		}
	}
	correctSends := append([]Envelope(nil), r.pending[carried:]...)

	// Then Byzantine nodes receive their messages and, if rushing, observe
	// the correct nodes' round traffic before sending.
	for _, e := range toDeliver {
		if r.corrupt[e.To] {
			r.deliver(e)
		}
	}
	for id, n := range r.nodes {
		if !r.corrupt[id] {
			continue
		}
		if rusher, ok := n.(Rusher); ok {
			rusher.Rush(&syncCtx{r: r, from: id, now: r.round}, r.round, correctSends)
		}
	}

	// Round boundary: tick the nodes that act on round ends.
	for id, n := range r.nodes {
		if ticker, ok := n.(Ticker); ok {
			ticker.OnRoundEnd(&syncCtx{r: r, from: id, now: r.round}, r.round)
		}
	}
}

func (r *SyncRunner) deliver(e Envelope) {
	// Fail-silence covers receipt, not only transmission: a message
	// arriving while its destination is inside a crash window vanishes at
	// the door (in-flight sends do not survive into a crash, and delayed
	// messages cannot land on a crashed node).
	if r.inj != nil && r.inj.CrashedAt(e.To, r.round) {
		return
	}
	// Depth is re-stamped to the actual delivery round: messages injected
	// by a Rusher were created with the same round number as regular sends
	// but all arrive in the next round.
	e.Depth = r.round
	r.metrics.recordDeliver(e)
	if r.ctx == nil {
		r.ctx = &syncCtx{r: r}
	}
	r.ctx.from, r.ctx.now = e.To, r.round
	r.nodes[e.To].Deliver(r.ctx, e.From, e.Msg)
	if r.observer != nil {
		r.observer(e)
	}
}
