package simnet

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the shared runtime core of the concurrent runners: the
// goroutine runner (GoRunner) and the TCP cluster (internal/netrun, and
// through it the public RunTCP) both execute nodes on a Fabric and differ
// only in their Transport. Metering, observer fan-in, mailbox plumbing and
// quiescence detection therefore live here, in one place.

// Transport moves envelopes from a sending node towards the destination
// node's mailbox. Implementations report whether the envelope was accepted;
// rejected envelopes (no wire codec for the message type, unreachable peer)
// are dropped and excluded from quiescence tracking. Send is called
// concurrently from every node's goroutine and must be safe for concurrent
// use.
type Transport interface {
	Send(e Envelope) bool
}

// loopback is the in-process Transport: envelopes go straight into the
// destination worker's mailbox. A send into a closed mailbox (fabric
// stopping) reports rejection so the sender's in-flight count stays exact.
type loopback struct{ f *Fabric }

func (l loopback) Send(e Envelope) bool {
	return l.f.box(e.To).Put(e)
}

// Clock selects how a Fabric stamps delivery time (Context.Now).
type Clock int

const (
	// CausalClock stamps each delivery with the envelope's causal depth:
	// 1 + the depth of the delivery during which it was sent. This is the
	// asynchronous time measure of the paper (the goroutine runner).
	CausalClock Clock = iota
	// CounterClock stamps each delivery with the receiving node's delivery
	// count — a per-node logical clock for transports that do not carry
	// depth on the wire (TCP). A node's decision time is then the number of
	// messages it had handled when it decided.
	CounterClock
)

// batchPool recycles mailbox batch buffers across Drain/Recycle cycles so
// steady-state delivery does not grow fresh queues.
var batchPool = sync.Pool{New: func() any { return new([]Envelope) }}

// Mailbox is an unbounded MPSC envelope queue with batched draining.
// Unboundedness matters: with bounded channels two nodes sending to each
// other can deadlock, which would be an artifact of the runtime rather
// than of the protocol. Batching matters too: the consumer takes the whole
// pending queue under one lock acquisition instead of one per message.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Envelope
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	m := &Mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put enqueues an envelope, reporting acceptance: envelopes put after
// Close are dropped and report false so in-flight accounting can uncount
// them.
func (m *Mailbox) Put(e Envelope) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if m.queue == nil {
		m.queue = (*batchPool.Get().(*[]Envelope))[:0]
	}
	m.queue = append(m.queue, e)
	m.cond.Signal()
	return true
}

// PutBatch enqueues a batch of envelopes under one lock acquisition — the
// fabric-path coalescing primitive: a worker flushes everything its nodes
// staged for one destination worker in a single call instead of paying one
// lock handoff per message. The batch is copied; the caller keeps ownership
// of es. Like Put, it reports acceptance: after Close the whole batch is
// dropped and the caller must uncount all of it.
func (m *Mailbox) PutBatch(es []Envelope) bool {
	if len(es) == 0 {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if m.queue == nil {
		m.queue = (*batchPool.Get().(*[]Envelope))[:0]
	}
	m.queue = append(m.queue, es...)
	m.cond.Signal()
	return true
}

// Drain blocks until at least one envelope is pending (or the mailbox is
// closed), then returns the entire pending queue. It returns ok = false
// only when the mailbox is closed and empty. The caller owns the returned
// batch and should pass it to RecycleBatch when done.
func (m *Mailbox) Drain() (batch []Envelope, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return nil, false
	}
	batch = m.queue
	m.queue = nil
	return batch, true
}

// Close wakes blocked Drain calls; pending envelopes remain drainable.
func (m *Mailbox) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// RecycleBatch returns a drained batch buffer to the pool.
func RecycleBatch(batch []Envelope) {
	if cap(batch) == 0 {
		return
	}
	batch = batch[:0]
	batchPool.Put(&batch)
}

// obsEvent is a buffered observation: delivered envelopes are recorded in
// per-shard buffers with a global sequence stamp and fanned into the
// observer in one merged, seq-ordered pass at quiescence.
type obsEvent struct {
	seq uint64
	env Envelope
}

// shard is the per-node slice of the Fabric's state. Each node is owned by
// exactly one worker (node id mod worker count), and each shard is written
// only by its node's owning worker (sends by the sender's shard — the
// sender is itself being delivered on its owning worker — and deliveries
// by the receiver's), so the delivery path takes no locks beyond the
// mailbox.
type shard struct {
	nm        NodeMetrics
	byKind    map[string]int64
	maxDepth  int
	delivered int64
	obs       []obsEvent
	_         [64]byte // keep shards off each other's cache lines
}

// Fabric executes protocol nodes over a Transport on min(GOMAXPROCS, n)
// workers: node id determines its owning worker, each worker drains one
// mailbox in batches and dispatches to the nodes it owns, with sharded
// per-node metrics merged at the end and an optional global in-flight
// counter for quiescence detection. It is the runtime core shared by
// GoRunner and the TCP cluster (DESIGN.md §10).
type Fabric struct {
	nodes     []Node
	transport Transport
	clock     Clock
	// track enables quiescence accounting: sends increment, handled
	// deliveries decrement. It requires every accepted Send to eventually
	// reach a mailbox in this process (true for loopback transports).
	track    bool
	observer Observer
	// lenient drops malformed sends (invalid destination, nil message)
	// instead of panicking. Network transports use it: a misaddressed frame
	// from a Byzantine strategy is protocol traffic to tolerate, not a
	// simulator programming error.
	lenient bool
	// faults, when set, is judged on every send: dropped messages are
	// metered as sent but never reach the transport; duplicates are sent
	// twice; delays inflate the envelope's causal depth. The per-link
	// counters inside follow real scheduling order, so fault schedules on
	// the concurrent runtimes vary between runs like delivery order does.
	faults *Injector

	// catchup is the registered catch-up surface (ServeCatchup/Catchup):
	// the fabric's side of the committed-prefix state transfer.
	catchup catchup

	inflight atomic.Int64
	obsSeq   atomic.Uint64
	shards   []shard
	// workers is the run-loop parallelism: boxes has one mailbox per worker
	// and node id modulo workers selects both the mailbox an envelope lands
	// in and the worker that owns the node.
	workers int
	boxes   []*Mailbox
	// ctxs and taggedNodes are the per-node dispatch state, preallocated at
	// Start so the worker loops index instead of allocating per delivery.
	ctxs        []fabricCtx
	taggedNodes []TaggedNode
	// stages is the per-worker send staging (fabric-path coalescing): sends
	// issued while a worker handles a batch are buffered per destination
	// worker and flushed with one PutBatch per destination when the batch
	// ends. Loopback transport only; network transports encode synchronously.
	stages []sendStage
	// mergeBuf is the persistent observer merge buffer, reused across
	// flushes instead of reallocating the merged slice each time.
	mergeBuf []obsEvent
	wg       sync.WaitGroup

	stopOnce  sync.Once
	flushOnce sync.Once
}

// sendStage buffers one worker's outgoing envelopes per destination worker
// for the duration of a delivery batch.
type sendStage struct {
	byWorker [][]Envelope
}

// NewFabric builds a fabric over the given nodes. A nil transport defaults
// to in-process loopback delivery. The worker count defaults to
// min(GOMAXPROCS, n); SetWorkers overrides it.
func NewFabric(nodes []Node, clock Clock, track bool) *Fabric {
	f := &Fabric{
		nodes:  nodes,
		clock:  clock,
		track:  track,
		shards: make([]shard, len(nodes)),
	}
	f.setWorkers(defaultWorkers(len(nodes)))
	for i := range f.shards {
		f.shards[i].byKind = make(map[string]int64)
	}
	return f
}

// defaultWorkers is the run-loop parallelism used unless SetWorkers
// overrides it: one worker per available core, never more than nodes.
func defaultWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetWorkers overrides the number of delivery workers (clamped to [1, n]).
// It must be called before Start and before any Inject: envelope routing is
// fixed by the worker count. Benchmarks and the determinism guard use it to
// pin parallelism independently of GOMAXPROCS.
func (f *Fabric) SetWorkers(w int) { f.setWorkers(w) }

func (f *Fabric) setWorkers(w int) {
	if w < 1 {
		w = 1
	}
	if n := len(f.nodes); w > n && n > 0 {
		w = n
	}
	f.workers = w
	f.boxes = make([]*Mailbox, w)
	for i := range f.boxes {
		f.boxes[i] = NewMailbox()
	}
}

// box returns the mailbox of the worker that owns node to.
func (f *Fabric) box(to NodeID) *Mailbox { return f.boxes[to%f.workers] }

// Workers returns the delivery parallelism in effect.
func (f *Fabric) Workers() int { return f.workers }

// SetTransport installs the transport. It must be called before Start;
// fabrics without a transport deliver over in-process loopback.
func (f *Fabric) SetTransport(t Transport) { f.transport = t }

// SetLenientSends makes malformed sends (invalid destination, nil message)
// silently dropped instead of a panic. It must be called before Start.
func (f *Fabric) SetLenientSends(on bool) { f.lenient = on }

// SetFaults installs a fault plan on the send path. It must be called
// before Start.
func (f *Fabric) SetFaults(plan FaultPlan) {
	f.faults = NewInjector(plan, len(f.nodes))
}

// Observe registers an observer. Delivered envelopes are buffered per
// shard and fanned into the observer — in a single globally ordered pass —
// when the fabric stops: the delivery path stays lock-free, at the cost of
// retaining every delivered envelope until quiescence and of the observer
// seeing nothing mid-run. Leave unset on hot runs where only the aggregate
// metrics matter; use the deterministic runners when live event streaming
// is needed. It must be called before Start.
func (f *Fabric) Observe(o Observer) { f.observer = o }

// Observing reports whether an observer is registered. Transports consult
// it to pick a decode mode: observed runs retain delivered envelopes until
// quiescence, so zero-copy payload views that expire at end-of-delivery are
// not usable and the transport must decode owning copies instead.
func (f *Fabric) Observing() bool { return f.observer != nil }

// Inject feeds an inbound envelope (e.g. decoded from a network frame)
// into the destination mailbox. The in-flight accounting for injected
// envelopes is the sending fabricCtx's: transports hand envelopes back to
// the process that counted them on Send.
func (f *Fabric) Inject(e Envelope) {
	validateEnvelope(len(f.nodes), e)
	if !f.box(e.To).Put(e) {
		// The mailbox closed under the injector (teardown mid-run); the
		// sender's count for this envelope must be returned or quiescence
		// never comes, and its transport buffer must go back to the pool.
		e.release()
		if f.track {
			f.inflight.Add(-1)
		}
	}
}

// InjectLocal feeds a locally originated envelope — one no fabricCtx.Send
// ever counted, e.g. a pipeline control message from outside the node
// goroutines — into the destination mailbox, incrementing the in-flight
// counter so quiescence accounting stays exact (the delivery loop
// decrements per handled message regardless of origin). Envelopes
// rejected by a closed mailbox are uncounted again.
func (f *Fabric) InjectLocal(e Envelope) {
	validateEnvelope(len(f.nodes), e)
	if f.track {
		f.inflight.Add(1)
	}
	if !f.box(e.To).Put(e) && f.track {
		f.inflight.Add(-1)
	}
}

// Uncount returns n in-flight counts to the fabric on behalf of the
// transport: Send accepted (and counted) the envelopes, but the transport
// later dropped them without delivery — shed by an overload policy,
// drained from the queue of a link whose redial budget ran out, or
// discarded at teardown. Without the return, quiescence never comes.
func (f *Fabric) Uncount(n int) {
	if f.track && n > 0 {
		f.inflight.Add(-int64(n))
	}
}

// Start initializes every node sequentially — preserving the runner
// contract that Init and Deliver never overlap on one node — and then
// launches the worker delivery loops.
func (f *Fabric) Start() {
	if f.transport == nil {
		f.transport = loopback{f: f}
	}
	// Init contexts have no stage: initial sends go straight through the
	// transport (workers are not draining yet, so there is nothing to race).
	for id, n := range f.nodes {
		n.Init(&fabricCtx{f: f, self: id, now: 0})
	}
	// Per-node dispatch state, built once: the worker loops index these
	// arrays instead of allocating a context (or re-asserting TaggedNode)
	// per delivery.
	_, stageSends := f.transport.(loopback)
	f.ctxs = make([]fabricCtx, len(f.nodes))
	f.taggedNodes = make([]TaggedNode, len(f.nodes))
	f.stages = make([]sendStage, f.workers)
	for w := range f.stages {
		f.stages[w].byWorker = make([][]Envelope, f.workers)
	}
	for id, n := range f.nodes {
		f.ctxs[id] = fabricCtx{f: f, self: id}
		if stageSends {
			f.ctxs[id].stage = &f.stages[id%f.workers]
		}
		f.taggedNodes[id], _ = n.(TaggedNode)
	}
	for w := 0; w < f.workers; w++ {
		f.wg.Add(1)
		go f.workerLoop(w)
	}
}

// Quiesced reports whether no tracked message is currently in flight.
// Unlike a transient empty-queue observation, a zero in-flight count is
// final: no further message can ever be created once it is reached, so a
// true return means the execution is over. Useful as a stop predicate for
// lossy fault plans, where "all nodes decided" may never come true.
func (f *Fabric) Quiesced() bool { return f.inflight.Load() == 0 }

// AwaitQuiescence blocks until no tracked messages are in flight, or until
// the timeout elapses (timeout 0 = wait forever). It reports whether
// quiescence was reached. Once the counter hits zero no further message
// can ever be created, so the fabric can be stopped without losing work.
func (f *Fabric) AwaitQuiescence(timeout time.Duration) bool {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for spins := 0; ; spins++ {
		if f.inflight.Load() == 0 {
			return true
		}
		if timeout > 0 && spins%1024 == 0 && time.Now().After(deadline) {
			return false
		}
		waitHint()
	}
}

// Stop closes all mailboxes, waits for the delivery loops to drain and
// exit, and flushes buffered observer events. It is idempotent.
func (f *Fabric) Stop() {
	f.stopOnce.Do(func() {
		for _, b := range f.boxes {
			b.Close()
		}
	})
	f.wg.Wait()
	f.flushOnce.Do(f.flushObserver)
}

// flushObserver merges the per-shard observation buffers by global
// sequence number and replays them into the observer. The merge reuses the
// fabric's persistent buffer (grown once to the high-water mark) instead of
// allocating the merged slice per flush.
func (f *Fabric) flushObserver() {
	if f.observer == nil {
		return
	}
	total := 0
	for i := range f.shards {
		total += len(f.shards[i].obs)
	}
	if total == 0 {
		return
	}
	if cap(f.mergeBuf) < total {
		f.mergeBuf = make([]obsEvent, 0, total)
	}
	all := f.mergeBuf[:0]
	for i := range f.shards {
		all = append(all, f.shards[i].obs...)
		f.shards[i].obs = nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, ev := range all {
		f.observer(ev.env)
	}
	f.mergeBuf = all[:0]
}

// Metrics merges the shards into one Metrics. Call after Stop (or after
// AwaitQuiescence on a tracked fabric); merging while delivery loops run
// is racy.
func (f *Fabric) Metrics() *Metrics {
	m := newMetrics(len(f.nodes))
	for i := range f.shards {
		sh := &f.shards[i]
		m.PerNode[i] = sh.nm
		for k, v := range sh.byKind {
			m.ByKind[k] += v
		}
		if sh.maxDepth > m.Rounds {
			m.Rounds = sh.maxDepth
		}
		m.Delivered += sh.delivered
	}
	return m
}

// workerLoop drains one worker's mailbox in batches until the mailbox
// closes, dispatching each envelope to the node it owns. Sends issued by
// the handled nodes are staged per destination worker (loopback transport)
// and flushed after the batch, before the in-flight decrement.
func (f *Fabric) workerLoop(w int) {
	defer f.wg.Done()
	box := f.boxes[w]
	st := &f.stages[w]
	for {
		batch, ok := box.Drain()
		if !ok {
			return
		}
		for _, e := range batch {
			f.deliverOne(e)
		}
		// Flush staged sends before the decrement: the staged envelopes were
		// counted at stage time, so the in-flight counter can never dip to
		// zero while work remains.
		f.flushStage(st)
		if f.track {
			f.inflight.Add(-int64(len(batch)))
		}
		RecycleBatch(batch)
	}
}

// deliverOne hands a single envelope to its destination node, updating the
// receiver's shard. The destination node is owned by the calling worker
// (envelope routing), so the shard stays single-writer.
func (f *Fabric) deliverOne(e Envelope) {
	id := e.To
	sh := &f.shards[id]
	now := e.Depth
	if f.clock == CounterClock {
		now = int(sh.delivered) + 1
	}
	// Receive-side crash check: a message arriving while this node is
	// inside a crash window vanishes at the door, unhandled and unmetered
	// (it still decrements the in-flight counter with its batch, so
	// quiescence accounting stays exact).
	if f.faults != nil && f.faults.CrashedAt(id, now) {
		e.release()
		return
	}
	sh.delivered++
	if f.clock == CounterClock {
		e.Depth = now // stamp observers with the per-node clock
	}
	if now > sh.maxDepth {
		sh.maxDepth = now
	}
	size := e.Msg.WireSize() + envelopeOverhead
	if e.Tagged {
		size += instTagOverhead
	}
	sh.nm.RecvMsgs++
	sh.nm.RecvBytes += int64(size)
	ctx := &f.ctxs[id]
	ctx.now = now
	if e.Tagged && f.taggedNodes[id] != nil {
		f.taggedNodes[id].DeliverTagged(ctx, e.From, e.Msg, e.Inst)
	} else {
		f.nodes[id].Deliver(ctx, e.From, e.Msg)
	}
	if f.observer != nil {
		sh.obs = append(sh.obs, obsEvent{seq: f.obsSeq.Add(1), env: e})
	}
	// The delivery is over: any zero-copy payload view expires here
	// (retaining state must have cloned; DESIGN.md §10).
	e.release()
}

// flushStage delivers everything the worker's nodes staged during the
// batch: one PutBatch per destination worker with pending envelopes.
func (f *Fabric) flushStage(st *sendStage) {
	for w := range st.byWorker {
		buf := st.byWorker[w]
		if len(buf) == 0 {
			continue
		}
		if !f.boxes[w].PutBatch(buf) {
			// Mailboxes closed mid-run (teardown): return the counts taken
			// at stage time or quiescence never comes.
			if f.track {
				f.inflight.Add(-int64(len(buf)))
			}
			for i := range buf {
				buf[i].release()
			}
		}
		st.byWorker[w] = buf[:0]
	}
}

// fabricCtx is the Context for one node's activations. One instance per
// node is reused across deliveries (runners activate a node sequentially),
// keeping the hot path free of per-delivery allocations. stage, when set,
// is the owning worker's send staging: outgoing envelopes buffer there for
// a one-PutBatch-per-worker flush at batch end instead of taking a mailbox
// lock per send (loopback transport only; Init contexts leave it nil).
type fabricCtx struct {
	f     *Fabric
	self  NodeID
	now   int
	stage *sendStage
}

func (c *fabricCtx) Now() int { return c.now }

func (c *fabricCtx) Send(to NodeID, m Message) {
	c.send(Envelope{From: c.self, To: to, Msg: m, Depth: c.now + 1}, m.WireSize()+envelopeOverhead)
}

// SendTagged implements TaggedSender: the instance tag travels in the
// envelope header, metered exactly like the InstMsg wrapper it replaces
// (inner payload + tag overhead), with no wrapper allocation on the send
// path.
func (c *fabricCtx) SendTagged(to NodeID, m Message, inst uint32) {
	e := Envelope{From: c.self, To: to, Msg: m, Depth: c.now + 1, Inst: inst, Tagged: true}
	c.send(e, m.WireSize()+envelopeOverhead+instTagOverhead)
}

func (c *fabricCtx) send(e Envelope, size int) {
	if c.f.lenient {
		if e.To < 0 || e.To >= len(c.f.nodes) || e.Msg == nil {
			return
		}
	} else {
		validateEnvelope(len(c.f.nodes), e)
	}
	sh := &c.f.shards[c.self]
	sh.nm.SentMsgs++
	sh.nm.SentBytes += int64(size)
	sh.byKind[e.Msg.Kind()]++
	copies := 1
	if c.f.faults != nil {
		v := c.f.faults.Judge(e, c.now)
		copies = v.Copies
		e.Depth += v.Delay
	}
	for i := 0; i < copies; i++ {
		if c.f.track {
			c.f.inflight.Add(1)
		}
		if c.stage != nil {
			w := e.To % c.f.workers
			c.stage.byWorker[w] = append(c.stage.byWorker[w], e)
			continue
		}
		if !c.f.transport.Send(e) && c.f.track {
			c.f.inflight.Add(-1)
		}
	}
}
