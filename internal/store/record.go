package store

import (
	"encoding/binary"
	"fmt"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/wire"
)

// Record is one durable committed decision-log entry — the store's unit of
// appending, snapshotting and catch-up transfer. It mirrors
// pipeline.Entry's order-independent fields: everything the cross-instance
// oracles and the conformance digests judge, nothing the concurrent
// runtimes fail to reproduce.
type Record struct {
	// Seq is the instance sequence number; a store holds contiguous seqs
	// from 0.
	Seq uint64
	// Value is the decided value (the batch digest the instance agreed on).
	Value bitstring.String
	// Payloads are the client payloads folded into the instance.
	Payloads [][]byte
	// Deciders, Correct, DistinctValues and CertDeficits are the commit-time
	// oracle counters.
	Deciders       int
	Correct        int
	DistinctValues int
	CertDeficits   int
	// MatchesProposal is the validity probe's verdict.
	MatchesProposal bool
	// OpenedNs and CommittedNs bound the instance's lifetime (Unix nanos),
	// preserved so recovered entries keep their latency accounting.
	OpenedNs    int64
	CommittedNs int64
}

// record payload layout (little-endian), framed by the segment writer:
//
//	seq u64 | value bitstring (wire codec: nbits u16 + packed bytes)
//	| deciders u32 | correct u32 | distinct u32 | certdef u32 | flags u8
//	| opened i64 | committed i64 | npayloads u32 | { plen u32 | bytes }*

const flagMatchesProposal = 0x01

// AppendRecord appends r's payload encoding to buf (the wire-codec idiom:
// callers recycle buffers across appends).
func AppendRecord(buf []byte, r Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = wire.AppendBitString(buf, r.Value)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Deciders))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Correct))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.DistinctValues))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.CertDeficits))
	var flags byte
	if r.MatchesProposal {
		flags |= flagMatchesProposal
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.OpenedNs))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.CommittedNs))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Payloads)))
	for _, p := range r.Payloads {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// DecodeRecord reverses AppendRecord. The returned record owns its memory:
// payload bytes are copied out of buf, so callers may recycle the frame
// buffer.
func DecodeRecord(buf []byte) (Record, error) {
	var r Record
	if len(buf) < 8 {
		return r, fmt.Errorf("store: record truncated at seq")
	}
	r.Seq = binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	s, n, err := wire.DecodeBitString(buf)
	if err != nil {
		return r, fmt.Errorf("store: record value: %w", err)
	}
	r.Value = s.Clone() // DecodeBitString returns a view aliasing buf
	buf = buf[n:]
	if len(buf) < 4*4+1+8+8+4 {
		return r, fmt.Errorf("store: record truncated at counters")
	}
	r.Deciders = int(binary.LittleEndian.Uint32(buf[0:4]))
	r.Correct = int(binary.LittleEndian.Uint32(buf[4:8]))
	r.DistinctValues = int(binary.LittleEndian.Uint32(buf[8:12]))
	r.CertDeficits = int(binary.LittleEndian.Uint32(buf[12:16]))
	flags := buf[16]
	r.MatchesProposal = flags&flagMatchesProposal != 0
	r.OpenedNs = int64(binary.LittleEndian.Uint64(buf[17:25]))
	r.CommittedNs = int64(binary.LittleEndian.Uint64(buf[25:33]))
	npay := int(binary.LittleEndian.Uint32(buf[33:37]))
	buf = buf[37:]
	if npay < 0 || npay > len(buf) {
		return r, fmt.Errorf("store: record claims %d payloads in %d bytes", npay, len(buf))
	}
	if npay > 0 {
		r.Payloads = make([][]byte, npay)
		for i := 0; i < npay; i++ {
			if len(buf) < 4 {
				return r, fmt.Errorf("store: record truncated at payload %d length", i)
			}
			plen := int(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
			if plen < 0 || plen > len(buf) {
				return r, fmt.Errorf("store: record payload %d claims %d of %d bytes", i, plen, len(buf))
			}
			r.Payloads[i] = append([]byte(nil), buf[:plen]...)
			buf = buf[plen:]
		}
	}
	if len(buf) != 0 {
		return r, fmt.Errorf("store: record has %d trailing bytes", len(buf))
	}
	return r, nil
}
