// Package store is the durability layer under the decision log: a
// segmented write-ahead log of committed entries plus snapshot/compaction
// and tolerate-and-truncate crash recovery.
//
// The log holds Records — committed decision-log entries — framed as
// CRC-checked, length-prefixed appends across rolling segment files.
// Appends are fsync-batched: with a group-commit window, concurrent
// appenders share one fsync per window instead of one each. A periodic
// snapshot rewrites the whole committed prefix into one atomically
// installed file and deletes the segments it covers, bounding recovery
// replay work.
//
// Recovery (Open on an existing directory) is tolerate-and-truncate: the
// newest fully parseable snapshot seeds the prefix, segments replay on
// top in sequence order, and the first torn or corrupt frame truncates
// its segment at the last good offset and discards everything after it —
// a crash mid-append never poisons the prefix that was durable before it.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	// segMagic and snapMagic identify file types; version is the format
	// revision — both are part of the on-disk contract.
	segMagic  = "BAWL"
	snapMagic = "BASN"
	version   = 1
	// fileHeaderSize is the fixed header of both file types:
	// magic (4) | version u32 | startSeq-or-count u64.
	fileHeaderSize = 16
	// frameOverhead prefixes every record frame: length u32 | crc32 u32.
	frameOverhead = 8
	// maxRecordBytes bounds accepted frame payloads on replay (defense
	// against corrupt length prefixes; generous for any batch).
	maxRecordBytes = 1 << 26

	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// ErrClosed reports an operation on a closed (or crashed) store.
var ErrClosed = fmt.Errorf("store: closed")

// Options shape a store. The zero value is usable: 1 MiB segments,
// fsync on every append, snapshot every 512 records.
type Options struct {
	// SegmentBytes rolls the active segment when it exceeds this size
	// (default 1 MiB).
	SegmentBytes int64
	// SyncWindow is the group-commit window: an append becomes durable at
	// the next window flush, sharing one fsync with every append in the
	// same window. 0 (the default) fsyncs every append individually.
	SyncWindow time.Duration
	// SnapshotEvery compacts after this many appended records (default
	// 512); negative disables snapshots.
	SnapshotEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 512
	}
	return o
}

// Store is a durable committed-prefix log. It is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	records   []Record // the full committed prefix, seqs 0..frontier-1
	seg       *os.File // active segment
	segStart  uint64   // first seq the active segment holds
	segSize   int64
	sinceSnap int
	buf       []byte
	closed    bool

	// Group commit: appends in the current window park on waiters until
	// the armed flush fsyncs once for all of them.
	waiters []chan error
	armed   bool
}

// Open opens (creating if needed) the store at dir and recovers its
// committed prefix: newest parseable snapshot, then segment replay with
// torn-tail truncation.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Frontier returns the next sequence number the store expects: the
// committed prefix holds seqs [0, Frontier).
func (s *Store) Frontier() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.records))
}

// Records snapshots the recovered/appended committed prefix in sequence
// order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.records...)
}

// Append durably appends the next record. r.Seq must equal Frontier():
// the store holds exactly the contiguous committed prefix. Append
// returns once the record is durable — immediately after its own fsync,
// or after the group-commit window it joined flushed.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if want := uint64(len(s.records)); r.Seq != want {
		s.mu.Unlock()
		return fmt.Errorf("store: append seq %d, frontier is %d", r.Seq, want)
	}
	if err := s.writeFrameLocked(r); err != nil {
		s.mu.Unlock()
		return err
	}
	s.records = append(s.records, r)
	s.sinceSnap++

	if s.opts.SyncWindow <= 0 {
		err := s.seg.Sync()
		if err == nil {
			err = s.maybeSnapshotLocked()
		}
		s.mu.Unlock()
		return err
	}

	done := make(chan error, 1)
	s.waiters = append(s.waiters, done)
	if !s.armed {
		s.armed = true
		time.AfterFunc(s.opts.SyncWindow, s.flushWindow)
	}
	s.mu.Unlock()
	return <-done
}

// AppendBatch durably appends a contiguous run of records with a single
// fsync — the catch-up ingestion path, where per-record group-commit
// waits would serialize the whole transfer.
func (s *Store) AppendBatch(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, r := range recs {
		if want := uint64(len(s.records)); r.Seq != want {
			return fmt.Errorf("store: append seq %d, frontier is %d", r.Seq, want)
		}
		if err := s.writeFrameLocked(r); err != nil {
			return err
		}
		s.records = append(s.records, r)
		s.sinceSnap++
	}
	if len(recs) > 0 {
		if err := s.seg.Sync(); err != nil {
			return err
		}
	}
	return s.maybeSnapshotLocked()
}

// flushWindow is the group-commit flush: one fsync covering every append
// parked since the window was armed.
func (s *Store) flushWindow() {
	s.mu.Lock()
	waiters := s.waiters
	s.waiters = nil
	s.armed = false
	var err error
	if s.closed {
		err = ErrClosed
	} else {
		err = s.seg.Sync()
		if err == nil {
			err = s.maybeSnapshotLocked()
		}
	}
	s.mu.Unlock()
	for _, w := range waiters {
		w <- err
	}
}

// writeFrameLocked encodes and writes one record frame, rolling the
// segment first when the active one is full.
func (s *Store) writeFrameLocked(r Record) error {
	if s.seg == nil || s.segSize >= s.opts.SegmentBytes {
		if err := s.rollSegmentLocked(uint64(len(s.records))); err != nil {
			return err
		}
	}
	payload := AppendRecord(s.buf[:0], r)
	s.buf = payload[:0]
	frame := make([]byte, 0, frameOverhead+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := s.seg.Write(frame); err != nil {
		return fmt.Errorf("store: write seq %d: %w", r.Seq, err)
	}
	s.segSize += int64(len(frame))
	return nil
}

// rollSegmentLocked fsyncs and closes the active segment and opens a
// fresh one starting at startSeq.
func (s *Store) rollSegmentLocked(startSeq uint64) error {
	if s.seg != nil {
		if err := s.seg.Sync(); err != nil {
			return err
		}
		if err := s.seg.Close(); err != nil {
			return err
		}
		s.seg = nil
	}
	path := filepath.Join(s.dir, segName(startSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	var hdr [fileHeaderSize]byte
	copy(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], startSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: segment header: %w", err)
	}
	s.seg = f
	s.segStart = startSeq
	s.segSize = fileHeaderSize
	return s.syncDir()
}

// maybeSnapshotLocked compacts when the snapshot cadence is due: the
// whole committed prefix is rewritten into one atomically installed
// snapshot file and every WAL segment it covers is deleted.
func (s *Store) maybeSnapshotLocked() error {
	if s.opts.SnapshotEvery <= 0 || s.sinceSnap < s.opts.SnapshotEvery {
		return nil
	}
	count := uint64(len(s.records))
	tmp, err := os.CreateTemp(s.dir, "snap-tmp-*")
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	var hdr [fileHeaderSize]byte
	copy(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], count)
	write := func() error {
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		frame := []byte(nil)
		for _, r := range s.records {
			payload := AppendRecord(s.buf[:0], r)
			s.buf = payload[:0]
			frame = binary.LittleEndian.AppendUint32(frame[:0], uint32(len(payload)))
			frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
			frame = append(frame, payload...)
			if _, err := tmp.Write(frame); err != nil {
				return err
			}
		}
		return tmp.Sync()
	}
	if err := write(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: snapshot: %w", err)
	}
	final := filepath.Join(s.dir, snapName(count))
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// The snapshot is durable; everything it covers can go: old snapshots
	// and every WAL segment (the active one included — appends resume in
	// a fresh segment at the frontier).
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		if name == filepath.Base(final) {
			continue
		}
		if strings.HasPrefix(name, segPrefix) || strings.HasPrefix(name, snapPrefix) {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	s.sinceSnap = 0
	return s.rollSegmentLocked(count)
}

// Close flushes and fsyncs the active segment and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	waiters := s.waiters
	s.waiters = nil
	var err error
	if s.seg != nil {
		err = s.seg.Sync()
		if cerr := s.seg.Close(); err == nil {
			err = cerr
		}
		s.seg = nil
	}
	s.mu.Unlock()
	// Parked group-commit appends were written before Close's fsync, so
	// they are durable: resolve them with the sync's verdict.
	for _, w := range waiters {
		w <- err
	}
	return err
}

// Crash simulates a kill -9: the store closes its files WITHOUT the
// final fsync and releases parked group-commit appends with ErrClosed.
// Bytes already written stay in the OS page cache, so a same-machine
// reopen recovers them — which is exactly the crash model a process kill
// (as opposed to a power failure) exposes.
func (s *Store) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	waiters := s.waiters
	s.waiters = nil
	if s.seg != nil {
		s.seg.Close() // no Sync: that's the point
		s.seg = nil
	}
	s.mu.Unlock()
	for _, w := range waiters {
		w <- ErrClosed
	}
}

// syncDir fsyncs the store directory so renames and creations are
// durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// ---- recovery ----

// recover loads the committed prefix: newest parseable snapshot first,
// then segments in sequence order with torn-tail truncation.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var snaps []uint64 // snapshot counts, from file names
	var segs []uint64  // segment start seqs, from file names
	for _, de := range entries {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			if v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64); err == nil {
				snaps = append(snaps, v)
			}
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			if v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64); err == nil {
				segs = append(segs, v)
			}
		case strings.HasPrefix(name, "snap-tmp-"):
			// An interrupted snapshot write; never installed, never valid.
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	// Seed from the newest snapshot that parses completely; a torn or
	// corrupt snapshot is discarded wholesale (its contents exist in no
	// other form only if compaction deleted the segments — but compaction
	// deletes only after the rename + dir sync, so an installed snapshot
	// that fails to parse means real corruption, and older snapshots or
	// segments are the best remaining truth).
	for _, count := range snaps {
		path := filepath.Join(s.dir, snapName(count))
		recs, ok := readSnapshot(path, count)
		if ok {
			s.records = recs
			break
		}
		os.Remove(path)
	}

	// Replay segments on top, skipping what the snapshot already covers.
	// The first tear truncates its segment and discards every later one.
	frontier := uint64(len(s.records))
	torn := false
	var tail *os.File // last surviving segment, reopened for append
	var tailStart uint64
	var tailSize int64
	for _, start := range segs {
		path := filepath.Join(s.dir, segName(start))
		if torn || start > frontier {
			// Past a tear, or a gap between the recovered prefix and this
			// segment's start: nothing after it can be contiguous.
			os.Remove(path)
			continue
		}
		recs, goodOff, complete := readSegment(path, start, frontier, s.records)
		s.records = append(s.records, recs...)
		frontier = uint64(len(s.records))
		if !complete {
			torn = true
			if goodOff < fileHeaderSize {
				// Not even a valid header (empty or corrupt file): delete
				// rather than keep an unparseable husk.
				os.Remove(path)
				continue
			}
			if err := os.Truncate(path, goodOff); err != nil {
				return fmt.Errorf("store: truncate torn tail: %w", err)
			}
		}
		if tail != nil {
			tail.Close()
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: reopen segment: %w", err)
		}
		if torn {
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("store: sync truncated segment: %w", err)
			}
		}
		tail = f
		tailStart = start
		if complete {
			tailSize = segmentSize(path)
		} else {
			tailSize = goodOff
		}
	}
	if tail != nil {
		s.seg = tail
		s.segStart = tailStart
		s.segSize = tailSize
	} else {
		if err := s.rollSegmentLocked(frontier); err != nil {
			return err
		}
	}
	return s.syncDir()
}

func segmentSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return fileHeaderSize
	}
	return fi.Size()
}

// readSnapshot parses one snapshot file completely: header, count frames,
// contiguous seqs from 0, no trailing bytes. Any defect rejects it.
func readSnapshot(path string, count uint64) ([]Record, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	if !readHeader(f, snapMagic, count) {
		return nil, false
	}
	recs := make([]Record, 0, count)
	for uint64(len(recs)) < count {
		r, _, ok := readFrame(f)
		if !ok || r.Seq != uint64(len(recs)) {
			return nil, false
		}
		recs = append(recs, r)
	}
	if _, err := f.Read(make([]byte, 1)); err != io.EOF {
		return nil, false
	}
	return recs, true
}

// readSegment replays one segment: frames below frontier are checked for
// prefix agreement against what recovery already holds (a mismatch is a
// tear), frames at the frontier extend the prefix. It returns the new
// records, the offset just past the last good frame, and whether the
// whole file parsed.
func readSegment(path string, start, frontier uint64, have []Record) (recs []Record, goodOff int64, complete bool) {
	goodOff = fileHeaderSize
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false
	}
	defer f.Close()
	if !readHeader(f, segMagic, start) {
		return nil, 0, false
	}
	next := start
	for {
		r, n, ok := readFrame(f)
		if !ok {
			// Torn tail (or clean EOF: readFrame distinguishes via n == 0).
			return recs, goodOff, n == 0
		}
		if r.Seq != next {
			return recs, goodOff, false
		}
		if next < frontier {
			// Already covered by the snapshot (or an earlier segment);
			// verify rather than re-add.
			if !have[next].Value.Equal(r.Value) {
				return recs, goodOff, false
			}
		} else {
			recs = append(recs, r)
		}
		next++
		goodOff += n
	}
}

// readHeader validates a 16-byte file header.
func readHeader(f *os.File, magic string, tag uint64) bool {
	var hdr [fileHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	if string(hdr[0:4]) != magic {
		return false
	}
	if binary.LittleEndian.Uint32(hdr[4:8]) != version {
		return false
	}
	return binary.LittleEndian.Uint64(hdr[8:16]) == tag
}

// readFrame reads one frame. ok = false with n = 0 means clean EOF;
// ok = false with n > 0 means a torn or corrupt frame.
func readFrame(f *os.File) (r Record, n int64, ok bool) {
	var pre [frameOverhead]byte
	if _, err := io.ReadFull(f, pre[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, false
		}
		return Record{}, 1, false // partial prefix: torn
	}
	size := binary.LittleEndian.Uint32(pre[0:4])
	sum := binary.LittleEndian.Uint32(pre[4:8])
	if size == 0 || size > maxRecordBytes {
		return Record{}, 1, false
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(f, payload); err != nil {
		return Record{}, 1, false
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 1, false
	}
	rec, err := DecodeRecord(payload)
	if err != nil {
		return Record{}, 1, false
	}
	return rec, int64(frameOverhead) + int64(size), true
}

func segName(start uint64) string  { return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix) }
func snapName(count uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, count, snapSuffix) }
