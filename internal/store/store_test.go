package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/prng"
)

// testRecord builds a deterministic record for seq.
func testRecord(seq uint64) Record {
	src := prng.New(prng.DeriveKey(7, "store/test", seq))
	payloads := make([][]byte, 1+seq%3)
	for i := range payloads {
		p := make([]byte, 8+int(seq%5)*4)
		for j := range p {
			p[j] = byte(src.Uint64())
		}
		payloads[i] = p
	}
	return Record{
		Seq:             seq,
		Value:           bitstring.Random(src, 64),
		Payloads:        payloads,
		Deciders:        10 + int(seq),
		Correct:         12,
		DistinctValues:  1,
		CertDeficits:    0,
		MatchesProposal: true,
		OpenedNs:        int64(seq) * 1000,
		CommittedNs:     int64(seq)*1000 + 500,
	}
}

func recordsEqual(a, b Record) bool {
	if a.Seq != b.Seq || !a.Value.Equal(b.Value) || len(a.Payloads) != len(b.Payloads) {
		return false
	}
	for i := range a.Payloads {
		if !bytes.Equal(a.Payloads[i], b.Payloads[i]) {
			return false
		}
	}
	return a.Deciders == b.Deciders && a.Correct == b.Correct &&
		a.DistinctValues == b.DistinctValues && a.CertDeficits == b.CertDeficits &&
		a.MatchesProposal == b.MatchesProposal &&
		a.OpenedNs == b.OpenedNs && a.CommittedNs == b.CommittedNs
}

func appendN(t *testing.T, s *Store, from, n uint64) {
	t.Helper()
	for seq := from; seq < from+n; seq++ {
		if err := s.Append(testRecord(seq)); err != nil {
			t.Fatalf("append seq %d: %v", seq, err)
		}
	}
}

func verifyPrefix(t *testing.T, s *Store, n uint64) {
	t.Helper()
	recs := s.Records()
	if uint64(len(recs)) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if !recordsEqual(r, testRecord(uint64(i))) {
			t.Fatalf("record %d does not round-trip: %+v", i, r)
		}
	}
}

// TestAppendReopenRoundTrip: records written across several rolled
// segments come back byte-identical on reopen.
func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 20)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{SegmentBytes: 256, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyPrefix(t, s2, 20)
	// Appends resume exactly at the recovered frontier.
	if got := s2.Frontier(); got != 20 {
		t.Fatalf("frontier %d after reopen, want 20", got)
	}
	appendN(t, s2, 20, 3)
	verifyPrefix(t, s2, 23)
}

// TestCrashRecover: a crash (close without the final fsync) still
// recovers every append that returned, because each append fsynced (or
// joined a flushed window) before returning.
func TestCrashRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 7)
	s.Crash()
	if err := s.Append(testRecord(7)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after crash: %v, want ErrClosed", err)
	}

	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyPrefix(t, s2, 7)
}

// tailSegment returns the path of the highest-start segment in dir.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	last := paths[0]
	for _, p := range paths[1:] {
		if p > last {
			last = p
		}
	}
	return last
}

// TestTornTailTruncated: a partial frame at the end of the tail segment
// (a crash mid-append) is truncated away; the records before it survive
// and appending resumes.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn append: half a frame of garbage at the tail.
	tail := tailSegment(t, dir)
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	verifyPrefix(t, s2, 5)
	appendN(t, s2, 5, 2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The truncated-and-extended file must replay cleanly again.
	s3, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	verifyPrefix(t, s3, 7)
}

// TestFlippedCRCByte: a corrupt byte inside the last frame fails its CRC;
// recovery keeps the prefix before it and truncates the rest.
func TestFlippedCRCByte(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	tail := tailSegment(t, dir)
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // inside the last frame's payload
	if err := os.WriteFile(tail, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	verifyPrefix(t, s2, 3)
	// The frontier regressed to the corruption point — but only entries
	// the store never acknowledged are affected; re-appending works.
	appendN(t, s2, 3, 1)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	verifyPrefix(t, s3, 4)
}

// TestEmptySegmentDeleted: a zero-byte segment file (created but never
// written) is deleted on recovery instead of poisoning the prefix.
func TestEmptySegmentDeleted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A segment created at the frontier whose header write never hit disk.
	empty := filepath.Join(dir, segName(3))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	verifyPrefix(t, s2, 3)
	appendN(t, s2, 3, 1)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		// The husk may have been recreated as a fresh tail; it must at
		// least parse now.
		s3, err := Open(dir, Options{SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer s3.Close()
		verifyPrefix(t, s3, 4)
		return
	}
	s3, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	verifyPrefix(t, s3, 4)
}

// TestSnapshotCompaction: the snapshot cadence rewrites the prefix into
// one snapshot, deletes covered segments, and recovery seeds from it.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(snaps) != 1 {
		t.Fatalf("want exactly 1 snapshot after compaction, have %v", snaps)
	}
	// Segments older than the newest snapshot are gone: every surviving
	// segment starts at or after the snapshot count.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	for _, p := range segs {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), segPrefix), segSuffix)
		if base < filepath.Base(snaps[0])[len(snapPrefix):len(snapPrefix)+16] {
			t.Fatalf("segment %s predates the snapshot %s", p, snaps[0])
		}
	}

	s2, err := Open(dir, Options{SegmentBytes: 128, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyPrefix(t, s2, 10)
}

// TestCorruptSnapshotFallsBack: an unparseable snapshot is discarded and
// recovery falls back to older truth (here: the segments, which the test
// preserves by corrupting a snapshot that never had segments deleted).
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 6)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a corrupt snapshot claiming to cover more than exists.
	bogus := filepath.Join(dir, snapName(6))
	if err := os.WriteFile(bogus, []byte("BASNgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyPrefix(t, s2, 6)
	if _, err := os.Stat(bogus); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot was not removed")
	}
}

// TestGroupCommitWindow: appends inside one SyncWindow share a flush and
// all return durable; a reopen sees every acknowledged record.
func TestGroupCommitWindow(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SyncWindow: 2 * time.Millisecond, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- s.Append(testRecord(0)) }()
	// The frame is written (frontier advances) before the appender parks,
	// so the next seq becomes appendable within the same window.
	deadline := time.Now().Add(time.Second)
	for s.Frontier() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first append never advanced the frontier")
		}
		time.Sleep(50 * time.Microsecond)
	}
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	s.Crash() // no final fsync: the window flush must have made them durable

	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyPrefix(t, s2, 2)
}

// TestAppendSeqGate: the store accepts only the exact frontier seq.
func TestAppendSeqGate(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(testRecord(1)); err == nil {
		t.Fatal("append at seq 1 with frontier 0 must fail")
	}
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(0)); err == nil {
		t.Fatal("re-append at seq 0 with frontier 1 must fail")
	}
}

// TestRecordRoundTripQuick: property-based encode/decode round-trip over
// randomized records.
func TestRecordRoundTripQuick(t *testing.T) {
	f := func(seq uint64, value []byte, nbits uint8, payloads [][]byte, deciders, correct uint16, distinct, certdef uint8, matches bool, opened, committed int64) bool {
		bits := int(nbits)
		for len(value) < (bits+7)/8 {
			value = append(value, 0)
		}
		v, err := bitstring.FromBytes(value, bits)
		if err != nil {
			return false
		}
		r := Record{
			Seq: seq, Value: v, Payloads: payloads,
			Deciders: int(deciders), Correct: int(correct),
			DistinctValues: int(distinct), CertDeficits: int(certdef),
			MatchesProposal: matches, OpenedNs: opened, CommittedNs: committed,
		}
		got, err := DecodeRecord(AppendRecord(nil, r))
		if err != nil {
			return false
		}
		// recordsEqual compares payloads by bytes.Equal, so the codec's
		// nil-versus-empty slice collapse is tolerated.
		return recordsEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeRecordRejectsTruncations: every strict prefix of a valid
// encoding fails to decode (no silent partial parse).
func TestDecodeRecordRejectsTruncations(t *testing.T) {
	full := AppendRecord(nil, testRecord(3))
	for n := 0; n < len(full); n++ {
		if _, err := DecodeRecord(full[:n]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(full))
		}
	}
	if _, err := DecodeRecord(append(full, 0)); err == nil {
		t.Fatal("decode with a trailing byte succeeded")
	}
}

// TestAppendBatch: the catch-up ingest path appends a contiguous run with
// one fsync and the result survives reopen.
func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 8)
	for i := range recs {
		recs[i] = testRecord(uint64(i))
	}
	if err := s.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyPrefix(t, s2, 8)
}

// BenchmarkStoreAppend measures the durable append path (per-append
// fsync, the default policy).
func BenchmarkStoreAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	r := testRecord(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq = uint64(i)
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverReplay measures reopening a store whose prefix lives in
// WAL segments (no snapshot), i.e. worst-case replay.
func BenchmarkRecoverReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]Record, 1024)
	for i := range recs {
		recs[i] = testRecord(uint64(i))
	}
	if err := s.AppendBatch(recs); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if s.Frontier() != 1024 {
			b.Fatalf("recovered %d", s.Frontier())
		}
		s.Close()
	}
}
