// Package trace records and renders protocol executions. A Trace attaches
// to any simnet runner through the Observer hook and aggregates delivered
// messages per (time, kind) — "time" being the round for synchronous runs
// and the causal depth for asynchronous ones — plus optional per-node
// activity. Its renderings are the debugging views used while developing
// the protocols: a phase timeline (which message kinds flow when — the
// temporal version of the paper's Figure 2) and a per-node activity sketch
// for spotting hot spots under the cornering attack.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/fastba/fastba/internal/simnet"
)

// Trace aggregates one execution. Attach it before Run and render after.
// A Trace must only be used with one runner at a time; it is not
// concurrency-safe (the deterministic runners deliver sequentially, which
// is where tracing is useful).
type Trace struct {
	// byTime[t][kind] counts deliveries of kind at time t.
	byTime map[int]map[string]int64
	// byNode[id] counts deliveries to each node.
	byNode []int64
	// kinds remembers every kind seen, for stable rendering.
	kinds map[string]bool
	// maxTime is the largest time observed.
	maxTime int
}

// New returns a Trace for n nodes.
func New(n int) *Trace {
	return &Trace{
		byTime: make(map[int]map[string]int64),
		byNode: make([]int64, n),
		kinds:  make(map[string]bool),
	}
}

// Observer returns the hook to register with a runner.
func (t *Trace) Observer() simnet.Observer {
	return func(e simnet.Envelope) {
		t.Record(e.Depth, e.Msg.Kind(), e.To)
	}
}

// Record counts one delivery of kind to node to at time tm. It is the raw
// entry point behind Observer, exposed so event streams that are not
// simnet envelopes (the public fastba.Observer) can feed a trace too.
func (t *Trace) Record(tm int, kind string, to int) {
	byKind := t.byTime[tm]
	if byKind == nil {
		byKind = make(map[string]int64)
		t.byTime[tm] = byKind
	}
	byKind[kind]++
	t.kinds[kind] = true
	if to >= 0 && to < len(t.byNode) {
		t.byNode[to]++
	}
	if tm > t.maxTime {
		t.maxTime = tm
	}
}

// Count returns the number of deliveries of kind at time tm.
func (t *Trace) Count(tm int, kind string) int64 {
	return t.byTime[tm][kind]
}

// MaxTime returns the largest delivery time observed.
func (t *Trace) MaxTime() int { return t.maxTime }

// Kinds returns the message kinds seen, sorted.
func (t *Trace) Kinds() []string {
	kinds := make([]string, 0, len(t.kinds))
	for k := range t.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Timeline renders deliveries per time step and kind:
//
//	t=1  push:1756
//	t=2  poll:2100 pull:1886
//	...
//
// The temporal counterpart of the paper's Figure 2 message flow.
func (t *Trace) Timeline(w io.Writer) {
	kinds := t.Kinds()
	for tm := 1; tm <= t.maxTime; tm++ {
		byKind := t.byTime[tm]
		if len(byKind) == 0 {
			continue
		}
		parts := make([]string, 0, len(byKind))
		for _, k := range kinds {
			if c := byKind[k]; c > 0 {
				parts = append(parts, fmt.Sprintf("%s:%d", k, c))
			}
		}
		fmt.Fprintf(w, "t=%-3d %s\n", tm, strings.Join(parts, " "))
	}
}

// Hotspots renders the most-loaded nodes (by deliveries received), one per
// line, up to limit entries — the view that exposes the cornering attack's
// targets.
func (t *Trace) Hotspots(w io.Writer, limit int) {
	type load struct {
		id    int
		count int64
	}
	loads := make([]load, 0, len(t.byNode))
	for id, c := range t.byNode {
		if c > 0 {
			loads = append(loads, load{id: id, count: c})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].count != loads[j].count {
			return loads[i].count > loads[j].count
		}
		return loads[i].id < loads[j].id
	})
	if limit > len(loads) {
		limit = len(loads)
	}
	for _, l := range loads[:limit] {
		fmt.Fprintf(w, "node %-5d %d deliveries\n", l.id, l.count)
	}
}

// TotalDeliveries returns the total number of observed deliveries.
func (t *Trace) TotalDeliveries() int64 {
	var total int64
	for _, c := range t.byNode {
		total += c
	}
	return total
}
