package trace

import (
	"strings"
	"testing"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// runTraced executes a small AER run with a Trace attached.
func runTraced(t *testing.T) (*Trace, *simnet.Metrics) {
	t.Helper()
	sc, err := core.NewScenario(core.DefaultParams(64), 3, core.TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, correct := sc.Build(nil)
	tr := New(64)
	runner := simnet.NewSync(nodes, sc.Corrupt)
	runner.Observe(tr.Observer())
	m := runner.Run(60)
	if o := core.Evaluate(correct, sc.GString); !o.Agreement() {
		t.Fatalf("traced run failed: %+v", o)
	}
	return tr, m
}

func TestTraceCountsMatchMetrics(t *testing.T) {
	tr, m := runTraced(t)
	if tr.TotalDeliveries() != m.Delivered {
		t.Fatalf("trace saw %d deliveries, metrics %d", tr.TotalDeliveries(), m.Delivered)
	}
	if tr.MaxTime() != m.Rounds {
		t.Fatalf("trace max time %d, metrics rounds %d", tr.MaxTime(), m.Rounds)
	}
}

func TestTracePhaseOrdering(t *testing.T) {
	tr, _ := runTraced(t)
	// The protocol's phase structure must be visible: pushes arrive in
	// round 1; Fw1 traffic cannot precede pulls; answers cannot precede
	// Fw2s.
	if tr.Count(1, "push") == 0 {
		t.Fatal("no pushes in round 1")
	}
	firstAt := func(kind string) int {
		for tm := 1; tm <= tr.MaxTime(); tm++ {
			if tr.Count(tm, kind) > 0 {
				return tm
			}
		}
		return -1
	}
	pull, fw1, fw2, answer := firstAt("pull"), firstAt("fw1"), firstAt("fw2"), firstAt("answer")
	if pull < 0 || fw1 < 0 || fw2 < 0 || answer < 0 {
		t.Fatalf("missing phases: pull=%d fw1=%d fw2=%d answer=%d", pull, fw1, fw2, answer)
	}
	if !(pull < fw1 && fw1 < fw2 && fw2 < answer) {
		t.Fatalf("phase order violated: pull=%d fw1=%d fw2=%d answer=%d", pull, fw1, fw2, answer)
	}
}

func TestTimelineRendering(t *testing.T) {
	tr, _ := runTraced(t)
	var sb strings.Builder
	tr.Timeline(&sb)
	out := sb.String()
	for _, want := range []string{"t=1", "push:", "fw1:", "answer:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestHotspots(t *testing.T) {
	tr, _ := runTraced(t)
	var sb strings.Builder
	tr.Hotspots(&sb, 5)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("hotspots rendered %d lines, want 5", len(lines))
	}
	if !strings.Contains(lines[0], "deliveries") {
		t.Fatalf("unexpected hotspot line %q", lines[0])
	}
}

func TestHotspotsLimitAboveNodes(t *testing.T) {
	tr := New(2)
	obs := tr.Observer()
	obs(simnet.Envelope{To: 1, Depth: 1, Msg: core.MsgPush{}})
	var sb strings.Builder
	tr.Hotspots(&sb, 10)
	if got := len(strings.Split(strings.TrimSpace(sb.String()), "\n")); got != 1 {
		t.Fatalf("hotspots lines = %d, want 1", got)
	}
}

func TestKindsSorted(t *testing.T) {
	tr, _ := runTraced(t)
	kinds := tr.Kinds()
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("kinds not sorted: %v", kinds)
		}
	}
}

func TestAsyncObserverDepths(t *testing.T) {
	sc, err := core.NewScenario(core.DefaultParams(64), 5, core.TestingScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodes, _ := sc.Build(nil)
	tr := New(64)
	runner := simnet.NewAsync(nodes, simnet.NewRandom(3))
	runner.Observe(tr.Observer())
	m := runner.Run()
	if tr.TotalDeliveries() != m.Delivered {
		t.Fatalf("async trace saw %d, metrics %d", tr.TotalDeliveries(), m.Delivered)
	}
	if tr.MaxTime() != m.Rounds {
		t.Fatalf("async trace depth %d, metrics %d", tr.MaxTime(), m.Rounds)
	}
}
