package wire

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// buildFrames encodes count length-prefixed frames for one link, mixing
// plain and instance-tagged records the way a coalescing link writer does.
func buildFrames(t testing.TB, src *prng.Source, from, to, count int) ([][]byte, []simnet.Envelope) {
	t.Helper()
	frames := make([][]byte, 0, count)
	want := make([]simnet.Envelope, 0, count)
	for i := 0; i < count; i++ {
		s := bitstring.Random(src, 1+int(src.Uint64()%256))
		var f []byte
		var err error
		e := simnet.Envelope{From: from, To: to}
		switch i % 3 {
		case 0:
			e.Msg = core.MsgPush{S: s}
			f, err = AppendFrame(nil, from, to, e.Msg)
		case 1:
			e.Msg = core.MsgFw1{X: i, S: s, R: uint64(i) * 977, W: i + 1}
			f, err = AppendFrame(nil, from, to, e.Msg)
		default:
			e.Msg, e.Inst, e.Tagged = core.MsgPoll{S: s, R: uint64(i)}, uint32(i), true
			f, err = AppendTaggedFrame(nil, from, to, uint32(i), e.Msg)
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		want = append(want, e)
	}
	return frames, want
}

func TestBatchRoundTrip(t *testing.T) {
	src := prng.New(21)
	frames, want := buildFrames(t, src, 3, 7, 9)
	batch, err := AppendBatchFrame(nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	// The frame after its length prefix must self-identify as a batch.
	if got := binary.LittleEndian.Uint32(batch[0:4]); int(got) != len(batch)-4 {
		t.Fatalf("length prefix %d, frame body %d", got, len(batch)-4)
	}
	body := batch[4:]
	if !IsBatchFrame(body) {
		t.Fatal("batch frame not recognized")
	}
	for _, view := range []bool{false, true} {
		got, err := DecodeBatchAppend(nil, body, view)
		if err != nil {
			t.Fatalf("view=%v: %v", view, err)
		}
		if len(got) != len(want) {
			t.Fatalf("view=%v: %d envelopes, want %d", view, len(got), len(want))
		}
		for i := range got {
			w, g := want[i], got[i]
			if g.From != w.From || g.To != w.To || g.Inst != w.Inst || g.Tagged != w.Tagged {
				t.Fatalf("view=%v record %d: header mismatch %+v != %+v", view, i, g, w)
			}
			if !messagesEqual(w.Msg, g.Msg) {
				t.Fatalf("view=%v record %d: message mismatch", view, i)
			}
		}
	}
}

// TestQuickBatchRoundTrip drives AppendBatchFrame/DecodeBatchAppend over
// randomized batch shapes: any batch that encodes must decode to exactly
// the messages that went in.
func TestQuickBatchRoundTrip(t *testing.T) {
	src := prng.New(22)
	f := func(count8 uint8, from16, to16 uint16) bool {
		count := 1 + int(count8%32)
		from, to := int(from16), int(to16)
		frames, want := buildFrames(t, src, from, to, count)
		batch, err := AppendBatchFrame(nil, frames)
		if err != nil {
			return false
		}
		got, err := DecodeBatchAppend(nil, batch[4:], true)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].From != from || got[i].To != to || !messagesEqual(want[i].Msg, got[i].Msg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchEncodeRejections(t *testing.T) {
	src := prng.New(23)
	frames, _ := buildFrames(t, src, 1, 2, 3)
	if _, err := AppendBatchFrame(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := AppendBatchFrame(nil, [][]byte{frames[0][:5]}); err == nil {
		t.Error("short input frame accepted")
	}
	other, _ := buildFrames(t, src, 1, 3, 1) // different link
	if _, err := AppendBatchFrame(nil, append(frames[:2:2], other[0])); err == nil {
		t.Error("mixed-link batch accepted")
	}
	batch, err := AppendBatchFrame(nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendBatchFrame(nil, [][]byte{batch}); err == nil {
		t.Error("nested batch accepted")
	}
}

// TestBatchDecodeAllOrNothing: a batch with one corrupt record yields no
// envelopes at all — partial batches would break exactly-once injection.
func TestBatchDecodeAllOrNothing(t *testing.T) {
	src := prng.New(24)
	frames, _ := buildFrames(t, src, 5, 6, 4)
	batch, err := AppendBatchFrame(nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	body := batch[4:]
	sentinel := simnet.Envelope{From: -1}
	dst := []simnet.Envelope{sentinel}

	// Corrupt the last record's kind byte (find it by walking the records).
	corrupted := append([]byte(nil), body...)
	pos := EnvelopeOverhead + 4
	for i := 0; i < 3; i++ {
		pos += 4 + int(binary.LittleEndian.Uint32(corrupted[pos:]))
	}
	corrupted[pos+4] = 0xEE
	got, err := DecodeBatchAppend(dst, corrupted, false)
	if err == nil {
		t.Fatal("corrupt record accepted")
	}
	if len(got) != 1 || got[0].From != -1 {
		t.Fatalf("partial decode leaked %d envelopes past the sentinel", len(got)-1)
	}

	// Truncation and trailing garbage likewise decode to nothing.
	if _, err := DecodeBatchAppend(nil, body[:len(body)-2], false); err == nil {
		t.Error("truncated batch accepted")
	}
	if _, err := DecodeBatchAppend(nil, append(append([]byte(nil), body...), 0xEE), false); err == nil {
		t.Error("trailing garbage accepted")
	}

	// A corrupt count prefix is bounded, not trusted.
	huge := append([]byte(nil), body...)
	binary.LittleEndian.PutUint32(huge[EnvelopeOverhead:], maxBatchCount+1)
	if _, err := DecodeBatchAppend(nil, huge, false); err == nil {
		t.Error("oversized record count accepted")
	}
}

// TestViewDecodeAliasesBuffer locks the ownership rule of DESIGN.md §10:
// view-mode decode aliases the read buffer (mutating the buffer mutates
// the decoded string), copy-mode decode owns its data, and Clone detaches
// a view.
func TestViewDecodeAliasesBuffer(t *testing.T) {
	// 40 bits = 5 whole bytes: no partial tail, so the view fast path
	// engages (a non-canonical tail falls back to copying).
	s := bitstring.Random(prng.New(25), 40)
	frame, err := EncodeEnvelope(1, 2, core.MsgPush{S: s})
	if err != nil {
		t.Fatal(err)
	}

	buf := append([]byte(nil), frame...)
	_, _, m, err := DecodeEnvelope(buf) // view mode
	if err != nil {
		t.Fatal(err)
	}
	view := m.(core.MsgPush).S
	detached := view.Clone()
	if !view.Equal(s) || !detached.Equal(s) {
		t.Fatal("decode mismatch before mutation")
	}
	buf[len(buf)-1] ^= 0xFF // mutate the payload under the view
	if view.Equal(s) {
		t.Fatal("view did not alias the buffer: mutation invisible")
	}
	if !detached.Equal(s) {
		t.Fatal("Clone still aliases the buffer")
	}

	buf = append(buf[:0], frame...)
	_, _, m, err = DecodeEnvelopeCopy(buf)
	if err != nil {
		t.Fatal(err)
	}
	owned := m.(core.MsgPush).S
	buf[len(buf)-1] ^= 0xFF
	if !owned.Equal(s) {
		t.Fatal("copy-mode decode aliased the buffer")
	}
}

// TestRefBufPoisonCatchesRetainedView: holding a view past the buffer's
// last Release is the canonical misuse; under the race detector the
// recycled buffer is poisoned so the stale view reads garbage loudly.
func TestRefBufPoisonCatchesRetainedView(t *testing.T) {
	s := bitstring.Random(prng.New(26), 64)
	frame, err := EncodeEnvelope(1, 2, core.MsgPush{S: s})
	if err != nil {
		t.Fatal(err)
	}
	rb := NewRefBuf(len(frame))
	copy(rb.Bytes(), frame)
	_, _, m, err := DecodeEnvelope(rb.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	view := m.(core.MsgPush).S
	rb.Retain(1)
	rb.Release() // last reference: recycle (and, under race, poison)
	if raceEnabled && view.Equal(s) {
		t.Fatal("retained view survived recycle unpoisoned")
	}
	if !raceEnabled && !view.Equal(s) {
		t.Fatal("non-race recycle mutated the buffer")
	}
}

func TestRefBufReuse(t *testing.T) {
	rb := NewRefBuf(128)
	if len(rb.Bytes()) != 128 {
		t.Fatalf("got %d bytes, want 128", len(rb.Bytes()))
	}
	rb.Retain(3)
	rb.Release()
	rb.Release()
	rb.Release() // last: back to the pool
	again := NewRefBuf(64)
	if len(again.Bytes()) != 64 {
		t.Fatalf("got %d bytes, want 64", len(again.Bytes()))
	}
	again.Recycle()
}
