package wire

import (
	"testing"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
)

// FuzzUnmarshal feeds arbitrary bytes to every decoder path: decoding must
// never panic, and whatever decodes successfully must re-encode to exactly
// the bytes it consumed (canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	src := prng.New(1)
	s := bitstring.Random(src, 40)
	for _, m := range []interface {
		WireSize() int
		Kind() string
	}{
		core.MsgPush{S: s},
		core.MsgFw1{X: 1, W: 2, R: 3, S: s},
		core.MsgAnswer{S: s, R: 9},
	} {
		kind, err := KindByte(m)
		if err != nil {
			f.Fatal(err)
		}
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(kind, buf)
	}
	f.Add(byte(0xFF), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		m, err := Unmarshal(kind, payload)
		if err != nil {
			return // malformed input correctly rejected
		}
		again, err := Marshal(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if string(again) != string(payload) {
			t.Fatalf("non-canonical encoding: %x -> %x", payload, again)
		}
		if len(again) != m.WireSize() {
			t.Fatalf("WireSize %d != encoded %d", m.WireSize(), len(again))
		}
	})
}

// FuzzDecodeBatch ensures batch-frame decoding never panics on junk, and
// that whatever decodes re-encodes canonically: rebuilding the batch from
// the decoded envelopes reproduces the input bytes exactly.
func FuzzDecodeBatch(f *testing.F) {
	src := prng.New(3)
	s := bitstring.Random(src, 40)
	f1, err := AppendFrame(nil, 1, 2, core.MsgPush{S: s})
	if err != nil {
		f.Fatal(err)
	}
	f2, err := AppendFrame(nil, 1, 2, core.MsgFw1{X: 3, S: s, R: 7, W: 9})
	if err != nil {
		f.Fatal(err)
	}
	f3, err := AppendTaggedFrame(nil, 1, 2, 5, core.MsgAnswer{S: s, R: 11})
	if err != nil {
		f.Fatal(err)
	}
	batch, err := AppendBatchFrame(nil, [][]byte{f1, f2, f3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch[4:])
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 0x60, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		envs, err := DecodeBatchAppend(nil, data, false)
		if err != nil {
			return // malformed input correctly rejected
		}
		frames := make([][]byte, 0, len(envs))
		for _, e := range envs {
			m := e.Msg
			var frame []byte
			var ferr error
			if e.Tagged {
				frame, ferr = AppendTaggedFrame(nil, e.From, e.To, e.Inst, m)
			} else {
				frame, ferr = AppendFrame(nil, e.From, e.To, m)
			}
			if ferr != nil {
				t.Fatalf("decoded record failed to re-encode: %v", ferr)
			}
			frames = append(frames, frame)
		}
		again, err := AppendBatchFrame(nil, frames)
		if err != nil {
			t.Fatalf("decoded batch failed to re-encode: %v", err)
		}
		if string(again[4:]) != string(data) {
			t.Fatalf("non-canonical batch encoding: %x -> %x", data, again[4:])
		}
	})
}

// FuzzDecodeEnvelope ensures frame decoding never panics on junk.
func FuzzDecodeEnvelope(f *testing.F) {
	frame, err := EncodeEnvelope(1, 2, core.MsgPush{S: bitstring.Random(prng.New(2), 24)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, to, m, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		if _, err := EncodeEnvelope(from, to, m); err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
	})
}
