package wire

import (
	"testing"

	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
)

// FuzzUnmarshal feeds arbitrary bytes to every decoder path: decoding must
// never panic, and whatever decodes successfully must re-encode to exactly
// the bytes it consumed (canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	src := prng.New(1)
	s := bitstring.Random(src, 40)
	for _, m := range []interface {
		WireSize() int
		Kind() string
	}{
		core.MsgPush{S: s},
		core.MsgFw1{X: 1, W: 2, R: 3, S: s},
		core.MsgAnswer{S: s, R: 9},
	} {
		kind, err := KindByte(m)
		if err != nil {
			f.Fatal(err)
		}
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(kind, buf)
	}
	f.Add(byte(0xFF), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		m, err := Unmarshal(kind, payload)
		if err != nil {
			return // malformed input correctly rejected
		}
		again, err := Marshal(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if string(again) != string(payload) {
			t.Fatalf("non-canonical encoding: %x -> %x", payload, again)
		}
		if len(again) != m.WireSize() {
			t.Fatalf("WireSize %d != encoded %d", m.WireSize(), len(again))
		}
	})
}

// FuzzDecodeEnvelope ensures frame decoding never panics on junk.
func FuzzDecodeEnvelope(f *testing.F) {
	frame, err := EncodeEnvelope(1, 2, core.MsgPush{S: bitstring.Random(prng.New(2), 24)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, to, m, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		if _, err := EncodeEnvelope(from, to, m); err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
	})
}
