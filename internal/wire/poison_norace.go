//go:build !race

package wire

// poison is a no-op outside race builds: recycled buffers keep their bytes
// until reuse, and the hot path pays nothing for the debug aid.
func poison([]byte) {}

// raceEnabled lets the aliasing tests assert poisoning only where it runs.
const raceEnabled = false
