//go:build race

package wire

// poison overwrites a recycled buffer so retained views read garbage
// loudly. Race builds only: the aliasing tests assert that a view held
// past its Release window observes the poison pattern instead of stale
// (accidentally still-valid) payload bytes.
func poison(b []byte) {
	for i := range b {
		b[i] = 0xDB
	}
}

// raceEnabled lets the aliasing tests assert poisoning only where it runs.
const raceEnabled = true
