package wire

import (
	"sync"
	"sync/atomic"
)

// RefBuf is a pooled, reference-counted read buffer: the ownership unit of
// the zero-copy decode path. A transport reads one frame into a RefBuf,
// decodes envelopes whose payloads alias the buffer (DecodeEnvelope,
// DecodeBatchAppend in view mode), takes one reference per decoded
// envelope with Retain, and attaches the RefBuf to each envelope
// (simnet.Envelope.Buf). The fabric releases each reference when the
// envelope has been handled; the buffer returns to the pool when the last
// reference drops. Any state that outlives its delivery must Clone the
// decoded data, never retain the view (DESIGN.md §10).
//
// Under the race detector the buffer is poisoned (overwritten with 0xDB)
// as it returns to the pool, so a retained view is caught by the aliasing
// tests instead of silently reading recycled bytes.
type RefBuf struct {
	buf  []byte
	refs atomic.Int32
}

var refBufPool = sync.Pool{New: func() any { return new(RefBuf) }}

// NewRefBuf takes a buffer of exactly size bytes from the pool.
func NewRefBuf(size int) *RefBuf {
	b := refBufPool.Get().(*RefBuf)
	if cap(b.buf) < size {
		b.buf = make([]byte, size)
	}
	b.buf = b.buf[:size]
	return b
}

// Bytes returns the buffer. Views produced by decoding alias it.
func (b *RefBuf) Bytes() []byte { return b.buf }

// Retain takes n references. Call once, after decoding, with the number of
// envelopes that alias the buffer.
func (b *RefBuf) Retain(n int) { b.refs.Add(int32(n)) }

// Release drops one reference, recycling the buffer when the last
// reference goes (simnet.Releaser).
func (b *RefBuf) Release() {
	if b.refs.Add(-1) <= 0 {
		b.recycle()
	}
}

// Recycle returns a buffer on which no references were taken (decode
// failed, or the frame was transport-internal) straight to the pool.
func (b *RefBuf) Recycle() { b.recycle() }

func (b *RefBuf) recycle() {
	poison(b.buf)
	b.refs.Store(0)
	refBufPool.Put(b)
}
