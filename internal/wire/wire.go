// Package wire provides the binary encoding of every protocol message in
// the repository — AER (core), the almost-everywhere substrate (ae) and
// the baselines — plus envelope framing for transport runners.
//
// The simulation runners meter communication through Message.WireSize; this
// package is what makes those numbers honest: for every message type,
// len(Marshal(m)) == m.WireSize() (enforced by the round-trip tests), and
// the 9-byte envelope frame matches the meter's per-message overhead. The
// TCP runner (internal/netrun) uses these codecs to move the same protocol
// messages across real sockets.
//
// Layout (little-endian):
//
//	envelope: from uint32 | to uint32 | kind byte | payload
//	string:   nbits uint16 | ⌈nbits/8⌉ packed bytes
package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/fastba/fastba/internal/ae"
	"github.com/fastba/fastba/internal/baseline"
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// Kind bytes identify message types on the wire. They are part of the
// serialized contract: values must never be reused.
const (
	kindPush   byte = 0x01
	kindPoll   byte = 0x02
	kindPull   byte = 0x03
	kindFw1    byte = 0x04
	kindFw2    byte = 0x05
	kindAnswer byte = 0x06
	kindElect  byte = 0x10
	kindValue  byte = 0x11
	kindQuery  byte = 0x20
	kindReply  byte = 0x21
	kindBcast  byte = 0x22
	kindVote   byte = 0x23
	// kindInst is the decision-log multiplexing envelope: a 4-byte instance
	// tag followed by the inner message's own kind byte and payload
	// (simnet.InstMsg). Nesting InstMsg inside InstMsg is rejected.
	kindInst byte = 0x30
	// kindCatchupReq/kindCatchupResp are the committed-prefix state
	// transfer of the durable decision log (internal/store): a restarted
	// node requests records from its recovered frontier; the serving peer
	// answers with chunks of opaque encoded records, empty chunk = done.
	kindCatchupReq  byte = 0x40
	kindCatchupResp byte = 0x41
	// kindPing/kindPong are the TCP runtime's heartbeat frames
	// (simnet.Ping/Pong): transport-internal, consumed by the connection
	// supervisor, never delivered to protocol nodes.
	kindPing byte = 0x50
	kindPong byte = 0x51
	// kindBatch is the link-level coalescing frame: several same-link
	// messages collapsed into one wire frame. Layout after the shared
	// from/to header: count u32, then count records of (recLen u32, inner
	// kind byte, inner payload). Batch frames never nest and never carry
	// transport-internal frames (ping/pong).
	kindBatch byte = 0x60
	// kindRelay is the scenario gossip-relay hop (simnet.RelayMsg): origin
	// u32, seq u32, dest u32, ttl u8, then the inner message's kind byte
	// and payload. Relay and instance envelopes never nest.
	kindRelay byte = 0x70
	// kindLogOpen is the multi-process daemon's instance-open broadcast
	// (simnet.LogOpen): seq u64, attempt u32, then payloads in the
	// CatchupResp layout
	// (count u32, per-payload len u32 + bytes). Consumed by the daemon's
	// node shim, never delivered to a protocol node.
	kindLogOpen byte = 0x80
)

// ErrUnknownMessage reports a message type without a codec.
var ErrUnknownMessage = fmt.Errorf("wire: unknown message type")

// KindByte returns the wire tag for a message.
func KindByte(m simnet.Message) (byte, error) {
	switch m.(type) {
	case core.MsgPush:
		return kindPush, nil
	case core.MsgPoll:
		return kindPoll, nil
	case core.MsgPull:
		return kindPull, nil
	case core.MsgFw1:
		return kindFw1, nil
	case core.MsgFw2:
		return kindFw2, nil
	case core.MsgAnswer:
		return kindAnswer, nil
	case ae.MsgElect:
		return kindElect, nil
	case ae.MsgValue:
		return kindValue, nil
	case baseline.MsgQuery:
		return kindQuery, nil
	case baseline.MsgReply:
		return kindReply, nil
	case baseline.MsgBcast:
		return kindBcast, nil
	case baseline.MsgVote:
		return kindVote, nil
	case simnet.InstMsg:
		return kindInst, nil
	case simnet.RelayMsg:
		return kindRelay, nil
	case simnet.CatchupReq:
		return kindCatchupReq, nil
	case simnet.CatchupResp:
		return kindCatchupResp, nil
	case simnet.LogOpen:
		return kindLogOpen, nil
	case simnet.Ping:
		return kindPing, nil
	case simnet.Pong:
		return kindPong, nil
	default:
		return 0, fmt.Errorf("%w: %T", ErrUnknownMessage, m)
	}
}

// Marshal encodes a message payload (without the envelope frame). The
// result's length always equals m.WireSize().
func Marshal(m simnet.Message) ([]byte, error) {
	return appendMessage(make([]byte, 0, m.WireSize()), m)
}

// appendMessage appends m's payload encoding to buf, enabling buffer reuse
// on transport hot paths.
func appendMessage(buf []byte, m simnet.Message) ([]byte, error) {
	start := len(buf)
	switch msg := m.(type) {
	case core.MsgPush:
		buf = appendString(buf, msg.S)
	case core.MsgPoll:
		buf = appendString(buf, msg.S)
		buf = binary.LittleEndian.AppendUint64(buf, msg.R)
	case core.MsgPull:
		buf = appendString(buf, msg.S)
		buf = binary.LittleEndian.AppendUint64(buf, msg.R)
	case core.MsgFw1:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.X))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.W))
		buf = binary.LittleEndian.AppendUint64(buf, msg.R)
		buf = appendString(buf, msg.S)
	case core.MsgFw2:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.X))
		buf = binary.LittleEndian.AppendUint64(buf, msg.R)
		buf = appendString(buf, msg.S)
	case core.MsgAnswer:
		buf = appendString(buf, msg.S)
		buf = binary.LittleEndian.AppendUint64(buf, msg.R)
	case ae.MsgElect:
		buf = binary.LittleEndian.AppendUint32(buf, msg.Bin)
		buf = appendString(buf, msg.Seg)
	case ae.MsgValue:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.Level))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.Index))
		buf = appendString(buf, msg.S)
	case baseline.MsgQuery:
		buf = append(buf, 0)
	case baseline.MsgReply:
		buf = appendString(buf, msg.S)
	case baseline.MsgBcast:
		buf = appendString(buf, msg.S)
	case baseline.MsgVote:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.Round))
		buf = appendString(buf, msg.S)
	case simnet.CatchupReq:
		buf = binary.LittleEndian.AppendUint64(buf, msg.From)
		buf = binary.LittleEndian.AppendUint32(buf, msg.Max)
	case simnet.CatchupResp:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg.Records)))
		for _, r := range msg.Records {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
			buf = append(buf, r...)
		}
	case simnet.LogOpen:
		buf = binary.LittleEndian.AppendUint64(buf, msg.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, msg.Attempt)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg.Payloads)))
		for _, p := range msg.Payloads {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
			buf = append(buf, p...)
		}
	case simnet.Ping:
		buf = binary.LittleEndian.AppendUint64(buf, msg.Nonce)
	case simnet.Pong:
		buf = binary.LittleEndian.AppendUint64(buf, msg.Nonce)
	case simnet.InstMsg:
		if _, nested := msg.Inner.(simnet.InstMsg); nested {
			return nil, fmt.Errorf("wire: nested InstMsg")
		}
		innerKind, err := KindByte(msg.Inner)
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, msg.Inst)
		buf = append(buf, innerKind)
		if buf, err = appendMessage(buf, msg.Inner); err != nil {
			return nil, err
		}
	case simnet.RelayMsg:
		innerKind, err := KindByte(msg.Inner)
		if err != nil {
			return nil, err
		}
		if innerKind == kindRelay || innerKind == kindInst {
			return nil, fmt.Errorf("wire: RelayMsg must not nest envelopes")
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.Origin))
		buf = binary.LittleEndian.AppendUint32(buf, msg.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.Dest))
		buf = append(buf, msg.TTL, innerKind)
		if buf, err = appendMessage(buf, msg.Inner); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownMessage, m)
	}
	if got := len(buf) - start; got != m.WireSize() {
		return nil, fmt.Errorf("wire: %T encoded to %d bytes, WireSize says %d", m, got, m.WireSize())
	}
	return buf, nil
}

// Unmarshal decodes a payload given its kind byte. Decoded messages own
// their data (bit strings are copied out of payload).
func Unmarshal(kind byte, payload []byte) (simnet.Message, error) {
	return unmarshal(kind, payload, false)
}

// UnmarshalView decodes a payload given its kind byte, zero-copy: decoded
// bit strings are views aliasing payload (bitstring.View). The result is
// only valid while payload's backing buffer is stable — see RefBuf for the
// ownership protocol.
func UnmarshalView(kind byte, payload []byte) (simnet.Message, error) {
	return unmarshal(kind, payload, true)
}

func unmarshal(kind byte, payload []byte, view bool) (simnet.Message, error) {
	d := decoder{buf: payload, view: view}
	var m simnet.Message
	switch kind {
	case kindPush:
		m = core.MsgPush{S: d.str()}
	case kindPoll:
		s := d.str()
		m = core.MsgPoll{S: s, R: d.u64()}
	case kindPull:
		s := d.str()
		m = core.MsgPull{S: s, R: d.u64()}
	case kindFw1:
		x := int(d.u32())
		w := int(d.u32())
		r := d.u64()
		m = core.MsgFw1{X: x, W: w, R: r, S: d.str()}
	case kindFw2:
		x := int(d.u32())
		r := d.u64()
		m = core.MsgFw2{X: x, R: r, S: d.str()}
	case kindAnswer:
		s := d.str()
		m = core.MsgAnswer{S: s, R: d.u64()}
	case kindElect:
		bin := d.u32()
		m = ae.MsgElect{Bin: bin, Seg: d.str()}
	case kindValue:
		level := int32(d.u32())
		index := int32(d.u32())
		m = ae.MsgValue{Level: level, Index: index, S: d.str()}
	case kindQuery:
		if pad := d.u8(); d.err == nil && pad != 0 {
			d.err = fmt.Errorf("wire: query padding byte %#x", pad)
		}
		m = baseline.MsgQuery{}
	case kindReply:
		m = baseline.MsgReply{S: d.str()}
	case kindBcast:
		m = baseline.MsgBcast{S: d.str()}
	case kindVote:
		round := int32(d.u32())
		m = baseline.MsgVote{Round: round, S: d.str()}
	case kindCatchupReq:
		from := d.u64()
		m = simnet.CatchupReq{From: from, Max: d.u32()}
	case kindCatchupResp:
		count := int(d.u32())
		var records [][]byte
		if d.err == nil && count > 0 {
			if count > len(payload) {
				return nil, fmt.Errorf("wire: catchup response claims %d records in %d bytes", count, len(payload))
			}
			records = make([][]byte, 0, count)
			for i := 0; i < count; i++ {
				records = append(records, d.bytes())
			}
		}
		m = simnet.CatchupResp{Records: records}
	case kindLogOpen:
		seq := d.u64()
		attempt := d.u32()
		count := int(d.u32())
		var payloads [][]byte
		if d.err == nil && count > 0 {
			if count > len(payload) {
				return nil, fmt.Errorf("wire: log open claims %d payloads in %d bytes", count, len(payload))
			}
			payloads = make([][]byte, 0, count)
			for i := 0; i < count; i++ {
				payloads = append(payloads, d.bytes())
			}
		}
		m = simnet.LogOpen{Seq: seq, Attempt: attempt, Payloads: payloads}
	case kindPing:
		m = simnet.Ping{Nonce: d.u64()}
	case kindPong:
		m = simnet.Pong{Nonce: d.u64()}
	case kindInst:
		inst := d.u32()
		innerKind := d.u8()
		if d.err != nil {
			return nil, fmt.Errorf("wire: decode kind %#x: %w", kind, d.err)
		}
		if innerKind == kindInst {
			return nil, fmt.Errorf("wire: nested InstMsg")
		}
		inner, err := unmarshal(innerKind, payload[d.pos:], view)
		if err != nil {
			return nil, err
		}
		return simnet.InstMsg{Inst: inst, Inner: inner}, nil
	case kindRelay:
		origin := int(d.u32())
		seq := d.u32()
		dest := int(d.u32())
		ttl := d.u8()
		innerKind := d.u8()
		if d.err != nil {
			return nil, fmt.Errorf("wire: decode kind %#x: %w", kind, d.err)
		}
		if innerKind == kindRelay || innerKind == kindInst {
			return nil, fmt.Errorf("wire: RelayMsg must not nest envelopes")
		}
		inner, err := unmarshal(innerKind, payload[d.pos:], view)
		if err != nil {
			return nil, err
		}
		return simnet.RelayMsg{Origin: origin, Seq: seq, Dest: dest, TTL: ttl, Inner: inner}, nil
	default:
		return nil, fmt.Errorf("%w: kind %#x", ErrUnknownMessage, kind)
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: decode kind %#x: %w", kind, d.err)
	}
	if d.pos != len(payload) {
		return nil, fmt.Errorf("wire: decode kind %#x: %d trailing bytes", kind, len(payload)-d.pos)
	}
	return m, nil
}

// EnvelopeOverhead is the frame size prepended by EncodeEnvelope; it equals
// the simnet meter's per-message overhead.
const EnvelopeOverhead = 9

// EncodeEnvelope frames a message for transport: from, to, kind, payload.
func EncodeEnvelope(from, to int, m simnet.Message) ([]byte, error) {
	kind, err := KindByte(m)
	if err != nil {
		return nil, err
	}
	payload, err := Marshal(m)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, EnvelopeOverhead+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(from))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(to))
	buf = append(buf, kind)
	return append(buf, payload...), nil
}

// AppendTaggedFrame appends the transport frame of an instance-tagged
// envelope: the kindInst layout (inst u32, inner kind, inner payload)
// without materializing the InstMsg wrapper the frame represents.
// Decoding a tagged frame yields InstMsg, which the TCP cluster maps back
// onto the envelope header.
func AppendTaggedFrame(buf []byte, from, to int, inst uint32, m simnet.Message) ([]byte, error) {
	innerKind, err := KindByte(m)
	if err != nil {
		return buf, err
	}
	if innerKind == kindInst {
		return buf, fmt.Errorf("wire: nested InstMsg")
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(EnvelopeOverhead+5+m.WireSize()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(from))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(to))
	buf = append(buf, kindInst)
	buf = binary.LittleEndian.AppendUint32(buf, inst)
	buf = append(buf, innerKind)
	return appendMessage(buf, m)
}

// AppendFrame appends the length-prefixed transport frame for one message
// — uint32 frame length, then the EncodeEnvelope layout — to buf and
// returns the extended slice. It lets transports recycle their write
// buffers (sync.Pool) instead of allocating per send.
func AppendFrame(buf []byte, from, to int, m simnet.Message) ([]byte, error) {
	kind, err := KindByte(m)
	if err != nil {
		return buf, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(EnvelopeOverhead+m.WireSize()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(from))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(to))
	buf = append(buf, kind)
	return appendMessage(buf, m)
}

// DecodeEnvelope reverses EncodeEnvelope, zero-copy: decoded bit strings
// are views aliasing frame. The result is only valid while frame's backing
// buffer is stable; callers that recycle the buffer must follow the RefBuf
// ownership protocol (DESIGN.md §10). Use DecodeEnvelopeCopy when the
// decoded message must own its data.
func DecodeEnvelope(frame []byte) (from, to int, m simnet.Message, err error) {
	return decodeEnvelope(frame, true)
}

// DecodeEnvelopeCopy reverses EncodeEnvelope with owning semantics: the
// decoded message copies everything it keeps out of frame.
func DecodeEnvelopeCopy(frame []byte) (from, to int, m simnet.Message, err error) {
	return decodeEnvelope(frame, false)
}

func decodeEnvelope(frame []byte, view bool) (from, to int, m simnet.Message, err error) {
	if len(frame) < EnvelopeOverhead {
		return 0, 0, nil, fmt.Errorf("wire: envelope too short: %d bytes", len(frame))
	}
	from = int(binary.LittleEndian.Uint32(frame[0:4]))
	to = int(binary.LittleEndian.Uint32(frame[4:8]))
	m, err = unmarshal(frame[8], frame[9:], view)
	return from, to, m, err
}

// IsBatchFrame reports whether a transport frame (without its length
// prefix) is a link-level batch frame.
func IsBatchFrame(frame []byte) bool {
	return len(frame) >= EnvelopeOverhead && frame[8] == kindBatch
}

// maxBatchCount bounds the record count a batch frame may claim — defense
// against corrupt count prefixes, far above what any coalescing window
// produces.
const maxBatchCount = 1 << 16

// AppendBatchFrame coalesces several length-prefixed transport frames
// (the AppendFrame/AppendTaggedFrame layout) for one directed link into a
// single batch frame appended to buf: one length prefix and one from/to
// header for the whole batch, then one (recLen, kind, payload) record per
// input frame. All input frames must carry the same from/to — they are
// queued for one link — and none may itself be a batch frame.
func AppendBatchFrame(buf []byte, frames [][]byte) ([]byte, error) {
	if len(frames) == 0 {
		return buf, fmt.Errorf("wire: empty batch")
	}
	const frameHeader = 4 + EnvelopeOverhead // length prefix + from/to/kind
	total := EnvelopeOverhead + 4            // shared header + count
	for _, f := range frames {
		if len(f) < frameHeader {
			return buf, fmt.Errorf("wire: batch input frame too short: %d bytes", len(f))
		}
		if f[12] == kindBatch {
			return buf, fmt.Errorf("wire: nested batch frame")
		}
		if string(f[4:12]) != string(frames[0][4:12]) {
			return buf, fmt.Errorf("wire: batch mixes links")
		}
		total += 4 + len(f) - 12 // recLen prefix + kind byte + payload
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(total))
	buf = append(buf, frames[0][4:12]...) // from, to
	buf = append(buf, kindBatch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(frames)))
	for _, f := range frames {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f)-12))
		buf = append(buf, f[12:]...)
	}
	return buf, nil
}

// DecodeBatchAppend decodes a batch frame (without its length prefix) into
// envelopes appended to dst. In view mode the decoded payloads alias
// frame (see DecodeEnvelope); otherwise they own their data. Instance-
// tagged records surface with the tag hoisted into Envelope.Inst/Tagged,
// ready for fabric injection. On error dst is returned unchanged: a batch
// decodes entirely or not at all.
func DecodeBatchAppend(dst []simnet.Envelope, frame []byte, view bool) ([]simnet.Envelope, error) {
	if !IsBatchFrame(frame) {
		return dst, fmt.Errorf("wire: not a batch frame")
	}
	from := int(binary.LittleEndian.Uint32(frame[0:4]))
	to := int(binary.LittleEndian.Uint32(frame[4:8]))
	d := decoder{buf: frame, pos: EnvelopeOverhead}
	count := int(d.u32())
	if d.err != nil {
		return dst, fmt.Errorf("wire: batch count: %w", d.err)
	}
	if count == 0 || count > maxBatchCount {
		return dst, fmt.Errorf("wire: batch claims %d records", count)
	}
	mark := len(dst)
	for i := 0; i < count; i++ {
		rec := d.take(int(d.u32()))
		if d.err != nil {
			return dst[:mark], fmt.Errorf("wire: batch record %d: %w", i, d.err)
		}
		if len(rec) < 1 {
			return dst[:mark], fmt.Errorf("wire: batch record %d: empty", i)
		}
		if rec[0] == kindBatch {
			return dst[:mark], fmt.Errorf("wire: nested batch frame")
		}
		m, err := unmarshal(rec[0], rec[1:], view)
		if err != nil {
			return dst[:mark], fmt.Errorf("wire: batch record %d: %w", i, err)
		}
		e := simnet.Envelope{From: from, To: to, Msg: m}
		if im, ok := m.(simnet.InstMsg); ok {
			e.Msg, e.Inst, e.Tagged = im.Inner, im.Inst, true
		}
		dst = append(dst, e)
	}
	if d.pos != len(frame) {
		return dst[:mark], fmt.Errorf("wire: batch frame: %d trailing bytes", len(frame)-d.pos)
	}
	return dst, nil
}

// appendString encodes a bit string: uint16 bit length + packed bytes.
func appendString(buf []byte, s bitstring.String) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(s.Len()))
	return append(buf, s.Bytes()...)
}

// AppendBitString appends the wire encoding of a bit string — uint16 bit
// length + packed bytes, the same layout every protocol message uses —
// for external codecs built on this package's formats (internal/store's
// record encoding).
func AppendBitString(buf []byte, s bitstring.String) []byte {
	return appendString(buf, s)
}

// DecodeBitString decodes a wire-encoded bit string from the front of
// buf, returning the string and the number of bytes consumed. The result
// is a zero-copy view aliasing buf: callers that retain it past the
// buffer's stable window must Clone it (DESIGN.md §10).
func DecodeBitString(buf []byte) (bitstring.String, int, error) {
	d := decoder{buf: buf, view: true}
	s := d.str()
	if d.err != nil {
		return bitstring.String{}, 0, d.err
	}
	return s, d.pos, nil
}

// decoder is a cursor with sticky errors. In view mode decoded strings
// alias buf instead of copying.
type decoder struct {
	buf  []byte
	pos  int
	view bool
	err  error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at offset %d (need %d of %d)", d.pos, n, len(d.buf))
		return nil
	}
	out := d.buf[d.pos : d.pos+n]
	d.pos += n
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// bytes decodes a u32-length-prefixed byte slice, copying it out of the
// frame buffer (transports reuse frame buffers across messages).
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	b := d.take(n)
	if d.err != nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *decoder) str() bitstring.String {
	header := d.take(2)
	if d.err != nil {
		return bitstring.String{}
	}
	nbits := int(binary.LittleEndian.Uint16(header))
	need := (nbits + 7) / 8
	packed := d.take(need)
	if d.err != nil {
		return bitstring.String{}
	}
	// The encoder only emits canonical strings (clear tail bits), so a set
	// excess bit is corruption: reject instead of silently masking — decode
	// then re-encode must reproduce the input bytes exactly.
	if rem := nbits % 8; rem != 0 && need > 0 && packed[need-1]&^(byte(1<<rem)-1) != 0 {
		d.err = fmt.Errorf("wire: non-canonical bit string tail")
		return bitstring.String{}
	}
	var s bitstring.String
	var err error
	if d.view {
		s, err = bitstring.View(packed, nbits)
	} else {
		s, err = bitstring.FromBytes(packed, nbits)
	}
	if err != nil {
		d.err = err
	}
	return s
}
